(* Command-line interface to the Enclaves reproduction.

   Subcommands:
   - [session]  run a scripted group session and print the trace
   - [attack]   run the §2.3 attack matrix (optionally one attack)
   - [verify]   run the model checker (§4-§5)
   - [chaos]    sweep seeded fault plans against the recovery layer
   - [churn]    soak the store-and-forward delivery queues under member churn
   - [failover] kill the primary of a multi-manager group and report
                warm/cold promotion, replication counters and lag
   - [nemesis]  run the omni-fault soak (network + disk + insider + crash)
                against the degraded-mode ladder
   - [crash-matrix] enumerate every journal crash point and check recovery
   - [keys]     derive and fingerprint a long-term key (debug helper)

   Run with: dune exec bin/enclaves_cli.exe -- <subcommand> --help *)

open Cmdliner

(* --- minimal JSON emission (no dependency; the sweeps' numbers are
   ints, floats, bools and flat counter tables) --- *)

module Json = struct
  type t =
    | Str of string
    | Int of int
    | Float of float
    | Bool of bool
    | Obj of (string * t) list
    | Arr of t list

  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let rec render = function
    | Str s -> "\"" ^ escape s ^ "\""
    | Int n -> string_of_int n
    | Float f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Printf.sprintf "%.1f" f
        else Printf.sprintf "%g" f
    | Bool b -> string_of_bool b
    | Obj fields ->
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ render v) fields)
        ^ "}"
    | Arr items -> "[" ^ String.concat "," (List.map render items) ^ "]"

  let counters named = Obj (List.map (fun (k, v) -> (k, Int v)) named)
  let print j = print_endline (render j)
end

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit one machine-readable JSON document on stdout instead of the \
           human-readable per-seed report")

(* --- session --- *)

let run_session members seed verbose audit protocol =
  let directory =
    List.init members (fun i ->
        let name = Printf.sprintf "user%d" i in
        (name, name ^ "-pw"))
  in
  let spacer () = print_endline "" in
  (match protocol with
  | `Improved ->
      let module D = Enclaves.Driver.Improved in
      let d = D.create ~seed ~leader:"leader" ~directory () in
      List.iter
        (fun (name, _) ->
          D.join d name;
          ignore (D.run d))
        directory;
      D.send_app d "user0" "hello from the CLI";
      ignore (D.run d);
      D.rekey d;
      ignore (D.run d);
      Printf.printf "leader members: [%s]\n"
        (String.concat ", " (Enclaves.Leader.members (D.leader d)));
      List.iter
        (fun (name, _) ->
          let m = D.member d name in
          Printf.printf "  %-8s connected=%b admin-log=%d app-log=%d\n" name
            (Enclaves.Member.is_connected m)
            (List.length (Enclaves.Member.accepted_admin m))
            (List.length (Enclaves.Member.app_log m)))
        directory;
      Printf.printf "ordering guarantee holds: %b\n" (D.all_prefix_ok d);
      if audit then begin
        let report =
          Enclaves.Audit.run ~directory ~leader:"leader"
            (Netsim.Network.trace (D.net d))
        in
        Printf.printf
          "audit: %d handshakes, %d admin deliveries, %d closes, %d anomalies\n"
          report.Enclaves.Audit.handshakes_completed
          report.Enclaves.Audit.admin_delivered report.Enclaves.Audit.closes
          (List.length report.Enclaves.Audit.anomalies);
        List.iter
          (fun a -> Format.printf "  anomaly: %a@." Enclaves.Audit.pp_anomaly a)
          report.Enclaves.Audit.anomalies
      end;
      if verbose then begin
        spacer ();
        List.iter
          (fun e -> Format.printf "%a@." Netsim.Trace.pp_entry e)
          (Netsim.Trace.entries (Netsim.Network.trace (D.net d)))
      end
  | `Legacy ->
      let module D = Enclaves.Driver.Legacy in
      let d = D.create ~seed ~leader:"leader" ~directory () in
      List.iter
        (fun (name, _) ->
          D.join d name;
          ignore (D.run d))
        directory;
      D.send_app d "user0" "hello from the CLI";
      ignore (D.run d);
      Printf.printf "leader members: [%s]\n"
        (String.concat ", " (Enclaves.Legacy_leader.members (D.leader d)));
      if verbose then begin
        spacer ();
        List.iter
          (fun e -> Format.printf "%a@." Netsim.Trace.pp_entry e)
          (Netsim.Trace.entries (Netsim.Network.trace (D.net d)))
      end);
  0

let protocol_conv = Arg.enum [ ("improved", `Improved); ("legacy", `Legacy) ]

let protocol_arg =
  Arg.(
    value & opt protocol_conv `Improved
    & info [ "protocol" ] ~doc:"improved or legacy")

let members_arg =
  Arg.(value & opt int 3 & info [ "members"; "n" ] ~doc:"Number of members")

let seed_arg =
  Arg.(value & opt int64 42L & info [ "seed" ] ~doc:"Simulation seed")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print the network trace")

let audit_arg =
  Arg.(value & flag & info [ "audit" ] ~doc:"Audit the trace afterwards")

let session_cmd =
  let doc = "run a scripted group session over the simulated network" in
  Cmd.v
    (Cmd.info "session" ~doc)
    Term.(
      const run_session $ members_arg $ seed_arg $ verbose_arg $ audit_arg
      $ protocol_arg)

(* --- attack --- *)

let run_attack which seed =
  let open Adversary.Attacks in
  let runs =
    match which with
    | "all" -> all ~seed ()
    | "a1" -> [ denial_of_service ~seed Legacy; denial_of_service ~seed Improved ]
    | "a2" -> [ forge_mem_removed ~seed Legacy; forge_mem_removed ~seed Improved ]
    | "a3" -> [ rekey_replay ~seed Legacy; rekey_replay ~seed Improved ]
    | "a4" ->
        [ forced_disconnect ~seed Legacy; forced_disconnect ~seed Improved ]
    | other ->
        Printf.eprintf "unknown attack %S (use a1..a4 or all)\n" other;
        exit 2
  in
  List.iter (fun o -> Format.printf "%a@." pp_outcome o) runs;
  let expected =
    List.for_all
      (fun o ->
        match o.protocol with
        | Legacy -> o.succeeded
        | Improved -> not o.succeeded)
      runs
  in
  Printf.printf "\nmatches the paper's matrix: %b\n" expected;
  if expected then 0 else 1

let which_arg =
  Arg.(value & pos 0 string "all" & info [] ~docv:"ATTACK" ~doc:"a1|a2|a3|a4|all")

let attack_cmd =
  let doc = "run the insider attacks of paper §2.3 against both protocols" in
  Cmd.v (Cmd.info "attack" ~doc) Term.(const run_attack $ which_arg $ seed_arg)

(* --- verify --- *)

let run_verify joins admin nonces keys legacy jobs stream max_states =
  let config =
    {
      Symbolic.Model.default_config with
      Symbolic.Model.max_joins = joins;
      max_admin = admin;
      max_nonces = nonces;
      max_keys = keys;
    }
  in
  let t0 = Unix.gettimeofday () in
  let reports =
    if stream then begin
      let open Symbolic in
      let checker =
        Invariants.combine
          [ Invariants.stream ~config (); Properties.stream ();
            Diagram.stream ~config () ]
      in
      let st =
        Explore.run_stream ~config ~jobs ~max_states
          ~on_state:checker.Invariants.on_state
          ~on_edge:checker.Invariants.on_edge ()
      in
      Printf.printf "explored %d states / %d transitions in %.2fs%s\n\n"
        st.Explore.stream_states st.Explore.stream_edges
        (Unix.gettimeofday () -. t0)
        (if st.Explore.stream_truncated then
           Printf.sprintf " (TRUNCATED, %d dropped)" st.Explore.stream_dropped
         else "");
      checker.Invariants.finish ()
    end
    else begin
      let r = Symbolic.Explore.run ~config ~jobs ~max_states () in
      Printf.printf "explored %d states / %d transitions in %.2fs%s\n\n"
        (Symbolic.Explore.state_count r)
        (Symbolic.Explore.edge_count r)
        (Unix.gettimeofday () -. t0)
        (if r.Symbolic.Explore.truncated then
           Printf.sprintf " (TRUNCATED, %d dropped)"
             r.Symbolic.Explore.frontier_dropped
         else "");
      Symbolic.Invariants.all ~config r
      @ Symbolic.Properties.all r
      @ Symbolic.Diagram.all ~config r
    end
  in
  List.iter
    (fun rep -> Format.printf "%a@." Symbolic.Invariants.pp_report rep)
    reports;
  let improved_ok =
    List.for_all (fun rep -> rep.Symbolic.Invariants.holds) reports
  in
  let recovery_ok =
    print_endline "\n-- recovery plane (replication / demotion) --";
    let t1 = Unix.gettimeofday () in
    let rr = Symbolic.Recovery.explore () in
    Printf.printf "explored %d states / %d transitions in %.2fs\n"
      (Symbolic.Recovery.state_count rr)
      (Symbolic.Recovery.edge_count rr)
      (Unix.gettimeofday () -. t1);
    let rreports = Symbolic.Recovery.reports rr in
    List.iter
      (fun rep -> Format.printf "%a@." Symbolic.Invariants.pp_report rep)
      rreports;
    List.for_all (fun rep -> rep.Symbolic.Invariants.holds) rreports
  in
  let delivery_ok =
    print_endline "\n-- delivery plane (store-and-forward / epoch window) --";
    let t2 = Unix.gettimeofday () in
    let dr = Symbolic.Delivery_model.explore () in
    Printf.printf "explored %d states / %d transitions in %.2fs\n"
      (Symbolic.Delivery_model.state_count dr)
      (Symbolic.Delivery_model.edge_count dr)
      (Unix.gettimeofday () -. t2);
    let dreports = Symbolic.Delivery_model.reports dr in
    List.iter
      (fun rep -> Format.printf "%a@." Symbolic.Invariants.pp_report rep)
      dreports;
    List.for_all (fun rep -> rep.Symbolic.Invariants.holds) dreports
  in
  let sentinel_ok =
    print_endline "\n-- sentinel plane (attribution / containment ladder) --";
    let t3 = Unix.gettimeofday () in
    let sr = Symbolic.Sentinel_model.explore () in
    Printf.printf "explored %d states / %d transitions in %.2fs\n"
      (Symbolic.Sentinel_model.state_count sr)
      (Symbolic.Sentinel_model.edge_count sr)
      (Unix.gettimeofday () -. t3);
    let sreports = Symbolic.Sentinel_model.reports sr in
    List.iter
      (fun rep -> Format.printf "%a@." Symbolic.Invariants.pp_report rep)
      sreports;
    List.for_all (fun rep -> rep.Symbolic.Invariants.holds) sreports
  in
  let legacy_ok =
    if not legacy then true
    else begin
      print_endline "\n-- legacy protocol (§2.2): attack finding --";
      let lr = Symbolic.Legacy_model.explore () in
      let findings = Symbolic.Legacy_model.findings lr in
      List.iter
        (fun f ->
          Printf.printf "%-10s %-14s %s\n" f.Symbolic.Legacy_model.weakness
            (if f.Symbolic.Legacy_model.violated then "ATTACK FOUND" else "holds")
            f.Symbolic.Legacy_model.description;
          List.iter
            (fun line -> Printf.printf "    %s\n" line)
            f.Symbolic.Legacy_model.trace)
        findings;
      List.for_all
        (fun f ->
          if f.Symbolic.Legacy_model.weakness = "Pa-secrecy" then
            not f.Symbolic.Legacy_model.violated
          else f.Symbolic.Legacy_model.violated)
        findings
    end
  in
  if improved_ok && recovery_ok && delivery_ok && sentinel_ok && legacy_ok
  then begin
    print_endline "\nall §5 results verified";
    0
  end
  else begin
    print_endline "\nUNEXPECTED OUTCOME";
    1
  end

let joins_arg = Arg.(value & opt int 2 & info [ "joins" ] ~doc:"Max joins by A")
let admin_arg = Arg.(value & opt int 2 & info [ "admin" ] ~doc:"Max admin msgs/session")
let nonces_arg = Arg.(value & opt int 10 & info [ "nonces" ] ~doc:"Nonce pool size")
let keys_arg = Arg.(value & opt int 2 & info [ "keys" ] ~doc:"Session-key pool size")

let legacy_arg =
  Arg.(
    value & flag
    & info [ "legacy" ]
        ~doc:"Also explore the legacy protocol and print the attacks found")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ]
        ~doc:"Domains used to expand the frontier (results are identical \
              for any value)")

let stream_arg =
  Arg.(
    value & flag
    & info [ "stream" ]
        ~doc:"Check invariants on the fly without retaining the state set \
              (lower memory; no counterexample paths)")

let max_states_arg =
  Arg.(
    value & opt int 200_000
    & info [ "max-states" ]
        ~doc:"State cap; runs that hit it are reported as truncated")

let verify_cmd =
  let doc = "exhaustively verify the improved protocol (paper §4-§5)" in
  Cmd.v
    (Cmd.info "verify" ~doc)
    Term.(
      const run_verify $ joins_arg $ admin_arg $ nonces_arg $ keys_arg
      $ legacy_arg $ jobs_arg $ stream_arg $ max_states_arg)

(* --- sentinel knobs (shared by chaos / intrude / calibrate) --- *)

let sentinel_profile name =
  let module S = Enclaves.Sentinel in
  let d = S.default_config in
  match name with
  | "default" -> Some d
  | "no-attribution" -> Some { d with S.attribution = false }
  | "strict" -> Some { d with S.quarantine_at = 15.0; expel_at = 40.0 }
  | "lenient" ->
      Some { d with S.quarantine_at = 40.0; expel_at = 90.0; wire_discount = 0.1 }
  | _ -> None

let sentinel_profile_arg =
  Arg.(
    value & opt string "default"
    & info [ "sentinel-profile" ] ~docv:"PROFILE"
        ~doc:
          "Sentinel tuning profile: default|strict|lenient|no-attribution. \
           Per-knob \\$(b,--sn-*) flags override the profile's values.")

let sn_wire_discount_arg =
  Arg.(
    value & opt (some float) None
    & info [ "sn-wire-discount" ]
        ~doc:"Off-path evidence weight multiplier in [0,1]")

let sn_rate_limit_arg =
  Arg.(
    value & opt (some float) None
    & info [ "sn-rate-limit-at" ] ~doc:"Score at which a peer is rate-limited")

let sn_quarantine_arg =
  Arg.(
    value & opt (some float) None
    & info [ "sn-quarantine-at" ] ~doc:"Score at which a peer is quarantined")

let sn_expel_arg =
  Arg.(
    value & opt (some float) None
    & info [ "sn-expel-at" ] ~doc:"Score at which a peer is expelled")

let sn_half_life_arg =
  Arg.(
    value & opt (some int) None
    & info [ "sn-half-life-ms" ]
        ~doc:"Quiet milliseconds that halve every suspicion score")

let sn_corroborate_arg =
  Arg.(
    value & opt (some float) None
    & info [ "sn-corroborate-floor" ]
        ~doc:
          "Decayed on-path class score at which a class counts as live for \
           the two-class corroboration rule (0 disables the gate)")

let sn_no_attribution_arg =
  Arg.(
    value & flag
    & info [ "sn-no-attribution" ]
        ~doc:
          "Disable injection-path attribution (score every frame at full \
           weight against its claimed sender — the pre-attribution sentinel)")

let sentinel_config_term =
  let module S = Enclaves.Sentinel in
  let build profile wire rl quar expel hl floor noattr =
    let base =
      match sentinel_profile profile with
      | Some c -> c
      | None ->
          prerr_endline
            ("unknown --sentinel-profile '" ^ profile
           ^ "' (default|strict|lenient|no-attribution)");
          exit 2
    in
    let c = base in
    let c =
      match wire with Some w -> { c with S.wire_discount = w } | None -> c
    in
    let c =
      match rl with Some r -> { c with S.rate_limit_at = r } | None -> c
    in
    let c =
      match quar with Some q -> { c with S.quarantine_at = q } | None -> c
    in
    let c = match expel with Some e -> { c with S.expel_at = e } | None -> c in
    let c =
      match hl with
      | Some ms -> { c with S.half_life = Netsim.Vtime.of_ms ms }
      | None -> c
    in
    let c =
      match floor with
      | Some f -> { c with S.corroborate_floor = f }
      | None -> c
    in
    if noattr then { c with S.attribution = false } else c
  in
  Term.(
    const build $ sentinel_profile_arg $ sn_wire_discount_arg
    $ sn_rate_limit_arg $ sn_quarantine_arg $ sn_expel_arg $ sn_half_life_arg
    $ sn_corroborate_arg $ sn_no_attribution_arg)

(* --- chaos --- *)

let run_chaos members seeds loss corrupt duplicate spike_prob until_s no_retry
    crash_at restart_after cold torn short_write drop_fsync eio intrusion
    sn_config json verbose =
  let module D = Enclaves.Driver.Improved in
  let module S = Enclaves.Sentinel in
  let crashing = crash_at > 0.0 in
  (* Flag validation: a crash with no restart would leave the leader
     down for the rest of the run and every seed would "wedge" for a
     trivial reason — reject the combination loudly instead. *)
  if crashing && restart_after = None then begin
    prerr_endline
      "chaos: --crash-at requires --restart-after (a crashed leader that \
       never restarts cannot converge; give --restart-after SECONDS)";
    exit 2
  end;
  let restart_after = Option.value ~default:2.0 restart_after in
  let faulty_disk =
    torn > 0.0 || short_write > 0.0 || drop_fsync > 0.0 || eio > 0.0
  in
  if faulty_disk && not crashing then begin
    prerr_endline
      "chaos: storage faults (--torn/--short-write/--drop-fsync/--eio) only \
       bite the journal's disk; enable journalling with --crash-at SECONDS";
    exit 2
  end;
  let directory =
    List.init members (fun i ->
        let name = Printf.sprintf "user%d" i in
        (name, name ^ "-pw"))
  in
  let plan =
    Netsim.Faultplan.make
      ~default_link:
        (Netsim.Faultplan.lossy_link ~corrupt ~duplicate ~spike_prob loss)
      ()
  in
  let bound = Netsim.Vtime.of_s until_s in
  let one seed =
    let retry = if no_retry then None else Some D.default_retry in
    let recovery = if crashing then Some D.default_recovery else None in
    let storage_faults =
      if faulty_disk then
        Some
          {
            Store.Fault.none with
            Store.Fault.torn_write = torn;
            short_write;
            drop_fsync;
            eio;
          }
      else None
    in
    let d =
      D.create ~seed ?retry ?recovery ?storage_faults
        ?intrusion:(if intrusion then Some sn_config else None)
        ~leader:"leader" ~directory ()
    in
    Netsim.Network.set_faultplan (D.net d) (Some plan);
    List.iter (fun (n, _) -> D.join d n) directory;
    if crashing then
      D.schedule_leader_crash d
        ~at:(Int64.of_float (crash_at *. 1e6))
        ~restart_after:(Int64.of_float (restart_after *. 1e6))
        ~warm:(not cold) ();
    ignore (D.run ~until:bound d);
    (* With anti-entropy on, convergence additionally requires view
       agreement — that is what the digests are for. *)
    let converged = if crashing then D.view_converged d else D.converged d in
    let join_time =
      (* Virtual time by which every member held the current epoch —
         read off the trace as the last delivery before quiescence
         when converged; the bound otherwise. *)
      if converged then
        List.fold_left
          (fun acc e ->
            match e with
            | Netsim.Trace.Delivered { time; _ } when time > acc -> time
            | _ -> acc)
          Netsim.Vtime.zero
          (Netsim.Trace.entries (Netsim.Network.trace (D.net d)))
      else bound
    in
    let r = D.retry_stats d in
    let c = Netsim.Network.fault_counters (D.net d) in
    let stats = Netsim.Stats.compute (Netsim.Network.trace (D.net d)) in
    (* With the sentinel riding along, fault-plan damage (loss,
       corruption, duplicates) must never read as an intrusion: a
       clean-chaos run that quarantines an honest member is a false
       positive and fails the seed. *)
    let false_positives =
      match D.sentinel d with
      | Some sn ->
          List.filter_map
            (fun (n, _) ->
              if S.level_rank (S.level sn n) >= S.level_rank S.Quarantined
              then Some n
              else None)
            directory
      | None -> []
    in
    if not json then begin
      Printf.printf
        "seed=%-3Ld %-9s t=%8.3fs  rtx: hs=%-3d keydist=%-3d admin=%-3d gc=%d \
         resets=%d\n"
        seed
        (if converged then "CONVERGED" else "WEDGED")
        (Int64.to_float join_time /. 1e6)
        r.D.handshake_retransmits r.D.keydist_retransmits
        r.D.admin_retransmits r.D.half_open_gcs r.D.session_resets;
      if crashing then begin
        Format.printf "         recovery: %a@." Netsim.Stats.pp_named
          (D.recovery_counters d);
        Format.printf "         storage:  %a@." Netsim.Stats.pp_named
          (D.storage_counters d)
      end;
      if false_positives <> [] then
        Printf.printf "         FALSE POSITIVE: quarantined %s\n"
          (String.concat ", " false_positives);
      if intrusion && verbose then
        Format.printf "         sentinel: %a@." Netsim.Stats.pp_named
          (D.sentinel_counters d);
      if verbose then begin
        Format.printf "         retry: %a@." Netsim.Stats.pp_named
          (D.retry_counters d);
        Format.printf "         faults: %a@." Netsim.Faultplan.pp_counters c;
        Printf.printf "         drops: total=%d adv=%d unreg=%d fault=%d\n"
          stats.Netsim.Stats.dropped stats.Netsim.Stats.dropped_by_adversary
          stats.Netsim.Stats.dropped_unregistered
          stats.Netsim.Stats.dropped_by_fault;
        Format.printf "         wire: %a@." Netsim.Stats.pp stats
      end
    end;
    let row =
      Json.Obj
        ([
           ("seed", Json.Int (Int64.to_int seed));
           ("converged", Json.Bool converged);
           ("t_s", Json.Float (Int64.to_float join_time /. 1e6));
           ("retry", Json.counters (D.retry_counters d));
         ]
        @ (if crashing then
             [
               ("recovery", Json.counters (D.recovery_counters d));
               ("storage", Json.counters (D.storage_counters d));
             ]
           else [])
        @
        if intrusion then
          [
            ( "false_positives",
              Json.Arr (List.map (fun n -> Json.Str n) false_positives) );
            ("sentinel", Json.counters (D.sentinel_counters d));
          ]
        else [])
    in
    (converged && false_positives = [], row)
  in
  let seed_list = List.init seeds (fun i -> Int64.of_int (i + 1)) in
  if not json then
    Printf.printf
      "chaos: %d members, loss=%.0f%% corrupt=%.0f%% dup=%.0f%% spikes=%.0f%% \
       retry=%b bound=%ds%s\n"
      members (100. *. loss) (100. *. corrupt) (100. *. duplicate)
      (100. *. spike_prob) (not no_retry) until_s
      (if crashing then
         Printf.sprintf " crash@%.1fs restart+%.1fs (%s)" crash_at
           restart_after
           (if cold then "cold" else "warm")
       else "");
  let results = List.map one seed_list in
  let ok = List.length (List.filter fst results) in
  if json then
    Json.print
      (Json.Obj
         [
           ("command", Json.Str "chaos");
           ("members", Json.Int members);
           ("loss", Json.Float loss);
           ("corrupt", Json.Float corrupt);
           ("duplicate", Json.Float duplicate);
           ("spikes", Json.Float spike_prob);
           ("retry", Json.Bool (not no_retry));
           ("runs", Json.Arr (List.map snd results));
           ( "summary",
             Json.Obj
               [ ("converged", Json.Int ok); ("seeds", Json.Int seeds) ] );
         ])
  else Printf.printf "\n%d/%d seeds converged\n" ok seeds;
  if ok = seeds then 0 else 1

let chaos_members_arg =
  Arg.(value & opt int 5 & info [ "members"; "n" ] ~doc:"Number of members")

let chaos_seeds_arg =
  Arg.(value & opt int 20 & info [ "seeds" ] ~doc:"Sweep seeds 1..N")

let loss_arg =
  Arg.(value & opt float 0.20 & info [ "loss" ] ~doc:"Per-frame loss probability")

let corrupt_arg =
  Arg.(
    value & opt float 0.0
    & info [ "corrupt" ] ~doc:"Per-frame bit-flip probability")

let duplicate_arg =
  Arg.(
    value & opt float 0.0
    & info [ "duplicate" ] ~doc:"Per-frame duplication probability")

let spike_arg =
  Arg.(
    value & opt float 0.0
    & info [ "spikes" ] ~doc:"Per-frame latency-spike probability")

let until_arg =
  Arg.(
    value & opt int 30
    & info [ "until" ] ~doc:"Virtual-time bound in seconds per run")

let no_retry_arg =
  Arg.(
    value & flag
    & info [ "no-retry" ]
        ~doc:"Disable the recovery layer (control runs; expect wedges)")

let crash_at_arg =
  Arg.(
    value & opt float 0.0
    & info [ "crash-at" ]
        ~doc:
          "Crash the leader at this virtual time (seconds); 0 disables. \
           Enables journalling and view anti-entropy.")

let restart_after_arg =
  Arg.(
    value & opt (some float) None
    & info [ "restart-after" ]
        ~doc:
          "Restart the leader this long after the crash (seconds). \
           Required whenever --crash-at is given.")

let cold_arg =
  Arg.(
    value & flag
    & info [ "cold" ]
        ~doc:
          "Restart cold (discard the journal) instead of warm — the \
           control arm for recovery experiments. The restarted leader \
           still broadcasts authenticated ColdRestart beacons so members \
           rejoin without waiting out the anti-entropy watchdog.")

let torn_fault_arg =
  Arg.(
    value & opt float 0.0
    & info [ "torn" ]
        ~doc:
          "Per-write probability that only a byte-prefix of a journal \
           write silently lands on disk (requires --crash-at)")

let short_write_arg =
  Arg.(
    value & opt float 0.0
    & info [ "short-write" ]
        ~doc:
          "Per-write probability of a short write: a prefix lands and the \
           write raises a transient EIO (requires --crash-at)")

let drop_fsync_arg =
  Arg.(
    value & opt float 0.0
    & info [ "drop-fsync" ]
        ~doc:
          "Per-fsync probability the fsync is silently skipped, so the \
           bytes die with a later crash (requires --crash-at)")

let eio_fault_arg =
  Arg.(
    value & opt float 0.0
    & info [ "eio" ]
        ~doc:
          "Per-operation probability of a transient EIO with no effect; \
           absorbed by the journal's bounded retry (requires --crash-at)")

let chaos_intrusion_arg =
  Arg.(
    value & flag
    & info [ "intrusion" ]
        ~doc:
          "Run the sentinel alongside the fault plan and fail any seed that \
           quarantines an honest member — the false-positive control for \
           sentinel calibration. Tune with --sentinel-profile / --sn-*.")

let chaos_cmd =
  let doc =
    "sweep seeded fault plans against the protocol's recovery layer"
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const run_chaos $ chaos_members_arg $ chaos_seeds_arg $ loss_arg
      $ corrupt_arg $ duplicate_arg $ spike_arg $ until_arg $ no_retry_arg
      $ crash_at_arg $ restart_after_arg $ cold_arg $ torn_fault_arg
      $ short_write_arg $ drop_fsync_arg $ eio_fault_arg
      $ chaos_intrusion_arg $ sentinel_config_term $ json_arg $ verbose_arg)

(* --- failover --- *)

let run_failover members n_managers seeds loss kill_at partition_at heal_after
    repl_lag_ms until_s cold json verbose =
  let module FO = Enclaves.Failover in
  let directory =
    List.init members (fun i ->
        let name = Printf.sprintf "user%d" i in
        (name, name ^ "-pw"))
  in
  let manager_names = List.init n_managers (fun i -> Printf.sprintf "m%d" i) in
  let config = { FO.default_config with FO.warm_failover = not cold } in
  (* --repl-lag delays only the manager↔manager links (a guaranteed
     latency spike per frame), so the replication stream runs behind
     the member-facing traffic — the lagging-backup scenario. *)
  let links =
    if repl_lag_ms <= 0 then []
    else
      List.concat_map
        (fun a ->
          List.filter_map
            (fun b ->
              if a = b then None
              else
                Some
                  ( (a, b),
                    Netsim.Faultplan.lossy_link ~spike_prob:1.0
                      ~spike:(Netsim.Vtime.of_ms repl_lag_ms) loss ))
            manager_names)
        manager_names
  in
  (* --partition-primary-at cuts the initial primary (m0) off from every
     other node; --heal-after reconnects it.  The successor promotes
     during the cut, and at the heal the stale primary must demote and
     rejoin as a catching-up backup — the post-heal split-brain arm. *)
  let partitions =
    if partition_at <= 0.0 then []
    else
      let east =
        List.filter (fun m -> m <> "m0") manager_names
        @ List.map fst directory
      in
      [
        {
          Netsim.Faultplan.west = [ "m0" ];
          east;
          from_ = Int64.of_float (partition_at *. 1e6);
          heal = Int64.of_float ((partition_at +. heal_after) *. 1e6);
        };
      ]
  in
  let plan =
    Netsim.Faultplan.make ~default_link:(Netsim.Faultplan.lossy_link loss)
      ~links ~partitions ()
  in
  let one seed =
    let t = FO.create ~seed ~config ~managers:manager_names ~directory () in
    Netsim.Network.set_faultplan (FO.net t) (Some plan);
    FO.start t;
    if kill_at > 0.0 then
      FO.crash_primary_at t (Int64.of_float (kill_at *. 1e6));
    ignore (FO.run ~until:(Netsim.Vtime.of_s until_s) t);
    let connected = FO.connected_members t in
    let ok = List.length connected = members in
    if not json then begin
      Printf.printf
        "seed=%-3Ld %-9s connected=%d/%d primary=%s failovers=%d failbacks=%d \
         demotions=%d\n"
        seed
        (if ok then "CONVERGED" else "WEDGED")
        (List.length connected) members
        (match FO.primary t with Some p -> p | None -> "(none)")
        (FO.failovers t) (FO.failbacks t) (FO.demotions t);
      Format.printf "         replication: %a@." Netsim.Stats.pp_named
        (Netsim.Stats.replication_named (FO.replication_stats t));
      if verbose then begin
        let pp_pairs fmt l =
          List.iter (fun (b, v) -> Format.fprintf fmt " %s=%Ld" b v) l
        in
        Format.printf "         lag (records):%a@." pp_pairs
          (List.map
             (fun (b, l) -> (b, Int64.of_int l))
             (FO.replication_lag t));
        Format.printf "         silence (µs): %a@." pp_pairs
          (FO.replication_silence t)
      end
    end;
    let row =
      Json.Obj
        [
          ("seed", Json.Int (Int64.to_int seed));
          ("converged", Json.Bool ok);
          ("connected", Json.Int (List.length connected));
          ( "primary",
            Json.Str (match FO.primary t with Some p -> p | None -> "") );
          ("failovers", Json.Int (FO.failovers t));
          ("failbacks", Json.Int (FO.failbacks t));
          ("demotions", Json.Int (FO.demotions t));
          ( "replication",
            Json.counters
              (Netsim.Stats.replication_named (FO.replication_stats t)) );
        ]
    in
    (ok, row)
  in
  if not json then
    Printf.printf
      "failover: %d members, %d managers, loss=%.0f%%%s%s repl-lag=%dms \
       bound=%ds (%s)\n"
      members n_managers (100. *. loss)
      (if kill_at > 0.0 then Printf.sprintf " kill-primary@%.1fs" kill_at
       else "")
      (if partition_at > 0.0 then
         Printf.sprintf " partition-primary@%.1fs heal-after=%.1fs"
           partition_at heal_after
       else "")
      repl_lag_ms until_s
      (if cold then "cold baseline" else "warm");
  let seed_list = List.init seeds (fun i -> Int64.of_int (i + 1)) in
  let results = List.map one seed_list in
  let ok = List.length (List.filter fst results) in
  if json then
    Json.print
      (Json.Obj
         [
           ("command", Json.Str "failover");
           ("members", Json.Int members);
           ("managers", Json.Int n_managers);
           ("loss", Json.Float loss);
           ("kill_primary_at_s", Json.Float kill_at);
           ("warm", Json.Bool (not cold));
           ("runs", Json.Arr (List.map snd results));
           ( "summary",
             Json.Obj
               [ ("converged", Json.Int ok); ("seeds", Json.Int seeds) ] );
         ])
  else Printf.printf "\n%d/%d seeds converged\n" ok seeds;
  if ok = seeds then 0 else 1

let fo_managers_arg =
  Arg.(
    value & opt int 3
    & info [ "managers" ] ~doc:"Number of managers in the succession")

let kill_primary_arg =
  Arg.(
    value & opt float 1.0
    & info [ "kill-primary-at" ]
        ~doc:
          "Fail-stop the current primary at this virtual time (seconds); \
           0 disables the kill (liveness-only run)")

let partition_primary_arg =
  Arg.(
    value & opt float 0.0
    & info [ "partition-primary-at" ]
        ~doc:
          "Cut the initial primary off from every other node at this \
           virtual time (seconds); 0 disables the partition. Combine with \
           $(b,--heal-after) to exercise the post-heal demotion path")

let heal_after_arg =
  Arg.(
    value & opt float 2.5
    & info [ "heal-after" ]
        ~doc:
          "Heal the $(b,--partition-primary-at) cut after this many \
           (virtual) seconds, forcing the stale primary to meet its \
           successor's higher term and demote")

let repl_lag_arg =
  Arg.(
    value & opt int 0
    & info [ "repl-lag" ]
        ~doc:
          "Extra latency (milliseconds) on every manager-to-manager link, \
           so backups replicate behind the member-facing traffic")

let fo_until_arg =
  Arg.(
    value & opt int 15
    & info [ "until" ] ~doc:"Virtual-time bound in seconds per run")

let fo_cold_arg =
  Arg.(
    value & flag
    & info [ "cold" ]
        ~doc:
          "Disable warm promotion: the successor always cold-restarts and \
           members re-handshake — the baseline warm failover is measured \
           against")

let failover_cmd =
  let doc =
    "kill the primary of a multi-manager group under seeded faults and \
     report promotion mode, replication counters and per-backup lag"
  in
  Cmd.v (Cmd.info "failover" ~doc)
    Term.(
      const run_failover $ chaos_members_arg $ fo_managers_arg
      $ chaos_seeds_arg $ loss_arg $ kill_primary_arg $ partition_primary_arg
      $ heal_after_arg $ repl_lag_arg $ fo_until_arg $ fo_cold_arg $ json_arg
      $ verbose_arg)

(* --- crash-matrix --- *)

let run_crash_matrix members appends compact_every seed no_torn verbose =
  let show label report =
    Printf.printf "%s:\n" label;
    Format.printf "%a@." Enclaves.Crash_matrix.pp_report report;
    if verbose || report.Enclaves.Crash_matrix.violations <> [] then
      List.iter
        (fun v -> Format.printf "  %a@." Enclaves.Crash_matrix.pp_violation v)
        report.Enclaves.Crash_matrix.violations;
    report.Enclaves.Crash_matrix.violations = []
  in
  let journal_ok =
    show "journal"
      (Enclaves.Crash_matrix.run ~members ~appends ~compact_every ~seed
         ~torn:(not no_torn) ())
  in
  let queue_ok =
    show "delivery queue"
      (Enclaves.Crash_matrix.run_queue ~seed ~torn:(not no_torn) ())
  in
  let degraded_ok =
    show "degraded-mode queue"
      (Enclaves.Crash_matrix.run_degraded ~seed ~torn:(not no_torn) ())
  in
  if journal_ok && queue_ok && degraded_ok then begin
    print_endline
      "every crash image recovers: no exception, no resurrected session, no \
       epoch regression, no acknowledged write lost, no delivery duplicated \
       after replay, no shed record resurrected from a degraded-mode image";
    0
  end
  else 1

let cm_members_arg =
  Arg.(value & opt int 4 & info [ "members"; "n" ] ~doc:"Sessions in the workload")

let cm_appends_arg =
  Arg.(
    value & opt int 24
    & info [ "appends" ]
        ~doc:"Extra epoch bumps appended (drives repeated compaction)")

let cm_compact_arg =
  Arg.(
    value & opt int 8
    & info [ "compact-every" ] ~doc:"Journal auto-compaction threshold")

let cm_seed_arg =
  Arg.(value & opt int64 11L & info [ "seed" ] ~doc:"Workload key/nonce seed")

let cm_no_torn_arg =
  Arg.(
    value & flag
    & info [ "no-torn" ]
        ~doc:"Skip torn-write variants (boundary images only; faster)")

let crash_matrix_cmd =
  let doc =
    "enumerate every crash point of the journal's disk protocol and check \
     that recovery survives each one"
  in
  Cmd.v
    (Cmd.info "crash-matrix" ~doc)
    Term.(
      const run_crash_matrix $ cm_members_arg $ cm_appends_arg $ cm_compact_arg
      $ cm_seed_arg $ cm_no_torn_arg $ verbose_arg)

(* --- churn --- *)

let run_churn members churn_rate epoch_window rounds seeds seed loss duplicate
    stale json verbose =
  let module D = Enclaves.Driver.Improved in
  (* Flag validation: reject configurations whose failure mode would be
     trivial (nothing churns, or everything wedges) loudly instead. *)
  if members < 2 then begin
    prerr_endline
      "churn: --members must be at least 2 (one member to churn and one to \
       stay)";
    exit 2
  end;
  if churn_rate <= 0.0 || churn_rate > 1.0 then begin
    prerr_endline
      "churn: --churn-rate must be in (0,1] — the per-round probability an \
       in-session member is evicted as silent";
    exit 2
  end;
  if epoch_window < 0 then begin
    prerr_endline
      "churn: --epoch-window must be non-negative (0 delivers only \
       same-epoch records fresh)";
    exit 2
  end;
  if rounds < 1 || seeds < 1 then begin
    prerr_endline "churn: --rounds and --seeds must be positive";
    exit 2
  end;
  let directory =
    List.init members (fun i ->
        let name = Printf.sprintf "user%d" i in
        (name, name ^ "-pw"))
  in
  let policy =
    {
      Enclaves.Delivery.width = epoch_window;
      on_stale =
        (if stale then Enclaves.Delivery.Deliver_stale
         else Enclaves.Delivery.Reject);
    }
  in
  (* Tight anti-entropy watchdogs so an evicted member gives up on its
     dead session and re-joins within a churn round or two. *)
  let recovery =
    {
      D.default_recovery with
      D.digest_period = Netsim.Vtime.of_ms 500;
      probe_after = Netsim.Vtime.of_ms 1500;
      reset_after = Netsim.Vtime.of_s 3;
    }
  in
  let round_s = 4 in
  let rekeys_total = ref 0 in
  let one seed =
    let rng = Prng.Splitmix.create seed in
    let d =
      D.create ~seed ~retry:D.default_retry ~recovery ~delivery:policy
        ~leader:"leader" ~directory ()
    in
    let plan =
      Netsim.Faultplan.make
        ~default_link:(Netsim.Faultplan.lossy_link ~duplicate loss)
        ()
    in
    Netsim.Network.set_faultplan (D.net d) (Some plan);
    List.iter (fun (n, _) -> D.join d n) directory;
    ignore (D.run ~until:(Netsim.Vtime.of_s 5) d);
    let churn_end = 5 + (rounds * round_s) in
    (* Rekeys every 2s age the queued entries against the window. *)
    ignore
      (D.start_periodic_rekey d
         ~period:(Netsim.Vtime.of_s 2)
         ~until:(Netsim.Vtime.of_s churn_end) ());
    rekeys_total := (churn_end - 5) / 2;
    let hwm = ref 0 and evictions = ref 0 in
    for r = 1 to rounds do
      List.iter
        (fun (n, _) ->
          let offline = List.mem n (D.offline_members d) in
          if (not offline) && Prng.Splitmix.next_float rng < churn_rate then begin
            incr evictions;
            D.expel d n
          end)
        directory;
      let t0 = 5 + ((r - 1) * round_s) in
      for s = 1 to round_s do
        ignore (D.run ~until:(Netsim.Vtime.of_s (t0 + s)) d);
        hwm := max !hwm (D.total_queue_depth d)
      done
    done;
    (* Heal: stop churning, let the watchdogs re-admit everyone and the
       queues drain. *)
    ignore (D.run ~until:(Netsim.Vtime.of_s (churn_end + 25)) d);
    let stats = D.delivery_stats d in
    let member_rows =
      List.map (fun (n, _) -> (n, D.member d n)) directory
    in
    let no_dup =
      (* Zero duplicate deliveries: every member applied a strictly
         increasing run of delivery seqs, no seq twice. *)
      List.for_all
        (fun (_, m) ->
          let rec mono last = function
            | [] -> true
            | s :: rest -> s > last && mono s rest
          in
          mono (-1) (Enclaves.Member.queued_applied m))
        member_rows
    in
    let no_leak =
      (* Zero cross-epoch leaks: with the reject policy no stale record
         reaches any member at all; with --deliver-stale they arrive
         flagged but [converged] below separately proves no member's
         installed epoch moved off the leader's. *)
      stale
      || List.for_all
           (fun (_, m) -> Enclaves.Member.stale_deliveries m = 0)
           member_rows
    in
    (* Bounded depth: each eviction parks at most the notices plus one
       record per rekey fired while it was away. *)
    let depth_bound = members * (!rekeys_total + 4) in
    let bounded = !hwm <= depth_bound in
    let drained =
      D.total_queue_depth d = 0 && D.offline_members d = []
    in
    let converged = D.view_converged d in
    let ok = no_dup && no_leak && bounded && drained && converged in
    if not json then begin
      Printf.printf
        "seed=%-3Ld %-9s evictions=%-3d hwm=%-3d dup=%b leak=%b drained=%b \
         bounded=%b\n"
        seed
        (if ok then "CONVERGED" else "WEDGED")
        !evictions !hwm (not no_dup) (not no_leak) drained bounded;
      Format.printf "         delivery: %a@." Netsim.Stats.pp_named
        (D.delivery_counters d);
      if verbose then begin
        Format.printf "         recovery: %a@." Netsim.Stats.pp_named
          (D.recovery_counters d);
        ignore stats
      end
    end;
    let row =
      Json.Obj
        [
          ("seed", Json.Int (Int64.to_int seed));
          ("converged", Json.Bool ok);
          ("evictions", Json.Int !evictions);
          ("queue_hwm", Json.Int !hwm);
          ("duplicates", Json.Bool (not no_dup));
          ("leaks", Json.Bool (not no_leak));
          ("drained", Json.Bool drained);
          ("bounded", Json.Bool bounded);
          ("delivery", Json.counters (D.delivery_counters d));
        ]
    in
    (ok, row)
  in
  if not json then
    Printf.printf
      "churn: %d members, rate=%.0f%%/round, window=%d, %d rounds, \
       loss=%.0f%% dup=%.0f%% stale=%s\n"
      members (100. *. churn_rate) epoch_window rounds (100. *. loss)
      (100. *. duplicate)
      (if stale then "deliver" else "reject");
  let seed_list = List.init seeds (fun i -> Int64.add seed (Int64.of_int i)) in
  let results = List.map one seed_list in
  let ok = List.length (List.filter fst results) in
  if json then
    Json.print
      (Json.Obj
         [
           ("command", Json.Str "churn");
           ("members", Json.Int members);
           ("churn_rate", Json.Float churn_rate);
           ("epoch_window", Json.Int epoch_window);
           ("rounds", Json.Int rounds);
           ("loss", Json.Float loss);
           ("duplicate", Json.Float duplicate);
           ("stale_policy", Json.Str (if stale then "deliver" else "reject"));
           ("runs", Json.Arr (List.map snd results));
           ( "summary",
             Json.Obj
               [ ("converged", Json.Int ok); ("seeds", Json.Int seeds) ] );
         ])
  else
    Printf.printf "\n%d/%d seeds converged with clean delivery\n" ok seeds;
  if ok = seeds then 0 else 1

let churn_rate_arg =
  Arg.(
    value & opt float 0.4
    & info [ "churn-rate" ]
        ~doc:
          "Per-round probability that each in-session member is evicted as \
           silent (its traffic then queues durably until it re-joins)")

let epoch_window_arg =
  Arg.(
    value & opt int 1
    & info [ "epoch-window" ]
        ~doc:
          "Inclusive epoch-window width of the re-seal policy: queued \
           records at most this many rekeys old still drain fresh")

let churn_rounds_arg =
  Arg.(value & opt int 6 & info [ "rounds" ] ~doc:"Churn rounds per seed")

let churn_seeds_arg =
  Arg.(value & opt int 5 & info [ "seeds" ] ~doc:"Seeds swept from --seed up")

let churn_duplicate_arg =
  Arg.(
    value & opt float 0.05
    & info [ "duplicate" ]
        ~doc:
          "Per-frame duplication probability (exercises the member-side \
           delivery floor)")

let churn_loss_arg =
  Arg.(
    value & opt float 0.05
    & info [ "loss" ] ~doc:"Per-frame loss probability during the soak")

let churn_stale_arg =
  Arg.(
    value & flag
    & info [ "deliver-stale" ]
        ~doc:
          "Use the deliver-stale policy arm instead of reject for \
           beyond-window records")

let churn_cmd =
  let doc =
    "soak the store-and-forward delivery queues under seeded member churn \
     and verify exactly-once, in-window delivery"
  in
  Cmd.v (Cmd.info "churn" ~doc)
    Term.(
      const run_churn $ chaos_members_arg $ churn_rate_arg $ epoch_window_arg
      $ churn_rounds_arg $ churn_seeds_arg $ seed_arg $ churn_loss_arg
      $ churn_duplicate_arg $ churn_stale_arg $ json_arg $ verbose_arg)

(* --- intrude --- *)

let run_intrude arm_str members seeds until_s no_admission sn_config json
    verbose =
  let module D = Enclaves.Driver.Improved in
  let module S = Enclaves.Sentinel in
  let arm =
    match arm_str with
    | "a1-flood" -> Netsim.Intruder.Preauth_flood
    | "storm" -> Netsim.Intruder.Handshake_storm
    | "a2-forge" -> Netsim.Intruder.Forge_burst
    | "a3-replay" -> Netsim.Intruder.Replay_burst
    | other -> (
        match Netsim.Intruder.arm_of_name other with
        | Some a -> a
        | None ->
            prerr_endline
              ("intrude: unknown arm '" ^ other
             ^ "' (a1-flood|storm|a2-forge|a3-replay|frame-replay|frame-flood)");
            exit 2)
  in
  let framing =
    match arm with
    | Netsim.Intruder.Frame_replay | Netsim.Intruder.Frame_flood -> true
    | _ -> false
  in
  if members < 2 then begin
    prerr_endline
      "intrude: --members must be at least 2 (one early member and one \
       joining during the attack)";
    exit 2
  end;
  if until_s < 10 then begin
    prerr_endline
      "intrude: --until must be at least 10 (the campaign runs 3s-6s and \
       the post-containment probe needs the tail)";
    exit 2
  end;
  let honest =
    List.init members (fun i ->
        let name = Printf.sprintf "user%d" i in
        (name, name ^ "-pw"))
  in
  let directory = honest @ [ ("mallory", "mallory-pw") ] in
  (* The last half of the honest users (at least one) join in the
     middle of the attack window — the join-success probes the
     admission-control comparison is measured on. *)
  let n_late = max 1 (members / 2) in
  let early = List.filteri (fun i _ -> i < members - n_late) honest in
  let late = List.filteri (fun i _ -> i >= members - n_late) honest in
  let victim = "user0" in
  let one seed =
    let intrusion = if no_admission then None else Some sn_config in
    let d =
      D.create ~seed ~retry:D.default_retry ~preauth:D.default_preauth
        ?intrusion ~leader:"leader" ~directory ()
    in
    (* The insider joins only for the insider arms; a framing campaign
       runs against an all-honest group, with the attacker on the raw
       wire. *)
    List.iter (fun (n, _) -> D.join d n)
      (early @ if framing then [] else [ ("mallory", "") ]);
    ignore (D.run ~until:(Netsim.Vtime.of_s 2) d);
    let actor =
      if framing then begin
        (* Give the victim leader-bound traffic of its own so the
           replay arm has genuinely-MACed frames to re-inject under
           the victim's name. *)
        D.send_app d victim "victim chatter";
        ignore (D.run ~until:(Netsim.Vtime.of_ms 2200) d);
        `Outsider (Adversary.Outsider.create ~driver:d ~victim ())
      end
      else begin
        (* Give the insider replayable traffic of its own and a
           session key to pocket, then rotate the group so the
           pocketed key is genuinely retired when the forge arm
           reuses it. *)
        D.send_app d "mallory" "insider chatter";
        ignore (D.run ~until:(Netsim.Vtime.of_ms 2200) d);
        let insider =
          Adversary.Insider.create ~driver:d ~insider:"mallory"
            ~password:"mallory-pw" ()
        in
        ignore (Adversary.Insider.harvest insider);
        D.rekey d;
        `Insider insider
      end
    in
    (* 8 frames every 20 ms: five times the pre-auth queue's service
       rate (4 per 50 ms) with refills faster than the pump drains, so
       without admission control the queue stays pinned at capacity
       and tail-drops legitimate joins for the whole window. *)
    let campaign =
      Netsim.Intruder.campaign ~arm ~start:(Netsim.Vtime.of_s 3)
        ~stop:(Netsim.Vtime.of_s 6)
        ~period:(Netsim.Vtime.of_ms 20)
        ~burst:8 ()
    in
    (match actor with
    | `Insider i -> ignore (Adversary.Insider.launch i campaign)
    | `Outsider o -> ignore (Adversary.Outsider.launch o campaign));
    ignore (D.run ~until:(Netsim.Vtime.of_s 4) d);
    List.iter (fun (n, _) -> D.join d n) late;
    (* Joins are scored one second after the campaign window closes —
       the deadline that separates "rode through the flood" from
       "eventually recovered once it stopped". *)
    ignore (D.run ~until:(Netsim.Vtime.of_s 7) d);
    let joins_ok =
      List.length
        (List.filter
           (fun (n, _) -> Enclaves.Member.is_connected (D.member d n))
           late)
    in
    ignore (D.run ~until:(Netsim.Vtime.of_s 8) d);
    let stats = D.sentinel_stats d in
    let suspect = if framing then victim else "mallory" in
    let level = Option.map (fun sn -> S.level sn suspect) (D.sentinel d) in
    let wire_level =
      Option.map (fun sn -> S.level sn S.wire_peer) (D.sentinel d)
    in
    let quarantined = function
      | Some l -> S.level_rank l >= S.level_rank S.Quarantined
      | None -> false
    in
    let contained =
      if framing then
        (* Framing containment is dual: the WIRE pseudo-peer must be
           contained (scored to quarantine, or its injections dropped
           at the door) while the framed honest victim must NOT be. *)
        (quarantined wire_level
        || stats.Netsim.Stats.injections_blocked > 0)
        && not (quarantined level)
      else quarantined level
    in
    (* Post-containment secrecy probe: a secret sent from here on must
       be unreadable to an eavesdropper who holds every key the
       insider ever pocketed AND the whole wire trace — including the
       early group-key distributions wrapped under the insider's
       session key. Only the emergency rekey (which excluded the
       suspect) makes this hold; in the baseline the insider is still
       a member, its session key unwraps every rotation, and the
       secret reads straight off the wire. A pure wire attacker
       pockets nothing, so for the framing arms the probe checks the
       replayed/fabricated traffic leaked no key material. *)
    let secret = Printf.sprintf "post-containment secret %Ld" seed in
    D.send_app d "user0" secret;
    ignore (D.run ~until:(Netsim.Vtime.of_s until_s) d);
    let unreadable =
      let know = Adversary.Knowledge.create () in
      (match actor with
      | `Insider i ->
          List.iter (Adversary.Knowledge.add_key know)
            (Adversary.Insider.retired_keys i)
      | `Outsider _ -> ());
      let trace = Netsim.Network.trace (D.net d) in
      Adversary.Knowledge.observe_trace know trace;
      Adversary.Knowledge.saturate know;
      not
        (List.exists
           (fun payload ->
             match Adversary.Knowledge.decrypt_app know payload with
             | Some (_, body) -> body = secret
             | None -> false)
           (Netsim.Trace.payloads trace))
    in
    let injected =
      match actor with
      | `Insider i -> Adversary.Insider.counters i
      | `Outsider o -> Adversary.Outsider.counters o
    in
    if not json then begin
      (if framing then
         Printf.printf
           "seed=%-3Ld victim=%-11s wire=%-11s blocked=%-4d joins=%d/%d \
            sealed=%b\n"
           seed
           (match level with
           | Some l -> S.level_name l
           | None -> "(no sentinel)")
           (match wire_level with Some l -> S.level_name l | None -> "-")
           stats.Netsim.Stats.injections_blocked joins_ok n_late unreadable
       else
         Printf.printf "seed=%-3Ld %-11s joins=%d/%d rekeys=%d sealed=%b\n"
           seed
           (match level with
           | Some l -> S.level_name l
           | None -> "(no sentinel)")
           joins_ok n_late stats.Netsim.Stats.emergency_rekeys unreadable);
      Format.printf "         injected: %a@." Netsim.Stats.pp_named injected;
      if verbose then
        Format.printf "         sentinel: %a@." Netsim.Stats.pp_named
          (D.sentinel_counters d)
    end;
    let row =
      Json.Obj
        ([
           ("seed", Json.Int (Int64.to_int seed));
           ("contained", Json.Bool contained);
           ( "level",
             Json.Str
               (match level with Some l -> S.level_name l | None -> "") );
           ("joins_ok", Json.Int joins_ok);
           ("joins_total", Json.Int n_late);
           ("post_rekey_unreadable", Json.Bool unreadable);
           ("injected", Json.counters injected);
           ("sentinel", Json.counters (D.sentinel_counters d));
         ]
        @
        if framing then
          [
            ("victim", Json.Str victim);
            ( "wire_level",
              Json.Str
                (match wire_level with
                | Some l -> S.level_name l
                | None -> "") );
            ( "injections_blocked",
              Json.Int stats.Netsim.Stats.injections_blocked );
          ]
        else [])
    in
    ((contained, joins_ok, unreadable), row)
  in
  if not json then
    Printf.printf
      "intrude: arm=%s %d members (%s), %d late joiners, admission=%s \
       bound=%ds\n"
      (Netsim.Intruder.arm_name arm)
      members
      (if framing then "wire attacker framing " ^ victim else "+insider")
      n_late
      (if no_admission then "OFF (baseline)" else "on")
      until_s;
  let seed_list = List.init seeds (fun i -> Int64.of_int (i + 1)) in
  let results = List.map one seed_list in
  let contained_n =
    List.length (List.filter (fun ((c, _, _), _) -> c) results)
  in
  let joins_ok = List.fold_left (fun a ((_, j, _), _) -> a + j) 0 results in
  let joins_total = seeds * n_late in
  let sealed_n =
    List.length (List.filter (fun ((_, _, u), _) -> u) results)
  in
  let join_ratio = float_of_int joins_ok /. float_of_int joins_total in
  let ok =
    if no_admission then true
      (* the baseline arm is informational: it documents the damage
         admission control is measured against *)
    else contained_n = seeds && sealed_n = seeds && join_ratio >= 0.95
  in
  if json then
    Json.print
      (Json.Obj
         [
           ("command", Json.Str "intrude");
           ("arm", Json.Str (Netsim.Intruder.arm_name arm));
           ("members", Json.Int members);
           ("admission", Json.Bool (not no_admission));
           ("runs", Json.Arr (List.map snd results));
           ( "summary",
             Json.Obj
               [
                 ("seeds", Json.Int seeds);
                 ("contained", Json.Int contained_n);
                 ("join_success", Json.Float join_ratio);
                 ("post_rekey_sealed", Json.Int sealed_n);
                 ("ok", Json.Bool ok);
               ] );
         ])
  else
    Printf.printf
      "\n%d/%d seeds %s; join success %d/%d (%.0f%%); post-rekey sealed \
       %d/%d%s\n"
      contained_n seeds
      (if framing then "contained the wire (victim spared)"
       else "contained the insider")
      joins_ok joins_total (100.0 *. join_ratio) sealed_n seeds
      (if no_admission then "  [baseline: admission off]" else "");
  if ok then 0 else 1

let intrude_arm_arg =
  Arg.(
    value
    & pos 0 string "a1-flood"
    & info [] ~docv:"ARM"
        ~doc:"a1-flood|storm|a2-forge|a3-replay|frame-replay|frame-flood")

let intrude_seeds_arg =
  Arg.(value & opt int 5 & info [ "seeds" ] ~doc:"Sweep seeds 1..N")

let intrude_until_arg =
  Arg.(
    value & opt int 12
    & info [ "until" ] ~doc:"Virtual-time bound in seconds per run")

let no_admission_arg =
  Arg.(
    value & flag
    & info [ "no-admission" ]
        ~doc:
          "Disable the sentinel (baseline arm): the pre-auth queue still \
           runs, but nothing scores evidence or denies admission, so the \
           flood's damage to legitimate joins is measured raw")

let intrude_cmd =
  let doc =
    "run a seeded intrusion campaign — compromised insider (pre-auth flood, \
     handshake storm, expired-key forgery, replay) or wire-level framing \
     (frame-replay, frame-flood) — against the online sentinel and report \
     containment, join success and post-rekey secrecy"
  in
  Cmd.v (Cmd.info "intrude" ~doc)
    Term.(
      const run_intrude $ intrude_arm_arg $ chaos_members_arg
      $ intrude_seeds_arg $ intrude_until_arg $ no_admission_arg
      $ sentinel_config_term $ json_arg $ verbose_arg)

(* --- calibrate --- *)

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Merge freshly produced [rows] (pre-rendered JSON result objects)
   into the bench trajectory file at [path] under [group], preserving
   every row of every other group the benchmark harness (or another
   sweep) wrote — and letting them preserve these rows in turn. *)
let merge_bench_group ~path ~group rows =
  let old_lines =
    if Sys.file_exists path then begin
      let ic = open_in path in
      let rec go acc =
        match input_line ic with
        | l -> go (l :: acc)
        | exception End_of_file ->
            close_in ic;
            List.rev acc
      in
      go []
    end
    else []
  in
  let strip_comma l =
    let t = String.trim l in
    if t <> "" && t.[String.length t - 1] = ',' then
      String.sub t 0 (String.length t - 1)
    else t
  in
  let keep =
    List.filter_map
      (fun l ->
        let t = String.trim l in
        if
          String.length t > 1
          && t.[0] = '{'
          && not (contains_sub t ("\"group\": \"" ^ group ^ "\""))
        then Some (strip_comma l)
        else None)
      old_lines
  in
  let mode =
    List.fold_left
      (fun acc l ->
        let t = String.trim l in
        if String.length t >= 7 && String.sub t 0 7 = "\"mode\":" then
          match String.split_on_char '"' t with
          | _ :: _ :: _ :: v :: _ -> v
          | _ -> acc
        else acc)
      "none" old_lines
  in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"enclaves-bench/1\",\n";
  Printf.fprintf oc "  \"mode\": \"%s\",\n" mode;
  Printf.fprintf oc "  \"results\": [";
  let first = ref true in
  List.iter
    (fun row ->
      Printf.fprintf oc "%s\n    %s" (if !first then "" else ",") row;
      first := false)
    (keep @ rows);
  Printf.fprintf oc "\n  ]\n}\n";
  close_out oc

let run_calibrate seeds clean_seeds quick out json base_cfg =
  let module D = Enclaves.Driver.Improved in
  let module S = Enclaves.Sentinel in
  let members = 5 in
  let honest =
    List.init members (fun i ->
        let name = Printf.sprintf "user%d" i in
        (name, name ^ "-pw"))
  in
  let n_late = 2 in
  let early = List.filteri (fun i _ -> i < members - n_late) honest in
  let late = List.filteri (fun i _ -> i >= members - n_late) honest in
  let quarantined l = S.level_rank l >= S.level_rank S.Quarantined in
  (* One seeded attack run under [cfg] — the intrude scenario without
     the secrecy probe, bounded at 8 virtual seconds. Returns whether
     the attacker was contained, whether any honest member was falsely
     quarantined, and whether the late joins all came up. *)
  let attack_run cfg arm seed =
    let framing =
      match arm with
      | Netsim.Intruder.Frame_replay | Netsim.Intruder.Frame_flood -> true
      | _ -> false
    in
    let directory =
      honest @ if framing then [] else [ ("mallory", "mallory-pw") ]
    in
    let d =
      D.create ~seed ~retry:D.default_retry ~preauth:D.default_preauth
        ~intrusion:cfg ~leader:"leader" ~directory ()
    in
    List.iter (fun (n, _) -> D.join d n)
      (early @ if framing then [] else [ ("mallory", "") ]);
    ignore (D.run ~until:(Netsim.Vtime.of_s 2) d);
    let launch =
      if framing then begin
        D.send_app d "user0" "victim chatter";
        ignore (D.run ~until:(Netsim.Vtime.of_ms 2200) d);
        let o = Adversary.Outsider.create ~driver:d ~victim:"user0" () in
        fun c -> ignore (Adversary.Outsider.launch o c)
      end
      else begin
        D.send_app d "mallory" "insider chatter";
        ignore (D.run ~until:(Netsim.Vtime.of_ms 2200) d);
        let i =
          Adversary.Insider.create ~driver:d ~insider:"mallory"
            ~password:"mallory-pw" ()
        in
        ignore (Adversary.Insider.harvest i);
        D.rekey d;
        fun c -> ignore (Adversary.Insider.launch i c)
      end
    in
    launch
      (Netsim.Intruder.campaign ~arm ~start:(Netsim.Vtime.of_s 3)
         ~stop:(Netsim.Vtime.of_s 6)
         ~period:(Netsim.Vtime.of_ms 20)
         ~burst:8 ());
    ignore (D.run ~until:(Netsim.Vtime.of_s 4) d);
    List.iter (fun (n, _) -> D.join d n) late;
    ignore (D.run ~until:(Netsim.Vtime.of_s 7) d);
    let joins_ok =
      List.for_all
        (fun (n, _) -> Enclaves.Member.is_connected (D.member d n))
        late
    in
    ignore (D.run ~until:(Netsim.Vtime.of_s 8) d);
    let sn = Option.get (D.sentinel d) in
    let stats = D.sentinel_stats d in
    let detected =
      if framing then
        quarantined (S.level sn S.wire_peer)
        || stats.Netsim.Stats.injections_blocked > 0
      else quarantined (S.level sn "mallory")
    in
    let fp = List.exists (fun (n, _) -> quarantined (S.level sn n)) honest in
    (detected, fp, joins_ok)
  in
  (* One clean-chaos run: no attacker, a lossy fault plan. Any honest
     quarantine is a false positive. *)
  let clean_run cfg seed =
    let d =
      D.create ~seed ~retry:D.default_retry ~preauth:D.default_preauth
        ~intrusion:cfg ~leader:"leader" ~directory:honest ()
    in
    let plan =
      Netsim.Faultplan.make
        ~default_link:
          (Netsim.Faultplan.lossy_link ~corrupt:0.02 ~duplicate:0.02
             ~spike_prob:0.0 0.15)
        ()
    in
    Netsim.Network.set_faultplan (D.net d) (Some plan);
    List.iter (fun (n, _) -> D.join d n) honest;
    ignore (D.run ~until:(Netsim.Vtime.of_s 8) d);
    let sn = Option.get (D.sentinel d) in
    List.exists (fun (n, _) -> quarantined (S.level sn n)) honest
  in
  let arms =
    [
      Netsim.Intruder.Preauth_flood; Netsim.Intruder.Handshake_storm;
      Netsim.Intruder.Forge_burst; Netsim.Intruder.Replay_burst;
      Netsim.Intruder.Frame_replay; Netsim.Intruder.Frame_flood;
    ]
  in
  let seeds = if quick then min seeds 1 else seeds in
  let clean_seeds = if quick then min clean_seeds 2 else clean_seeds in
  let points =
    let b = base_cfg in
    [ ("shipped", b); ("no-attribution", { b with S.attribution = false }) ]
    @
    if quick then []
    else
      [
        ("wire-discount-0.5", { b with S.wire_discount = 0.5 });
        ("wire-discount-1.0", { b with S.wire_discount = 1.0 });
        ("no-corroboration", { b with S.corroborate_floor = 0.0 });
        ("quarantine-15", { b with S.quarantine_at = 15.0; expel_at = 40.0 });
        ("quarantine-40", { b with S.quarantine_at = 40.0; expel_at = 90.0 });
        ("half-life-1s", { b with S.half_life = Netsim.Vtime.of_s 1 });
        ("half-life-4s", { b with S.half_life = Netsim.Vtime.of_s 4 });
      ]
  in
  if not json then
    Printf.printf
      "calibrate: %d points x (%d arms x %d seeds + %d clean seeds)\n\n\
       %-18s %10s %6s %6s %6s\n"
      (List.length points) (List.length arms) seeds clean_seeds "point"
      "detection" "fp" "joins" "note";
  let eval (label, cfg) =
    let atk =
      List.concat_map
        (fun arm ->
          List.map
            (fun s -> attack_run cfg arm (Int64.of_int (s + 1)))
            (List.init seeds Fun.id))
        arms
    in
    let clean =
      List.map
        (fun s -> clean_run cfg (Int64.of_int (101 + s)))
        (List.init clean_seeds Fun.id)
    in
    let n_atk = List.length atk in
    let count p l = List.length (List.filter p l) in
    let detection =
      float_of_int (count (fun (d, _, _) -> d) atk) /. float_of_int n_atk
    in
    let fp =
      float_of_int (count (fun (_, f, _) -> f) atk + count Fun.id clean)
      /. float_of_int (n_atk + List.length clean)
    in
    let joins =
      float_of_int (count (fun (_, _, j) -> j) atk) /. float_of_int n_atk
    in
    if not json then
      Printf.printf "%-18s %10.2f %6.2f %6.2f\n%!" label detection fp joins;
    (label, detection, fp, joins)
  in
  let frontier = List.map eval points in
  let metric name =
    match List.find_opt (fun (l, _, _, _) -> l = name) frontier with
    | Some (_, d, f, _) -> (d, f)
    | None -> (0.0, 1.0)
  in
  let sd, sf = metric "shipped" in
  let bd, bf = metric "no-attribution" in
  let dominates = sd >= bd && sf <= bf in
  (* Merge the frontier into the bench trajectory file, preserving
     every timing row the benchmark harness wrote (and letting the
     harness preserve these rows in turn). *)
  merge_bench_group ~path:out ~group:"sentinel-frontier"
    (List.map
       (fun (label, d, f, j) ->
         Printf.sprintf
           "{ \"group\": \"sentinel-frontier\", \"name\": \
            \"sentinel-frontier/%s\", \"ns_per_op\": null, \"detection\": \
            %.4f, \"false_positives\": %.4f, \"join_success\": %.4f }"
           label d f j)
       frontier);
  if json then
    Json.print
      (Json.Obj
         [
           ("command", Json.Str "calibrate");
           ( "frontier",
             Json.Arr
               (List.map
                  (fun (label, d, f, j) ->
                    Json.Obj
                      [
                        ("point", Json.Str label);
                        ("detection", Json.Float d);
                        ("false_positives", Json.Float f);
                        ("join_success", Json.Float j);
                      ])
                  frontier) );
           ("shipped_dominates_baseline", Json.Bool dominates);
         ])
  else begin
    Printf.printf
      "\nshipped defaults vs no-attribution baseline: detection %.2f vs \
       %.2f, fp %.2f vs %.2f -> %s\n"
      sd bd sf bf
      (if dominates then "DOMINATES" else "DOMINATED (regression)");
    Printf.printf "frontier written to %s\n" out
  end;
  if dominates then 0 else 1

let calibrate_seeds_arg =
  Arg.(
    value & opt int 2
    & info [ "seeds" ] ~doc:"Seeds per (point, attack arm) pair")

let clean_seeds_arg =
  Arg.(
    value & opt int 3
    & info [ "clean-seeds" ]
        ~doc:"Clean-chaos seeds per point (false-positive control)")

let calibrate_quick_arg =
  Arg.(
    value & flag
    & info [ "quick" ]
        ~doc:
          "Sweep only the shipped point and the no-attribution baseline \
           with one seed per arm (CI smoke)")

let calibrate_out_arg =
  Arg.(
    value
    & opt string "BENCH_results.json"
    & info [ "out" ]
        ~doc:
          "Bench trajectory file to merge the sentinel-frontier group into \
           (timing rows are preserved)")

let calibrate_cmd =
  let doc =
    "sweep sentinel weight/threshold/half-life points, running every \
     intruder arm and a clean-chaos control per point, and emit the \
     detection-vs-false-positive frontier (fails unless the shipped \
     defaults dominate the no-attribution baseline)"
  in
  Cmd.v (Cmd.info "calibrate" ~doc)
    Term.(
      const run_calibrate $ calibrate_seeds_arg $ clean_seeds_arg
      $ calibrate_quick_arg $ calibrate_out_arg $ json_arg
      $ sentinel_config_term)

(* --- nemesis --- *)

(* The omni-fault soak: one seeded run composes every adversarial arm
   the suite knows — lossy links, torn/short/EIO writes, fsync-latency
   spikes, a persistent write stall, an ENOSPC window, an insider
   pre-auth flood, a member outage with store-and-forward backlog, and
   a leader crash+restart — then checks the generic end state: the
   view reconverged, every legitimate join landed, no honest member
   was quarantined, the leader re-armed durability, every shed record
   left a durable Drop marker, and queue bytes stayed bounded. The
   [--no-degrade] arm runs the same schedule with the degraded-mode
   ladder disabled and is expected to wedge on the first refused
   journal write — the damage the ladder is measured against. *)
let run_nemesis members seeds until_s no_degrade expect_wedge out json verbose
    sn_config =
  let module D = Enclaves.Driver.Improved in
  let module S = Enclaves.Sentinel in
  let module L = Enclaves.Leader in
  if members < 4 then begin
    prerr_endline
      "nemesis: --members must be at least 4 (early members, an offline \
       victim and late joiners)";
    exit 2
  end;
  if until_s < 12 then begin
    prerr_endline
      "nemesis: --until must be at least 12 (the fault schedule runs to 8s \
       and recovery needs the tail)";
    exit 2
  end;
  let honest =
    List.init members (fun i ->
        let name = Printf.sprintf "user%d" i in
        (name, name ^ "-pw"))
  in
  let directory = honest @ [ ("mallory", "mallory-pw") ] in
  let n_late = 2 in
  let early = List.filteri (fun i _ -> i < members - n_late) honest in
  let late = List.filteri (fun i _ -> i >= members - n_late) honest in
  let offline_victim = "user1" in
  let global_budget = 2500 in
  let one seed =
    let policy =
      if no_degrade then Some { L.default_policy with L.degrade = false }
      else None
    in
    let storage_faults =
      {
        Store.Fault.none with
        Store.Fault.torn_write = 0.02;
        short_write = 0.02;
        eio = 0.02;
        drop_fsync = 0.05;
        fsync_spike = 0.3;
        fsync_spike_ms = 40;
      }
    in
    let budgets =
      {
        Enclaves.Delivery.per_member_bytes = Some 300;
        global_bytes = Some global_budget;
      }
    in
    let d =
      D.create ~seed ?policy ~retry:D.default_retry
        ~recovery:D.default_recovery ~storage_faults
        ~delivery:Enclaves.Delivery.default_policy ~delivery_budgets:budgets
        ~preauth:D.default_preauth ~intrusion:sn_config ~leader:"leader"
        ~directory ()
    in
    let plan =
      Netsim.Faultplan.make
        ~default_link:(Netsim.Faultplan.lossy_link ~duplicate:0.02 0.05)
        ()
    in
    Netsim.Network.set_faultplan (D.net d) (Some plan);
    (* Leader crash at 2.5s, warm restart 400ms later — before the
       storage-pressure window opens, so recovery itself runs against
       a disk that still accepts writes (the degraded crash matrix
       covers the crash-while-degraded composition offline). *)
    D.schedule_leader_crash d
      ~at:(Netsim.Vtime.of_ms 2500)
      ~restart_after:(Netsim.Vtime.of_ms 400)
      ~warm:true ();
    let wedge = ref None in
    let seg f = if !wedge = None then try f () with e -> wedge := Some e in
    seg (fun () ->
        List.iter (fun (n, _) -> D.join d n) (early @ [ ("mallory", "") ]);
        ignore (D.run ~until:(Netsim.Vtime.of_s 2) d);
        D.send_app d "mallory" "insider chatter";
        ignore (D.run ~until:(Netsim.Vtime.of_ms 2200) d));
    (* The insider harvests its key material, then floods the pre-auth
       door from 3s to 6s — five times the service rate. *)
    seg (fun () ->
        let insider =
          Adversary.Insider.create ~driver:d ~insider:"mallory"
            ~password:"mallory-pw" ()
        in
        ignore (Adversary.Insider.harvest insider);
        D.rekey d;
        ignore
          (Adversary.Insider.launch insider
             (Netsim.Intruder.campaign ~arm:Netsim.Intruder.Preauth_flood
                ~start:(Netsim.Vtime.of_s 3) ~stop:(Netsim.Vtime.of_s 6)
                ~period:(Netsim.Vtime.of_ms 20)
                ~burst:8 ()));
        ignore (D.run ~until:(Netsim.Vtime.of_s 3) d);
        (* Open the backlog phase — after the 2.5s crash, because the
           offline set is leader-instance state, not journaled: one
           member goes dark while periodic rekeys keep minting sealed
           records for it, the byte budgets' pressure source. *)
        D.mark_offline d offline_victim;
        ignore
          (D.start_periodic_rekey d
             ~period:(Netsim.Vtime.of_ms 300)
             ~until:(Netsim.Vtime.of_s 8) ());
        ignore (D.run ~until:(Netsim.Vtime.of_ms 3500) d));
    (* Dying disk: every mutation refused until the stall heals. The
       offline mark is re-asserted first: a post-restart re-handshake
       from the victim drains its queue and clears the mark (that is
       the reconnect contract), but this victim is still dark — the
       operator marks it again. *)
    seg (fun () ->
        D.mark_offline d offline_victim;
        D.trigger_stall d;
        ignore (D.run ~until:(Netsim.Vtime.of_ms 4300) d);
        D.heal_stall d;
        ignore (D.run ~until:(Netsim.Vtime.of_ms 4500) d));
    (* Disk full: clamp the byte budget to a sliver above current
       usage; the journal and queue mirrors exhaust it within a few
       rekeys. Space returns at 6.5s. *)
    seg (fun () ->
        D.set_space_budget d (Some (D.disk_bytes_used d + 150));
        ignore (D.run ~until:(Netsim.Vtime.of_ms 6500) d);
        D.set_space_budget d None;
        ignore (D.run ~until:(Netsim.Vtime.of_s 8) d));
    (* Heal phase: the dark member returns, the late joiners arrive,
       and the run settles to the end-state check. *)
    seg (fun () ->
        D.mark_online d offline_victim;
        List.iter (fun (n, _) -> D.join d n) late;
        ignore (D.run ~until:(Netsim.Vtime.of_s until_s) d));
    let wedged = !wedge <> None in
    let rs = D.resource_stats d in
    let quarantined l = S.level_rank l >= S.level_rank S.Quarantined in
    let honest_quarantined =
      match D.sentinel d with
      | None -> false
      | Some sn -> List.exists (fun (n, _) -> quarantined (S.level sn n)) honest
    in
    let joins_ok =
      List.length
        (List.filter
           (fun (n, _) -> Enclaves.Member.is_connected (D.member d n))
           honest)
    in
    let reconverged =
      (* Convergence over the honest members only: the insider is
         expected to end quarantined and out of the view. *)
      (not wedged)
      &&
      let lview = L.members (D.leader d) in
      match L.group_key (D.leader d) with
      | None -> false
      | Some gk ->
          List.for_all
            (fun (n, _) ->
              let m = D.member d n in
              Enclaves.Member.is_connected m
              && (match Enclaves.Member.group_key m with
                 | Some gk' -> gk'.Enclaves.Types.epoch = gk.Enclaves.Types.epoch
                 | None -> false)
              && Enclaves.Member.group_view m = lview)
            honest
    in
    let healthy_end =
      (not wedged) && D.leader_mode d = L.Healthy && D.durability_armed d
    in
    let markers_durable, bytes_bounded =
      match D.delivery d with
      | None -> (true, true)
      | Some dl ->
          ( not (Enclaves.Delivery.dirty dl),
            Enclaves.Delivery.total_bytes dl <= global_budget )
    in
    let survived =
      (not wedged) && reconverged
      && joins_ok = List.length honest
      && (not honest_quarantined)
      && healthy_end && markers_durable && bytes_bounded
    in
    (* The run only counts if the nemesis actually bit: the ladder was
       entered and re-armed, records were shed, and the disk refused
       writes. (Trivially true for the baseline arm, which wedges
       before re-arming.) *)
    let engaged =
      no_degrade
      || rs.Netsim.Stats.degraded_entries > 0
         && D.rearms d > 0
         && rs.Netsim.Stats.records_shed > 0
         && rs.Netsim.Stats.enospc_hits > 0
    in
    let ok =
      if no_degrade then (not expect_wedge) || wedged
      else survived && engaged
    in
    if not json then begin
      Printf.printf
        "seed=%-3Ld %-8s joins=%d/%d reconverged=%b healthy=%b shed=%d \
         enospc=%d degraded=%d rearms=%d%s\n"
        seed
        (if wedged then "WEDGED"
         else if survived then "SURVIVED"
         else "DAMAGED")
        joins_ok (List.length honest) reconverged healthy_end
        rs.Netsim.Stats.records_shed rs.Netsim.Stats.enospc_hits
        rs.Netsim.Stats.degraded_entries (D.rearms d)
        (match !wedge with
        | Some e -> "  [" ^ Printexc.to_string e ^ "]"
        | None -> "");
      if verbose then begin
        Format.printf "         resource: %a@." Netsim.Stats.pp_named
          (D.resource_counters d);
        Format.printf "         storage:  %a@." Netsim.Stats.pp_named
          (D.storage_counters d);
        Format.printf "         sentinel: %a@." Netsim.Stats.pp_named
          (D.sentinel_counters d)
      end
    end;
    let row =
      Json.Obj
        [
          ("seed", Json.Int (Int64.to_int seed));
          ("wedged", Json.Bool wedged);
          ("survived", Json.Bool survived);
          ("reconverged", Json.Bool reconverged);
          ("joins_ok", Json.Int joins_ok);
          ("joins_total", Json.Int (List.length honest));
          ("honest_quarantined", Json.Bool honest_quarantined);
          ("healthy_end", Json.Bool healthy_end);
          ("shed_markers_durable", Json.Bool markers_durable);
          ("bytes_bounded", Json.Bool bytes_bounded);
          ("resource", Json.counters (D.resource_counters d));
          ("storage", Json.counters (D.storage_counters d));
        ]
    in
    ((ok, wedged, survived), row)
  in
  if not json then
    Printf.printf
      "nemesis: %d members + insider, %d seeds, ladder=%s, bound=%ds\n"
      members seeds
      (if no_degrade then "OFF (baseline)" else "on")
      until_s;
  let seed_list = List.init seeds (fun i -> Int64.of_int (i + 1)) in
  let results = List.map one seed_list in
  let count p = List.length (List.filter p results) in
  let ok_n = count (fun ((o, _, _), _) -> o) in
  let wedged_n = count (fun ((_, w, _), _) -> w) in
  let survived_n = count (fun ((_, _, s), _) -> s) in
  let all_ok = ok_n = seeds in
  (* The degrade arm's per-seed outcomes feed the bench trajectory so
     a regression (a seed that stops surviving, or pressure that stops
     engaging) shows up in bench-diff's history. *)
  if not no_degrade then
    merge_bench_group ~path:out ~group:"nemesis"
      (List.map
         (fun (((_, _, s), _), seed) ->
           Printf.sprintf
             "{ \"group\": \"nemesis\", \"name\": \"nemesis/seed-%Ld\", \
              \"ns_per_op\": null, \"survived\": %b }"
             seed s)
         (List.combine results seed_list));
  if json then
    Json.print
      (Json.Obj
         [
           ("command", Json.Str "nemesis");
           ("members", Json.Int members);
           ("degrade", Json.Bool (not no_degrade));
           ("runs", Json.Arr (List.map snd results));
           ( "summary",
             Json.Obj
               [
                 ("seeds", Json.Int seeds);
                 ("survived", Json.Int survived_n);
                 ("wedged", Json.Int wedged_n);
                 ("ok", Json.Bool all_ok);
               ] );
         ])
  else if no_degrade then
    Printf.printf
      "\n%d/%d seeds wedged without the ladder%s\n" wedged_n seeds
      (if expect_wedge then
         if all_ok then "  [expected: baseline wedges]"
         else "  [FAIL: expected every seed to wedge]"
       else "  [baseline: informational]")
  else
    Printf.printf "\n%d/%d seeds survived the omni-fault schedule\n" survived_n
      seeds;
  if all_ok then 0 else 1

let nemesis_seeds_arg =
  Arg.(value & opt int 5 & info [ "seeds" ] ~doc:"Sweep seeds 1..N")

let nemesis_until_arg =
  Arg.(
    value & opt int 20
    & info [ "until" ] ~doc:"Virtual-time bound in seconds per run")

let no_degrade_arg =
  Arg.(
    value & flag
    & info [ "no-degrade" ]
        ~doc:
          "Disable the degraded-mode ladder (baseline arm): the first \
           journal write the exhausted disk refuses propagates out of the \
           leader instead of entering the ladder, wedging the run")

let expect_wedge_arg =
  Arg.(
    value & flag
    & info [ "expect-wedge" ]
        ~doc:
          "With --no-degrade: fail unless every seed wedges — keeps the \
           baseline demonstrably load-bearing in CI")

let nemesis_out_arg =
  Arg.(
    value
    & opt string "BENCH_results.json"
    & info [ "out" ]
        ~doc:
          "Bench trajectory file to merge the nemesis group into (timing \
           rows are preserved)")

let nemesis_cmd =
  let doc =
    "run the omni-fault soak — lossy links, torn writes, fsync spikes, a \
     write stall, an ENOSPC window, an insider pre-auth flood, a member \
     outage and a leader crash in one seeded schedule — and check the \
     generic end state (view reconverged, all legitimate joins landed, no \
     honest quarantine, durability re-armed, shed records left durable Drop \
     markers, queue bytes bounded)"
  in
  Cmd.v (Cmd.info "nemesis" ~doc)
    Term.(
      const run_nemesis $ chaos_members_arg $ nemesis_seeds_arg
      $ nemesis_until_arg $ no_degrade_arg $ expect_wedge_arg
      $ nemesis_out_arg $ json_arg $ verbose_arg $ sentinel_config_term)

(* --- keys --- *)

let run_keys user password =
  let key = Sym_crypto.Key.long_term ~user ~password in
  Printf.printf "user=%s kind=%s fingerprint=%s\n" user
    (Format.asprintf "%a" Sym_crypto.Key.pp_kind (Sym_crypto.Key.kind key))
    (Sym_crypto.Key.fingerprint key);
  0

let user_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"USER")

let password_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"PASSWORD")

let keys_cmd =
  let doc = "derive and fingerprint a long-term key P_a" in
  Cmd.v (Cmd.info "keys" ~doc) Term.(const run_keys $ user_arg $ password_arg)

(* --- main --- *)

let () =
  let doc = "intrusion-tolerant group management in Enclaves (DSN 2001)" in
  let info = Cmd.info "enclaves" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            session_cmd; attack_cmd; verify_cmd; chaos_cmd; churn_cmd;
            failover_cmd; intrude_cmd; calibrate_cmd; nemesis_cmd;
            crash_matrix_cmd; keys_cmd;
          ]))
