(** Wire-level framing actor for {!Enclaves.Driver.Improved}
    clusters.

    The counterpart of {!Insider} at the opposite end of the privilege
    spectrum: a Dolev-Yao wire attacker that holds {e nothing} — no
    directory entry, no password, no key material, no network
    endpoint. It can only capture honest frames off the wire and
    re-inject them, or fabricate junk, and it puts a chosen {e victim}'s
    name on everything. Its injections arrive [Via_wire] (no [~origin]
    is passed to {!Netsim.Network.inject}), so the transport vouches
    for no socket — the signal the sentinel's injection-path
    attribution discounts.

    The campaign goal is {e framing}, not entry: under a
    claimed-sender evidence scorer, the replay arm's genuinely-MACed
    victim frames and the flood arm's junk under the victim's name
    would quarantine an honest member. The framing arms + this actor
    exist to pin that the attributing sentinel does not.

    Everything is seeded: crafting randomness is a private split of
    the simulation stream, and {!launch} schedules bursts at exactly
    the times the intruder plan dictates. *)

type t

val create :
  driver:Enclaves.Driver.Improved.t ->
  victim:Enclaves.Types.agent ->
  unit ->
  t
(** An outsider bound to one cluster, framing [victim] — normally an
    honest directory member. *)

val intruder : t -> Netsim.Intruder.t
val victim : t -> Enclaves.Types.agent

val counters : t -> (string * int) list
(** Frames actually injected, per arm (see
    {!Netsim.Intruder.counters_named}). *)

val frame_replay : t -> int -> int
(** Re-inject up to [burst] of the victim's own captured leader-bound
    frames verbatim, newest first; returns how many the trace could
    supply. Every frame carries the victim's name and a MAC that
    genuinely verifies as the victim's. *)

val frame_flood : t -> int -> int
(** Inject [burst] junk [AuthInitReq] frames under the victim's name
    at the unauthenticated admission surface. *)

val fire : t -> Netsim.Intruder.arm -> int -> int
(** Dispatch one burst of the given (framing) arm.
    @raise Invalid_argument on an insider arm. *)

val launch : t -> Netsim.Intruder.campaign -> int
(** Schedule the campaign's whole seeded plan ({!Netsim.Intruder.plan})
    as simulator events; returns the number of scheduled bursts. *)
