(** Compromised-insider actor for {!Enclaves.Driver.Improved}
    clusters.

    {!Netsim.Intruder} owns the deterministic campaign schedule; this
    module owns the key material and protocol knowledge needed to
    craft the actual hostile frames. The insider is a genuine
    directory member — its password is real, and {!harvest} pockets
    its live session key before the group rotates past it — so the
    A1/A2/A3 arms model abuse with legitimate credentials, the
    sentinel's hardest case.

    Everything is seeded: the actor's crafting randomness is a private
    split of the simulation stream, and {!launch} schedules bursts at
    exactly the times the intruder plan dictates, so a campaign
    replays tick-for-tick from the cluster seed. *)

type t

val create :
  driver:Enclaves.Driver.Improved.t ->
  insider:Enclaves.Types.agent ->
  password:string ->
  unit ->
  t
(** An insider actor bound to one cluster. [insider]/[password] should
    name a real directory entry — the storm arm runs genuine
    handshakes under it. *)

val intruder : t -> Netsim.Intruder.t
val counters : t -> (string * int) list
(** Frames actually injected, per arm (see
    {!Netsim.Intruder.counters_named}). *)

val harvest : t -> bool
(** Pocket the insider's current session key for the forge arm; [false]
    if it holds none. Call before a rekey or leave retires it. *)

val retired_keys : t -> Sym_crypto.Key.t list

val flood : t -> int -> int
(** A1: inject [burst] junk [AuthInitReq] frames now — half under
    ghost names, half under the insider's own — and return the count. *)

val storm : t -> int -> int
(** Inject [burst] {e valid} fresh-nonce [AuthInitReq] frames under
    the insider's identity, churning the leader's half-open table. *)

val forge : t -> int -> int
(** A2: inject [burst] frames sealed under expired (harvested) or
    mismatched key material — MAC failures at the leader. *)

val replay : t -> int -> int
(** A3: re-inject up to [burst] genuine leader-bound frames the
    insider itself once sent, newest first; returns how many the
    trace could supply. Only the insider's own captured frames are
    replayed — replaying a {e victim's} frames is the framing vector
    (evidence lands on the name in the frame), kept out of the arm
    and discussed in DESIGN.md instead. *)

val fire : t -> Netsim.Intruder.arm -> int -> int
(** Dispatch one burst of the given arm. *)

val launch : t -> Netsim.Intruder.campaign -> int
(** Schedule the campaign's whole seeded plan ({!Netsim.Intruder.plan})
    as simulator events; returns the number of scheduled bursts. *)
