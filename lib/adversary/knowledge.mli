(** Concrete Dolev-Yao attacker knowledge.

    This is the byte-level counterpart of the paper's
    [Know(G, q) = Analz(I(G) ∪ trace(q))]: the attacker accumulates
    every payload seen on the wire plus any keys leaked to it (insider
    collusion, Oops events), and {!saturate} computes the analysis
    closure — repeatedly opening every recorded ciphertext with every
    known key under every plausible associated-data context, decoding
    the recovered plaintexts, and extracting any key material they
    carry (session keys and group keys ride inside [AuthKeyDist],
    [LegacyAuth2], [NewKey] and [New_group_key] payloads).

    What the attacker can {e not} do — recover a key from a ciphertext
    alone — mirrors the paper's assumption that the cryptographic
    primitives are unbreakable. *)

type t

val create : unit -> t

val add_key : t -> Sym_crypto.Key.t -> unit
(** Leak a key to the attacker (insider collusion / Oops event). *)

val observe : t -> string -> unit
(** Record raw wire bytes (a frame as seen on the network). *)

val observe_trace : t -> Netsim.Trace.t -> unit
(** Record every payload of a network trace. *)

val saturate : t -> unit
(** Run the Analz closure to a fixed point. Idempotent. *)

val knows_key : t -> Sym_crypto.Key.t -> bool
(** After {!saturate}: does the attacker hold this key? *)

val keys : t -> Sym_crypto.Key.t list
val plaintexts : t -> string list
(** All payload plaintexts recovered so far. *)

val decrypt_app : t -> string -> (string * string) option
(** [decrypt_app t frame_bytes] tries to read an [AppData] frame with
    every known group key; returns [(author, body)] on success. The
    confidentiality-loss check of attack A3. *)

val stats : t -> int * int * int
(** [(observed, keys, plaintexts)] — sizes, for reporting. *)
