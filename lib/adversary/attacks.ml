module F = Wire.Frame
module P = Wire.Payload
module Net = Netsim.Network
module D = Enclaves.Driver

type protocol = Legacy | Improved

type outcome = {
  attack : string;
  protocol : protocol;
  succeeded : bool;
  detail : string;
}

let protocol_name = function Legacy -> "legacy" | Improved -> "improved"

let pp_outcome fmt { attack; protocol; succeeded; detail } =
  Format.fprintf fmt "%s vs %-8s : %-9s (%s)" attack (protocol_name protocol)
    (if succeeded then "SUCCEEDED" else "defeated")
    detail

let directory =
  [ ("alice", "pw-alice"); ("bob", "pw-bob"); ("eve", "pw-eve") ]

(* Frames seen on the wire with a given label, oldest first. *)
let captured_with_label trace label =
  List.filter_map
    (fun payload ->
      match F.decode payload with
      | Ok frame when frame.F.label = label -> Some (frame, payload)
      | Ok _ | Error _ -> None)
    (Netsim.Trace.payloads trace)

(* --- A1: forged ConnectionDenied -------------------------------- *)

let denial_of_service ?(seed = 7L) protocol =
  let forged_denial =
    F.encode
      (F.make ~label:F.Connection_denied ~sender:"leader" ~recipient:"alice"
         ~body:"")
  in
  match protocol with
  | Legacy ->
      let d = D.Legacy.create ~seed ~leader:"leader" ~directory () in
      let net = D.Legacy.net d in
      (* The attacker watches for alice's join request and immediately
         forges a denial; the injection reaches alice before any
         legitimate leader reply can (one hop vs two). *)
      Net.set_adversary net
        (Some
           (fun ~src ~dst:_ ~payload ->
             (match F.decode payload with
             | Ok { F.label = F.Req_open; _ } when src = "alice" ->
                 Net.inject net ~dst:"alice" forged_denial
             | Ok _ | Error _ -> ());
             Net.Deliver));
      D.Legacy.join d "alice";
      let _ = D.Legacy.run d in
      let alice = D.Legacy.member d "alice" in
      let denied =
        match Enclaves.Legacy_member.state alice with
        | Enclaves.Legacy_member.Denied -> true
        | _ -> false
      in
      {
        attack = "A1";
        protocol;
        succeeded = denied && not (Enclaves.Legacy_member.is_connected alice);
        detail =
          (if denied then "alice aborted her join on a forged denial"
           else "alice connected despite the forgery");
      }
  | Improved ->
      let d = D.Improved.create ~seed ~leader:"leader" ~directory () in
      let net = D.Improved.net d in
      Net.set_adversary net
        (Some
           (fun ~src ~dst:_ ~payload ->
             (match F.decode payload with
             | Ok { F.label = F.Auth_init_req; _ } when src = "alice" ->
                 Net.inject net ~dst:"alice" forged_denial
             | Ok _ | Error _ -> ());
             Net.Deliver));
      D.Improved.join d "alice";
      let _ = D.Improved.run d in
      let alice = D.Improved.member d "alice" in
      let connected = Enclaves.Member.is_connected alice in
      {
        attack = "A1";
        protocol;
        succeeded = not connected;
        detail =
          (if connected then
             "no pre-auth exchange exists; the forged denial was ignored"
           else "alice failed to connect");
      }

(* --- A2: forged mem_removed -------------------------------------- *)

let forge_mem_removed ?(seed = 11L) protocol =
  match protocol with
  | Legacy ->
      let d = D.Legacy.create ~seed ~leader:"leader" ~directory () in
      let net = D.Legacy.net d in
      List.iter
        (fun who ->
          D.Legacy.join d who;
          ignore (D.Legacy.run d))
        [ "alice"; "bob"; "eve" ];
      (* Eve is a live member: she holds K_g legitimately. *)
      let eve = D.Legacy.member d "eve" in
      let kg =
        match Enclaves.Legacy_member.group_key eve with
        | Some { Enclaves.Types.key; _ } -> key
        | None -> failwith "eve has no group key"
      in
      let rng = Prng.Splitmix.create 123L in
      let forged =
        Enclaves.Sealed_channel.legacy_seal ~rng ~key:kg ~label:F.Mem_removed
          ~sender:"leader" ~recipient:"bob"
          (P.encode_member_event { P.who = "alice" })
      in
      Net.inject net ~dst:"bob" (F.encode forged);
      let _ = D.Legacy.run d in
      let bob = D.Legacy.member d "bob" in
      let bob_lost_alice =
        not (List.mem "alice" (Enclaves.Legacy_member.group_view bob))
      in
      let leader_has_alice =
        List.mem "alice" (Enclaves.Legacy_leader.members (D.Legacy.leader d))
      in
      {
        attack = "A2";
        protocol;
        succeeded = bob_lost_alice && leader_has_alice;
        detail =
          (if bob_lost_alice then
             "bob's view dropped alice while she is still a member"
           else "bob's view is intact");
      }
  | Improved ->
      let d = D.Improved.create ~seed ~leader:"leader" ~directory () in
      let net = D.Improved.net d in
      List.iter
        (fun who ->
          D.Improved.join d who;
          ignore (D.Improved.run d))
        [ "alice"; "bob"; "eve" ];
      let eve = D.Improved.member d "eve" in
      let kg =
        match Enclaves.Member.group_key eve with
        | Some { Enclaves.Types.key; _ } -> key
        | None -> failwith "eve has no group key"
      in
      let rng = Prng.Splitmix.create 123L in
      (* Forgery attempt 1: an AdminMsg sealed under the group key eve
         holds (she does not have bob's K_a). *)
      let forged =
        Enclaves.Sealed_channel.seal ~rng ~key:kg ~label:F.Admin_msg
          ~sender:"leader" ~recipient:"bob"
          (P.encode_admin_body
             {
               P.l = "leader";
               a = "bob";
               expected = Wire.Nonce.fresh rng;
               next = Wire.Nonce.fresh rng;
               x = Wire.Admin.Member_left "alice";
             })
      in
      Net.inject net ~dst:"bob" (F.encode forged);
      (* Forgery attempt 2: replay a genuine old AdminMsg to bob. *)
      (match
         List.rev
           (captured_with_label (Net.trace net) F.Admin_msg)
         |> List.find_opt (fun ((f : F.t), _) -> f.F.recipient = "bob")
       with
      | Some (_, payload) -> Net.inject net ~dst:"bob" payload
      | None -> ());
      let _ = D.Improved.run d in
      let bob = D.Improved.member d "bob" in
      let bob_lost_alice =
        not (List.mem "alice" (Enclaves.Member.group_view bob))
      in
      {
        attack = "A2";
        protocol;
        succeeded = bob_lost_alice;
        detail =
          (if bob_lost_alice then "bob's view dropped alice"
           else
             "forgery failed (no K_a) and replay failed (stale nonce); \
              bob's view is intact");
      }

(* --- A3: rekey replay --------------------------------------------- *)

let rekey_replay ?(seed = 13L) protocol =
  match protocol with
  | Legacy ->
      let d = D.Legacy.create ~seed ~leader:"leader" ~directory () in
      let net = D.Legacy.net d in
      let knowledge = Knowledge.create () in
      D.Legacy.join d "alice";
      let _ = D.Legacy.run d in
      D.Legacy.join d "eve";
      let _ = D.Legacy.run d in
      (* Rekey to epoch 2; capture the NewKey frame addressed to alice
         straight off the wire. *)
      D.Legacy.rekey d;
      let _ = D.Legacy.run d in
      let new_key_to_alice =
        captured_with_label (Net.trace net) F.New_key
        |> List.filter (fun ((f : F.t), _) -> f.F.recipient = "alice")
        |> List.rev
      in
      let replay_payload =
        match new_key_to_alice with
        | (_, payload) :: _ -> payload
        | [] -> failwith "no NewKey captured"
      in
      (* Eve leaves, taking the epoch-2 key with her. *)
      let eve = D.Legacy.member d "eve" in
      (match Enclaves.Legacy_member.group_key eve with
      | Some { Enclaves.Types.key; _ } -> Knowledge.add_key knowledge key
      | None -> ());
      D.Legacy.leave d "eve";
      let _ = D.Legacy.run d in
      (* Leader rekeys to epoch 3 — eve no longer receives it. *)
      D.Legacy.rekey d;
      let _ = D.Legacy.run d in
      let alice = D.Legacy.member d "alice" in
      let epoch_before =
        match Enclaves.Legacy_member.group_key alice with
        | Some { Enclaves.Types.epoch; _ } -> epoch
        | None -> -1
      in
      (* Replay the captured epoch-2 NewKey. *)
      Net.inject net ~dst:"alice" replay_payload;
      let _ = D.Legacy.run d in
      let epoch_after =
        match Enclaves.Legacy_member.group_key alice with
        | Some { Enclaves.Types.epoch; _ } -> epoch
        | None -> -1
      in
      (* Alice now speaks; can eve read it? *)
      D.Legacy.send_app d "alice" "the secret plan";
      let _ = D.Legacy.run d in
      let app_frames = captured_with_label (Net.trace net) F.App_data in
      Knowledge.saturate knowledge;
      let stolen =
        List.exists
          (fun (_, payload) ->
            match Knowledge.decrypt_app knowledge payload with
            | Some (_, body) -> body = "the secret plan"
            | None -> false)
          app_frames
      in
      {
        attack = "A3";
        protocol;
        succeeded = epoch_after < epoch_before && stolen;
        detail =
          Printf.sprintf
            "alice's epoch %d -> %d after replay; past member %s her message"
            epoch_before epoch_after
            (if stolen then "decrypted" else "could not decrypt");
      }
  | Improved ->
      let d = D.Improved.create ~seed ~leader:"leader" ~directory () in
      let net = D.Improved.net d in
      let knowledge = Knowledge.create () in
      D.Improved.join d "alice";
      let _ = D.Improved.run d in
      D.Improved.join d "eve";
      let _ = D.Improved.run d in
      D.Improved.rekey d;
      let _ = D.Improved.run d in
      (* Capture every admin message sent to alice during the epoch-2
         rekey window. *)
      let admin_to_alice =
        captured_with_label (Net.trace net) F.Admin_msg
        |> List.filter (fun ((f : F.t), _) -> f.F.recipient = "alice")
      in
      let eve = D.Improved.member d "eve" in
      (match Enclaves.Member.group_key eve with
      | Some { Enclaves.Types.key; _ } -> Knowledge.add_key knowledge key
      | None -> ());
      D.Improved.leave d "eve";
      let _ = D.Improved.run d in
      (* rekey_on_leave already issued epoch 3; rekey once more for
         parity with the legacy scenario. *)
      D.Improved.rekey d;
      let _ = D.Improved.run d in
      let alice = D.Improved.member d "alice" in
      let epoch_before =
        match Enclaves.Member.group_key alice with
        | Some { Enclaves.Types.epoch; _ } -> epoch
        | None -> -1
      in
      List.iter
        (fun (_, payload) -> Net.inject net ~dst:"alice" payload)
        admin_to_alice;
      let _ = D.Improved.run d in
      let epoch_after =
        match Enclaves.Member.group_key alice with
        | Some { Enclaves.Types.epoch; _ } -> epoch
        | None -> -1
      in
      D.Improved.send_app d "alice" "the secret plan";
      let _ = D.Improved.run d in
      let app_frames = captured_with_label (Net.trace net) F.App_data in
      Knowledge.saturate knowledge;
      let stolen =
        List.exists
          (fun (_, payload) ->
            match Knowledge.decrypt_app knowledge payload with
            | Some (_, body) -> body = "the secret plan"
            | None -> false)
          app_frames
      in
      {
        attack = "A3";
        protocol;
        succeeded = epoch_after < epoch_before || stolen;
        detail =
          Printf.sprintf
            "alice's epoch %d -> %d (replays rejected as stale); past member %s"
            epoch_before epoch_after
            (if stolen then "decrypted her message"
             else "cannot read her traffic");
      }

(* --- A4: forced disconnect ---------------------------------------- *)

let forced_disconnect ?(seed = 17L) protocol =
  match protocol with
  | Legacy ->
      let d = D.Legacy.create ~seed ~leader:"leader" ~directory () in
      let net = D.Legacy.net d in
      List.iter
        (fun who ->
          D.Legacy.join d who;
          ignore (D.Legacy.run d))
        [ "alice"; "bob" ];
      (* The close request is plaintext: forge one in alice's name. *)
      let forged =
        F.encode
          (F.make ~label:F.Legacy_req_close ~sender:"alice" ~recipient:"leader"
             ~body:"")
      in
      Net.inject net ~dst:"leader" forged;
      let _ = D.Legacy.run d in
      let ejected =
        not (List.mem "alice" (Enclaves.Legacy_leader.members (D.Legacy.leader d)))
      in
      {
        attack = "A4";
        protocol;
        succeeded = ejected;
        detail =
          (if ejected then "a forged plaintext close ejected alice"
           else "alice survived");
      }
  | Improved ->
      let d = D.Improved.create ~seed ~leader:"leader" ~directory () in
      let net = D.Improved.net d in
      List.iter
        (fun who ->
          D.Improved.join d who;
          ignore (D.Improved.run d))
        [ "alice"; "bob" ];
      (* Attempt 1: replay a genuine ReqClose from an earlier session.
         Set it up: alice leaves (we capture the close) and rejoins. *)
      D.Improved.leave d "alice";
      let _ = D.Improved.run d in
      let old_close =
        captured_with_label (Net.trace net) F.Req_close
        |> List.map snd
      in
      D.Improved.join d "alice";
      let _ = D.Improved.run d in
      List.iter (fun payload -> Net.inject net ~dst:"leader" payload) old_close;
      (* Attempt 2: a ReqClose fabricated under a random key. *)
      let rng = Prng.Splitmix.create 99L in
      let bogus_key = Sym_crypto.Key.fresh Sym_crypto.Key.Session rng in
      let fabricated =
        Enclaves.Sealed_channel.seal ~rng ~key:bogus_key ~label:F.Req_close
          ~sender:"alice" ~recipient:"leader"
          (P.encode_req_close { P.a = "alice"; l = "leader" })
      in
      Net.inject net ~dst:"leader" (F.encode fabricated);
      let _ = D.Improved.run d in
      let still_in =
        List.mem "alice" (Enclaves.Leader.members (D.Improved.leader d))
      in
      {
        attack = "A4";
        protocol;
        succeeded = not still_in;
        detail =
          (if still_in then
             "replayed close (old session key) and fabricated close both \
              rejected"
           else "alice was ejected");
      }

let all ?(seed = 21L) () =
  List.concat_map
    (fun proto ->
      [
        denial_of_service ~seed proto;
        forge_mem_removed ~seed proto;
        rekey_replay ~seed proto;
        forced_disconnect ~seed proto;
      ])
    [ Legacy; Improved ]

let matrix_ok outcomes =
  List.for_all
    (fun o ->
      match o.protocol with Legacy -> o.succeeded | Improved -> not o.succeeded)
    outcomes
  && List.length outcomes = 8
