(** The paper's insider attacks (§2.3), scripted end-to-end over the
    network simulator.

    Each attack runs the same scenario twice — once against the legacy
    protocol (§2.2) and once against the improved protocol (§3.2) —
    and reports whether the attacker achieved its goal. The paper's
    headline claim is the outcome matrix: every attack succeeds against
    the legacy protocol and fails against the improved one.

    - {b A1} [denial_of_service] — an outsider forges a
      [ConnectionDenied] to block a legitimate join (the legacy
      pre-auth exchange is unauthenticated; the improved protocol has
      no pre-auth exchange to poison).
    - {b A2} [forge_mem_removed] — an insider (current member) forges
      a "member left" notification to another member using the shared
      group key, corrupting that member's view of the group.
    - {b A3} [rekey_replay] — a past member replays an old
      key-distribution message to roll a member back to a group key
      the attacker still holds, then reads that member's traffic.
    - {b A4} [forced_disconnect] — an outsider forges the close
      request to eject a member (legacy [LegacyReqClose] is
      plaintext; the improved [ReqClose] is sealed under [K_a], and a
      replay from an earlier session fails because the session key
      changed).

    Attacks use only attacker-available material: wire observations
    (via the network tap), keys an insider legitimately held, and
    expired session keys (the paper's Oops events). *)

type protocol = Legacy | Improved

type outcome = {
  attack : string;  (** "A1".."A4" *)
  protocol : protocol;
  succeeded : bool;  (** Did the {e attacker} win? *)
  detail : string;  (** Human-readable evidence. *)
}

val pp_outcome : Format.formatter -> outcome -> unit

val denial_of_service : ?seed:int64 -> protocol -> outcome
val forge_mem_removed : ?seed:int64 -> protocol -> outcome
val rekey_replay : ?seed:int64 -> protocol -> outcome
val forced_disconnect : ?seed:int64 -> protocol -> outcome

val all : ?seed:int64 -> unit -> outcome list
(** Run every attack against both protocols: the full §2.3 matrix. *)

val matrix_ok : outcome list -> bool
(** The paper's expected shape: all four succeed against [Legacy],
    none succeeds against [Improved]. *)
