(* Wire-level framing actor: the agent that turns a {!Netsim.Intruder}
   framing campaign into raw injected frames on an
   {!Enclaves.Driver.Improved} cluster.

   Unlike {!Insider}, the outsider holds nothing: no directory entry,
   no password, no key material, no network endpoint. All it can do is
   what a Dolev-Yao wire attacker can — capture honest frames off the
   trace and re-inject them, or fabricate junk — and put a {e victim's}
   name on the result. Its injections therefore arrive [Via_wire]: the
   transport vouches for no socket, which is exactly the signal the
   sentinel's attribution discounts. The campaign's goal is not entry
   (it has no keys) but {e framing}: making the leader's evidence
   scores quarantine an honest member. *)

module F = Wire.Frame
module Net = Netsim.Network
module D = Enclaves.Driver
module I = Netsim.Intruder

type t = {
  driver : D.Improved.t;
  victim : Enclaves.Types.agent;
  intr : I.t;
  rng : Prng.Splitmix.t;  (* frame-crafting randomness; private split *)
}

let create ~driver ~victim () =
  let rng = Prng.Splitmix.split (Netsim.Sim.rng (D.Improved.sim driver)) in
  { driver; victim; intr = I.create ~rng (); rng }

let intruder t = t.intr
let counters t = I.counters_named (I.counters t.intr)
let victim t = t.victim

let leader_name t = Enclaves.Leader.self (D.Improved.leader t.driver)

(* No [~origin]: the frame materialises on the wire with no socket
   behind it — the transport records [Via_wire]. *)
let inject t payload =
  Net.inject (D.Improved.net t.driver) ~dst:(leader_name t) payload

(* Framing replay: verbatim re-injection of the victim's own genuine
   leader-bound frames, captured off the wire. Every one carries the
   victim's name and a MAC that genuinely verifies as the victim's —
   to a claimed-sender scorer this is indistinguishable from the
   victim replaying itself, which is precisely the framing vector.
   Newest first: the freshest nonces draw the same stale-nonce verdict
   while looking maximally plausible. Returns how many frames the
   trace could supply (a quiet wire bounds the replay). *)
let frame_replay t burst =
  let lname = leader_name t in
  let replayable (f : F.t) =
    f.F.recipient = lname && f.F.sender = t.victim
    &&
    match f.F.label with
    | F.Admin_ack | F.App_data | F.Auth_ack_key | F.Auth_init_req
    | F.Req_close ->
        true
    | _ -> false
  in
  let captured =
    Netsim.Trace.payloads (Net.trace (D.Improved.net t.driver))
    |> List.filter_map (fun payload ->
           match F.decode payload with
           | Ok f when replayable f -> Some payload
           | Ok _ | Error _ -> None)
    |> List.rev
  in
  let n = ref 0 in
  List.iteri
    (fun i payload ->
      if i < burst then begin
        inject t payload;
        incr n
      end)
    captured;
  I.record (I.counters t.intr) I.Frame_replay !n;
  !n

(* Framing flood: junk AuthInitReq volume under the victim's name,
   aimed at the unauthenticated admission surface — trying to spend
   the victim's admission budget and pin pre-auth pressure (plus a
   malformed-frame rejection for every one that gets served) on it. *)
let frame_flood t burst =
  let lname = leader_name t in
  for _ = 1 to burst do
    let body = Bytes.to_string (Prng.Splitmix.next_bytes t.rng 24) in
    inject t
      (F.encode
         (F.make ~label:F.Auth_init_req ~sender:t.victim ~recipient:lname
            ~body))
  done;
  I.record (I.counters t.intr) I.Frame_flood burst;
  burst

let fire t arm burst =
  match arm with
  | I.Frame_replay -> frame_replay t burst
  | I.Frame_flood -> frame_flood t burst
  | I.Preauth_flood | I.Handshake_storm | I.Forge_burst | I.Replay_burst ->
      invalid_arg "Outsider.fire: insider arms belong to Adversary.Insider"

(* Materialise the campaign's seeded plan into simulator events. *)
let launch t (c : I.campaign) =
  let sim = D.Improved.sim t.driver in
  let plan = I.plan t.intr c in
  List.iter
    (fun (time, burst) ->
      Netsim.Sim.schedule_at sim ~time (fun () -> ignore (fire t c.I.arm burst)))
    plan;
  List.length plan
