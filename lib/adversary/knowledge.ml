open Sym_crypto
module F = Wire.Frame
module P = Wire.Payload

module StringSet = Set.Make (String)

type t = {
  mutable frames : F.t list;  (* decoded wire observations *)
  mutable key_material : StringSet.t;  (* raw 16-byte key strings *)
  mutable plaintexts : StringSet.t;
  mutable observed : int;
}

let create () =
  {
    frames = [];
    key_material = StringSet.empty;
    plaintexts = StringSet.empty;
    observed = 0;
  }

let add_key t key = t.key_material <- StringSet.add (Key.raw key) t.key_material

let observe t bytes =
  t.observed <- t.observed + 1;
  match F.decode bytes with
  | Ok frame -> t.frames <- frame :: t.frames
  | Error _ -> ()

let observe_trace t trace =
  List.iter (observe t) (Netsim.Trace.payloads trace)

(* Associated-data contexts a frame's body might have been sealed
   under: header-bound (improved), empty (legacy), group (app/relay). *)
let ad_candidates (frame : F.t) =
  [
    F.ad frame;
    "";
    "group:" ^ F.label_to_string frame.F.label;
  ]

(* Keys can be used at any protocol role; try all kinds. *)
let key_candidates t =
  StringSet.fold
    (fun raw acc ->
      Key.of_raw Key.Long_term raw :: Key.of_raw Key.Session raw
      :: Key.of_raw Key.Group raw :: acc)
    t.key_material []

(* Extract key material carried inside a recovered plaintext. *)
let harvest_keys t plaintext =
  let add raw =
    if String.length raw = Key.size then
      t.key_material <- StringSet.add raw t.key_material
  in
  (match P.decode_auth_key_dist plaintext with
  | Ok { P.ka; _ } -> add ka
  | Error _ -> ());
  (match P.decode_legacy_auth2 plaintext with
  | Ok { P.ka; kg; _ } ->
      add ka;
      add kg
  | Error _ -> ());
  (match P.decode_legacy_new_key plaintext with
  | Ok { P.kg; _ } -> add kg
  | Error _ -> ());
  match P.decode_admin_body plaintext with
  | Ok { P.x = Wire.Admin.New_group_key { key; _ }; _ } -> add key
  | Ok _ | Error _ -> ()

let try_open t (frame : F.t) =
  match Aead.decode frame.F.body with
  | Error _ -> ()
  | Ok sealed ->
      List.iter
        (fun key ->
          List.iter
            (fun ad ->
              match Aead.open_ ~key ~ad sealed with
              | Ok plaintext ->
                  if not (StringSet.mem plaintext t.plaintexts) then begin
                    t.plaintexts <- StringSet.add plaintext t.plaintexts;
                    harvest_keys t plaintext
                  end
              | Error `Auth_failure -> ())
            (ad_candidates frame))
        (key_candidates t)

let saturate t =
  (* Iterate until no new keys or plaintexts appear: recovered
     plaintexts can carry keys that unlock earlier ciphertexts. *)
  let rec loop () =
    let keys_before = StringSet.cardinal t.key_material in
    let plain_before = StringSet.cardinal t.plaintexts in
    List.iter (try_open t) t.frames;
    if
      StringSet.cardinal t.key_material <> keys_before
      || StringSet.cardinal t.plaintexts <> plain_before
    then loop ()
  in
  loop ()

let knows_key t key = StringSet.mem (Key.raw key) t.key_material

let keys t =
  StringSet.fold (fun raw acc -> Key.of_raw Key.Session raw :: acc)
    t.key_material []

let plaintexts t = StringSet.elements t.plaintexts

let decrypt_app t bytes =
  match F.decode bytes with
  | Error _ -> None
  | Ok frame when frame.F.label <> F.App_data -> None
  | Ok frame ->
      let try_key raw acc =
        match acc with
        | Some _ -> acc
        | None -> (
            let key = Key.of_raw Key.Group raw in
            match Enclaves.Sealed_channel.open_group ~key frame with
            | Ok plaintext -> (
                match P.decode_app_data plaintext with
                | Ok { P.author; body } -> Some (author, body)
                | Error _ -> None)
            | Error _ -> None)
      in
      StringSet.fold try_key t.key_material None

let stats t =
  (t.observed, StringSet.cardinal t.key_material, StringSet.cardinal t.plaintexts)
