(* Compromised-insider actor: the agent that turns a
   {!Netsim.Intruder} campaign plan into actual hostile frames on an
   {!Enclaves.Driver.Improved} cluster.

   The insider is a real directory member — it joined with a genuine
   password, holds (or held) a real session key and group key — so its
   campaigns model the paper's hardest case: abuse with legitimate key
   material, not an outsider's noise. Frame crafting lives here; the
   deterministic schedule (when each burst fires, how large it is)
   lives in the netsim plan, so replaying a seed replays the attack
   tick-for-tick. *)

module F = Wire.Frame
module Net = Netsim.Network
module D = Enclaves.Driver
module I = Netsim.Intruder

type t = {
  driver : D.Improved.t;
  insider : Enclaves.Types.agent;
  password : string;
  intr : I.t;
  rng : Prng.Splitmix.t;  (* frame-crafting randomness; private split *)
  mutable retired : Sym_crypto.Key.t list;
      (* expired key material harvested before rekeys/leaves — what
         the forge arm seals under *)
}

let create ~driver ~insider ~password () =
  let rng = Prng.Splitmix.split (Netsim.Sim.rng (D.Improved.sim driver)) in
  { driver; insider; password; intr = I.create ~rng (); rng; retired = [] }

let intruder t = t.intr
let counters t = I.counters_named (I.counters t.intr)

let leader_name t = Enclaves.Leader.self (D.Improved.leader t.driver)

(* The insider's traffic legitimately arrives over its own connection
   — it is a real member — so injections carry its socket provenance.
   Wire-level (pathless) injection is the Outsider's business. *)
let inject t payload =
  Net.inject
    (D.Improved.net t.driver)
    ~origin:t.insider ~dst:(leader_name t) payload

(* Pocket the insider's current session key before it is retired — the
   forge arm later seals frames under it, modelling a compromised
   member reusing key material the group has since rotated past. *)
let harvest t =
  match
    Enclaves.Member.session_key (D.Improved.member t.driver t.insider)
  with
  | Some k ->
      t.retired <- k :: t.retired;
      true
  | None -> false

let retired_keys t = t.retired

(* --- the arms --- *)

(* A1: junk AuthInitReq volume — half under throwaway ghost names
   (exercising the shared anonymous admission bucket), half under the
   insider's own name (exercising its per-peer bucket, and feeding
   [Malformed] evidence on every frame that gets served). *)
let flood t burst =
  let lname = leader_name t in
  for i = 1 to burst do
    let sender =
      if i mod 2 = 0 then t.insider
      else Printf.sprintf "ghost-%d" (Prng.Splitmix.next_int t.rng 1000)
    in
    let body = Bytes.to_string (Prng.Splitmix.next_bytes t.rng 24) in
    inject t
      (F.encode (F.make ~label:F.Auth_init_req ~sender ~recipient:lname ~body))
  done;
  I.record (I.counters t.intr) I.Preauth_flood burst;
  burst

(* Handshake storm: {e valid} fresh-nonce AuthInitReq frames under the
   insider's own identity — each one the leader serves restarts the
   handshake and churns its half-open table, and none is ever
   completed. Individually these frames are indistinguishable from an
   honest join; only their rate is hostile, which is exactly what the
   sentinel's [Preauth_pressure] accumulation scores. *)
let storm t burst =
  let lname = leader_name t in
  for _ = 1 to burst do
    let m =
      Enclaves.Member.create ~self:t.insider ~leader:lname
        ~password:t.password ~rng:t.rng
    in
    List.iter (fun f -> inject t (F.encode f)) (Enclaves.Member.join m)
  done;
  I.record (I.counters t.intr) I.Handshake_storm burst;
  burst

(* A2: frames sealed under expired or mismatched key material. With a
   harvested key the forgery is literal key reuse; without one, a
   random session key stands in — to the leader both are the same MAC
   failure. *)
let forge t burst =
  let lname = leader_name t in
  let key =
    match t.retired with
    | k :: _ -> k
    | [] -> Sym_crypto.Key.fresh Sym_crypto.Key.Session t.rng
  in
  for i = 1 to burst do
    let label = if i mod 2 = 0 then F.Admin_ack else F.App_data in
    let frame =
      Enclaves.Sealed_channel.seal ~rng:t.rng ~key ~label ~sender:t.insider
        ~recipient:lname
        (Bytes.to_string (Prng.Splitmix.next_bytes t.rng 16))
    in
    inject t (F.encode frame)
  done;
  I.record (I.counters t.intr) I.Forge_burst burst;
  burst

(* A3: verbatim re-injection of genuine leader-bound frames the
   insider itself once sent — stale-nonce admin acks, old handshake
   legs, closed sessions' traffic. Only the insider's own frames are
   replayed: those are the ones whose MACs genuinely attribute to it.
   (Replaying OTHER members' captured frames is the framing vector —
   the victim's name is on the frame, so evidence lands on the victim;
   see DESIGN.md on why that is DoS-equivalent rather than worse.)
   Returns how many frames the trace could supply (a quiet wire bounds
   the replay). *)
let replay t burst =
  let lname = leader_name t in
  let replayable (f : F.t) =
    f.F.recipient = lname && f.F.sender = t.insider
    &&
    match f.F.label with
    | F.Admin_ack | F.App_data | F.Auth_ack_key | F.Req_close -> true
    | _ -> false
  in
  let captured =
    Netsim.Trace.payloads (Net.trace (D.Improved.net t.driver))
    |> List.filter_map (fun payload ->
           match F.decode payload with
           | Ok f when replayable f -> Some payload
           | Ok _ | Error _ -> None)
    |> List.rev (* newest first: the freshest nonces, the same verdict *)
  in
  let n = ref 0 in
  List.iteri
    (fun i payload ->
      if i < burst then begin
        inject t payload;
        incr n
      end)
    captured;
  I.record (I.counters t.intr) I.Replay_burst !n;
  !n

let fire t arm burst =
  match arm with
  | I.Preauth_flood -> flood t burst
  | I.Handshake_storm -> storm t burst
  | I.Forge_burst -> forge t burst
  | I.Replay_burst -> replay t burst
  | I.Frame_replay | I.Frame_flood ->
      invalid_arg "Insider.fire: framing arms belong to Adversary.Outsider"

(* Materialise the campaign's seeded plan into simulator events. *)
let launch t (c : I.campaign) =
  let sim = D.Improved.sim t.driver in
  let plan = I.plan t.intr c in
  List.iter
    (fun (time, burst) ->
      Netsim.Sim.schedule_at sim ~time (fun () -> ignore (fire t c.I.arm burst)))
    plan;
  List.length plan
