let hex_digits = "0123456789abcdef"

let encode s =
  let n = String.length s in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code s.[i] in
    Bytes.set out (2 * i) hex_digits.[c lsr 4];
    Bytes.set out ((2 * i) + 1) hex_digits.[c land 0xF]
  done;
  Bytes.unsafe_to_string out

let nibble c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let decode h =
  let n = String.length h in
  if n mod 2 <> 0 then Error "hex string has odd length"
  else
    let out = Bytes.create (n / 2) in
    let rec loop i =
      if i >= n then Ok (Bytes.unsafe_to_string out)
      else
        match (nibble h.[i], nibble h.[i + 1]) with
        | Some hi, Some lo ->
            Bytes.set out (i / 2) (Char.chr ((hi lsl 4) lor lo));
            loop (i + 2)
        | _ -> Error (Printf.sprintf "non-hex character at offset %d" i)
    in
    loop 0

let decode_exn h =
  match decode h with Ok s -> s | Error e -> invalid_arg ("Hex.decode_exn: " ^ e)

let pp fmt s = Format.pp_print_string fmt (encode s)
