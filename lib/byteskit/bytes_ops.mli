(** Miscellaneous byte-string operations used throughout the crypto and
    wire layers. *)

val xor : string -> string -> string
(** [xor a b] is the bytewise XOR of [a] and [b].
    @raise Invalid_argument if lengths differ. *)

val xor_into : src:string -> dst:bytes -> pos:int -> unit
(** [xor_into ~src ~dst ~pos] XORs [src] into [dst] starting at
    [pos].
    @raise Invalid_argument on out-of-bounds. *)

val ct_equal : string -> string -> bool
(** [ct_equal a b] compares [a] and [b] in time dependent only on
    [max (length a) (length b)]: the standard constant-time tag
    comparison. Strings of different lengths compare unequal, and the
    comparison is padded over the longer input so there is no early
    exit — neither a length mismatch nor the position of the first
    differing byte is observable through timing. *)

val get_u64_le : string -> int -> int64
(** [get_u64_le s off] reads 8 bytes little-endian at [off]. *)

val set_u64_le : bytes -> int -> int64 -> unit
(** [set_u64_le b off v] writes [v] little-endian at [off]. *)

val get_u32_be : string -> int -> int
(** [get_u32_be s off] reads a 32-bit big-endian unsigned value. *)

val set_u32_be : bytes -> int -> int -> unit
(** [set_u32_be b off v] writes the low 32 bits of [v] big-endian. *)

val get_u16_be : string -> int -> int
val set_u16_be : bytes -> int -> int -> unit

val pad_to : block:int -> string -> string
(** [pad_to ~block s] right-pads [s] with zero bytes to a multiple of
    [block] (at least one full block if [s] is empty). *)
