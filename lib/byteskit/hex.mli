(** Hexadecimal encoding and decoding of byte strings. *)

val encode : string -> string
(** [encode s] is the lowercase hexadecimal rendering of [s]; the
    result has length [2 * String.length s]. *)

val decode : string -> (string, string) result
(** [decode h] parses a hexadecimal string (upper or lower case).
    Returns [Error _] if [h] has odd length or contains a non-hex
    character. *)

val decode_exn : string -> string
(** [decode_exn h] is [decode h] or raises [Invalid_argument]. *)

val pp : Format.formatter -> string -> unit
(** [pp fmt s] prints [encode s]. *)
