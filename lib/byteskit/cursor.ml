let ( let* ) = Result.bind

module Writer = struct
  type t = Buffer.t

  let create ?(capacity = 64) () = Buffer.create capacity
  let u8 w v = Buffer.add_char w (Char.chr (v land 0xFF))

  let u16 w v =
    u8 w (v lsr 8);
    u8 w v

  let u32 w v =
    u16 w (v lsr 16);
    u16 w v

  let u64 w v =
    let b = Bytes.create 8 in
    Bytes.set_int64_be b 0 v;
    Buffer.add_bytes w b

  let raw w s = Buffer.add_string w s

  let bytes w s =
    u32 w (String.length s);
    raw w s

  let contents = Buffer.contents
end

module Reader = struct
  type t = { src : string; mutable pos : int }
  type error = [ `Truncated of string | `Malformed of string ]

  let pp_error fmt = function
    | `Truncated what -> Format.fprintf fmt "truncated while reading %s" what
    | `Malformed what -> Format.fprintf fmt "malformed %s" what

  let of_string src = { src; pos = 0 }
  let remaining r = String.length r.src - r.pos

  let take r n what =
    if remaining r < n then Error (`Truncated what)
    else begin
      let s = String.sub r.src r.pos n in
      r.pos <- r.pos + n;
      Ok s
    end

  let u8 r =
    let* s = take r 1 "u8" in
    Ok (Char.code s.[0])

  let u16 r =
    let* s = take r 2 "u16" in
    Ok ((Char.code s.[0] lsl 8) lor Char.code s.[1])

  let u32 r =
    let* hi = u16 r in
    let* lo = u16 r in
    Ok ((hi lsl 16) lor lo)

  let u64 r =
    let* s = take r 8 "u64" in
    Ok (Bytes.get_int64_be (Bytes.unsafe_of_string s) 0)

  let bytes r =
    let* n = u32 r in
    if n > remaining r then Error (`Truncated "length-prefixed bytes")
    else take r n "bytes"

  let raw r n = take r n "raw bytes"

  let rest r =
    let s = String.sub r.src r.pos (remaining r) in
    r.pos <- String.length r.src;
    s

  let expect_end r =
    if remaining r = 0 then Ok ()
    else Error (`Malformed "trailing bytes after message")
end
