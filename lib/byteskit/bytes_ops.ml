let xor a b =
  let n = String.length a in
  if String.length b <> n then invalid_arg "Bytes_ops.xor: length mismatch";
  String.init n (fun i -> Char.chr (Char.code a.[i] lxor Char.code b.[i]))

let xor_into ~src ~dst ~pos =
  let n = String.length src in
  if pos < 0 || pos + n > Bytes.length dst then
    invalid_arg "Bytes_ops.xor_into: out of bounds";
  for i = 0 to n - 1 do
    Bytes.set dst (pos + i)
      (Char.chr (Char.code src.[i] lxor Char.code (Bytes.get dst (pos + i))))
  done

let ct_equal a b =
  let la = String.length a and lb = String.length b in
  (* No early exit on length mismatch: always scan max(la, lb) bytes,
     reading 0 past either end, so timing reveals only the longer
     length — never the position where the inputs diverge. *)
  let n = if la > lb then la else lb in
  let acc = ref (la lxor lb) in
  for i = 0 to n - 1 do
    let ca = if i < la then Char.code a.[i] else 0
    and cb = if i < lb then Char.code b.[i] else 0 in
    acc := !acc lor (ca lxor cb)
  done;
  !acc = 0

let get_u64_le s off =
  let b = Bytes.unsafe_of_string s in
  Bytes.get_int64_le b off

let set_u64_le b off v = Bytes.set_int64_le b off v

let get_u32_be s off =
  let b = Bytes.unsafe_of_string s in
  Int32.to_int (Bytes.get_int32_be b off) land 0xFFFFFFFF

let set_u32_be b off v = Bytes.set_int32_be b off (Int32.of_int v)

let get_u16_be s off =
  let b = Bytes.unsafe_of_string s in
  Bytes.get_uint16_be b off

let set_u16_be b off v = Bytes.set_uint16_be b off v

let pad_to ~block s =
  if block <= 0 then invalid_arg "Bytes_ops.pad_to: block must be positive";
  let n = String.length s in
  let rem = n mod block in
  let target = if n = 0 then block else if rem = 0 then n else n + block - rem in
  s ^ String.make (target - n) '\000'
