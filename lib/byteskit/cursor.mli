(** Sequential binary reader and writer.

    [Writer] appends typed values to a growable buffer; [Reader]
    consumes them from a string. All multi-byte integers are
    big-endian on the wire. Decoding failures are reported as
    [Error]-carrying results so that the wire layer can treat malformed
    frames (for example, attacker-injected garbage) as ordinary data
    rather than exceptions. *)

module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val u64 : t -> int64 -> unit

  val bytes : t -> string -> unit
  (** [bytes w s] appends a 32-bit length prefix followed by [s]. *)

  val raw : t -> string -> unit
  (** [raw w s] appends [s] with no length prefix. *)

  val contents : t -> string
end

module Reader : sig
  type t

  type error = [ `Truncated of string | `Malformed of string ]

  val pp_error : Format.formatter -> error -> unit
  val of_string : string -> t
  val remaining : t -> int
  val u8 : t -> (int, error) result
  val u16 : t -> (int, error) result
  val u32 : t -> (int, error) result
  val u64 : t -> (int64, error) result

  val bytes : t -> (string, error) result
  (** Reads a 32-bit length prefix then that many bytes. *)

  val raw : t -> int -> (string, error) result
  (** [raw r n] reads exactly [n] bytes. *)

  val rest : t -> string
  (** [rest r] consumes and returns all remaining bytes. *)

  val expect_end : t -> (unit, error) result
  (** Succeeds iff the reader is exhausted; trailing bytes in a frame
      indicate a malformed or tampered message. *)
end

val ( let* ) :
  ('a, 'e) result -> ('a -> ('b, 'e) result) -> ('b, 'e) result
(** Result bind, re-exported for decoder pipelines. *)
