(** Exhaustive bounded state exploration of the symbolic model.

    Level-synchronized breadth-first search from {!Model.initial} over
    {!Model.successors}, deduplicating states by their canonical
    serialization. Within the pool bounds of the configuration the
    exploration is exhaustive: every reachable global state and every
    transition is visited, so checking an invariant over the states
    and an edge obligation over the edges discharges the corresponding
    §5 proof obligation for the bounded instance.

    Canonical keys are interned: each state gets a dense integer id in
    discovery order, states live in an array indexed by id, and edges
    are stored as deduplicated [(src id, move, dst id)] triples — one
    canonical string per state instead of the seed engine's
    string-keyed tables and cons-list of string triples.

    {2 Parallelism and determinism}

    With [~jobs:n] (n > 1) the successor computation of each BFS level
    is fanned out over [n] domains with a merge barrier per depth; the
    merge that assigns ids and records edges is sequential and runs in
    frontier order, so the result — state order, edge order, every
    count — is identical for every [jobs] value.

    {2 Truncation}

    When the [max_states] cap stops the search, edges leading to
    destinations that were not stored are {e not} recorded; they are
    counted in [frontier_dropped] instead, so [edge_count] always
    equals the number of edges {!iter_edges} visits. [truncated] is
    [frontier_dropped > 0]. *)

type result = {
  states : Model.state array;  (** id -> state, in discovery order *)
  index : (string, int) Hashtbl.t;  (** interned canon -> id *)
  edges : (int * Model.move * int) array;
      (** deduplicated [(src, move, dst)] id triples; both endpoints
          are always stored states *)
  parents : (int * Model.move) option array;
      (** BFS tree: id -> (discovering predecessor, move); [None] for
          the initial state *)
  truncated : bool;  (** true iff [max_states] stopped the search *)
  frontier_dropped : int;
      (** successor occurrences not stored (and not recorded as
          edges) because the cap was reached; 0 on exhaustive runs *)
}

val run :
  ?config:Model.config -> ?max_states:int -> ?jobs:int -> unit -> result
(** [run ()] explores with {!Model.default_config} and a 200k-state
    safety limit. [~jobs] (default 1) parallelizes successor
    computation without changing any result. *)

type stream_stats = {
  stream_states : int;  (** states stored (= what [run] would store) *)
  stream_edges : int;  (** deduplicated edges visited *)
  stream_truncated : bool;
  stream_dropped : int;
}

val run_stream :
  ?config:Model.config ->
  ?max_states:int ->
  ?jobs:int ->
  ?on_state:(Model.state -> unit) ->
  ?on_edge:(Model.state -> Model.move -> Model.state -> unit) ->
  unit ->
  stream_stats
(** Memory-compact exploration: same search as {!run}, but states,
    parents and edges are handed to the callbacks and dropped instead
    of retained — only the canonical-key intern table is kept for
    deduplication. [on_state] fires once per stored state (including
    the initial state), [on_edge] once per deduplicated edge, in the
    same order {!iter_states} / {!iter_edges} would visit them.
    Counterexample reconstruction ({!path_to}) needs a retained
    {!run}. *)

val state_count : result -> int
val edge_count : result -> int

val iter_states : result -> (Model.state -> unit) -> unit

val iter_edges :
  result -> (Model.state -> Model.move -> Model.state -> unit) -> unit

val find_state : result -> (Model.state -> bool) -> Model.state option
(** First match in discovery (BFS) order — deterministic. *)

val path_to : result -> Model.state -> (Model.move * Model.state) list
(** [path_to r q] reconstructs a shortest path (BFS tree) from the
    initial state to [q], as the list of (move, reached state) steps —
    a concrete counterexample trace when [q] violates a property. *)

val pp_path :
  Format.formatter -> (Model.move * Model.state) list -> unit

(** The seed engine (string-keyed hashtable, cons-list edge store,
    [List.length] counting), kept for differential benchmarking and as
    an independent oracle in the tests. Note its truncation bug is
    preserved: on truncated runs it records edges to unstored states. *)
module Baseline : sig
  type t

  val run : ?config:Model.config -> ?max_states:int -> unit -> t
  val state_count : t -> int
  val edge_count : t -> int
end
