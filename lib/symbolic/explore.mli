(** Exhaustive bounded state exploration of the symbolic model.

    Breadth-first search from {!Model.initial} over
    {!Model.successors}, deduplicating states by their canonical
    serialization. Within the pool bounds of the configuration the
    exploration is exhaustive: every reachable global state and every
    transition is visited, so checking an invariant over [states] and
    an edge obligation over [edges] discharges the corresponding §5
    proof obligation for the bounded instance. *)

type result = {
  states : (string, Model.state) Hashtbl.t;  (** canon -> state *)
  edges : (string * Model.move * string) list;  (** (src, move, dst) *)
  parents : (string, string * Model.move) Hashtbl.t;
      (** BFS tree: state -> (discovering predecessor, move). *)
  truncated : bool;  (** true if [max_states] stopped the search *)
}

val run : ?config:Model.config -> ?max_states:int -> unit -> result
(** [run ()] explores with {!Model.default_config} and a 200k-state
    safety limit. *)

val state_count : result -> int
val edge_count : result -> int

val iter_states : result -> (Model.state -> unit) -> unit

val iter_edges :
  result -> (Model.state -> Model.move -> Model.state -> unit) -> unit

val find_state : result -> (Model.state -> bool) -> Model.state option

val path_to : result -> Model.state -> (Model.move * Model.state) list
(** [path_to r q] reconstructs a shortest path (BFS tree) from the
    initial state to [q], as the list of (move, reached state) steps —
    a concrete counterexample trace when [q] violates a property. *)

val pp_path :
  Format.formatter -> (Model.move * Model.state) list -> unit
