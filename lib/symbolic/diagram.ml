open Field

type box = Q1 | Q2 | Q3 | Q4 | Q5 | Q6 | Q7 | Q8 | Q9 | Q10 | Q12

let box_name = function
  | Q1 -> "Q1"
  | Q2 -> "Q2"
  | Q3 -> "Q3"
  | Q4 -> "Q4"
  | Q5 -> "Q5"
  | Q6 -> "Q6"
  | Q7 -> "Q7"
  | Q8 -> "Q8"
  | Q9 -> "Q9"
  | Q10 -> "Q10"
  | Q12 -> "Q12"

let all_boxes = [ Q1; Q2; Q3; Q4; Q5; Q6; Q7; Q8; Q9; Q10; Q12 ]

let classify q =
  match (q.Model.usr, q.Model.lead) with
  | Model.U_not_connected, Model.L_not_connected -> Some Q1
  | Model.U_waiting_for_key _, Model.L_not_connected -> Some Q2
  | Model.U_waiting_for_key _, Model.L_waiting_for_key_ack _ -> Some Q3
  | Model.U_connected _, Model.L_waiting_for_key_ack _ -> Some Q4
  | Model.U_connected _, Model.L_connected _ -> Some Q5
  | Model.U_connected _, Model.L_waiting_for_ack _ -> Some Q6
  | Model.U_not_connected, Model.L_connected _ -> Some Q7
  | Model.U_not_connected, Model.L_waiting_for_ack _ -> Some Q8
  | Model.U_waiting_for_key _, Model.L_connected _ -> Some Q9
  | Model.U_waiting_for_key _, Model.L_waiting_for_ack _ -> Some Q10
  | Model.U_not_connected, Model.L_waiting_for_key_ack _ -> Some Q12
  | Model.U_connected _, Model.L_not_connected -> None

let successors_of = function
  | Q1 -> [ Q2; Q12 ]
  | Q2 -> [ Q3 ]
  | Q3 -> [ Q4; Q9; Q2 ]
  | Q4 -> [ Q5; Q12 ]
  | Q5 -> [ Q6; Q7 ]
  | Q6 -> [ Q5; Q8 ]
  | Q7 -> [ Q9; Q8; Q1 ]
  | Q8 -> [ Q10; Q7; Q1 ]
  | Q9 -> [ Q10; Q2 ]
  | Q10 -> [ Q9; Q2 ]
  | Q12 -> [ Q3; Q7; Q1 ]

(* --- Trace-condition helpers --- *)

(* The patterns whose (non-)occurrence the predicates constrain. *)

let keydist_citing parts na =
  Field.Set.fold
    (fun f acc ->
      match f with
      | FCrypt (Pa, FCat [ FAgent L; FAgent A; FNonce n; FNonce n'; FKey (Ka k) ])
        when n = na ->
          (n', k) :: acc
      | _ -> acc)
    parts []

let acks_citing parts ka nl =
  Field.Set.fold
    (fun f acc ->
      match f with
      | FCrypt (Ka k, FCat [ FAgent A; FAgent L; FNonce n; FNonce n' ])
        when k = ka && n = nl ->
          n' :: acc
      | _ -> acc)
    parts []

let admin_citing parts ka na =
  Field.Set.fold
    (fun f acc ->
      match f with
      | FCrypt (Ka k, FCat [ FAgent L; FAgent A; FNonce n; FNonce n'; FData d ])
        when k = ka && n = na ->
          (n', d) :: acc
      | _ -> acc)
    parts []

let close_in parts ka = Field.Set.mem (FCrypt (Ka ka, FCat [ FAgent A; FAgent L ])) parts

let lead_key q =
  match q.Model.lead with
  | Model.L_waiting_for_key_ack (_, k)
  | Model.L_connected (_, k)
  | Model.L_waiting_for_ack (_, k) ->
      Some k
  | Model.L_not_connected -> None

let closing q parts =
  match lead_key q with Some k -> close_in parts k | None -> false

(* --- Box invariants --- *)

let box_invariant q box =
  let parts = Model.trace_parts q in
  match (box, q.Model.usr, q.Model.lead) with
  | Q1, Model.U_not_connected, Model.L_not_connected -> true
  | Q2, Model.U_waiting_for_key na, Model.L_not_connected ->
      (* Paper Q2: no key-distribution reply citing Na exists yet. *)
      keydist_citing parts na = []
  | Q3, Model.U_waiting_for_key na, Model.L_waiting_for_key_ack (nl, ka) ->
      if closing q parts then
        (* Reconstructed closing variant: the leader's handshake is a
           leftover of a finished session; A's fresh request is still
           unanswered. *)
        keydist_citing parts na = []
      else
        (* Paper Q3: any key-dist citing Na carries exactly (Nl, Ka);
           no key ack citing Nl; no close under Ka. *)
        List.for_all (fun (n, k) -> n = nl && k = ka) (keydist_citing parts na)
        && acks_citing parts ka nl = []
  | Q4, Model.U_connected (na, ka_u), Model.L_waiting_for_key_ack (nl, ka) ->
      (* Paper Q4: A and L agree on Ka; the only ack citing Nl is A's,
         carrying Na; no admin message citing Na yet; no close. *)
      ka_u = ka
      && List.for_all (fun n -> n = na) (acks_citing parts ka nl)
      && admin_citing parts ka na = []
      && not (close_in parts ka)
  | Q5, Model.U_connected (na, ka_u), Model.L_connected (nl, ka) ->
      (* Agreement, and the session is not closing. *)
      ka_u = ka && na = nl && not (close_in parts ka)
  | Q6, Model.U_connected (na, ka_u), Model.L_waiting_for_ack (nl, ka) ->
      (* Either the outstanding AdminMsg still awaits A (it cites A's
         current nonce Na), or A has processed it (A's ack citing Nl
         carries Na). *)
      ka_u = ka
      && (not (close_in parts ka))
      && (List.exists (fun (n', _) -> n' = nl) (admin_citing parts ka na)
         || List.mem na (acks_citing parts ka nl))
  | Q7, Model.U_not_connected, Model.L_connected (_, ka) -> close_in parts ka
  | Q8, Model.U_not_connected, Model.L_waiting_for_ack (_, ka) ->
      close_in parts ka
  | Q9, Model.U_waiting_for_key na, Model.L_connected (_, ka) ->
      close_in parts ka && keydist_citing parts na = []
  | Q10, Model.U_waiting_for_key na, Model.L_waiting_for_ack (_, ka) ->
      close_in parts ka && keydist_citing parts na = []
  | Q12, Model.U_not_connected, Model.L_waiting_for_key_ack (nl, ka) ->
      if closing q parts then
        (* Closing variant: A connected and left while the leader still
           awaits the key ack; her ack is necessarily in the trace. *)
        acks_citing parts ka nl <> []
      else
        (* Paper Q12: no key ack citing Nl exists. *)
        acks_citing parts ka nl = []
  | _ -> false

(* --- Checks --- *)

let max_violations = 5

let make_report name checked violations =
  {
    Invariants.name;
    holds = violations = [];
    checked;
    violations =
      List.filteri (fun i _ -> i < max_violations) (List.rev violations);
  }

let describe q =
  Format.asprintf "usr=%a lead=%a" Model.pp_user_state q.Model.usr
    Model.pp_leader_state q.Model.lead

let no_edge (_ : Model.state) (_ : Model.move) (_ : Model.state) = ()

let one result c =
  match Invariants.check_result result c with
  | [ r ] -> r
  | _ -> assert false

let coverage_stream () =
  let checked = ref 0 and violations = ref [] in
  {
    Invariants.on_state =
      (fun q ->
        incr checked;
        match classify q with
        | None ->
            violations :=
              ("unreachable shape reached: " ^ describe q) :: !violations
        | Some box ->
            if not (box_invariant q box) then
              violations :=
                Format.asprintf "%s invariant fails at %s" (box_name box)
                  (describe q)
                :: !violations);
    on_edge = no_edge;
    finish =
      (fun () -> [ make_report "diagram coverage (5.3)" !checked !violations ]);
  }

let check_coverage result = one result (coverage_stream ())

let edges_stream () =
  let checked = ref 0 and violations = ref [] in
  {
    Invariants.on_state = (fun _ -> ());
    on_edge =
      (fun q move q' ->
        incr checked;
        match (classify q, classify q') with
        | Some b, Some b' ->
            let ok =
              match move with
              | Model.E_inject _ -> b = b'
              | _ -> b = b' || List.mem b' (successors_of b)
            in
            if not ok then
              violations :=
                Format.asprintf "%s --%a--> %s not in diagram" (box_name b)
                  Model.pp_move move (box_name b')
                :: !violations
        | _ -> violations := "edge touches unclassifiable state" :: !violations);
    finish =
      (fun () -> [ make_report "diagram edges (5.3)" !checked !violations ]);
  }

let check_edges result = one result (edges_stream ())

(* The paper's induction step for agents other than A and L: they can
   only replay protected fields, never mint new ones. For each state
   and each in-use session key, no ack/admin/close field under that
   key, other than those already in the trace, is synthesizable from
   the intruder's knowledge. *)
let intruder_obligations_stream ?(config = Model.default_config) () =
  let checked = ref 0 and violations = ref [] in
  let nonce_pool =
    List.init config.Model.max_nonces (fun i -> i)
    @ List.init config.Model.intruder_fresh (fun i -> Model.intruder_atom_base + i)
  in
  {
    Invariants.on_state =
      (fun q ->
        match lead_key q with
        | None -> ()
        | Some ka ->
            let parts = Model.trace_parts q in
            let know =
              Field.Set.add
                (FNonce Model.intruder_atom_base)
                (Model.intruder_knowledge ~config q)
            in
            let check_field f =
              incr checked;
              if (not (Field.Set.mem f parts)) && Closure.in_synth know f then
                violations :=
                  Format.asprintf "intruder can mint %a at %s" Field.pp f
                    (describe q)
                  :: !violations
            in
            check_field (FCrypt (Ka ka, FCat [ FAgent A; FAgent L ]));
            List.iter
              (fun n ->
                List.iter
                  (fun n' ->
                    check_field
                      (FCrypt
                         ( Ka ka,
                           FCat [ FAgent A; FAgent L; FNonce n; FNonce n' ] )))
                  nonce_pool)
              nonce_pool);
    on_edge = no_edge;
    finish =
      (fun () ->
        [ make_report "intruder cannot mint (5.3)" !checked !violations ]);
  }

let check_intruder_obligations ?config result =
  one result (intruder_obligations_stream ?config ())

let visit_counts result =
  let counts = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace counts (box_name b) 0) all_boxes;
  Explore.iter_states result (fun q ->
      match classify q with
      | Some b ->
          let name = box_name b in
          Hashtbl.replace counts name (Hashtbl.find counts name + 1)
      | None -> ());
  List.map (fun b -> (box_name b, Hashtbl.find counts (box_name b))) all_boxes

let stream ?config () =
  Invariants.combine
    [
      coverage_stream ();
      edges_stream ();
      intruder_obligations_stream ?config ();
    ]

let all ?config result = Invariants.check_result result (stream ?config ())
