(** The verification diagram of Figure 4, reconstructed and checked
    exhaustively.

    The paper publishes five of the diagram's predicates ([Q1], [Q2],
    [Q3], [Q4], [Q12]); the complete list lives in an SRI technical
    report. We rebuild the full diagram the way §5.3 describes — "by
    examining the successive transitions A or L can execute" — as one
    box per joint shape of [(usr_A, lead_A)], with each box's invariant
    combining the published trace conditions and, for the
    session-teardown boxes the paper does not print, the natural
    close-pending conditions.

    Checks, each discharging a §5.3 proof obligation on the bounded
    instance:
    - {!check_coverage} — every reachable state lies in some box and
      satisfies that box's invariant (the paper's "[q0] satisfies
      [Q1]" plus the per-box induction conclusion);
    - {!check_edges} — every explored transition goes from box [i] to
      [i] itself or one of its diagram successors (the
      [Q_i ∧ q → q' ⇒ Q_{i1}(q') ∨ …] obligation), and every intruder
      transition is a self-loop;
    - {!check_intruder_obligations} — semantically, via
      {!Closure.in_synth}, the intruder cannot synthesize any field
      whose absence a box invariant asserts: it can only replay them
      (the "agents other than A and L leave [Q_i] invariant"
      argument). *)

type box =
  | Q1  (** (NotConnected, NotConnected) *)
  | Q2  (** (WaitingForKey, NotConnected) *)
  | Q3  (** (WaitingForKey, WaitingForKeyAck) *)
  | Q4  (** (Connected, WaitingForKeyAck) *)
  | Q5  (** (Connected, Connected) *)
  | Q6  (** (Connected, WaitingForAck) *)
  | Q7  (** (NotConnected, Connected) — close pending *)
  | Q8  (** (NotConnected, WaitingForAck) — close pending *)
  | Q9  (** (WaitingForKey, Connected) — rejoin while close pending *)
  | Q10  (** (WaitingForKey, WaitingForAck) — rejoin while close pending *)
  | Q12  (** (NotConnected, WaitingForKeyAck) *)

val all_boxes : box list
(** The eleven boxes, in diagram order. *)

val box_name : box -> string
val classify : Model.state -> box option
(** [None] for the one unreachable shape, (Connected, NotConnected). *)

val successors_of : box -> box list
(** Diagram successors, excluding the always-allowed self-loop. *)

val box_invariant : Model.state -> box -> bool
(** Does the state satisfy the box's predicate (trace conditions
    included)? *)

val check_coverage : Explore.result -> Invariants.report
val check_edges : Explore.result -> Invariants.report
val check_intruder_obligations :
  ?config:Model.config -> Explore.result -> Invariants.report

val visit_counts : Explore.result -> (string * int) list
(** States per box, for reporting. *)

val all : ?config:Model.config -> Explore.result -> Invariants.report list

val stream : ?config:Model.config -> unit -> Invariants.checker
(** Streaming form of {!all}: coverage and intruder obligations are
    per-state, edge conformance is per-edge. *)
