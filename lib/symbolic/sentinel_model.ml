(* A bounded model of the SENTINEL's containment ladder under a
   Dolev-Yao wire attacker running a framing campaign. Three
   principals are scored by the leader's sentinel:

   - V, an honest, responsive member. Its own socket produces at most
     [slip_cap] units of on-path evidence, all in ONE class — the
     model's encoding of the calibration invariant "honest noise alone
     stays below the quarantine threshold" (pinned empirically by the
     chaos suite and the calibration sweep, not re-proved here).
   - M, a compromised insider. Its hostile frames arrive over its own
     socket, so its evidence is on-path and spans TWO classes (MAC
     failures and replays, say), uncapped up to the score bounds.
   - W, the wire pseudo-peer. E's raw injections claiming V charge W
     on-path (one class, volume-corroborating) and V off-path.

   E owns the wire: it can inject framing frames at will (until the
   wire itself is contained — the driver's door), and can replay any
   suspicion snapshot ever shipped at the successor, in any order.
   Off-path evidence is modelled at FULL weight — the implementation
   discounts it by [wire_discount], so the modelled attacker is
   strictly stronger.

   The questions the attribution design must answer:

   - can ANY schedule of framing injections, honest slips, decay
     ticks, challenges and attestations push the honest victim to
     [Quarantined]?
   - can a level ever RATCHET DOWN — by decay, attestation relief, or
     a stale snapshot merge?
   - can a quarantine fire WITHOUT corroborated evidence (two live
     on-path classes, or on-path volume alone crossing the
     threshold)?
   - can a merge LOSE an escalation (the successor ending below either
     side), under arbitrary replay of stale snapshots?

   Scores are small integers with unit weights; decay is a global
   halving tick. The state space is exhaustively explored; obligations
   are {!Invariants.report} values so the CLI's verify command gates
   on them uniformly. *)

type bounds = {
  rate_limit_at : int;
  quarantine_at : int;
  expel_at : int;
  slip_cap : int;  (* honest on-path noise bound, < quarantine_at *)
  off_cap : int;  (* off-path accumulation bound *)
  cls_cap : int;  (* per-class insider/wire accumulation bound *)
}

let default_bounds =
  {
    rate_limit_at = 1;
    quarantine_at = 3;
    expel_at = 5;
    slip_cap = 2;
    off_cap = 5;
    cls_cap = 4;
  }

(* Levels as ranks: 0 Clear, 1 Rate_limited, 2 Quarantined, 3 Expelled. *)

type state = {
  (* V: one on-path class, an off-path accumulator, a challenge flag. *)
  v_c0 : int;
  v_off : int;
  v_level : int;
  v_challenged : bool;
  (* M: two on-path classes. *)
  m_c0 : int;
  m_c1 : int;
  m_level : int;
  (* W: one on-path class (every wire injection is its own evidence). *)
  w_c0 : int;
  w_level : int;
  (* Suspicion replication: the successor's imported level for M and
     the last snapshot shipped (E replays snapshots at will). *)
  replica : int;
  snap : int option;
  (* Non-vacuity witnesses. *)
  clamped : bool;  (* the corroboration gate held a raw quarantine down *)
  attested : bool;  (* a challenge round-trip relieved off-path score *)
  imported : bool;  (* the successor merged at least one snapshot *)
}

let initial =
  {
    v_c0 = 0;
    v_off = 0;
    v_level = 0;
    v_challenged = false;
    m_c0 = 0;
    m_c1 = 0;
    m_level = 0;
    w_c0 = 0;
    w_level = 0;
    replica = 0;
    snap = None;
    clamped = false;
    attested = false;
    imported = false;
  }

let canon q = Marshal.to_string q []

type move =
  | M_slip  (* V's own socket: one unit of honest on-path noise *)
  | M_frame  (* E injects a frame claiming V: V off-path + W on-path *)
  | M_insider0  (* M's socket: on-path evidence, class 0 *)
  | M_insider1  (* M's socket: on-path evidence, class 1 *)
  | M_challenge  (* leader challenges the corroboration-blocked V *)
  | M_attest  (* V answers under its session key; off-path wiped *)
  | M_decay  (* quiet time: every score halves, levels ratchet *)
  | M_ship  (* the sentinel ships a suspicion snapshot *)
  | M_import  (* E delivers some shipped snapshot at the successor *)

let pp_move fmt m =
  Format.pp_print_string fmt
    (match m with
    | M_slip -> "V:honest-slip"
    | M_frame -> "E:frame-V"
    | M_insider0 -> "M:evidence-class0"
    | M_insider1 -> "M:evidence-class1"
    | M_challenge -> "L:challenge-V"
    | M_attest -> "V:attest"
    | M_decay -> "clock:decay"
    | M_ship -> "L:ship-snapshot"
    | M_import -> "E:import-snapshot@successor")

(* The ladder, exactly as the implementation computes it: raw target
   from the total score; a raw quarantine-level target without
   corroboration clamps at Rate_limited; the level only ratchets up. *)
let target b total =
  if total >= b.expel_at then 3
  else if total >= b.quarantine_at then 2
  else if total >= b.rate_limit_at then 1
  else 0

let corroborated b ~cls =
  let on = List.fold_left ( + ) 0 cls in
  on >= b.quarantine_at || List.length (List.filter (fun c -> c >= 1) cls) >= 2

let gated_target b ~cls ~off =
  let raw = target b (List.fold_left ( + ) 0 cls + off) in
  if raw >= 2 && not (corroborated b ~cls) then (1, raw >= 2) else (raw, false)

let update_v b q =
  let tgt, held = gated_target b ~cls:[ q.v_c0 ] ~off:q.v_off in
  { q with v_level = max q.v_level tgt; clamped = q.clamped || held }

let update_m b q =
  let tgt, held = gated_target b ~cls:[ q.m_c0; q.m_c1 ] ~off:0 in
  { q with m_level = max q.m_level tgt; clamped = q.clamped || held }

let update_w b q =
  let tgt, held = gated_target b ~cls:[ q.w_c0 ] ~off:0 in
  { q with w_level = max q.w_level tgt; clamped = q.clamped || held }

let challenge_due b q =
  let raw = target b (q.v_c0 + q.v_off) in
  raw >= 2
  && (not (corroborated b ~cls:[ q.v_c0 ]))
  && (not q.v_challenged)
  && q.v_level < 2

let successors b q =
  let moves = ref [] in
  let add m s = if canon s <> canon q then moves := (m, s) :: !moves in

  (* V's honest noise: bounded, single-class, on-path. *)
  if q.v_c0 < b.slip_cap then
    add M_slip (update_v b { q with v_c0 = q.v_c0 + 1 });

  (* E frames V from the wire — until the wire pseudo-peer is itself
     quarantined, at which point the driver's door drops the
     injection before any evidence is scored. *)
  if q.w_level < 2 && q.v_off < b.off_cap && q.w_c0 < b.cls_cap then
    add M_frame
      (update_w b (update_v b { q with v_off = q.v_off + 1; w_c0 = q.w_c0 + 1 }));

  (* The insider misbehaves over its own socket, two evidence classes. *)
  if q.m_c0 < b.cls_cap then
    add M_insider0 (update_m b { q with m_c0 = q.m_c0 + 1 });
  if q.m_c1 < b.cls_cap then
    add M_insider1 (update_m b { q with m_c1 = q.m_c1 + 1 });

  (* Liveness challenge and the honest member's attestation. Relief
     touches ONLY the off-path slot — V's own slips stay. *)
  if challenge_due b q then add M_challenge { q with v_challenged = true };
  if q.v_challenged then
    add M_attest
      { q with v_challenged = false; v_off = 0; attested = true };

  (* Quiet time: scores halve, levels ratchet in place. *)
  if q.v_c0 + q.v_off + q.m_c0 + q.m_c1 + q.w_c0 > 0 then
    add M_decay
      {
        q with
        v_c0 = q.v_c0 / 2;
        v_off = q.v_off / 2;
        m_c0 = q.m_c0 / 2;
        m_c1 = q.m_c1 / 2;
        w_c0 = q.w_c0 / 2;
      };

  (* Suspicion replication: ship the insider's current level; E may
     deliver any snapshot it holds at the successor whenever it
     likes — the merge must tolerate stale replays. *)
  add M_ship { q with snap = Some q.m_level };
  (match q.snap with
  | Some s ->
      add M_import { q with replica = max q.replica s; imported = true }
  | None -> ());

  !moves

(* --- exploration: the same compact BFS as {!Recovery} --- *)

type result = {
  states : state array;
  index : (string, int) Hashtbl.t;
  parents : (int * move) option array;
  edges : (int * move * int) array;
}

let explore ?(bounds = default_bounds) () =
  let index = Hashtbl.create 4096 in
  let states = ref [] and n_states = ref 0 in
  let parents = ref [] in
  let edges = ref [] and n_edges = ref 0 in
  let queue = Queue.create () in
  let intern q parent =
    let id = !n_states in
    Hashtbl.add index (canon q) id;
    states := q :: !states;
    parents := parent :: !parents;
    incr n_states;
    Queue.add (id, q) queue;
    id
  in
  ignore (intern initial None);
  while not (Queue.is_empty queue) do
    let id, q = Queue.pop queue in
    List.iter
      (fun (move, q') ->
        let id' =
          match Hashtbl.find_opt index (canon q') with
          | Some id' -> id'
          | None -> intern q' (Some (id, move))
        in
        edges := (id, move, id') :: !edges;
        incr n_edges)
      (successors bounds q)
  done;
  let of_rev_list n l =
    match l with
    | [] -> [||]
    | hd :: _ ->
        let a = Array.make n hd in
        List.iteri (fun i x -> a.(n - 1 - i) <- x) l;
        a
  in
  {
    states = of_rev_list !n_states !states;
    index;
    parents = of_rev_list !n_states !parents;
    edges = of_rev_list !n_edges !edges;
  }

let state_count r = Array.length r.states
let edge_count r = Array.length r.edges

let describe q =
  Format.asprintf
    "V=(c0=%d off=%d lvl=%d chal=%b) M=(c0=%d c1=%d lvl=%d) W=(c0=%d lvl=%d) \
     repl=%d"
    q.v_c0 q.v_off q.v_level q.v_challenged q.m_c0 q.m_c1 q.m_level q.w_c0
    q.w_level q.replica

let path_to r id =
  let rec build id acc =
    match r.parents.(id) with
    | None -> acc
    | Some (parent, move) -> build parent ((move, r.states.(id)) :: acc)
  in
  build id []

let render_path path =
  String.concat " ; "
    (List.map
       (fun (move, q) -> Format.asprintf "%a => %s" pp_move move (describe q))
       path)

let max_violations = 3

let state_report r ~name p =
  let violations = ref [] and n = ref 0 in
  Array.iteri
    (fun id q ->
      if not (p q) then begin
        incr n;
        if !n <= max_violations then
          violations := render_path (path_to r id) :: !violations
      end)
    r.states;
  {
    Invariants.name;
    holds = !n = 0;
    checked = Array.length r.states;
    violations = List.rev !violations;
  }

let edge_report r ~name p =
  let violations = ref [] and n = ref 0 in
  Array.iter
    (fun (src, move, dst) ->
      if not (p r.states.(src) move r.states.(dst)) then begin
        incr n;
        if !n <= max_violations then
          violations :=
            render_path (path_to r src @ [ (move, r.states.(dst)) ])
            :: !violations
      end)
    r.edges;
  {
    Invariants.name;
    holds = !n = 0;
    checked = Array.length r.edges;
    violations = List.rev !violations;
  }

let reports ?(bounds = default_bounds) r =
  let b = bounds in
  (* The tentpole obligation: no schedule of framing, noise, decay and
     challenge traffic quarantines the honest responsive member. *)
  let victim_safe =
    state_report r ~name:"honest responsive member never quarantined"
      (fun q -> q.v_level < 2)
  in
  (* The ladder is one-way everywhere — including decay ticks,
     attestation relief and snapshot merges. *)
  let ratchet =
    edge_report r ~name:"containment levels never ratchet down"
      (fun q _m q' ->
        q'.v_level >= q.v_level
        && q'.m_level >= q.m_level
        && q'.w_level >= q.w_level
        && q'.replica >= q.replica)
  in
  (* Every quarantine edge is backed by corroborated evidence in the
     post-state — the score that crossed is still on the books. *)
  let corroborated_quarantine =
    edge_report r ~name:"quarantine requires corroborated evidence"
      (fun q _m q' ->
        (if q.v_level < 2 && q'.v_level >= 2 then
           corroborated b ~cls:[ q'.v_c0 ]
         else true)
        && (if q.m_level < 2 && q'.m_level >= 2 then
              corroborated b ~cls:[ q'.m_c0; q'.m_c1 ]
            else true)
        &&
        if q.w_level < 2 && q'.w_level >= 2 then
          corroborated b ~cls:[ q'.w_c0 ]
        else true)
  in
  (* A merge never loses an escalation: the successor ends at or above
     both its own prior level and the imported snapshot. *)
  let merge_ratchet =
    edge_report r ~name:"merge never loses an escalation" (fun q m q' ->
        match m with
        | M_import ->
            q'.replica >= q.replica
            && (match q.snap with Some s -> q'.replica >= s | None -> true)
        | _ -> true)
  in
  (* Non-vacuity: the attack surface was really exercised — the gate
     clamped a raw quarantine, a challenge round-trip fired, the
     insider and the wire really reach quarantine, and snapshots were
     merged. *)
  let surface =
    let exists p = Array.exists p r.states in
    {
      Invariants.name = "attack surface exercised";
      holds =
        exists (fun q -> q.clamped)
        && exists (fun q -> q.attested)
        && exists (fun q -> q.imported)
        && exists (fun q -> q.m_level >= 2)
        && exists (fun q -> q.w_level >= 2)
        && exists (fun q -> q.replica >= 2);
      checked = Array.length r.states;
      violations = [];
    }
  in
  [ victim_safe; ratchet; corroborated_quarantine; merge_ratchet; surface ]

let all ?bounds () =
  let r = explore ?bounds () in
  reports ?bounds r
