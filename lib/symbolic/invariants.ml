open Field

type report = {
  name : string;
  holds : bool;
  checked : int;
  violations : string list;
}

type checker = {
  on_state : Model.state -> unit;
  on_edge : Model.state -> Model.move -> Model.state -> unit;
  finish : unit -> report list;
}

let pp_report fmt { name; holds; checked; violations } =
  Format.fprintf fmt "%-28s %s (%d checked)" name
    (if holds then "HOLDS" else "VIOLATED")
    checked;
  List.iter (fun v -> Format.fprintf fmt "@.    counterexample: %s" v) violations

let max_violations = 5

let make_report name checked violations =
  {
    name;
    holds = violations = [];
    checked;
    violations =
      List.filteri (fun i _ -> i < max_violations) (List.rev violations);
  }

let describe_state q =
  Format.asprintf "usr=%a lead=%a |trace|=%d" Model.pp_user_state q.Model.usr
    Model.pp_leader_state q.Model.lead
    (Event.Set.cardinal q.Model.trace)

let no_state (_ : Model.state) = ()
let no_edge (_ : Model.state) (_ : Model.move) (_ : Model.state) = ()

let combine checkers =
  {
    on_state = (fun q -> List.iter (fun c -> c.on_state q) checkers);
    on_edge = (fun q m q' -> List.iter (fun c -> c.on_edge q m q') checkers);
    finish = (fun () -> List.concat_map (fun c -> c.finish ()) checkers);
  }

let check_result result c =
  Explore.iter_states result c.on_state;
  Explore.iter_edges result c.on_edge;
  c.finish ()

(* Run a single-report checker over a retained result. *)
let one result c =
  match check_result result c with [ r ] -> r | _ -> assert false

(* A checker built from a per-state predicate-style body. *)
let state_checker name f =
  let checked = ref 0 and violations = ref [] in
  {
    on_state = (fun q -> f checked violations q);
    on_edge = no_edge;
    finish = (fun () -> [ make_report name !checked !violations ]);
  }

let regularity_stream () =
  let checked = ref 0 and violations = ref [] in
  let on_edge q move q' =
    match move with
    | Model.E_inject _ -> ()
    | Model.A_join | Model.A_recv_keydist | Model.A_recv_admin | Model.A_leave
    | Model.L_recv_init | Model.L_recv_keyack | Model.L_send_admin
    | Model.L_recv_ack | Model.L_recv_close ->
        incr checked;
        let added =
          Field.Set.diff
            (Event.contents q'.Model.trace)
            (Event.contents q.Model.trace)
        in
        Field.Set.iter
          (fun content ->
            if Field.Set.mem (FKey Pa) (Closure.parts_of_field content) then
              violations :=
                Format.asprintf "%a sends Pa in %a" Model.pp_move move Field.pp
                  content
                :: !violations)
          added
  in
  {
    on_state = no_state;
    on_edge;
    finish = (fun () -> [ make_report "regularity (5.1)" !checked !violations ]);
  }

let regularity result = one result (regularity_stream ())

let long_term_key_secrecy_stream ?config () =
  state_checker "P_a secrecy (5.1)" (fun checked violations q ->
      incr checked;
      if Field.Set.mem (FKey Pa) (Model.intruder_knowledge ?config q) then
        violations := describe_state q :: !violations)

let long_term_key_secrecy ?config result =
  one result (long_term_key_secrecy_stream ?config ())

let session_keys_mentioned q =
  (* All session-key indices allocated so far. *)
  List.init q.Model.next_key (fun k -> k)

let session_key_secrecy_stream ?config () =
  state_checker "session-key secrecy (5.2)" (fun checked violations q ->
      let know = lazy (Model.intruder_knowledge ?config q) in
      List.iter
        (fun k ->
          if Model.in_use q k then begin
            incr checked;
            if Field.Set.mem (FKey (Ka k)) (Lazy.force know) then
              violations :=
                Format.asprintf "Ka%d leaked while in use: %s" k
                  (describe_state q)
                :: !violations
          end)
        (session_keys_mentioned q))

let session_key_secrecy ?config result =
  one result (session_key_secrecy_stream ?config ())

let coideal_invariant_stream () =
  state_checker "coideal invariant (5.2.5)" (fun checked violations q ->
      List.iter
        (fun k ->
          if Model.in_use q k then begin
            incr checked;
            let s = Field.Set.of_list [ FKey (Ka k); FKey Pa ] in
            let contents = Event.contents q.Model.trace in
            if not (Closure.set_in_coideal s contents) then
              violations :=
                Format.asprintf "trace escapes C({Ka%d,Pa}): %s" k
                  (describe_state q)
                :: !violations
          end)
        (session_keys_mentioned q))

let coideal_invariant result = one result (coideal_invariant_stream ())

let oops_keys_are_public_stream ?config () =
  state_checker "oops keys public (4.1)" (fun checked violations q ->
      Event.Set.iter
        (function
          | Event.Oops (FKey (Ka k)) ->
              incr checked;
              if
                not
                  (Field.Set.mem (FKey (Ka k))
                     (Model.intruder_knowledge ?config q))
              then
                violations :=
                  Format.asprintf "oopsed Ka%d not in Know(E): %s" k
                    (describe_state q)
                  :: !violations
          | Event.Oops _ | Event.Msg _ -> ())
        q.Model.trace)

let oops_keys_are_public ?config result =
  one result (oops_keys_are_public_stream ?config ())

let stream ?config () =
  combine
    [
      regularity_stream ();
      long_term_key_secrecy_stream ?config ();
      session_key_secrecy_stream ?config ();
      coideal_invariant_stream ();
      oops_keys_are_public_stream ?config ();
    ]

let all ?config result = check_result result (stream ?config ())
