open Field

type report = {
  name : string;
  holds : bool;
  checked : int;
  violations : string list;
}

let pp_report fmt { name; holds; checked; violations } =
  Format.fprintf fmt "%-28s %s (%d checked)" name
    (if holds then "HOLDS" else "VIOLATED")
    checked;
  List.iter (fun v -> Format.fprintf fmt "@.    counterexample: %s" v) violations

let max_violations = 5

let make_report name checked violations =
  {
    name;
    holds = violations = [];
    checked;
    violations =
      List.filteri (fun i _ -> i < max_violations) (List.rev violations);
  }

let describe_state q =
  Format.asprintf "usr=%a lead=%a |trace|=%d" Model.pp_user_state q.Model.usr
    Model.pp_leader_state q.Model.lead
    (Event.Set.cardinal q.Model.trace)

let regularity result =
  let checked = ref 0 and violations = ref [] in
  Explore.iter_edges result (fun q move q' ->
      match move with
      | Model.E_inject _ -> ()
      | Model.A_join | Model.A_recv_keydist | Model.A_recv_admin | Model.A_leave
      | Model.L_recv_init | Model.L_recv_keyack | Model.L_send_admin
      | Model.L_recv_ack | Model.L_recv_close ->
          incr checked;
          let added =
            Field.Set.diff
              (Event.contents q'.Model.trace)
              (Event.contents q.Model.trace)
          in
          Field.Set.iter
            (fun content ->
              if Field.Set.mem (FKey Pa) (Closure.parts_of_field content) then
                violations :=
                  Format.asprintf "%a sends Pa in %a" Model.pp_move move Field.pp
                    content
                  :: !violations)
            added);
  make_report "regularity (5.1)" !checked !violations

let long_term_key_secrecy ?config result =
  let checked = ref 0 and violations = ref [] in
  Explore.iter_states result (fun q ->
      incr checked;
      if Field.Set.mem (FKey Pa) (Model.intruder_knowledge ?config q) then
        violations := describe_state q :: !violations);
  make_report "P_a secrecy (5.1)" !checked !violations

let session_keys_mentioned q =
  (* All session-key indices allocated so far. *)
  List.init q.Model.next_key (fun k -> k)

let session_key_secrecy ?config result =
  let checked = ref 0 and violations = ref [] in
  Explore.iter_states result (fun q ->
      let know = lazy (Model.intruder_knowledge ?config q) in
      List.iter
        (fun k ->
          if Model.in_use q k then begin
            incr checked;
            if Field.Set.mem (FKey (Ka k)) (Lazy.force know) then
              violations :=
                Format.asprintf "Ka%d leaked while in use: %s" k (describe_state q)
                :: !violations
          end)
        (session_keys_mentioned q));
  make_report "session-key secrecy (5.2)" !checked !violations

let coideal_invariant result =
  let checked = ref 0 and violations = ref [] in
  Explore.iter_states result (fun q ->
      List.iter
        (fun k ->
          if Model.in_use q k then begin
            incr checked;
            let s = Field.Set.of_list [ FKey (Ka k); FKey Pa ] in
            let contents = Event.contents q.Model.trace in
            if not (Closure.set_in_coideal s contents) then
              violations :=
                Format.asprintf "trace escapes C({Ka%d,Pa}): %s" k
                  (describe_state q)
                :: !violations
          end)
        (session_keys_mentioned q));
  make_report "coideal invariant (5.2.5)" !checked !violations

let oops_keys_are_public ?config result =
  let checked = ref 0 and violations = ref [] in
  Explore.iter_states result (fun q ->
      Event.Set.iter
        (function
          | Event.Oops (FKey (Ka k)) ->
              incr checked;
              if not (Field.Set.mem (FKey (Ka k)) (Model.intruder_knowledge ?config q))
              then
                violations :=
                  Format.asprintf "oopsed Ka%d not in Know(E): %s" k
                    (describe_state q)
                  :: !violations
          | Event.Oops _ | Event.Msg _ -> ())
        q.Model.trace);
  make_report "oops keys public (4.1)" !checked !violations

let all ?config result =
  [
    regularity result;
    long_term_key_secrecy ?config result;
    session_key_secrecy ?config result;
    coideal_invariant result;
    oops_keys_are_public ?config result;
  ]
