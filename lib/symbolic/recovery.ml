(* A bounded model of the RECOVERY PLANE: the journal-replication
   channel between the old primary L, its successor S, and one member
   A, under a Dolev-Yao intruder E who owns the wire. The member-plane
   protocol (handshakes, admin traffic, Oops of expired session keys)
   is verified separately in {!Model}; this model abstracts it to "A
   follows the live source's epoch" and asks the three questions the
   demotion/reconciliation design must answer:

   - can a fabricated or replayed journal/replica frame RESURRECT a
     session that was closed durably?
   - can the recovery path ever REGRESS the member's group-key epoch
     (e.g. a successor promoting from a replica prefix that lost the
     last Epoch_bump)?
   - can a fabricated or replayed [Repl_stale] signal DEMOTE a live
     primary that was never actually superseded?

   Modelling choices, stated explicitly:

   - E can deliver, replay, reorder or withhold any frame ever put on
     the wire, and can synthesize frames under any key EXCEPT the
     shared manager key [K_r] — managers are inside the paper's trust
     boundary, so [K_r] is never oopsed. Synthesized frames carry
     [kr = false]; the receiving automata check exactly what the
     implementation checks (seal key, term binding, sequence window).
   - session close is modelled as durable AT THE RECOVERY PLANE: the
     close record reaches the replica atomically with the close. An
     asynchronously lost close is a fail-stop durability loss, not an
     intruder capability — what we verify here is that no INTRUDER
     action loses one.
   - the epoch vault is shared durable state (each manager persists
     its own copy and beacons the max; the model folds them into one
     monotone cell).

   The state space is tiny (a few thousand states) and explored
   exhaustively; obligations are reported as {!Invariants.report}
   values so the CLI's verify command can print and gate on them
   uniformly. *)

type bounds = { max_epoch : int; max_minted : int }

let default_bounds = { max_epoch = 3; max_minted = 3 }

type jrec = R_est | R_epoch of int | R_close

type role = Sourcing of int | Backup of int

type frame =
  | Fr_record of { kr : bool; term : int; seq : int }
      (* a journal-stream frame; [kr] = sealed under the manager key *)
  | Fr_stale of { kr : bool; stale_term : int; term : int }
      (* "term [stale_term] is dead; [term] is live" *)

type target = At_L | At_S

type state = {
  l_role : role;
  s_role : role;
  journal : jrec list;  (* L's journal while sourcing (newest last) *)
  s_replica : int;  (* prefix of [journal] S has applied and acked *)
  s_journal : jrec list;  (* S's own journal once promoted *)
  l_sess : bool;  (* L believes A's session live *)
  s_sess : bool;
  a_epoch : int;  (* the member's current group-key epoch *)
  a_closed : bool;  (* A's session was closed, durably *)
  l_epoch : int;
  s_epoch : int;  (* S's epoch belief once promoted *)
  vault : int;  (* durable epoch floor *)
  minted : int;  (* highest term legitimately minted so far *)
  partitioned : bool;
  wire : frame list;  (* authentic frames E has observed (sorted) *)
  forged_rejected : bool;  (* a bad-key frame was rejected somewhere *)
  replayed_rejected : bool;  (* a bad-binding frame was rejected *)
}

let initial =
  {
    l_role = Sourcing 1;
    s_role = Backup 1;
    journal = [];
    s_replica = 0;
    s_journal = [];
    l_sess = false;
    s_sess = false;
    a_epoch = 0;
    a_closed = false;
    l_epoch = 1;
    s_epoch = 0;
    vault = 1;
    minted = 1;
    partitioned = false;
    wire = [];
    forged_rejected = false;
    replayed_rejected = false;
  }

let canon q = Marshal.to_string q []

let record_frame q f =
  if List.mem f q.wire then q
  else { q with wire = List.sort compare (f :: q.wire) }

type move =
  | M_establish
  | M_bump  (* the live source bumps the epoch *)
  | M_replicate  (* one journal record reaches S's replica *)
  | M_close  (* the live source closes A's session, durably *)
  | M_partition
  | M_promote  (* S's watchdog fires; warm promotion from the replica *)
  | M_adopt  (* A follows the promoted source's epoch *)
  | M_heal  (* partition heals; S's authentic evidence hits the wire *)
  | M_deliver_stale of frame * target
  | M_deliver_record of frame * target
  | M_synth_stale of frame * target  (* E-built, kr = false *)
  | M_synth_record of frame * target

let pp_target fmt = function
  | At_L -> Format.pp_print_string fmt "L"
  | At_S -> Format.pp_print_string fmt "S"

let pp_frame fmt = function
  | Fr_record { kr; term; seq } ->
      Format.fprintf fmt "record(kr=%b,term=%d,seq=%d)" kr term seq
  | Fr_stale { kr; stale_term; term } ->
      Format.fprintf fmt "stale(kr=%b,dead=%d,live=%d)" kr stale_term term

let pp_move fmt = function
  | M_establish -> Format.pp_print_string fmt "L:establish-A"
  | M_bump -> Format.pp_print_string fmt "source:epoch-bump"
  | M_replicate -> Format.pp_print_string fmt "S:replicate-one"
  | M_close -> Format.pp_print_string fmt "source:close-A"
  | M_partition -> Format.pp_print_string fmt "net:partition-L"
  | M_promote -> Format.pp_print_string fmt "S:promote"
  | M_adopt -> Format.pp_print_string fmt "A:adopt-epoch"
  | M_heal -> Format.pp_print_string fmt "net:heal"
  | M_deliver_stale (f, t) ->
      Format.fprintf fmt "E:deliver-%a@%a" pp_frame f pp_target t
  | M_deliver_record (f, t) ->
      Format.fprintf fmt "E:deliver-%a@%a" pp_frame f pp_target t
  | M_synth_stale (f, t) ->
      Format.fprintf fmt "E:forge-%a@%a" pp_frame f pp_target t
  | M_synth_record (f, t) ->
      Format.fprintf fmt "E:forge-%a@%a" pp_frame f pp_target t

let role_of q = function At_L -> q.l_role | At_S -> q.s_role

let prefix_epoch recs =
  List.fold_left
    (fun acc r -> match r with R_epoch e -> max acc e | _ -> acc)
    1 recs

let take n l = List.filteri (fun i _ -> i < n) l

(* Demote [target], currently [Sourcing _], to a catching-up backup at
   the superseding term. L's journal is cut back to the prefix S acked
   under the common term — exactly {!Replication.Source.acked_prefix};
   its unwitnessed suffix is discarded with the role. *)
let demote q target ~term =
  match target with
  | At_L ->
      {
        q with
        l_role = Backup term;
        l_sess = false;
        journal = take q.s_replica q.journal;
      }
  | At_S -> { q with s_role = Backup term; s_sess = false; s_journal = [] }

(* The stale-signal receiver — the same checks as
   {!Replication.Source.handle_frame}: seal under K_r, [stale_term]
   must equal the receiver's CURRENT term, the superseding term must be
   strictly greater. A backup has nothing to demote: dropped. *)
let recv_stale q target f =
  match (f, role_of q target) with
  | Fr_stale _, Backup _ -> None
  | Fr_stale { kr = false; _ }, Sourcing _ ->
      Some { q with forged_rejected = true }
  | Fr_stale { kr = true; stale_term; term }, Sourcing t ->
      if stale_term <> t || term <= stale_term then
        Some { q with replayed_rejected = true }
      else Some (demote q target ~term)
  | Fr_record _, _ -> None

(* A journal-stream frame arriving at a manager:
   - at a SOURCING manager this is {!Replication.Source.handle_peer_record}:
     a strictly higher authentic term demotes us, a lower one is the
     zombie's dead stream (counted; in the implementation it draws a
     stale notice back), an equal one is impossible honestly = forged;
   - at a BACKUP, E can only replay frames recorded before the replica
     advanced past them, so every delivery is out-of-window. *)
let recv_record q target f =
  match (f, role_of q target) with
  | Fr_record { kr = false; _ }, _ -> Some { q with forged_rejected = true }
  | Fr_record { kr = true; term; _ }, Sourcing t ->
      if term > t then Some (demote q target ~term)
      else Some { q with replayed_rejected = true }
  | Fr_record { kr = true; _ }, Backup _ ->
      Some { q with replayed_rejected = true }
  | Fr_stale _, _ -> None

let successors bounds q =
  let moves = ref [] in
  let add m s = moves := (m, s) :: !moves in

  (* One session per run (rejoin is the member-plane model's
     business): L establishes A while sourcing an empty journal. *)
  (match q.l_role with
  | Sourcing _ when (not q.l_sess) && (not q.a_closed) && q.journal = [] ->
      add M_establish
        { q with l_sess = true; a_epoch = q.l_epoch; journal = [ R_est ] }
  | _ -> ());

  (* The sourcing manager bumps the group epoch. The member follows
     only while L is the GENUINE source (S still a backup): once S has
     promoted, A follows S and the zombie's bumps land in the
     divergent suffix that demotion will discard. The vault (S's
     durable epoch floor) learns epochs through replication, below —
     not here. *)
  (match (q.l_role, q.s_role) with
  | Sourcing _, s
    when q.l_sess && (not q.partitioned) && q.l_epoch < bounds.max_epoch ->
      let e = q.l_epoch + 1 in
      let genuine = match s with Backup _ -> true | Sourcing _ -> false in
      add M_bump
        {
          q with
          l_epoch = e;
          (* the member-plane guard: NewKey with a non-increasing
             epoch is rejected (the paper's A3/W3 fix) *)
          a_epoch = (if genuine && e > q.a_epoch then e else q.a_epoch);
          journal = q.journal @ [ R_epoch e ];
        }
  | _ -> ());
  (match q.s_role with
  | Sourcing _ when q.s_sess && q.s_epoch < bounds.max_epoch ->
      let e = q.s_epoch + 1 in
      add M_bump
        {
          q with
          s_epoch = e;
          vault = max q.vault e;
          (* a successor that promoted from a lagging replica re-mints
             epochs the member already passed; the member's W3 guard
             drops them until the count catches up — no regression *)
          a_epoch = (if e > q.a_epoch then e else q.a_epoch);
          s_journal = q.s_journal @ [ R_epoch e ];
        }
  | _ -> ());

  (* Replication: one more journal record reaches S's replica (and E
     records the sealed frame off the wire). Only while L sources and
     the link is up. S's vault persists every epoch it sees land. *)
  (match (q.l_role, q.s_role) with
  | Sourcing t, Backup _
    when (not q.partitioned) && q.s_replica < List.length q.journal ->
      let vault =
        match List.nth q.journal q.s_replica with
        | R_epoch e -> max q.vault e
        | R_est | R_close -> q.vault
      in
      add M_replicate
        (record_frame
           { q with s_replica = q.s_replica + 1; vault }
           (Fr_record { kr = true; term = t; seq = q.s_replica }))
  | _ -> ());

  (* Close — durable at the recovery plane (see the header) when
     issued by the genuine source. A superseded zombie's close is just
     another record in its divergent suffix: it does NOT close A's
     live session at S, and demotion will discard it. *)
  (match (q.l_role, q.s_role) with
  | Sourcing _, Backup _ when q.l_sess && not q.partitioned ->
      add M_close
        {
          q with
          l_sess = false;
          a_closed = true;
          journal = q.journal @ [ R_close ];
          s_replica = List.length q.journal + 1;
          vault = max q.vault q.l_epoch;
        }
  | Sourcing _, Sourcing _ when q.l_sess && not q.partitioned ->
      add M_close { q with l_sess = false; journal = q.journal @ [ R_close ] }
  | _ -> ());
  (match q.s_role with
  | Sourcing _ when q.s_sess ->
      add M_close
        {
          q with
          s_sess = false;
          a_closed = true;
          s_journal = q.s_journal @ [ R_close ];
        }
  | _ -> ());

  (* The partition isolates L (fail-stop silence, not Byzantium). *)
  (match q.l_role with
  | Sourcing _ when not q.partitioned ->
      add M_partition { q with partitioned = true }
  | _ -> ());

  (* S's promotion watchdog fires on silence: warm promotion from the
     replica prefix, minting the next term. The epoch belief is
     max(prefix, vault) — the vault line is exactly what the
     no-regression obligation depends on. *)
  (match q.s_role with
  | Backup _ when q.partitioned && q.minted < bounds.max_minted ->
      let term = q.minted + 1 in
      let prefix = take q.s_replica q.journal in
      let sess = List.mem R_est prefix && not (List.mem R_close prefix) in
      add M_promote
        {
          q with
          s_role = Sourcing term;
          s_journal = prefix;
          s_sess = sess;
          s_epoch = max (prefix_epoch prefix) q.vault;
          minted = term;
        }
  | _ -> ());

  (* A follows the promoted source's epoch (beacon / NewKey). The
     member-plane guard — a member rejects an epoch older than its own
     as stale — is part of the modelled behaviour; the no-regression
     obligation checks that the conjunction of this guard and the
     vault floor really leaves no regressing edge. *)
  (match q.s_role with
  | Sourcing _ when q.s_sess && q.s_epoch > q.a_epoch ->
      add M_adopt { q with a_epoch = q.s_epoch }
  | _ -> ());

  (* The heal: L is reachable again. If S promoted meanwhile, its
     authentic higher-term evidence is now in flight — both the
     demotion signal its replicas answer the zombie's stream with, and
     S's own higher-term stream frames. *)
  if q.partitioned then begin
    let healed = { q with partitioned = false } in
    match (q.l_role, q.s_role) with
    | Sourcing t, Sourcing t' ->
        add M_heal
          (record_frame
             (record_frame healed (Fr_stale { kr = true; stale_term = t; term = t' }))
             (Fr_record { kr = true; term = t'; seq = 0 }))
    | _ -> add M_heal healed
  end;

  (* E owns the wire: deliver (replay) any recorded frame anywhere
     reachable, and synthesize bad-key frames with otherwise perfect
     binding — the strongest forgery short of breaking the AEAD. *)
  let deliverable_at = function At_L -> not q.partitioned | At_S -> true in
  let try_deliver mk recv f target =
    if deliverable_at target then
      match recv q target f with
      | Some q' when canon q' <> canon q -> add (mk (f, target)) q'
      | Some _ | None -> ()
  in
  List.iter
    (fun f ->
      List.iter
        (fun target ->
          try_deliver (fun (f, tg) -> M_deliver_stale (f, tg)) recv_stale f target;
          try_deliver (fun (f, tg) -> M_deliver_record (f, tg)) recv_record f target)
        [ At_L; At_S ])
    q.wire;
  List.iter
    (fun target ->
      match role_of q target with
      | Sourcing t ->
          try_deliver
            (fun (f, tg) -> M_synth_stale (f, tg))
            recv_stale
            (Fr_stale { kr = false; stale_term = t; term = t + 1 })
            target;
          try_deliver
            (fun (f, tg) -> M_synth_record (f, tg))
            recv_record
            (Fr_record { kr = false; term = t + 1; seq = 0 })
            target
      | Backup _ ->
          try_deliver
            (fun (f, tg) -> M_synth_record (f, tg))
            recv_record
            (Fr_record { kr = false; term = q.minted; seq = q.s_replica })
            target)
    [ At_L; At_S ];

  !moves

(* --- exploration: the same compact BFS as {!Legacy_model} --- *)

type result = {
  states : state array;
  index : (string, int) Hashtbl.t;
  parents : (int * move) option array;
  edges : (int * move * int) array;
}

let explore ?(bounds = default_bounds) () =
  let index = Hashtbl.create 1024 in
  let states = ref [] and n_states = ref 0 in
  let parents = ref [] in
  let edges = ref [] and n_edges = ref 0 in
  let queue = Queue.create () in
  let intern q parent =
    let id = !n_states in
    Hashtbl.add index (canon q) id;
    states := q :: !states;
    parents := parent :: !parents;
    incr n_states;
    Queue.add (id, q) queue;
    id
  in
  ignore (intern initial None);
  while not (Queue.is_empty queue) do
    let id, q = Queue.pop queue in
    List.iter
      (fun (move, q') ->
        let id' =
          match Hashtbl.find_opt index (canon q') with
          | Some id' -> id'
          | None -> intern q' (Some (id, move))
        in
        edges := (id, move, id') :: !edges;
        incr n_edges)
      (successors bounds q)
  done;
  let of_rev_list n l =
    match l with
    | [] -> [||]
    | hd :: _ ->
        let a = Array.make n hd in
        List.iteri (fun i x -> a.(n - 1 - i) <- x) l;
        a
  in
  {
    states = of_rev_list !n_states !states;
    index;
    parents = of_rev_list !n_states !parents;
    edges = of_rev_list !n_edges !edges;
  }

let state_count r = Array.length r.states
let edge_count r = Array.length r.edges

let pp_role fmt = function
  | Sourcing t -> Format.fprintf fmt "Sourcing(%d)" t
  | Backup t -> Format.fprintf fmt "Backup(%d)" t

let describe q =
  Format.asprintf
    "L=%a S=%a sess=(%b,%b) a_epoch=%d closed=%b minted=%d part=%b" pp_role
    q.l_role pp_role q.s_role q.l_sess q.s_sess q.a_epoch q.a_closed q.minted
    q.partitioned

let path_to r id =
  let rec build id acc =
    match r.parents.(id) with
    | None -> acc
    | Some (parent, move) -> build parent ((move, r.states.(id)) :: acc)
  in
  build id []

let render_path path =
  String.concat " ; "
    (List.map (fun (move, q) -> Format.asprintf "%a => %s" pp_move move (describe q)) path)

let max_violations = 3

let state_report r ~name p =
  let violations = ref [] and n = ref 0 in
  Array.iteri
    (fun id q ->
      if not (p q) then begin
        incr n;
        if !n <= max_violations then
          violations := render_path (path_to r id) :: !violations
      end)
    r.states;
  {
    Invariants.name;
    holds = !n = 0;
    checked = Array.length r.states;
    violations = List.rev !violations;
  }

let edge_report r ~name p =
  let violations = ref [] and n = ref 0 in
  Array.iter
    (fun (src, move, dst) ->
      if not (p r.states.(src) move r.states.(dst)) then begin
        incr n;
        if !n <= max_violations then
          violations :=
            render_path (path_to r src @ [ (move, r.states.(dst)) ])
            :: !violations
      end)
    r.edges;
  {
    Invariants.name;
    holds = !n = 0;
    checked = Array.length r.edges;
    violations = List.rev !violations;
  }

(* A demotion edge (some manager drops from Sourcing to Backup by a
   frame delivery) is legitimate iff the frame is sealed under K_r,
   carries a strictly higher superseding term, and that term was
   genuinely minted by an honest promotion before the edge. *)
let demotion_justified q_src move =
  let demoted target =
    match role_of q_src target with Sourcing t -> Some t | Backup _ -> None
  in
  let frame_ok f t =
    match f with
    | Fr_stale { kr; stale_term; term } ->
        kr && stale_term = t && term > t && term <= q_src.minted
    | Fr_record { kr; term; _ } -> kr && term > t && term <= q_src.minted
  in
  match move with
  | M_deliver_stale (f, target) | M_deliver_record (f, target)
  | M_synth_stale (f, target) | M_synth_record (f, target) -> (
      match demoted target with None -> true | Some t -> frame_ok f t)
  | _ -> true

(* The session is "live" only at a source at the highest minted term.
   A superseded zombie's lingering belief is split-brain residue — A
   is long gone from it, and demotion clears it at the heal — not a
   resurrection. *)
let live_sess q =
  (match q.l_role with
  | Sourcing t when t = q.minted -> q.l_sess
  | _ -> false)
  ||
  match q.s_role with Sourcing t when t = q.minted -> q.s_sess | _ -> false

let reports r =
  let no_resurrection =
    state_report r ~name:"no closed-session resurrection" (fun q ->
        not (q.a_closed && live_sess q))
  in
  let no_regression =
    edge_report r ~name:"member epoch never regresses" (fun q _move q' ->
        q'.a_epoch >= q.a_epoch)
  in
  let no_forged_demotion =
    edge_report r ~name:"no forged/replayed demotion" (fun q move q' ->
        let dropped target =
          match (role_of q target, role_of q' target) with
          | Sourcing _, Backup _ -> true
          | _ -> false
        in
        if dropped At_L || dropped At_S then demotion_justified q move
        else true)
  in
  (* Non-vacuity: the intruder really fired forgeries and replays, and
     a genuine heal-path demotion is really reachable — the three
     obligations above are not holding over an empty attack surface. *)
  let surface =
    let exists p = Array.exists p r.states in
    let demote_edge =
      Array.exists
        (fun (src, _m, dst) ->
          match (r.states.(src).l_role, r.states.(dst).l_role) with
          | Sourcing _, Backup _ -> true
          | _ -> false)
        r.edges
    in
    {
      Invariants.name = "attack surface exercised";
      holds =
        exists (fun q -> q.forged_rejected)
        && exists (fun q -> q.replayed_rejected)
        && exists (fun q -> q.a_closed)
        && demote_edge;
      checked = Array.length r.states + Array.length r.edges;
      violations = [];
    }
  in
  [ no_resurrection; no_regression; no_forged_demotion; surface ]

let all ?bounds () = reports (explore ?bounds ())
