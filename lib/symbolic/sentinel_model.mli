(** A bounded model of the sentinel's {e containment ladder} under a
    framing campaign — injection-path attribution, the corroboration
    gate, the liveness challenge, decay, and suspicion-snapshot
    merging, against a Dolev-Yao wire attacker [E] who owns the wire.

    Three principals are scored: [V], an honest responsive member
    whose own socket produces a {e bounded} amount of single-class
    on-path noise (the model's encoding of the calibration invariant
    that honest traffic alone stays below the quarantine threshold —
    pinned empirically by the chaos suite, assumed here); [M], a
    compromised insider whose hostile frames arrive over its own
    socket and span two evidence classes; and [W], the wire
    pseudo-peer charged on-path for every raw injection. [E] injects
    frames claiming [V] at will (off-path evidence, modelled at {e
    full} weight — the implementation discounts it, so the modelled
    attacker is strictly stronger) until the wire itself is
    quarantined, and replays shipped suspicion snapshots at a
    successor in any order.

    Obligations, returned as {!Invariants.report} values so the CLI's
    [verify] command gates on them uniformly:

    - {b honest responsive member never quarantined}: no interleaving
      of framing injections, honest slips, decay ticks, challenges and
      attestations reaches a state with [V] at Quarantined or above;
    - {b levels never ratchet down}: on every edge — including decay,
      attestation relief and merges — each principal's level and the
      successor's imported level are monotone;
    - {b quarantine requires corroborated evidence}: every edge that
      first lifts a principal to Quarantined lands in a state whose
      on-path evidence is corroborated (two live classes, or on-path
      volume alone past the threshold);
    - {b merge never loses an escalation}: a snapshot import leaves
      the successor at or above both its prior level and the imported
      snapshot, under arbitrary stale replay;
    - {b non-vacuity}: the corroboration gate really clamped a raw
      quarantine, a challenge/attestation round-trip fired, the
      insider and the wire really reach quarantine, and snapshots
      really propagate an escalation to the successor. *)

type bounds = {
  rate_limit_at : int;
  quarantine_at : int;
  expel_at : int;
  slip_cap : int;
      (** Bound on [V]'s honest on-path noise; the calibration
          invariant requires it below [quarantine_at]. *)
  off_cap : int;  (** Cap on [V]'s off-path accumulator. *)
  cls_cap : int;  (** Per-class cap for the insider and the wire. *)
}

val default_bounds : bounds
(** Thresholds 1/3/5, slips ≤ 2, scores ≤ 4–5 — tens of thousands of
    states, explored in a few seconds. *)

type state
type move
type result

val explore : ?bounds:bounds -> unit -> result
(** Exhaustive BFS of the bounded instance. *)

val state_count : result -> int
val edge_count : result -> int

val reports : ?bounds:bounds -> result -> Invariants.report list
(** The four obligations plus the non-vacuity check, in that order.
    Violations carry pretty-printed counterexample traces. *)

val all : ?bounds:bounds -> unit -> Invariants.report list
(** [explore] then [reports]. *)
