(** The secrecy results of §5.1 and §5.2, checked exhaustively over an
    explored state space.

    Each check returns a {!report}; [holds = true] means the property
    was verified in {e every} reachable state (or over every
    transition, for per-edge obligations) of the bounded instance. *)

type report = {
  name : string;
  holds : bool;
  checked : int;  (** States or edges examined. *)
  violations : string list;  (** Pretty-printed counterexamples (capped). *)
}

val pp_report : Format.formatter -> report -> unit

(** A streaming check: feed it states and edges as the exploration
    produces them (e.g. from {!Explore.run_stream}), then collect the
    reports. Checkers are single-use — the callbacks accumulate into
    internal state that [finish] reads out (calling [finish] more than
    once is harmless). *)
type checker = {
  on_state : Model.state -> unit;
  on_edge : Model.state -> Model.move -> Model.state -> unit;
  finish : unit -> report list;
}

val combine : checker list -> checker
(** Fan callbacks out to every checker; [finish] concatenates the
    reports in order. *)

val check_result : Explore.result -> checker -> report list
(** Drive a checker over a retained exploration: all states first,
    then all edges, then [finish]. *)

val stream : ?config:Model.config -> unit -> checker
(** Streaming form of {!all}: the five §5.1/§5.2 secrecy checks. *)

val regularity : Explore.result -> report
(** §5.1, the Regularity Lemma's premise: no honest transition ever
    places [P_a] inside a message. Checked per honest edge on the
    contents the edge adds to the trace. *)

val long_term_key_secrecy : ?config:Model.config -> Explore.result -> report
(** §5.1's conclusion: in every reachable state,
    [P_a ∉ Know(E, q)] — no agent other than [A] and [L] can ever
    access [A]'s long-term key. *)

val session_key_secrecy : ?config:Model.config -> Explore.result -> report
(** §5.2, Proposition 3: [InUse(K_a, q) ∧ K_a ∈ Know(G, q) ⇒ G ∈
    {A, L}] — while a session key is in use the intruder never holds
    it, even though expired session keys are handed over via Oops. *)

val coideal_invariant : Explore.result -> report
(** §5.2, property (5): whenever [K_a] is in use,
    [trace(q) ⊆ C({K_a, P_a})] — every content on the wire lies in the
    coideal, i.e. carries no path to the secrets. This is the
    paper's actual inductive invariant, stronger than its corollary
    {!session_key_secrecy}. *)

val oops_keys_are_public : ?config:Model.config -> Explore.result -> report
(** Sanity check of the Oops semantics: once a session closes, its key
    {e is} in the intruder's knowledge — compromise of expired keys is
    really being modelled, so {!session_key_secrecy} is not vacuous. *)

val all : ?config:Model.config -> Explore.result -> report list
