let describe_state q =
  Format.asprintf "usr=%a lead=%a snd=[%s] rcv=[%s]" Model.pp_user_state
    q.Model.usr Model.pp_leader_state q.Model.lead
    (String.concat ";" (List.map string_of_int q.Model.snd))
    (String.concat ";" (List.map string_of_int q.Model.rcv))

let max_violations = 5

let make_report name checked violations =
  {
    Invariants.name;
    holds = violations = [];
    checked;
    violations =
      List.filteri (fun i _ -> i < max_violations) (List.rev violations);
  }

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'

let over_states result name check =
  let checked = ref 0 and violations = ref [] in
  Explore.iter_states result (fun q ->
      incr checked;
      if not (check q) then violations := describe_state q :: !violations);
  make_report name !checked !violations

let prefix_property result =
  over_states result "rcv_A prefix of snd_A (5.4)" (fun q ->
      is_prefix q.Model.rcv q.Model.snd)

let proper_authentication result =
  over_states result "proper authentication (5.4)" (fun q ->
      q.Model.accepts <= q.Model.joins)

let agreement result =
  over_states result "key/nonce agreement (5.4)" (fun q ->
      match (q.Model.usr, q.Model.lead) with
      | Model.U_connected (n, k), Model.L_connected (n', k') ->
          n = n' && k = k'
      | _ -> true)

let possession result =
  over_states result "A connected => InUse (5.4)" (fun q ->
      match q.Model.usr with
      | Model.U_connected (_, k) -> Model.in_use q k
      | Model.U_not_connected | Model.U_waiting_for_key _ -> true)

let no_duplicates result =
  over_states result "no duplicate admin accepted (5.4)" (fun q ->
      List.length (List.sort_uniq compare q.Model.rcv)
      = List.length q.Model.rcv)

let all result =
  [
    prefix_property result;
    proper_authentication result;
    agreement result;
    possession result;
    no_duplicates result;
  ]
