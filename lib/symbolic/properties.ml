let describe_state q =
  Format.asprintf "usr=%a lead=%a snd=[%s] rcv=[%s]" Model.pp_user_state
    q.Model.usr Model.pp_leader_state q.Model.lead
    (String.concat ";" (List.map string_of_int q.Model.snd))
    (String.concat ";" (List.map string_of_int q.Model.rcv))

let max_violations = 5

let make_report name checked violations =
  {
    Invariants.name;
    holds = violations = [];
    checked;
    violations =
      List.filteri (fun i _ -> i < max_violations) (List.rev violations);
  }

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'

(* A single-report streaming checker over a per-state predicate. *)
let state_checker name check =
  let checked = ref 0 and violations = ref [] in
  {
    Invariants.on_state =
      (fun q ->
        incr checked;
        if not (check q) then violations := describe_state q :: !violations);
    on_edge = (fun _ _ _ -> ());
    finish = (fun () -> [ make_report name !checked !violations ]);
  }

let one result c =
  match Invariants.check_result result c with
  | [ r ] -> r
  | _ -> assert false

let prefix_stream () =
  state_checker "rcv_A prefix of snd_A (5.4)" (fun q ->
      is_prefix q.Model.rcv q.Model.snd)

let prefix_property result = one result (prefix_stream ())

let proper_authentication_stream () =
  state_checker "proper authentication (5.4)" (fun q ->
      q.Model.accepts <= q.Model.joins)

let proper_authentication result = one result (proper_authentication_stream ())

let agreement_stream () =
  state_checker "key/nonce agreement (5.4)" (fun q ->
      match (q.Model.usr, q.Model.lead) with
      | Model.U_connected (n, k), Model.L_connected (n', k') ->
          n = n' && k = k'
      | _ -> true)

let agreement result = one result (agreement_stream ())

let possession_stream () =
  state_checker "A connected => InUse (5.4)" (fun q ->
      match q.Model.usr with
      | Model.U_connected (_, k) -> Model.in_use q k
      | Model.U_not_connected | Model.U_waiting_for_key _ -> true)

let possession result = one result (possession_stream ())

let no_duplicates_stream () =
  state_checker "no duplicate admin accepted (5.4)" (fun q ->
      List.length (List.sort_uniq compare q.Model.rcv)
      = List.length q.Model.rcv)

let no_duplicates result = one result (no_duplicates_stream ())

let stream () =
  Invariants.combine
    [
      prefix_stream ();
      proper_authentication_stream ();
      agreement_stream ();
      possession_stream ();
      no_duplicates_stream ();
    ]

let all result = Invariants.check_result result (stream ())
