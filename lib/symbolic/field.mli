(** The message-field algebra of §4.

    Fields are the abstract syntax of message contents: agent
    identities, nonces, keys and data atoms are primitive; fields close
    under concatenation [FCat] and symmetric encryption [FCrypt]. This
    is exactly the set [F] of the paper (with [FData] standing for the
    abstract group-management payload [X]).

    Nonces and session keys come from finite indexed pools so that the
    model checker explores a finite state space; the paper's
    [FreshNonces]/[FreshKeys] are modelled by least-unused allocation,
    a sound symmetry reduction because unused atoms are
    interchangeable. *)

type agent = A  (** The honest user under analysis. *)
           | L  (** The honest leader. *)
           | Intruder  (** Everyone else, folded into one Dolev-Yao agent. *)

type key =
  | Pa  (** A's long-term key — the secrecy target of §5.1. *)
  | Ka of int  (** Session keys, by pool index — the targets of §5.2. *)
  | Kg of int
      (** Group keys by epoch — used by the legacy-protocol model
          (§2.2/§2.3), where insiders hold them. *)

type t =
  | FAgent of agent
  | FNonce of int
  | FKey of key
  | FData of int  (** Abstract group-management payload [X]. *)
  | FCat of t list  (** Concatenation; invariant: length >= 2. *)
  | FCrypt of key * t  (** [{body}_k]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val compare_key : key -> key -> int
val pp_agent : Format.formatter -> agent -> unit
val pp_key : Format.formatter -> key -> unit
val pp : Format.formatter -> t -> unit

val cat : t list -> t
(** Smart constructor. @raise Invalid_argument on fewer than 2 parts. *)

module Set : Stdlib.Set.S with type elt = t
module KeySet : Stdlib.Set.S with type elt = key
