open Field

let rec add_parts acc f =
  if Set.mem f acc then acc
  else
    let acc = Set.add f acc in
    match f with
    | FAgent _ | FNonce _ | FKey _ | FData _ -> acc
    | FCat fs -> List.fold_left add_parts acc fs
    | FCrypt (_, body) -> add_parts acc body

let parts s = Set.fold (fun f acc -> add_parts acc f) s Set.empty
let parts_of_field f = add_parts Set.empty f

let keys_of s =
  Set.fold
    (fun f acc -> match f with FKey k -> KeySet.add k acc | _ -> acc)
    s KeySet.empty

(* Analz: iterate splitting concatenations and opening decryptable
   encryptions until no growth. *)
let analz s =
  let changed = ref true in
  let current = ref s in
  while !changed do
    changed := false;
    let keys = keys_of !current in
    let step f acc =
      match f with
      | FCat fs ->
          List.fold_left
            (fun acc part ->
              if Set.mem part acc then acc
              else begin
                changed := true;
                Set.add part acc
              end)
            acc fs
      | FCrypt (k, body) when KeySet.mem k keys ->
          if Set.mem body acc then acc
          else begin
            changed := true;
            Set.add body acc
          end
      | FAgent _ | FNonce _ | FKey _ | FData _ | FCrypt _ -> acc
    in
    current := Set.fold step !current !current
  done;
  !current

let rec in_synth s f =
  Set.mem f s
  ||
  match f with
  | FCat fs -> List.for_all (in_synth s) fs
  | FCrypt (k, body) -> Set.mem (FKey k) s && in_synth s body
  | FAgent _ | FData _ ->
      (* Agent names and abstract admin payloads are public: a sound
         over-approximation that only strengthens the intruder. *)
      true
  | FNonce _ | FKey _ -> false

let rec in_ideal s f =
  Set.mem f s
  ||
  match f with
  | FCat fs -> List.exists (in_ideal s) fs
  | FCrypt (k, body) -> (not (Set.mem (FKey k) s)) && in_ideal s body
  | FAgent _ | FNonce _ | FKey _ | FData _ -> false

let in_coideal s f = not (in_ideal s f)
let set_in_coideal s fields = Set.for_all (in_coideal s) fields
