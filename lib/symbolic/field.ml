type agent = A | L | Intruder
type key = Pa | Ka of int | Kg of int

type t =
  | FAgent of agent
  | FNonce of int
  | FKey of key
  | FData of int
  | FCat of t list
  | FCrypt of key * t

let compare = Stdlib.compare
let equal a b = compare a b = 0
let compare_key = Stdlib.compare

let pp_agent fmt = function
  | A -> Format.pp_print_string fmt "A"
  | L -> Format.pp_print_string fmt "L"
  | Intruder -> Format.pp_print_string fmt "E"

let pp_key fmt = function
  | Pa -> Format.pp_print_string fmt "Pa"
  | Ka i -> Format.fprintf fmt "Ka%d" i
  | Kg i -> Format.fprintf fmt "Kg%d" i

let rec pp fmt = function
  | FAgent a -> pp_agent fmt a
  | FNonce n -> Format.fprintf fmt "N%d" n
  | FKey k -> pp_key fmt k
  | FData d -> Format.fprintf fmt "X%d" d
  | FCat fs ->
      Format.fprintf fmt "[%a]"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ",") pp)
        fs
  | FCrypt (k, body) -> Format.fprintf fmt "{%a}_%a" pp body pp_key k

let cat fs =
  if List.length fs < 2 then invalid_arg "Field.cat: need at least two parts";
  FCat fs

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module KeySet = Stdlib.Set.Make (struct
  type t = key

  let compare = compare_key
end)
