open Field

type bounds = { max_epoch : int; insider_epochs : int; max_nonces : int }

let default_bounds = { max_epoch = 3; insider_epochs = 2; max_nonces = 4 }

type member_state =
  | M_not_connected
  | M_waiting_ack
  | M_waiting_auth2 of int
  | M_connected of { epoch : int; sees_b : bool }
  | M_denied

type leader_state = L_idle | L_waiting_auth1 | L_waiting_auth3 of int | L_in_session

type state = {
  mem : member_state;
  lead : leader_state;
  lead_epoch : int;
  trace : Event.Set.t;
  next_nonce : int;
}

let pp_member_state fmt = function
  | M_not_connected -> Format.pp_print_string fmt "NotConnected"
  | M_waiting_ack -> Format.pp_print_string fmt "WaitingAckOpen"
  | M_waiting_auth2 n -> Format.fprintf fmt "WaitingAuth2(N%d)" n
  | M_connected { epoch; sees_b } ->
      Format.fprintf fmt "Connected(epoch=%d,sees_b=%b)" epoch sees_b
  | M_denied -> Format.pp_print_string fmt "Denied"

let pp_leader_state fmt = function
  | L_idle -> Format.pp_print_string fmt "Idle"
  | L_waiting_auth1 -> Format.pp_print_string fmt "WaitingAuth1"
  | L_waiting_auth3 n -> Format.fprintf fmt "WaitingAuth3(N%d)" n
  | L_in_session -> Format.pp_print_string fmt "InSession"

(* B, the other honest group member whose presence the attacks erase,
   is represented by a public data atom. *)
let b_ident = FData 500

(* The single session key of A's one session (no rejoin here — the
   weaknesses show up within one session). *)
let ka = Ka 0

let initial =
  {
    mem = M_not_connected;
    lead = L_idle;
    lead_epoch = 1;
    trace = Event.Set.empty;
    next_nonce = 0;
  }

let canon q =
  Marshal.to_string
    (q.mem, q.lead, q.lead_epoch, Event.Set.elements q.trace, q.next_nonce)
    []

type move =
  | A_join
  | A_recv_ack_open
  | A_recv_denied
  | A_recv_auth2
  | A_recv_new_key of int
  | A_recv_mem_removed
  | L_recv_req_open
  | L_recv_auth1
  | L_recv_auth3
  | L_rekey
  | L_recv_req_close
  | E_inject of Event.label

let pp_move fmt = function
  | A_join -> Format.pp_print_string fmt "A:req-open"
  | A_recv_ack_open -> Format.pp_print_string fmt "A:recv-ack-open"
  | A_recv_denied -> Format.pp_print_string fmt "A:recv-denied!"
  | A_recv_auth2 -> Format.pp_print_string fmt "A:recv-auth2"
  | A_recv_new_key e -> Format.fprintf fmt "A:recv-new-key(epoch=%d)" e
  | A_recv_mem_removed -> Format.pp_print_string fmt "A:recv-mem-removed!"
  | L_recv_req_open -> Format.pp_print_string fmt "L:recv-req-open"
  | L_recv_auth1 -> Format.pp_print_string fmt "L:recv-auth1"
  | L_recv_auth3 -> Format.pp_print_string fmt "L:recv-auth3"
  | L_rekey -> Format.pp_print_string fmt "L:rekey"
  | L_recv_req_close -> Format.pp_print_string fmt "L:recv-req-close!"
  | E_inject l -> Format.fprintf fmt "E:inject-%a" Event.pp_label l

let events_with trace label recipient =
  Event.Set.fold
    (fun e acc ->
      match e with
      | Event.Msg m when m.label = label && m.recipient = recipient ->
          m.content :: acc
      | Event.Msg _ | Event.Oops _ -> acc)
    trace []

let add_msg q ~label ~sender ~recipient ~content =
  {
    q with
    trace =
      Event.Set.add (Event.Msg { label; sender; recipient; content }) q.trace;
  }

(* Message contents (§2.2 formats). *)
let auth1_content n1 = FCrypt (Pa, cat [ FAgent A; FAgent L; FNonce n1 ])

let auth2_content n1 n2 epoch =
  FCrypt
    ( Pa,
      cat
        [ FAgent L; FAgent A; FNonce n1; FNonce n2; FKey ka; FKey (Kg epoch);
          FData epoch ] )

let auth3_content n2 = FCrypt (ka, cat [ FAgent A; FNonce n2 ])
let new_key_content epoch = FCrypt (ka, cat [ FKey (Kg epoch); FData epoch ])
let mem_removed_content epoch = FCrypt (Kg epoch, b_ident)
let denied_content = cat [ FAgent L; FAgent A ]
let req_close_content = cat [ FAgent A; FAgent L ]

let intruder_initial bounds =
  let base = [ FAgent A; FAgent L; FAgent Intruder; b_ident ] in
  let kgs = List.init bounds.insider_epochs (fun i -> FKey (Kg (i + 1))) in
  Field.Set.of_list (base @ kgs)

let intruder_knowledge bounds q =
  Closure.analz (Field.Set.union (intruder_initial bounds) (Event.contents q.trace))

let successors bounds q =
  let moves = ref [] in
  let add m s = moves := (m, s) :: !moves in

  (* A: request to open (once). *)
  (match q.mem with
  | M_not_connected ->
      add A_join
        (add_msg { q with mem = M_waiting_ack } ~label:Event.LReqOpen ~sender:A
           ~recipient:L ~content:(FAgent A))
  | _ -> ());

  (* A: on AckOpen -> start authentication. *)
  (match q.mem with
  | M_waiting_ack when q.next_nonce < bounds.max_nonces ->
      if events_with q.trace Event.LAckOpen A <> [] then begin
        let n1 = q.next_nonce in
        add A_recv_ack_open
          (add_msg
             { q with mem = M_waiting_auth2 n1; next_nonce = q.next_nonce + 1 }
             ~label:Event.LAuth1 ~sender:A ~recipient:L
             ~content:(auth1_content n1))
      end
  | _ -> ());

  (* A: on ConnectionDenied -> abort. Nothing about the message is
     authenticated. *)
  (match q.mem with
  | M_waiting_ack | M_waiting_auth2 _ ->
      if events_with q.trace Event.LConnDenied A <> [] then
        add A_recv_denied { q with mem = M_denied }
  | _ -> ());

  (* A: on Auth2 (matching N1) -> connected, acknowledge. *)
  (match q.mem with
  | M_waiting_auth2 n1 ->
      List.iter
        (fun content ->
          match content with
          | FCrypt
              ( Pa,
                FCat
                  [ FAgent L; FAgent A; FNonce n; FNonce n2; FKey k;
                    FKey (Kg e); FData e' ] )
            when n = n1 && k = ka && e = e' ->
              add A_recv_auth2
                (add_msg
                   { q with mem = M_connected { epoch = e; sees_b = true } }
                   ~label:Event.LAuth3 ~sender:A ~recipient:L
                   ~content:(auth3_content n2))
          | _ -> ())
        (events_with q.trace Event.LAuth2 A)
  | _ -> ());

  (* A: on NewKey — accepted with NO freshness evidence (the §2.3
     weakness): any NewKey ever sent under Ka switches the member to
     that epoch, including old ones. *)
  (match q.mem with
  | M_connected { epoch; sees_b } ->
      List.iter
        (fun content ->
          match content with
          | FCrypt (k, FCat [ FKey (Kg e); FData e' ])
            when k = ka && e = e' && e <> epoch ->
              add (A_recv_new_key e)
                { q with mem = M_connected { epoch = e; sees_b } }
          | _ -> ())
        (events_with q.trace Event.LNewKey A)
  | _ -> ());

  (* A: on MemRemoved under the CURRENT group key -> drop B from the
     view. Any holder of Kg can have produced it. *)
  (match q.mem with
  | M_connected { epoch; sees_b = true } ->
      let matches content = Field.equal content (mem_removed_content epoch) in
      if List.exists matches (events_with q.trace Event.LMemRemoved A) then
        add A_recv_mem_removed
          { q with mem = M_connected { epoch; sees_b = false } }
  | _ -> ());

  (* L: pre-auth. *)
  (match q.lead with
  | L_idle ->
      if events_with q.trace Event.LReqOpen L <> [] then
        add L_recv_req_open
          (add_msg { q with lead = L_waiting_auth1 } ~label:Event.LAckOpen
             ~sender:L ~recipient:A ~content:(FAgent L))
  | _ -> ());

  (* L: on Auth1 -> Auth2 with the current group key. *)
  (match q.lead with
  | L_waiting_auth1 when q.next_nonce < bounds.max_nonces ->
      List.iter
        (fun content ->
          match content with
          | FCrypt (Pa, FCat [ FAgent A; FAgent L; FNonce n1 ]) ->
              let n2 = q.next_nonce in
              add L_recv_auth1
                (add_msg
                   { q with lead = L_waiting_auth3 n2; next_nonce = q.next_nonce + 1 }
                   ~label:Event.LAuth2 ~sender:L ~recipient:A
                   ~content:(auth2_content n1 n2 q.lead_epoch))
          | _ -> ())
        (events_with q.trace Event.LAuth1 L)
  | _ -> ());

  (* L: on Auth3 -> session established. *)
  (match q.lead with
  | L_waiting_auth3 n2 ->
      let expected = auth3_content n2 in
      if
        List.exists (Field.equal expected) (events_with q.trace Event.LAuth3 L)
      then add L_recv_auth3 { q with lead = L_in_session }
  | _ -> ());

  (* L: rekey while in session. *)
  (match q.lead with
  | L_in_session when q.lead_epoch < bounds.max_epoch ->
      let e = q.lead_epoch + 1 in
      add L_rekey
        (add_msg { q with lead_epoch = e } ~label:Event.LNewKey ~sender:L
           ~recipient:A ~content:(new_key_content e))
  | _ -> ());

  (* L: on the PLAINTEXT close request -> tear down A's session. In
     this model the honest A never sends one, so any close is forged. *)
  (match q.lead with
  | L_in_session ->
      if
        List.exists
          (Field.equal req_close_content)
          (events_with q.trace Event.LReqClose L)
      then add L_recv_req_close { q with lead = L_idle }
  | _ -> ());

  (* Intruder: pattern-directed injections from Know(E). *)
  let know = intruder_knowledge bounds q in
  let inject ~label ~recipient content =
    if Closure.in_synth know content then begin
      let ev = Event.Msg { label; sender = Intruder; recipient; content } in
      if not (Event.Set.mem ev q.trace) then
        add (E_inject label) { q with trace = Event.Set.add ev q.trace }
    end
  in
  (match q.mem with
  | M_waiting_ack | M_waiting_auth2 _ ->
      inject ~label:Event.LConnDenied ~recipient:A denied_content
  | M_connected { epoch; sees_b = true } ->
      inject ~label:Event.LMemRemoved ~recipient:A (mem_removed_content epoch)
  | _ -> ());
  (match q.lead with
  | L_in_session -> inject ~label:Event.LReqClose ~recipient:L req_close_content
  | _ -> ());
  !moves

(* --- Exploration (self-contained BFS with parent tracking) ---

   Same compact layout as {!Explore}: states interned to dense ids in
   discovery order, edges as id triples — one canonical string per
   state instead of string-keyed tables and a string cons-list. *)

type result = {
  states : state array;
  index : (string, int) Hashtbl.t;
  parents : (int * move) option array;
  edges : (int * move * int) array;
}

let explore ?(bounds = default_bounds) () =
  let index = Hashtbl.create 1024 in
  let states = ref [] and n_states = ref 0 in
  let parents = ref [] in
  let edges = ref [] and n_edges = ref 0 in
  let queue = Queue.create () in
  let intern q parent =
    let id = !n_states in
    Hashtbl.add index (canon q) id;
    states := q :: !states;
    parents := parent :: !parents;
    incr n_states;
    Queue.add (id, q) queue;
    id
  in
  ignore (intern initial None);
  while not (Queue.is_empty queue) do
    let id, q = Queue.pop queue in
    List.iter
      (fun (move, q') ->
        let id' =
          match Hashtbl.find_opt index (canon q') with
          | Some id' -> id'
          | None -> intern q' (Some (id, move))
        in
        edges := (id, move, id') :: !edges;
        incr n_edges)
      (successors bounds q)
  done;
  let of_rev_list n l =
    match l with
    | [] -> [||]
    | hd :: _ ->
        let a = Array.make n hd in
        List.iteri (fun i x -> a.(n - 1 - i) <- x) l;
        a
  in
  {
    states = of_rev_list !n_states !states;
    index;
    parents = of_rev_list !n_states !parents;
    edges = of_rev_list !n_edges !edges;
  }

let state_count r = Array.length r.states

let path_to r q =
  match Hashtbl.find_opt r.index (canon q) with
  | None -> []
  | Some id ->
      let rec build id acc =
        match r.parents.(id) with
        | None -> acc
        | Some (parent, move) -> build parent ((move, r.states.(id)) :: acc)
      in
      build id []

let render_path path =
  List.map
    (fun (move, q) ->
      Format.asprintf "%a  =>  mem=%a lead=%a epoch=%d" pp_move move
        pp_member_state q.mem pp_leader_state q.lead q.lead_epoch)
    path

let find r p =
  let n = Array.length r.states in
  let rec go i =
    if i >= n then None
    else if p r.states.(i) then Some r.states.(i)
    else go (i + 1)
  in
  go 0

type finding = {
  weakness : string;
  description : string;
  violated : bool;
  trace : string list;
}

let reach_finding r ~weakness ~description p =
  match find r p with
  | Some q -> { weakness; description; violated = true; trace = render_path (path_to r q) }
  | None -> { weakness; description; violated = false; trace = [] }

(* First edge (in discovery order) whose endpoints satisfy [p]. *)
let find_edge r p =
  let n = Array.length r.edges in
  let rec go i =
    if i >= n then None
    else
      let ((src, move, dst) as e) = r.edges.(i) in
      if p r.states.(src) move r.states.(dst) then Some e else go (i + 1)
  in
  go 0

let edge_finding r ~weakness ~description p =
  match find_edge r p with
  | Some (src, move, dst) ->
      let q_src = r.states.(src) and q_dst = r.states.(dst) in
      {
        weakness;
        description;
        violated = true;
        trace = render_path (path_to r q_src @ [ (move, q_dst) ]);
      }
  | None -> { weakness; description; violated = false; trace = [] }

let findings ?(bounds = default_bounds) r =
  let w1 =
    reach_finding r ~weakness:"W1"
      ~description:"member denied although the leader never sent a denial (A1)"
      (fun q -> q.mem = M_denied)
  in
  let w2 =
    reach_finding r ~weakness:"W2"
      ~description:
        "member's view drops B although the leader never removed B (A2)"
      (fun q ->
        match q.mem with
        | M_connected { sees_b = false; _ } -> true
        | _ -> false)
  in
  (* W3 is an edge property: the epoch decreases along a step. *)
  let w3 =
    edge_finding r ~weakness:"W3"
      ~description:"member's group-key epoch regressed on a replay (A3)"
      (fun q_src _move q_dst ->
        match (q_src.mem, q_dst.mem) with
        | M_connected { epoch = e; _ }, M_connected { epoch = e'; _ } -> e' < e
        | _ -> false)
  in
  let w4 =
    edge_finding r ~weakness:"W4"
      ~description:
        "leader closed the session although the member never asked (A4)"
      (fun q_src move _q_dst ->
        move = L_recv_req_close && q_src.lead = L_in_session)
  in
  let pa =
    reach_finding r ~weakness:"Pa-secrecy"
      ~description:"intruder learns the long-term key P_a (must NOT happen)"
      (fun q -> Field.Set.mem (FKey Pa) (intruder_knowledge bounds q))
  in
  [ w1; w2; w3; w4; pa ]
