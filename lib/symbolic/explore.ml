type result = {
  states : (string, Model.state) Hashtbl.t;
  edges : (string * Model.move * string) list;
  parents : (string, string * Model.move) Hashtbl.t;
  truncated : bool;
}

let run ?(config = Model.default_config) ?(max_states = 200_000) () =
  let states = Hashtbl.create 4096 in
  let parents = Hashtbl.create 4096 in
  let edges = ref [] in
  let queue = Queue.create () in
  let truncated = ref false in
  let init = Model.initial in
  let init_key = Model.canon init in
  Hashtbl.replace states init_key init;
  Queue.add (init_key, init) queue;
  while not (Queue.is_empty queue) do
    let key, q = Queue.pop queue in
    List.iter
      (fun (move, q') ->
        let key' = Model.canon q' in
        edges := (key, move, key') :: !edges;
        if not (Hashtbl.mem states key') then
          if Hashtbl.length states >= max_states then truncated := true
          else begin
            Hashtbl.replace states key' q';
            Hashtbl.replace parents key' (key, move);
            Queue.add (key', q') queue
          end)
      (Model.successors config q)
  done;
  { states; edges = !edges; parents; truncated = !truncated }

let state_count r = Hashtbl.length r.states
let edge_count r = List.length r.edges
let iter_states r f = Hashtbl.iter (fun _ q -> f q) r.states

let iter_edges r f =
  List.iter
    (fun (src, move, dst) ->
      match (Hashtbl.find_opt r.states src, Hashtbl.find_opt r.states dst) with
      | Some q, Some q' -> f q move q'
      | _ -> ())
    r.edges

let find_state r p =
  let found = ref None in
  (try
     Hashtbl.iter
       (fun _ q ->
         if p q then begin
           found := Some q;
           raise Exit
         end)
       r.states
   with Exit -> ());
  !found

let path_to r q =
  let rec build key acc =
    match Hashtbl.find_opt r.parents key with
    | None -> acc
    | Some (parent_key, move) ->
        let state = Hashtbl.find r.states key in
        build parent_key ((move, state) :: acc)
  in
  build (Model.canon q) []

let pp_path fmt path =
  List.iter
    (fun (move, q) ->
      Format.fprintf fmt "  %a -> usr=%a lead=%a@." Model.pp_move move
        Model.pp_user_state q.Model.usr Model.pp_leader_state q.Model.lead)
    path
