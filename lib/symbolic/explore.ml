(* Exploration engine: level-synchronized BFS with interned state ids,
   a deduplicated compact edge store, an optional streaming mode that
   does not retain the state set, and optional multicore frontier
   expansion.

   Determinism: states are discovered in exactly the order a FIFO-queue
   BFS would discover them (a level-synchronized sweep in frontier
   order is the same order), and the merge phase that assigns ids and
   records edges is always sequential — so results are bit-for-bit
   identical for every [jobs] value. *)

(* Minimal growable array: the stdlib gains Dynarray only in 5.2. *)
module Vec = struct
  type 'a t = { mutable data : 'a array; mutable len : int }

  let create () = { data = [||]; len = 0 }

  let push v x =
    let cap = Array.length v.data in
    if v.len = cap then begin
      let data = Array.make (max 16 (2 * cap)) x in
      Array.blit v.data 0 data 0 v.len;
      v.data <- data
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let to_array v = Array.sub v.data 0 v.len
end

type result = {
  states : Model.state array;
  index : (string, int) Hashtbl.t;
  edges : (int * Model.move * int) array;
  parents : (int * Model.move) option array;
  truncated : bool;
  frontier_dropped : int;
}

type stream_stats = {
  stream_states : int;
  stream_edges : int;
  stream_truncated : bool;
  stream_dropped : int;
}

(* Parallel frontier expansion: compute successors (and their
   canonical keys — Marshal is the expensive part) for every frontier
   entry, into an index-aligned array so the caller sees them in
   frontier order no matter how the work was scheduled.

   The helper domains are spawned once per exploration and parked on a
   condition variable between BFS levels — spawning per level costs
   more than the levels themselves on this model's shallow frontiers.
   Each level is described by a fresh [round] record; a straggler from
   the previous level still holds the previous record, whose exhausted
   counter sends it straight back to sleep, so it can never touch the
   new level's arrays. Every [out] slot is written by exactly one
   domain, and the SC read of [completed] publishes those writes to
   the merge phase. *)
module Pool = struct
  type round = {
    frontier : (int * Model.state) array;
    out : (Model.move * Model.state * string) list array;
    next : int Atomic.t;
    completed : int Atomic.t;
  }

  type t = {
    config : Model.config;
    mutable current : round;
    mutable generation : int;
    mutable stop : bool;
    m : Mutex.t;
    wake : Condition.t;
    mutable domains : unit Domain.t list;
  }

  let steal config r =
    let n = Array.length r.frontier in
    let rec go () =
      let i = Atomic.fetch_and_add r.next 1 in
      if i < n then begin
        let _, q = r.frontier.(i) in
        r.out.(i) <-
          List.map
            (fun (move, q') -> (move, q', Model.canon q'))
            (Model.successors config q);
        Atomic.incr r.completed;
        go ()
      end
    in
    go ()

  let empty_round () =
    { frontier = [||]; out = [||]; next = Atomic.make 0;
      completed = Atomic.make 0 }

  let create ~config ~helpers =
    let t =
      { config; current = empty_round (); generation = 0; stop = false;
        m = Mutex.create (); wake = Condition.create (); domains = [] }
    in
    let worker () =
      let my_gen = ref 0 in
      let rec loop () =
        Mutex.lock t.m;
        while t.generation = !my_gen && not t.stop do
          Condition.wait t.wake t.m
        done;
        my_gen := t.generation;
        let r = t.current and stop = t.stop in
        Mutex.unlock t.m;
        if not stop then begin
          steal config r;
          loop ()
        end
      in
      loop ()
    in
    t.domains <- List.init helpers (fun _ -> Domain.spawn worker);
    t

  let run t frontier =
    let n = Array.length frontier in
    let r =
      { frontier; out = Array.make n []; next = Atomic.make 0;
        completed = Atomic.make 0 }
    in
    Mutex.lock t.m;
    t.current <- r;
    t.generation <- t.generation + 1;
    Condition.broadcast t.wake;
    Mutex.unlock t.m;
    steal t.config r;
    while Atomic.get r.completed < n do
      Domain.cpu_relax ()
    done;
    r.out

  let shutdown t =
    Mutex.lock t.m;
    t.stop <- true;
    Condition.broadcast t.wake;
    Mutex.unlock t.m;
    List.iter Domain.join t.domains
end

let expand ~config ~pool frontier =
  match pool with
  | Some pool -> Pool.run pool frontier
  | None ->
      let n = Array.length frontier in
      let out = Array.make n [] in
      for i = 0 to n - 1 do
        let _, q = frontier.(i) in
        out.(i) <-
          List.map
            (fun (move, q') -> (move, q', Model.canon q'))
            (Model.successors config q)
      done;
      out

(* The single BFS core behind [run] and [run_stream]. When [retain] is
   false only the intern table (canon -> id) is kept — the states,
   parents and edges are streamed through the callbacks and dropped.

   Truncation accounting: when the [max_states] cap is hit, the edge
   to the unstored destination is NOT recorded (the seed engine
   recorded it, making [edge_count] disagree with what [iter_edges]
   visits); instead each dropped successor occurrence is counted in
   [frontier_dropped], and [truncated] is derived from that count once
   at the end. Edges between two stored states are always recorded,
   including after the cap. *)
let bfs ~config ~max_states ~pool ~retain ~on_state ~on_edge =
  let index = Hashtbl.create 4096 in
  let states = Vec.create () in
  let parents = Vec.create () in
  let edges = Vec.create () in
  let edge_cnt = ref 0 in
  let dropped = ref 0 in
  let init = Model.initial in
  Hashtbl.add index (Model.canon init) 0;
  if retain then begin
    Vec.push states init;
    Vec.push parents None
  end;
  on_state init;
  let frontier = ref [| (0, init) |] in
  while Array.length !frontier > 0 do
    let succs = expand ~config ~pool !frontier in
    let next = Vec.create () in
    Array.iteri
      (fun i (src_id, src_q) ->
        (* A source is expanded exactly once, so per-source dedup of
           (move, dst) is global dedup — no O(E) edge-seen table. The
           successor lists are short (a handful of moves), so a linear
           scan beats hashing the moves. *)
        let seen = ref [] in
        List.iter
          (fun (move, q', key') ->
            let dst_id =
              match Hashtbl.find_opt index key' with
              | Some id -> Some id
              | None ->
                  if Hashtbl.length index >= max_states then begin
                    incr dropped;
                    None
                  end
                  else begin
                    let id = Hashtbl.length index in
                    Hashtbl.add index key' id;
                    if retain then begin
                      Vec.push states q';
                      Vec.push parents (Some (src_id, move))
                    end;
                    on_state q';
                    Vec.push next (id, q');
                    Some id
                  end
            in
            match dst_id with
            | None -> ()
            | Some dst ->
                if
                  not
                    (List.exists
                       (fun (d, m) -> d = dst && m = move)
                       !seen)
                then begin
                  seen := (dst, move) :: !seen;
                  incr edge_cnt;
                  if retain then Vec.push edges (src_id, move, dst);
                  on_edge src_q move q'
                end)
          succs.(i))
      !frontier;
    frontier := Vec.to_array next
  done;
  ( Vec.to_array states,
    index,
    Vec.to_array edges,
    Vec.to_array parents,
    !dropped,
    !edge_cnt )

let no_state (_ : Model.state) = ()
let no_edge (_ : Model.state) (_ : Model.move) (_ : Model.state) = ()

(* One pool per exploration, torn down even if a callback raises. *)
let with_pool ~config ~jobs f =
  if jobs <= 1 then f None
  else begin
    let pool = Pool.create ~config ~helpers:(jobs - 1) in
    Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () ->
        f (Some pool))
  end

let run ?(config = Model.default_config) ?(max_states = 200_000) ?(jobs = 1) ()
    =
  let states, index, edges, parents, dropped, _ =
    with_pool ~config ~jobs (fun pool ->
        bfs ~config ~max_states ~pool ~retain:true ~on_state:no_state
          ~on_edge:no_edge)
  in
  { states; index; edges; parents; truncated = dropped > 0;
    frontier_dropped = dropped }

let run_stream ?(config = Model.default_config) ?(max_states = 200_000)
    ?(jobs = 1) ?(on_state = no_state) ?(on_edge = no_edge) () =
  let _, index, _, _, dropped, edge_cnt =
    with_pool ~config ~jobs (fun pool ->
        bfs ~config ~max_states ~pool ~retain:false ~on_state ~on_edge)
  in
  {
    stream_states = Hashtbl.length index;
    stream_edges = edge_cnt;
    stream_truncated = dropped > 0;
    stream_dropped = dropped;
  }

let state_count r = Array.length r.states
let edge_count r = Array.length r.edges
let iter_states r f = Array.iter f r.states

let iter_edges r f =
  Array.iter (fun (src, move, dst) -> f r.states.(src) move r.states.(dst))
    r.edges

let find_state r p =
  let n = Array.length r.states in
  let rec go i =
    if i >= n then None
    else if p r.states.(i) then Some r.states.(i)
    else go (i + 1)
  in
  go 0

let path_to r q =
  match Hashtbl.find_opt r.index (Model.canon q) with
  | None -> []
  | Some id ->
      let rec build id acc =
        match r.parents.(id) with
        | None -> acc
        | Some (parent, move) -> build parent ((move, r.states.(id)) :: acc)
      in
      build id []

let pp_path fmt path =
  List.iter
    (fun (move, q) ->
      Format.fprintf fmt "  %a -> usr=%a lead=%a@." Model.pp_move move
        Model.pp_user_state q.Model.usr Model.pp_leader_state q.Model.lead)
    path

(* The seed engine, kept verbatim for differential benchmarking
   (bench: model-checker/explore-baseline) and as an independent
   oracle for state counts in the tests. Its known truncation quirk —
   edges recorded to destinations that were never stored — is kept
   too, since it only manifests on truncated runs. *)
module Baseline = struct
  type t = {
    states : (string, Model.state) Hashtbl.t;
    edges : (string * Model.move * string) list;
    parents : (string, string * Model.move) Hashtbl.t;
    truncated : bool;
  }

  let run ?(config = Model.default_config) ?(max_states = 200_000) () =
    let states = Hashtbl.create 4096 in
    let parents = Hashtbl.create 4096 in
    let edges = ref [] in
    let queue = Queue.create () in
    let truncated = ref false in
    let init = Model.initial in
    let init_key = Model.canon init in
    Hashtbl.replace states init_key init;
    Queue.add (init_key, init) queue;
    while not (Queue.is_empty queue) do
      let key, q = Queue.pop queue in
      List.iter
        (fun (move, q') ->
          let key' = Model.canon q' in
          edges := (key, move, key') :: !edges;
          if not (Hashtbl.mem states key') then
            if Hashtbl.length states >= max_states then truncated := true
            else begin
              Hashtbl.replace states key' q';
              Hashtbl.replace parents key' (key, move);
              Queue.add (key', q') queue
            end)
        (Model.successors config q)
    done;
    { states; edges = !edges; parents; truncated = !truncated }

  let state_count t = Hashtbl.length t.states
  let edge_count t = List.length t.edges
end
