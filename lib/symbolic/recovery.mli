(** A bounded model of the {e recovery plane} — journal replication,
    warm promotion, and term-based demotion between the old primary
    [L], its successor [S] and one member [A], against a Dolev-Yao
    intruder [E] who owns the wire.

    Where {!Model} verifies the member-facing protocol (§4–§5 of the
    paper), this model checks the obligations the
    demotion/reconciliation design adds on top of it:

    - {b no resurrection}: once [A]'s session is closed durably, no
      combination of replayed or fabricated journal, replica or
      demotion frames ever puts the {e live} source (the manager
      sourcing at the highest minted term) back in session with [A] —
      a superseded zombie's lingering belief is split-brain residue
      that demotion clears at the heal, not a resurrection;
    - {b no epoch regression}: [A]'s group-key epoch never decreases
      along any transition — in particular not when a successor
      promotes from a replica prefix that predates the last
      [Epoch_bump] (the vault floor plus the member's own staleness
      guard close that hole);
    - {b no forged/replayed demotion}: every edge on which a sourcing
      manager drops to a backup is justified by a frame sealed under
      [K_r] that is bound to the victim's {e current} term and carries
      a strictly higher term that was {e genuinely minted} by an
      honest promotion before that edge. [E] can synthesize
      perfectly-bound frames under every key except [K_r], and can
      replay every authentic frame ever recorded — none of it demotes
      anyone.

    Modelling choices (stated in the implementation header too): [K_r]
    is never oopsed (managers are inside the paper's trust boundary);
    a genuine source's close is durable at the recovery plane
    atomically (an asynchronously lost close is a fail-stop durability
    loss, not an intruder capability — the model verifies no intruder
    action loses one); a superseded zombie's closes and bumps land in
    the divergent suffix that demotion discards and never touch [A]'s
    live session.

    Obligations are returned as {!Invariants.report} values so the
    CLI's [verify] command prints and gates on them uniformly; a
    fourth report checks {e non-vacuity} (forgeries and replays were
    actually fired and rejected, and a genuine heal-path demotion is
    reachable). *)

type bounds = { max_epoch : int; max_minted : int }

val default_bounds : bounds
(** 3 epochs, 3 mintable terms — a few thousand states, explored in
    well under a second. *)

type state
type move
type result

val explore : ?bounds:bounds -> unit -> result
(** Exhaustive BFS of the bounded instance. *)

val state_count : result -> int
val edge_count : result -> int

val reports : result -> Invariants.report list
(** The three obligations plus the non-vacuity check, in that order.
    Violations carry pretty-printed counterexample traces. *)

val all : ?bounds:bounds -> unit -> Invariants.report list
(** [explore] then [reports]. *)
