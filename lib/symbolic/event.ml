type label =
  | AuthInitReq
  | AuthKeyDist
  | AuthAckKey
  | AdminMsg
  | Ack
  | ReqClose
  | LReqOpen
  | LAckOpen
  | LConnDenied
  | LAuth1
  | LAuth2
  | LAuth3
  | LNewKey
  | LMemRemoved
  | LReqClose

type t =
  | Msg of {
      label : label;
      sender : Field.agent;
      recipient : Field.agent;
      content : Field.t;
    }
  | Oops of Field.t

let compare = Stdlib.compare
let equal a b = compare a b = 0

let pp_label fmt l =
  Format.pp_print_string fmt
    (match l with
    | AuthInitReq -> "AuthInitReq"
    | AuthKeyDist -> "AuthKeyDist"
    | AuthAckKey -> "AuthAckKey"
    | AdminMsg -> "AdminMsg"
    | Ack -> "Ack"
    | ReqClose -> "ReqClose"
    | LReqOpen -> "ReqOpen"
    | LAckOpen -> "AckOpen"
    | LConnDenied -> "ConnectionDenied"
    | LAuth1 -> "LegacyAuth1"
    | LAuth2 -> "LegacyAuth2"
    | LAuth3 -> "LegacyAuth3"
    | LNewKey -> "NewKey"
    | LMemRemoved -> "MemRemoved"
    | LReqClose -> "LegacyReqClose")

let pp fmt = function
  | Msg { label; sender; recipient; content } ->
      Format.fprintf fmt "%a %a->%a: %a" pp_label label Field.pp_agent sender
        Field.pp_agent recipient Field.pp content
  | Oops f -> Format.fprintf fmt "Oops(%a)" Field.pp f

let content = function Msg { content; _ } -> content | Oops f -> f

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

let contents s =
  Set.fold (fun e acc -> Field.Set.add (content e) acc) s Field.Set.empty
