(** Events of the symbolic model: protocol messages and Oops events.

    A message carries a label, an {e apparent} sender, an intended
    recipient and a content field; none of the header is authenticated.
    [Oops f] models the compromise of [f] (typically an expired session
    key): its content becomes part of the public trace, hence of every
    agent's knowledge — exactly the paper's treatment (§4, "Oops(X) is
    treated like an ordinary message whose content is the field X"). *)

type label =
  (* Improved protocol (§3.2). *)
  | AuthInitReq
  | AuthKeyDist
  | AuthAckKey
  | AdminMsg
  | Ack
  | ReqClose
  (* Legacy protocol (§2.2), used by {!Legacy_model}. *)
  | LReqOpen
  | LAckOpen
  | LConnDenied
  | LAuth1
  | LAuth2
  | LAuth3
  | LNewKey
  | LMemRemoved
  | LReqClose

type t =
  | Msg of {
      label : label;
      sender : Field.agent;
      recipient : Field.agent;
      content : Field.t;
    }
  | Oops of Field.t

val compare : t -> t -> int
val equal : t -> t -> bool
val pp_label : Format.formatter -> label -> unit
val pp : Format.formatter -> t -> unit

val content : t -> Field.t
(** The content field ([trace] with underline in the paper). *)

module Set : Stdlib.Set.S with type elt = t

val contents : Set.t -> Field.Set.t
(** All contents of a trace — the paper's [trace(q)] underlined. *)
