(** The behavioural guarantees of §5.4, read off the explored state
    space.

    These are the paper's requirements from §3.1, derived in §5.4 from
    the verification diagram:
    - {b Proper distribution of group-management messages}: messages
      accepted by [A] were sent by [L], in order, without duplication —
      [rcv_A] is a prefix of [snd_A] in every reachable state.
    - {b Proper user authentication}: the [n]-th member acceptance by
      [L] is preceded by the [n]-th join request from [A] — the
      acceptance count never exceeds the request count.
    - {b Agreement}: whenever both [A] and [L] are Connected they hold
      the same session key and the same latest nonce.
    - {b Possession}: whenever [A] holds a session key (is connected),
      that key is in use at the leader ([InUse]). *)

val prefix_property : Explore.result -> Invariants.report
val proper_authentication : Explore.result -> Invariants.report
val agreement : Explore.result -> Invariants.report
val possession : Explore.result -> Invariants.report
val no_duplicates : Explore.result -> Invariants.report
(** [rcv_A] never contains the same admin payload twice (distinct
    atoms by construction at the leader, so duplication would mean
    replay acceptance). *)

val all : Explore.result -> Invariants.report list

val stream : unit -> Invariants.checker
(** Streaming form of {!all}, for {!Explore.run_stream}. All five
    checks are per-state. *)
