(** Bounded model of the store-and-forward delivery plane.

    One leader, one member who goes offline once, a bounded run of
    queued rekey notices, one-or-more group rekeys, and a Dolev-Yao
    intruder who records every drained frame and can replay any of
    them at any later point. The admin channel's nonce chain is
    deliberately erased — the member's cumulative delivery floor is
    the {e only} duplicate guard — so the model faces a strictly
    stronger adversary than the implementation.

    Checked obligations (see {!reports}):
    - {b no delivery applied twice} — the A3-style replay obligation
      re-stated at the delivery layer: no combination of legitimate
      re-drains (at-least-once redelivery) and intruder replays makes
      the member apply one queued seq twice;
    - {b delivery never regresses member epoch} — neither fresh,
      re-sealed, nor stale-flagged drains ever move the member's
      installed group-key epoch backward;
    - {b stale deliveries apply nothing} — the deliver-stale policy
      arm is observability only;
    - {b delivery surface exercised} — non-vacuity: replays actually
      fired and were deduped, an aged entry actually re-sealed, and
      both beyond-window policy arms actually ran.

    Explored exhaustively (BFS over canonicalised states) within
    {!default_bounds}; [make verify] gates CI on every report
    holding. *)

type bounds = {
  max_seq : int;  (** deliveries the leader may queue *)
  max_epoch : int;  (** highest group epoch (initial epoch is 1) *)
  width : int;  (** epoch-window width of the re-seal policy *)
}

val default_bounds : bounds
(** [{ max_seq = 2; max_epoch = 3; width = 1 }] — two queued
    deliveries, two rekeys, window of one epoch: enough to age an
    entry past the window and race a replay against a re-seal. *)

type state
(** Joint leader/member/intruder state: group epoch, member
    online/epoch/floor, pending queue, durable ack floor, the set of
    frames the intruder has recorded, and the applied-seq log. *)

type move
(** A protocol step (offline, online, queue, rekey, drain under each
    policy arm, cumulative ack) or the intruder delivering a recorded
    frame. *)

val pp_move : Format.formatter -> move -> unit

type result
(** The explored transition system. *)

val explore : ?bounds:bounds -> unit -> result
(** Exhaustive breadth-first exploration from the initial state. *)

val state_count : result -> int
val edge_count : result -> int

val reports : result -> Invariants.report list
(** The four obligations above, with counterexample traces (move
    sequences from the initial state) attached to any violation. *)

val all : ?bounds:bounds -> unit -> Invariants.report list
(** [all ()] = [reports (explore ())]. *)
