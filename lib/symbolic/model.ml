open Field

type mutation = No_admin_freshness | Leak_pa | No_close_auth

type config = {
  max_nonces : int;
  max_keys : int;
  max_admin : int;
  max_joins : int;
  max_data : int;
  intruder_fresh : int;
  mutations : mutation list;
}

let default_config =
  {
    max_nonces = 10;
    max_keys = 2;
    max_admin = 2;
    max_joins = 2;
    max_data = 4;
    intruder_fresh = 1;
    mutations = [];
  }

let intruder_atom_base = 1000

type user_state =
  | U_not_connected
  | U_waiting_for_key of int
  | U_connected of int * int

type leader_state =
  | L_not_connected
  | L_waiting_for_key_ack of int * int
  | L_connected of int * int
  | L_waiting_for_ack of int * int

type state = {
  usr : user_state;
  lead : leader_state;
  trace : Event.Set.t;
  snd : int list;
  rcv : int list;
  joins : int;
  accepts : int;
  next_nonce : int;
  next_key : int;
  next_data : int;
  i_nonces : int;
  i_keys : int;
}

type move =
  | A_join
  | A_recv_keydist
  | A_recv_admin
  | A_leave
  | L_recv_init
  | L_recv_keyack
  | L_send_admin
  | L_recv_ack
  | L_recv_close
  | E_inject of Event.label

let pp_move fmt = function
  | A_join -> Format.pp_print_string fmt "A:join"
  | A_recv_keydist -> Format.pp_print_string fmt "A:recv-keydist"
  | A_recv_admin -> Format.pp_print_string fmt "A:recv-admin"
  | A_leave -> Format.pp_print_string fmt "A:leave"
  | L_recv_init -> Format.pp_print_string fmt "L:recv-init"
  | L_recv_keyack -> Format.pp_print_string fmt "L:recv-keyack"
  | L_send_admin -> Format.pp_print_string fmt "L:send-admin"
  | L_recv_ack -> Format.pp_print_string fmt "L:recv-ack"
  | L_recv_close -> Format.pp_print_string fmt "L:recv-close"
  | E_inject l -> Format.fprintf fmt "E:inject-%a" Event.pp_label l

let pp_user_state fmt = function
  | U_not_connected -> Format.pp_print_string fmt "NotConnected"
  | U_waiting_for_key n -> Format.fprintf fmt "WaitingForKey(N%d)" n
  | U_connected (n, k) -> Format.fprintf fmt "Connected(N%d,Ka%d)" n k

let pp_leader_state fmt = function
  | L_not_connected -> Format.pp_print_string fmt "NotConnected"
  | L_waiting_for_key_ack (n, k) ->
      Format.fprintf fmt "WaitingForKeyAck(N%d,Ka%d)" n k
  | L_connected (n, k) -> Format.fprintf fmt "Connected(N%d,Ka%d)" n k
  | L_waiting_for_ack (n, k) -> Format.fprintf fmt "WaitingForAck(N%d,Ka%d)" n k

let initial =
  {
    usr = U_not_connected;
    lead = L_not_connected;
    trace = Event.Set.empty;
    snd = [];
    rcv = [];
    joins = 0;
    accepts = 0;
    next_nonce = 0;
    next_key = 0;
    next_data = 0;
    i_nonces = 0;
    i_keys = 0;
  }

let canon q =
  Marshal.to_string
    ( q.usr,
      q.lead,
      Event.Set.elements q.trace,
      q.snd,
      q.rcv,
      q.joins,
      q.accepts,
      (q.next_nonce, q.next_key, q.next_data, q.i_nonces, q.i_keys) )
    []

let intruder_initial ?(config = default_config) q =
  let base =
    if List.mem Leak_pa config.mutations then
      [ FAgent A; FAgent L; FAgent Intruder; FKey Pa ]
    else [ FAgent A; FAgent L; FAgent Intruder ]
  in
  let atoms = ref (Field.Set.of_list base) in
  for i = 0 to q.i_nonces - 1 do
    atoms := Field.Set.add (FNonce (intruder_atom_base + i)) !atoms
  done;
  for i = 0 to q.i_keys - 1 do
    atoms := Field.Set.add (FKey (Ka (intruder_atom_base + i))) !atoms
  done;
  !atoms

let intruder_knowledge ?config q =
  Closure.analz
    (Field.Set.union (intruder_initial ?config q) (Event.contents q.trace))

let trace_parts q = Closure.parts (Event.contents q.trace)

let in_use q k =
  match q.lead with
  | L_waiting_for_key_ack (_, k') | L_connected (_, k') | L_waiting_for_ack (_, k')
    ->
      k = k'
  | L_not_connected -> false

(* Contents of trace events with a given label and recipient; the
   apparent sender is deliberately ignored (it is unauthenticated). *)
let events_with trace label recipient =
  Event.Set.fold
    (fun e acc ->
      match e with
      | Event.Msg m when m.label = label && m.recipient = recipient ->
          m.content :: acc
      | Event.Msg _ | Event.Oops _ -> acc)
    trace []

let add_msg q ~label ~sender ~recipient ~content =
  { q with trace = Event.Set.add (Event.Msg { label; sender; recipient; content }) q.trace }

let add_oops q f = { q with trace = Event.Set.add (Event.Oops f) q.trace }

(* --- Message content builders (the §3.2 message formats) --- *)

let auth_init_content n1 = FCrypt (Pa, cat [ FAgent A; FAgent L; FNonce n1 ])

let key_dist_content n1 n2 k =
  FCrypt (Pa, cat [ FAgent L; FAgent A; FNonce n1; FNonce n2; FKey (Ka k) ])

(* §5.3 writes the key acknowledgment as {A, L, N, N'_a}_K — the same
   shape as the admin Ack; the key ack is in effect the session's
   zeroth acknowledgment. *)
let key_ack_content k n2 n3 =
  FCrypt (Ka k, cat [ FAgent A; FAgent L; FNonce n2; FNonce n3 ])

let admin_content k na nl d =
  FCrypt (Ka k, cat [ FAgent L; FAgent A; FNonce na; FNonce nl; FData d ])

let ack_content k nl n' = FCrypt (Ka k, cat [ FAgent A; FAgent L; FNonce nl; FNonce n' ])

let close_content ?(config = default_config) k =
  if List.mem No_close_auth config.mutations then cat [ FAgent A; FAgent L ]
  else FCrypt (Ka k, cat [ FAgent A; FAgent L ])

(* --- Pattern matchers for honest receive transitions --- *)

let match_key_dist n1 = function
  | FCrypt (Pa, FCat [ FAgent L; FAgent A; FNonce n; FNonce n2; FKey (Ka k) ])
    when n = n1 ->
      Some (n2, k)
  | _ -> None

let match_admin ?(config = default_config) ka na = function
  | FCrypt (Ka k, FCat [ FAgent L; FAgent A; FNonce n; FNonce nl; FData d ])
    when k = ka
         && (n = na || List.mem No_admin_freshness config.mutations) ->
      Some (nl, d)
  | _ -> None

let match_auth_init = function
  | FCrypt (Pa, FCat [ FAgent A; FAgent L; FNonce n1 ]) -> Some n1
  | _ -> None

let match_key_ack ka nl = function
  | FCrypt (Ka k, FCat [ FAgent A; FAgent L; FNonce n; FNonce n3 ])
    when k = ka && n = nl ->
      Some n3
  | _ -> None

let match_ack ka nl = function
  | FCrypt (Ka k, FCat [ FAgent A; FAgent L; FNonce n; FNonce n' ])
    when k = ka && n = nl ->
      Some n'
  | _ -> None

let match_close ?(config = default_config) ka content =
  if List.mem No_close_auth config.mutations then
    match content with FCat [ FAgent A; FAgent L ] -> Some () | _ -> None
  else
    match content with
    | FCrypt (Ka k, FCat [ FAgent A; FAgent L ]) when k = ka -> Some ()
    | _ -> None

(* --- Transition relation --- *)

let successors cfg q =
  let moves = ref [] in
  let add m s = moves := (m, s) :: !moves in

  (* A: join. *)
  (match q.usr with
  | U_not_connected when q.joins < cfg.max_joins && q.next_nonce < cfg.max_nonces
    ->
      let n1 = q.next_nonce in
      let q' =
        add_msg
          {
            q with
            usr = U_waiting_for_key n1;
            joins = q.joins + 1;
            next_nonce = q.next_nonce + 1;
          }
          ~label:Event.AuthInitReq ~sender:A ~recipient:L
          ~content:(auth_init_content n1)
      in
      add A_join q'
  | U_not_connected | U_waiting_for_key _ | U_connected _ -> ());

  (* A: receive AuthKeyDist. *)
  (match q.usr with
  | U_waiting_for_key n1 when q.next_nonce < cfg.max_nonces ->
      List.iter
        (fun content ->
          match match_key_dist n1 content with
          | Some (n2, k) ->
              let n3 = q.next_nonce in
              let q' =
                add_msg
                  {
                    q with
                    usr = U_connected (n3, k);
                    next_nonce = q.next_nonce + 1;
                  }
                  ~label:Event.AuthAckKey ~sender:A ~recipient:L
                  ~content:(key_ack_content k n2 n3)
              in
              add A_recv_keydist q'
          | None -> ())
        (events_with q.trace Event.AuthKeyDist A)
  | U_not_connected | U_waiting_for_key _ | U_connected _ -> ());

  (* A: receive AdminMsg. *)
  (match q.usr with
  | U_connected (na, ka) when q.next_nonce < cfg.max_nonces ->
      List.iter
        (fun content ->
          match match_admin ~config:cfg ka na content with
          | Some (nl, d) ->
              let n'' = q.next_nonce in
              let q' =
                add_msg
                  {
                    q with
                    usr = U_connected (n'', ka);
                    rcv = q.rcv @ [ d ];
                    next_nonce = q.next_nonce + 1;
                  }
                  ~label:Event.Ack ~sender:A ~recipient:L
                  ~content:(ack_content ka nl n'')
              in
              add A_recv_admin q'
          | None -> ())
        (events_with q.trace Event.AdminMsg A)
  | U_not_connected | U_waiting_for_key _ | U_connected _ -> ());

  (* A: leave. *)
  (match q.usr with
  | U_connected (_, ka) ->
      let q' =
        add_msg
          { q with usr = U_not_connected; rcv = [] }
          ~label:Event.ReqClose ~sender:A ~recipient:L
          ~content:(close_content ~config:cfg ka)
      in
      add A_leave q'
  | U_not_connected | U_waiting_for_key _ -> ());

  (* L: receive AuthInitReq (from NotConnected, per Figure 3). *)
  (match q.lead with
  | L_not_connected
    when q.next_key < cfg.max_keys && q.next_nonce < cfg.max_nonces ->
      List.iter
        (fun content ->
          match match_auth_init content with
          | Some n1 ->
              let ka = q.next_key and n2 = q.next_nonce in
              let q' =
                add_msg
                  {
                    q with
                    lead = L_waiting_for_key_ack (n2, ka);
                    next_key = q.next_key + 1;
                    next_nonce = q.next_nonce + 1;
                  }
                  ~label:Event.AuthKeyDist ~sender:L ~recipient:A
                  ~content:(key_dist_content n1 n2 ka)
              in
              add L_recv_init q'
          | None -> ())
        (events_with q.trace Event.AuthInitReq L)
  | L_not_connected | L_waiting_for_key_ack _ | L_connected _
  | L_waiting_for_ack _ ->
      ());

  (* L: receive AuthAckKey. *)
  (match q.lead with
  | L_waiting_for_key_ack (nl, ka) ->
      List.iter
        (fun content ->
          match match_key_ack ka nl content with
          | Some n3 ->
              add L_recv_keyack
                { q with lead = L_connected (n3, ka); accepts = q.accepts + 1 }
          | None -> ())
        (events_with q.trace Event.AuthAckKey L)
  | L_not_connected | L_connected _ | L_waiting_for_ack _ -> ());

  (* L: send an admin message. *)
  (match q.lead with
  | L_connected (na, ka)
    when List.length q.snd < cfg.max_admin
         && q.next_data < cfg.max_data
         && q.next_nonce < cfg.max_nonces ->
      let nl = q.next_nonce and d = q.next_data in
      let q' =
        add_msg
          {
            q with
            lead = L_waiting_for_ack (nl, ka);
            snd = q.snd @ [ d ];
            next_nonce = q.next_nonce + 1;
            next_data = q.next_data + 1;
          }
          ~label:Event.AdminMsg ~sender:L ~recipient:A
          ~content:(admin_content ka na nl d)
      in
      add L_send_admin q'
  | L_not_connected | L_waiting_for_key_ack _ | L_connected _
  | L_waiting_for_ack _ ->
      ());

  (* L: receive Ack. *)
  (match q.lead with
  | L_waiting_for_ack (nl, ka) ->
      List.iter
        (fun content ->
          match match_ack ka nl content with
          | Some n' -> add L_recv_ack { q with lead = L_connected (n', ka) }
          | None -> ())
        (events_with q.trace Event.Ack L)
  | L_not_connected | L_waiting_for_key_ack _ | L_connected _ -> ());

  (* L: receive ReqClose (from any in-session state) + Oops(Ka). *)
  (match q.lead with
  | L_waiting_for_key_ack (_, ka) | L_connected (_, ka) | L_waiting_for_ack (_, ka)
    ->
      let closes = events_with q.trace Event.ReqClose L in
      if List.exists (fun c -> match_close ~config:cfg ka c <> None) closes then
        add L_recv_close
          (add_oops { q with lead = L_not_connected; snd = [] } (FKey (Ka ka)))
  | L_not_connected -> ());

  (* Intruder: pattern-directed injections. Build every content some
     honest automaton would accept right now, keep those in
     Gen(E, q) = Synth(Know(E,q) ∪ fresh intruder atoms), and inject
     the ones not already in the trace. *)
  let know = intruder_knowledge ~config:cfg q in
  let fresh_nonce =
    if q.i_nonces < cfg.intruder_fresh then Some (intruder_atom_base + q.i_nonces)
    else None
  in
  let know_plus =
    match fresh_nonce with
    | Some n -> Field.Set.add (FNonce n) know
    | None -> know
  in
  let known_nonces =
    Field.Set.fold
      (fun f acc -> match f with FNonce n -> n :: acc | _ -> acc)
      know_plus []
  in
  let inject ~label ~recipient content =
    if Closure.in_synth know_plus content then begin
      let ev =
        Event.Msg { label; sender = Intruder; recipient; content }
      in
      if not (Event.Set.mem ev q.trace) then begin
        let uses_fresh =
          match fresh_nonce with
          | Some n -> Field.Set.mem (FNonce n) (Closure.parts_of_field content)
          | None -> false
        in
        let q' = { q with trace = Event.Set.add ev q.trace } in
        let q' = if uses_fresh then { q' with i_nonces = q'.i_nonces + 1 } else q' in
        add (E_inject label) q'
      end
    end
  in
  (* Toward A. *)
  (match q.usr with
  | U_waiting_for_key n1 ->
      (* AuthKeyDist candidates: the intruder would need Pa, so only a
         full replay could work — enumerate known crypt fields that
         match. *)
      Field.Set.iter
        (fun f ->
          match match_key_dist n1 f with
          | Some _ -> inject ~label:Event.AuthKeyDist ~recipient:A f
          | None -> ())
        know_plus;
      (* Constructive attempts with every known nonce/key (these pass
         in_synth only if Pa leaked — which the invariant says never
         happens; the attempt documents the check). *)
      List.iter
        (fun n2 ->
          for k = 0 to q.next_key - 1 do
            inject ~label:Event.AuthKeyDist ~recipient:A (key_dist_content n1 n2 k)
          done)
        known_nonces
  | U_connected (na, ka) ->
      List.iter
        (fun nl ->
          for d = 0 to cfg.max_data - 1 do
            inject ~label:Event.AdminMsg ~recipient:A (admin_content ka na nl d)
          done)
        known_nonces;
      Field.Set.iter
        (fun f ->
          match match_admin ~config:cfg ka na f with
          | Some _ -> inject ~label:Event.AdminMsg ~recipient:A f
          | None -> ())
        know_plus
  | U_not_connected -> ());
  (* Toward L. *)
  (match q.lead with
  | L_not_connected ->
      List.iter
        (fun n1 -> inject ~label:Event.AuthInitReq ~recipient:L (auth_init_content n1))
        known_nonces;
      Field.Set.iter
        (fun f ->
          match match_auth_init f with
          | Some _ -> inject ~label:Event.AuthInitReq ~recipient:L f
          | None -> ())
        know_plus
  | L_waiting_for_key_ack (nl, ka) ->
      List.iter
        (fun n3 -> inject ~label:Event.AuthAckKey ~recipient:L (key_ack_content ka nl n3))
        known_nonces;
      inject ~label:Event.ReqClose ~recipient:L (close_content ~config:cfg ka)
  | L_connected (_, ka) -> inject ~label:Event.ReqClose ~recipient:L (close_content ~config:cfg ka)
  | L_waiting_for_ack (nl, ka) ->
      List.iter
        (fun n' -> inject ~label:Event.Ack ~recipient:L (ack_content ka nl n'))
        known_nonces;
      inject ~label:Event.ReqClose ~recipient:L (close_content ~config:cfg ka));
  !moves
