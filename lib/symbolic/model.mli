(** The global state-transition system of §4: honest user [A]
    (Figure 2), honest leader [L] (Figure 3, the component facing
    [A]), and a Dolev-Yao intruder standing for every other agent.

    {2 Faithfulness}

    - Messages are never consumed: the trace only grows, and honest
      receive transitions are enabled by the {e existence} of a
      matching message — Paulson's inductive model, in which replay is
      the default and freshness must be proven.
    - The intruder sends anything in [Gen(E, q) = Synth(Know(E,q) ∪
      FreshFields(q))]; [Know(E,q) = Analz(I(E) ∪ trace(q))].
    - [Oops(K_a)] fires when the leader closes a session: the expired
      session key becomes public (§4.1).

    {2 Finitization (documented deviations)}

    - Nonces, session keys and admin payload atoms come from bounded
      pools; joins and per-session admin messages are bounded by
      {!config}. Exploration is exhaustive within these bounds.
    - Fresh honest atoms are allocated least-unused — sound by
      symmetry, because a fresh atom by definition occurs nowhere in
      [Parts(trace)] and unused atoms are interchangeable.
    - The intruder owns a disjoint pool of fresh atoms (indices
      offset by {!intruder_atom_base}), so its allocations cannot
      collide with honest ones — again the paper's semantics, where
      fresh means globally unused.
    - Intruder injections are {e pattern-directed}: only messages some
      honest automaton accepts in the current state are injected.
      Messages that match no acceptor leave every honest state
      unchanged and add only intruder-synthesizable fields to the
      trace, so they are stutter steps; and because session keys are
      never reused, a message unacceptable now is unacceptable
      forever. The diagram checker separately verifies, semantically
      via {!Closure.in_synth}, that the intruder cannot synthesize any
      field violating a box predicate — the paper's "other agents
      leave [Q_i] invariant" obligation. *)

type mutation =
  | No_admin_freshness
      (** [A] accepts any nonce in an [AdminMsg] — the legacy §2.2
          behaviour. Replays and duplicates get through; the §5.4
          checkers must catch it. *)
  | Leak_pa
      (** [P_a] is in the intruder's initial knowledge — a compromised
          long-term key. Authentication must break. *)
  | No_close_auth
      (** [ReqClose] is unauthenticated plaintext, as in §2.2 — anyone
          can close [A]'s session, triggering a premature Oops. *)

type config = {
  max_nonces : int;  (** Honest nonce pool size. *)
  max_keys : int;  (** Honest session-key pool size. *)
  max_admin : int;  (** Max admin messages per session. *)
  max_joins : int;  (** Max join attempts by [A]. *)
  max_data : int;  (** Distinct admin payload atoms. *)
  intruder_fresh : int;  (** Intruder's fresh-atom budget. *)
  mutations : mutation list;
      (** Deliberate protocol weakenings for checker-sensitivity
          tests; empty for the faithful improved protocol. *)
}

val default_config : config
(** Two sessions, two admin messages per session — enough to exercise
    rejoin, rekey-style admin traffic, and post-Oops replay. *)

val intruder_atom_base : int

type user_state =
  | U_not_connected
  | U_waiting_for_key of int  (** nonce [N1] *)
  | U_connected of int * int  (** latest own nonce [Na], session key index *)

type leader_state =
  | L_not_connected
  | L_waiting_for_key_ack of int * int  (** nonce [Nl], key index *)
  | L_connected of int * int  (** latest [A]-nonce [Na], key index *)
  | L_waiting_for_ack of int * int  (** nonce [Nl], key index *)

type state = {
  usr : user_state;
  lead : leader_state;
  trace : Event.Set.t;
  snd : int list;  (** [snd_A]: admin atoms sent by [L], oldest first. *)
  rcv : int list;  (** [rcv_A]: admin atoms accepted by [A]. *)
  joins : int;  (** AuthInitReq messages sent by [A], ever. *)
  accepts : int;  (** AuthAckKey messages accepted by [L], ever. *)
  next_nonce : int;
  next_key : int;
  next_data : int;
  i_nonces : int;  (** Intruder fresh nonces consumed. *)
  i_keys : int;
}

type move =
  | A_join
  | A_recv_keydist
  | A_recv_admin
  | A_leave
  | L_recv_init
  | L_recv_keyack
  | L_send_admin
  | L_recv_ack
  | L_recv_close
  | E_inject of Event.label

val pp_move : Format.formatter -> move -> unit
val pp_user_state : Format.formatter -> user_state -> unit
val pp_leader_state : Format.formatter -> leader_state -> unit

val initial : state

val canon : state -> string
(** Canonical serialization for state hashing. *)

val intruder_knowledge : ?config:config -> state -> Field.Set.t
(** [Know(E, q)]: Analz closure of the intruder's initial knowledge,
    its allocated fresh atoms, and the trace contents. Pass the
    configuration when mutations (e.g. [Leak_pa]) extend the initial
    knowledge. *)

val trace_parts : state -> Field.Set.t
(** [Parts(trace(q))] (with underline): parts of all contents. *)

val in_use : state -> int -> bool
(** [in_use q k] — the paper's [InUse(Ka_k, q)]: the leader's local
    state mentions session key [k]. *)

val successors : config -> state -> (move * state) list
(** Every enabled transition: honest moves of [A] and [L], plus the
    pattern-directed intruder injections. *)
