(* A bounded model of the DELIVERY PLANE: the store-and-forward queue
   between a leader L and one member A who goes offline once, under a
   Dolev-Yao intruder E who records every drained frame and can replay
   any of them, in any order, at any later point. The member-plane
   protocol (handshakes, nonce chains) is verified in {!Model}; this
   model abstracts the admin channel to "frames reach A while online"
   — a STRONGER adversary than the implementation faces, because here
   the nonce chain is erased and the member's cumulative delivery
   floor is the only duplicate guard. The questions the epoch-window
   re-seal design must answer:

   - can any combination of legitimate re-drains (at-least-once
     delivery) and intruder replays make the member APPLY one queued
     delivery twice — the A3-style replay obligation, re-checked at
     the delivery layer?
   - can a queued-then-drained rekey, fresh, re-sealed or flagged
     stale, ever REGRESS the member's group-key epoch?
   - do stale-flagged deliveries really apply NOTHING (the
     deliver-stale arm is observability, not authority)?

   Modelling choices, stated explicitly:

   - queued payloads are rekey notices (the only payload with
     state-changing authority in the model); a fresh drain freshens
     the wrapper to the CURRENT epoch — exactly the implementation's
     fire-time re-seal — while a stale drain carries the queued epoch
     but is flagged;
   - entries stay pending until the member's ack lands (M_ack), so the
     leader can legitimately re-drain an already-delivered entry — a
     crash or re-disconnect between drain and ack IS this move; the
     at-least-once story is modelled, not assumed away;
   - both policy arms (reject and deliver-stale) are explored
     nondeterministically on every beyond-window entry, so one run
     covers both configurations;
   - the member's floor is monotone and never reset — mirroring the
     implementation, where it survives session resets. *)

type bounds = { max_seq : int; max_epoch : int; width : int }

let default_bounds = { max_seq = 2; max_epoch = 3; width = 1 }

type frame = { f_seq : int; f_stale : bool; f_epoch : int }

type state = {
  epoch : int;  (* the group epoch at L *)
  a_online : bool;
  offline_done : bool;  (* one offline excursion per run *)
  a_epoch : int;  (* A's installed group-key epoch *)
  queue : (int * int) list;  (* pending (seq, queued-epoch), seq order *)
  next_seq : int;
  floor_q : int;  (* L's durable ack floor *)
  a_floor : int;  (* A's cumulative delivery floor *)
  applied : int list;  (* delivery seqs A applied (sorted) *)
  dup_applied : bool;  (* a seq was applied twice — the bug we hunt *)
  wire : frame list;  (* every drained frame E has recorded (sorted) *)
  deduped : bool;  (* a replay was absorbed by the floor *)
  resealed : bool;  (* an in-window aged entry drained fresh *)
  stale_delivered : bool;  (* a beyond-window entry reached A flagged *)
  rejected : bool;  (* a beyond-window entry was durably dropped *)
}

let initial =
  {
    epoch = 1;
    a_online = true;
    offline_done = false;
    a_epoch = 1;
    queue = [];
    next_seq = 0;
    floor_q = 0;
    a_floor = 0;
    applied = [];
    dup_applied = false;
    wire = [];
    deduped = false;
    resealed = false;
    stale_delivered = false;
    rejected = false;
  }

let canon q = Marshal.to_string q []

let record_frame q f =
  if List.mem f q.wire then q
  else { q with wire = List.sort compare (f :: q.wire) }

type move =
  | M_offline
  | M_online
  | M_queue  (* L queues one payload for the offline A *)
  | M_rekey
  | M_drain of int  (* in-window entry drained fresh (re-sealed if aged) *)
  | M_drain_stale of int  (* beyond-window entry drained flagged stale *)
  | M_drain_reject of int  (* beyond-window entry durably dropped *)
  | M_ack  (* A's cumulative ack reaches L; the durable floor advances *)
  | M_deliver of frame  (* E delivers (or replays) a recorded frame *)

let pp_frame fmt { f_seq; f_stale; f_epoch } =
  Format.fprintf fmt "frame(seq=%d,stale=%b,epoch=%d)" f_seq f_stale f_epoch

let pp_move fmt = function
  | M_offline -> Format.pp_print_string fmt "A:offline"
  | M_online -> Format.pp_print_string fmt "A:online"
  | M_queue -> Format.pp_print_string fmt "L:queue"
  | M_rekey -> Format.pp_print_string fmt "L:rekey"
  | M_drain seq -> Format.fprintf fmt "L:drain-fresh(%d)" seq
  | M_drain_stale seq -> Format.fprintf fmt "L:drain-stale(%d)" seq
  | M_drain_reject seq -> Format.fprintf fmt "L:drain-reject(%d)" seq
  | M_ack -> Format.pp_print_string fmt "A:ack"
  | M_deliver f -> Format.fprintf fmt "E:deliver-%a" pp_frame f

(* The member's receive path — the checks the implementation makes in
   [Member.apply_admin] on a [Queued] wrapper: floor dedup first, then
   the stale flag (no state effect), then the epoch-staleness guard on
   the wrapped rekey. *)
let recv q (f : frame) =
  if not q.a_online then None
  else if f.f_seq < q.a_floor then
    if q.deduped then None (* no state change; skip the self-loop *)
    else Some { q with deduped = true }
  else
    let applied_before = List.mem f.f_seq q.applied in
    let q =
      {
        q with
        a_floor = f.f_seq + 1;
        applied =
          (if applied_before then q.applied
           else List.sort compare (f.f_seq :: q.applied));
        dup_applied = q.dup_applied || applied_before;
      }
    in
    if f.f_stale then Some { q with stale_delivered = true }
    else if f.f_epoch > q.a_epoch then Some { q with a_epoch = f.f_epoch }
    else Some q

let successors bounds q =
  let moves = ref [] in
  let add m s = moves := (m, s) :: !moves in

  (* One offline excursion per run: A drops off, L starts queueing. *)
  if q.a_online && not q.offline_done then
    add M_offline { q with a_online = false; offline_done = true };
  if not q.a_online then add M_online { q with a_online = true };

  (* L queues a rekey notice for the offline A at the current epoch. *)
  if (not q.a_online) && q.next_seq < bounds.max_seq then
    add M_queue
      {
        q with
        queue = q.queue @ [ (q.next_seq, q.epoch) ];
        next_seq = q.next_seq + 1;
      };

  (* The group rotates its key. A follows directly while online; while
     offline the rotation is what ages the queued entries. *)
  if q.epoch < bounds.max_epoch then
    add M_rekey
      {
        q with
        epoch = q.epoch + 1;
        a_epoch = (if q.a_online then q.epoch + 1 else q.a_epoch);
      };

  (* Drains: every pending entry, against the epoch-window policy.
     Entries stay pending until M_ack, so re-draining an entry whose
     ack is still in flight is a legitimate move — that is the crash /
     re-disconnect redelivery path, not an intruder capability. *)
  if q.a_online then
    List.iter
      (fun (seq, qe) ->
        let age = q.epoch - qe in
        if age <= bounds.width then
          add (M_drain seq)
            (record_frame
               { q with resealed = q.resealed || age > 0 }
               { f_seq = seq; f_stale = false; f_epoch = q.epoch })
        else begin
          add (M_drain_stale seq)
            (record_frame q { f_seq = seq; f_stale = true; f_epoch = qe });
          add (M_drain_reject seq)
            {
              q with
              queue = List.filter (fun (s, _) -> s <> seq) q.queue;
              rejected = true;
            }
        end)
      q.queue;

  (* A's cumulative ack lands at L: the durable floor catches up and
     everything below it is reclaimed. *)
  if q.a_floor > q.floor_q then
    add M_ack
      {
        q with
        floor_q = q.a_floor;
        queue = List.filter (fun (s, _) -> s >= q.a_floor) q.queue;
      };

  (* E owns the wire: any recorded frame can be delivered again, in
     any order, at any time A is reachable. *)
  List.iter
    (fun f ->
      match recv q f with
      | Some q' when canon q' <> canon q -> add (M_deliver f) q'
      | Some _ | None -> ())
    q.wire;

  !moves

(* --- exploration: the same compact BFS as {!Recovery} --- *)

type result = {
  states : state array;
  index : (string, int) Hashtbl.t;
  parents : (int * move) option array;
  edges : (int * move * int) array;
}

let explore ?(bounds = default_bounds) () =
  let index = Hashtbl.create 1024 in
  let states = ref [] and n_states = ref 0 in
  let parents = ref [] in
  let edges = ref [] and n_edges = ref 0 in
  let queue = Queue.create () in
  let intern q parent =
    let id = !n_states in
    Hashtbl.add index (canon q) id;
    states := q :: !states;
    parents := parent :: !parents;
    incr n_states;
    Queue.add (id, q) queue;
    id
  in
  ignore (intern initial None);
  while not (Queue.is_empty queue) do
    let id, q = Queue.pop queue in
    List.iter
      (fun (move, q') ->
        let id' =
          match Hashtbl.find_opt index (canon q') with
          | Some id' -> id'
          | None -> intern q' (Some (id, move))
        in
        edges := (id, move, id') :: !edges;
        incr n_edges)
      (successors bounds q)
  done;
  let of_rev_list n l =
    match l with
    | [] -> [||]
    | hd :: _ ->
        let a = Array.make n hd in
        List.iteri (fun i x -> a.(n - 1 - i) <- x) l;
        a
  in
  {
    states = of_rev_list !n_states !states;
    index;
    parents = of_rev_list !n_states !parents;
    edges = of_rev_list !n_edges !edges;
  }

let state_count r = Array.length r.states
let edge_count r = Array.length r.edges

let describe q =
  Format.asprintf
    "epoch=%d a=(online=%b,epoch=%d,floor=%d) queue=[%s] floor_q=%d \
     applied=[%s]%s"
    q.epoch q.a_online q.a_epoch q.a_floor
    (String.concat ";"
       (List.map (fun (s, e) -> Printf.sprintf "%d@%d" s e) q.queue))
    q.floor_q
    (String.concat ";" (List.map string_of_int q.applied))
    (if q.dup_applied then " DUP" else "")

let path_to r id =
  let rec build id acc =
    match r.parents.(id) with
    | None -> acc
    | Some (parent, move) -> build parent ((move, r.states.(id)) :: acc)
  in
  build id []

let render_path path =
  String.concat " ; "
    (List.map
       (fun (move, q) -> Format.asprintf "%a => %s" pp_move move (describe q))
       path)

let max_violations = 3

let state_report r ~name p =
  let violations = ref [] and n = ref 0 in
  Array.iteri
    (fun id q ->
      if not (p q) then begin
        incr n;
        if !n <= max_violations then
          violations := render_path (path_to r id) :: !violations
      end)
    r.states;
  {
    Invariants.name;
    holds = !n = 0;
    checked = Array.length r.states;
    violations = List.rev !violations;
  }

let edge_report r ~name p =
  let violations = ref [] and n = ref 0 in
  Array.iter
    (fun (src, move, dst) ->
      if not (p r.states.(src) move r.states.(dst)) then begin
        incr n;
        if !n <= max_violations then
          violations :=
            render_path (path_to r src @ [ (move, r.states.(dst)) ])
            :: !violations
      end)
    r.edges;
  {
    Invariants.name;
    holds = !n = 0;
    checked = Array.length r.edges;
    violations = List.rev !violations;
  }

let reports r =
  let no_duplicate =
    state_report r ~name:"no delivery applied twice" (fun q ->
        not q.dup_applied)
  in
  let no_regression =
    edge_report r ~name:"delivery never regresses member epoch"
      (fun q _move q' -> q'.a_epoch >= q.a_epoch)
  in
  let stale_inert =
    edge_report r ~name:"stale deliveries apply nothing" (fun q move q' ->
        match move with
        | M_deliver { f_stale = true; _ } -> q'.a_epoch = q.a_epoch
        | _ -> true)
  in
  (* Non-vacuity: replays really fired and were absorbed, an aged entry
     really drained re-sealed, and both beyond-window arms really ran —
     the obligations above are not holding over an empty surface. *)
  let surface =
    let exists p = Array.exists p r.states in
    {
      Invariants.name = "delivery surface exercised";
      holds =
        exists (fun q -> q.deduped)
        && exists (fun q -> q.resealed)
        && exists (fun q -> q.stale_delivered)
        && exists (fun q -> q.rejected)
        && exists (fun q -> q.dup_applied = false && q.applied <> []);
      checked = Array.length r.states;
      violations = [];
    }
  in
  [ no_duplicate; no_regression; stale_inert; surface ]

let all ?bounds () = reports (explore ?bounds ())
