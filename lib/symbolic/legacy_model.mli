(** Symbolic model of the {e legacy} Enclaves protocol (§2.2) — the
    formal counterpart of the paper's informal attack analysis (§2.3).

    Where {!Model} verifies that the improved protocol satisfies the
    §3.1 requirements, this model demonstrates that the legacy
    protocol does {e not}: exhaustive exploration reaches states
    violating each requirement, and {!findings} returns one concrete
    symbolic attack trace per weakness:

    - {b W1 (attack A1)} — the honest member reaches [Denied] although
      the leader never sent a denial: the pre-auth [ConnectionDenied]
      is plaintext, so the intruder mints one.
    - {b W2 (attack A2)} — the member's view drops [B] although the
      leader never sent a [MemRemoved]: the event is sealed only under
      the group key, which the insider holds.
    - {b W3 (attack A3)} — the member's group-key epoch decreases: a
      [NewKey] message carries no freshness evidence, so an old one
      (still in the trace — replay is the default in this model
      family) is accepted again after a rekey.
    - {b W4 (attack A4)} — the leader closes the member's session
      although the member never asked: the close request is plaintext.

    One positive result is checked too: the legacy {e authentication}
    handshake is still regular, so [P_a] secrecy holds — the paper's
    §2.3 weaknesses are group-management weaknesses, not a loss of the
    long-term key. The intruder here is an {e insider}: its initial
    knowledge includes the group keys of the epochs during which it
    was a member ([insider_epochs]). *)

type bounds = {
  max_epoch : int;  (** Rekeys performed by the leader. *)
  insider_epochs : int;  (** The insider holds [Kg 1 .. Kg insider_epochs]. *)
  max_nonces : int;
}

val default_bounds : bounds
(** Three epochs, insider through epoch 2. *)

type member_state =
  | M_not_connected
  | M_waiting_ack
  | M_waiting_auth2 of int  (** nonce [N1] *)
  | M_connected of { epoch : int; sees_b : bool }
  | M_denied

type leader_state =
  | L_idle
  | L_waiting_auth1
  | L_waiting_auth3 of int  (** nonce [N2] *)
  | L_in_session

type state = {
  mem : member_state;
  lead : leader_state;
  lead_epoch : int;
  trace : Event.Set.t;
  next_nonce : int;
}

val pp_member_state : Format.formatter -> member_state -> unit
val pp_leader_state : Format.formatter -> leader_state -> unit

type result

val explore : ?bounds:bounds -> unit -> result
val state_count : result -> int

type finding = {
  weakness : string;  (** "W1".."W4" or "Pa-secrecy" *)
  description : string;
  violated : bool;  (** true = the attack state is reachable *)
  trace : string list;  (** one rendered step per line, empty if none *)
}

val findings : ?bounds:bounds -> result -> finding list
(** The four weaknesses (expected [violated = true]) followed by the
    [P_a]-secrecy check (expected [violated = false]). *)
