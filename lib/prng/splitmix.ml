type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let remix x =
  let x = Int64.logxor x (Int64.shift_right_logical x 30) in
  let x = Int64.mul x 0xBF58476D1CE4E5B9L in
  let x = Int64.logxor x (Int64.shift_right_logical x 27) in
  let x = Int64.mul x 0x94D049BB133111EBL in
  Int64.logxor x (Int64.shift_right_logical x 31)

let create seed = { state = remix seed }

let copy t = { state = t.state }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  remix t.state

let next_int t bound =
  if bound <= 0 then invalid_arg "Splitmix.next_int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let b = Int64.of_int bound in
  let rec loop () =
    let r = Int64.shift_right_logical (next t) 1 in
    let v = Int64.rem r b in
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int b) 1L then loop ()
    else Int64.to_int v
  in
  loop ()

let next_float t =
  let bits53 = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits53 *. (1.0 /. 9007199254740992.0)

let next_bool t = Int64.logand (next t) 1L = 1L

let next_bytes t n =
  if n < 0 then invalid_arg "Splitmix.next_bytes: negative length";
  let b = Bytes.create n in
  let i = ref 0 in
  while !i < n do
    let word = ref (next t) in
    let stop = min n (!i + 8) in
    while !i < stop do
      Bytes.set b !i (Char.chr (Int64.to_int (Int64.logand !word 0xFFL)));
      word := Int64.shift_right_logical !word 8;
      incr i
    done
  done;
  b

let split t = create (next t)
