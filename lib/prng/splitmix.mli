(** SplitMix64 deterministic pseudo-random number generator.

    This is the generator described by Steele, Lea and Flood
    ("Fast splittable pseudorandom number generators", OOPSLA 2014).
    It is used as the single source of randomness for the whole
    repository so that every simulation, test and benchmark is
    reproducible from a seed.

    The generator is {e not} cryptographically secure; the protocol
    stack only needs unpredictability with respect to the simulated
    Dolev-Yao adversary, which by construction never inspects generator
    state. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator initialised from [seed].
    Two generators created from the same seed produce the same
    stream. *)

val copy : t -> t
(** [copy t] is an independent generator that continues from the same
    state; advancing one does not affect the other. *)

val next : t -> int64
(** [next t] returns the next 64-bit value and advances the state. *)

val next_int : t -> int -> int
(** [next_int t bound] is a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val next_float : t -> float
(** [next_float t] is a uniform float in [\[0, 1)]. *)

val next_bool : t -> bool
(** [next_bool t] is a uniform boolean. *)

val next_bytes : t -> int -> bytes
(** [next_bytes t n] is [n] pseudo-random bytes.
    @raise Invalid_argument if [n < 0]. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of
    the parent's subsequent output (the SplitMix split operation). *)

val remix : int64 -> int64
(** [remix x] is the SplitMix64 finalizer: a fixed 64-bit mixing
    bijection. Exposed for hashing/canonicalization uses. *)
