open Byteskit

let ( let* ) = Cursor.( let* )

type entry = { seq : int; epoch : int; payload : string }

type state = { next_seq : int; floor : int; pending : entry list }

let empty_state = { next_seq = 0; floor = 0; pending = [] }

type record =
  | Push of entry
  | Ack of { upto : int }
  | Drop of { seq : int }
  | Snapshot of state

let pp_record fmt = function
  | Push { seq; epoch; payload } ->
      Format.fprintf fmt "Push(seq=%d, epoch=%d, %d bytes)" seq epoch
        (String.length payload)
  | Ack { upto } -> Format.fprintf fmt "Ack(upto=%d)" upto
  | Drop { seq } -> Format.fprintf fmt "Drop(seq=%d)" seq
  | Snapshot { next_seq; floor; pending } ->
      Format.fprintf fmt "Snapshot(next=%d, floor=%d, %d pending)" next_seq
        floor (List.length pending)

type status = Clean | Damaged of { valid_records : int; valid_bytes : int }

let pp_status fmt = function
  | Clean -> Format.pp_print_string fmt "clean"
  | Damaged { valid_records; valid_bytes } ->
      Format.fprintf fmt "damaged (recovered %d records, %d bytes)"
        valid_records valid_bytes

(* --- record payload encoding --- *)

let encode_entry w { seq; epoch; payload } =
  Cursor.Writer.u32 w seq;
  Cursor.Writer.u32 w epoch;
  Cursor.Writer.bytes w payload

let encode_payload ~fseq record =
  let w = Cursor.Writer.create () in
  Cursor.Writer.u32 w fseq;
  (match record with
  | Push e ->
      Cursor.Writer.u8 w 1;
      encode_entry w e
  | Ack { upto } ->
      Cursor.Writer.u8 w 2;
      Cursor.Writer.u32 w upto
  | Drop { seq } ->
      Cursor.Writer.u8 w 3;
      Cursor.Writer.u32 w seq
  | Snapshot { next_seq; floor; pending } ->
      Cursor.Writer.u8 w 4;
      Cursor.Writer.u32 w next_seq;
      Cursor.Writer.u32 w floor;
      Cursor.Writer.u32 w (List.length pending);
      List.iter (encode_entry w) pending);
  Cursor.Writer.contents w

let decode_entry r =
  let* seq = Cursor.Reader.u32 r in
  let* epoch = Cursor.Reader.u32 r in
  let* payload = Cursor.Reader.bytes r in
  Ok { seq; epoch; payload }

let decode_payload payload =
  let r = Cursor.Reader.of_string payload in
  let result =
    let* fseq = Cursor.Reader.u32 r in
    let* tag = Cursor.Reader.u8 r in
    let* record =
      match tag with
      | 1 ->
          let* e = decode_entry r in
          Ok (Push e)
      | 2 ->
          let* upto = Cursor.Reader.u32 r in
          Ok (Ack { upto })
      | 3 ->
          let* seq = Cursor.Reader.u32 r in
          Ok (Drop { seq })
      | 4 ->
          let* next_seq = Cursor.Reader.u32 r in
          let* floor = Cursor.Reader.u32 r in
          let* n = Cursor.Reader.u32 r in
          if n > 1_000_000 then Error (`Malformed "snapshot too large")
          else
            let rec entries acc k =
              if k = 0 then Ok (List.rev acc)
              else
                let* e = decode_entry r in
                entries (e :: acc) (k - 1)
            in
            let* pending = entries [] n in
            Ok (Snapshot { next_seq; floor; pending })
      | n -> Error (`Malformed (Printf.sprintf "unknown queue tag %d" n))
    in
    let* () = Cursor.Reader.expect_end r in
    Ok (fseq, record)
  in
  Result.to_option result

let record_equal a b = encode_payload ~fseq:0 a = encode_payload ~fseq:0 b

(* --- state folding --- *)

let apply_record st = function
  | Snapshot s -> s
  | Push e ->
      let next_seq = max st.next_seq (e.seq + 1) in
      if e.seq < st.floor || List.exists (fun p -> p.seq = e.seq) st.pending
      then { st with next_seq }
      else { st with next_seq; pending = st.pending @ [ e ] }
  | Ack { upto } ->
      let floor = max st.floor upto in
      {
        st with
        floor;
        pending = List.filter (fun e -> e.seq >= floor) st.pending;
      }
  | Drop { seq } ->
      { st with pending = List.filter (fun e -> e.seq <> seq) st.pending }

let state_of_records records = List.fold_left apply_record empty_state records

(* --- the queue proper --- *)

let magic = "EDLQ"
let version = 1
let default_mac_key = "enclaves-deliver"  (* 16 bytes, public: integrity
                                             only, not secrecy *)

type event = Appended of string | Published of string

type t = {
  buf : Buffer.t;
  mac : Sym_crypto.Siphash.key;
  compact_every : int;
  disk : Backend.t option;
  file : string;
  mutable eio_retries : int;
  mutable st : state;
  mutable nrecords : int;
  mutable next_fseq : int;
  mutable since_snapshot : int;
  mutable observer : (event -> unit) option;
  (* Degraded-mode switch: with durability off the in-memory buffer
     keeps evolving but neither mirror shape touches the backend. The
     disk image goes stale; re-arming is [set_durable true] followed
     by [compact], which republishes the whole image atomically. *)
  mutable durable : bool;
}

let header () =
  let w = Cursor.Writer.create () in
  Cursor.Writer.raw w magic;
  Cursor.Writer.u8 w version;
  Cursor.Writer.contents w

(* --- disk write-through --- the same discipline as the leader
   journal: the in-memory buffer is authoritative for reads, every
   mutation is mirrored to the backend before returning, transient EIO
   is retried a bounded number of times (both mirror shapes are
   idempotent), [Backend.Crashed] propagates. *)

let max_eio_retries = 8

let with_retry t f =
  let rec go attempt =
    try f ()
    with Backend.Eio _ when attempt < max_eio_retries ->
      t.eio_retries <- t.eio_retries + 1;
      go (attempt + 1)
  in
  go 0

let disk_publish t =
  match t.disk with
  | Some d when t.durable ->
      let bytes = Buffer.contents t.buf in
      let tmp = t.file ^ ".tmp" in
      with_retry t (fun () -> Backend.remove d ~file:tmp);
      with_retry t (fun () -> Backend.pwrite d ~file:tmp ~off:0 bytes);
      with_retry t (fun () -> Backend.fsync d ~file:tmp);
      with_retry t (fun () -> Backend.rename d ~src:tmp ~dst:t.file)
  | _ -> ()

let disk_append t ~off bytes =
  match t.disk with
  | Some d when t.durable ->
      with_retry t (fun () -> Backend.pwrite d ~file:t.file ~off bytes);
      with_retry t (fun () -> Backend.fsync d ~file:t.file)
  | _ -> ()

let create ?(mac_key = default_mac_key) ?(compact_every = 64) ?disk
    ?(file = "queue") ?(durable = true) () =
  if String.length mac_key <> 16 then
    invalid_arg "Queue.create: mac_key must be 16 bytes";
  if compact_every < 1 then
    invalid_arg "Queue.create: compact_every must be positive";
  let buf = Buffer.create 256 in
  Buffer.add_string buf (header ());
  let t =
    {
      buf;
      mac = Sym_crypto.Siphash.key_of_string mac_key;
      compact_every;
      disk;
      file;
      eio_retries = 0;
      st = empty_state;
      nrecords = 0;
      next_fseq = 0;
      since_snapshot = 0;
      observer = None;
      durable;
    }
  in
  disk_publish t;
  t

let set_observer t obs = t.observer <- obs
let set_durable t b = t.durable <- b
let durable t = t.durable
let notify t ev = match t.observer with None -> () | Some f -> f ev

let state t = t.st
let pending t = t.st.pending
let floor t = t.st.floor
let next_seq t = t.st.next_seq
let depth t = List.length t.st.pending
let records t = t.nrecords
let size t = Buffer.length t.buf
let contents t = Buffer.contents t.buf
let eio_retries t = t.eio_retries
let file t = t.file

let append_raw t record =
  let payload = encode_payload ~fseq:t.next_fseq record in
  let w = Cursor.Writer.create () in
  Cursor.Writer.u32 w (String.length payload);
  Cursor.Writer.raw w payload;
  Cursor.Writer.raw w (Sym_crypto.Siphash.hash_to_bytes t.mac payload);
  Buffer.add_string t.buf (Cursor.Writer.contents w);
  t.next_fseq <- t.next_fseq + 1;
  t.nrecords <- t.nrecords + 1;
  t.st <- apply_record t.st record

let rewrite_as_snapshot t =
  let st = t.st in
  Buffer.clear t.buf;
  Buffer.add_string t.buf (header ());
  t.nrecords <- 0;
  t.next_fseq <- 0;
  t.since_snapshot <- 0;
  append_raw t (Snapshot st);
  disk_publish t;
  notify t (Published (Buffer.contents t.buf))

let compact t = rewrite_as_snapshot t

let append t record =
  let off = Buffer.length t.buf in
  append_raw t record;
  t.since_snapshot <- t.since_snapshot + 1;
  if t.since_snapshot > t.compact_every then rewrite_as_snapshot t
  else begin
    let chunk = Buffer.sub t.buf off (Buffer.length t.buf - off) in
    disk_append t ~off chunk;
    notify t (Appended chunk)
  end

let push t ~epoch payload =
  let e = { seq = t.st.next_seq; epoch; payload } in
  append t (Push e);
  e

let ack t ~upto = if upto > t.st.floor then append t (Ack { upto })

let drop t ~seq =
  if List.exists (fun e -> e.seq = seq) t.st.pending then
    append t (Drop { seq })

(* --- replay: total on arbitrary bytes --- *)

let replay ?(mac_key = default_mac_key) bytes =
  if String.length mac_key <> 16 then
    invalid_arg "Queue.replay: mac_key must be 16 bytes";
  let mac = Sym_crypto.Siphash.key_of_string mac_key in
  let len = String.length bytes in
  let hlen = String.length magic + 1 in
  let bad_header =
    len < hlen
    || String.sub bytes 0 (String.length magic) <> magic
    || Char.code bytes.[String.length magic] <> version
  in
  if bad_header then ([], Damaged { valid_records = 0; valid_bytes = 0 })
  else begin
    let records = ref [] in
    let pos = ref hlen in
    let valid_bytes = ref hlen in
    let fseq = ref 0 in
    let stop = ref false in
    while not !stop do
      if len - !pos < 4 then stop := true
      else begin
        let rlen =
          let b i = Char.code bytes.[!pos + i] in
          (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3
        in
        if rlen < 0 || rlen > len - !pos - 12 then stop := true
        else begin
          let payload = String.sub bytes (!pos + 4) rlen in
          let sum = String.sub bytes (!pos + 4 + rlen) 8 in
          if
            not
              (String.equal sum (Sym_crypto.Siphash.hash_to_bytes mac payload))
          then stop := true
          else
            match decode_payload payload with
            | Some (s, record) when s = !fseq ->
                records := record :: !records;
                incr fseq;
                pos := !pos + 4 + rlen + 8;
                valid_bytes := !pos
            | Some _ | None -> stop := true
        end
      end
    done;
    let recs = List.rev !records in
    if !valid_bytes = len then (recs, Clean)
    else
      ( recs,
        Damaged
          { valid_records = List.length recs; valid_bytes = !valid_bytes } )
  end

let recover ?(mac_key = default_mac_key) ?compact_every ?disk ?file bytes =
  let records, status = replay ~mac_key bytes in
  let st = state_of_records records in
  let t = create ~mac_key ?compact_every ?disk ?file () in
  t.st <- st;
  rewrite_as_snapshot t;
  (t, st, status)

let load ?mac_key ?compact_every ?(file = "queue") ~disk () =
  let bytes = Option.value ~default:"" (Backend.read disk ~file) in
  recover ?mac_key ?compact_every ~disk ~file bytes
