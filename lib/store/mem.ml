type t = {
  volatile : (string, string) Hashtbl.t;
  durable : (string, string) Hashtbl.t;
}

let create () = { volatile = Hashtbl.create 4; durable = Hashtbl.create 4 }

(* Splice [data] into [cur] at [off], zero-filling any gap — sparse
   file semantics, so a torn write followed by a later append leaves a
   hole of zeros that replay treats as damage, exactly like a real
   disk. *)
let splice cur ~off data =
  let cur_len = String.length cur and dlen = String.length data in
  let len = max cur_len (off + dlen) in
  let b = Bytes.make len '\000' in
  Bytes.blit_string cur 0 b 0 cur_len;
  Bytes.blit_string data 0 b off dlen;
  Bytes.unsafe_to_string b

let pwrite t ~file ~off data =
  if off < 0 then invalid_arg "Mem.pwrite: negative offset";
  let cur = Option.value ~default:"" (Hashtbl.find_opt t.volatile file) in
  Hashtbl.replace t.volatile file (splice cur ~off data)

let read t ~file = Hashtbl.find_opt t.volatile file

let fsync t ~file =
  match Hashtbl.find_opt t.volatile file with
  | Some content -> Hashtbl.replace t.durable file content
  | None -> ()

let rename t ~src ~dst =
  (match Hashtbl.find_opt t.volatile src with
  | Some content ->
      Hashtbl.replace t.volatile dst content;
      Hashtbl.remove t.volatile src
  | None -> ());
  (* Durably, only fsynced bytes of [src] cross the crash boundary:
     renaming an unsynced staging file may surface as a missing
     [dst]. *)
  (match Hashtbl.find_opt t.durable src with
  | Some content -> Hashtbl.replace t.durable dst content
  | None -> Hashtbl.remove t.durable dst);
  Hashtbl.remove t.durable src

let remove t ~file =
  Hashtbl.remove t.volatile file;
  Hashtbl.remove t.durable file

let volatile_of t file = Hashtbl.find_opt t.volatile file
let durable_of t file = Hashtbl.find_opt t.durable file

let crash_image t =
  Hashtbl.fold (fun name content acc -> (name, content) :: acc) t.durable []
  |> List.sort compare

let handle t = Backend.pack (module struct
  type nonrec t = t

  let pwrite = pwrite
  let read = read
  let fsync = fsync
  let rename = rename
  let remove = remove
end) t
