(** ALICE-style crash-point enumeration.

    Record the exact sequence of store operations a workload performs
    (via {!recorder}), then {!enumerate} every disk image a crash
    could leave behind: for each operation boundary, the durable image
    (everything unsynced lost), the volatile image (everything
    happened to hit disk), and — for boundaries followed by a write —
    torn variants where only a byte-prefix of that write survived.

    Feeding every image back through recovery and asserting invariants
    is the crash-consistency harness of [Crash_matrix]. *)

type op =
  | Pwrite of { file : string; off : int; data : string }
  | Fsync of string
  | Rename of { src : string; dst : string }
  | Remove of string

val pp_op : Format.formatter -> op -> unit

type recorder

val recorder : Mem.t -> recorder
(** A backend that applies every operation to [mem] and records it. *)

val handle : recorder -> Backend.t
val ops : recorder -> op list
(** Operations in execution order. *)

type image = {
  label : string;  (** human-readable crash point, for diagnostics *)
  files : (string * string) list;  (** disk contents after the crash *)
}

val enumerate : ?torn:bool -> op list -> image list
(** All crash images of the operation sequence. With [torn] (default
    true), each pending write additionally contributes images where
    only a strict byte-prefix of it survived. Images are not deduped —
    use {!dedup_count} for reporting. *)

val durable_at : op list -> int -> (string * string) list
(** Disk contents if the crash strikes at boundary [i] — before the
    [i]th operation — and every unsynced byte is lost. Boundary
    [List.length ops] is the final durable state. *)

val dedup_count : image list -> int
(** Number of distinct disk states among the images. *)
