(** Storage backend signature — the narrow waist between the durable
    journal and whatever holds its bytes.

    A backend is a tiny named-file store with exactly the operations
    the journal's crash-consistency argument rests on:

    - {!S.pwrite} — positional write into a file (created on first
      write; gaps are zero-filled, like a sparse file);
    - {!S.read} — the file's current contents as the {e running
      process} sees them;
    - {!S.fsync} — make everything written to the file so far durable;
    - {!S.rename} — atomically replace [dst] with [src] (the
      snapshot-compaction commit point);
    - {!S.remove} — unlink a file (staging-area hygiene).

    The semantics that matter for crash consistency: a [pwrite] is
    {e not} durable until the file is [fsync]ed — a crash in between
    may persist any byte-prefix of the write, or none of it.  A
    [rename] commits atomically, but only the {e durable} content of
    [src] is guaranteed on the other side of a crash; renaming a file
    that was never fsynced can surface as a missing or empty [dst].
    Callers that want the classic atomic-replace idiom must therefore
    write the staged file, [fsync] it, and only then [rename] — the
    discipline {!Journal} follows and {!Crashpoint} checks.

    Implementations: {!Mem} (simulated device with an explicit
    durable/volatile split), {!File} (a real directory via [Unix]),
    and {!Fault} (a seeded fault-injecting wrapper over either). *)

exception Eio of string
(** A transient I/O error ([EIO]-style). The operation had no effect
    (or a partial effect that re-issuing the same call overwrites);
    callers are expected to retry a bounded number of times. *)

exception Crashed of string
(** Raised by fault-injecting backends at an injected crash point: the
    process is considered dead from this instant, and only the durable
    image survives. Never raised by real backends. *)

exception No_space of string
(** The device is full ([ENOSPC]/[EDQUOT]-style): the mutation did not
    land and retrying without freeing space cannot help. Unlike
    {!Eio} this is {e not} transient — callers must compact, shed, or
    degrade to memory-only operation, and may retry only after space
    has been reclaimed. Raised by {!File} on a genuinely full disk and
    by {!Fault} when a seeded byte budget is exhausted. *)

exception Stalled of string
(** The device has stopped making progress (a persistent write stall —
    a dying disk, a hung NFS mount). Every mutating call fails until
    the condition clears; reads may still serve from cache. Callers
    should treat this like {!No_space}: degrade rather than spin. Only
    raised by fault-injecting backends. *)

module type S = sig
  type t

  val pwrite : t -> file:string -> off:int -> string -> unit
  (** [pwrite t ~file ~off data] writes [data] at byte offset [off],
      creating [file] if needed and zero-filling any gap between the
      current end of file and [off]. Not durable until {!fsync}. *)

  val read : t -> file:string -> string option
  (** Current contents as seen by the running process ([None] if the
      file does not exist). After a crash, a fresh process may see
      less — only what was durable. *)

  val fsync : t -> file:string -> unit
  (** Make all writes to [file] so far durable. No-op on a missing
      file. *)

  val rename : t -> src:string -> dst:string -> unit
  (** Atomically replace [dst] with [src] ([src] ceases to exist).
      Durability of the content follows the fsync state of [src]. *)

  val remove : t -> file:string -> unit
  (** Unlink [file]; no-op if absent. *)
end

type t
(** A packed backend instance — what {!Journal} and the driver carry. *)

val pack : (module S with type t = 'a) -> 'a -> t

val pwrite : t -> file:string -> off:int -> string -> unit
val read : t -> file:string -> string option
val fsync : t -> file:string -> unit
val rename : t -> src:string -> dst:string -> unit
val remove : t -> file:string -> unit
