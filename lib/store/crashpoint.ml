type op =
  | Pwrite of { file : string; off : int; data : string }
  | Fsync of string
  | Rename of { src : string; dst : string }
  | Remove of string

let pp_op ppf = function
  | Pwrite { file; off; data } ->
      Format.fprintf ppf "pwrite %s@%d (%d bytes)" file off (String.length data)
  | Fsync file -> Format.fprintf ppf "fsync %s" file
  | Rename { src; dst } -> Format.fprintf ppf "rename %s -> %s" src dst
  | Remove file -> Format.fprintf ppf "remove %s" file

type recorder = { mem : Mem.t; mutable log : op list }

let recorder mem = { mem; log = [] }
let ops r = List.rev r.log

let handle r = Backend.pack (module struct
  type t = recorder

  let pwrite r ~file ~off data =
    r.log <- Pwrite { file; off; data } :: r.log;
    Mem.pwrite r.mem ~file ~off data

  let read r ~file = Mem.read r.mem ~file

  let fsync r ~file =
    r.log <- Fsync file :: r.log;
    Mem.fsync r.mem ~file

  let rename r ~src ~dst =
    r.log <- Rename { src; dst } :: r.log;
    Mem.rename r.mem ~src ~dst

  let remove r ~file =
    r.log <- Remove file :: r.log;
    Mem.remove r.mem ~file
end) r

module M = Map.Make (String)

let splice cur ~off data =
  let cur_len = String.length cur and dlen = String.length data in
  let len = max cur_len (off + dlen) in
  let b = Bytes.make len '\000' in
  Bytes.blit_string cur 0 b 0 cur_len;
  Bytes.blit_string data 0 b off dlen;
  Bytes.unsafe_to_string b

let apply_pwrite m ~file ~off data =
  let cur = Option.value ~default:"" (M.find_opt file m) in
  M.add file (splice cur ~off data) m

(* Mirror the Mem model: an op advances the volatile view always, the
   durable view only through fsync / rename-of-durable / remove. *)
let step (durable, volatile) = function
  | Pwrite { file; off; data } ->
      (durable, apply_pwrite volatile ~file ~off data)
  | Fsync file -> (
      match M.find_opt file volatile with
      | Some c -> (M.add file c durable, volatile)
      | None -> (durable, volatile))
  | Rename { src; dst } ->
      let volatile =
        match M.find_opt src volatile with
        | Some c -> M.add dst c (M.remove src volatile)
        | None -> volatile
      in
      let durable =
        match M.find_opt src durable with
        | Some c -> M.add dst c (M.remove src durable)
        | None -> M.remove dst durable
      in
      (durable, volatile)
  | Remove file -> (M.remove file durable, M.remove file volatile)

type image = { label : string; files : (string * string) list }

let files_of m = M.bindings m

(* Every strict prefix for small writes; for large ones a bounded,
   deterministic sample that always includes both extremes. *)
let tear_points len =
  if len <= 64 then List.init len Fun.id
  else
    let pts = List.init 64 (fun i -> i * len / 64) in
    List.sort_uniq compare ((len - 1) :: pts)

let enumerate ?(torn = true) ops =
  let images = ref [] in
  let emit label m = images := { label; files = files_of m } :: !images in
  let rec go i (durable, volatile) = function
    | [] ->
        emit (Printf.sprintf "boundary %d: durable" i) durable;
        emit (Printf.sprintf "boundary %d: volatile" i) volatile
    | op :: rest ->
        emit (Printf.sprintf "boundary %d: durable" i) durable;
        emit (Printf.sprintf "boundary %d: volatile" i) volatile;
        (match op with
        | Pwrite { file; off; data } when torn ->
            List.iter
              (fun k ->
                let prefix = String.sub data 0 k in
                emit
                  (Printf.sprintf "boundary %d: durable + %d/%d bytes of %s@%d"
                     i k (String.length data) file off)
                  (apply_pwrite durable ~file ~off prefix);
                emit
                  (Printf.sprintf "boundary %d: volatile + %d/%d bytes of %s@%d"
                     i k (String.length data) file off)
                  (apply_pwrite volatile ~file ~off prefix))
              (tear_points (String.length data))
        | _ -> ());
        go (i + 1) (step (durable, volatile) op) rest
  in
  go 0 (M.empty, M.empty) ops;
  List.rev !images

let durable_at ops i =
  let rec go k st = function
    | [] -> st
    | _ when k = i -> st
    | op :: rest -> go (k + 1) (step st op) rest
  in
  files_of (fst (go 0 (M.empty, M.empty) ops))

let dedup_count images =
  List.sort_uniq compare (List.map (fun i -> i.files) images) |> List.length
