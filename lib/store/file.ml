type t = { dir : string }

let wrap_unix f =
  try f () with
  | Unix.Unix_error
      ((Unix.ENOSPC | Unix.EUNKNOWNERR 122 (* EDQUOT on Linux *)) as e, fn, arg)
    ->
      (* A full disk (or quota) is not a transient fault: retrying
         without freeing space cannot succeed, so it gets the typed
         error the degraded-mode ladder keys on. EDQUOT is not in
         [Unix.error]'s enumerated set, so it arrives as the raw
         errno. *)
      raise
        (Backend.No_space
           (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e)))
  | Unix.Unix_error (e, fn, arg) ->
      raise
        (Backend.Eio (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e)))

let create ~dir =
  wrap_unix (fun () ->
      (try Unix.mkdir dir 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      { dir })

let dir t = t.dir

let path t file =
  if String.contains file '/' then
    invalid_arg "File: file names must not contain '/'";
  Filename.concat t.dir file

let pwrite t ~file ~off data =
  if off < 0 then invalid_arg "File.pwrite: negative offset";
  wrap_unix (fun () ->
      let fd = Unix.openfile (path t file) [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          ignore (Unix.lseek fd off Unix.SEEK_SET);
          let len = String.length data in
          let written = ref 0 in
          while !written < len do
            written :=
              !written + Unix.write_substring fd data !written (len - !written)
          done))

let read t ~file =
  let p = path t file in
  if not (Sys.file_exists p) then None
  else wrap_unix (fun () -> Some (In_channel.with_open_bin p In_channel.input_all))

let fsync t ~file =
  let p = path t file in
  if Sys.file_exists p then
    wrap_unix (fun () ->
        let fd = Unix.openfile p [ Unix.O_RDONLY ] 0 in
        Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.fsync fd))

(* Persist the name change itself: fsync the containing directory.
   Some filesystems refuse fsync on a directory fd — that is their
   claim that the metadata is already ordered, so EINVAL/EBADF are
   ignored. *)
let fsync_dir t =
  match Unix.openfile t.dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let rename t ~src ~dst =
  wrap_unix (fun () ->
      Unix.rename (path t src) (path t dst);
      fsync_dir t)

let remove t ~file =
  let p = path t file in
  if Sys.file_exists p then (
    wrap_unix (fun () -> Unix.unlink p);
    fsync_dir t)

let handle t = Backend.pack (module struct
  type nonrec t = t

  let pwrite = pwrite
  let read = read
  let fsync = fsync
  let rename = rename
  let remove = remove
end) t
