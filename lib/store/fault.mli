(** Seeded fault injection over any {!Backend.t}.

    Four probabilistic faults plus one deterministic crash trigger:

    - {b torn write}: only a seeded byte-prefix of a [pwrite] reaches
      the backend, yet the call reports success — the silent
      corruption a power cut mid-write produces.
    - {b short write}: a prefix lands and the call raises
      {!Backend.Eio}; because journal appends rewrite the same offset,
      a retry heals this one.
    - {b transient EIO}: the call raises {!Backend.Eio} with no
      effect.
    - {b dropped fsync}: [fsync] silently does nothing, leaving the
      file's tail volatile.
    - {b crash-after-k-writes}: the k-th mutation ([pwrite] or
      [rename]) tears mid-operation and raises {!Backend.Crashed};
      every call after that raises too. Combined with
      {!Mem.crash_image} this yields a deterministic disk image for
      recovery testing.

    All randomness comes from the caller's [Prng.Splitmix.t], so a
    fault schedule is a pure function of the seed. *)

type config = {
  eio : float;  (** probability a call raises [Eio] with no effect *)
  short_write : float;  (** probability a [pwrite] lands a prefix and raises *)
  torn_write : float;  (** probability a [pwrite] lands a prefix silently *)
  drop_fsync : float;  (** probability an [fsync] is silently skipped *)
  crash_after_writes : int option;
      (** crash on the k-th mutating call (1-based), if set *)
}

val none : config

type counters = {
  mutable torn_writes : int;
  mutable short_writes : int;
  mutable dropped_fsyncs : int;
  mutable eio_injected : int;
  mutable crashes : int;
}

type t

val create : ?config:config -> rng:Prng.Splitmix.t -> Backend.t -> t
val handle : t -> Backend.t
val counters : t -> counters
val crashed : t -> bool
