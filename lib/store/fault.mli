(** Seeded fault injection over any {!Backend.t}.

    Four probabilistic faults plus one deterministic crash trigger:

    - {b torn write}: only a seeded byte-prefix of a [pwrite] reaches
      the backend, yet the call reports success — the silent
      corruption a power cut mid-write produces.
    - {b short write}: a prefix lands and the call raises
      {!Backend.Eio}; because journal appends rewrite the same offset,
      a retry heals this one.
    - {b transient EIO}: the call raises {!Backend.Eio} with no
      effect.
    - {b dropped fsync}: [fsync] silently does nothing, leaving the
      file's tail volatile.
    - {b crash-after-k-writes}: the k-th mutation ([pwrite] or
      [rename]) tears mid-operation and raises {!Backend.Crashed};
      every call after that raises too. Combined with
      {!Mem.crash_image} this yields a deterministic disk image for
      recovery testing.

    Plus three resource-exhaustion arms:

    - {b ENOSPC budget}: the wrapper tracks every file's size as it
      forwards mutations; a [pwrite] that would grow total usage past
      the byte budget raises {!Backend.No_space} with no effect.
      Compaction genuinely frees budget (snapshot rewrite + rename +
      remove shrink the tracked usage), and {!set_space_budget} lets a
      harness vary the budget over virtual time — disk fills, space
      returns.
    - {b fsync-latency spike}: an [fsync] records a seeded latency
      spike in [counters] (magnitude in [1, fsync_spike_ms]) instead
      of sleeping — virtual-time harnesses poll the counters for
      pressure.
    - {b persistent write stall}: past the k-th mutation every
      mutating call ([pwrite]/[fsync]/[rename]) raises
      {!Backend.Stalled} until {!heal_stall} — a dying disk, not a
      transient error. Reads keep serving.

    All randomness comes from the caller's [Prng.Splitmix.t], so a
    fault schedule is a pure function of the seed. *)

type config = {
  eio : float;  (** probability a call raises [Eio] with no effect *)
  short_write : float;  (** probability a [pwrite] lands a prefix and raises *)
  torn_write : float;  (** probability a [pwrite] lands a prefix silently *)
  drop_fsync : float;  (** probability an [fsync] is silently skipped *)
  crash_after_writes : int option;
      (** crash on the k-th mutating call (1-based), if set *)
  space_budget : int option;
      (** initial byte budget for the ENOSPC arm ([None] = unlimited);
          adjustable at runtime with {!set_space_budget} *)
  fsync_spike : float;  (** probability an [fsync] records a latency spike *)
  fsync_spike_ms : int;  (** max spike magnitude, milliseconds *)
  stall_after_writes : int option;
      (** persistent stall from the k-th mutating call, if set *)
}

val none : config

type counters = {
  mutable torn_writes : int;
  mutable short_writes : int;
  mutable dropped_fsyncs : int;
  mutable eio_injected : int;
  mutable crashes : int;
  mutable enospc_hits : int;  (** writes refused by the byte budget *)
  mutable fsync_spikes : int;  (** fsyncs that recorded a latency spike *)
  mutable fsync_stall_ms_max : int;  (** largest spike recorded, ms *)
  mutable stalled_ops : int;  (** mutations refused while stalled *)
}

val empty_counters : unit -> counters
(** A fresh all-zero record — for harnesses that aggregate counters
    across restarts or report a no-fault baseline. *)

type t

val create : ?config:config -> rng:Prng.Splitmix.t -> Backend.t -> t
val handle : t -> Backend.t
val counters : t -> counters
val crashed : t -> bool

val stalled : t -> bool
(** Whether the persistent-stall arm is currently tripped. *)

val heal_stall : t -> unit
(** Clear a tripped stall: the disk comes back, mutations succeed
    again. The trigger does not re-arm. *)

val trigger_stall : t -> unit
(** Trip the stall arm now, as if [stall_after_writes] had just
    elapsed — lets a harness stall the disk at a chosen virtual time
    instead of a write count. {!heal_stall} clears it. *)

val set_space_budget : t -> int option -> unit
(** Replace the ENOSPC byte budget ([None] = unlimited). Lowering it
    below current usage refuses all growth until compaction frees
    space. *)

val space_budget : t -> int option
(** The budget currently in force. *)

val bytes_used : t -> int
(** Total bytes the wrapper has tracked across live files — what the
    ENOSPC arm charges against the budget. *)
