(* Durable epoch vault: a tiny two-slot counter written through
   [Backend] separately from the journal tail, so losing the journal's
   last appended bytes (torn write, dropped fsync) cannot regress the
   highest epoch the leader ever granted.

   Image layout (37 bytes):

     "EVLT" version:u8  slot0(16)  slot1(16)
     slot := epoch:u64be sum:u64be

   [sum] is FNV-1a 64 of (magic, slot index, epoch bytes) — integrity
   against torn writes, not against an adversary: the disk is trusted
   hardware in the paper's model, only failure-prone. Writes alternate
   slots and never touch the slot holding the current maximum, so any
   single torn or lost slot write leaves a valid older slot behind and
   [get] degrades monotonically instead of to garbage. *)

let magic = "EVLT"
let version = 1
let header_len = String.length magic + 1
let slot_len = 16
let default_file = "epoch_vault"

let fnv64 parts =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  List.iter
    (fun s ->
      String.iter
        (fun c ->
          h := Int64.logxor !h (Int64.of_int (Char.code c));
          h := Int64.mul !h prime)
        s)
    parts;
  !h

let u64_to_bytes v =
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (56 - (8 * i))) 0xffL)))

let u64_of_bytes s off =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[off + i]))
  done;
  !v

let slot_sum ~index epoch_bytes = fnv64 [ magic; String.make 1 (Char.chr index); epoch_bytes ]

let encode_slot ~index epoch =
  let eb = u64_to_bytes (Int64.of_int epoch) in
  eb ^ u64_to_bytes (slot_sum ~index eb)

let decode_slot ~index bytes off =
  if String.length bytes < off + slot_len then None
  else
    let eb = String.sub bytes off 8 in
    let sum = u64_of_bytes bytes (off + 8) in
    if Int64.equal sum (slot_sum ~index eb) then
      let e = u64_of_bytes eb 0 in
      if Int64.compare e 0L >= 0 && Int64.compare e (Int64.of_int max_int) <= 0
      then Some (Int64.to_int e)
      else None
    else None

type t = {
  disk : Backend.t option;
  file : string;
  mutable slots : int option array;  (* decoded epoch per slot *)
  mutable eio_retries : int;
}

let max_eio_retries = 8

let with_retry t f =
  let rec go attempt =
    try f ()
    with Backend.Eio _ when attempt < max_eio_retries ->
      t.eio_retries <- t.eio_retries + 1;
      go (attempt + 1)
  in
  go 0

let get t =
  Array.fold_left
    (fun acc s -> match s with Some e when e > acc -> e | _ -> acc)
    0 t.slots

let contents t =
  let slot i = match t.slots.(i) with Some e -> encode_slot ~index:i e | None -> String.make slot_len '\x00' in
  magic ^ String.make 1 (Char.chr version) ^ slot 0 ^ slot 1

let decode_image bytes =
  let ok_header =
    String.length bytes >= header_len
    && String.sub bytes 0 (String.length magic) = magic
    && Char.code bytes.[String.length magic] = version
  in
  if not ok_header then [| None; None |]
  else
    [|
      decode_slot ~index:0 bytes header_len;
      decode_slot ~index:1 bytes (header_len + slot_len);
    |]

let publish t =
  match t.disk with
  | None -> ()
  | Some d ->
      let bytes = contents t in
      with_retry t (fun () -> Backend.pwrite d ~file:t.file ~off:0 bytes);
      with_retry t (fun () -> Backend.fsync d ~file:t.file)

let of_bytes ?(file = default_file) ?disk bytes =
  let t = { disk; file; slots = decode_image bytes; eio_retries = 0 } in
  publish t;
  t

let create ?(file = default_file) ?disk () =
  match disk with
  | Some d -> (
      match Backend.read d ~file with
      | Some bytes when String.length bytes > 0 ->
          { disk; file; slots = decode_image bytes; eio_retries = 0 }
      | Some _ | None ->
          let t = { disk; file; slots = [| None; None |]; eio_retries = 0 } in
          publish t;
          t)
  | None -> { disk; file; slots = [| None; None |]; eio_retries = 0 }

let load ?(file = default_file) ~disk () = create ~file ~disk ()

let eio_retries t = t.eio_retries

(* Overwrite the slot NOT holding the current maximum, so a crash at
   any byte of this write leaves the previous maximum decodable. *)
let put t epoch =
  if epoch > get t then begin
    let keep =
      match (t.slots.(0), t.slots.(1)) with
      | Some a, Some b -> if a >= b then 0 else 1
      | Some _, None -> 0
      | None, (Some _ | None) -> 1
    in
    let victim = 1 - keep in
    t.slots.(victim) <- Some epoch;
    match t.disk with
    | None -> ()
    | Some d ->
        let off = header_len + (victim * slot_len) in
        let bytes = encode_slot ~index:victim epoch in
        with_retry t (fun () -> Backend.pwrite d ~file:t.file ~off bytes);
        with_retry t (fun () -> Backend.fsync d ~file:t.file)
  end
