(** Real-file backend: a directory of files driven through [Unix],
    with the explicit fsync discipline the {!Mem} model simulates.

    Each operation opens, acts, and closes — no descriptor cache, so
    the backend has no volatile state of its own beyond the kernel's
    page cache (which is exactly what [fsync] is for). [rename] is
    [Unix.rename] followed by a directory fsync, making the
    write → fsync → rename compaction idiom durable on POSIX
    filesystems.

    [Unix_error]s surface as {!Backend.Eio} so callers share one
    retry path with the fault-injecting wrapper. *)

type t

val create : dir:string -> t
(** Use [dir] as the store's root, creating it (one level) if
    missing. File names must be plain names — no path separators.
    @raise Backend.Eio if the directory cannot be created. *)

val dir : t -> string
val handle : t -> Backend.t

include Backend.S with type t := t
