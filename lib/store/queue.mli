(** Durable per-member delivery queue — an append-only, checksummed,
    truncation-tolerant binary log of store-and-forward records.

    The leader keeps one of these per offline member: traffic that
    would otherwise be dropped is [push]ed (append = [pwrite] +
    [fsync]); when the member reconnects and acknowledges drained
    records the [ack] floor advances and compaction reclaims
    everything below it. The format and write-through discipline are
    the leader journal's, so the same crash story holds: any tail
    damage costs at most the records from the damage onward, and
    {!replay} is total on arbitrary bytes.

    {2 Format}

    {v
    header  := "EDLQ" version:u8(=1)
    record  := len:u32 payload:len sum:8
    payload := fseq:u32 tag:u8 fields...
    v}

    [sum] is SipHash-2-4 of the payload under the queue's MAC key;
    [fseq] is the file-record counter (reset by compaction), distinct
    from the delivery sequence numbers carried inside [Push] records. *)

type entry = { seq : int; epoch : int; payload : string }
(** One queued message: its delivery sequence number (assigned by
    {!push}, monotone per queue, never reused), the group epoch it was
    sealed under when queued, and the opaque payload bytes. *)

type state = { next_seq : int; floor : int; pending : entry list }
(** The folded queue state: the next delivery seq to assign, the ack
    floor (every seq below it has been delivered and acknowledged),
    and the pending entries in seq order. *)

val empty_state : state

type record =
  | Push of entry  (** A message entered the queue. *)
  | Ack of { upto : int }
      (** Every seq below [upto] was delivered and acknowledged — the
          compaction floor advances. *)
  | Drop of { seq : int }
      (** One pending record was rejected (stale-epoch policy) without
          being delivered. *)
  | Snapshot of state
      (** The folded state of everything before this record. *)

val pp_record : Format.formatter -> record -> unit
val record_equal : record -> record -> bool

type status = Clean | Damaged of { valid_records : int; valid_bytes : int }

val pp_status : Format.formatter -> status -> unit

type t

val create :
  ?mac_key:string ->
  ?compact_every:int ->
  ?disk:Backend.t ->
  ?file:string ->
  ?durable:bool ->
  unit ->
  t
(** An empty queue. [mac_key] (16 bytes, default a fixed public key)
    keys the per-record SipHash checksum; [compact_every] (default
    [64]) is the record count past which mutations fold the log into a
    snapshot of the pending suffix. With [disk], every mutation is
    mirrored through the backend to [file] (default ["queue"]) before
    returning, with the journal's append/publish/EIO-retry discipline.
    [durable] (default true) is the initial state of the
    {!set_durable} switch — [false] lets a queue be created while the
    backend is refusing writes, to be re-armed later.
    @raise Invalid_argument if [mac_key] is not 16 bytes or
    [compact_every < 1]. *)

val push : t -> epoch:int -> string -> entry
(** Append one message sealed under group [epoch]; returns the entry
    with its assigned delivery seq. Durable when it returns. *)

val ack : t -> upto:int -> unit
(** Advance the ack floor to [upto] (no-op if it would regress);
    pending entries below the floor are discarded and reclaimed by the
    next compaction. *)

val drop : t -> seq:int -> unit
(** Durably reject one pending record without delivering it (the
    stale-epoch policy's reject arm). No-op if [seq] is not pending. *)

val compact : t -> unit
(** Rewrite the log as one [Snapshot] of the current state. *)

val state : t -> state
val pending : t -> entry list
(** Pending entries in delivery-seq order (O(1); maintained
    incrementally). *)

val floor : t -> int
val next_seq : t -> int
val depth : t -> int
(** [List.length (pending t)]. *)

val records : t -> int
val size : t -> int
val contents : t -> string
val eio_retries : t -> int
val file : t -> string

type event =
  | Appended of string  (** One framed record extended the image. *)
  | Published of string  (** The whole image was replaced. *)

val set_observer : t -> (event -> unit) option -> unit
(** Mutation hook, fired after the disk write-through succeeds — the
    delivery layer subscribes here to replicate queue images to the
    warm-standby managers. At most one observer; [None] unsubscribes. *)

val set_durable : t -> bool -> unit
(** Degraded-mode switch. With durability off, mutations keep evolving
    the in-memory image but nothing touches the backend — the disk
    image goes stale. Re-arm with [set_durable t true] followed by
    {!compact}, which republishes the whole image atomically. *)

val durable : t -> bool

val replay : ?mac_key:string -> string -> record list * status
(** Decode the longest valid prefix of arbitrary bytes. Total: never
    raises. *)

val state_of_records : record list -> state
(** Fold records into the state they describe. Replayed [Push]es below
    the floor or duplicating a pending seq are ignored, so replaying a
    damaged image can never resurrect an acknowledged delivery. *)

val recover :
  ?mac_key:string ->
  ?compact_every:int ->
  ?disk:Backend.t ->
  ?file:string ->
  string ->
  t * state * status
(** {!replay} the surviving bytes, fold the valid prefix, and return a
    fresh queue already compacted to a snapshot of that state. *)

val load :
  ?mac_key:string ->
  ?compact_every:int ->
  ?file:string ->
  disk:Backend.t ->
  unit ->
  t * state * status
(** {!recover} from whatever bytes the backend holds for [file]. A
    missing file recovers the empty state. *)
