(** Durable epoch vault — a monotonic counter that survives losing the
    journal's tail.

    The leader journal records group-key epoch bumps as appended
    records; a torn final write or a dropped fsync can durably lose the
    {e last} bump, making a cold-restarted leader announce an epoch one
    behind what members hold — which members rightly reject as stale,
    forcing them back onto the slow watchdog path (experiment E19b).

    The vault closes that residue: every granted epoch is also written,
    at grant time, to a fixed-size two-slot image through the same
    {!Backend}. Writes alternate slots and never touch the slot holding
    the current maximum, so any single interrupted write leaves the
    previous value intact; {!get} returns the highest slot whose
    checksum verifies. The checksum (FNV-1a 64) defends against torn
    writes, not against an adversary — the disk is failure-prone
    hardware, not a malicious party, in the paper's trust model. *)

type t

val default_file : string
(** ["epoch_vault"]. *)

val create : ?file:string -> ?disk:Backend.t -> unit -> t
(** An empty vault (epoch 0), write-through to [disk] when given. If
    the backend already holds bytes for [file] they are decoded first,
    so [create] doubles as open-or-create. *)

val load : ?file:string -> disk:Backend.t -> unit -> t
(** Decode whatever the backend holds for [file]; missing or damaged
    slots degrade to epoch 0, never an exception. *)

val of_bytes : ?file:string -> ?disk:Backend.t -> string -> t
(** Decode a raw image (e.g. the durable bytes captured at a crash) —
    total on arbitrary input — and re-publish it through [disk] when
    given. *)

val put : t -> int -> unit
(** [put t epoch] durably records [epoch] if it exceeds {!get} (the
    vault is monotonic; lower values are ignored). One [pwrite] of the
    victim slot plus one [fsync]; transient [Backend.Eio] is retried a
    bounded number of times. *)

val get : t -> int
(** The highest epoch whose slot checksum verifies; 0 for an empty or
    fully damaged vault. *)

val contents : t -> string
(** The raw image bytes. *)

val eio_retries : t -> int
(** Transient-EIO retries absorbed so far. *)
