exception Eio of string
exception Crashed of string
exception No_space of string
exception Stalled of string

module type S = sig
  type t

  val pwrite : t -> file:string -> off:int -> string -> unit
  val read : t -> file:string -> string option
  val fsync : t -> file:string -> unit
  val rename : t -> src:string -> dst:string -> unit
  val remove : t -> file:string -> unit
end

type t = {
  pwrite : file:string -> off:int -> string -> unit;
  read : file:string -> string option;
  fsync : file:string -> unit;
  rename : src:string -> dst:string -> unit;
  remove : file:string -> unit;
}

let pack (type a) (module B : S with type t = a) (h : a) =
  {
    pwrite = (fun ~file ~off data -> B.pwrite h ~file ~off data);
    read = (fun ~file -> B.read h ~file);
    fsync = (fun ~file -> B.fsync h ~file);
    rename = (fun ~src ~dst -> B.rename h ~src ~dst);
    remove = (fun ~file -> B.remove h ~file);
  }

let pwrite t ~file ~off data = t.pwrite ~file ~off data
let read t ~file = t.read ~file
let fsync t ~file = t.fsync ~file
let rename t ~src ~dst = t.rename ~src ~dst
let remove t ~file = t.remove ~file
