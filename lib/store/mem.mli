(** In-memory backend with an explicit page-cache model.

    Every file has two views: the {e volatile} content (what the
    running process reads back — every [pwrite] lands here) and the
    {e durable} content (what survives a crash — updated only by
    [fsync] and by [rename] of already-durable bytes). The split is
    what makes dropped-fsync and torn-write injection meaningful: a
    fault that skips the sync leaves the tail of the file volatile,
    and {!crash_image} shows exactly what a restarted process would
    find.

    [rename] is atomic in both views. Its durable side publishes the
    {e durable} content of [src]; bytes of [src] that were never
    fsynced do not survive the crash boundary, so a rename of an
    unsynced staging file can leave [dst] missing — the classic
    write/fsync/rename ordering bug this model is built to catch. *)

type t

val create : unit -> t
val handle : t -> Backend.t

val volatile_of : t -> string -> string option
(** What the running process sees — equals {!Backend.read}. *)

val durable_of : t -> string -> string option
(** What a crash at this instant would preserve for one file. *)

val crash_image : t -> (string * string) list
(** The full durable view: every file a restarted process would find,
    sorted by name. *)

include Backend.S with type t := t
