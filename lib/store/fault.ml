type config = {
  eio : float;
  short_write : float;
  torn_write : float;
  drop_fsync : float;
  crash_after_writes : int option;
}

let none =
  {
    eio = 0.;
    short_write = 0.;
    torn_write = 0.;
    drop_fsync = 0.;
    crash_after_writes = None;
  }

type counters = {
  mutable torn_writes : int;
  mutable short_writes : int;
  mutable dropped_fsyncs : int;
  mutable eio_injected : int;
  mutable crashes : int;
}

type t = {
  inner : Backend.t;
  config : config;
  rng : Prng.Splitmix.t;
  counters : counters;
  mutable writes_done : int;
  mutable crashed : bool;
}

let create ?(config = none) ~rng inner =
  {
    inner;
    config;
    rng;
    counters =
      {
        torn_writes = 0;
        short_writes = 0;
        dropped_fsyncs = 0;
        eio_injected = 0;
        crashes = 0;
      };
    writes_done = 0;
    crashed = false;
  }

let counters t = t.counters
let crashed t = t.crashed

let hit t p = p > 0. && Prng.Splitmix.next_float t.rng < p

let check_alive t =
  if t.crashed then raise (Backend.Crashed "store already crashed")

(* A torn boundary can fall anywhere in the record, including 0 and
   len — the extremes are where off-by-one recovery bugs live. *)
let tear_len t data =
  Prng.Splitmix.next_int t.rng (String.length data + 1)

(* Returns true when this mutating call is the crash point. *)
let crash_due t =
  match t.config.crash_after_writes with
  | None -> false
  | Some k ->
      t.writes_done <- t.writes_done + 1;
      t.writes_done >= k

let mark_crash t =
  t.crashed <- true;
  t.counters.crashes <- t.counters.crashes + 1

let pwrite t ~file ~off data =
  check_alive t;
  if crash_due t then (
    (* The dying write tears at a seeded boundary, then the process is
       gone: every later call fails. *)
    let k = tear_len t data in
    Backend.pwrite t.inner ~file ~off (String.sub data 0 k);
    mark_crash t;
    raise (Backend.Crashed (Printf.sprintf "crash during pwrite %s@%d" file off)));
  if hit t t.config.eio then (
    t.counters.eio_injected <- t.counters.eio_injected + 1;
    raise (Backend.Eio "injected transient EIO"));
  if hit t t.config.short_write then (
    let k = tear_len t data in
    Backend.pwrite t.inner ~file ~off (String.sub data 0 k);
    t.counters.short_writes <- t.counters.short_writes + 1;
    raise (Backend.Eio (Printf.sprintf "injected short write (%d/%d bytes)" k (String.length data))));
  if hit t t.config.torn_write then (
    let k = tear_len t data in
    Backend.pwrite t.inner ~file ~off (String.sub data 0 k);
    t.counters.torn_writes <- t.counters.torn_writes + 1)
  else Backend.pwrite t.inner ~file ~off data

let read t ~file =
  check_alive t;
  Backend.read t.inner ~file

let fsync t ~file =
  check_alive t;
  if hit t t.config.eio then (
    t.counters.eio_injected <- t.counters.eio_injected + 1;
    raise (Backend.Eio "injected transient EIO"));
  if hit t t.config.drop_fsync then
    t.counters.dropped_fsyncs <- t.counters.dropped_fsyncs + 1
  else Backend.fsync t.inner ~file

let rename t ~src ~dst =
  check_alive t;
  if crash_due t then (
    (* Crash before the rename is applied: [dst] keeps its old
       durable content, [src] is left staged. *)
    mark_crash t;
    raise (Backend.Crashed (Printf.sprintf "crash before rename %s -> %s" src dst)));
  if hit t t.config.eio then (
    t.counters.eio_injected <- t.counters.eio_injected + 1;
    raise (Backend.Eio "injected transient EIO"));
  Backend.rename t.inner ~src ~dst

let remove t ~file =
  check_alive t;
  Backend.remove t.inner ~file

let handle t = Backend.pack (module struct
  type nonrec t = t

  let pwrite = pwrite
  let read = read
  let fsync = fsync
  let rename = rename
  let remove = remove
end) t
