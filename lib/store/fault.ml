type config = {
  eio : float;
  short_write : float;
  torn_write : float;
  drop_fsync : float;
  crash_after_writes : int option;
  space_budget : int option;
  fsync_spike : float;
  fsync_spike_ms : int;
  stall_after_writes : int option;
}

let none =
  {
    eio = 0.;
    short_write = 0.;
    torn_write = 0.;
    drop_fsync = 0.;
    crash_after_writes = None;
    space_budget = None;
    fsync_spike = 0.;
    fsync_spike_ms = 0;
    stall_after_writes = None;
  }

type counters = {
  mutable torn_writes : int;
  mutable short_writes : int;
  mutable dropped_fsyncs : int;
  mutable eio_injected : int;
  mutable crashes : int;
  mutable enospc_hits : int;
  mutable fsync_spikes : int;
  mutable fsync_stall_ms_max : int;
  mutable stalled_ops : int;
}

let empty_counters () =
  {
    torn_writes = 0;
    short_writes = 0;
    dropped_fsyncs = 0;
    eio_injected = 0;
    crashes = 0;
    enospc_hits = 0;
    fsync_spikes = 0;
    fsync_stall_ms_max = 0;
    stalled_ops = 0;
  }

type t = {
  inner : Backend.t;
  config : config;
  rng : Prng.Splitmix.t;
  counters : counters;
  mutable writes_done : int;
  mutable crashed : bool;
  (* The ENOSPC arm models the device's own allocation: the wrapper
     tracks every file's size as it forwards mutations, so the budget
     check sees exactly what compaction frees. *)
  sizes : (string, int) Hashtbl.t;
  mutable space_budget : int option;
  mutable stalled : bool;
}

let create ?(config = none) ~rng inner =
  {
    inner;
    config;
    rng;
    counters = empty_counters ();
    writes_done = 0;
    crashed = false;
    sizes = Hashtbl.create 8;
    space_budget = config.space_budget;
    stalled = false;
  }

let counters t = t.counters
let crashed t = t.crashed
let stalled t = t.stalled
let set_space_budget t b = t.space_budget <- b
let space_budget t = t.space_budget
let heal_stall t = t.stalled <- false
let trigger_stall t = t.stalled <- true

let bytes_used t = Hashtbl.fold (fun _ n acc -> acc + n) t.sizes 0

let size_of t file = Option.value ~default:0 (Hashtbl.find_opt t.sizes file)

let note_write t file ~off ~len =
  if len > 0 then
    Hashtbl.replace t.sizes file (max (size_of t file) (off + len))

let hit t p = p > 0. && Prng.Splitmix.next_float t.rng < p

let check_alive t =
  if t.crashed then raise (Backend.Crashed "store already crashed")

(* A torn boundary can fall anywhere in the record, including 0 and
   len — the extremes are where off-by-one recovery bugs live. *)
let tear_len t data =
  Prng.Splitmix.next_int t.rng (String.length data + 1)

(* Returns true when this mutating call is the crash point. *)
let crash_due t =
  match t.config.crash_after_writes with
  | None -> false
  | Some k ->
      t.writes_done <- t.writes_done + 1;
      t.writes_done >= k

(* The stall arm is persistent, not probabilistic: past the k-th
   mutation every mutating call fails until {!heal_stall}. It shares
   the mutation count {!crash_due} advances; when only the stall arm
   is configured it advances the count itself. *)
let check_stall t =
  (match t.config.stall_after_writes with
  | Some k when not t.stalled ->
      if t.config.crash_after_writes = None then
        t.writes_done <- t.writes_done + 1;
      if t.writes_done >= k then t.stalled <- true
  | _ -> ());
  if t.stalled then (
    t.counters.stalled_ops <- t.counters.stalled_ops + 1;
    raise (Backend.Stalled "injected persistent write stall"))

(* ENOSPC with no partial effect: a write that would push usage past
   the budget fails whole. (Real disks can land a prefix first; the
   torn-write arm covers that shape independently.) *)
let check_space t file ~off ~len =
  match t.space_budget with
  | None -> ()
  | Some budget ->
      let growth = max 0 (off + len - size_of t file) in
      if growth > 0 && bytes_used t + growth > budget then (
        t.counters.enospc_hits <- t.counters.enospc_hits + 1;
        raise
          (Backend.No_space
             (Printf.sprintf "injected ENOSPC (%d used + %d > %d budget)"
                (bytes_used t) growth budget)))

let mark_crash t =
  t.crashed <- true;
  t.counters.crashes <- t.counters.crashes + 1

let pwrite t ~file ~off data =
  check_alive t;
  if crash_due t then (
    (* The dying write tears at a seeded boundary, then the process is
       gone: every later call fails. *)
    let k = tear_len t data in
    Backend.pwrite t.inner ~file ~off (String.sub data 0 k);
    note_write t file ~off ~len:k;
    mark_crash t;
    raise (Backend.Crashed (Printf.sprintf "crash during pwrite %s@%d" file off)));
  check_stall t;
  check_space t file ~off ~len:(String.length data);
  if hit t t.config.eio then (
    t.counters.eio_injected <- t.counters.eio_injected + 1;
    raise (Backend.Eio "injected transient EIO"));
  if hit t t.config.short_write then (
    let k = tear_len t data in
    Backend.pwrite t.inner ~file ~off (String.sub data 0 k);
    note_write t file ~off ~len:k;
    t.counters.short_writes <- t.counters.short_writes + 1;
    raise (Backend.Eio (Printf.sprintf "injected short write (%d/%d bytes)" k (String.length data))));
  if hit t t.config.torn_write then (
    let k = tear_len t data in
    Backend.pwrite t.inner ~file ~off (String.sub data 0 k);
    note_write t file ~off ~len:k;
    t.counters.torn_writes <- t.counters.torn_writes + 1)
  else (
    Backend.pwrite t.inner ~file ~off data;
    note_write t file ~off ~len:(String.length data))

let read t ~file =
  check_alive t;
  Backend.read t.inner ~file

let fsync t ~file =
  check_alive t;
  check_stall t;
  if hit t t.config.fsync_spike then (
    (* A latency spike is recorded, not slept: virtual-time harnesses
       poll [counters] for pressure rather than blocking the run. *)
    let ms = 1 + Prng.Splitmix.next_int t.rng (max 1 t.config.fsync_spike_ms) in
    t.counters.fsync_spikes <- t.counters.fsync_spikes + 1;
    t.counters.fsync_stall_ms_max <- max t.counters.fsync_stall_ms_max ms);
  if hit t t.config.eio then (
    t.counters.eio_injected <- t.counters.eio_injected + 1;
    raise (Backend.Eio "injected transient EIO"));
  if hit t t.config.drop_fsync then
    t.counters.dropped_fsyncs <- t.counters.dropped_fsyncs + 1
  else Backend.fsync t.inner ~file

let rename t ~src ~dst =
  check_alive t;
  if crash_due t then (
    (* Crash before the rename is applied: [dst] keeps its old
       durable content, [src] is left staged. *)
    mark_crash t;
    raise (Backend.Crashed (Printf.sprintf "crash before rename %s -> %s" src dst)));
  check_stall t;
  if hit t t.config.eio then (
    t.counters.eio_injected <- t.counters.eio_injected + 1;
    raise (Backend.Eio "injected transient EIO"));
  Backend.rename t.inner ~src ~dst;
  Hashtbl.replace t.sizes dst (size_of t src);
  Hashtbl.remove t.sizes src

let remove t ~file =
  check_alive t;
  Backend.remove t.inner ~file;
  Hashtbl.remove t.sizes file

let handle t = Backend.pack (module struct
  type nonrec t = t

  let pwrite = pwrite
  let read = read
  let fsync = fsync
  let rename = rename
  let remove = remove
end) t
