(** Legacy-protocol group member (§2.2) — the baseline the paper
    attacks. Its weaknesses are preserved deliberately:

    - The pre-authentication exchange ([ReqOpen] / [AckOpen] /
      [ConnectionDenied]) is plaintext and unauthenticated: a forged
      [ConnectionDenied] aborts a legitimate join (attack {b A1}).
    - [NewKey] messages carry no freshness evidence: a replayed old
      key-distribution message sealed under this member's session key
      is accepted and silently reverts the group key (attack {b A3}).
    - [MemJoined] / [MemRemoved] are sealed only under the shared group
      key, which every member holds, so any insider can forge
      membership events (attack {b A2}).
    - [CloseConnection] and the leader-bound [LegacyReqClose] are
      plaintext, so connections can be torn down by anyone (attack
      {b A4}, the "variation ... used to expel members" gone wrong).

    The state machine: [NotConnected] → [WaitingAckOpen] →
    [WaitingAuth2 N1] → [Connected], with [Denied] as an abort state
    for the pre-auth exchange. *)

type t

type event =
  | Joined of { session_key : Sym_crypto.Key.t }
  | Join_denied  (** Received [ConnectionDenied] — possibly forged. *)
  | Group_key_updated of int  (** New (or replayed!) key, with epoch. *)
  | View_member_added of Types.agent
  | View_member_removed of Types.agent
  | App_received of { author : Types.agent; body : string }
  | Left
  | Rejected of { label : Wire.Frame.label option; reason : Types.reject_reason }

val pp_event : Format.formatter -> event -> unit

type state_view =
  | Not_connected
  | Waiting_ack_open
  | Waiting_auth2 of Wire.Nonce.t
  | Connected of Sym_crypto.Key.t
  | Denied

val create :
  self:Types.agent -> leader:Types.agent -> password:string ->
  rng:Prng.Splitmix.t -> t

val self : t -> Types.agent
val state : t -> state_view
val is_connected : t -> bool

val join : t -> Wire.Frame.t list
(** Start the pre-auth exchange ([ReqOpen]). Also restarts from
    [Denied]. *)

val leave : t -> Wire.Frame.t list
(** Send the plaintext [LegacyReqClose]; the member stays connected
    until the leader's [CloseConnection] arrives. *)

val receive : t -> string -> Wire.Frame.t list
val send_app : t -> string -> Wire.Frame.t list

val group_key : t -> Types.group_key option
(** The member's current group key and epoch — watch this revert under
    attack A3. *)

val group_view : t -> Types.agent list
(** Membership belief — watch it corrupt under attack A2. *)

val app_log : t -> (Types.agent * string) list
val drain_events : t -> event list
val session_key : t -> Sym_crypto.Key.t option
