(* ALICE-style crash-consistency matrix for the durable journal.

   A deterministic workload (session establishments, closes including
   a close-then-re-establish, epoch bumps, enough records to force
   several compactions) runs against a journal whose disk is a
   {!Store.Crashpoint.recorder}. Every backend operation the journal
   performs is logged; {!Store.Crashpoint.enumerate} then produces
   every disk image a crash could leave behind — durable and volatile
   views at every operation boundary plus torn-write variants — and
   each image is fed back through [Journal.replay] and
   [Leader.recover].

   Three invariants are asserted over EVERY image:

   - totality: neither replay nor leader recovery ever raises;
   - non-resurrection: a session whose last journalled event is a
     close never reappears in the recovered state (re-establishment
     after a close is of course legitimate);
   - epoch monotonicity: the recovered [next_epoch] dominates every
     epoch mentioned in the surviving records, and across boundaries
     in time order the durable epoch floor never moves backward.

   A fourth, durability, is asserted at every journal-API checkpoint:
   once a mutation has returned (its fsync completed), the durable
   image at that boundary replays Clean to exactly the live state —
   nothing acknowledged is ever lost. *)

module CP = Store.Crashpoint

type violation = { image : string; invariant : string; detail : string }

let pp_violation ppf v =
  Format.fprintf ppf "[%s] %s: %s" v.invariant v.image v.detail

type report = {
  ops : int;  (** backend operations the workload performed *)
  boundaries : int;  (** crash boundaries enumerated (ops + 1) *)
  images : int;  (** disk images checked *)
  unique_images : int;  (** distinct disk states among them *)
  clean : int;  (** images whose journal replayed [Clean] *)
  damaged : int;  (** images recovered as a valid strict prefix *)
  checkpoints : int;  (** durability checkpoints verified *)
  violations : violation list;
}

let pp_report ppf r =
  Format.fprintf ppf
    "crash-matrix: %d ops, %d boundaries, %d images (%d distinct): %d clean, \
     %d damaged, %d durability checkpoints, %d violations"
    r.ops r.boundaries r.images r.unique_images r.clean r.damaged r.checkpoints
    (List.length r.violations)

let key_of rng =
  String.init Sym_crypto.Key.size (fun _ ->
      Char.chr (Prng.Splitmix.next_int rng 256))

(* Ground truth for the resurrection check: fold the replayed records
   independently of [Journal.state_of_records], keeping only the LAST
   event per member. *)
let alive_per_records records =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match r with
      | Journal.Session_established { member; _ } ->
          Hashtbl.replace tbl member true
      | Journal.Session_closed { member } -> Hashtbl.replace tbl member false
      | Journal.Epoch_bump _ -> ()
      | Journal.Snapshot s ->
          Hashtbl.reset tbl;
          List.iter (fun (m, _) -> Hashtbl.replace tbl m true) s.Journal.sessions)
    records;
  Hashtbl.fold (fun m alive acc -> if alive then m :: acc else acc) tbl []
  |> List.sort String.compare

let max_epoch_mentioned records =
  List.fold_left
    (fun acc r ->
      match r with
      | Journal.Epoch_bump { epoch; _ } -> max acc epoch
      | Journal.Snapshot s ->
          let e =
            match s.Journal.group_key with Some (_, e) -> e | None -> 0
          in
          max acc (max e (s.Journal.next_epoch - 1))
      | _ -> acc)
    0 records

let run ?(members = 4) ?(appends = 24) ?(compact_every = 8) ?(seed = 11L)
    ?(torn = true) () =
  let rng = Prng.Splitmix.create seed in
  let directory =
    List.init members (fun i ->
        let name = Printf.sprintf "m%d" i in
        (name, name ^ "-pw"))
  in
  let mem = Store.Mem.create () in
  let rec_ = CP.recorder mem in
  let disk = CP.handle rec_ in
  let j = Journal.create ~compact_every ~disk () in
  (* Durability checkpoints: after each journal mutation returns, the
     ops performed so far and the state the journal acknowledged. *)
  let checkpoints = ref [] in
  let mark () =
    checkpoints :=
      (List.length (CP.ops rec_), Journal.state j, Journal.contents j)
      :: !checkpoints
  in
  mark ();
  let epoch = ref 0 in
  let bump () =
    incr epoch;
    Journal.append j (Journal.Epoch_bump { key = key_of rng; epoch = !epoch });
    mark ()
  in
  let establish m =
    Journal.append j (Journal.Session_established { member = m; key = key_of rng });
    mark ()
  in
  let close m =
    Journal.append j (Journal.Session_closed { member = m });
    mark ()
  in
  (* The workload. [m1] closes and re-establishes (resurrection must be
     allowed through the front door); [m2] closes and stays closed
     (resurrection through recovery is the bug we hunt). *)
  List.iter (fun (m, _) -> establish m) directory;
  bump ();
  if members > 1 then close "m1";
  bump ();
  if members > 1 then establish "m1";
  if members > 2 then close "m2";
  for _ = 1 to appends do
    bump ()
  done;
  let ops = CP.ops rec_ in
  let images = CP.enumerate ~torn ops in
  let violations = ref [] in
  let flag image invariant detail = violations := { image; invariant; detail } :: !violations in
  let clean = ref 0 and damaged = ref 0 in
  let check_image (img : CP.image) =
    let bytes =
      Option.value ~default:"" (List.assoc_opt (Journal.file j) img.CP.files)
    in
    match Journal.replay bytes with
    | exception e ->
        flag img.CP.label "replay-total"
          (Printf.sprintf "replay raised %s" (Printexc.to_string e))
    | records, status ->
        (match status with
        | Journal.Clean -> incr clean
        | Journal.Damaged _ -> incr damaged);
        let state = Journal.state_of_records records in
        (* Non-resurrection: the recovered session set must match the
           last-event-wins fold — in particular a member whose last
           record is a close must be absent. *)
        let expect = alive_per_records records in
        let got = List.map fst state.Journal.sessions in
        if got <> expect then
          flag img.CP.label "non-resurrection"
            (Printf.sprintf "recovered sessions [%s], last-event fold says [%s]"
               (String.concat ", " got)
               (String.concat ", " expect));
        (* Epoch monotonicity within the image. *)
        let floor = max_epoch_mentioned records in
        if state.Journal.next_epoch <= floor then
          flag img.CP.label "epoch-monotone"
            (Printf.sprintf "next_epoch %d does not clear max journalled epoch %d"
               state.Journal.next_epoch floor);
        (match state.Journal.group_key with
        | Some (_, e) when e >= state.Journal.next_epoch ->
            flag img.CP.label "epoch-monotone"
              (Printf.sprintf "group epoch %d >= next_epoch %d" e
                 state.Journal.next_epoch)
        | _ -> ());
        (* Leader recovery must accept every image: rebuild and check
           it challenges exactly the journalled sessions. *)
        (match
           let j', state', _ = Journal.recover bytes in
           let lrng = Prng.Splitmix.create (Int64.add seed 1L) in
           Leader.recover ~self:"leader" ~rng:lrng ~directory ~journal:j'
             ~state:state' ()
         with
        | exception e ->
            flag img.CP.label "recover-total"
              (Printf.sprintf "Leader.recover raised %s" (Printexc.to_string e))
        | _, frames ->
            let n = List.length state.Journal.sessions in
            if List.length frames <> n then
              flag img.CP.label "recover-total"
                (Printf.sprintf "%d recovery challenges for %d sessions"
                   (List.length frames) n))
  in
  List.iter check_image images;
  (* Durability lower bound: at every acknowledged checkpoint the
     durable image replays Clean to the acknowledged bytes. *)
  let cps = List.rev !checkpoints in
  List.iter
    (fun (boundary, state, bytes) ->
      let label = Printf.sprintf "checkpoint at boundary %d" boundary in
      let durable =
        Option.value ~default:""
          (List.assoc_opt (Journal.file j) (CP.durable_at ops boundary))
      in
      if durable <> bytes then
        flag label "durability"
          (Printf.sprintf "durable image (%d bytes) != acknowledged journal (%d bytes)"
             (String.length durable) (String.length bytes))
      else
        match Journal.replay durable with
        | _, Journal.Damaged _ ->
            flag label "durability" "acknowledged journal replays damaged"
        | records, Journal.Clean ->
            let got = Journal.state_of_records records in
            if got <> state then
              flag label "durability"
                "replayed state differs from acknowledged state")
    cps;
  (* Epoch floor across time: walking the boundaries in order, the
     durable next_epoch never decreases. *)
  let n_ops = List.length ops in
  let last_floor = ref 0 in
  for b = 0 to n_ops do
    let durable =
      Option.value ~default:""
        (List.assoc_opt (Journal.file j) (CP.durable_at ops b))
    in
    let records, _ = Journal.replay durable in
    let e = (Journal.state_of_records records).Journal.next_epoch in
    if e < !last_floor then
      flag
        (Printf.sprintf "boundary %d: durable" b)
        "epoch-monotone"
        (Printf.sprintf "durable epoch floor regressed %d -> %d" !last_floor e);
    last_floor := max !last_floor e
  done;
  {
    ops = n_ops;
    boundaries = n_ops + 1;
    images = List.length images;
    unique_images = CP.dedup_count images;
    clean = !clean;
    damaged = !damaged;
    checkpoints = List.length cps;
    violations = List.rev !violations;
  }

(* The same matrix over a store-and-forward delivery queue: a workload
   of pushes (across several epochs), cumulative acks, policy drops and
   forced compactions runs against a crash-point recorder, and every
   enumerable crash image is replayed. Beyond totality, the two
   delivery-specific invariants:

   - no duplicate-after-replay: the recovered pending set never holds
     one delivery seq twice, out of order, or below the ack floor —
     replaying any crash image of the queue file cannot make a drain
     deliver an entry twice (the at-least-once story is the in-memory
     redelivery path, not file corruption);
   - no acknowledged-then-lost: at every checkpoint where a queue
     mutation has returned, the durable image replays Clean to exactly
     the acknowledged state — an acked floor or a pushed entry, once
     confirmed, survives any subsequent crash;

   plus floor monotonicity across boundaries in time order. *)
let run_queue ?(pushes = 18) ?(compact_every = 6) ?(seed = 12L) ?(torn = true)
    () =
  let rng = Prng.Splitmix.create seed in
  let mem = Store.Mem.create () in
  let rec_ = CP.recorder mem in
  let disk = CP.handle rec_ in
  let q = Store.Queue.create ~compact_every ~disk ~file:"queue-m1" () in
  let checkpoints = ref [] in
  let mark () =
    checkpoints :=
      (List.length (CP.ops rec_), Store.Queue.state q, Store.Queue.contents q)
      :: !checkpoints
  in
  mark ();
  (* The workload: pushes spread over epochs, a mid-stream cumulative
     ack, one policy drop, more pushes (forcing compactions past the
     ack floor), a final ack. *)
  let payload i = Printf.sprintf "payload-%d-%d" i (Prng.Splitmix.next_int rng 1000) in
  let pushed = ref [] in
  for i = 1 to pushes do
    let e = Store.Queue.push q ~epoch:(i / 4) (payload i) in
    pushed := e :: !pushed;
    mark ();
    if i = pushes / 3 then begin
      Store.Queue.ack q ~upto:(e.Store.Queue.seq - 1);
      mark ()
    end;
    if i = pushes / 2 then begin
      Store.Queue.drop q ~seq:e.Store.Queue.seq;
      mark ()
    end
  done;
  Store.Queue.ack q ~upto:(Store.Queue.next_seq q - 2);
  mark ();
  let ops = CP.ops rec_ in
  let images = CP.enumerate ~torn ops in
  let violations = ref [] in
  let flag image invariant detail =
    violations := { image; invariant; detail } :: !violations
  in
  let clean = ref 0 and damaged = ref 0 in
  let check_image (img : CP.image) =
    let bytes =
      Option.value ~default:""
        (List.assoc_opt (Store.Queue.file q) img.CP.files)
    in
    match Store.Queue.replay bytes with
    | exception e ->
        flag img.CP.label "replay-total"
          (Printf.sprintf "queue replay raised %s" (Printexc.to_string e))
    | records, status -> (
        (match status with
        | Store.Queue.Clean -> incr clean
        | Store.Queue.Damaged _ -> incr damaged);
        let state = Store.Queue.state_of_records records in
        (* No duplicate-after-replay: pending seqs strictly increasing,
           none below the floor, none at or past next_seq. *)
        let rec walk last = function
          | [] -> ()
          | (e : Store.Queue.entry) :: rest ->
              if e.Store.Queue.seq <= last then
                flag img.CP.label "no-duplicate"
                  (Printf.sprintf "pending seq %d repeats or regresses after %d"
                     e.Store.Queue.seq last);
              if e.Store.Queue.seq < state.Store.Queue.floor then
                flag img.CP.label "no-duplicate"
                  (Printf.sprintf "pending seq %d below ack floor %d"
                     e.Store.Queue.seq state.Store.Queue.floor);
              if e.Store.Queue.seq >= state.Store.Queue.next_seq then
                flag img.CP.label "no-duplicate"
                  (Printf.sprintf "pending seq %d at or past next_seq %d"
                     e.Store.Queue.seq state.Store.Queue.next_seq);
              walk e.Store.Queue.seq rest
        in
        walk (-1) state.Store.Queue.pending;
        (* Recovery must accept the image too. *)
        match Store.Queue.recover bytes with
        | exception e ->
            flag img.CP.label "recover-total"
              (Printf.sprintf "queue recover raised %s" (Printexc.to_string e))
        | q', state', _ ->
            if Store.Queue.state q' <> state' then
              flag img.CP.label "recover-total"
                "recovered queue state differs from replayed fold")
  in
  List.iter check_image images;
  (* No acknowledged-then-lost: at every acknowledged checkpoint the
     durable image replays Clean to the acknowledged state. *)
  let cps = List.rev !checkpoints in
  List.iter
    (fun (boundary, state, bytes) ->
      let label = Printf.sprintf "queue checkpoint at boundary %d" boundary in
      let durable =
        Option.value ~default:""
          (List.assoc_opt (Store.Queue.file q) (CP.durable_at ops boundary))
      in
      if durable <> bytes then
        flag label "durability"
          (Printf.sprintf
             "durable image (%d bytes) != acknowledged queue (%d bytes)"
             (String.length durable) (String.length bytes))
      else
        match Store.Queue.replay durable with
        | _, Store.Queue.Damaged _ ->
            flag label "durability" "acknowledged queue replays damaged"
        | records, Store.Queue.Clean ->
            let got = Store.Queue.state_of_records records in
            if got <> state then
              flag label "durability"
                "replayed queue state differs from acknowledged state")
    cps;
  (* Ack-floor monotonicity across boundaries in time order. *)
  let n_ops = List.length ops in
  let last_floor = ref 0 in
  for b = 0 to n_ops do
    let durable =
      Option.value ~default:""
        (List.assoc_opt (Store.Queue.file q) (CP.durable_at ops b))
    in
    let records, _ = Store.Queue.replay durable in
    let f = (Store.Queue.state_of_records records).Store.Queue.floor in
    if f < !last_floor then
      flag
        (Printf.sprintf "boundary %d: durable" b)
        "floor-monotone"
        (Printf.sprintf "durable ack floor regressed %d -> %d" !last_floor f);
    last_floor := max !last_floor f
  done;
  ignore !pushed;
  {
    ops = n_ops;
    boundaries = n_ops + 1;
    images = List.length images;
    unique_images = CP.dedup_count images;
    clean = !clean;
    damaged = !damaged;
    checkpoints = List.length cps;
    violations = List.rev !violations;
  }

(* The queue matrix composed with the resource-fault layer: the same
   crash-point enumeration, but the workload crosses an ENOSPC window
   mid-stream. The fault wrapper sits between the delivery layer and
   the recorder, so refused writes never reach the op log — the
   enumerated images are exactly the states the DISK could be left in,
   including the stale-but-valid image the disarmed mirror preserves
   through the degraded window and the re-arm snapshot that replaces
   it. *)
let run_degraded ?(pushes = 20) ?(compact_every = 64) ?(seed = 13L)
    ?(torn = true) () =
  let rng = Prng.Splitmix.create seed in
  let mem = Store.Mem.create () in
  let rec_ = CP.recorder mem in
  let fault = Store.Fault.create ~rng:(Prng.Splitmix.split rng) (CP.handle rec_) in
  let disk = Store.Fault.handle fault in
  let member = "m1" in
  let file = Delivery.file_of_member member in
  let d =
    Delivery.create
      ~budgets:{ Delivery.per_member_bytes = Some 220; global_bytes = None }
      ~compact_every ~disk ()
  in
  let gk i = Wire.Admin.New_group_key { key = key_of rng; epoch = i } in
  (* Checkpoints only where the mirror is armed and clean: inside the
     degraded window the durable image lags memory by design, so
     durability is only promised at armed boundaries. *)
  let checkpoints = ref [] in
  let mark () =
    if not (Delivery.dirty d) then
      checkpoints :=
        ( List.length (CP.ops rec_),
          List.assoc_opt file (Delivery.files d) )
        :: !checkpoints
  in
  mark ();
  let squeeze_at = pushes / 3 and release_at = 2 * pushes / 3 in
  for i = 1 to pushes do
    if i = squeeze_at then
      Store.Fault.set_space_budget fault
        (Some (Store.Fault.bytes_used fault + 30));
    if i = release_at then begin
      Store.Fault.set_space_budget fault None;
      ignore (Delivery.flush d)
    end;
    Delivery.enqueue d ~member ~epoch:(i / 4) (gk (i / 4));
    mark ()
  done;
  Store.Fault.set_space_budget fault None;
  let flushed = Delivery.flush d in
  mark ();
  let ops = CP.ops rec_ in
  let images = CP.enumerate ~torn ops in
  let violations = ref [] in
  let flag image invariant detail =
    violations := { image; invariant; detail } :: !violations
  in
  if not flushed then
    flag "final" "rearm" "flush failed with the budget released";
  if (Delivery.counters d).Delivery.records_shed = 0 then
    flag "final" "workload" "the ENOSPC window shed nothing — matrix is vacuous";
  let clean = ref 0 and damaged = ref 0 in
  let check_image (img : CP.image) =
    let bytes = Option.value ~default:"" (List.assoc_opt file img.CP.files) in
    match Store.Queue.replay bytes with
    | exception e ->
        flag img.CP.label "replay-total"
          (Printf.sprintf "queue replay raised %s" (Printexc.to_string e))
    | records, status -> (
        (match status with
        | Store.Queue.Clean -> incr clean
        | Store.Queue.Damaged _ -> incr damaged);
        let state = Store.Queue.state_of_records records in
        let rec walk last = function
          | [] -> ()
          | (e : Store.Queue.entry) :: rest ->
              if e.Store.Queue.seq <= last then
                flag img.CP.label "no-duplicate"
                  (Printf.sprintf "pending seq %d repeats or regresses after %d"
                     e.Store.Queue.seq last);
              if e.Store.Queue.seq < state.Store.Queue.floor then
                flag img.CP.label "no-duplicate"
                  (Printf.sprintf "pending seq %d below ack floor %d"
                     e.Store.Queue.seq state.Store.Queue.floor);
              walk e.Store.Queue.seq rest
        in
        walk (-1) state.Store.Queue.pending;
        match Store.Queue.recover bytes with
        | exception e ->
            flag img.CP.label "recover-total"
              (Printf.sprintf "queue recover raised %s" (Printexc.to_string e))
        | q', state', _ ->
            if Store.Queue.state q' <> state' then
              flag img.CP.label "recover-total"
                "recovered queue state differs from replayed fold")
  in
  List.iter check_image images;
  (* Durability at armed checkpoints: the durable image replays Clean
     to exactly the acknowledged image. *)
  let cps = List.rev !checkpoints in
  List.iter
    (fun (boundary, live) ->
      let label =
        Printf.sprintf "degraded checkpoint at boundary %d" boundary
      in
      let durable =
        Option.value ~default:""
          (List.assoc_opt file (CP.durable_at ops boundary))
      in
      let live = Option.value ~default:"" live in
      if durable <> live then
        flag label "durability"
          (Printf.sprintf "durable image (%d bytes) != armed live image (%d bytes)"
             (String.length durable) (String.length live))
      else if String.length durable > 0 then
        match Store.Queue.replay durable with
        | _, Store.Queue.Damaged _ ->
            flag label "durability" "armed image replays damaged"
        | _, Store.Queue.Clean -> ())
    cps;
  (* No shed-seq resurrection: the final durable image replays to
     exactly the live post-flush state, whose pending set excludes
     every shed record. *)
  let final_durable =
    Option.value ~default:""
      (List.assoc_opt file (CP.durable_at ops (List.length ops)))
  in
  let final_live = Option.value ~default:"" (List.assoc_opt file (Delivery.files d)) in
  let st_of b = Store.Queue.state_of_records (fst (Store.Queue.replay b)) in
  if st_of final_durable <> st_of final_live then
    flag "final" "no-resurrection"
      "final durable image does not replay to the post-flush live state";
  {
    ops = List.length ops;
    boundaries = List.length ops + 1;
    images = List.length images;
    unique_images = CP.dedup_count images;
    clean = !clean;
    damaged = !damaged;
    checkpoints = List.length cps;
    violations = List.rev !violations;
  }
