open Sym_crypto
module F = Wire.Frame
module P = Wire.Payload

type policy = { rekey_on_join : bool; rekey_on_leave : bool; degrade : bool }

let default_policy =
  { rekey_on_join = true; rekey_on_leave = true; degrade = true }

(* The degraded-mode ladder: one-way down within a pressure episode,
   recovered to [Healthy] in one step by {!try_rearm} once the store
   accepts writes again. The rungs order by severity; [Shedding] (the
   byte budgets actively dropping queued records) is the lowest. *)
type mode = Healthy | Durability_degraded | Memory_only | Shedding

let mode_rank = function
  | Healthy -> 0
  | Durability_degraded -> 1
  | Memory_only -> 2
  | Shedding -> 3

let mode_name = function
  | Healthy -> "healthy"
  | Durability_degraded -> "durability-degraded"
  | Memory_only -> "memory-only"
  | Shedding -> "shedding"

type event =
  | Member_authenticated of Types.agent
  | Member_closed of { member : Types.agent; session_key : Key.t }
  | Member_expelled of { member : Types.agent; session_key : Key.t }
  | Ack_received of Types.agent
  | App_relayed of { author : Types.agent }
  | Member_recovered of Types.agent
  | Cold_restart_acked of Types.agent
  | Resync_served of Types.agent
  | Rejected of {
      label : F.label option;
      claimed : Types.agent option;
      reason : Types.reject_reason;
    }

let pp_event fmt = function
  | Member_authenticated who -> Format.fprintf fmt "MemberAuthenticated(%s)" who
  | Member_closed { member; _ } -> Format.fprintf fmt "MemberClosed(%s)" member
  | Member_expelled { member; _ } -> Format.fprintf fmt "MemberExpelled(%s)" member
  | Ack_received who -> Format.fprintf fmt "AckReceived(%s)" who
  | App_relayed { author } -> Format.fprintf fmt "AppRelayed(%s)" author
  | Member_recovered who -> Format.fprintf fmt "MemberRecovered(%s)" who
  | Cold_restart_acked who -> Format.fprintf fmt "ColdRestartAcked(%s)" who
  | Resync_served who -> Format.fprintf fmt "ResyncServed(%s)" who
  | Rejected { label; claimed; reason } ->
      Format.fprintf fmt "Rejected(%s, %s, %a)"
        (match label with Some l -> F.label_to_string l | None -> "?")
        (Option.value claimed ~default:"?")
        Types.pp_reject_reason reason

type mstate =
  | S_not_connected
  | S_waiting_for_key_ack of {
      nl : Wire.Nonce.t;
      ka : Key.t;
      init_n1 : Wire.Nonce.t;  (* the N1 this handshake answers *)
      reply : F.t;  (* stored AuthKeyDist, resent on duplicate requests *)
    }
  | S_connected of { na : Wire.Nonce.t; ka : Key.t }
  | S_waiting_for_ack of {
      nl : Wire.Nonce.t;
      ka : Key.t;
      reply : F.t;  (* the outstanding AdminMsg, re-sent on timeout *)
    }
  | S_recovering of {
      nc : Wire.Nonce.t;
      ka : Key.t;  (* journalled, not yet trusted *)
      reply : F.t;  (* the outstanding RecoveryChallenge *)
    }

type session_view =
  | Not_connected
  | Waiting_for_key_ack of Wire.Nonce.t * Key.t
  | Connected of Wire.Nonce.t * Key.t
  | Waiting_for_ack of Wire.Nonce.t * Key.t
  | Recovering of Wire.Nonce.t * Key.t

type session = {
  mutable mstate : mstate;
  mutable queue : Wire.Admin.t list;  (* pending, oldest first *)
  mutable sent_rev : Wire.Admin.t list;  (* snd_A, newest first *)
}

type t = {
  self : Types.agent;
  rng : Prng.Splitmix.t;
  directory : (Types.agent, Key.t) Hashtbl.t;
  sessions : (Types.agent, session) Hashtbl.t;
  policy : policy;
  journal : Journal.t option;
  vault : Store.Vault.t option;
  mutable group_key : Types.group_key option;
  mutable next_epoch : int;
  mutable events_rev : event list;
  mutable recoveries : int;
  mutable resyncs : int;
  (* Cold-restart beacon state: [Some epoch] marks this incarnation as
     cold-restarted (the only incarnation that answers beacon
     challenges); [cold_nb] holds the fresh nonce each beacon carried. *)
  mutable beacon_epoch : int option;
  cold_nb : (Types.agent, Wire.Nonce.t) Hashtbl.t;
  mutable cold_acks : int;
  (* Store-and-forward: members currently marked offline (evicted as
     silent or known-partitioned) have broadcast traffic journalled in
     [delivery] instead of dropped. *)
  delivery : Delivery.t option;
  offline : (Types.agent, unit) Hashtbl.t;
  (* Online intrusion containment: the sentinel scores misbehaviour
     evidence; [contained_done] records suspects already acted on so
     the sweep is idempotent. *)
  sentinel : Sentinel.t option;
  contained_done : (Types.agent, unit) Hashtbl.t;
  (* Injection path of the frame currently being dispatched, as vouched
     for by the transport ([None] outside [receive], or when the caller
     has no path information — which degrades to claimed-sender
     attribution). Every rejection scored during the dispatch
     attributes its evidence to this path. *)
  mutable rx_via : Netsim.Trace.via option;
  (* Degraded-mode ladder state: [mode] is the worst rung reached in
     the current pressure episode, [mode_notice_due] queues the sealed
     "degraded:<mode>" notice the next sweep broadcasts, [sheds_seen]
     is the delivery shed counter already accounted for. *)
  mutable mode : mode;
  mutable degraded_entries : int;
  mutable rearms : int;
  mutable mode_notice_due : bool;
  mutable sheds_seen : int;
}

let create_with_keys ~self ~rng ~directory ?(policy = default_policy) ?journal
    ?vault ?delivery ?sentinel () =
  let dir = Hashtbl.create 16 in
  List.iter
    (fun (user, key) ->
      if Key.kind key <> Key.Long_term then
        invalid_arg "Leader.create_with_keys: keys must be long-term";
      Hashtbl.replace dir user key)
    directory;
  {
    self;
    rng = Prng.Splitmix.split rng;
    directory = dir;
    sessions = Hashtbl.create 16;
    policy;
    journal;
    vault;
    group_key = None;
    next_epoch = 1;
    events_rev = [];
    recoveries = 0;
    resyncs = 0;
    beacon_epoch = None;
    cold_nb = Hashtbl.create 8;
    cold_acks = 0;
    delivery;
    offline = Hashtbl.create 8;
    sentinel;
    contained_done = Hashtbl.create 8;
    rx_via = None;
    mode = Healthy;
    degraded_entries = 0;
    rearms = 0;
    mode_notice_due = false;
    sheds_seen = 0;
  }

let create ~self ~rng ~directory ?policy ?journal ?vault ?delivery ?sentinel ()
    =
  let keyed =
    List.map
      (fun (user, password) -> (user, Key.long_term ~user ~password))
      directory
  in
  create_with_keys ~self ~rng ~directory:keyed ?policy ?journal ?vault
    ?delivery ?sentinel ()

(* --- the degraded-mode ladder --- *)

let mode t = t.mode
let degraded_entries t = t.degraded_entries
let rearms t = t.rearms

let durability_armed t =
  (match t.journal with Some j -> Journal.durable j | None -> true)
  && match t.delivery with Some d -> Delivery.durable d | None -> true

let degrade t m =
  if mode_rank m > mode_rank t.mode then begin
    t.mode <- m;
    t.degraded_entries <- t.degraded_entries + 1;
    t.mode_notice_due <- true
  end

(* Stop attempting disk writes entirely: the store keeps serving from
   memory. The journal is recompacted in memory immediately so the
   replication observer re-images the backups past any half-shipped
   append (a refused mirror raises before the [Appended] notify, so
   replicas may have missed chunks). *)
let enter_memory_only t =
  degrade t Memory_only;
  (match t.journal with
  | Some j when Journal.durable j ->
      Journal.set_durable j false;
      Journal.compact j
  | Some _ | None -> ());
  match t.delivery with
  | Some d when Delivery.durable d -> Delivery.set_durable d false
  | Some _ | None -> ()

let jot t record =
  match t.journal with
  | None -> ()
  | Some j ->
      if not t.policy.degrade then Journal.append j record
      else (
        try Journal.append j record
        with Store.Backend.No_space _ | Store.Backend.Stalled _ ->
          (* Memory already holds the record — only the disk mirror was
             refused. First pressure: compact, which both frees space
             (the rewritten image drops everything below the snapshot)
             and republishes the full image, healing the mirror. If
             even the compaction is refused, give up on the disk for
             this episode. *)
          if mode_rank t.mode < mode_rank Durability_degraded then begin
            degrade t Durability_degraded;
            try Journal.compact j
            with Store.Backend.No_space _ | Store.Backend.Stalled _ ->
              enter_memory_only t
          end
          else enter_memory_only t)

(* Delivery-side pressure, checked after any queue mutation: a shed
   enters [Shedding]; a refused queue mirror degrades durability, with
   one immediate flush attempt before conceding memory-only. *)
let note_delivery_pressure t =
  match t.delivery with
  | None -> ()
  | Some d ->
      if not t.policy.degrade then ()
      else begin
        let shed = (Delivery.counters d).Delivery.records_shed in
        if shed > t.sheds_seen then begin
          t.sheds_seen <- shed;
          degrade t Shedding
        end;
        if Delivery.dirty d && Delivery.durable d then begin
          degrade t Durability_degraded;
          if not (Delivery.flush d) then enter_memory_only t
        end
      end

(* Recover-up: one probe, all-or-nothing. Re-arm the mirrors, attempt
   a full republish of journal + every behind queue + the vault slot;
   any refusal disarms again and keeps the mode. On success the ladder
   returns to [Healthy] in a single step and the all-clear notice is
   queued. *)
let try_rearm t =
  if t.mode = Healthy then true
  else begin
    let journal_ok =
      match t.journal with
      | None -> true
      | Some j -> (
          Journal.set_durable j true;
          try
            Journal.compact j;
            true
          with Store.Backend.No_space _ | Store.Backend.Stalled _ ->
            Journal.set_durable j false;
            false)
    in
    let delivery_ok () =
      match t.delivery with
      | None -> true
      | Some d ->
          Delivery.set_durable d true;
          if Delivery.flush d then true
          else begin
            Delivery.set_durable d false;
            false
          end
    in
    let vault_ok () =
      match (t.vault, t.group_key) with
      | Some v, Some gk -> (
          try
            Store.Vault.put v gk.Types.epoch;
            true
          with Store.Backend.No_space _ | Store.Backend.Stalled _ -> false)
      | _ -> true
    in
    let ok = journal_ok && delivery_ok () && vault_ok () in
    if ok then begin
      t.mode <- Healthy;
      t.rearms <- t.rearms + 1;
      t.mode_notice_due <- true
    end;
    ok
  end

let self t = t.self

let session_of t who =
  match Hashtbl.find_opt t.sessions who with
  | Some s -> s
  | None ->
      let s = { mstate = S_not_connected; queue = []; sent_rev = [] } in
      Hashtbl.replace t.sessions who s;
      s

let session t who =
  match (session_of t who).mstate with
  | S_not_connected -> Not_connected
  | S_waiting_for_key_ack { nl; ka; _ } -> Waiting_for_key_ack (nl, ka)
  | S_connected { na; ka } -> Connected (na, ka)
  | S_waiting_for_ack { nl; ka; _ } -> Waiting_for_ack (nl, ka)
  | S_recovering { nc; ka; _ } -> Recovering (nc, ka)

(* A user is "in session" — counted as a member — from the moment its
   AuthAckKey is accepted until its session closes. A recovering
   session is NOT a member yet: the journalled key is trusted only
   once the member answers the challenge. *)
let in_session s =
  match s.mstate with
  | S_connected _ | S_waiting_for_ack _ -> true
  | S_not_connected | S_waiting_for_key_ack _ | S_recovering _ -> false

let members t =
  Hashtbl.fold (fun who s acc -> if in_session s then who :: acc else acc)
    t.sessions []
  |> List.sort String.compare

let group_key t = t.group_key
let sent_admin t who = List.rev (session_of t who).sent_rev
let pending_admin t who = (session_of t who).queue

let drain_events t =
  let es = List.rev t.events_rev in
  t.events_rev <- [];
  es

let emit t e = t.events_rev <- e :: t.events_rev

(* The sentinel's evidence feed: every rejection the protocol machine
   produces maps to an evidence kind. MAC failures are the strongest
   signal (only wrong or expired key material produces them); stale
   nonces and wrong-state frames are what replays and duplicated
   frames look like, so they carry a weight the decay keeps harmless
   at fault-plan rates. *)
let evidence_of_reason : Types.reject_reason -> Sentinel.evidence = function
  | Types.Auth_failure -> Sentinel.Mac_failure
  | Types.Stale_nonce -> Sentinel.Replay
  | Types.Wrong_state _ -> Sentinel.Replay
  | Types.Stale_epoch _ -> Sentinel.Stale_rekey
  | Types.Malformed _ | Types.Identity_mismatch | Types.Unknown_sender _
  | Types.Unexpected_label _ ->
      Sentinel.Malformed

let reject t ?label ?claimed reason =
  emit t (Rejected { label; claimed; reason });
  (match (t.sentinel, claimed) with
  | Some sn, Some who ->
      let via =
        Option.value t.rx_via ~default:(Netsim.Trace.Via_socket who)
      in
      ignore (Sentinel.observe_via sn ~claimed:who ~via (evidence_of_reason reason))
  | _ -> ());
  []

let current_epoch t =
  match t.group_key with Some gk -> gk.Types.epoch | None -> 0

(* --- store-and-forward hooks --- *)

let mark_offline t who =
  if Hashtbl.mem t.directory who then Hashtbl.replace t.offline who ()

let offline_members t =
  Hashtbl.fold (fun who () acc -> who :: acc) t.offline []
  |> List.sort String.compare

let is_offline t who = Hashtbl.mem t.offline who

let queue_for_offline t who x =
  match t.delivery with
  | None -> ()
  | Some d ->
      Delivery.enqueue d ~member:who ~epoch:(current_epoch t) x;
      note_delivery_pressure t

(* Wrappers for everything pending in [who]'s durable queue, per the
   epoch-window policy, clearing the offline mark. The caller routes
   them through the ordinary admin channel (sealed under the live
   session key — this is where "re-seal under the current session
   key" physically happens). *)
let drain_offline t who =
  Hashtbl.remove t.offline who;
  match t.delivery with
  | None -> []
  | Some d ->
      let xs = Delivery.drain d ~member:who ~current_epoch:(current_epoch t) in
      note_delivery_pressure t;
      xs

(* Put one admin payload on the wire for a member whose channel is
   idle: AdminMsg carrying (N_{2i+1} = na, fresh N_{2i+2}). The sealed
   frame is stored so a retransmission re-sends the identical bytes —
   [sent_rev] grows exactly once per payload regardless of how many
   times the frame hits the wire, preserving §5.4. *)
let fire_admin t who s x ~na ~ka =
  (* Rekey racing a drain in flight: a queued fresh-window group key
     may be overtaken by another rotation while it waits its turn on
     the nonce chain. Freshen it at seal time — the wrapper keeps its
     delivery seq (the dedup identity), but the key material put on
     the wire is always the current one, so a drained rekey can never
     install an older key than the member would get live. *)
  let x =
    match (x, t.group_key) with
    | ( Wire.Admin.Queued
          { seq; stale = false; x = Wire.Admin.New_group_key { epoch; _ } },
        Some gk )
      when epoch < gk.Types.epoch ->
        (match t.delivery with
        | Some d -> (Delivery.counters d).Delivery.resealed <-
            (Delivery.counters d).Delivery.resealed + 1
        | None -> ());
        Wire.Admin.Queued
          {
            seq;
            stale = false;
            x =
              Wire.Admin.New_group_key
                { key = Key.raw gk.Types.key; epoch = gk.Types.epoch };
          }
    | _ -> x
  in
  let nl = Wire.Nonce.fresh t.rng in
  s.sent_rev <- x :: s.sent_rev;
  let plaintext =
    P.encode_admin_body { P.l = t.self; a = who; expected = na; next = nl; x }
  in
  let reply =
    Sealed_channel.seal ~rng:t.rng ~key:ka ~label:F.Admin_msg ~sender:t.self
      ~recipient:who plaintext
  in
  s.mstate <- S_waiting_for_ack { nl; ka; reply };
  [ reply ]

let enqueue_admin t who x =
  (* An operator-marked-offline member gets store-and-forward even
     while its session object is still live: the mark says the peer is
     dark, so firing on the channel would only burn retransmissions.
     {!mark_online} drains the queue back through the session. *)
  if is_offline t who && t.delivery <> None then begin
    queue_for_offline t who x;
    []
  end
  else
  let s = session_of t who in
  match s.mstate with
  | S_connected { na; ka } -> fire_admin t who s x ~na ~ka
  | S_waiting_for_ack _ ->
      s.queue <- s.queue @ [ x ];
      []
  | S_recovering _ ->
      (* Hold until the challenge confirms the session; drained by
         {!handle_recovery_response}. *)
      s.queue <- s.queue @ [ x ];
      []
  | S_not_connected | S_waiting_for_key_ack _ ->
      (* Not in session: group-management messages are only for
         members — unless the member is marked offline and a delivery
         layer is present, in which case the message is journalled
         instead of dropped and drained on reconnect. *)
      if is_offline t who then queue_for_offline t who x;
      []

let broadcast_admin t x =
  let live = members t in
  let offline_targets =
    List.filter (fun who -> not (List.mem who live)) (offline_members t)
  in
  List.concat_map (fun who -> enqueue_admin t who x) live
  @ List.concat_map (fun who -> enqueue_admin t who x) offline_targets

let fresh_group_key t =
  let key = Key.fresh Key.Group t.rng in
  let gk = { Types.key; epoch = t.next_epoch } in
  t.next_epoch <- t.next_epoch + 1;
  t.group_key <- Some gk;
  jot t (Journal.Epoch_bump { key = Key.raw key; epoch = gk.Types.epoch });
  (* The vault persists the bare counter through a separate write path:
     losing the journal's tail (torn write, dropped fsync) can lose the
     Epoch_bump record, but not the vault slot — so a later cold
     restart still beacons an epoch members accept. A refused vault
     write degrades rather than fails the rekey; [try_rearm] re-puts
     the current epoch when space returns. *)
  (match t.vault with
  | Some v ->
      if not t.policy.degrade then Store.Vault.put v gk.Types.epoch
      else (
        try Store.Vault.put v gk.Types.epoch
        with Store.Backend.No_space _ | Store.Backend.Stalled _ ->
          degrade t Durability_degraded)
  | None -> ());
  gk

let rekey t =
  let gk = fresh_group_key t in
  broadcast_admin t
    (Wire.Admin.New_group_key { key = Key.raw gk.Types.key; epoch = gk.Types.epoch })

let close_session t who s ~expelled =
  match s.mstate with
  | S_not_connected -> []
  | S_waiting_for_key_ack { ka; _ }
  | S_connected { ka; _ }
  | S_waiting_for_ack { ka; _ }
  | S_recovering { ka; _ } ->
      let was_member = in_session s in
      (* Store-and-forward: an expelled (evicted-as-silent) member goes
         offline — salvage the channel's unfired backlog and the
         unacknowledged in-flight payload into its durable queue.
         Already-[Queued] wrappers are skipped: their backing entries
         are still pending below the ack floor, so the next drain
         re-presents them anyway (re-queueing would duplicate them).
         A voluntary leave instead drops everything queued for the
         member — it asked to go. *)
      (if t.delivery <> None then
         if expelled then begin
           let inflight =
             match (s.mstate, s.sent_rev) with
             | S_waiting_for_ack _, x :: _ -> [ x ]
             | _ -> []
           in
           mark_offline t who;
           List.iter
             (fun x ->
               match x with
               | Wire.Admin.Queued _ -> ()
               | x -> queue_for_offline t who x)
             (inflight @ s.queue)
         end
         else begin
           Hashtbl.remove t.offline who;
           match t.delivery with
           | Some d -> Delivery.clear d ~member:who
           | None -> ()
         end);
      s.mstate <- S_not_connected;
      s.queue <- [];
      s.sent_rev <- [];
      jot t (Journal.Session_closed { member = who });
      if expelled then emit t (Member_expelled { member = who; session_key = ka })
      else emit t (Member_closed { member = who; session_key = ka });
      if was_member then begin
        let notice =
          if expelled then Wire.Admin.Member_expelled who
          else Wire.Admin.Member_left who
        in
        let notices = broadcast_admin t notice in
        let rekeys = if t.policy.rekey_on_leave then rekey t else [] in
        notices @ rekeys
      end
      else []

let expel t who =
  let s = session_of t who in
  if in_session s then close_session t who s ~expelled:true else []

let sentinel t = t.sentinel

let contained_members t =
  Hashtbl.fold (fun who () acc -> who :: acc) t.contained_done []
  |> List.sort String.compare

let is_contained t who = Hashtbl.mem t.contained_done who

(* Containment for one suspect the sentinel escalated to quarantine:
   tear its session down (a half-open or recovering handshake is
   discarded quietly — it never was a member), purge its delivery
   queue instead of salvaging (the store-and-forward plane must not
   keep feeding an insider), broadcast a quarantine notice, and force
   an emergency rekey so every key the suspect ever held is retired
   group-wide. The suspect stays in [contained_done], and the receive
   gate drops its traffic from here on. *)
let quarantine_now t who =
  Hashtbl.replace t.contained_done who ();
  let s = session_of t who in
  let was_member = in_session s in
  let closing =
    if was_member then close_session t who s ~expelled:true
    else begin
      (match s.mstate with
      | S_not_connected -> ()
      | S_waiting_for_key_ack _ | S_recovering _ | S_connected _
      | S_waiting_for_ack _ ->
          s.mstate <- S_not_connected;
          s.queue <- [];
          s.sent_rev <- [];
          jot t (Journal.Session_closed { member = who }));
      []
    end
  in
  (* Undo close_session's expulsion salvage: quarantine policy is
     purge, not store-and-forward. *)
  Hashtbl.remove t.offline who;
  (match t.delivery with
  | Some d ->
      let purged = Delivery.purge d ~member:who in
      if purged > 0 then
        Option.iter (fun sn -> Sentinel.note_queue_purged sn) t.sentinel
  | None -> ());
  let notices = broadcast_admin t (Wire.Admin.Notice ("quarantined:" ^ who)) in
  (* close_session already rotated the group key when the suspect was
     a member under rekey_on_leave; otherwise force the rotation here.
     Either way the containment counts as an emergency rekey. *)
  let rekeys =
    if t.group_key = None then []
    else if was_member && t.policy.rekey_on_leave then []
    else rekey t
  in
  if t.group_key <> None then
    Option.iter (fun sn -> Sentinel.note_emergency_rekey sn) t.sentinel;
  closing @ notices @ rekeys

(* Act on every directory name the sentinel holds at [Quarantined] or
   above and not yet contained. Unknown claimed names never get past
   authentication anyway — containing them would only churn epochs, so
   admission control alone handles them. Idempotent; called at the end
   of [receive] (synchronous detection) and from the driver's periodic
   scan (catches escalations fed by half-open GC). *)
let containment_sweep t =
  match t.sentinel with
  | None -> []
  | Some sn ->
      let contained =
        List.concat_map
          (fun who ->
            if Hashtbl.mem t.contained_done who
               || not (Hashtbl.mem t.directory who)
            then []
            else quarantine_now t who)
          (Sentinel.contained sn)
      in
      (* Liveness challenges: a directory member whose raw score sits
         in quarantine territory but is corroboration-blocked gets a
         sealed notice only the genuine session-key holder can ack.
         The routine admin ack that comes back is the attestation —
         the member needs no new code path — and it wipes the member's
         off-path score, arresting a framer's escalation. An insider's
         evidence is on-path and unaffected by answering. *)
      let challenges =
        List.concat_map
          (fun who ->
            if Hashtbl.mem t.directory who && Sentinel.challenge_due sn who
            then
              match Hashtbl.find_opt t.sessions who with
              | Some { mstate = S_connected _ | S_waiting_for_ack _; _ } ->
                  Sentinel.note_challenged sn who;
                  enqueue_admin t who (Wire.Admin.Notice "liveness-challenge")
              | Some _ | None -> []
            else [])
          (Sentinel.peers sn)
      in
      contained @ challenges

(* Announce a ladder transition: one sealed Notice per transition,
   broadcast over the members' admin channels (and so re-sealed for
   whoever is offline). "degraded:healthy" is the all-clear after a
   successful re-arm. The flag is cleared before broadcasting — a
   broadcast that itself sheds re-queues the notice for the next
   sweep rather than looping here. *)
let mode_sweep t =
  if not t.mode_notice_due then []
  else begin
    t.mode_notice_due <- false;
    broadcast_admin t (Wire.Admin.Notice ("degraded:" ^ mode_name t.mode))
  end

(* The partition healed (or the harness says so): stop journalling and
   start draining. If the member is in session the backlog rides its
   admin channel immediately; out of session the offline mark is kept
   — traffic keeps queueing until an actual reconnect (recovery
   response or re-join) drains it. *)
let mark_online t who =
  let s = session_of t who in
  match s.mstate with
  | S_connected { na; ka } -> (
      s.queue <- s.queue @ drain_offline t who;
      match s.queue with
      | [] -> []
      | x :: rest ->
          s.queue <- rest;
          fire_admin t who s x ~na ~ka)
  | S_waiting_for_ack _ ->
      s.queue <- s.queue @ drain_offline t who;
      []
  | S_recovering _ | S_not_connected | S_waiting_for_key_ack _ -> []

let delivery t = t.delivery

(* --- retransmission support --- *)

let retransmit t who =
  match (session_of t who).mstate with
  | S_waiting_for_key_ack { reply; _ } -> [ reply ]
  | S_waiting_for_ack { reply; _ } -> [ reply ]
  | S_recovering { reply; _ } -> [ reply ]
  | S_not_connected | S_connected _ -> []

let sessions_where t pred =
  Hashtbl.fold (fun who s acc -> if pred s.mstate then who :: acc else acc)
    t.sessions []
  |> List.sort String.compare

let half_open t =
  sessions_where t (function S_waiting_for_key_ack _ -> true | _ -> false)

let awaiting_ack t =
  sessions_where t (function S_waiting_for_ack _ -> true | _ -> false)

let recovering t =
  sessions_where t (function S_recovering _ -> true | _ -> false)

(* Garbage-collect a half-open handshake: the member never produced
   its AuthAckKey, so it was never a group member — no notices, no
   rekey, no Oops (the provisional Ka never protected anything the
   member acknowledged). A later AuthInitReq simply starts over. *)
let abort_half_open t who =
  let s = session_of t who in
  match s.mstate with
  | S_waiting_for_key_ack _ ->
      s.mstate <- S_not_connected;
      s.queue <- [];
      s.sent_rev <- [];
      (match t.sentinel with
      | Some sn -> ignore (Sentinel.observe sn ~peer:who Sentinel.Half_open)
      | None -> ());
      true
  | S_not_connected | S_connected _ | S_waiting_for_ack _ | S_recovering _ ->
      false

(* Give up on a recovery challenge the member never answered: the
   journalled key is discarded untrusted — the cold path. The member
   was never re-admitted, so no notices or rekeys; if it is alive it
   will cold re-authenticate. *)
let abort_recovery t who =
  let s = session_of t who in
  match s.mstate with
  | S_recovering { ka; _ } ->
      s.mstate <- S_not_connected;
      s.queue <- [];
      s.sent_rev <- [];
      jot t (Journal.Session_closed { member = who });
      emit t (Member_closed { member = who; session_key = ka });
      true
  | S_not_connected | S_waiting_for_key_ack _ | S_connected _
  | S_waiting_for_ack _ ->
      false

let handle_auth_init_req t (frame : F.t) =
  let claimed = frame.F.sender in
  match Hashtbl.find_opt t.directory claimed with
  | None -> reject t ~label:frame.F.label ~claimed (Types.Unknown_sender claimed)
  | Some pa -> (
      let s = session_of t claimed in
      match s.mstate with
      | S_connected _ | S_waiting_for_ack _ ->
          (* Already in session: a replayed or duplicated AuthInitReq
             must not reset an active member (cf. Figure 3: no such
             transition from Connected). *)
          reject t ~label:frame.F.label ~claimed (Types.Wrong_state "in session")
      | S_not_connected | S_waiting_for_key_ack _ | S_recovering _ -> (
          match Sealed_channel.open_ ~key:pa frame with
          | Error reason -> reject t ~label:frame.F.label ~claimed reason
          | Ok plaintext -> (
              match P.decode_auth_init plaintext with
              | Error e -> reject t ~label:frame.F.label ~claimed (Types.Malformed e)
              | Ok { P.a; l; n1 } ->
                  if a <> claimed || l <> t.self then
                    reject t ~label:frame.F.label ~claimed Types.Identity_mismatch
                  else begin
                    match s.mstate with
                    | S_waiting_for_key_ack { init_n1; reply; _ }
                      when Wire.Nonce.equal init_n1 n1 ->
                        (* Duplicate of the request we already answered
                           (network duplication): resend the stored
                           reply — same session key, same nonces — so
                           whichever copy the member processes first,
                           both sides agree. *)
                        [ reply ]
                    | S_not_connected | S_waiting_for_key_ack _
                    | S_recovering _ ->
                        (* A fresh AuthInitReq from a recovering member
                           is the cold fallback: the journalled session
                           is abandoned in favour of a new handshake. *)
                        (match s.mstate with
                        | S_recovering _ ->
                            jot t (Journal.Session_closed { member = a })
                        | _ -> ());
                        let ka = Key.fresh Key.Session t.rng in
                        let n2 = Wire.Nonce.fresh t.rng in
                        let plaintext =
                          P.encode_auth_key_dist
                            { P.l = t.self; a; n1; n2; ka = Key.raw ka }
                        in
                        let reply =
                          Sealed_channel.seal ~rng:t.rng ~key:pa
                            ~label:F.Auth_key_dist ~sender:t.self ~recipient:a
                            plaintext
                        in
                        s.mstate <-
                          S_waiting_for_key_ack
                            { nl = n2; ka; init_n1 = n1; reply };
                        [ reply ]
                    | S_connected _ | S_waiting_for_ack _ ->
                        (* unreachable: outer match excluded these *)
                        []
                  end)))

(* Post-authentication bookkeeping: give the new member the group key
   and the membership, and tell the group. *)
let on_member_joined t who =
  emit t (Member_authenticated who);
  let others = List.filter (fun m -> m <> who) (members t) in
  let welcome_key =
    if t.policy.rekey_on_join || t.group_key = None then rekey t
    else
      match t.group_key with
      | Some gk ->
          enqueue_admin t who
            (Wire.Admin.New_group_key
               { key = Key.raw gk.Types.key; epoch = gk.Types.epoch })
      | None -> []
  in
  let snapshot =
    enqueue_admin t who (Wire.Admin.Membership_snapshot (members t))
  in
  (* Cold rejoin of a member with store-and-forward backlog: drain it
     behind the welcome key and snapshot, each record wrapped per the
     epoch-window policy and riding the ordinary nonce-chained
     channel. *)
  let backlog =
    List.concat_map (fun x -> enqueue_admin t who x) (drain_offline t who)
  in
  let joins =
    List.concat_map
      (fun m -> enqueue_admin t m (Wire.Admin.Member_joined who))
      others
  in
  welcome_key @ snapshot @ backlog @ joins

let handle_auth_ack_key t (frame : F.t) =
  let claimed = frame.F.sender in
  let s = session_of t claimed in
  match s.mstate with
  | S_waiting_for_key_ack { nl; ka; _ } -> (
      match Sealed_channel.open_ ~key:ka frame with
      | Error reason -> reject t ~label:frame.F.label ~claimed reason
      | Ok plaintext -> (
          match P.decode_auth_ack_key plaintext with
          | Error e -> reject t ~label:frame.F.label ~claimed (Types.Malformed e)
          | Ok { P.n2; n3 } ->
              if not (Wire.Nonce.equal n2 nl) then
                reject t ~label:frame.F.label ~claimed Types.Stale_nonce
              else begin
                s.mstate <- S_connected { na = n3; ka };
                jot t
                  (Journal.Session_established
                     { member = claimed; key = Key.raw ka });
                on_member_joined t claimed
              end))
  | S_not_connected | S_connected _ | S_waiting_for_ack _ | S_recovering _ ->
      reject t ~label:frame.F.label ~claimed
        (Types.Wrong_state "not waiting for key ack")

let handle_admin_ack t (frame : F.t) =
  let claimed = frame.F.sender in
  let s = session_of t claimed in
  match s.mstate with
  | S_waiting_for_ack { nl; ka; _ } -> (
      match Sealed_channel.open_ ~key:ka frame with
      | Error reason -> reject t ~label:frame.F.label ~claimed reason
      | Ok plaintext -> (
          match P.decode_admin_ack plaintext with
          | Error e -> reject t ~label:frame.F.label ~claimed (Types.Malformed e)
          | Ok { P.a; l; echo; next } ->
              if a <> claimed || l <> t.self then
                reject t ~label:frame.F.label ~claimed Types.Identity_mismatch
              else if not (Wire.Nonce.equal echo nl) then
                reject t ~label:frame.F.label ~claimed Types.Stale_nonce
              else begin
                (* If the payload just acknowledged was a drained
                   store-and-forward record, the member has durably
                   applied (or deduplicated) it — advance the queue's
                   ack floor so compaction can reclaim it. The order
                   matters for the crash story: the member's ack came
                   first, so a crash before this durable ack merely
                   re-drains the record and the member's delivery
                   floor absorbs the duplicate. *)
                (match (t.delivery, s.sent_rev) with
                | Some d, Wire.Admin.Queued { seq; _ } :: _ ->
                    Delivery.ack d ~member:claimed ~upto:(seq + 1)
                | _ -> ());
                s.mstate <- S_connected { na = next; ka };
                emit t (Ack_received claimed);
                (* A sealed ack under the live session key is exactly
                   the liveness proof a challenge asked for; relief is
                   applied only when a challenge was outstanding. *)
                (match t.sentinel with
                | Some sn -> ignore (Sentinel.note_attested sn claimed)
                | None -> ());
                match s.queue with
                | [] -> []
                | x :: rest ->
                    s.queue <- rest;
                    fire_admin t claimed s x ~na:next ~ka
              end))
  | S_not_connected | S_waiting_for_key_ack _ | S_connected _
  | S_recovering _ ->
      reject t ~label:frame.F.label ~claimed
        (Types.Wrong_state "no outstanding admin message")

let handle_req_close t (frame : F.t) =
  let claimed = frame.F.sender in
  let s = session_of t claimed in
  match s.mstate with
  | S_not_connected ->
      reject t ~label:frame.F.label ~claimed (Types.Wrong_state "not in session")
  | S_waiting_for_key_ack { ka; _ }
  | S_connected { ka; _ }
  | S_waiting_for_ack { ka; _ }
  | S_recovering { ka; _ } -> (
      match Sealed_channel.open_ ~key:ka frame with
      | Error reason -> reject t ~label:frame.F.label ~claimed reason
      | Ok plaintext -> (
          match P.decode_req_close plaintext with
          | Error e -> reject t ~label:frame.F.label ~claimed (Types.Malformed e)
          | Ok { P.a; l } ->
              if a <> claimed || l <> t.self then
                reject t ~label:frame.F.label ~claimed Types.Identity_mismatch
              else close_session t claimed s ~expelled:false))

let handle_app_data t (frame : F.t) =
  let author = frame.F.sender in
  let s = session_of t author in
  if not (in_session s) then
    reject t ~label:frame.F.label ~claimed:author
      (Types.Wrong_state "app data from non-member")
  else
    match t.group_key with
    | None -> reject t ~label:frame.F.label ~claimed:author (Types.Wrong_state "no group key")
    | Some { Types.key; _ } -> (
        (* Verify under the current group key before relaying, so the
           leader never amplifies garbage. *)
        match Sealed_channel.open_group ~key frame with
        | Error reason -> reject t ~label:frame.F.label ~claimed:author reason
        | Ok _plaintext ->
            emit t (App_relayed { author });
            let others = List.filter (fun m -> m <> author) (members t) in
            List.map
              (fun m ->
                F.make ~label:F.App_data ~sender:author ~recipient:m
                  ~body:frame.F.body)
              others)

(* --- view anti-entropy --- *)

let view_digest t =
  Wire.Admin.view_digest ~members:(members t) ~epoch:(current_epoch t)

let broadcast_view_digest t =
  broadcast_admin t
    (Wire.Admin.View_digest { digest = view_digest t; epoch = current_epoch t })

(* A member reported its own (digest, epoch). On mismatch, repair with
   the current group key, the full membership, and a fresh digest; on
   match, answer with the digest alone so a probing member learns the
   leader is alive and agrees. *)
let handle_view_resync_req t (frame : F.t) =
  let claimed = frame.F.sender in
  let s = session_of t claimed in
  match s.mstate with
  | S_connected { ka; _ } | S_waiting_for_ack { ka; _ } -> (
      match Sealed_channel.open_ ~key:ka frame with
      | Error reason -> reject t ~label:frame.F.label ~claimed reason
      | Ok plaintext -> (
          match P.decode_view_resync plaintext with
          | Error e -> reject t ~label:frame.F.label ~claimed (Types.Malformed e)
          | Ok { P.a; l; digest; epoch } ->
              if a <> claimed || l <> t.self then
                reject t ~label:frame.F.label ~claimed Types.Identity_mismatch
              else begin
                let mine = view_digest t and my_epoch = current_epoch t in
                if String.equal digest mine && epoch = my_epoch then
                  enqueue_admin t claimed
                    (Wire.Admin.View_digest { digest = mine; epoch = my_epoch })
                else begin
                  t.resyncs <- t.resyncs + 1;
                  emit t (Resync_served claimed);
                  let rekeys =
                    match t.group_key with
                    | Some gk ->
                        enqueue_admin t claimed
                          (Wire.Admin.New_group_key
                             { key = Key.raw gk.Types.key; epoch = gk.Types.epoch })
                    | None -> []
                  in
                  let snapshot =
                    enqueue_admin t claimed
                      (Wire.Admin.Membership_snapshot (members t))
                  in
                  let digests =
                    enqueue_admin t claimed
                      (Wire.Admin.View_digest
                         { digest = view_digest t; epoch = current_epoch t })
                  in
                  rekeys @ snapshot @ digests
                end
              end))
  | S_not_connected | S_waiting_for_key_ack _ | S_recovering _ ->
      reject t ~label:frame.F.label ~claimed (Types.Wrong_state "not in session")

(* --- warm crash recovery --- *)

let recoveries t = t.recoveries
let resyncs_served t = t.resyncs

let challenge t who ka =
  let nc = Wire.Nonce.fresh t.rng in
  let plaintext = P.encode_recovery_challenge { P.l = t.self; a = who; nc } in
  let reply =
    Sealed_channel.seal ~rng:t.rng ~key:ka ~label:F.Recovery_challenge
      ~sender:t.self ~recipient:who plaintext
  in
  let s = session_of t who in
  s.mstate <- S_recovering { nc; ka; reply };
  reply

(* Re-mark members with surviving store-and-forward backlog as
   offline, so broadcasts keep queueing for them until a reconnect
   drains. The marks themselves are volatile; the queues are the
   durable ground truth they are rebuilt from. *)
let remark_offline t =
  match t.delivery with
  | None -> ()
  | Some d ->
      List.iter
        (fun m -> if Delivery.depth d ~member:m > 0 then mark_offline t m)
        (Delivery.members d)

let recover ~self ~rng ~directory ?policy ~journal ?vault ?delivery ?sentinel
    ~state () =
  let t =
    create ~self ~rng ~directory ?policy ~journal ?vault ?delivery ?sentinel ()
  in
  remark_offline t;
  (match state.Journal.group_key with
  | Some (raw, epoch) ->
      t.group_key <- Some { Types.key = Key.of_raw Key.Group raw; epoch }
  | None -> ());
  t.next_epoch <- max t.next_epoch state.Journal.next_epoch;
  (match vault with
  | Some v -> t.next_epoch <- max t.next_epoch (Store.Vault.get v + 1)
  | None -> ());
  let challenges =
    List.map
      (fun (who, raw) -> challenge t who (Key.of_raw Key.Session raw))
      state.Journal.sessions
  in
  (t, challenges)

(* --- cold-restart beacons --- *)

let cold_beacon_epoch t = t.beacon_epoch
let cold_acks t = t.cold_acks

(* A leader that lost its sessions (journal destroyed or distrusted)
   still remembers, via the journal's surviving prefix, which epoch
   the group had reached. Instead of sitting silent until every
   member's watchdog expires, it broadcasts an authenticated beacon
   under each member's long-term [P_a]. The beacon itself grants
   nothing: members answer with a liveness challenge, and only the
   incarnation that generated these nonces can ack it. *)
let cold_recover ~self ~rng ~directory ?policy ?journal ?vault ?delivery
    ?sentinel ~state () =
  let t =
    create ~self ~rng ~directory ?policy ?journal ?vault ?delivery ?sentinel ()
  in
  remark_offline t;
  t.next_epoch <- max t.next_epoch state.Journal.next_epoch;
  let journal_epoch =
    match state.Journal.group_key with Some (_, e) -> e | None -> 0
  in
  (* The vault may remember a bump the journal's tail lost: beacon the
     maximum of the two so members whose epoch moved with the lost
     bump do not reject the beacon as stale (E19b's residue). *)
  let epoch =
    match vault with
    | Some v -> max journal_epoch (Store.Vault.get v)
    | None -> journal_epoch
  in
  t.next_epoch <- max t.next_epoch (epoch + 1);
  (* Make the epoch floor durable immediately, so a second crash
     before the first rekey still cannot regress the epoch. *)
  if t.next_epoch > 1 then
    jot t
      (Journal.Snapshot
         { Journal.sessions = []; group_key = None; next_epoch = t.next_epoch });
  t.beacon_epoch <- Some epoch;
  let targets =
    Hashtbl.fold (fun who _ acc -> who :: acc) t.directory []
    |> List.sort String.compare
  in
  let beacons =
    List.map
      (fun who ->
        let pa = Hashtbl.find t.directory who in
        let nb = Wire.Nonce.fresh t.rng in
        Hashtbl.replace t.cold_nb who nb;
        let plaintext =
          P.encode_cold_restart { P.l = t.self; a = who; epoch; nb }
        in
        Sealed_channel.seal ~rng:t.rng ~key:pa ~label:F.Cold_restart
          ~sender:t.self ~recipient:who plaintext)
      targets
  in
  (t, beacons)

let handle_cold_restart_challenge t (frame : F.t) =
  let claimed = frame.F.sender in
  match t.beacon_epoch with
  | None ->
      (* A live (never-cold) incarnation answers no beacon challenges:
         this is what makes a replayed beacon harmless — the member
         stays in session because no ack will ever come. *)
      reject t ~label:frame.F.label ~claimed
        (Types.Wrong_state "not a cold-restarted leader")
  | Some _ -> (
      let s = session_of t claimed in
      if in_session s then
        (* The member already re-authenticated; a late or replayed
           challenge must not elicit an ack that could reset it. *)
        reject t ~label:frame.F.label ~claimed (Types.Wrong_state "in session")
      else
        match Hashtbl.find_opt t.directory claimed with
        | None ->
            reject t ~label:frame.F.label ~claimed (Types.Unknown_sender claimed)
        | Some pa -> (
            match Sealed_channel.open_ ~key:pa frame with
            | Error reason -> reject t ~label:frame.F.label ~claimed reason
            | Ok plaintext -> (
                match P.decode_cold_restart_challenge plaintext with
                | Error e ->
                    reject t ~label:frame.F.label ~claimed (Types.Malformed e)
                | Ok { P.a; l; echo; nm } ->
                    if a <> claimed || l <> t.self then
                      reject t ~label:frame.F.label ~claimed
                        Types.Identity_mismatch
                    else
                      match Hashtbl.find_opt t.cold_nb claimed with
                      | Some nb when Wire.Nonce.equal echo nb ->
                          t.cold_acks <- t.cold_acks + 1;
                          emit t (Cold_restart_acked claimed);
                          let plaintext =
                            P.encode_cold_restart_ack
                              { P.l = t.self; a = claimed; echo = nm }
                          in
                          [
                            Sealed_channel.seal ~rng:t.rng ~key:pa
                              ~label:F.Cold_restart_ack ~sender:t.self
                              ~recipient:claimed plaintext;
                          ]
                      | Some _ | None ->
                          reject t ~label:frame.F.label ~claimed
                            Types.Stale_nonce)))

let handle_recovery_response t (frame : F.t) =
  let claimed = frame.F.sender in
  let s = session_of t claimed in
  match s.mstate with
  | S_recovering { nc; ka; _ } -> (
      match Sealed_channel.open_ ~key:ka frame with
      | Error reason -> reject t ~label:frame.F.label ~claimed reason
      | Ok plaintext -> (
          match P.decode_recovery_response plaintext with
          | Error e -> reject t ~label:frame.F.label ~claimed (Types.Malformed e)
          | Ok { P.a; l; echo; next } ->
              if a <> claimed || l <> t.self then
                reject t ~label:frame.F.label ~claimed Types.Identity_mismatch
              else if not (Wire.Nonce.equal echo nc) then
                reject t ~label:frame.F.label ~claimed Types.Stale_nonce
              else begin
                (* The member proved it holds K_a and answered THIS
                   challenge: re-admit it and re-seed the admin nonce
                   chain from its fresh nonce. *)
                s.mstate <- S_connected { na = next; ka };
                t.recoveries <- t.recoveries + 1;
                emit t (Member_recovered claimed);
                (* Warm reconnect over the existing session: drain the
                   member's store-and-forward backlog into the channel
                   it just revalidated — no re-handshake, no new keys,
                   just the nonce chain picking up where the challenge
                   re-seeded it. *)
                s.queue <- s.queue @ drain_offline t claimed;
                match s.queue with
                | [] -> []
                | x :: rest ->
                    s.queue <- rest;
                    fire_admin t claimed s x ~na:next ~ka
              end))
  | S_not_connected | S_waiting_for_key_ack _ | S_connected _
  | S_waiting_for_ack _ ->
      reject t ~label:frame.F.label ~claimed
        (Types.Wrong_state "no outstanding recovery challenge")

let receive t ?via bytes =
  t.rx_via <- via;
  Fun.protect ~finally:(fun () -> t.rx_via <- None) @@ fun () ->
  let replies =
    match F.decode bytes with
    | Error e -> reject t (Types.Malformed e)
    | Ok frame -> (
        let quarantined =
          match t.sentinel with
          | Some sn -> (
              match Sentinel.level sn frame.F.sender with
              | Sentinel.Quarantined | Sentinel.Expelled ->
                  (* Containment gate: a quarantined peer's traffic is
                     dropped before any protocol processing — it cannot
                     even produce rejections to probe with. The drop
                     itself is (weak) evidence, so a persistent
                     attacker escalates to Expelled. *)
                  Sentinel.note_quarantined_drop sn ?via frame.F.sender;
                  true
              | Sentinel.Clear | Sentinel.Rate_limited -> false)
          | None -> false
        in
        if quarantined then []
        else
          match frame.F.label with
          | F.Auth_init_req -> handle_auth_init_req t frame
          | F.Auth_ack_key -> handle_auth_ack_key t frame
          | F.Admin_ack -> handle_admin_ack t frame
          | F.Req_close -> handle_req_close t frame
          | F.App_data -> handle_app_data t frame
          | F.Recovery_response -> handle_recovery_response t frame
          | F.View_resync_req -> handle_view_resync_req t frame
          | F.Cold_restart_challenge -> handle_cold_restart_challenge t frame
          | F.Req_open | F.Ack_open | F.Connection_denied | F.Legacy_auth1
          | F.Legacy_auth2 | F.Legacy_auth3 | F.New_key | F.New_key_ack
          | F.Legacy_req_close | F.Close_connection | F.Mem_joined
          | F.Mem_removed | F.Auth_key_dist | F.Admin_msg
          | F.Recovery_challenge | F.Cold_restart | F.Cold_restart_ack
          | F.Repl_record | F.Repl_ack | F.Repl_fetch | F.Repl_stale ->
              reject t ~label:frame.F.label
                (Types.Unexpected_label frame.F.label))
  in
  (* Evidence scored during this dispatch may have crossed a
     threshold: contain synchronously, so the reply to the frame that
     unmasked an insider already carries the quarantine notice and
     emergency rekey. *)
  replies @ containment_sweep t @ mode_sweep t
