module F = Wire.Frame

type config = {
  heartbeat_period : Netsim.Vtime.t;
  failure_timeout : Netsim.Vtime.t;
  check_period : Netsim.Vtime.t;
  retry_budget : int;
  failback_after : Netsim.Vtime.t;
}

let default_config =
  {
    heartbeat_period = Netsim.Vtime.of_ms 300;
    failure_timeout = Netsim.Vtime.of_ms 1000;
    check_period = Netsim.Vtime.of_ms 200;
    retry_budget = 2;
    failback_after = Netsim.Vtime.of_ms 1500;
  }

(* One leader-side watch entry: the nonce of an outstanding frame and
   when this nonce was first observed by the scan. A frame is only
   retransmitted once the same nonce survives into a second scan, so a
   reply in flight gets one scan period to land first. *)
type mwatch = { w_nonce : Wire.Nonce.t; first_seen : Netsim.Vtime.t }

type manager = {
  name : Types.agent;
  leader : Leader.t;
  mutable crashed : bool;
  watches : (Types.agent, mwatch) Hashtbl.t;
}

type member_slot = {
  m_name : Types.agent;
  password : string;
  mutable automaton : Member.t;
  mutable target : Types.agent;
  mutable active : bool;  (** has been asked to join at least once *)
  mutable last_admin : Netsim.Vtime.t;
  mutable retries : int;
      (** consecutive silent timeout windows on the current target *)
  mutable failback_at : Netsim.Vtime.t option;
      (** when to abandon a non-preferred manager for the primary *)
}

type t = {
  sim : Netsim.Sim.t;
  net : Netsim.Network.t;
  config : config;
  managers : manager array;
  members : (Types.agent, member_slot) Hashtbl.t;
  mutable failovers : int;
  mutable failbacks : int;
  mutable handles : Netsim.Sim.handle list;
}

let sim t = t.sim
let net t = t.net

let primary t =
  let rec first i =
    if i >= Array.length t.managers then t.managers.(0).name
    else if not t.managers.(i).crashed then t.managers.(i).name
    else first (i + 1)
  in
  first 0

(* Next non-crashed manager strictly after [after] in the fixed
   succession, wrapping — so a live-but-unreachable target is skipped
   rather than retried forever. Wraps all the way back to [after]
   itself when it is the only live manager. *)
let succession_next t after =
  let n = Array.length t.managers in
  let idx = ref 0 in
  Array.iteri (fun i mgr -> if mgr.name = after then idx := i) t.managers;
  let rec find k =
    if k > n then primary t
    else
      let mgr = t.managers.((!idx + k) mod n) in
      if not mgr.crashed then mgr.name else find (k + 1)
  in
  find 1

let send_frames t ~src frames =
  List.iter
    (fun (frame : F.t) ->
      Netsim.Network.send t.net ~src ~dst:frame.F.recipient (F.encode frame))
    frames

(* Wire a member automaton onto the network; called again after every
   failover because the automaton is replaced. *)
let attach_member t slot =
  Netsim.Network.register t.net slot.m_name (fun bytes ->
      let replies = Member.receive slot.automaton bytes in
      send_frames t ~src:slot.m_name replies;
      List.iter
        (function
          | Member.Admin_accepted _ | Member.Joined _
          | Member.Recovery_challenged | Member.Cold_beacon_challenged _
          | Member.Beacon_reset _ ->
              slot.last_admin <- Netsim.Sim.now t.sim;
              slot.retries <- 0
          | Member.App_received _ | Member.Left | Member.Rejected _
          | Member.View_diverged _ -> ())
        (Member.drain_events slot.automaton))

let attach_manager t mgr =
  Netsim.Network.register t.net mgr.name (fun bytes ->
      if not mgr.crashed then begin
        let replies = Leader.receive mgr.leader bytes in
        send_frames t ~src:mgr.name replies
      end)

(* Tear down the current session (politely, so a live manager frees
   its slot) and run a fresh handshake against [target]. *)
let switch_to t slot ~target =
  send_frames t ~src:slot.m_name (Member.leave slot.automaton);
  slot.target <- target;
  slot.automaton <-
    Member.create ~self:slot.m_name ~leader:target ~password:slot.password
      ~rng:(Netsim.Sim.rng t.sim);
  attach_member t slot;
  slot.active <- true;
  slot.retries <- 0;
  slot.failback_at <- None;
  slot.last_admin <- Netsim.Sim.now t.sim;
  send_frames t ~src:slot.m_name (Member.join slot.automaton)

let join_slot t slot =
  let target = primary t in
  if slot.target <> target || not (Member.is_connected slot.automaton) then begin
    slot.target <- target;
    slot.automaton <-
      Member.create ~self:slot.m_name ~leader:target ~password:slot.password
        ~rng:(Netsim.Sim.rng t.sim);
    attach_member t slot
  end;
  slot.active <- true;
  slot.retries <- 0;
  slot.failback_at <- None;
  slot.last_admin <- Netsim.Sim.now t.sim;
  send_frames t ~src:slot.m_name (Member.join slot.automaton)

let fail_over t slot =
  t.failovers <- t.failovers + 1;
  switch_to t slot ~target:(succession_next t slot.target)

let fail_back t slot ~preferred =
  t.failbacks <- t.failbacks + 1;
  switch_to t slot ~target:preferred

(* Member-side failure detector. A timeout no longer means "dead":
   the first [retry_budget] silent windows are treated as "slow" — the
   member re-arms the window and, if its handshake is still pending,
   retransmits the stored AuthInitReq as a probe. Only when the budget
   is exhausted does it fail over to the next manager in succession.
   Separately, a member that is connected and stable on a manager
   other than the current primary drifts back to the preferred primary
   after [failback_after] — so a partition that pushed it sideways
   heals into the canonical configuration instead of splitting the
   group forever. *)
let start_failure_detector t slot =
  let h =
    Netsim.Sim.every_handle t.sim ~period:t.config.check_period (fun () ->
        if slot.active then begin
          let now = Netsim.Sim.now t.sim in
          let preferred = primary t in
          let silence = Int64.sub now slot.last_admin in
          (* Fail-back only from a demonstrably live session — a
             silent non-preferred target is the detector's business,
             not a candidate for a polite migration. *)
          if
            Member.is_connected slot.automaton
            && slot.target <> preferred
            && Netsim.Vtime.(silence < t.config.failure_timeout)
          then begin
            match slot.failback_at with
            | None ->
                slot.failback_at <-
                  Some (Netsim.Vtime.add now t.config.failback_after)
            | Some at when Netsim.Vtime.(at <= now) ->
                fail_back t slot ~preferred
            | Some _ -> ()
          end
          else slot.failback_at <- None;
          if Netsim.Vtime.(t.config.failure_timeout <= silence) then
            if slot.retries < t.config.retry_budget then begin
              slot.retries <- slot.retries + 1;
              send_frames t ~src:slot.m_name
                (Member.retransmit_join slot.automaton);
              slot.last_admin <- Netsim.Sim.now t.sim
            end
            else fail_over t slot
        end)
  in
  t.handles <- h :: t.handles

let start_heartbeat t mgr =
  let h =
    Netsim.Sim.every_handle t.sim ~period:t.config.heartbeat_period (fun () ->
        if not mgr.crashed then
          send_frames t ~src:mgr.name
            (Leader.broadcast_admin mgr.leader (Wire.Admin.Notice "hb")))
  in
  t.handles <- h :: t.handles

let watch_nonce = function
  | Leader.Waiting_for_key_ack (n, _) | Leader.Waiting_for_ack (n, _) -> Some n
  | Leader.Not_connected | Leader.Connected _ | Leader.Recovering _ -> None

(* Manager-side scan: re-send outstanding AuthKeyDist/AdminMsg frames
   whose nonce survived a previous scan unchanged (so lost replies
   don't wedge a session), and garbage-collect handshakes that stay
   half-open past twice the failure timeout — by then the member has
   either probed again (fresh nonce) or failed over elsewhere. *)
let start_manager_scan t mgr =
  let gc_after = Int64.mul 2L t.config.failure_timeout in
  let h =
    Netsim.Sim.every_handle t.sim ~period:t.config.check_period (fun () ->
        if not mgr.crashed then begin
          let now = Netsim.Sim.now t.sim in
          let outstanding =
            List.map (fun who -> (who, true)) (Leader.half_open mgr.leader)
            @ List.map (fun who -> (who, false)) (Leader.awaiting_ack mgr.leader)
          in
          let live = List.map fst outstanding in
          Hashtbl.iter
            (fun who _ ->
              if not (List.mem who live) then Hashtbl.remove mgr.watches who)
            (Hashtbl.copy mgr.watches);
          List.iter
            (fun (who, is_half_open) ->
              match watch_nonce (Leader.session mgr.leader who) with
              | None -> Hashtbl.remove mgr.watches who
              | Some n -> (
                  match Hashtbl.find_opt mgr.watches who with
                  | Some w when Wire.Nonce.equal w.w_nonce n ->
                      if Netsim.Vtime.(gc_after <= Int64.sub now w.first_seen)
                      then begin
                        (* Stalled past the deadline. A half-open
                           handshake is silently reset; a member that
                           never acks an AdminMsg is presumed dead and
                           expelled — freeing the session so a later
                           re-handshake (e.g. after a partition heals)
                           is accepted instead of rejected as
                           "in session". *)
                        if is_half_open then
                          ignore (Leader.abort_half_open mgr.leader who)
                        else
                          send_frames t ~src:mgr.name
                            (Leader.expel mgr.leader who);
                        Hashtbl.remove mgr.watches who
                      end
                      else
                        send_frames t ~src:mgr.name
                          (Leader.retransmit mgr.leader who)
                  | Some _ | None ->
                      Hashtbl.replace mgr.watches who
                        { w_nonce = n; first_seen = now }))
            outstanding
        end)
  in
  t.handles <- h :: t.handles

let create ?(seed = 77L) ?(config = default_config) ~managers ~directory () =
  if managers = [] then invalid_arg "Failover.create: no managers";
  let sim = Netsim.Sim.create ~seed () in
  let net = Netsim.Network.create ~sim () in
  let rng = Netsim.Sim.rng sim in
  let mk_manager name =
    {
      name;
      leader = Leader.create ~self:name ~rng ~directory ();
      crashed = false;
      watches = Hashtbl.create 8;
    }
  in
  let managers = Array.of_list (List.map mk_manager managers) in
  let members = Hashtbl.create 8 in
  let t =
    {
      sim;
      net;
      config;
      managers;
      members;
      failovers = 0;
      failbacks = 0;
      handles = [];
    }
  in
  Array.iter (attach_manager t) t.managers;
  Array.iter (start_heartbeat t) t.managers;
  Array.iter (start_manager_scan t) t.managers;
  List.iter
    (fun (m_name, password) ->
      let slot =
        {
          m_name;
          password;
          automaton =
            Member.create ~self:m_name ~leader:t.managers.(0).name ~password
              ~rng;
          target = t.managers.(0).name;
          active = false;
          last_admin = Netsim.Vtime.zero;
          retries = 0;
          failback_at = None;
        }
      in
      Hashtbl.replace members m_name slot;
      attach_member t slot;
      start_failure_detector t slot)
    directory;
  t

let start t = Hashtbl.iter (fun _ slot -> join_slot t slot) t.members

let stop t =
  List.iter Netsim.Sim.cancel t.handles;
  t.handles <- []

let join t who =
  match Hashtbl.find_opt t.members who with
  | Some slot -> join_slot t slot
  | None -> raise Not_found

let member t who =
  match Hashtbl.find_opt t.members who with
  | Some slot -> slot.automaton
  | None -> raise Not_found

let leader t name =
  let found = ref None in
  Array.iter (fun mgr -> if mgr.name = name then found := Some mgr.leader) t.managers;
  match !found with Some l -> l | None -> raise Not_found

let send_app t who body =
  match Hashtbl.find_opt t.members who with
  | Some slot -> send_frames t ~src:who (Member.send_app slot.automaton body)
  | None -> raise Not_found

let crash_primary t =
  let name = primary t in
  Array.iter
    (fun mgr ->
      if mgr.name = name then begin
        mgr.crashed <- true;
        Netsim.Network.unregister t.net mgr.name
      end)
    t.managers

let manager_of t who =
  match Hashtbl.find_opt t.members who with
  | Some slot when Member.is_connected slot.automaton -> Some slot.target
  | Some _ | None -> None

let connected_members t =
  Hashtbl.fold
    (fun name slot acc ->
      let target_live =
        Array.exists
          (fun mgr -> mgr.name = slot.target && not mgr.crashed)
          t.managers
      in
      if Member.is_connected slot.automaton && target_live then name :: acc
      else acc)
    t.members []
  |> List.sort String.compare

let failovers t = t.failovers
let failbacks t = t.failbacks

let run ?until t = Netsim.Sim.run ?until t.sim
