module F = Wire.Frame

type config = {
  heartbeat_period : Netsim.Vtime.t;
  failure_timeout : Netsim.Vtime.t;
  check_period : Netsim.Vtime.t;
}

let default_config =
  {
    heartbeat_period = Netsim.Vtime.of_ms 300;
    failure_timeout = Netsim.Vtime.of_ms 1000;
    check_period = Netsim.Vtime.of_ms 200;
  }

type manager = { name : Types.agent; leader : Leader.t; mutable crashed : bool }

type member_slot = {
  m_name : Types.agent;
  password : string;
  mutable automaton : Member.t;
  mutable target : Types.agent;
  mutable active : bool;  (** has been asked to join at least once *)
  mutable last_admin : Netsim.Vtime.t;
}

type t = {
  sim : Netsim.Sim.t;
  net : Netsim.Network.t;
  config : config;
  managers : manager array;
  members : (Types.agent, member_slot) Hashtbl.t;
  mutable failovers : int;
}

let sim t = t.sim
let net t = t.net

let primary t =
  let rec first i =
    if i >= Array.length t.managers then t.managers.(0).name
    else if not t.managers.(i).crashed then t.managers.(i).name
    else first (i + 1)
  in
  first 0

let send_frames t ~src frames =
  List.iter
    (fun (frame : F.t) ->
      Netsim.Network.send t.net ~src ~dst:frame.F.recipient (F.encode frame))
    frames

(* Wire a member automaton onto the network; called again after every
   failover because the automaton is replaced. *)
let attach_member t slot =
  Netsim.Network.register t.net slot.m_name (fun bytes ->
      let replies = Member.receive slot.automaton bytes in
      send_frames t ~src:slot.m_name replies;
      List.iter
        (function
          | Member.Admin_accepted _ | Member.Joined _ ->
              slot.last_admin <- Netsim.Sim.now t.sim
          | Member.App_received _ | Member.Left | Member.Rejected _ -> ())
        (Member.drain_events slot.automaton))

let attach_manager t mgr =
  Netsim.Network.register t.net mgr.name (fun bytes ->
      if not mgr.crashed then begin
        let replies = Leader.receive mgr.leader bytes in
        send_frames t ~src:mgr.name replies
      end)

let join_slot t slot =
  let target = primary t in
  if slot.target <> target || not (Member.is_connected slot.automaton) then begin
    slot.target <- target;
    slot.automaton <-
      Member.create ~self:slot.m_name ~leader:target ~password:slot.password
        ~rng:(Netsim.Sim.rng t.sim);
    attach_member t slot
  end;
  slot.active <- true;
  slot.last_admin <- Netsim.Sim.now t.sim;
  send_frames t ~src:slot.m_name (Member.join slot.automaton)

let fail_over t slot =
  t.failovers <- t.failovers + 1;
  (* If the member still believes in the old session, send the close —
     a live-but-slow leader can then free the session so a later
     rejoin is accepted (a crashed one simply never reads it). *)
  send_frames t ~src:slot.m_name (Member.leave slot.automaton);
  let target = primary t in
  slot.target <- target;
  slot.automaton <-
    Member.create ~self:slot.m_name ~leader:target ~password:slot.password
      ~rng:(Netsim.Sim.rng t.sim);
  attach_member t slot;
  slot.active <- true;
  slot.last_admin <- Netsim.Sim.now t.sim;
  send_frames t ~src:slot.m_name (Member.join slot.automaton)

let start_failure_detector t slot =
  Netsim.Sim.every t.sim ~period:t.config.check_period (fun () ->
      if slot.active then begin
        let silence =
          Int64.sub (Netsim.Sim.now t.sim) slot.last_admin
        in
        if Netsim.Vtime.(t.config.failure_timeout <= silence) then
          fail_over t slot
      end)

let start_heartbeat t mgr =
  Netsim.Sim.every t.sim ~period:t.config.heartbeat_period (fun () ->
      if not mgr.crashed then
        send_frames t ~src:mgr.name
          (Leader.broadcast_admin mgr.leader (Wire.Admin.Notice "hb")))

let create ?(seed = 77L) ?(config = default_config) ~managers ~directory () =
  if managers = [] then invalid_arg "Failover.create: no managers";
  let sim = Netsim.Sim.create ~seed () in
  let net = Netsim.Network.create ~sim () in
  let rng = Netsim.Sim.rng sim in
  let mk_manager name =
    { name; leader = Leader.create ~self:name ~rng ~directory (); crashed = false }
  in
  let managers = Array.of_list (List.map mk_manager managers) in
  let members = Hashtbl.create 8 in
  let t = { sim; net; config; managers; members; failovers = 0 } in
  Array.iter (attach_manager t) t.managers;
  Array.iter (start_heartbeat t) t.managers;
  List.iter
    (fun (m_name, password) ->
      let slot =
        {
          m_name;
          password;
          automaton =
            Member.create ~self:m_name ~leader:t.managers.(0).name ~password
              ~rng;
          target = t.managers.(0).name;
          active = false;
          last_admin = Netsim.Vtime.zero;
        }
      in
      Hashtbl.replace members m_name slot;
      attach_member t slot;
      start_failure_detector t slot)
    directory;
  t

let start t = Hashtbl.iter (fun _ slot -> join_slot t slot) t.members

let join t who =
  match Hashtbl.find_opt t.members who with
  | Some slot -> join_slot t slot
  | None -> raise Not_found

let member t who =
  match Hashtbl.find_opt t.members who with
  | Some slot -> slot.automaton
  | None -> raise Not_found

let leader t name =
  let found = ref None in
  Array.iter (fun mgr -> if mgr.name = name then found := Some mgr.leader) t.managers;
  match !found with Some l -> l | None -> raise Not_found

let send_app t who body =
  match Hashtbl.find_opt t.members who with
  | Some slot -> send_frames t ~src:who (Member.send_app slot.automaton body)
  | None -> raise Not_found

let crash_primary t =
  let name = primary t in
  Array.iter
    (fun mgr ->
      if mgr.name = name then begin
        mgr.crashed <- true;
        Netsim.Network.unregister t.net mgr.name
      end)
    t.managers

let manager_of t who =
  match Hashtbl.find_opt t.members who with
  | Some slot when Member.is_connected slot.automaton -> Some slot.target
  | Some _ | None -> None

let connected_members t =
  Hashtbl.fold
    (fun name slot acc ->
      let target_live =
        Array.exists
          (fun mgr -> mgr.name = slot.target && not mgr.crashed)
          t.managers
      in
      if Member.is_connected slot.automaton && target_live then name :: acc
      else acc)
    t.members []
  |> List.sort String.compare

let failovers t = t.failovers

let run ?until t = Netsim.Sim.run ?until t.sim
