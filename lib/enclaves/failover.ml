module F = Wire.Frame
module Key = Sym_crypto.Key

type config = {
  heartbeat_period : Netsim.Vtime.t;
  failure_timeout : Netsim.Vtime.t;
  check_period : Netsim.Vtime.t;
  retry_budget : int;
  failback_after : Netsim.Vtime.t;
  repl_heartbeat_period : Netsim.Vtime.t;
  warm_failover : bool;
}

let default_config =
  {
    heartbeat_period = Netsim.Vtime.of_ms 300;
    failure_timeout = Netsim.Vtime.of_ms 1000;
    check_period = Netsim.Vtime.of_ms 200;
    retry_budget = 2;
    failback_after = Netsim.Vtime.of_ms 1500;
    repl_heartbeat_period = Netsim.Vtime.of_ms 300;
    warm_failover = true;
  }

(* One leader-side watch entry: the nonce of an outstanding frame and
   when this nonce was first observed by the scan. A frame is only
   retransmitted once the same nonce survives into a second scan, so a
   reply in flight gets one scan period to land first. *)
type mwatch = { w_nonce : Wire.Nonce.t; first_seen : Netsim.Vtime.t }

type manager = {
  name : Types.agent;
  idx : int;  (* position in the fixed succession *)
  disk : Store.Mem.t;  (* this manager's own simulated disk *)
  vault : Store.Vault.t;
  mutable leader : Leader.t;  (* replaced on promotion *)
  mutable journal : Journal.t option;  (* Some iff primary (journalling) *)
  mutable source : Replication.Source.t option;  (* Some iff primary *)
  mutable replica : Replication.Replica.t option;  (* Some iff backup *)
  mutable repl_last : Netsim.Vtime.t;
      (* last liveness-proving replication frame from the primary *)
  mutable crashed : bool;
  mutable catching_up : bool;
      (* freshly demoted: not promotable until the new source's
         term-opening snapshot has landed in the replica *)
  watches : (Types.agent, mwatch) Hashtbl.t;
  sentinel : Sentinel.t option;
      (* This manager's intrusion sentinel. Owned by the manager, not
         the leader automaton, so suspicion survives promotion and
         demotion; the primary's instance ships snapshots down the
         replication stream, a promoting backup merges the replicated
         snapshot into its own. *)
}

type member_slot = {
  m_name : Types.agent;
  password : string;
  mutable automaton : Member.t;
  mutable target : Types.agent;
  mutable active : bool;  (** has been asked to join at least once *)
  mutable last_admin : Netsim.Vtime.t;
  mutable retries : int;
      (** consecutive silent timeout windows on the current target *)
  mutable failback_at : Netsim.Vtime.t option;
      (** when to abandon a non-preferred manager for the primary *)
}

type t = {
  sim : Netsim.Sim.t;
  net : Netsim.Network.t;
  config : config;
  directory : (Types.agent * string) list;
  delivery_policy : Delivery.policy option;
  repl_key : Key.t;
  counters : Replication.counters;
  managers : manager array;
  members : (Types.agent, member_slot) Hashtbl.t;
  mutable failovers : int;
  mutable failbacks : int;
  mutable handles : Netsim.Sim.handle list;
}

let sim t = t.sim
let net t = t.net

(* Replication terms are generation-encoded so that no two promotions
   can ever mint the same term: [term = g*n + (n-1-idx)] where [n] is
   the manager count, [g] a promotion generation, and [idx] the
   manager's succession position. A promoting manager observes term
   [T] (its replica's last adopted term) and claims the next
   generation at its own rank — so two successors promoting
   concurrently across a partition get distinct terms, and within one
   generation the {e earlier} manager in the succession mints the
   {e higher} term and wins the tie. The naive [T + 1] this replaces
   collided exactly there. *)
let term_of ~n ~generation ~idx = (generation * n) + (n - 1 - idx)

let promotion_term ~n ~idx ~seen = term_of ~n ~generation:((seen / n) + 1) ~idx

(* The manager currently sourcing the replication stream at the
   highest term — during the window between a crash and the successor's
   promotion (when no source is live), the first non-crashed manager
   in the succession, and [None] when every manager is down: callers
   must treat that as "no service", not silently target a corpse. A
   partitioned old primary still sourcing its dead term loses this
   comparison the moment the successor promotes, so members fail back
   to the real group, never to a zombie. *)
let primary t =
  let best = ref None in
  Array.iter
    (fun mgr ->
      if not mgr.crashed then
        match mgr.source with
        | Some s -> (
            let term = Replication.Source.term s in
            match !best with
            | Some (bt, _) when bt >= term -> ()
            | _ -> best := Some (term, mgr.name))
        | None -> ())
    t.managers;
  match !best with
  | Some (_, name) -> Some name
  | None ->
      let n = Array.length t.managers in
      let rec first i =
        if i >= n then None
        else if not t.managers.(i).crashed then Some t.managers.(i).name
        else first (i + 1)
      in
      first 0

(* Next non-crashed manager strictly after [after] in the fixed
   succession, wrapping all the way around — back to [after] itself
   when it is the only live manager, [None] when none are live. *)
let succession_next t after =
  let n = Array.length t.managers in
  let idx = ref 0 in
  Array.iteri (fun i mgr -> if mgr.name = after then idx := i) t.managers;
  let rec find k =
    if k > n then None
    else
      let mgr = t.managers.((!idx + k) mod n) in
      if not mgr.crashed then Some mgr.name else find (k + 1)
  in
  find 1

let send_frames t ~src frames =
  List.iter
    (fun (frame : F.t) ->
      Netsim.Network.send t.net ~src ~dst:frame.F.recipient (F.encode frame))
    frames

(* Wire a member automaton onto the network; called again after every
   failover because the automaton is replaced. *)
let attach_member t slot =
  Netsim.Network.register t.net slot.m_name (fun bytes ->
      let replies = Member.receive slot.automaton bytes in
      send_frames t ~src:slot.m_name replies;
      List.iter
        (function
          | Member.Recovery_challenged { from } ->
              (* Warm handoff: whoever proved possession of our [K_a]
                 is the manager we now follow — keep the detector quiet
                 and move the slot's allegiance with the automaton's. *)
              slot.target <- from;
              slot.failback_at <- None;
              slot.last_admin <- Netsim.Sim.now t.sim;
              slot.retries <- 0
          | Member.Admin_accepted _ | Member.Joined _
          | Member.Cold_beacon_challenged _ | Member.Beacon_reset _ ->
              slot.last_admin <- Netsim.Sim.now t.sim;
              slot.retries <- 0
          | Member.App_received _ | Member.Left | Member.Rejected _
          | Member.View_diverged _ -> ())
        (Member.drain_events slot.automaton))

(* Manager frame routing: replication frames go to the replication
   plane, everything else to the leader automaton. Undecodable bytes
   also go to the leader so its reject accounting stays authoritative. *)
let attach_manager t mgr =
  Netsim.Network.register t.net mgr.name (fun bytes ->
      if not mgr.crashed then begin
        let to_leader () =
          let via = Netsim.Network.delivering_via t.net in
          let replies = Leader.receive mgr.leader ?via bytes in
          send_frames t ~src:mgr.name replies
        in
        match F.decode bytes with
        | Error _ -> to_leader ()
        | Ok frame -> (
            match frame.F.label with
            | F.Repl_record -> (
                match mgr.replica with
                | Some r ->
                    send_frames t ~src:mgr.name
                      (Replication.Replica.handle_frame r frame)
                | None -> (
                    match mgr.source with
                    | Some s ->
                        (* A record reaching a sourcing manager is the
                           reconciliation plane at work: either a
                           zombie peer's dead stream (answered with a
                           demotion signal) or a successor's
                           higher-term stream reaching us after a
                           heal — in which case [on_superseded] just
                           demoted us, and the frame that proved it
                           seeds the fresh replica below. *)
                        Replication.Source.handle_peer_record s frame;
                        (match mgr.replica with
                        | Some r ->
                            send_frames t ~src:mgr.name
                              (Replication.Replica.handle_frame r frame)
                        | None -> ())
                    | None -> ()))
            | F.Repl_ack | F.Repl_fetch | F.Repl_stale -> (
                match mgr.source with
                | Some s -> Replication.Source.handle_frame s frame
                | None ->
                    (* A backup has nothing to demote; stray signals
                       are just dropped. *)
                    ())
            | _ -> to_leader ())
      end)

(* Tear down the current session (politely, so a live manager frees
   its slot) and run a fresh handshake against [target]. *)
let switch_to t slot ~target =
  send_frames t ~src:slot.m_name (Member.leave slot.automaton);
  slot.target <- target;
  slot.automaton <-
    Member.create ~self:slot.m_name ~leader:target ~password:slot.password
      ~rng:(Netsim.Sim.rng t.sim);
  attach_member t slot;
  slot.active <- true;
  slot.retries <- 0;
  slot.failback_at <- None;
  slot.last_admin <- Netsim.Sim.now t.sim;
  send_frames t ~src:slot.m_name (Member.join slot.automaton)

let join_slot t slot =
  match primary t with
  | None -> ()
  | Some target ->
      if slot.target <> target || not (Member.is_connected slot.automaton)
      then begin
        slot.target <- target;
        slot.automaton <-
          Member.create ~self:slot.m_name ~leader:target
            ~password:slot.password ~rng:(Netsim.Sim.rng t.sim);
        attach_member t slot
      end;
      slot.active <- true;
      slot.retries <- 0;
      slot.failback_at <- None;
      slot.last_admin <- Netsim.Sim.now t.sim;
      send_frames t ~src:slot.m_name (Member.join slot.automaton)

let fail_over t slot =
  match succession_next t slot.target with
  | None -> ()  (* nobody left to fail over to; keep waiting *)
  | Some target ->
      t.failovers <- t.failovers + 1;
      switch_to t slot ~target

let fail_back t slot ~preferred =
  t.failbacks <- t.failbacks + 1;
  switch_to t slot ~target:preferred

(* Member-side failure detector. A timeout no longer means "dead":
   the first [retry_budget] silent windows are treated as "slow" — the
   member re-arms the window and, if its handshake is still pending,
   retransmits the stored AuthInitReq as a probe. Only when the budget
   is exhausted does it fail over to the next manager in succession.
   Separately, a member that is connected and stable on a manager
   other than the current primary drifts back to the preferred primary
   after [failback_after] — so a partition that pushed it sideways
   heals into the canonical configuration instead of splitting the
   group forever. The budgeted patience is what gives a warm-promoted
   successor its window: its recovery challenge lands (and resets the
   silence clock) well before the cold failover would trigger. *)
let start_failure_detector t slot =
  let h =
    Netsim.Sim.every_handle t.sim ~period:t.config.check_period (fun () ->
        if slot.active then begin
          let now = Netsim.Sim.now t.sim in
          let silence = Int64.sub now slot.last_admin in
          (* Fail-back only from a demonstrably live session — a
             silent non-preferred target is the detector's business,
             not a candidate for a polite migration. *)
          (match primary t with
          | Some preferred
            when Member.is_connected slot.automaton
                 && slot.target <> preferred
                 && Netsim.Vtime.(silence < t.config.failure_timeout) -> (
              match slot.failback_at with
              | None ->
                  slot.failback_at <-
                    Some (Netsim.Vtime.add now t.config.failback_after)
              | Some at when Netsim.Vtime.(at <= now) ->
                  fail_back t slot ~preferred
              | Some _ -> ())
          | Some _ | None -> slot.failback_at <- None);
          if Netsim.Vtime.(t.config.failure_timeout <= silence) then
            if slot.retries < t.config.retry_budget then begin
              slot.retries <- slot.retries + 1;
              send_frames t ~src:slot.m_name
                (Member.retransmit_join slot.automaton);
              slot.last_admin <- Netsim.Sim.now t.sim
            end
            else fail_over t slot
        end)
  in
  t.handles <- h :: t.handles

let start_heartbeat t mgr =
  let h =
    Netsim.Sim.every_handle t.sim ~period:t.config.heartbeat_period (fun () ->
        if not mgr.crashed then
          send_frames t ~src:mgr.name
            (Leader.broadcast_admin mgr.leader (Wire.Admin.Notice "hb")))
  in
  t.handles <- h :: t.handles

let watch_nonce = function
  | Leader.Waiting_for_key_ack (n, _)
  | Leader.Waiting_for_ack (n, _)
  | Leader.Recovering (n, _) ->
      Some n
  | Leader.Not_connected | Leader.Connected _ -> None

type outstanding = Half_open | Awaiting | Recovering

(* Manager-side scan: re-send outstanding AuthKeyDist/AdminMsg/
   RecoveryChallenge frames whose nonce survived a previous scan
   unchanged (so lost replies don't wedge a session), and
   garbage-collect exchanges that stay open past twice the failure
   timeout — by then the member has either probed again (fresh nonce)
   or failed over elsewhere. An unanswered recovery challenge is
   aborted, which discards the journalled key: the cold fallback for
   that one member. *)
let start_manager_scan t mgr =
  let gc_after = Int64.mul 2L t.config.failure_timeout in
  let h =
    Netsim.Sim.every_handle t.sim ~period:t.config.check_period (fun () ->
        if not mgr.crashed then begin
          let now = Netsim.Sim.now t.sim in
          let outstanding =
            List.map (fun who -> (who, Half_open)) (Leader.half_open mgr.leader)
            @ List.map (fun who -> (who, Awaiting))
                (Leader.awaiting_ack mgr.leader)
            @ List.map (fun who -> (who, Recovering))
                (Leader.recovering mgr.leader)
          in
          let live = List.map fst outstanding in
          Hashtbl.iter
            (fun who _ ->
              if not (List.mem who live) then Hashtbl.remove mgr.watches who)
            (Hashtbl.copy mgr.watches);
          List.iter
            (fun (who, kind) ->
              match watch_nonce (Leader.session mgr.leader who) with
              | None -> Hashtbl.remove mgr.watches who
              | Some n -> (
                  match Hashtbl.find_opt mgr.watches who with
                  | Some w when Wire.Nonce.equal w.w_nonce n ->
                      if Netsim.Vtime.(gc_after <= Int64.sub now w.first_seen)
                      then begin
                        (* Stalled past the deadline. A half-open
                           handshake is silently reset; a member that
                           never acks an AdminMsg is presumed dead and
                           expelled — freeing the session so a later
                           re-handshake (e.g. after a partition heals)
                           is accepted instead of rejected as
                           "in session". *)
                        (match kind with
                        | Half_open ->
                            ignore (Leader.abort_half_open mgr.leader who)
                        | Awaiting ->
                            send_frames t ~src:mgr.name
                              (Leader.expel mgr.leader who)
                        | Recovering ->
                            ignore (Leader.abort_recovery mgr.leader who));
                        Hashtbl.remove mgr.watches who
                      end
                      else
                        send_frames t ~src:mgr.name
                          (Leader.retransmit mgr.leader who)
                  | Some _ | None ->
                      Hashtbl.replace mgr.watches who
                        { w_nonce = n; first_seen = now }))
            outstanding
        end)
  in
  t.handles <- h :: t.handles

(* --- the replication plane --- *)

let live_backups t mgr =
  Array.to_list t.managers
  |> List.filter_map (fun m ->
         if m.name <> mgr.name && not m.crashed then Some m.name else None)

let make_replica ?(term = 0) t mgr ~primary_name =
  mgr.replica <-
    Some
      (Replication.Replica.create ~self:mgr.name ~primary:primary_name
         ~key:t.repl_key ~rng:(Netsim.Sim.rng t.sim)
         ~disk:(Store.Mem.handle mgr.disk) ~term ~counters:t.counters ());
  mgr.repl_last <- Netsim.Sim.now t.sim

(* Demotion: authentic evidence of a strictly higher term arrived at a
   sourcing manager (the [on_superseded] callback). Stop sourcing,
   discard the journal's divergent suffix — everything past the last
   byte some backup acknowledged under our common term; those
   unwitnessed records (typically partition-side expulsions and epoch
   bumps) never reached the group that moved on — and rejoin the live
   source as an empty catching-up backup. The replica is seeded at the
   superseding term so replays of our own dead stream cannot re-adopt,
   and [catching_up] keeps the promotion watchdog quiet until the new
   term's snapshot has landed. Members need not be told: anyone we
   still believed in was challenged over to the successor long ago,
   and our sessions die with the demoted leader automaton. *)
let demote t mgr ~term ~primary_name =
  match mgr.source with
  | None -> ()
  | Some s ->
      t.counters.demotions <- t.counters.demotions + 1;
      Replication.Source.detach s;
      (match mgr.journal with
      | Some j ->
          let keep =
            min (Replication.Source.acked_prefix s)
              (String.length (Journal.contents j))
          in
          ignore
            (Journal.recover ~disk:(Store.Mem.handle mgr.disk) ~file:"journal"
               (String.sub (Journal.contents j) 0 keep))
      | None -> ());
      mgr.source <- None;
      mgr.journal <- None;
      (* Stop shipping suspicion: a demoted manager has no stream. *)
      (match mgr.sentinel with
      | Some sn -> Sentinel.set_ship sn (fun _ -> ())
      | None -> ());
      mgr.leader <-
        Leader.create ~self:mgr.name ~rng:(Netsim.Sim.rng t.sim)
          ~directory:t.directory ~vault:mgr.vault ?sentinel:mgr.sentinel ();
      make_replica t mgr ~primary_name ~term;
      mgr.catching_up <- true

let make_source t mgr ~term ~journal =
  mgr.replica <- None;
  mgr.catching_up <- false;
  mgr.journal <- Some journal;
  mgr.source <-
    Some
      (Replication.Source.create ~self:mgr.name ~backups:(live_backups t mgr)
         ~term ~key:t.repl_key ~rng:(Netsim.Sim.rng t.sim)
         ~send:(fun f -> send_frames t ~src:mgr.name [ f ])
         ~journal
         ~on_superseded:(fun ~term ~primary ->
           demote t mgr ~term ~primary_name:primary)
         ~counters:t.counters ())

(* Hook the primary's delivery layer into its replication source, so
   every durable queue mutation ships to the backups — and ship the
   current images once so the new term's stream covers backlogs that
   predate it. *)
let wire_delivery _t mgr =
  match (Leader.delivery mgr.leader, mgr.source) with
  | Some d, Some s ->
      Delivery.set_ship d
        (Some
           (fun ~file image ->
             Replication.Source.ship_queue_image s ~file image));
      List.iter
        (fun (file, image) -> Replication.Source.ship_queue_image s ~file image)
        (Delivery.files d)
  | _ -> ()

(* Hook the primary's sentinel into its replication source, so every
   suspicion escalation ships to the backups — and ship the current
   snapshot once so the new term's stream covers suspicion accrued
   before this manager started sourcing. *)
let wire_sentinel _t mgr =
  match (mgr.sentinel, mgr.source) with
  | Some sn, Some s ->
      Sentinel.set_ship sn (fun blob ->
          Replication.Source.ship_suspicion s blob);
      Replication.Source.ship_suspicion s (Sentinel.export sn)
  | _ -> ()

let start_repl_heartbeat t mgr =
  let h =
    Netsim.Sim.every_handle t.sim ~period:t.config.repl_heartbeat_period
      (fun () ->
        if not mgr.crashed then
          match mgr.source with
          | Some s -> Replication.Source.heartbeat s
          | None -> ())
  in
  t.handles <- h :: t.handles

(* Promote a backup whose replication channel has gone silent. The
   replica bytes are replayed exactly like a local journal surviving a
   crash: a usable prefix yields a warm leader that challenges every
   replicated session under its [K_a] (members keep their keys and
   redirect to us), an unusable one yields a cold leader that beacons.
   Either way this manager becomes the stream's source at the next
   generation's term at its own rank (see {!term_of} — unique even
   under concurrent promotions), so the remaining backups adopt the
   succession from one frame. *)
let promote t mgr =
  match mgr.replica with
  | None -> ()
  | Some r ->
      let bytes = Replication.Replica.contents r in
      let term =
        promotion_term ~n:(Array.length t.managers) ~idx:mgr.idx
          ~seen:(Replication.Replica.term r)
      in
      let backend = Store.Mem.handle mgr.disk in
      let rng = Netsim.Sim.rng t.sim in
      let journal, state, _status =
        Journal.recover ~disk:backend ~file:"journal" bytes
      in
      (* The replicated queue images carry the offline members' backlogs
         across the promotion: the successor's delivery layer is rebuilt
         from them (replay is total, torn images cost at most a damaged
         suffix) and keeps draining without member re-handshakes. The
         queues hold plaintext payloads re-sealed at fire time, so they
         are safe to keep even on a cold promotion that distrusts the
         replica's sessions. *)
      let delivery =
        Option.map
          (fun policy ->
            Delivery.of_images ~policy ~disk:backend
              (Replication.Replica.queue_images r))
          t.delivery_policy
      in
      (* Merge the replicated suspicion snapshot before the successor
         serves anyone: levels ratchet, so a suspect the dead primary
         quarantined stays quarantined — it cannot launder its record
         by crashing the leader. The successor's first containment
         sweep re-announces and re-rekeys, which is what a group under
         new management should do anyway. *)
      (match (mgr.sentinel, Replication.Replica.suspicion r) with
      | Some sn, Some blob -> ignore (Sentinel.import sn blob)
      | _ -> ());
      let warm =
        t.config.warm_failover && state.Journal.sessions <> []
      in
      if warm then begin
        t.counters.warm_promotions <- t.counters.warm_promotions + 1;
        let leader', challenges =
          Leader.recover ~self:mgr.name ~rng ~directory:t.directory ~journal
            ~vault:mgr.vault ?delivery ?sentinel:mgr.sentinel ~state ()
        in
        mgr.leader <- leader';
        make_source t mgr ~term ~journal;
        wire_delivery t mgr;
        wire_sentinel t mgr;
        send_frames t ~src:mgr.name challenges
      end
      else begin
        t.counters.cold_promotions <- t.counters.cold_promotions + 1;
        (* Distrust the replica's sessions: restart from an empty
           journal, keeping only the epoch floor (journal belief plus
           vault) for the beacons. *)
        let journal = Journal.create ~disk:backend ~file:"journal" () in
        let leader', beacons =
          Leader.cold_recover ~self:mgr.name ~rng ~directory:t.directory
            ~journal ~vault:mgr.vault ?delivery ?sentinel:mgr.sentinel ~state ()
        in
        mgr.leader <- leader';
        make_source t mgr ~term ~journal;
        wire_delivery t mgr;
        wire_sentinel t mgr;
        send_frames t ~src:mgr.name beacons
      end

(* Backup-side promotion watchdog. Silence thresholds are staggered by
   succession position — the first backup waits one failure timeout,
   the second two, and so on — so at most one backup promotes per
   failure: the survivor's term+1 snapshot resets everyone else's
   silence clock before their own (longer) threshold expires. *)
let start_promotion_watchdog t mgr =
  let threshold =
    Int64.mul (Int64.of_int (max 1 mgr.idx)) t.config.failure_timeout
  in
  let h =
    Netsim.Sim.every_handle t.sim ~period:t.config.check_period (fun () ->
        if not mgr.crashed then
          match mgr.replica with
          | None -> ()
          | Some r ->
              let now = Netsim.Sim.now t.sim in
              if Replication.Replica.take_activity r then begin
                mgr.repl_last <- now;
                (* A freshly demoted manager becomes promotable again
                   only once the live term's opening snapshot has
                   landed — promoting an empty replica would
                   cold-restart the very group it just rejoined. *)
                if mgr.catching_up && Replication.Replica.expected r > 0 then
                  mgr.catching_up <- false
              end
              else if
                (not mgr.catching_up)
                && Netsim.Vtime.(threshold <= Int64.sub now mgr.repl_last)
              then promote t mgr)
  in
  t.handles <- h :: t.handles

let create ?(seed = 77L) ?(config = default_config) ?delivery ?intrusion
    ~managers ~directory () =
  if managers = [] then invalid_arg "Failover.create: no managers";
  let sim = Netsim.Sim.create ~seed () in
  let net = Netsim.Network.create ~sim () in
  let rng = Netsim.Sim.rng sim in
  let counters = Replication.fresh_counters () in
  let repl_key = Key.fresh Key.Long_term rng in
  let mk_manager idx name =
    let disk = Store.Mem.create () in
    let vault = Store.Vault.create ~disk:(Store.Mem.handle disk) () in
    let sentinel =
      Option.map
        (fun config ->
          Sentinel.create ~config ~clock:(fun () -> Netsim.Sim.now sim) ())
        intrusion
    in
    {
      name;
      idx;
      disk;
      vault;
      leader = Leader.create ~self:name ~rng ~directory ~vault ?sentinel ();
      journal = None;
      source = None;
      replica = None;
      repl_last = Netsim.Vtime.zero;
      crashed = false;
      catching_up = false;
      watches = Hashtbl.create 8;
      sentinel;
    }
  in
  let managers = Array.of_list (List.mapi mk_manager managers) in
  let members = Hashtbl.create 8 in
  let t =
    {
      sim;
      net;
      config;
      directory;
      delivery_policy = delivery;
      repl_key;
      counters;
      managers;
      members;
      failovers = 0;
      failbacks = 0;
      handles = [];
    }
  in
  Array.iter (attach_manager t) t.managers;
  Array.iter (start_heartbeat t) t.managers;
  Array.iter (start_manager_scan t) t.managers;
  Array.iter (start_repl_heartbeat t) t.managers;
  Array.iter (start_promotion_watchdog t) t.managers;
  (* The initial primary journals through its own disk and ships the
     stream; every other manager follows as a replica. *)
  let m0 = t.managers.(0) in
  let journal =
    Journal.create ~disk:(Store.Mem.handle m0.disk) ~file:"journal" ()
  in
  let delivery0 =
    Option.map
      (fun policy ->
        Delivery.create ~policy ~disk:(Store.Mem.handle m0.disk) ())
      t.delivery_policy
  in
  m0.leader <-
    Leader.create ~self:m0.name ~rng ~directory ~journal ~vault:m0.vault
      ?delivery:delivery0 ?sentinel:m0.sentinel ();
  let n = Array.length t.managers in
  let term0 = term_of ~n ~generation:1 ~idx:0 in
  make_source t m0 ~term:term0 ~journal;
  wire_delivery t m0;
  wire_sentinel t m0;
  (* Backups start with the initial term as their stale floor, so
     every term any manager ever mints is generation-consistent. *)
  Array.iter
    (fun mgr ->
      if mgr.idx > 0 then make_replica t mgr ~primary_name:m0.name ~term:term0)
    t.managers;
  List.iter
    (fun (m_name, password) ->
      let slot =
        {
          m_name;
          password;
          automaton =
            Member.create ~self:m_name ~leader:t.managers.(0).name ~password
              ~rng;
          target = t.managers.(0).name;
          active = false;
          last_admin = Netsim.Vtime.zero;
          retries = 0;
          failback_at = None;
        }
      in
      Hashtbl.replace members m_name slot;
      attach_member t slot;
      start_failure_detector t slot)
    directory;
  t

let start t = Hashtbl.iter (fun _ slot -> join_slot t slot) t.members

let stop t =
  List.iter Netsim.Sim.cancel t.handles;
  t.handles <- []

let join t who =
  match Hashtbl.find_opt t.members who with
  | Some slot -> join_slot t slot
  | None -> raise Not_found

let member t who =
  match Hashtbl.find_opt t.members who with
  | Some slot -> slot.automaton
  | None -> raise Not_found

let leader t name =
  let found = ref None in
  Array.iter (fun mgr -> if mgr.name = name then found := Some mgr.leader) t.managers;
  match !found with Some l -> l | None -> raise Not_found

let send_app t who body =
  match Hashtbl.find_opt t.members who with
  | Some slot -> send_frames t ~src:who (Member.send_app slot.automaton body)
  | None -> raise Not_found

let crash_manager t mgr =
  mgr.crashed <- true;
  (match mgr.source with
  | Some s ->
      Replication.Source.detach s;
      mgr.source <- None
  | None -> ());
  Netsim.Network.unregister t.net mgr.name

let crash_primary t =
  match primary t with
  | None -> ()
  | Some name ->
      Array.iter
        (fun mgr -> if mgr.name = name then crash_manager t mgr)
        t.managers

let crash_primary_at t time =
  Netsim.Sim.schedule_at t.sim ~time (fun () -> crash_primary t)

let manager_of t who =
  match Hashtbl.find_opt t.members who with
  | Some slot when Member.is_connected slot.automaton -> Some slot.target
  | Some _ | None -> None

let connected_members t =
  Hashtbl.fold
    (fun name slot acc ->
      let target_live =
        Array.exists
          (fun mgr -> mgr.name = slot.target && not mgr.crashed)
          t.managers
      in
      if Member.is_connected slot.automaton && target_live then name :: acc
      else acc)
    t.members []
  |> List.sort String.compare

let failovers t = t.failovers
let failbacks t = t.failbacks
let demotions t = t.counters.Replication.demotions

type role =
  | Primary of { term : int }
  | Backup of { term : int; catching_up : bool }
  | Down

let find_manager t name =
  let found = ref None in
  Array.iter (fun mgr -> if mgr.name = name then found := Some mgr) t.managers;
  match !found with Some mgr -> mgr | None -> raise Not_found

let role t name =
  let mgr = find_manager t name in
  if mgr.crashed then Down
  else
    match (mgr.source, mgr.replica) with
    | Some s, _ -> Primary { term = Replication.Source.term s }
    | None, Some r ->
        Backup
          {
            term = Replication.Replica.term r;
            catching_up = mgr.catching_up;
          }
    | None, None -> Down

(* Drive the current primary's group-management plane from the
   harness: used by the churn/failover scenarios to park traffic in a
   member's store-and-forward queue (expel-as-silent) and to age it
   (rekey) while the member is away. *)
let with_primary t f =
  match primary t with
  | None -> ()
  | Some name ->
      let mgr = find_manager t name in
      send_frames t ~src:mgr.name (f mgr.leader)

let expel t who = with_primary t (fun l -> Leader.expel l who)
let rekey t = with_primary t (fun l -> Leader.rekey l)

let replica_bytes t name =
  match (find_manager t name).replica with
  | Some r -> Some (Replication.Replica.contents r)
  | None -> None

let journal_bytes t name =
  match (find_manager t name).journal with
  | Some j -> Some (Journal.contents j)
  | None -> None

let sentinel t name = (find_manager t name).sentinel

let replica_suspicion t name =
  match (find_manager t name).replica with
  | Some r -> Replication.Replica.suspicion r
  | None -> None

let replication_stats t = Replication.snapshot_counters t.counters

(* The live primary's store-and-forward counters (fresh counters start
   with each promotion's rebuilt layer), plus the members' cumulative
   dedup counts — those survive promotions because the delivery floor
   lives at the member. *)
let delivery_stats t =
  let base = ref None in
  Array.iter
    (fun mgr ->
      if (not mgr.crashed) && mgr.source <> None then
        match Leader.delivery mgr.leader with
        | Some d -> base := Some (Delivery.counters d)
        | None -> ())
    t.managers;
  let deduped =
    Hashtbl.fold
      (fun _ slot acc -> acc + Member.deliveries_deduped slot.automaton)
      t.members 0
  in
  match !base with
  | None -> { Netsim.Stats.empty_delivery with deduped }
  | Some c ->
      {
        Netsim.Stats.queued = c.Delivery.queued;
        drained = c.Delivery.drained;
        deduped;
        resealed = c.Delivery.resealed;
        rejected_stale = c.Delivery.rejected_stale;
        delivered_stale = c.Delivery.delivered_stale;
        queue_bytes_hwm = c.Delivery.queue_bytes_hwm;
      }

let replica_queue_images t name =
  match (find_manager t name).replica with
  | Some r -> Replication.Replica.queue_images r
  | None -> []

let replication_lag t =
  let found = ref [] in
  Array.iter
    (fun mgr ->
      match mgr.source with
      | Some s -> found := Replication.Source.lag s
      | None -> ())
    t.managers;
  !found

let replication_silence t =
  Array.to_list t.managers
  |> List.filter_map (fun mgr ->
         match mgr.replica with
         | Some _ when not mgr.crashed ->
             Some (mgr.name, Int64.sub (Netsim.Sim.now t.sim) mgr.repl_last)
         | Some _ | None -> None)

let run ?until t = Netsim.Sim.run ?until t.sim
