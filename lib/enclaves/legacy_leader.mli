(** Legacy-protocol group leader (§2.2) — the baseline counterpart of
    {!Legacy_member}. See that module for the catalogue of preserved
    weaknesses. Notably, the leader accepts the plaintext
    [LegacyReqClose] at face value: anyone who can write a frame can
    disconnect any member (attack A4). *)

type t

type policy = { rekey_on_join : bool; rekey_on_leave : bool }

val default_policy : policy
(** No automatic rekeying — the paper's minimal setting; scenarios opt
    in per attack. *)

type event =
  | Member_authenticated of Types.agent
  | Member_closed of { member : Types.agent; session_key : Sym_crypto.Key.t }
      (** Session ended; the session key becomes Oops material. *)
  | Key_ack_received of Types.agent
  | App_relayed of { author : Types.agent }
  | Rejected of {
      label : Wire.Frame.label option;
      claimed : Types.agent option;
      reason : Types.reject_reason;
    }

val pp_event : Format.formatter -> event -> unit

type session_view =
  | Not_connected
  | Waiting_auth1
  | Waiting_auth3 of Wire.Nonce.t * Sym_crypto.Key.t
  | Connected of Sym_crypto.Key.t

val create :
  self:Types.agent ->
  rng:Prng.Splitmix.t ->
  directory:(Types.agent * string) list ->
  ?policy:policy ->
  unit ->
  t

val self : t -> Types.agent
val receive : t -> string -> Wire.Frame.t list
val session : t -> Types.agent -> session_view
val members : t -> Types.agent list
val group_key : t -> Types.group_key option

val rekey : t -> Wire.Frame.t list
(** Generate the next group key and send a [NewKey] to every member. *)

val expel : t -> Types.agent -> Wire.Frame.t list
(** The §2.2 "variation used to expel members": send
    [CloseConnection] to the member and broadcast [MemRemoved] to the
    rest. Like everything else in the legacy protocol, the closing
    message is unauthenticated. *)

val drain_events : t -> event list
