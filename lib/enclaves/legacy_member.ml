open Sym_crypto
module F = Wire.Frame
module P = Wire.Payload

type state =
  | S_not_connected
  | S_waiting_ack_open
  | S_waiting_auth2 of { n1 : Wire.Nonce.t }
  | S_connected of { ka : Key.t }
  | S_denied

type event =
  | Joined of { session_key : Key.t }
  | Join_denied
  | Group_key_updated of int
  | View_member_added of Types.agent
  | View_member_removed of Types.agent
  | App_received of { author : Types.agent; body : string }
  | Left
  | Rejected of { label : F.label option; reason : Types.reject_reason }

let pp_event fmt = function
  | Joined _ -> Format.pp_print_string fmt "Joined"
  | Join_denied -> Format.pp_print_string fmt "JoinDenied"
  | Group_key_updated epoch -> Format.fprintf fmt "GroupKeyUpdated(%d)" epoch
  | View_member_added who -> Format.fprintf fmt "ViewMemberAdded(%s)" who
  | View_member_removed who -> Format.fprintf fmt "ViewMemberRemoved(%s)" who
  | App_received { author; body } ->
      Format.fprintf fmt "AppReceived(%s: %s)" author body
  | Left -> Format.pp_print_string fmt "Left"
  | Rejected { label; reason } ->
      Format.fprintf fmt "Rejected(%s, %a)"
        (match label with Some l -> F.label_to_string l | None -> "?")
        Types.pp_reject_reason reason

type state_view =
  | Not_connected
  | Waiting_ack_open
  | Waiting_auth2 of Wire.Nonce.t
  | Connected of Key.t
  | Denied

type t = {
  self : Types.agent;
  leader : Types.agent;
  pa : Key.t;
  rng : Prng.Splitmix.t;
  mutable state : state;
  mutable group_key : Types.group_key option;
  mutable view : Types.agent list;
  mutable app_rev : (Types.agent * string) list;
  mutable events_rev : event list;
}

let create ~self ~leader ~password ~rng =
  {
    self;
    leader;
    pa = Key.long_term ~user:self ~password;
    rng = Prng.Splitmix.split rng;
    state = S_not_connected;
    group_key = None;
    view = [];
    app_rev = [];
    events_rev = [];
  }

let self t = t.self

let state t =
  match t.state with
  | S_not_connected -> Not_connected
  | S_waiting_ack_open -> Waiting_ack_open
  | S_waiting_auth2 { n1 } -> Waiting_auth2 n1
  | S_connected { ka } -> Connected ka
  | S_denied -> Denied

let is_connected t = match t.state with S_connected _ -> true | _ -> false
let group_key t = t.group_key
let group_view t = t.view
let app_log t = List.rev t.app_rev

let session_key t =
  match t.state with S_connected { ka } -> Some ka | _ -> None

let drain_events t =
  let es = List.rev t.events_rev in
  t.events_rev <- [];
  es

let emit t e = t.events_rev <- e :: t.events_rev

let reject t ?label reason =
  emit t (Rejected { label; reason });
  []

let join t =
  match t.state with
  | S_not_connected | S_denied ->
      t.state <- S_waiting_ack_open;
      (* Plaintext pre-auth request: "A, req_open". *)
      [ F.make ~label:F.Req_open ~sender:t.self ~recipient:t.leader ~body:"" ]
  | S_waiting_ack_open | S_waiting_auth2 _ | S_connected _ -> []

let leave t =
  match t.state with
  | S_connected _ ->
      (* Plaintext close request — anybody could have sent this. *)
      [
        F.make ~label:F.Legacy_req_close ~sender:t.self ~recipient:t.leader
          ~body:"";
      ]
  | S_not_connected | S_waiting_ack_open | S_waiting_auth2 _ | S_denied -> []

let handle_ack_open t (frame : F.t) =
  match t.state with
  | S_waiting_ack_open ->
      (* No check whatsoever that this came from the leader. *)
      let n1 = Wire.Nonce.fresh t.rng in
      t.state <- S_waiting_auth2 { n1 };
      let plaintext = P.encode_auth_init { P.a = t.self; l = t.leader; n1 } in
      [
        Sealed_channel.legacy_seal ~rng:t.rng ~key:t.pa ~label:F.Legacy_auth1
          ~sender:t.self ~recipient:t.leader plaintext;
      ]
  | S_not_connected | S_waiting_auth2 _ | S_connected _ | S_denied ->
      reject t ~label:frame.F.label (Types.Wrong_state "not waiting for ack_open")

let handle_connection_denied t (frame : F.t) =
  match t.state with
  | S_waiting_ack_open | S_waiting_auth2 _ ->
      (* Attack A1: the denial is plaintext and unauthenticated, yet
         the legacy member obeys it and abandons the join. *)
      t.state <- S_denied;
      emit t Join_denied;
      []
  | S_not_connected | S_connected _ | S_denied ->
      reject t ~label:frame.F.label (Types.Wrong_state "no join in progress")

let handle_auth2 t (frame : F.t) =
  match t.state with
  | S_waiting_auth2 { n1 } -> (
      match Sealed_channel.legacy_open ~key:t.pa frame with
      | Error reason -> reject t ~label:frame.F.label reason
      | Ok plaintext -> (
          match P.decode_legacy_auth2 plaintext with
          | Error e -> reject t ~label:frame.F.label (Types.Malformed e)
          | Ok { P.l; a; n1 = n1'; n2; ka; kg; epoch } ->
              if l <> t.leader || a <> t.self then
                reject t ~label:frame.F.label Types.Identity_mismatch
              else if not (Wire.Nonce.equal n1 n1') then
                reject t ~label:frame.F.label Types.Stale_nonce
              else if String.length ka <> Key.size || String.length kg <> Key.size
              then reject t ~label:frame.F.label (Types.Malformed "bad key length")
              else begin
                let ka = Key.of_raw Key.Session ka in
                t.state <- S_connected { ka };
                t.group_key <- Some { Types.key = Key.of_raw Key.Group kg; epoch };
                t.view <- [];
                emit t (Joined { session_key = ka });
                emit t (Group_key_updated epoch);
                let plaintext = P.encode_legacy_auth3 { P.n2 } in
                [
                  Sealed_channel.legacy_seal ~rng:t.rng ~key:ka
                    ~label:F.Legacy_auth3 ~sender:t.self ~recipient:t.leader
                    plaintext;
                ]
              end))
  | S_not_connected | S_waiting_ack_open | S_connected _ | S_denied ->
      reject t ~label:frame.F.label (Types.Wrong_state "not waiting for auth2")

let handle_new_key t (frame : F.t) =
  match t.state with
  | S_connected { ka } -> (
      match Sealed_channel.legacy_open ~key:ka frame with
      | Error reason -> reject t ~label:frame.F.label reason
      | Ok plaintext -> (
          match P.decode_legacy_new_key plaintext with
          | Error e -> reject t ~label:frame.F.label (Types.Malformed e)
          | Ok { P.kg; epoch } ->
              if String.length kg <> Key.size then
                reject t ~label:frame.F.label (Types.Malformed "bad key length")
              else begin
                (* Attack A3 lives here: no freshness evidence is
                   required, so a replayed NewKey silently reverts the
                   member to an old group key. *)
                let kg_key = Key.of_raw Key.Group kg in
                t.group_key <- Some { Types.key = kg_key; epoch };
                emit t (Group_key_updated epoch);
                let plaintext = P.encode_legacy_key_ack { P.kg } in
                [
                  Sealed_channel.legacy_seal ~rng:t.rng ~key:kg_key
                    ~label:F.New_key_ack ~sender:t.self ~recipient:t.leader
                    plaintext;
                ]
              end))
  | S_not_connected | S_waiting_ack_open | S_waiting_auth2 _ | S_denied ->
      reject t ~label:frame.F.label (Types.Wrong_state "not connected")

let handle_member_event t (frame : F.t) ~removed =
  match (t.state, t.group_key) with
  | S_connected _, Some { Types.key; _ } -> (
      match Sealed_channel.legacy_open ~key frame with
      | Error reason -> reject t ~label:frame.F.label reason
      | Ok plaintext -> (
          match P.decode_member_event plaintext with
          | Error e -> reject t ~label:frame.F.label (Types.Malformed e)
          | Ok { P.who } ->
              (* Attack A2 lives here: the event is sealed only under
                 K_g, which every member holds, and nothing proves it
                 came from the leader or is fresh. *)
              if removed then begin
                t.view <- List.filter (fun m -> m <> who) t.view;
                emit t (View_member_removed who)
              end
              else if not (List.mem who t.view) then begin
                t.view <- List.sort String.compare (who :: t.view);
                emit t (View_member_added who)
              end;
              []))
  | _ -> reject t ~label:frame.F.label (Types.Wrong_state "not connected")

let handle_close_connection t (frame : F.t) =
  match t.state with
  | S_connected _ ->
      (* Plaintext and unauthenticated, like the denial. *)
      t.state <- S_not_connected;
      t.group_key <- None;
      t.view <- [];
      emit t Left;
      []
  | S_not_connected | S_waiting_ack_open | S_waiting_auth2 _ | S_denied ->
      reject t ~label:frame.F.label (Types.Wrong_state "not connected")

let handle_app_data t (frame : F.t) =
  match t.group_key with
  | None -> reject t ~label:frame.F.label (Types.Wrong_state "no group key")
  | Some { Types.key; _ } -> (
      match Sealed_channel.open_group ~key frame with
      | Error reason -> reject t ~label:frame.F.label reason
      | Ok plaintext -> (
          match P.decode_app_data plaintext with
          | Error e -> reject t ~label:frame.F.label (Types.Malformed e)
          | Ok { P.author; body } ->
              t.app_rev <- (author, body) :: t.app_rev;
              emit t (App_received { author; body });
              []))

let send_app t body =
  match (t.state, t.group_key) with
  | S_connected _, Some { Types.key; _ } ->
      let plaintext = P.encode_app_data { P.author = t.self; body } in
      [
        Sealed_channel.seal_group ~rng:t.rng ~key ~label:F.App_data
          ~sender:t.self ~recipient:t.leader plaintext;
      ]
  | _ -> []

let receive t bytes =
  match F.decode bytes with
  | Error e -> reject t (Types.Malformed e)
  | Ok frame -> (
      match frame.F.label with
      | F.Ack_open -> handle_ack_open t frame
      | F.Connection_denied -> handle_connection_denied t frame
      | F.Legacy_auth2 -> handle_auth2 t frame
      | F.New_key -> handle_new_key t frame
      | F.Mem_joined -> handle_member_event t frame ~removed:false
      | F.Mem_removed -> handle_member_event t frame ~removed:true
      | F.Close_connection -> handle_close_connection t frame
      | F.App_data -> handle_app_data t frame
      | F.Req_open | F.Legacy_auth1 | F.Legacy_auth3 | F.New_key_ack
      | F.Legacy_req_close | F.Auth_init_req | F.Auth_key_dist | F.Auth_ack_key
      | F.Admin_msg | F.Admin_ack | F.Req_close | F.Recovery_challenge
      | F.Recovery_response | F.View_resync_req | F.Cold_restart
      | F.Cold_restart_challenge | F.Cold_restart_ack | F.Repl_record
      | F.Repl_ack | F.Repl_fetch | F.Repl_stale ->
          reject t ~label:frame.F.label (Types.Unexpected_label frame.F.label))
