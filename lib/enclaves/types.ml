type agent = string
type group_key = { key : Sym_crypto.Key.t; epoch : int }

let pp_group_key fmt { key; epoch } =
  Format.fprintf fmt "K_g[epoch=%d,fp=%s]" epoch (Sym_crypto.Key.fingerprint key)

type reject_reason =
  | Malformed of string
  | Auth_failure
  | Wrong_state of string
  | Identity_mismatch
  | Stale_nonce
  | Unknown_sender of agent
  | Unexpected_label of Wire.Frame.label
  | Stale_epoch of { got : int; have : int }

let pp_reject_reason fmt = function
  | Malformed what -> Format.fprintf fmt "malformed: %s" what
  | Auth_failure -> Format.pp_print_string fmt "authentication failure"
  | Wrong_state what -> Format.fprintf fmt "wrong state: %s" what
  | Identity_mismatch -> Format.pp_print_string fmt "identity mismatch"
  | Stale_nonce -> Format.pp_print_string fmt "stale nonce (replay?)"
  | Unknown_sender who -> Format.fprintf fmt "unknown sender %s" who
  | Unexpected_label l ->
      Format.fprintf fmt "unexpected label %s" (Wire.Frame.label_to_string l)
  | Stale_epoch { got; have } ->
      Format.fprintf fmt "stale epoch %d (have %d)" got have
