open Sym_crypto
module F = Wire.Frame
module P = Wire.Payload

type policy = { rekey_on_join : bool; rekey_on_leave : bool }

let default_policy = { rekey_on_join = false; rekey_on_leave = false }

type event =
  | Member_authenticated of Types.agent
  | Member_closed of { member : Types.agent; session_key : Key.t }
  | Key_ack_received of Types.agent
  | App_relayed of { author : Types.agent }
  | Rejected of {
      label : F.label option;
      claimed : Types.agent option;
      reason : Types.reject_reason;
    }

let pp_event fmt = function
  | Member_authenticated who -> Format.fprintf fmt "MemberAuthenticated(%s)" who
  | Member_closed { member; _ } -> Format.fprintf fmt "MemberClosed(%s)" member
  | Key_ack_received who -> Format.fprintf fmt "KeyAckReceived(%s)" who
  | App_relayed { author } -> Format.fprintf fmt "AppRelayed(%s)" author
  | Rejected { label; claimed; reason } ->
      Format.fprintf fmt "Rejected(%s, %s, %a)"
        (match label with Some l -> F.label_to_string l | None -> "?")
        (Option.value claimed ~default:"?")
        Types.pp_reject_reason reason

type mstate =
  | S_not_connected
  | S_waiting_auth1
  | S_waiting_auth3 of { n2 : Wire.Nonce.t; ka : Key.t }
  | S_connected of { ka : Key.t }

type session_view =
  | Not_connected
  | Waiting_auth1
  | Waiting_auth3 of Wire.Nonce.t * Key.t
  | Connected of Key.t

type session = { mutable mstate : mstate }

type t = {
  self : Types.agent;
  rng : Prng.Splitmix.t;
  directory : (Types.agent, Key.t) Hashtbl.t;
  sessions : (Types.agent, session) Hashtbl.t;
  policy : policy;
  mutable group_key : Types.group_key option;
  mutable next_epoch : int;
  mutable events_rev : event list;
}

let create ~self ~rng ~directory ?(policy = default_policy) () =
  let dir = Hashtbl.create 16 in
  List.iter
    (fun (user, password) ->
      Hashtbl.replace dir user (Key.long_term ~user ~password))
    directory;
  {
    self;
    rng = Prng.Splitmix.split rng;
    directory = dir;
    sessions = Hashtbl.create 16;
    policy;
    group_key = None;
    next_epoch = 1;
    events_rev = [];
  }

let self t = t.self

let session_of t who =
  match Hashtbl.find_opt t.sessions who with
  | Some s -> s
  | None ->
      let s = { mstate = S_not_connected } in
      Hashtbl.replace t.sessions who s;
      s

let session t who =
  match (session_of t who).mstate with
  | S_not_connected -> Not_connected
  | S_waiting_auth1 -> Waiting_auth1
  | S_waiting_auth3 { n2; ka } -> Waiting_auth3 (n2, ka)
  | S_connected { ka } -> Connected ka

let members t =
  Hashtbl.fold
    (fun who s acc ->
      match s.mstate with S_connected _ -> who :: acc | _ -> acc)
    t.sessions []
  |> List.sort String.compare

let group_key t = t.group_key

let drain_events t =
  let es = List.rev t.events_rev in
  t.events_rev <- [];
  es

let emit t e = t.events_rev <- e :: t.events_rev

let reject t ?label ?claimed reason =
  emit t (Rejected { label; claimed; reason });
  []

let current_or_fresh_group_key t =
  match t.group_key with
  | Some gk -> gk
  | None ->
      let gk = { Types.key = Key.fresh Key.Group t.rng; epoch = t.next_epoch } in
      t.next_epoch <- t.next_epoch + 1;
      t.group_key <- Some gk;
      gk

let new_key_frame t who ~ka gk =
  let plaintext =
    P.encode_legacy_new_key { P.kg = Key.raw gk.Types.key; epoch = gk.Types.epoch }
  in
  Sealed_channel.legacy_seal ~rng:t.rng ~key:ka ~label:F.New_key ~sender:t.self
    ~recipient:who plaintext

let rekey t =
  let gk = { Types.key = Key.fresh Key.Group t.rng; epoch = t.next_epoch } in
  t.next_epoch <- t.next_epoch + 1;
  t.group_key <- Some gk;
  List.filter_map
    (fun who ->
      match (session_of t who).mstate with
      | S_connected { ka } -> Some (new_key_frame t who ~ka gk)
      | _ -> None)
    (members t)

let member_event_frame t ~label ~recipient ~who =
  match t.group_key with
  | None -> None
  | Some { Types.key; _ } ->
      let plaintext = P.encode_member_event { P.who } in
      Some
        (Sealed_channel.legacy_seal ~rng:t.rng ~key ~label ~sender:t.self
           ~recipient plaintext)

let expel t who =
  let s = session_of t who in
  match s.mstate with
  | S_connected { ka } ->
      s.mstate <- S_not_connected;
      emit t (Member_closed { member = who; session_key = ka });
      let close =
        F.make ~label:F.Close_connection ~sender:t.self ~recipient:who ~body:""
      in
      let notices =
        List.filter_map
          (fun m ->
            member_event_frame t ~label:F.Mem_removed ~recipient:m ~who)
          (members t)
      in
      let rekeys = if t.policy.rekey_on_leave then rekey t else [] in
      (close :: notices) @ rekeys
  | S_not_connected | S_waiting_auth1 | S_waiting_auth3 _ -> []

let handle_req_open t (frame : F.t) =
  let claimed = frame.F.sender in
  let s = session_of t claimed in
  match s.mstate with
  | S_not_connected ->
      if Hashtbl.mem t.directory claimed then begin
        s.mstate <- S_waiting_auth1;
        [ F.make ~label:F.Ack_open ~sender:t.self ~recipient:claimed ~body:"" ]
      end
      else
        [
          F.make ~label:F.Connection_denied ~sender:t.self ~recipient:claimed
            ~body:"";
        ]
  | S_waiting_auth1 | S_waiting_auth3 _ | S_connected _ ->
      reject t ~label:frame.F.label ~claimed (Types.Wrong_state "join in progress")

let handle_auth1 t (frame : F.t) =
  let claimed = frame.F.sender in
  match Hashtbl.find_opt t.directory claimed with
  | None -> reject t ~label:frame.F.label ~claimed (Types.Unknown_sender claimed)
  | Some pa -> (
      let s = session_of t claimed in
      match s.mstate with
      | S_waiting_auth1 -> (
          match Sealed_channel.legacy_open ~key:pa frame with
          | Error reason -> reject t ~label:frame.F.label ~claimed reason
          | Ok plaintext -> (
              match P.decode_auth_init plaintext with
              | Error e ->
                  reject t ~label:frame.F.label ~claimed (Types.Malformed e)
              | Ok { P.a; l; n1 } ->
                  if a <> claimed || l <> t.self then
                    reject t ~label:frame.F.label ~claimed Types.Identity_mismatch
                  else begin
                    let ka = Key.fresh Key.Session t.rng in
                    let n2 = Wire.Nonce.fresh t.rng in
                    let gk = current_or_fresh_group_key t in
                    s.mstate <- S_waiting_auth3 { n2; ka };
                    let plaintext =
                      P.encode_legacy_auth2
                        {
                          P.l = t.self;
                          a;
                          n1;
                          n2;
                          ka = Key.raw ka;
                          kg = Key.raw gk.Types.key;
                          epoch = gk.Types.epoch;
                        }
                    in
                    [
                      Sealed_channel.legacy_seal ~rng:t.rng ~key:pa
                        ~label:F.Legacy_auth2 ~sender:t.self ~recipient:a
                        plaintext;
                    ]
                  end))
      | S_not_connected | S_waiting_auth3 _ | S_connected _ ->
          reject t ~label:frame.F.label ~claimed
            (Types.Wrong_state "not waiting for auth1"))

let handle_auth3 t (frame : F.t) =
  let claimed = frame.F.sender in
  let s = session_of t claimed in
  match s.mstate with
  | S_waiting_auth3 { n2; ka } -> (
      match Sealed_channel.legacy_open ~key:ka frame with
      | Error reason -> reject t ~label:frame.F.label ~claimed reason
      | Ok plaintext -> (
          match P.decode_legacy_auth3 plaintext with
          | Error e -> reject t ~label:frame.F.label ~claimed (Types.Malformed e)
          | Ok { P.n2 = n2' } ->
              if not (Wire.Nonce.equal n2 n2') then
                reject t ~label:frame.F.label ~claimed Types.Stale_nonce
              else begin
                s.mstate <- S_connected { ka };
                emit t (Member_authenticated claimed);
                let others = List.filter (fun m -> m <> claimed) (members t) in
                (* Tell the group about the newcomer, and the newcomer
                   about the group — all under K_g. *)
                let joins =
                  List.filter_map
                    (fun m ->
                      member_event_frame t ~label:F.Mem_joined ~recipient:m
                        ~who:claimed)
                    others
                in
                let snapshot =
                  List.filter_map
                    (fun m ->
                      member_event_frame t ~label:F.Mem_joined
                        ~recipient:claimed ~who:m)
                    others
                in
                let rekeys = if t.policy.rekey_on_join then rekey t else [] in
                joins @ snapshot @ rekeys
              end))
  | S_not_connected | S_waiting_auth1 | S_connected _ ->
      reject t ~label:frame.F.label ~claimed
        (Types.Wrong_state "not waiting for auth3")

let handle_req_close t (frame : F.t) =
  (* Attack A4 lives here: the request is plaintext, so the leader
     cannot tell the member from an impostor. *)
  let claimed = frame.F.sender in
  let s = session_of t claimed in
  match s.mstate with
  | S_connected { ka } ->
      s.mstate <- S_not_connected;
      emit t (Member_closed { member = claimed; session_key = ka });
      let close =
        F.make ~label:F.Close_connection ~sender:t.self ~recipient:claimed
          ~body:""
      in
      let notices =
        List.filter_map
          (fun m ->
            member_event_frame t ~label:F.Mem_removed ~recipient:m ~who:claimed)
          (members t)
      in
      let rekeys = if t.policy.rekey_on_leave then rekey t else [] in
      (close :: notices) @ rekeys
  | S_not_connected | S_waiting_auth1 | S_waiting_auth3 _ ->
      reject t ~label:frame.F.label ~claimed (Types.Wrong_state "not connected")

let handle_new_key_ack t (frame : F.t) =
  let claimed = frame.F.sender in
  match t.group_key with
  | None -> reject t ~label:frame.F.label ~claimed (Types.Wrong_state "no group key")
  | Some { Types.key; _ } -> (
      match Sealed_channel.legacy_open ~key frame with
      | Error reason -> reject t ~label:frame.F.label ~claimed reason
      | Ok plaintext -> (
          match P.decode_legacy_key_ack plaintext with
          | Error e -> reject t ~label:frame.F.label ~claimed (Types.Malformed e)
          | Ok _ ->
              emit t (Key_ack_received claimed);
              []))

let handle_app_data t (frame : F.t) =
  let author = frame.F.sender in
  let s = session_of t author in
  match (s.mstate, t.group_key) with
  | S_connected _, Some { Types.key; _ } -> (
      match Sealed_channel.open_group ~key frame with
      | Error reason -> reject t ~label:frame.F.label ~claimed:author reason
      | Ok _ ->
          emit t (App_relayed { author });
          List.filter_map
            (fun m ->
              if m = author then None
              else
                Some
                  (F.make ~label:F.App_data ~sender:author ~recipient:m
                     ~body:frame.F.body))
            (members t))
  | _ ->
      reject t ~label:frame.F.label ~claimed:author
        (Types.Wrong_state "app data from non-member")

let receive t bytes =
  match F.decode bytes with
  | Error e -> reject t (Types.Malformed e)
  | Ok frame -> (
      match frame.F.label with
      | F.Req_open -> handle_req_open t frame
      | F.Legacy_auth1 -> handle_auth1 t frame
      | F.Legacy_auth3 -> handle_auth3 t frame
      | F.Legacy_req_close -> handle_req_close t frame
      | F.New_key_ack -> handle_new_key_ack t frame
      | F.App_data -> handle_app_data t frame
      | F.Ack_open | F.Connection_denied | F.Legacy_auth2 | F.New_key
      | F.Close_connection | F.Mem_joined | F.Mem_removed | F.Auth_init_req
      | F.Auth_key_dist | F.Auth_ack_key | F.Admin_msg | F.Admin_ack
      | F.Req_close | F.Recovery_challenge | F.Recovery_response
      | F.View_resync_req | F.Cold_restart | F.Cold_restart_challenge
      | F.Cold_restart_ack | F.Repl_record | F.Repl_ack | F.Repl_fetch | F.Repl_stale ->
          reject t ~label:frame.F.label (Types.Unexpected_label frame.F.label))
