(** Durable leader journal — an append-only, checksummed,
    truncation-tolerant binary log of the leader's trust-critical
    state: session establishments and closes, and group-key epoch
    bumps.

    The journal is what makes leader failover {e warm}: after a crash
    the replacement process replays the surviving bytes, recovers the
    last consistent prefix, and re-validates each recovered session
    with a live challenge over the journalled [K_a] before trusting it
    (see {!Leader.recover}). PR-2's failover was deliberately cold —
    "no state of the dead manager is trusted"; the journal upgrade is
    "no state of the dead manager is trusted {e until it answers a
    challenge under the key only that member and the leader hold}".

    {2 Format}

    {v
    header  := "EJNL" version:u8(=1)
    record  := len:u32 payload:len sum:8
    payload := seq:u32 tag:u8 fields...
    v}

    [sum] is SipHash-2-4 of the payload under the journal's MAC key.
    Records are framed independently, so any {e tail} damage — a torn
    final write, truncation at an arbitrary byte, a flipped bit — costs
    at most the records from the damage onward: {!replay} walks
    records in order and stops at the first length that overruns the
    buffer, checksum mismatch, malformed payload, or out-of-sequence
    record, returning the valid prefix. It never raises on any input.

    {2 Compaction}

    A [Snapshot] record captures the whole folded state; {!compact}
    rewrites the journal as a single snapshot, and {!append}
    auto-compacts once enough records accumulate since the last
    snapshot, so the journal's size is bounded by the live-session
    count, not the session churn. *)

type record =
  | Session_established of { member : Types.agent; key : string }
      (** A member completed the §3.2 handshake; [key] is the raw
          session key [K_a]. *)
  | Session_closed of { member : Types.agent }
      (** The session ended (leave, expulsion, or recovery
          fallback) — the journalled [K_a] is no longer trusted. *)
  | Epoch_bump of { key : string; epoch : int }
      (** A fresh group key [K_g] was generated for [epoch]. *)
  | Snapshot of state
      (** The folded state of everything before this record. *)

and state = {
  sessions : (Types.agent * string) list;
      (** Live sessions, sorted by member name; raw [K_a] bytes. *)
  group_key : (string * int) option;  (** Raw [K_g] bytes and epoch. *)
  next_epoch : int;
}

val empty_state : state

val pp_record : Format.formatter -> record -> unit
val record_equal : record -> record -> bool

type status =
  | Clean  (** Every byte of the buffer parsed and verified. *)
  | Damaged of { valid_records : int; valid_bytes : int }
      (** Replay stopped early; only the prefix described here was
          recovered. *)

val pp_status : Format.formatter -> status -> unit

type t

val create :
  ?mac_key:string ->
  ?compact_every:int ->
  ?disk:Store.Backend.t ->
  ?file:string ->
  unit ->
  t
(** An empty journal. [mac_key] (16 bytes, default a fixed public key)
    keys the per-record SipHash checksum; [compact_every] (default
    [256]) is the record count past which {!append} folds the log into
    a snapshot.

    With [disk], every mutation is mirrored through the store backend
    to [file] (default ["journal"]) before returning: appends are an
    incremental [pwrite] at the record's offset followed by [fsync];
    anything that replaces the image (creation, {!reset}, compaction)
    stages the full bytes in [file ^ ".tmp"], fsyncs, then atomically
    renames over [file]. Transient [Store.Backend.Eio] is retried a
    bounded number of times (see {!eio_retries});
    [Store.Backend.Crashed] propagates.
    @raise Invalid_argument if [mac_key] is not 16 bytes or
    [compact_every < 1]. *)

val append : t -> record -> unit
(** Append one checksummed record; may trigger auto-compaction. *)

val compact : t -> unit
(** Rewrite the journal as one [Snapshot] of the current folded
    state. *)

val reset : t -> unit
(** Erase everything — the cold-restart path, where no journalled
    state is trusted. *)

val state : t -> state
(** The folded state of every record appended so far (maintained
    incrementally; O(1)). *)

val records : t -> int
(** Records currently in the buffer (snapshot included). *)

val size : t -> int
(** Buffer size in bytes. *)

val contents : t -> string
(** The raw journal bytes — with a [disk] backend, byte-identical to
    the file after every successful fault-free mutation. *)

val eio_retries : t -> int
(** Transient-EIO retries absorbed by the write-through path so far. *)

val file : t -> string
(** The backing file name (meaningful only with a [disk] backend). *)

type event =
  | Appended of string
      (** One framed record (len + payload + checksum) was appended;
          the argument is exactly the bytes that extended the image. *)
  | Published of string
      (** The whole image was replaced (compaction or {!reset}); the
          argument is the complete new journal bytes. *)

val set_observer : t -> (event -> unit) option -> unit
(** Mutation hook — the warm-standby replication source subscribes
    here to ship every durable change to the backup managers. Fired
    {e after} the disk write-through succeeds, so an observed event
    describes bytes that are already durable locally. At most one
    observer; [None] unsubscribes. *)

val set_durable : t -> bool -> unit
(** Degraded-mode switch. With durability off, appends keep evolving
    the in-memory log (and still fire the observer) but nothing
    touches the backend — the disk image goes stale. Re-arm with
    [set_durable t true] followed by {!compact}, which republishes the
    whole image atomically. *)

val durable : t -> bool

val replay : ?mac_key:string -> string -> record list * status
(** [replay bytes] decodes the longest valid prefix of [bytes]. Total:
    never raises, for arbitrary (truncated, bit-flipped, adversarial)
    input. *)

val state_of_records : record list -> state
(** Fold records into the state they describe. A [Snapshot] replaces
    the accumulated state; establishment/close/bump update it. *)

val recover :
  ?mac_key:string ->
  ?compact_every:int ->
  ?disk:Store.Backend.t ->
  ?file:string ->
  string ->
  t * state * status
(** [recover bytes] is the crash-recovery entry point: {!replay} the
    surviving bytes, fold the valid prefix, and return a fresh journal
    already compacted to a snapshot of that state (plus the state and
    the damage report). With [disk], the fresh journal writes through
    to it. *)

val load :
  ?mac_key:string ->
  ?compact_every:int ->
  ?file:string ->
  disk:Store.Backend.t ->
  unit ->
  t * state * status
(** {!recover} from whatever bytes the backend holds for [file] — the
    restart-from-disk entry point. A missing file recovers the empty
    state. *)
