(* Store-and-forward delivery: one durable {!Store.Queue} per offline
   member, plus the epoch-window policy that decides what happens to a
   record queued under a group epoch that has since rotated.

   The queues hold {e plaintext} admin payloads (the encoded
   [Wire.Admin.t]); nothing here is a secret — the durable image is
   protected the same way the leader journal is (integrity checksums,
   crash-tolerant replay), and confidentiality is applied at fire
   time, when the leader seals the drained record under the member's
   {e live} session key. That is what makes the "re-seal" arm of the
   policy sound: a record inside the window is not decrypted and
   re-encrypted — it was never sealed for the wire while queued, so
   delivering it under the current [K_a]/epoch is a fresh seal with no
   old-key material exposed. *)

type stale_action = Deliver_stale | Reject

type policy = { width : int; on_stale : stale_action }

let default_policy = { width = 1; on_stale = Reject }

let pp_policy fmt { width; on_stale } =
  Format.fprintf fmt "window=%d,%s" width
    (match on_stale with
    | Deliver_stale -> "deliver-stale"
    | Reject -> "reject")

type counters = {
  mutable queued : int;
  mutable drained : int;
  mutable resealed : int;
  mutable rejected_stale : int;
  mutable delivered_stale : int;
  mutable queue_bytes_hwm : int;
}

let fresh_counters () =
  {
    queued = 0;
    drained = 0;
    resealed = 0;
    rejected_stale = 0;
    delivered_stale = 0;
    queue_bytes_hwm = 0;
  }

type t = {
  policy : policy;
  compact_every : int;
  disk : Store.Backend.t option;
  queues : (Types.agent, Store.Queue.t) Hashtbl.t;
  counters : counters;
  mutable ship : (file:string -> string -> unit) option;
}

let create ?(policy = default_policy) ?(compact_every = 64) ?disk () =
  if policy.width < 0 then
    invalid_arg "Delivery.create: window width must be >= 0";
  {
    policy;
    compact_every;
    disk;
    queues = Hashtbl.create 16;
    counters = fresh_counters ();
    ship = None;
  }

let policy t = t.policy
let counters t = t.counters
let set_ship t f = t.ship <- f

let file_prefix = "queue-"
let file_of_member who = file_prefix ^ who

let member_of_file file =
  let n = String.length file_prefix in
  if String.length file > n && String.sub file 0 n = file_prefix then
    Some (String.sub file n (String.length file - n))
  else None

let total_bytes t =
  Hashtbl.fold (fun _ q acc -> acc + Store.Queue.size q) t.queues 0

let after_mutation t q =
  let bytes = total_bytes t in
  if bytes > t.counters.queue_bytes_hwm then
    t.counters.queue_bytes_hwm <- bytes;
  match t.ship with
  | None -> ()
  | Some ship -> ship ~file:(Store.Queue.file q) (Store.Queue.contents q)

let attach t q =
  Store.Queue.set_observer q (Some (fun _ev -> after_mutation t q));
  q

let queue_of t who =
  match Hashtbl.find_opt t.queues who with
  | Some q -> q
  | None ->
      let q =
        Store.Queue.create ~compact_every:t.compact_every ?disk:t.disk
          ~file:(file_of_member who) ()
      in
      Hashtbl.replace t.queues who (attach t q);
      q

let enqueue t ~member ~epoch x =
  let q = queue_of t member in
  let _e = Store.Queue.push q ~epoch (Wire.Admin.encode x) in
  t.counters.queued <- t.counters.queued + 1

(* The policy decision, per record. [age] is how many epochs the group
   rotated past the one the record was queued under: [age <= 0] is
   current traffic, [0 < age <= width] is inside the window (delivered
   under the live session key), and beyond the window the record is
   either delivered flagged stale (no state effect at the member, an
   [Audit] anomaly on the trace) or durably dropped. The boundary
   [age = width] is inclusive: it drains fresh. The [resealed] counter
   is bumped where the seal physically happens — [Leader.fire_admin],
   which freshens any wrapped key the group rotated past — so a record
   aged at drain time and one overtaken between drain and fire count
   once each, not twice. *)
let drain t ~member ~current_epoch =
  match Hashtbl.find_opt t.queues member with
  | None -> []
  | Some q ->
      let decide (e : Store.Queue.entry) =
        match Wire.Admin.decode e.Store.Queue.payload with
        | Error _ ->
            (* Undecodable payloads cannot be delivered; drop durably
               so replay never re-presents them. *)
            Store.Queue.drop q ~seq:e.Store.Queue.seq;
            None
        | Ok x ->
            let age = current_epoch - e.Store.Queue.epoch in
            if age <= t.policy.width then begin
              t.counters.drained <- t.counters.drained + 1;
              Some
                (Wire.Admin.Queued
                   { seq = e.Store.Queue.seq; stale = false; x })
            end
            else
              match t.policy.on_stale with
              | Deliver_stale ->
                  t.counters.delivered_stale <-
                    t.counters.delivered_stale + 1;
                  t.counters.drained <- t.counters.drained + 1;
                  Some
                    (Wire.Admin.Queued
                       { seq = e.Store.Queue.seq; stale = true; x })
              | Reject ->
                  Store.Queue.drop q ~seq:e.Store.Queue.seq;
                  t.counters.rejected_stale <-
                    t.counters.rejected_stale + 1;
                  None
      in
      List.filter_map decide (Store.Queue.pending q)

let ack t ~member ~upto =
  match Hashtbl.find_opt t.queues member with
  | None -> ()
  | Some q -> Store.Queue.ack q ~upto

let clear t ~member =
  match Hashtbl.find_opt t.queues member with
  | None -> ()
  | Some q ->
      List.iter
        (fun (e : Store.Queue.entry) ->
          Store.Queue.drop q ~seq:e.Store.Queue.seq)
        (Store.Queue.pending q);
      Store.Queue.compact q

(* Quarantine policy: durably drop the member's entire backlog. Unlike
   [clear] (housekeeping after a clean close) this is a containment
   action with a caller-visible count — a quarantined insider's queue
   must not survive to be drained by anyone, including a promoted
   successor (the emptied image ships to backups like any mutation). *)
let purge t ~member =
  match Hashtbl.find_opt t.queues member with
  | None -> 0
  | Some q ->
      let pending = Store.Queue.pending q in
      let n = List.length pending in
      List.iter
        (fun (e : Store.Queue.entry) ->
          Store.Queue.drop q ~seq:e.Store.Queue.seq)
        pending;
      Store.Queue.compact q;
      n

let depth t ~member =
  match Hashtbl.find_opt t.queues member with
  | None -> 0
  | Some q -> Store.Queue.depth q

let total_depth t =
  Hashtbl.fold (fun _ q acc -> acc + Store.Queue.depth q) t.queues 0

let members t =
  Hashtbl.fold (fun who _ acc -> who :: acc) t.queues []
  |> List.sort String.compare

let files t =
  Hashtbl.fold
    (fun _ q acc -> (Store.Queue.file q, Store.Queue.contents q) :: acc)
    t.queues []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let restore t ~file image =
  match member_of_file file with
  | None -> ()
  | Some member ->
      let q, _state, _status =
        Store.Queue.recover ~compact_every:t.compact_every ?disk:t.disk ~file
          image
      in
      Hashtbl.replace t.queues member (attach t q)

let of_images ?policy ?compact_every ?disk images =
  let t = create ?policy ?compact_every ?disk () in
  List.iter (fun (file, image) -> restore t ~file image) images;
  t
