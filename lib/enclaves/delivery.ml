(* Store-and-forward delivery: one durable {!Store.Queue} per offline
   member, plus the epoch-window policy that decides what happens to a
   record queued under a group epoch that has since rotated.

   The queues hold {e plaintext} admin payloads (the encoded
   [Wire.Admin.t]); nothing here is a secret — the durable image is
   protected the same way the leader journal is (integrity checksums,
   crash-tolerant replay), and confidentiality is applied at fire
   time, when the leader seals the drained record under the member's
   {e live} session key. That is what makes the "re-seal" arm of the
   policy sound: a record inside the window is not decrypted and
   re-encrypted — it was never sealed for the wire while queued, so
   delivering it under the current [K_a]/epoch is a fresh seal with no
   old-key material exposed. *)

type stale_action = Deliver_stale | Reject

type policy = { width : int; on_stale : stale_action }

let default_policy = { width = 1; on_stale = Reject }

let pp_policy fmt { width; on_stale } =
  Format.fprintf fmt "window=%d,%s" width
    (match on_stale with
    | Deliver_stale -> "deliver-stale"
    | Reject -> "reject")

type counters = {
  mutable queued : int;
  mutable drained : int;
  mutable resealed : int;
  mutable rejected_stale : int;
  mutable delivered_stale : int;
  mutable queue_bytes_hwm : int;
  mutable records_shed : int;
}

let fresh_counters () =
  {
    queued = 0;
    drained = 0;
    resealed = 0;
    rejected_stale = 0;
    delivered_stale = 0;
    queue_bytes_hwm = 0;
    records_shed = 0;
  }

type budgets = { per_member_bytes : int option; global_bytes : int option }

let no_budgets = { per_member_bytes = None; global_bytes = None }

type t = {
  policy : policy;
  budgets : budgets;
  compact_every : int;
  disk : Store.Backend.t option;
  queues : (Types.agent, Store.Queue.t) Hashtbl.t;
  counters : counters;
  mutable ship : (file:string -> string -> unit) option;
  (* Degraded-mode bookkeeping: [durable] mirrors the leader's ladder
     (off = queues evolve in memory only); [dirty] names members whose
     durable image is behind memory — a shed whose [Drop] marker could
     not land, or any mutation made while durability was off. [flush]
     compacts them back to a durable snapshot at re-arm. *)
  mutable durable : bool;
  dirty : (Types.agent, unit) Hashtbl.t;
}

let create ?(policy = default_policy) ?(budgets = no_budgets)
    ?(compact_every = 64) ?disk () =
  if policy.width < 0 then
    invalid_arg "Delivery.create: window width must be >= 0";
  (match (budgets.per_member_bytes, budgets.global_bytes) with
  | Some b, _ when b < 0 ->
      invalid_arg "Delivery.create: per-member byte budget must be >= 0"
  | _, Some b when b < 0 ->
      invalid_arg "Delivery.create: global byte budget must be >= 0"
  | _ -> ());
  {
    policy;
    budgets;
    compact_every;
    disk;
    queues = Hashtbl.create 16;
    counters = fresh_counters ();
    ship = None;
    durable = true;
    dirty = Hashtbl.create 4;
  }

let policy t = t.policy
let budgets t = t.budgets
let counters t = t.counters
let set_ship t f = t.ship <- f

let file_prefix = "queue-"
let file_of_member who = file_prefix ^ who

let member_of_file file =
  let n = String.length file_prefix in
  if String.length file > n && String.sub file 0 n = file_prefix then
    Some (String.sub file n (String.length file - n))
  else None

let total_bytes t =
  Hashtbl.fold (fun _ q acc -> acc + Store.Queue.size q) t.queues 0

let after_mutation t q =
  let bytes = total_bytes t in
  if bytes > t.counters.queue_bytes_hwm then
    t.counters.queue_bytes_hwm <- bytes;
  match t.ship with
  | None -> ()
  | Some ship -> ship ~file:(Store.Queue.file q) (Store.Queue.contents q)

let attach t q =
  Store.Queue.set_observer q (Some (fun _ev -> after_mutation t q));
  q

(* Run one durable mutation of [member]'s queue, absorbing a refused
   disk mirror. Memory mutates first in {!Store.Queue}, so a caught
   [No_space]/[Stalled] leaves memory authoritative and only the
   durable image behind — exactly what [dirty] records for {!flush}
   to repair at re-arm. A mutation made while durability is off is
   behind by construction. *)
let guarded t member f =
  (try f ()
   with Store.Backend.No_space _ | Store.Backend.Stalled _ ->
     Hashtbl.replace t.dirty member ();
     (* Disarm this queue's mirror until the re-arm flush: the buffer
        and the durable file have diverged, so a later incremental
        append at a buffer offset that happens to fall INSIDE the
        stale image would overwrite it mid-file — corrupting a
        previously valid image instead of leaving it merely stale. *)
     match Hashtbl.find_opt t.queues member with
     | Some q -> Store.Queue.set_durable q false
     | None -> ());
  if not t.durable then Hashtbl.replace t.dirty member ()

let queue_of t who =
  match Hashtbl.find_opt t.queues who with
  | Some q -> q
  | None ->
      let make ~durable =
        Store.Queue.create ~compact_every:t.compact_every ?disk:t.disk
          ~file:(file_of_member who) ~durable ()
      in
      let q =
        if not t.durable then (
          Hashtbl.replace t.dirty who ();
          make ~durable:false)
        else
          try make ~durable:true
          with Store.Backend.No_space _ | Store.Backend.Stalled _ ->
            (* The initial empty-image publish was refused: build the
               queue with the mirror disarmed and let re-arm publish
               it. *)
            Hashtbl.replace t.dirty who ();
            make ~durable:false
      in
      Hashtbl.replace t.queues who (attach t q);
      q

(* --- byte budgets and shedding --- *)

let over_member t q =
  match t.budgets.per_member_bytes with
  | None -> false
  | Some b -> Store.Queue.size q > b

let over_global t =
  match t.budgets.global_bytes with
  | None -> false
  | Some b -> total_bytes t > b

(* Drop the oldest pending record and compact so the image genuinely
   shrinks (a bare [Drop] record *extends* the log). The drop and the
   compaction are guarded separately: if the marker's mirror is
   refused, the compaction must still fold memory so the budget check
   makes progress. *)
let shed_oldest t member q =
  match Store.Queue.pending q with
  | [] -> false
  | oldest :: _ ->
      guarded t member (fun () ->
          Store.Queue.drop q ~seq:oldest.Store.Queue.seq);
      guarded t member (fun () -> Store.Queue.compact q);
      t.counters.records_shed <- t.counters.records_shed + 1;
      true

(* A bloated log can exceed a byte bound while its snapshot would fit
   — resolved Push/Ack/Drop records cost bytes but carry no pending
   data. Fold them away before paying with real records. (The +1
   allows for the snapshot record itself: a freshly compacted queue is
   never "bloated".) *)
let compact_if_bloated t member q =
  if Store.Queue.records q > Store.Queue.depth q + 1 then
    guarded t member (fun () -> Store.Queue.compact q)

let rec shed_member t member q =
  if over_member t q then begin
    compact_if_bloated t member q;
    if over_member t q && shed_oldest t member q then shed_member t member q
  end

(* Globally oldest-first: the victim is the queue whose oldest pending
   record was sealed under the lowest epoch (member name breaks ties
   deterministically). *)
let global_victim t =
  Hashtbl.fold
    (fun member q best ->
      match Store.Queue.pending q with
      | [] -> best
      | e :: _ -> (
          let age = (e.Store.Queue.epoch, member) in
          match best with
          | Some (bage, _, _) when bage <= age -> best
          | _ -> Some (age, member, q)))
    t.queues None

let rec shed_global t =
  if over_global t then
    match global_victim t with
    | None -> ()
    | Some (_, member, q) -> if shed_oldest t member q then shed_global t

let enforce_budgets t =
  let before = t.counters.records_shed in
  if over_global t then
    Hashtbl.iter (fun member q -> compact_if_bloated t member q) t.queues;
  Hashtbl.iter (fun member q -> shed_member t member q) t.queues;
  shed_global t;
  t.counters.records_shed - before

let enqueue t ~member ~epoch x =
  let q = queue_of t member in
  guarded t member (fun () ->
      ignore (Store.Queue.push q ~epoch (Wire.Admin.encode x)));
  t.counters.queued <- t.counters.queued + 1;
  ignore (enforce_budgets t)

(* The policy decision, per record. [age] is how many epochs the group
   rotated past the one the record was queued under: [age <= 0] is
   current traffic, [0 < age <= width] is inside the window (delivered
   under the live session key), and beyond the window the record is
   either delivered flagged stale (no state effect at the member, an
   [Audit] anomaly on the trace) or durably dropped. The boundary
   [age = width] is inclusive: it drains fresh. The [resealed] counter
   is bumped where the seal physically happens — [Leader.fire_admin],
   which freshens any wrapped key the group rotated past — so a record
   aged at drain time and one overtaken between drain and fire count
   once each, not twice. *)
let drain t ~member ~current_epoch =
  match Hashtbl.find_opt t.queues member with
  | None -> []
  | Some q ->
      let decide (e : Store.Queue.entry) =
        match Wire.Admin.decode e.Store.Queue.payload with
        | Error _ ->
            (* Undecodable payloads cannot be delivered; drop durably
               so replay never re-presents them. *)
            guarded t member (fun () ->
                Store.Queue.drop q ~seq:e.Store.Queue.seq);
            None
        | Ok x ->
            let age = current_epoch - e.Store.Queue.epoch in
            if age <= t.policy.width then begin
              t.counters.drained <- t.counters.drained + 1;
              Some
                (Wire.Admin.Queued
                   { seq = e.Store.Queue.seq; stale = false; x })
            end
            else
              match t.policy.on_stale with
              | Deliver_stale ->
                  t.counters.delivered_stale <-
                    t.counters.delivered_stale + 1;
                  t.counters.drained <- t.counters.drained + 1;
                  Some
                    (Wire.Admin.Queued
                       { seq = e.Store.Queue.seq; stale = true; x })
              | Reject ->
                  guarded t member (fun () ->
                      Store.Queue.drop q ~seq:e.Store.Queue.seq);
                  t.counters.rejected_stale <-
                    t.counters.rejected_stale + 1;
                  None
      in
      List.filter_map decide (Store.Queue.pending q)

let ack t ~member ~upto =
  match Hashtbl.find_opt t.queues member with
  | None -> ()
  | Some q -> guarded t member (fun () -> Store.Queue.ack q ~upto)

let clear t ~member =
  match Hashtbl.find_opt t.queues member with
  | None -> ()
  | Some q ->
      List.iter
        (fun (e : Store.Queue.entry) ->
          guarded t member (fun () ->
              Store.Queue.drop q ~seq:e.Store.Queue.seq))
        (Store.Queue.pending q);
      guarded t member (fun () -> Store.Queue.compact q)

(* Quarantine policy: durably drop the member's entire backlog. Unlike
   [clear] (housekeeping after a clean close) this is a containment
   action with a caller-visible count — a quarantined insider's queue
   must not survive to be drained by anyone, including a promoted
   successor (the emptied image ships to backups like any mutation). *)
let purge t ~member =
  match Hashtbl.find_opt t.queues member with
  | None -> 0
  | Some q ->
      let pending = Store.Queue.pending q in
      let n = List.length pending in
      List.iter
        (fun (e : Store.Queue.entry) ->
          guarded t member (fun () ->
              Store.Queue.drop q ~seq:e.Store.Queue.seq))
        pending;
      guarded t member (fun () -> Store.Queue.compact q);
      n

let depth t ~member =
  match Hashtbl.find_opt t.queues member with
  | None -> 0
  | Some q -> Store.Queue.depth q

let total_depth t =
  Hashtbl.fold (fun _ q acc -> acc + Store.Queue.depth q) t.queues 0

let members t =
  Hashtbl.fold (fun who _ acc -> who :: acc) t.queues []
  |> List.sort String.compare

let files t =
  Hashtbl.fold
    (fun _ q acc -> (Store.Queue.file q, Store.Queue.contents q) :: acc)
    t.queues []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let restore t ~file image =
  match member_of_file file with
  | None -> ()
  | Some member ->
      let q, _state, _status =
        Store.Queue.recover ~compact_every:t.compact_every ?disk:t.disk ~file
          image
      in
      Hashtbl.replace t.queues member (attach t q)

let of_images ?policy ?budgets ?compact_every ?disk images =
  let t = create ?policy ?budgets ?compact_every ?disk () in
  List.iter (fun (file, image) -> restore t ~file image) images;
  t

(* --- degraded-mode support --- *)

let set_durable t b =
  t.durable <- b;
  Hashtbl.iter
    (fun member q ->
      Store.Queue.set_durable q b;
      (* Disarming makes every image stale by construction; flush
         republishes them all at re-arm. *)
      if not b then Hashtbl.replace t.dirty member ())
    t.queues

let durable t = t.durable
let dirty t = Hashtbl.length t.dirty > 0
let dirty_members t =
  Hashtbl.fold (fun m () acc -> m :: acc) t.dirty []
  |> List.sort String.compare

(* Re-arm repair: republish every behind queue as a durable snapshot.
   Compaction writes the whole image (which carries the effect of any
   refused [Drop] markers — a shed record is durably absent from the
   snapshot), so one success per queue clears its debt. *)
let flush t =
  if not t.durable then false
  else begin
    List.iter
      (fun member ->
        match Hashtbl.find_opt t.queues member with
        | None -> Hashtbl.remove t.dirty member
        | Some q -> (
            Store.Queue.set_durable q true;
            try
              Store.Queue.compact q;
              Hashtbl.remove t.dirty member
            with Store.Backend.No_space _ | Store.Backend.Stalled _ ->
              Store.Queue.set_durable q false))
      (dirty_members t);
    not (dirty t)
  end
