(** Shared vocabulary of the Enclaves protocol stack. *)

type agent = string
(** Agent identity (user name or leader name). *)

type group_key = { key : Sym_crypto.Key.t; epoch : int }
(** The group key [K_g] together with its epoch — a monotonically
    increasing counter the leader bumps at every rekey. Epochs exist so
    tests and attacks can observe {e which} key a member holds. *)

val pp_group_key : Format.formatter -> group_key -> unit

type reject_reason =
  | Malformed of string  (** Frame or payload failed to parse. *)
  | Auth_failure  (** AEAD tag did not verify. *)
  | Wrong_state of string  (** Valid message, wrong protocol phase. *)
  | Identity_mismatch  (** Sealed identities disagree with context. *)
  | Stale_nonce  (** Nonce check failed: replay or reordering. *)
  | Unknown_sender of agent  (** No credentials for the claimed sender. *)
  | Unexpected_label of Wire.Frame.label
  | Stale_epoch of { got : int; have : int }
      (** A cold-restart beacon carried an epoch older than this
          member's own — a replay from a dead incarnation. *)

val pp_reject_reason : Format.formatter -> reject_reason -> unit
