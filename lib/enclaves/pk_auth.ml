type identity = { name : Types.agent; keys : Sym_crypto.Dh.key_pair }

let generate name rng = { name; keys = Sym_crypto.Dh.generate rng }
let pub id = id.keys.Sym_crypto.Dh.pub

let pairwise ~self ~peer ~peer_pub =
  let shared = Sym_crypto.Dh.shared_secret ~priv:self.keys.Sym_crypto.Dh.priv ~pub:peer_pub in
  (* Bind the key to the (unordered) pair of identities so distinct
     pairs with colliding secrets still separate. *)
  let lo = min self.name peer and hi = max self.name peer in
  let material =
    Sym_crypto.Kdf.of_password
      ~user:(Printf.sprintf "pk:%s|%s" lo hi)
      ~password:(Printf.sprintf "%Lx" shared)
  in
  Sym_crypto.Key.of_raw Sym_crypto.Key.Long_term material

let member id ~leader ~leader_pub ~rng =
  let key = pairwise ~self:id ~peer:leader ~peer_pub:leader_pub in
  Member.create_with_key ~self:id.name ~leader ~long_term:key ~rng

let leader id ~directory ?policy ~rng () =
  let keyed =
    List.map
      (fun (name, peer_pub) -> (name, pairwise ~self:id ~peer:name ~peer_pub))
      directory
  in
  Leader.create_with_keys ~self:id.name ~rng ~directory:keyed ?policy ()
