(** Store-and-forward delivery queues for offline members.

    One durable {!Store.Queue} per member, holding the encoded admin
    payloads addressed to it while it was evicted-as-silent or
    partitioned, plus the {e epoch-window policy} governing queued
    traffic vs rekey: a record queued under an epoch the group has
    since rotated past is re-sealed under the member's live session
    key if it aged at most [width] epochs (inclusive), and otherwise
    either delivered flagged stale (applied with no state effect at
    the member, flagged as an {!Audit} anomaly) or durably rejected.

    Queues hold plaintext payloads; the seal happens at fire time
    under the live [K_a], so the re-seal arm never exposes or reuses
    rotated key material — see the trust argument in DESIGN.md §10. *)

type stale_action =
  | Deliver_stale
      (** Deliver beyond-window records marked [stale]; the member
          records them without applying any state effect. *)
  | Reject  (** Durably drop beyond-window records undelivered. *)

type policy = { width : int; on_stale : stale_action }
(** [width] is the inclusive epoch-window: a record whose queued epoch
    is at most [width] rotations behind the current one is still
    delivered fresh (re-sealed). *)

val default_policy : policy
(** [{ width = 1; on_stale = Reject }]. *)

val pp_policy : Format.formatter -> policy -> unit

type counters = {
  mutable queued : int;  (** records pushed into any queue *)
  mutable drained : int;  (** records handed to the session channel *)
  mutable resealed : int;
      (** drained records re-sealed under the live session key because
          the group rotated past their queued epoch — counted at fire
          time, so a rekey racing a drain in flight counts too *)
  mutable rejected_stale : int;  (** records dropped beyond the window *)
  mutable delivered_stale : int;
      (** records delivered flagged stale (policy [Deliver_stale]) *)
  mutable queue_bytes_hwm : int;
      (** high-water mark of the summed queue image sizes *)
  mutable records_shed : int;
      (** pending records dropped oldest-first by the byte budgets,
          each covered by a durable [Drop] marker (deferred to the
          re-arm {!flush} if the disk refused it) *)
}

type budgets = { per_member_bytes : int option; global_bytes : int option }
(** Hard byte bounds on queue images: [per_member_bytes] caps each
    member's image, [global_bytes] the sum over all members. [None]
    disables a bound. When a bound is exceeded, pending records are
    shed oldest-first (per queue by delivery seq; globally by queued
    epoch, member name breaking ties) with durable [Drop] markers
    until the images fit — replacing the old unbounded
    high-water-mark-only tracking. *)

val no_budgets : budgets
(** Both bounds disabled. *)

type t

val create :
  ?policy:policy ->
  ?budgets:budgets ->
  ?compact_every:int ->
  ?disk:Store.Backend.t ->
  unit ->
  t
(** With [disk], each member's queue writes through to the backend as
    file ["queue-<member>"].
    @raise Invalid_argument if [policy.width < 0] or a budget is
    negative. *)

val policy : t -> policy
val budgets : t -> budgets
val counters : t -> counters

val enqueue : t -> member:Types.agent -> epoch:int -> Wire.Admin.t -> unit
(** Durably queue one payload for an offline member, tagged with the
    group epoch it was addressed under, then enforce the byte budgets
    (shedding oldest-first if the push overflowed them). A refused
    disk mirror is absorbed — memory stays authoritative and the
    member is marked {!dirty} for the re-arm {!flush}. *)

val enforce_budgets : t -> int
(** Shed until every byte budget holds again; returns how many records
    were shed. Called implicitly by {!enqueue}; exposed for harnesses
    that tighten budgets mid-run. *)

val total_bytes : t -> int
(** Summed size of all queue images — what the global budget bounds. *)

val drain : t -> member:Types.agent -> current_epoch:int -> Wire.Admin.t list
(** The member's pending records in delivery order, each wrapped as
    [Queued { seq; stale; x }] per the epoch-window policy; rejected
    and undecodable records are durably dropped and not returned.
    Entries stay pending until {!ack}, so a crash or re-disconnect
    before the member acknowledges re-drains them (at-least-once;
    the member's delivery floor dedups). *)

val ack : t -> member:Types.agent -> upto:int -> unit
(** Advance the member's durable ack floor: every delivery seq below
    [upto] is confirmed applied. *)

val clear : t -> member:Types.agent -> unit
(** Durably drop everything pending for a member (voluntary leave). *)

val purge : t -> member:Types.agent -> int
(** Quarantine policy: durably drop the member's entire backlog and
    return how many pending records were destroyed. Containment — a
    quarantined insider's queue is not salvaged for later drain, and
    the emptied image replicates to backups like any mutation. *)

val depth : t -> member:Types.agent -> int
val total_depth : t -> int
val members : t -> Types.agent list
(** Members with a queue (possibly empty), sorted. *)

val file_of_member : Types.agent -> string
val member_of_file : string -> Types.agent option

val files : t -> (string * string) list
(** Every queue's (file name, current image), sorted — what the driver
    captures at a crash and the replication stream ships to backups. *)

val restore : t -> file:string -> string -> unit
(** Replace one member's queue with the recovery of [image] (total on
    arbitrary bytes — torn tails cost at most the damaged suffix). *)

val of_images :
  ?policy:policy ->
  ?budgets:budgets ->
  ?compact_every:int ->
  ?disk:Store.Backend.t ->
  (string * string) list ->
  t
(** A delivery layer rebuilt from captured queue images — the restart
    and warm-promotion entry point. *)

val set_ship : t -> (file:string -> string -> unit) option -> unit
(** Replication hook: called with a queue's file name and full image
    after every durable mutation of that queue. *)

val set_durable : t -> bool -> unit
(** The leader ladder's memory-only switch, applied to every queue
    (present and future). Disarming marks every member dirty so the
    re-arm {!flush} republishes all images. *)

val durable : t -> bool

val dirty : t -> bool
(** Whether any member's durable image is behind its in-memory state
    (a refused mirror, or mutations made while durability was off). *)

val dirty_members : t -> Types.agent list

val flush : t -> bool
(** Republish every behind queue as a durable snapshot (carrying the
    effect of any deferred [Drop] markers). Returns [true] when
    everything is durable again; [false] if the disk is still
    refusing writes or durability is off. *)
