module Vtime = Netsim.Vtime
module Trace = Netsim.Trace

type level = Clear | Rate_limited | Quarantined | Expelled

let level_rank = function
  | Clear -> 0
  | Rate_limited -> 1
  | Quarantined -> 2
  | Expelled -> 3

let level_of_rank = function
  | 0 -> Clear
  | 1 -> Rate_limited
  | 2 -> Quarantined
  | _ -> Expelled

let level_name = function
  | Clear -> "clear"
  | Rate_limited -> "rate-limited"
  | Quarantined -> "quarantined"
  | Expelled -> "expelled"

type evidence =
  | Mac_failure
  | Replay
  | Stale_rekey
  | Half_open
  | Preauth_pressure
  | Malformed
  | Contained

let evidence_name = function
  | Mac_failure -> "mac-failure"
  | Replay -> "replay"
  | Stale_rekey -> "stale-rekey"
  | Half_open -> "half-open"
  | Preauth_pressure -> "preauth-pressure"
  | Malformed -> "malformed"
  | Contained -> "contained"

(* Evidence classes index the per-peer on-path score vector; the
   corroboration gate counts how many distinct classes are live. *)
let n_classes = 7

let class_index = function
  | Mac_failure -> 0
  | Replay -> 1
  | Stale_rekey -> 2
  | Half_open -> 3
  | Preauth_pressure -> 4
  | Malformed -> 5
  | Contained -> 6

type config = {
  half_life : Vtime.t;
  rate_limit_at : float;
  quarantine_at : float;
  expel_at : float;
  w_mac_failure : float;
  w_replay : float;
  w_stale_rekey : float;
  w_half_open : float;
  w_preauth : float;
  w_malformed : float;
  w_contained : float;
  preauth_rate : float;
  preauth_burst : float;
  half_open_cap : int;
  attribution : bool;
  wire_discount : float;
  corroborate_floor : float;
  challenge_cooldown : Vtime.t;
}

let default_config =
  {
    half_life = Vtime.of_s 2;
    rate_limit_at = 8.0;
    quarantine_at = 25.0;
    expel_at = 60.0;
    w_mac_failure = 3.0;
    w_replay = 1.5;
    w_stale_rekey = 1.0;
    w_half_open = 2.0;
    w_preauth = 0.4;
    w_malformed = 2.0;
    w_contained = 0.6;
    preauth_rate = 2.0;
    preauth_burst = 6.0;
    half_open_cap = 8;
    attribution = true;
    wire_discount = 0.25;
    corroborate_floor = 1.0;
    challenge_cooldown = Vtime.of_s 2;
  }

let weight cfg = function
  | Mac_failure -> cfg.w_mac_failure
  | Replay -> cfg.w_replay
  | Stale_rekey -> cfg.w_stale_rekey
  | Half_open -> cfg.w_half_open
  | Preauth_pressure -> cfg.w_preauth
  | Malformed -> cfg.w_malformed
  | Contained -> cfg.w_contained

(* The pseudo-peer every [Via_wire] frame's evidence is charged to at
   full weight. It has no directory entry and no session, so the only
   thing its containment level drives is the driver's door: once the
   wire itself is quarantined, raw injections stop reaching the
   leader at all. Angle brackets keep it out of any legal name space. *)
let wire_peer = "<wire>"

type counters = {
  mutable observations : int;
  mutable rate_limits : int;
  mutable quarantines : int;
  mutable expulsions : int;
  mutable emergency_rekeys : int;
  mutable quarantined_dropped : int;
  mutable preauth_admitted : int;
  mutable preauth_throttled : int;
  mutable preauth_capped : int;
  mutable preauth_queue_dropped : int;
  mutable queues_purged : int;
  mutable suspicion_shipped : int;
  mutable suspicion_imported : int;
  mutable wire_observations : int;
  mutable off_path_observations : int;
  mutable framing_holds : int;
  mutable challenges_issued : int;
  mutable attestations : int;
}

let fresh_counters () =
  {
    observations = 0;
    rate_limits = 0;
    quarantines = 0;
    expulsions = 0;
    emergency_rekeys = 0;
    quarantined_dropped = 0;
    preauth_admitted = 0;
    preauth_throttled = 0;
    preauth_capped = 0;
    preauth_queue_dropped = 0;
    queues_purged = 0;
    suspicion_shipped = 0;
    suspicion_imported = 0;
    wire_observations = 0;
    off_path_observations = 0;
    framing_holds = 0;
    challenges_issued = 0;
    attestations = 0;
  }

let to_stats (c : counters) : Netsim.Stats.sentinel =
  {
    observations = c.observations;
    rate_limits = c.rate_limits;
    quarantines = c.quarantines;
    expulsions = c.expulsions;
    emergency_rekeys = c.emergency_rekeys;
    quarantined_dropped = c.quarantined_dropped;
    preauth_admitted = c.preauth_admitted;
    preauth_throttled = c.preauth_throttled;
    preauth_capped = c.preauth_capped;
    preauth_queue_dropped = c.preauth_queue_dropped;
    queues_purged = c.queues_purged;
    suspicion_shipped = c.suspicion_shipped;
    suspicion_imported = c.suspicion_imported;
    wire_observations = c.wire_observations;
    off_path_observations = c.off_path_observations;
    framing_holds = c.framing_holds;
    challenges_issued = c.challenges_issued;
    attestations = c.attestations;
    injections_blocked = 0;
  }

type peer = {
  (* On-path evidence per class: frames that arrived over this peer's
     own socket, full weight. Only these scores can corroborate. *)
  cls : float array;
  (* Off-path evidence: frames merely claiming this peer as sender,
     discounted by [wire_discount]. Never corroborates, and a live
     session-key attestation wipes it. *)
  mutable off : float;
  mutable last : Vtime.t;
  mutable level : level;
  mutable tokens : float;
  mutable tokens_at : Vtime.t;
  mutable challenge_open : bool;
  mutable last_challenge : Vtime.t option;
}

type t = {
  config : config;
  clock : unit -> Vtime.t;
  peers : (string, peer) Hashtbl.t;
  anon : peer;  (* shared bucket for names outside the directory *)
  counters : counters;
  mutable ship : (string -> unit) option;
}

let fresh_peer config now =
  {
    cls = Array.make n_classes 0.0;
    off = 0.0;
    last = now;
    level = Clear;
    tokens = config.preauth_burst;
    tokens_at = now;
    challenge_open = false;
    last_challenge = None;
  }

let create ?(config = default_config) ?(clock = fun () -> Vtime.zero) () =
  let now = clock () in
  {
    config;
    clock;
    peers = Hashtbl.create 16;
    anon = fresh_peer config now;
    counters = fresh_counters ();
    ship = None;
  }

let config t = t.config
let counters t = t.counters
let set_ship t f = t.ship <- Some f

let peer t name =
  match Hashtbl.find_opt t.peers name with
  | Some p -> p
  | None ->
      let p = fresh_peer t.config (t.clock ()) in
      Hashtbl.replace t.peers name p;
      p

(* Exponential decay: halve every score slot per [half_life] of quiet.
   All slots share one timestamp, so one factor decays the peer. *)
let decay_factor t ~from_ ~to_ =
  let dt = Vtime.to_float_ms (Int64.sub to_ from_) in
  if dt <= 0.0 then 1.0
  else
    let hl = Vtime.to_float_ms t.config.half_life in
    Float.pow 0.5 (dt /. hl)

let touch t p now =
  let f = decay_factor t ~from_:p.last ~to_:now in
  if f < 1.0 then begin
    for i = 0 to n_classes - 1 do
      p.cls.(i) <- p.cls.(i) *. f
    done;
    p.off <- p.off *. f;
    p.last <- now
  end

let on_path_score p = Array.fold_left ( +. ) 0.0 p.cls
let total_score p = on_path_score p +. p.off

let decayed_total t p now = total_score p *. decay_factor t ~from_:p.last ~to_:now

let score t name =
  match Hashtbl.find_opt t.peers name with
  | None -> 0.0
  | Some p -> decayed_total t p (t.clock ())

let level t name =
  match Hashtbl.find_opt t.peers name with None -> Clear | Some p -> p.level

let peers t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.peers []
  |> List.sort compare

let level_for_rank_update t p target =
  (* The ladder only ratchets upward: decay lowers the score, never
     the containment level — a quarantined insider does not talk its
     way back in by going quiet. *)
  if level_rank target > level_rank p.level then begin
    p.level <- target;
    (match target with
    | Clear -> ()
    | Rate_limited -> t.counters.rate_limits <- t.counters.rate_limits + 1
    | Quarantined -> t.counters.quarantines <- t.counters.quarantines + 1
    | Expelled -> t.counters.expulsions <- t.counters.expulsions + 1);
    true
  end
  else false

let target_of_score cfg s =
  if s >= cfg.expel_at then Expelled
  else if s >= cfg.quarantine_at then Quarantined
  else if s >= cfg.rate_limit_at then Rate_limited
  else Clear

(* The corroboration gate. A raw score in quarantine territory only
   fires the Quarantined/Expelled rung when the evidence has a basis
   the claimed sender genuinely owns: either enough on-path score
   (frames over its own socket) to cross the quarantine threshold by
   itself, or at least two independent evidence classes live on its
   own socket. Off-path evidence alone — the only thing a wire-level
   framer can manufacture — clamps at [Rate_limited]. *)
let corroborated cfg p =
  on_path_score p >= cfg.quarantine_at
  || (let live = ref 0 in
      Array.iter (fun s -> if s >= cfg.corroborate_floor then incr live) p.cls;
      !live >= 2)

let corroborated_target t p =
  let raw = target_of_score t.config (total_score p) in
  if
    t.config.attribution
    && level_rank raw >= level_rank Quarantined
    && not (corroborated t.config p)
  then begin
    if level_rank p.level < level_rank Quarantined then
      t.counters.framing_holds <- t.counters.framing_holds + 1;
    Rate_limited
  end
  else raw

let export t =
  let rows =
    Hashtbl.fold (fun name p acc -> (name, p) :: acc) t.peers []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "suspicion/2\n";
  List.iter
    (fun (name, p) ->
      Buffer.add_string buf
        (Printf.sprintf "%d\t%Ld\t%Lx" (level_rank p.level) p.last
           (Int64.bits_of_float p.off));
      Array.iter
        (fun s ->
          Buffer.add_string buf
            (Printf.sprintf "\t%Lx" (Int64.bits_of_float s)))
        p.cls;
      Buffer.add_string buf (Printf.sprintf "\t%s\n" name))
    rows;
  Buffer.contents buf

let maybe_ship t =
  match t.ship with
  | None -> ()
  | Some f ->
      t.counters.suspicion_shipped <- t.counters.suspicion_shipped + 1;
      f (export t)

(* Score one full-weight on-path (or legacy/unattributed) increment
   against [name] and re-run the ladder. *)
let charge_on_path t name kind =
  let now = t.clock () in
  let p = peer t name in
  touch t p now;
  p.cls.(class_index kind) <- p.cls.(class_index kind) +. weight t.config kind;
  p.last <- now;
  let escalated = level_for_rank_update t p (corroborated_target t p) in
  if escalated then maybe_ship t;
  p

let charge_off_path t name kind =
  let now = t.clock () in
  let p = peer t name in
  touch t p now;
  p.off <- p.off +. (weight t.config kind *. t.config.wire_discount);
  p.last <- now;
  t.counters.off_path_observations <- t.counters.off_path_observations + 1;
  let escalated = level_for_rank_update t p (corroborated_target t p) in
  if escalated then maybe_ship t;
  p

let observe_via t ~claimed ~via kind =
  t.counters.observations <- t.counters.observations + 1;
  if not t.config.attribution then (charge_on_path t claimed kind).level
  else
    match via with
    | Trace.Via_socket owner when String.equal owner claimed ->
        (charge_on_path t claimed kind).level
    | Trace.Via_socket owner ->
        (* The frame claims [claimed] but arrived over [owner]'s own
           connection: the owner gets the evidence at full weight, the
           claimed name only a discounted echo. *)
        ignore (charge_on_path t owner kind);
        (charge_off_path t claimed kind).level
    | Trace.Via_wire ->
        t.counters.wire_observations <- t.counters.wire_observations + 1;
        ignore (charge_on_path t wire_peer kind);
        (charge_off_path t claimed kind).level

let observe t ~peer:name kind =
  observe_via t ~claimed:name ~via:(Trace.Via_socket name) kind

(* --- liveness challenge -------------------------------------------------

   When a peer's raw score sits in quarantine territory but the
   corroboration gate is holding it down, the leader may challenge it:
   a sealed admin notice only the genuine session-key holder can ack.
   A successful ack (attestation) wipes the off-path score — the
   framed member arrests its own escalation — and proves nothing for
   an insider, whose evidence is on-path and untouched. *)

let challenge_due t name =
  if not t.config.attribution then false
  else
    match Hashtbl.find_opt t.peers name with
    | None -> false
    | Some p ->
        let now = t.clock () in
        let f = decay_factor t ~from_:p.last ~to_:now in
        let raw = target_of_score t.config (total_score p *. f) in
        level_rank p.level < level_rank Quarantined
        && level_rank raw >= level_rank Quarantined
        && (not (corroborated t.config p))
        && (not p.challenge_open)
        && (match p.last_challenge with
           | None -> true
           | Some at -> Vtime.(Vtime.add at t.config.challenge_cooldown <= now))

let note_challenged t name =
  let p = peer t name in
  p.challenge_open <- true;
  p.last_challenge <- Some (t.clock ());
  t.counters.challenges_issued <- t.counters.challenges_issued + 1

let note_attested t name =
  match Hashtbl.find_opt t.peers name with
  | None -> false
  | Some p ->
      if p.challenge_open then begin
        p.challenge_open <- false;
        touch t p (t.clock ());
        p.off <- 0.0;
        t.counters.attestations <- t.counters.attestations + 1;
        true
      end
      else false

let note_quarantined_drop t ?via name =
  t.counters.quarantined_dropped <- t.counters.quarantined_dropped + 1;
  let via = Option.value via ~default:(Trace.Via_socket name) in
  ignore (observe_via t ~claimed:name ~via Contained)

let note_emergency_rekey t =
  t.counters.emergency_rekeys <- t.counters.emergency_rekeys + 1

let note_queue_purged t =
  t.counters.queues_purged <- t.counters.queues_purged + 1

let note_queue_dropped t =
  t.counters.preauth_queue_dropped <- t.counters.preauth_queue_dropped + 1

let suspects t =
  Hashtbl.fold
    (fun name p acc ->
      if p.level = Clear then acc else (name, p.level) :: acc)
    t.peers []
  |> List.sort compare

let contained t =
  List.filter_map
    (fun (name, lvl) ->
      if level_rank lvl >= level_rank Quarantined then Some name else None)
    (suspects t)

type verdict = Admit | Throttled | Capped | Denied_quarantined

let verdict_name = function
  | Admit -> "admit"
  | Throttled -> "throttled"
  | Capped -> "capped"
  | Denied_quarantined -> "denied-quarantined"

let refill t p now =
  let dt_s = Vtime.to_float_ms (Int64.sub now p.tokens_at) /. 1000.0 in
  if dt_s > 0.0 then begin
    let rate =
      if p.level = Rate_limited then t.config.preauth_rate *. 0.25
      else t.config.preauth_rate
    in
    p.tokens <- Float.min t.config.preauth_burst (p.tokens +. (dt_s *. rate));
    p.tokens_at <- now
  end

let admit_preauth t ?via ~peer:name ~known ~resuming ~half_open () =
  let now = t.clock () in
  (* The admission budget is charged to the transport principal — the
     endpoint the frame actually came through — not the name it
     claims. A wire flood under a victim's name drains the wire
     pseudo-peer's bucket, never the victim's. *)
  let principal =
    if not t.config.attribution then name
    else
      match via with
      | None -> name
      | Some (Trace.Via_socket owner) -> owner
      | Some Trace.Via_wire -> wire_peer
  in
  let p =
    if String.equal principal name then if known then peer t name else t.anon
    else peer t principal
  in
  (* Every attempt is itself weak evidence: a flood of perfectly valid
     handshake frames still climbs the ladder. *)
  ignore
    (observe_via t ~claimed:name
       ~via:(Option.value via ~default:(Trace.Via_socket name))
       Preauth_pressure);
  let denied =
    level_rank (level t name) >= level_rank Quarantined
    || level_rank (level t principal) >= level_rank Quarantined
  in
  if denied then begin
    t.counters.quarantined_dropped <- t.counters.quarantined_dropped + 1;
    Denied_quarantined
  end
  else if resuming then begin
    (* An in-progress handshake retransmission; blocking it would wedge
       legitimate joins under their own backoff. *)
    t.counters.preauth_admitted <- t.counters.preauth_admitted + 1;
    Admit
  end
  else if half_open >= t.config.half_open_cap then begin
    t.counters.preauth_capped <- t.counters.preauth_capped + 1;
    Capped
  end
  else begin
    refill t p now;
    if p.tokens >= 1.0 then begin
      p.tokens <- p.tokens -. 1.0;
      t.counters.preauth_admitted <- t.counters.preauth_admitted + 1;
      Admit
    end
    else begin
      t.counters.preauth_throttled <- t.counters.preauth_throttled + 1;
      Throttled
    end
  end

(* --- suspicion merge ----------------------------------------------------

   The merge is a join semilattice: both sides' score slots are decayed
   to the later of the two timestamps and joined slot-wise by max, and
   levels join by rank. That makes import commutative, associative
   (up to float rounding in the decay factor) and idempotent, so
   replicated suspicion converges under any delivery order — the
   CRDT property the qcheck suite pins. v1 lines (an aggregate score
   per peer, from pre-attribution snapshots) fold into the off-path
   slot: an old-format snapshot can ratchet levels and keep scores
   warm but never manufactures corroboration. *)

let merge_slots t p ~last_in ~off_in ~cls_in =
  let tref = if Vtime.(p.last < last_in) then last_in else p.last in
  touch t p tref;
  let f_in = decay_factor t ~from_:last_in ~to_:tref in
  (match cls_in with
  | Some cls_in ->
      for i = 0 to n_classes - 1 do
        p.cls.(i) <- Float.max p.cls.(i) (cls_in.(i) *. f_in)
      done
  | None -> ());
  p.off <- Float.max p.off (off_in *. f_in);
  p.last <- tref

let float_of_hex s =
  match Int64.of_string_opt ("0x" ^ s) with
  | None -> None
  | Some bits ->
      let v = Int64.float_of_bits bits in
      if Float.is_nan v then Some 0.0 else Some v

let import t blob =
  let lines = String.split_on_char '\n' blob in
  let merged = ref 0 in
  List.iter
    (fun line ->
      match String.split_on_char '\t' line with
      | [ rank; score_hex; last; name ] when name <> "" -> (
          (* v1 row: rank, aggregate score bits, last, name. *)
          match
            (int_of_string_opt rank, float_of_hex score_hex,
             Int64.of_string_opt last)
          with
          | Some rank, Some score, Some last_in ->
              let lvl = level_of_rank (max 0 (min 3 rank)) in
              let p = peer t name in
              merge_slots t p ~last_in ~off_in:score ~cls_in:None;
              if level_for_rank_update t p lvl then incr merged
          | _ -> ())
      | rank :: last :: off_hex :: rest when List.length rest = n_classes + 1
        -> (
          (* v2 row: rank, last, off bits, one bits column per class,
             name. *)
          let name = List.nth rest n_classes in
          let cls_hex = List.filteri (fun i _ -> i < n_classes) rest in
          match
            (int_of_string_opt rank, Int64.of_string_opt last,
             float_of_hex off_hex)
          with
          | Some rank, Some last_in, Some off_in when name <> "" ->
              let cls_in = Array.make n_classes 0.0 in
              let ok = ref true in
              List.iteri
                (fun i h ->
                  match float_of_hex h with
                  | Some v -> cls_in.(i) <- v
                  | None -> ok := false)
                cls_hex;
              if !ok then begin
                let lvl = level_of_rank (max 0 (min 3 rank)) in
                let p = peer t name in
                merge_slots t p ~last_in ~off_in ~cls_in:(Some cls_in);
                if level_for_rank_update t p lvl then incr merged
              end
          | _ -> ())
      | _ -> ())
    lines;
  t.counters.suspicion_imported <- t.counters.suspicion_imported + 1;
  !merged

let pp_suspects fmt t =
  let pp_one fmt (name, lvl) =
    Format.fprintf fmt "%s=%s(%.1f)" name (level_name lvl) (score t name)
  in
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
    pp_one fmt (suspects t)
