module Vtime = Netsim.Vtime

type level = Clear | Rate_limited | Quarantined | Expelled

let level_rank = function
  | Clear -> 0
  | Rate_limited -> 1
  | Quarantined -> 2
  | Expelled -> 3

let level_of_rank = function
  | 0 -> Clear
  | 1 -> Rate_limited
  | 2 -> Quarantined
  | _ -> Expelled

let level_name = function
  | Clear -> "clear"
  | Rate_limited -> "rate-limited"
  | Quarantined -> "quarantined"
  | Expelled -> "expelled"

type evidence =
  | Mac_failure
  | Replay
  | Stale_rekey
  | Half_open
  | Preauth_pressure
  | Malformed
  | Contained

let evidence_name = function
  | Mac_failure -> "mac-failure"
  | Replay -> "replay"
  | Stale_rekey -> "stale-rekey"
  | Half_open -> "half-open"
  | Preauth_pressure -> "preauth-pressure"
  | Malformed -> "malformed"
  | Contained -> "contained"

type config = {
  half_life : Vtime.t;
  rate_limit_at : float;
  quarantine_at : float;
  expel_at : float;
  w_mac_failure : float;
  w_replay : float;
  w_stale_rekey : float;
  w_half_open : float;
  w_preauth : float;
  w_malformed : float;
  w_contained : float;
  preauth_rate : float;
  preauth_burst : float;
  half_open_cap : int;
}

let default_config =
  {
    half_life = Vtime.of_s 2;
    rate_limit_at = 8.0;
    quarantine_at = 25.0;
    expel_at = 60.0;
    w_mac_failure = 3.0;
    w_replay = 1.5;
    w_stale_rekey = 1.0;
    w_half_open = 2.0;
    w_preauth = 0.4;
    w_malformed = 2.0;
    w_contained = 0.6;
    preauth_rate = 2.0;
    preauth_burst = 6.0;
    half_open_cap = 8;
  }

let weight cfg = function
  | Mac_failure -> cfg.w_mac_failure
  | Replay -> cfg.w_replay
  | Stale_rekey -> cfg.w_stale_rekey
  | Half_open -> cfg.w_half_open
  | Preauth_pressure -> cfg.w_preauth
  | Malformed -> cfg.w_malformed
  | Contained -> cfg.w_contained

type counters = {
  mutable observations : int;
  mutable rate_limits : int;
  mutable quarantines : int;
  mutable expulsions : int;
  mutable emergency_rekeys : int;
  mutable quarantined_dropped : int;
  mutable preauth_admitted : int;
  mutable preauth_throttled : int;
  mutable preauth_capped : int;
  mutable preauth_queue_dropped : int;
  mutable queues_purged : int;
  mutable suspicion_shipped : int;
  mutable suspicion_imported : int;
}

let fresh_counters () =
  {
    observations = 0;
    rate_limits = 0;
    quarantines = 0;
    expulsions = 0;
    emergency_rekeys = 0;
    quarantined_dropped = 0;
    preauth_admitted = 0;
    preauth_throttled = 0;
    preauth_capped = 0;
    preauth_queue_dropped = 0;
    queues_purged = 0;
    suspicion_shipped = 0;
    suspicion_imported = 0;
  }

let to_stats (c : counters) : Netsim.Stats.sentinel =
  {
    observations = c.observations;
    rate_limits = c.rate_limits;
    quarantines = c.quarantines;
    expulsions = c.expulsions;
    emergency_rekeys = c.emergency_rekeys;
    quarantined_dropped = c.quarantined_dropped;
    preauth_admitted = c.preauth_admitted;
    preauth_throttled = c.preauth_throttled;
    preauth_capped = c.preauth_capped;
    preauth_queue_dropped = c.preauth_queue_dropped;
    queues_purged = c.queues_purged;
    suspicion_shipped = c.suspicion_shipped;
    suspicion_imported = c.suspicion_imported;
  }

type peer = {
  mutable score : float;
  mutable last : Vtime.t;
  mutable level : level;
  mutable tokens : float;
  mutable tokens_at : Vtime.t;
}

type t = {
  config : config;
  clock : unit -> Vtime.t;
  peers : (string, peer) Hashtbl.t;
  anon : peer;  (* shared bucket for names outside the directory *)
  counters : counters;
  mutable ship : (string -> unit) option;
}

let create ?(config = default_config) ?(clock = fun () -> Vtime.zero) () =
  let now = clock () in
  {
    config;
    clock;
    peers = Hashtbl.create 16;
    anon =
      {
        score = 0.0;
        last = now;
        level = Clear;
        tokens = config.preauth_burst;
        tokens_at = now;
      };
    counters = fresh_counters ();
    ship = None;
  }

let config t = t.config
let counters t = t.counters
let set_ship t f = t.ship <- Some f

let peer t name =
  match Hashtbl.find_opt t.peers name with
  | Some p -> p
  | None ->
      let now = t.clock () in
      let p =
        {
          score = 0.0;
          last = now;
          level = Clear;
          tokens = t.config.preauth_burst;
          tokens_at = now;
        }
      in
      Hashtbl.replace t.peers name p;
      p

(* Exponential decay: halve the score every [half_life] of quiet. *)
let decayed t p now =
  let dt = Vtime.to_float_ms (Int64.sub now p.last) in
  if dt <= 0.0 then p.score
  else
    let hl = Vtime.to_float_ms t.config.half_life in
    p.score *. Float.pow 0.5 (dt /. hl)

let score t name =
  match Hashtbl.find_opt t.peers name with
  | None -> 0.0
  | Some p -> decayed t p (t.clock ())

let level t name =
  match Hashtbl.find_opt t.peers name with None -> Clear | Some p -> p.level

let level_for_rank_update t p target =
  (* The ladder only ratchets upward: decay lowers the score, never
     the containment level — a quarantined insider does not talk its
     way back in by going quiet. *)
  if level_rank target > level_rank p.level then begin
    p.level <- target;
    (match target with
    | Clear -> ()
    | Rate_limited -> t.counters.rate_limits <- t.counters.rate_limits + 1
    | Quarantined -> t.counters.quarantines <- t.counters.quarantines + 1
    | Expelled -> t.counters.expulsions <- t.counters.expulsions + 1);
    true
  end
  else false

let target_of_score cfg s =
  if s >= cfg.expel_at then Expelled
  else if s >= cfg.quarantine_at then Quarantined
  else if s >= cfg.rate_limit_at then Rate_limited
  else Clear

let export t =
  let rows =
    Hashtbl.fold
      (fun name p acc ->
        (name, p.level, p.score, p.last) :: acc)
      t.peers []
    |> List.sort compare
  in
  let buf = Buffer.create 128 in
  Buffer.add_string buf "suspicion/1\n";
  List.iter
    (fun (name, lvl, score, last) ->
      Buffer.add_string buf
        (Printf.sprintf "%d\t%Lx\t%Ld\t%s\n" (level_rank lvl)
           (Int64.bits_of_float score) last name))
    rows;
  Buffer.contents buf

let maybe_ship t =
  match t.ship with
  | None -> ()
  | Some f ->
      t.counters.suspicion_shipped <- t.counters.suspicion_shipped + 1;
      f (export t)

let observe t ~peer:name kind =
  let now = t.clock () in
  let p = peer t name in
  t.counters.observations <- t.counters.observations + 1;
  p.score <- decayed t p now +. weight t.config kind;
  p.last <- now;
  let escalated = level_for_rank_update t p (target_of_score t.config p.score) in
  if escalated then maybe_ship t;
  p.level

let note_quarantined_drop t ~peer:name =
  t.counters.quarantined_dropped <- t.counters.quarantined_dropped + 1;
  ignore (observe t ~peer:name Contained)

let note_emergency_rekey t =
  t.counters.emergency_rekeys <- t.counters.emergency_rekeys + 1

let note_queue_purged t =
  t.counters.queues_purged <- t.counters.queues_purged + 1

let note_queue_dropped t =
  t.counters.preauth_queue_dropped <- t.counters.preauth_queue_dropped + 1

let suspects t =
  Hashtbl.fold
    (fun name p acc ->
      if p.level = Clear then acc else (name, p.level) :: acc)
    t.peers []
  |> List.sort compare

let contained t =
  List.filter_map
    (fun (name, lvl) ->
      if level_rank lvl >= level_rank Quarantined then Some name else None)
    (suspects t)

type verdict = Admit | Throttled | Capped | Denied_quarantined

let verdict_name = function
  | Admit -> "admit"
  | Throttled -> "throttled"
  | Capped -> "capped"
  | Denied_quarantined -> "denied-quarantined"

let refill t p now =
  let dt_s = Vtime.to_float_ms (Int64.sub now p.tokens_at) /. 1000.0 in
  if dt_s > 0.0 then begin
    let rate =
      if p.level = Rate_limited then t.config.preauth_rate *. 0.25
      else t.config.preauth_rate
    in
    p.tokens <- Float.min t.config.preauth_burst (p.tokens +. (dt_s *. rate));
    p.tokens_at <- now
  end

let admit_preauth t ~peer:name ~known ~resuming ~half_open =
  let now = t.clock () in
  let p = if known then peer t name else t.anon in
  (* Every attempt is itself weak evidence: a flood of perfectly valid
     handshake frames still climbs the ladder. *)
  ignore (observe t ~peer:name Preauth_pressure);
  let lvl = level t name in
  if level_rank lvl >= level_rank Quarantined then begin
    t.counters.quarantined_dropped <- t.counters.quarantined_dropped + 1;
    Denied_quarantined
  end
  else if resuming then begin
    (* An in-progress handshake retransmission; blocking it would wedge
       legitimate joins under their own backoff. *)
    t.counters.preauth_admitted <- t.counters.preauth_admitted + 1;
    Admit
  end
  else if half_open >= t.config.half_open_cap then begin
    t.counters.preauth_capped <- t.counters.preauth_capped + 1;
    Capped
  end
  else begin
    refill t p now;
    if p.tokens >= 1.0 then begin
      p.tokens <- p.tokens -. 1.0;
      t.counters.preauth_admitted <- t.counters.preauth_admitted + 1;
      Admit
    end
    else begin
      t.counters.preauth_throttled <- t.counters.preauth_throttled + 1;
      Throttled
    end
  end

let import t blob =
  let lines = String.split_on_char '\n' blob in
  let merged = ref 0 in
  List.iter
    (fun line ->
      match String.split_on_char '\t' line with
      | [ rank; score_hex; last; name ] when name <> "" -> (
          match
            ( int_of_string_opt rank,
              Int64.of_string_opt ("0x" ^ score_hex),
              Int64.of_string_opt last )
          with
          | Some rank, Some bits, Some last ->
              let lvl = level_of_rank (max 0 (min 3 rank)) in
              let score = Int64.float_of_bits bits in
              let score = if Float.is_nan score then 0.0 else score in
              let p = peer t name in
              if score > decayed t p last then begin
                p.score <- score;
                p.last <- last
              end;
              if level_for_rank_update t p lvl then incr merged
          | _ -> ())
      | _ -> ())
    lines;
  t.counters.suspicion_imported <- t.counters.suspicion_imported + 1;
  !merged

let pp_suspects fmt t =
  let pp_one fmt (name, lvl) =
    Format.fprintf fmt "%s=%s(%.1f)" name (level_name lvl) (score t name)
  in
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
    pp_one fmt (suspects t)
