(* Warm-standby journal replication.

   The primary manager subscribes to its journal's mutation hook and
   ships every durable change — appended record chunks and full-image
   publishes — to each backup as a sealed [Repl_record] frame tagged
   with the primary's term (incarnation counter) and a per-term
   sequence number. Backups apply strictly in order, persist the
   replica through their own store backend, acknowledge cumulatively,
   and request re-sends when they detect a gap. Every term opens with
   a full-image snapshot at sequence 0, so a newly promoted primary
   (term + 1) resynchronises every surviving backup with one frame.

   Trust argument: frames are sealed under the shared manager key
   [K_r] with the frame header (label, sender, recipient) bound as
   AEAD associated data, so a frame shipped to backup B1 cannot be
   spliced to B2 and the apparent sender cannot be rewritten. Replays
   are inert: a duplicated in-order frame re-acknowledges, an
   out-of-window sequence or stale term is counted and dropped, and
   nothing an attacker can replay moves the replica backwards. Only
   frames that advance the replica (or prove a future frontier) count
   as primary liveness, so replayed heartbeats cannot indefinitely
   suppress a backup's promotion watchdog. *)

module F = Wire.Frame
module P = Wire.Payload

(* A [Repl_queue] op's data carries its own file binding: the queue
   file name, a NUL byte, then the full durable image. *)
let queue_data ~file image = file ^ "\000" ^ image

let split_queue_data data =
  match String.index_opt data '\000' with
  | None -> None
  | Some i ->
      Some
        (String.sub data 0 i, String.sub data (i + 1) (String.length data - i - 1))

type counters = {
  mutable records_shipped : int;
  mutable records_acked : int;
  mutable snapshots_shipped : int;
  mutable heartbeats_shipped : int;
  mutable gap_fetches : int;
  mutable rejected_forged : int;
  mutable rejected_replayed : int;
  mutable rejected_stale : int;
  mutable stale_notices : int;
  mutable stale_sourcing_stopped : int;
  mutable demotions : int;
  mutable warm_promotions : int;
  mutable cold_promotions : int;
  mutable lag_snapshots : int;
}

let fresh_counters () =
  {
    records_shipped = 0;
    records_acked = 0;
    snapshots_shipped = 0;
    heartbeats_shipped = 0;
    gap_fetches = 0;
    rejected_forged = 0;
    rejected_replayed = 0;
    rejected_stale = 0;
    stale_notices = 0;
    stale_sourcing_stopped = 0;
    demotions = 0;
    warm_promotions = 0;
    cold_promotions = 0;
    lag_snapshots = 0;
  }

let snapshot_counters c : Netsim.Stats.replication =
  {
    records_shipped = c.records_shipped;
    records_acked = c.records_acked;
    snapshots_shipped = c.snapshots_shipped;
    heartbeats_shipped = c.heartbeats_shipped;
    gap_fetches = c.gap_fetches;
    rejected_forged = c.rejected_forged;
    rejected_replayed = c.rejected_replayed;
    rejected_stale = c.rejected_stale;
    stale_notices = c.stale_notices;
    stale_sourcing_stopped = c.stale_sourcing_stopped;
    demotions = c.demotions;
    warm_promotions = c.warm_promotions;
    cold_promotions = c.cold_promotions;
  }

module Source = struct
  type t = {
    self : Types.agent;
    backups : Types.agent list;
    term : int;
    key : Sym_crypto.Key.t;
    rng : Prng.Splitmix.t;
    send : F.t -> unit;
    journal : Journal.t;
    counters : counters;
    (* Per-term sequence space. [image_seq] is the sequence number of
       the most recent full-image publish; [ops] holds the typed ops
       after it (journal append chunks and delivery-queue images).
       Journal auto-compaction periodically replaces the image, which
       empties [ops]; the latest queue image per file is then re-shipped
       as a fresh op so the resend window stays complete — that is the
       op log's bound. *)
    mutable next_seq : int;
    mutable image_seq : int;
    mutable last_image : string;
    ops : (int, P.repl_op * string) Hashtbl.t;
    (* Latest durable image per delivery-queue file, so compaction of
       the op log never forgets an offline member's backlog. *)
    queue_images : (string, string) Hashtbl.t;
    (* Latest sentinel suspicion snapshot; like queue images it lives
       outside the journal byte stream and is re-shipped after
       compaction so the resend window stays complete. *)
    mutable suspicion : string option;
    acked : (Types.agent, int) Hashtbl.t;
    (* Journal byte length right after each shipped op — what lets a
       demoting source cut its journal back to the acked prefix. *)
    lens : (int, int) Hashtbl.t;
    mutable cur_len : int;
    mutable superseded : bool;
    on_superseded : term:int -> primary:Types.agent -> unit;
    (* Op-log growth bound: when some backup trails the frontier by
       more than this many records AND the op log itself has grown
       past it, the source stops paying per-op memory for the laggard
       and escalates to a fresh full-image snapshot (which empties the
       op log). [None] = rely on journal auto-compaction alone. *)
    lag_budget : int option;
  }

  let seal t ~recipient ~label payload =
    Sealed_channel.seal ~rng:t.rng ~key:t.key ~label ~sender:t.self ~recipient
      payload

  let record_frame t ~recipient ~seq ~op ~data =
    seal t ~recipient ~label:F.Repl_record
      (P.encode_repl_record
         { P.l = t.self; b = recipient; term = t.term; seq; op; data })

  let bump_ship_counter t = function
    | P.Repl_snapshot ->
        t.counters.snapshots_shipped <- t.counters.snapshots_shipped + 1
    | P.Repl_heartbeat ->
        t.counters.heartbeats_shipped <- t.counters.heartbeats_shipped + 1
    | P.Repl_append | P.Repl_queue | P.Repl_suspicion ->
        t.counters.records_shipped <- t.counters.records_shipped + 1

  let ship t ~seq ~op ~data =
    List.iter
      (fun b ->
        bump_ship_counter t op;
        t.send (record_frame t ~recipient:b ~seq ~op ~data))
      t.backups

  let ship_queue_image t ~file image =
    Hashtbl.replace t.queue_images file image;
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let data = queue_data ~file image in
    Hashtbl.replace t.ops seq (P.Repl_queue, data);
    (* Queue images live outside the journal byte stream, so the
       acked-prefix walk sees an unchanged journal length here. *)
    Hashtbl.replace t.lens seq t.cur_len;
    ship t ~seq ~op:P.Repl_queue ~data

  let ship_suspicion t blob =
    t.suspicion <- Some blob;
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    Hashtbl.replace t.ops seq (P.Repl_suspicion, blob);
    (* Like queue images, suspicion lives outside the journal byte
       stream: the acked-prefix walk sees an unchanged length. *)
    Hashtbl.replace t.lens seq t.cur_len;
    ship t ~seq ~op:P.Repl_suspicion ~data:blob

  (* Journal compaction just emptied [ops]; put the latest image of
     every delivery queue (and the suspicion snapshot) back on the
     stream so a later [resend] can still serve them. *)
  let reship_queue_images t =
    Hashtbl.fold (fun file image acc -> (file, image) :: acc) t.queue_images []
    |> List.sort compare
    |> List.iter (fun (file, image) -> ship_queue_image t ~file image);
    match t.suspicion with None -> () | Some blob -> ship_suspicion t blob

  let rec on_journal_event t = function
    | Journal.Appended chunk ->
        let seq = t.next_seq in
        t.next_seq <- seq + 1;
        Hashtbl.replace t.ops seq (P.Repl_append, chunk);
        t.cur_len <- t.cur_len + String.length chunk;
        Hashtbl.replace t.lens seq t.cur_len;
        ship t ~seq ~op:P.Repl_append ~data:chunk;
        maybe_escalate t
    | Journal.Published image ->
        let seq = t.next_seq in
        t.next_seq <- seq + 1;
        t.image_seq <- seq;
        t.last_image <- image;
        Hashtbl.reset t.ops;
        t.cur_len <- String.length image;
        Hashtbl.replace t.lens seq t.cur_len;
        ship t ~seq ~op:P.Repl_snapshot ~data:image;
        reship_queue_images t

  (* Checked after every append (the op-log growth path). Both legs of
     the guard matter: the lag leg means a caught-up fleet never pays
     for an extra snapshot (journal auto-compaction is enough), and
     the backlog leg — which resets with the image we are about to
     ship — keeps a partitioned backup from forcing a snapshot per
     append while its ack frontier cannot move. Together they bound
     the op log at [budget] records whenever some backup lags. *)
  and maybe_escalate t =
    match t.lag_budget with
    | None -> ()
    | Some budget ->
        let worst =
          List.fold_left
            (fun acc b ->
              let upto =
                Option.value ~default:0 (Hashtbl.find_opt t.acked b)
              in
              max acc (t.next_seq - upto))
            0 t.backups
        in
        if t.next_seq - t.image_seq > budget && worst > budget then begin
          t.counters.lag_snapshots <- t.counters.lag_snapshots + 1;
          on_journal_event t (Journal.Published (Journal.contents t.journal))
        end

  let create ~self ~backups ~term ~key ~rng ~send ~journal
      ?(on_superseded = fun ~term:_ ~primary:_ -> ()) ?counters ?lag_budget ()
      =
    let counters = match counters with Some c -> c | None -> fresh_counters () in
    let t =
      {
        self;
        backups;
        term;
        key;
        rng;
        send;
        journal;
        counters;
        next_seq = 0;
        image_seq = 0;
        last_image = "";
        ops = Hashtbl.create 64;
        queue_images = Hashtbl.create 8;
        suspicion = None;
        acked = Hashtbl.create 8;
        lens = Hashtbl.create 64;
        cur_len = 0;
        superseded = false;
        on_superseded;
        lag_budget;
      }
    in
    Journal.set_observer journal (Some (on_journal_event t));
    (* Every term opens with the primary's current image at sequence 0:
       backups that just adopted the term resynchronise from one frame. *)
    on_journal_event t (Journal.Published (Journal.contents journal));
    t

  let detach t = Journal.set_observer t.journal None
  let term t = t.term

  let heartbeat t =
    List.iter
      (fun b ->
        t.counters.heartbeats_shipped <- t.counters.heartbeats_shipped + 1;
        t.send
          (record_frame t ~recipient:b ~seq:t.next_seq ~op:P.Repl_heartbeat
             ~data:""))
      t.backups

  let acked t backup = Option.value ~default:0 (Hashtbl.find_opt t.acked backup)

  let lag t =
    List.map (fun b -> (b, max 0 (t.next_seq - acked t b))) t.backups

  let lag_snapshots t = t.counters.lag_snapshots

  (* The longest journal byte-prefix some backup acknowledged under
     this term — what a demoting source keeps when it discards its
     divergent suffix. When the best ack predates the last compaction,
     the acked records survive only inside the folded image, so the
     cut lands at the image boundary (never below an acked record). *)
  let acked_prefix t =
    let best = Hashtbl.fold (fun _ upto acc -> max upto acc) t.acked 0 in
    if best = 0 then 0
    else
      let seq = max (best - 1) t.image_seq in
      Option.value ~default:0 (Hashtbl.find_opt t.lens seq)

  let superseded t = t.superseded

  let supersede t ~term ~primary =
    if not t.superseded then begin
      t.superseded <- true;
      t.counters.stale_sourcing_stopped <-
        t.counters.stale_sourcing_stopped + 1;
      t.on_superseded ~term ~primary
    end

  let stale_notice t ~to_ ~stale_term =
    t.counters.stale_notices <- t.counters.stale_notices + 1;
    seal t ~recipient:to_ ~label:F.Repl_stale
      (P.encode_repl_stale
         { P.b = t.self; l = to_; stale_term; term = t.term; primary = t.self })

  (* Re-send everything from [from_] on, to the requesting backup only.
     Below the image floor the ops are gone — compaction subsumed them
     — so the catch-up starts with the image itself, which is
     equivalent by construction. *)
  let resend t ~backup ~from_ =
    let start =
      if from_ <= t.image_seq then begin
        t.counters.snapshots_shipped <- t.counters.snapshots_shipped + 1;
        t.send
          (record_frame t ~recipient:backup ~seq:t.image_seq
             ~op:P.Repl_snapshot ~data:t.last_image);
        t.image_seq + 1
      end
      else from_
    in
    for seq = start to t.next_seq - 1 do
      match Hashtbl.find_opt t.ops seq with
      | Some (op, data) ->
          bump_ship_counter t op;
          t.send (record_frame t ~recipient:backup ~seq ~op ~data)
      | None -> ()
    done

  let forged t = t.counters.rejected_forged <- t.counters.rejected_forged + 1

  let handle_frame t (frame : F.t) =
    match Sealed_channel.open_ ~key:t.key frame with
    | Error _ -> t.counters.rejected_forged <- t.counters.rejected_forged + 1
    | Ok plain -> (
        match frame.F.label with
        | F.Repl_stale -> (
            (* A demotion signal. Only a holder of [K_r] can have
               minted it, and acting on it requires that it answers
               {e this} incarnation: [stale_term] must equal our
               current term, and the superseding term must be strictly
               newer. A forged notice fails the seal; a replayed one
               (from an earlier demotion, or bounced off another
               manager) fails the term binding. Either way a live
               primary never stands down on fabricated evidence. *)
            match P.decode_repl_stale plain with
            | Error _ -> forged t
            | Ok n ->
                if n.P.l <> t.self || n.P.b <> frame.F.sender then forged t
                else if n.P.stale_term <> t.term || n.P.term <= n.P.stale_term
                then
                  t.counters.rejected_replayed <-
                    t.counters.rejected_replayed + 1
                else supersede t ~term:n.P.term ~primary:n.P.primary)
        | F.Repl_ack -> (
            match P.decode_repl_ack plain with
            | Error _ ->
                t.counters.rejected_forged <- t.counters.rejected_forged + 1
            | Ok a ->
                if a.P.b <> frame.F.sender || a.P.l <> t.self then
                  t.counters.rejected_forged <- t.counters.rejected_forged + 1
                else if a.P.term <> t.term then
                  t.counters.rejected_stale <- t.counters.rejected_stale + 1
                else begin
                  t.counters.records_acked <- t.counters.records_acked + 1;
                  if a.P.upto > acked t a.P.b then
                    Hashtbl.replace t.acked a.P.b a.P.upto
                end)
        | F.Repl_fetch -> (
            match P.decode_repl_fetch plain with
            | Error _ ->
                t.counters.rejected_forged <- t.counters.rejected_forged + 1
            | Ok f ->
                if f.P.b <> frame.F.sender || f.P.l <> t.self then
                  t.counters.rejected_forged <- t.counters.rejected_forged + 1
                else if f.P.term <> t.term then
                  t.counters.rejected_stale <- t.counters.rejected_stale + 1
                else resend t ~backup:f.P.b ~from_:f.P.from_)
        | _ -> t.counters.rejected_forged <- t.counters.rejected_forged + 1)

  (* A [Repl_record] arriving at a manager that is itself sourcing:
     either a zombie peer still shipping a dead term (tell it to stand
     down), or a successor's higher-term stream reaching us after a
     partition healed (the authentic evidence that {e we} are the
     zombie). An equal term from a different source is impossible for
     honest managers — promotion terms are unique — so it is treated
     as a forgery attempt. *)
  let handle_peer_record t (frame : F.t) =
    match Sealed_channel.open_ ~key:t.key frame with
    | Error _ -> forged t
    | Ok plain -> (
        match P.decode_repl_record plain with
        | Error _ -> forged t
        | Ok r ->
            if r.P.b <> t.self || r.P.l <> frame.F.sender then forged t
            else if r.P.term > t.term then
              supersede t ~term:r.P.term ~primary:r.P.l
            else if r.P.term < t.term then begin
              t.counters.rejected_stale <- t.counters.rejected_stale + 1;
              t.send (stale_notice t ~to_:r.P.l ~stale_term:r.P.term)
            end
            else forged t)

  let stats t = snapshot_counters t.counters
end

module Replica = struct
  type t = {
    self : Types.agent;
    key : Sym_crypto.Key.t;
    rng : Prng.Splitmix.t;
    disk : Store.Backend.t option;
    file : string;
    counters : counters;
    buf : Buffer.t;
    (* Latest delivery-queue image per file, mirrored from the primary
       so a promotion can rebuild the store-and-forward layer. *)
    queues : (string, string) Hashtbl.t;
    (* Latest suspicion snapshot from the primary, adopted by the
       sentinel at promotion so quarantines survive failover. Not
       persisted: the source re-ships it on every escalation and after
       every compaction, so a restarted replica reconverges. *)
    mutable suspicion : string option;
    mutable primary : Types.agent;
    mutable term : int;
    mutable expected : int;
    mutable fresh_activity : bool;
    mutable eio_retries : int;
  }

  let max_eio_retries = 8

  let with_retry t f =
    let rec go attempt =
      try f ()
      with Store.Backend.Eio _ when attempt < max_eio_retries ->
        t.eio_retries <- t.eio_retries + 1;
        go (attempt + 1)
    in
    go 0

  let disk_append t ~off bytes =
    match t.disk with
    | None -> ()
    | Some d ->
        with_retry t (fun () -> Store.Backend.pwrite d ~file:t.file ~off bytes);
        with_retry t (fun () -> Store.Backend.fsync d ~file:t.file)

  let disk_publish t =
    match t.disk with
    | None -> ()
    | Some d ->
        let bytes = Buffer.contents t.buf in
        let tmp = t.file ^ ".tmp" in
        with_retry t (fun () -> Store.Backend.remove d ~file:tmp);
        with_retry t (fun () -> Store.Backend.pwrite d ~file:tmp ~off:0 bytes);
        with_retry t (fun () -> Store.Backend.fsync d ~file:tmp);
        with_retry t (fun () -> Store.Backend.rename d ~src:tmp ~dst:t.file)

  let default_file = "journal_replica"

  let create ~self ~primary ~key ~rng ?disk ?(file = default_file) ?(term = 0)
      ?counters () =
    let counters = match counters with Some c -> c | None -> fresh_counters () in
    {
      self;
      key;
      rng;
      disk;
      file;
      counters;
      buf = Buffer.create 256;
      queues = Hashtbl.create 8;
      suspicion = None;
      primary;
      term;
      expected = 0;
      fresh_activity = false;
      eio_retries = 0;
    }

  let contents t = Buffer.contents t.buf
  let primary t = t.primary
  let term t = t.term
  let expected t = t.expected
  let file t = t.file
  let eio_retries t = t.eio_retries

  let take_activity t =
    let a = t.fresh_activity in
    t.fresh_activity <- false;
    a

  let seal_to t ~recipient ~label payload =
    Sealed_channel.seal ~rng:t.rng ~key:t.key ~label ~sender:t.self ~recipient
      payload

  let seal t ~label payload = seal_to t ~recipient:t.primary ~label payload

  let stale_notice t ~to_ ~stale_term =
    t.counters.stale_notices <- t.counters.stale_notices + 1;
    seal_to t ~recipient:to_ ~label:F.Repl_stale
      (P.encode_repl_stale
         {
           P.b = t.self;
           l = to_;
           stale_term;
           term = t.term;
           primary = t.primary;
         })

  let ack t =
    seal t ~label:F.Repl_ack
      (P.encode_repl_ack
         { P.b = t.self; l = t.primary; term = t.term; upto = t.expected })

  let fetch t =
    t.counters.gap_fetches <- t.counters.gap_fetches + 1;
    seal t ~label:F.Repl_fetch
      (P.encode_repl_fetch
         { P.b = t.self; l = t.primary; term = t.term; from_ = t.expected })

  let apply_append t data =
    let off = Buffer.length t.buf in
    Buffer.add_string t.buf data;
    disk_append t ~off data

  let apply_image t data =
    Buffer.clear t.buf;
    Buffer.add_string t.buf data;
    disk_publish t

  let apply_queue t ~file image =
    Hashtbl.replace t.queues file image;
    match t.disk with
    | None -> ()
    | Some d ->
        let tmp = file ^ ".tmp" in
        with_retry t (fun () -> Store.Backend.remove d ~file:tmp);
        with_retry t (fun () -> Store.Backend.pwrite d ~file:tmp ~off:0 image);
        with_retry t (fun () -> Store.Backend.fsync d ~file:tmp);
        with_retry t (fun () -> Store.Backend.rename d ~src:tmp ~dst:file)

  let queue_images t =
    Hashtbl.fold (fun file image acc -> (file, image) :: acc) t.queues []
    |> List.sort compare

  let suspicion t = t.suspicion

  let forged t = t.counters.rejected_forged <- t.counters.rejected_forged + 1

  let handle_frame t (frame : F.t) =
    match Sealed_channel.open_ ~key:t.key frame with
    | Error _ ->
        forged t;
        []
    | Ok plain -> (
        match P.decode_repl_record plain with
        | Error _ ->
            forged t;
            []
        | Ok r ->
            if r.P.b <> t.self || r.P.l <> frame.F.sender then begin
              forged t;
              []
            end
            else if r.P.term < t.term then begin
              (* A superseded source is still shipping. Beyond dropping
                 the record, answer with the demotion signal: the
                 zombie holds [K_r], so it will verify the notice and
                 stand down (post-heal reconciliation). *)
              t.counters.rejected_stale <- t.counters.rejected_stale + 1;
              [ stale_notice t ~to_:r.P.l ~stale_term:r.P.term ]
            end
            else if r.P.term = t.term && t.expected > 0 && r.P.l <> t.primary
            then begin
              (* Two distinct primaries claiming one term: impossible for
                 honest managers (terms are claimed by succession order),
                 so this is a forgery attempt that somehow holds the key.
                 Drop it rather than fork the replica. *)
              forged t;
              []
            end
            else begin
              if r.P.term > t.term then begin
                (* A successor took over. Adopt its term; its stream
                   opens with a snapshot at sequence 0, which lands in
                   the in-order path below. *)
                t.term <- r.P.term;
                t.primary <- r.P.l;
                t.expected <- 0
              end
              else if t.expected = 0 then t.primary <- r.P.l;
              match r.P.op with
              | P.Repl_heartbeat ->
                  if r.P.seq > t.expected then begin
                    t.fresh_activity <- true;
                    [ fetch t ]
                  end
                  else if r.P.seq = t.expected then begin
                    t.fresh_activity <- true;
                    [ ack t ]
                  end
                  else begin
                    (* Old frontier: a replayed heartbeat. Not counted as
                       liveness — replays must not starve the promotion
                       watchdog. *)
                    t.counters.rejected_replayed <-
                      t.counters.rejected_replayed + 1;
                    []
                  end
              | P.Repl_append ->
                  if r.P.seq = t.expected then begin
                    apply_append t r.P.data;
                    t.expected <- t.expected + 1;
                    t.fresh_activity <- true;
                    [ ack t ]
                  end
                  else if r.P.seq < t.expected then begin
                    t.counters.rejected_replayed <-
                      t.counters.rejected_replayed + 1;
                    [ ack t ]
                  end
                  else begin
                    t.fresh_activity <- true;
                    [ fetch t ]
                  end
              | P.Repl_queue ->
                  if r.P.seq = t.expected then begin
                    (match split_queue_data r.P.data with
                    | Some (file, image) -> apply_queue t ~file image
                    | None ->
                        (* Malformed queue binding from a key holder:
                           apply nothing, but stay in sequence so the
                           stream is not wedged. *)
                        forged t);
                    t.expected <- t.expected + 1;
                    t.fresh_activity <- true;
                    [ ack t ]
                  end
                  else if r.P.seq < t.expected then begin
                    t.counters.rejected_replayed <-
                      t.counters.rejected_replayed + 1;
                    [ ack t ]
                  end
                  else begin
                    t.fresh_activity <- true;
                    [ fetch t ]
                  end
              | P.Repl_suspicion ->
                  if r.P.seq = t.expected then begin
                    t.suspicion <- Some r.P.data;
                    t.expected <- t.expected + 1;
                    t.fresh_activity <- true;
                    [ ack t ]
                  end
                  else if r.P.seq < t.expected then begin
                    t.counters.rejected_replayed <-
                      t.counters.rejected_replayed + 1;
                    [ ack t ]
                  end
                  else begin
                    t.fresh_activity <- true;
                    [ fetch t ]
                  end
              | P.Repl_snapshot ->
                  if r.P.seq >= t.expected then begin
                    (* A snapshot subsumes everything before it, so a
                       future-sequence image is itself the catch-up. *)
                    apply_image t r.P.data;
                    t.expected <- r.P.seq + 1;
                    t.fresh_activity <- true;
                    [ ack t ]
                  end
                  else begin
                    t.counters.rejected_replayed <-
                      t.counters.rejected_replayed + 1;
                    [ ack t ]
                  end
            end)

  let stats t = snapshot_counters t.counters
end
