open Byteskit

let ( let* ) = Cursor.( let* )

type record =
  | Session_established of { member : Types.agent; key : string }
  | Session_closed of { member : Types.agent }
  | Epoch_bump of { key : string; epoch : int }
  | Snapshot of state

and state = {
  sessions : (Types.agent * string) list;
  group_key : (string * int) option;
  next_epoch : int;
}

let empty_state = { sessions = []; group_key = None; next_epoch = 1 }

let pp_record fmt = function
  | Session_established { member; _ } ->
      Format.fprintf fmt "SessionEstablished(%s)" member
  | Session_closed { member } -> Format.fprintf fmt "SessionClosed(%s)" member
  | Epoch_bump { epoch; _ } -> Format.fprintf fmt "EpochBump(%d)" epoch
  | Snapshot { sessions; group_key; next_epoch } ->
      Format.fprintf fmt "Snapshot(%d sessions, epoch=%s, next=%d)"
        (List.length sessions)
        (match group_key with
        | Some (_, e) -> string_of_int e
        | None -> "none")
        next_epoch

type status = Clean | Damaged of { valid_records : int; valid_bytes : int }

let pp_status fmt = function
  | Clean -> Format.pp_print_string fmt "clean"
  | Damaged { valid_records; valid_bytes } ->
      Format.fprintf fmt "damaged (recovered %d records, %d bytes)"
        valid_records valid_bytes

(* --- record payload encoding --- *)

let encode_payload ~seq record =
  let w = Cursor.Writer.create () in
  Cursor.Writer.u32 w seq;
  (match record with
  | Session_established { member; key } ->
      Cursor.Writer.u8 w 1;
      Cursor.Writer.bytes w member;
      Cursor.Writer.bytes w key
  | Session_closed { member } ->
      Cursor.Writer.u8 w 2;
      Cursor.Writer.bytes w member
  | Epoch_bump { key; epoch } ->
      Cursor.Writer.u8 w 3;
      Cursor.Writer.bytes w key;
      Cursor.Writer.u32 w epoch
  | Snapshot { sessions; group_key; next_epoch } ->
      Cursor.Writer.u8 w 4;
      Cursor.Writer.u32 w (List.length sessions);
      List.iter
        (fun (member, key) ->
          Cursor.Writer.bytes w member;
          Cursor.Writer.bytes w key)
        sessions;
      (match group_key with
      | None -> Cursor.Writer.u8 w 0
      | Some (key, epoch) ->
          Cursor.Writer.u8 w 1;
          Cursor.Writer.bytes w key;
          Cursor.Writer.u32 w epoch);
      Cursor.Writer.u32 w next_epoch);
  Cursor.Writer.contents w

let decode_payload payload =
  let r = Cursor.Reader.of_string payload in
  let result =
    let* seq = Cursor.Reader.u32 r in
    let* tag = Cursor.Reader.u8 r in
    let* record =
      match tag with
      | 1 ->
          let* member = Cursor.Reader.bytes r in
          let* key = Cursor.Reader.bytes r in
          Ok (Session_established { member; key })
      | 2 ->
          let* member = Cursor.Reader.bytes r in
          Ok (Session_closed { member })
      | 3 ->
          let* key = Cursor.Reader.bytes r in
          let* epoch = Cursor.Reader.u32 r in
          Ok (Epoch_bump { key; epoch })
      | 4 ->
          let* n = Cursor.Reader.u32 r in
          if n > 1_000_000 then Error (`Malformed "snapshot too large")
          else
            let rec sessions acc k =
              if k = 0 then Ok (List.rev acc)
              else
                let* member = Cursor.Reader.bytes r in
                let* key = Cursor.Reader.bytes r in
                sessions ((member, key) :: acc) (k - 1)
            in
            let* sessions = sessions [] n in
            let* flag = Cursor.Reader.u8 r in
            let* group_key =
              match flag with
              | 0 -> Ok None
              | 1 ->
                  let* key = Cursor.Reader.bytes r in
                  let* epoch = Cursor.Reader.u32 r in
                  Ok (Some (key, epoch))
              | _ -> Error (`Malformed "bad group-key flag")
            in
            let* next_epoch = Cursor.Reader.u32 r in
            Ok (Snapshot { sessions; group_key; next_epoch })
      | n -> Error (`Malformed (Printf.sprintf "unknown journal tag %d" n))
    in
    let* () = Cursor.Reader.expect_end r in
    Ok (seq, record)
  in
  Result.to_option result

let record_equal a b = encode_payload ~seq:0 a = encode_payload ~seq:0 b

(* --- state folding --- *)

let apply_record st = function
  | Snapshot s -> s
  | Session_established { member; key } ->
      {
        st with
        sessions =
          List.sort
            (fun (a, _) (b, _) -> String.compare a b)
            ((member, key) :: List.remove_assoc member st.sessions);
      }
  | Session_closed { member } ->
      { st with sessions = List.remove_assoc member st.sessions }
  | Epoch_bump { key; epoch } ->
      {
        st with
        group_key = Some (key, epoch);
        next_epoch = max st.next_epoch (epoch + 1);
      }

let state_of_records records = List.fold_left apply_record empty_state records

(* --- the journal proper --- *)

let magic = "EJNL"
let version = 1
let default_mac_key = "enclaves-journal"  (* 16 bytes, public: integrity
                                             only, not secrecy *)

type event = Appended of string | Published of string

type t = {
  buf : Buffer.t;
  mac : Sym_crypto.Siphash.key;
  compact_every : int;
  disk : Store.Backend.t option;
  file : string;
  mutable eio_retries : int;
  mutable st : state;
  mutable nrecords : int;
  mutable next_seq : int;
  mutable since_snapshot : int;
  mutable observer : (event -> unit) option;
  (* Degraded-mode switch: with durability off the in-memory log keeps
     evolving but neither mirror shape touches the backend. Re-arming
     is [set_durable true] followed by [compact], which republishes
     the whole image atomically. *)
  mutable durable : bool;
}

let header () =
  let w = Cursor.Writer.create () in
  Cursor.Writer.raw w magic;
  Cursor.Writer.u8 w version;
  Cursor.Writer.contents w

(* --- disk write-through ---

   The in-memory buffer stays authoritative for reads; every mutation
   is mirrored to the backend before returning. Transient EIO is
   retried a bounded number of times — safe because both mirror shapes
   are idempotent: an append rewrites the same offset, a publish
   restages the whole image. [Backend.Crashed] is never caught: a
   crashed store means the process is gone. *)

let max_eio_retries = 8

let with_retry t f =
  let rec go attempt =
    try f ()
    with Store.Backend.Eio _ when attempt < max_eio_retries ->
      t.eio_retries <- t.eio_retries + 1;
      go (attempt + 1)
  in
  go 0

(* Full-image publish: stage, fsync, atomic rename. Used whenever the
   on-disk bytes are replaced rather than extended (create, reset,
   compaction). The staging file is removed first so a stale longer
   tmp can never leak a garbage tail past the rename. *)
let disk_publish t =
  match t.disk with
  | Some d when t.durable ->
      let bytes = Buffer.contents t.buf in
      let tmp = t.file ^ ".tmp" in
      with_retry t (fun () -> Store.Backend.remove d ~file:tmp);
      with_retry t (fun () -> Store.Backend.pwrite d ~file:tmp ~off:0 bytes);
      with_retry t (fun () -> Store.Backend.fsync d ~file:tmp);
      with_retry t (fun () -> Store.Backend.rename d ~src:tmp ~dst:t.file)
  | _ -> ()

(* Incremental append: write the new record bytes at their offset and
   fsync. A crash between the two loses at most the record's tail,
   which replay's per-record checksum absorbs. *)
let disk_append t ~off bytes =
  match t.disk with
  | Some d when t.durable ->
      with_retry t (fun () -> Store.Backend.pwrite d ~file:t.file ~off bytes);
      with_retry t (fun () -> Store.Backend.fsync d ~file:t.file)
  | _ -> ()

let create ?(mac_key = default_mac_key) ?(compact_every = 256) ?disk
    ?(file = "journal") () =
  if String.length mac_key <> 16 then
    invalid_arg "Journal.create: mac_key must be 16 bytes";
  if compact_every < 1 then
    invalid_arg "Journal.create: compact_every must be positive";
  let buf = Buffer.create 256 in
  Buffer.add_string buf (header ());
  let t =
    {
      buf;
      mac = Sym_crypto.Siphash.key_of_string mac_key;
      compact_every;
      disk;
      file;
      eio_retries = 0;
      st = empty_state;
      nrecords = 0;
      next_seq = 0;
      since_snapshot = 0;
      observer = None;
      durable = true;
    }
  in
  disk_publish t;
  t

let set_observer t obs = t.observer <- obs
let set_durable t b = t.durable <- b
let durable t = t.durable
let notify t ev = match t.observer with None -> () | Some f -> f ev

let state t = t.st
let records t = t.nrecords
let size t = Buffer.length t.buf
let contents t = Buffer.contents t.buf
let eio_retries t = t.eio_retries
let file t = t.file

let append_raw t record =
  let payload = encode_payload ~seq:t.next_seq record in
  let w = Cursor.Writer.create () in
  Cursor.Writer.u32 w (String.length payload);
  Cursor.Writer.raw w payload;
  Cursor.Writer.raw w (Sym_crypto.Siphash.hash_to_bytes t.mac payload);
  Buffer.add_string t.buf (Cursor.Writer.contents w);
  t.next_seq <- t.next_seq + 1;
  t.nrecords <- t.nrecords + 1;
  t.st <- apply_record t.st record

let rewrite_as_snapshot t =
  let st = t.st in
  Buffer.clear t.buf;
  Buffer.add_string t.buf (header ());
  t.nrecords <- 0;
  t.next_seq <- 0;
  t.since_snapshot <- 0;
  append_raw t (Snapshot st);
  disk_publish t;
  notify t (Published (Buffer.contents t.buf))

let compact t = rewrite_as_snapshot t

let reset t =
  Buffer.clear t.buf;
  Buffer.add_string t.buf (header ());
  t.st <- empty_state;
  t.nrecords <- 0;
  t.next_seq <- 0;
  t.since_snapshot <- 0;
  disk_publish t;
  notify t (Published (Buffer.contents t.buf))

let append t record =
  let off = Buffer.length t.buf in
  append_raw t record;
  t.since_snapshot <- t.since_snapshot + 1;
  if t.since_snapshot > t.compact_every then rewrite_as_snapshot t
  else begin
    let chunk = Buffer.sub t.buf off (Buffer.length t.buf - off) in
    disk_append t ~off chunk;
    notify t (Appended chunk)
  end

(* --- replay: total on arbitrary bytes --- *)

let replay ?(mac_key = default_mac_key) bytes =
  if String.length mac_key <> 16 then
    invalid_arg "Journal.replay: mac_key must be 16 bytes";
  let mac = Sym_crypto.Siphash.key_of_string mac_key in
  let len = String.length bytes in
  let hlen = String.length magic + 1 in
  let bad_header =
    len < hlen
    || String.sub bytes 0 (String.length magic) <> magic
    || Char.code bytes.[String.length magic] <> version
  in
  if bad_header then ([], Damaged { valid_records = 0; valid_bytes = 0 })
  else begin
    let records = ref [] in
    let pos = ref hlen in
    let valid_bytes = ref hlen in
    let seq = ref 0 in
    let stop = ref false in
    while not !stop do
      if len - !pos < 4 then stop := true
        (* trailing fragment shorter than a length word *)
      else begin
        let rlen =
          let b i = Char.code bytes.[!pos + i] in
          (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3
        in
        if rlen < 0 || rlen > len - !pos - 12 then stop := true
        else begin
          let payload = String.sub bytes (!pos + 4) rlen in
          let sum = String.sub bytes (!pos + 4 + rlen) 8 in
          if not (String.equal sum (Sym_crypto.Siphash.hash_to_bytes mac payload))
          then stop := true
          else
            match decode_payload payload with
            | Some (s, record) when s = !seq ->
                records := record :: !records;
                incr seq;
                pos := !pos + 4 + rlen + 8;
                valid_bytes := !pos
            | Some _ | None -> stop := true
        end
      end
    done;
    let recs = List.rev !records in
    if !valid_bytes = len then (recs, Clean)
    else (recs, Damaged { valid_records = List.length recs; valid_bytes = !valid_bytes })
  end

let recover ?(mac_key = default_mac_key) ?compact_every ?disk ?file bytes =
  let records, status = replay ~mac_key bytes in
  let st = state_of_records records in
  let t = create ~mac_key ?compact_every ?disk ?file () in
  t.st <- st;
  rewrite_as_snapshot t;
  (t, st, status)

let load ?mac_key ?compact_every ?(file = "journal") ~disk () =
  let bytes = Option.value ~default:"" (Store.Backend.read disk ~file) in
  recover ?mac_key ?compact_every ~disk ~file bytes
