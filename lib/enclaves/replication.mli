(** Warm-standby journal replication — the authenticated channel that
    keeps every backup manager holding a near-live copy of the
    primary's durable journal, so failover can be {e warm}.

    The {!Source} runs on the primary: it subscribes to the journal's
    mutation hook ({!Journal.set_observer}) and ships each durable
    change — an appended record chunk or a full-image publish — to
    every backup as a sealed [Repl_record] frame carrying the
    primary's {e term} (incarnation counter) and a per-term sequence
    number. The {!Replica} runs on each backup: it applies frames
    strictly in order, persists the replica bytes through the backup's
    own {!Store.Backend}, acknowledges cumulatively, and requests a
    re-send when it detects a gap. Every term opens with a full-image
    snapshot at sequence 0, so one frame resynchronises a backup that
    just adopted a new primary, and journal compaction periodically
    replaces the image, which bounds the source's re-send log.

    {2 Trust argument}

    Frames are sealed under the shared manager key [K_r] with the
    frame header bound as AEAD associated data:

    - {b forged} frames (wrong key, spliced header, rewritten sender,
      recipient swapped to another backup) fail to open and are
      counted, never applied;
    - {b replayed} frames are inert — an in-order duplicate merely
      re-acknowledges, an old sequence or old heartbeat frontier is
      counted and dropped, and nothing moves the replica backwards;
    - {b stale-term} frames from a superseded primary are counted,
      dropped, and answered with a sealed [Repl_stale] demotion
      signal, so a dead incarnation's traffic cannot corrupt a
      replica that has already adopted the successor — and the zombie
      learns it is one.

    Only frames that advance the replica (or prove a future frontier)
    register as primary liveness ({!Replica.take_activity}), so
    replayed heartbeats cannot indefinitely suppress the backup's
    promotion watchdog.

    {2 Demotion}

    A source that receives {e authentic} evidence of a strictly higher
    term — a higher-term [Repl_record] reaching it directly
    ({!Source.handle_peer_record}), or a [Repl_stale] notice bound to
    its current term ({!Source.handle_frame}) — reports itself
    superseded exactly once through the [on_superseded] callback; the
    failover harness then demotes it (detach, truncate the journal to
    {!Source.acked_prefix}, re-attach as a {!Replica} at the new
    term). The evidence cannot be fabricated: both signal kinds are
    sealed under [K_r], and an authentic frame carrying term [T]
    proves [T] was genuinely minted by an honest promotion. It cannot
    be replayed either: a [Repl_stale] is acted on only when its
    [stale_term] equals the receiving source's {e current} term, so a
    notice recorded against an earlier incarnation is counted as
    replayed and dropped. A forged "you are stale" therefore never
    demotes a live primary. *)

type counters = {
  mutable records_shipped : int;
  mutable records_acked : int;
  mutable snapshots_shipped : int;
  mutable heartbeats_shipped : int;
  mutable gap_fetches : int;
  mutable rejected_forged : int;
  mutable rejected_replayed : int;
  mutable rejected_stale : int;
  mutable stale_notices : int;
  mutable stale_sourcing_stopped : int;
  mutable demotions : int;
  mutable warm_promotions : int;
  mutable cold_promotions : int;
  mutable lag_snapshots : int;
      (** Full-image snapshots forced by the source's per-backup lag
          budget (not by journal compaction or term openings). *)
}
(** Shared mutable counters: the failover harness passes one instance
    to the source and every replica (and bumps the promotion fields
    itself), so a run's replication activity aggregates in one
    place. *)

val fresh_counters : unit -> counters

val snapshot_counters : counters -> Netsim.Stats.replication
(** Freeze into the immutable report record. *)

module Source : sig
  type t

  val create :
    self:Types.agent ->
    backups:Types.agent list ->
    term:int ->
    key:Sym_crypto.Key.t ->
    rng:Prng.Splitmix.t ->
    send:(Wire.Frame.t -> unit) ->
    journal:Journal.t ->
    ?on_superseded:(term:int -> primary:Types.agent -> unit) ->
    ?counters:counters ->
    ?lag_budget:int ->
    unit ->
    t
  (** Attach a replication source to [journal]: subscribes to its
      mutation hook and immediately ships the journal's current image
      to every backup as the term's sequence-0 snapshot. [send] puts a
      frame on the wire (the harness posts it into the simulated
      network). A promoted backup mints a strictly higher term, unique
      per promotion (see {!Failover}). [on_superseded] fires at most
      once, when authentic evidence of a strictly higher term arrives
      — the harness's cue to demote this source.

      [lag_budget] bounds the re-send op log under a lagging backup:
      once some backup trails the frontier by more than [lag_budget]
      records {e and} the op log has grown past it since the last
      image, the source escalates to a fresh full-image snapshot
      (emptying the op log and counting [lag_snapshots]) instead of
      accumulating per-op state for the laggard. Without it the op
      log between journal compactions grows with the partition
      length. *)

  val detach : t -> unit
  (** Unsubscribe from the journal (crash or demotion). *)

  val ship_queue_image : t -> file:string -> string -> unit
  (** Ship a delivery-queue durable image (see {!Delivery.set_ship}) to
      every backup as a [Repl_queue] op at the next stream sequence.
      The source remembers the latest image per file and re-ships it
      whenever journal compaction empties the op log, so the resend
      window always covers every offline member's backlog. *)

  val ship_suspicion : t -> string -> unit
(** Ship a sentinel suspicion snapshot (see {!Sentinel.set_ship}) to
      every backup as a [Repl_suspicion] op at the next stream
      sequence. The source remembers the latest snapshot and re-ships
      it after journal compaction, so a promoted successor always sees
      the most recent containment state — a suspect cannot launder its
      record by crashing the leader. *)

  val heartbeat : t -> unit
  (** Ship a liveness heartbeat carrying the current sequence frontier
      to every backup — lets an idle-period backup detect both primary
      death (silence) and lost appends (frontier gap). *)

  val handle_frame : t -> Wire.Frame.t -> unit
  (** Process a backup's [Repl_ack] or [Repl_fetch] (a fetch re-sends
      from the requested sequence, or from the image snapshot when the
      request predates the compaction floor, to that backup only) — or
      a [Repl_stale] demotion signal, which triggers [on_superseded]
      iff it opens under [K_r], names this source, binds this source's
      {e current} term as [stale_term], and carries a strictly newer
      superseding term. Anything else is counted as forged or
      replayed and dropped. *)

  val handle_peer_record : t -> Wire.Frame.t -> unit
  (** A [Repl_record] delivered to a manager that is itself sourcing:
      a lower term draws a [Repl_stale] notice back at the zombie
      sender (and counts [rejected_stale]); an authentic strictly
      higher term triggers [on_superseded] — we are the zombie. *)

  val term : t -> int

  val superseded : t -> bool
  (** True once authentic higher-term evidence has arrived (the
      [on_superseded] callback has fired). *)

  val acked : t -> Types.agent -> int
  (** Highest cumulative ack received from a backup this term. *)

  val acked_prefix : t -> int
  (** Byte length of the longest journal prefix some backup
      acknowledged under this term — what a demoting source keeps when
      discarding its divergent suffix. When the best ack predates the
      last compaction the cut lands at the image boundary (acked
      records live inside the folded image; never below one). 0 when
      nothing was ever acked this term. *)

  val lag : t -> (Types.agent * int) list
  (** Per-backup lag in records: frontier minus acked. *)

  val lag_snapshots : t -> int
  (** Snapshot escalations forced by [lag_budget] so far (reads the
      shared counter). *)

  val stats : t -> Netsim.Stats.replication
end

module Replica : sig
  type t

  val default_file : string
  (** ["journal_replica"]. *)

  val create :
    self:Types.agent ->
    primary:Types.agent ->
    key:Sym_crypto.Key.t ->
    rng:Prng.Splitmix.t ->
    ?disk:Store.Backend.t ->
    ?file:string ->
    ?term:int ->
    ?counters:counters ->
    unit ->
    t
  (** An empty replica expecting [primary]'s stream. With [disk],
      every applied op is persisted through the backend before the ack
      leaves: appends as incremental [pwrite]+[fsync], images as the
      stage/fsync/rename pattern. The replica follows term adoptions
      automatically, so [primary] is only the initial expectation.
      [term] (default 0) is the floor below which streams are rejected
      as stale — a freshly demoted manager seeds it with the term that
      demoted it, so replays of its own dead stream cannot re-adopt. *)

  val handle_frame : t -> Wire.Frame.t -> Wire.Frame.t list
  (** Apply one [Repl_record] frame; returns the ack/fetch frames to
      send back. Forged and replayed frames return [] (or a re-ack)
      and leave the replica bytes untouched; a stale-term record
      additionally draws a [Repl_stale] demotion signal back at its
      superseded sender. *)

  val contents : t -> string
  (** The replica bytes — what promotion hands to {!Journal.recover}. *)

  val queue_images : t -> (string * string) list
  (** Latest delivery-queue image per file (sorted by file name),
      mirrored from the primary's [Repl_queue] ops — what promotion
      hands to {!Delivery.of_images} so the successor keeps draining
      offline members' backlogs. *)

  val suspicion : t -> string option
  (** Latest sentinel suspicion snapshot mirrored from the primary's
      [Repl_suspicion] ops — what promotion hands to
      {!Sentinel.import} so the successor keeps quarantines. *)

  val primary : t -> Types.agent
  (** Whose stream the replica currently follows (updates on term
      adoption). *)

  val term : t -> int
  val expected : t -> int

  val take_activity : t -> bool
  (** True iff a liveness-proving frame arrived since the last call
      (reads destructively) — the promotion watchdog's input. *)

  val file : t -> string
  val eio_retries : t -> int
  val stats : t -> Netsim.Stats.replication
end
