(** Warm-standby journal replication — the authenticated channel that
    keeps every backup manager holding a near-live copy of the
    primary's durable journal, so failover can be {e warm}.

    The {!Source} runs on the primary: it subscribes to the journal's
    mutation hook ({!Journal.set_observer}) and ships each durable
    change — an appended record chunk or a full-image publish — to
    every backup as a sealed [Repl_record] frame carrying the
    primary's {e term} (incarnation counter) and a per-term sequence
    number. The {!Replica} runs on each backup: it applies frames
    strictly in order, persists the replica bytes through the backup's
    own {!Store.Backend}, acknowledges cumulatively, and requests a
    re-send when it detects a gap. Every term opens with a full-image
    snapshot at sequence 0, so one frame resynchronises a backup that
    just adopted a new primary, and journal compaction periodically
    replaces the image, which bounds the source's re-send log.

    {2 Trust argument}

    Frames are sealed under the shared manager key [K_r] with the
    frame header bound as AEAD associated data:

    - {b forged} frames (wrong key, spliced header, rewritten sender,
      recipient swapped to another backup) fail to open and are
      counted, never applied;
    - {b replayed} frames are inert — an in-order duplicate merely
      re-acknowledges, an old sequence or old heartbeat frontier is
      counted and dropped, and nothing moves the replica backwards;
    - {b stale-term} frames from a superseded primary are counted and
      dropped, so a dead incarnation's traffic cannot corrupt a
      replica that has already adopted the successor.

    Only frames that advance the replica (or prove a future frontier)
    register as primary liveness ({!Replica.take_activity}), so
    replayed heartbeats cannot indefinitely suppress the backup's
    promotion watchdog. *)

type counters = {
  mutable records_shipped : int;
  mutable records_acked : int;
  mutable snapshots_shipped : int;
  mutable heartbeats_shipped : int;
  mutable gap_fetches : int;
  mutable rejected_forged : int;
  mutable rejected_replayed : int;
  mutable rejected_stale : int;
  mutable warm_promotions : int;
  mutable cold_promotions : int;
}
(** Shared mutable counters: the failover harness passes one instance
    to the source and every replica (and bumps the promotion fields
    itself), so a run's replication activity aggregates in one
    place. *)

val fresh_counters : unit -> counters

val snapshot_counters : counters -> Netsim.Stats.replication
(** Freeze into the immutable report record. *)

module Source : sig
  type t

  val create :
    self:Types.agent ->
    backups:Types.agent list ->
    term:int ->
    key:Sym_crypto.Key.t ->
    rng:Prng.Splitmix.t ->
    send:(Wire.Frame.t -> unit) ->
    journal:Journal.t ->
    ?counters:counters ->
    unit ->
    t
  (** Attach a replication source to [journal]: subscribes to its
      mutation hook and immediately ships the journal's current image
      to every backup as the term's sequence-0 snapshot. [send] puts a
      frame on the wire (the harness posts it into the simulated
      network). A promoted backup creates its source with
      [term = predecessor's term + 1]. *)

  val detach : t -> unit
  (** Unsubscribe from the journal (crash or demotion). *)

  val heartbeat : t -> unit
  (** Ship a liveness heartbeat carrying the current sequence frontier
      to every backup — lets an idle-period backup detect both primary
      death (silence) and lost appends (frontier gap). *)

  val handle_frame : t -> Wire.Frame.t -> unit
  (** Process a backup's [Repl_ack] or [Repl_fetch]; a fetch re-sends
      from the requested sequence (or from the image snapshot when the
      request predates the compaction floor) to that backup only. *)

  val term : t -> int

  val acked : t -> Types.agent -> int
  (** Highest cumulative ack received from a backup this term. *)

  val lag : t -> (Types.agent * int) list
  (** Per-backup lag in records: frontier minus acked. *)

  val stats : t -> Netsim.Stats.replication
end

module Replica : sig
  type t

  val default_file : string
  (** ["journal_replica"]. *)

  val create :
    self:Types.agent ->
    primary:Types.agent ->
    key:Sym_crypto.Key.t ->
    rng:Prng.Splitmix.t ->
    ?disk:Store.Backend.t ->
    ?file:string ->
    ?counters:counters ->
    unit ->
    t
  (** An empty replica expecting [primary]'s stream. With [disk],
      every applied op is persisted through the backend before the ack
      leaves: appends as incremental [pwrite]+[fsync], images as the
      stage/fsync/rename pattern. The replica follows term adoptions
      automatically, so [primary] is only the initial expectation. *)

  val handle_frame : t -> Wire.Frame.t -> Wire.Frame.t list
  (** Apply one [Repl_record] frame; returns the ack/fetch frames to
      send back. Forged, replayed and stale-term frames return []
      (or a re-ack) and leave the replica bytes untouched. *)

  val contents : t -> string
  (** The replica bytes — what promotion hands to {!Journal.recover}. *)

  val primary : t -> Types.agent
  (** Whose stream the replica currently follows (updates on term
      adoption). *)

  val term : t -> int
  val expected : t -> int

  val take_activity : t -> bool
  (** True iff a liveness-proving frame arrived since the last call
      (reads destructively) — the promotion watchdog's input. *)

  val file : t -> string
  val eio_retries : t -> int
  val stats : t -> Netsim.Stats.replication
end
