(** Online intrusion sentinel: streaming per-peer evidence scores with
    time decay, injection-path attribution and a containment ladder.

    The paper's audit trail (§7) is offline; the sentinel moves the
    same signals — MAC failures, replays, stale rekeys, half-open
    handshake churn, pre-auth pressure — into the live leader. Each
    evidence event adds a weighted increment to the peer's score, and
    quiet time halves it every [half_life]; crossing a threshold
    ratchets the peer's containment level up (never down — a
    quarantined insider cannot talk its way back in by going quiet,
    only explicit operator re-admission via a fresh directory entry
    would).

    {b Attribution.} A frame's claimed sender is attacker-controlled;
    its injection path (see {!Netsim.Trace.via}) is vouched for by the
    transport. Evidence is therefore charged to the path first: a frame
    arriving over a peer's own socket scores that peer at full weight
    ("on-path"); a frame merely {e claiming} a peer while arriving
    elsewhere scores the claimed name only at the discounted
    [wire_discount] ("off-path"), with the full weight going to the
    actual path principal — the socket owner, or the {!wire_peer}
    pseudo-peer for raw wire injections. Off-path score alone — the
    only thing a key-less framer can manufacture — can never cross
    [Quarantined]: the {b corroboration gate} requires either enough
    on-path score to clear the quarantine threshold by itself or two
    independent on-path evidence classes, and clamps everything else at
    [Rate_limited]. A corroboration-blocked peer can additionally be
    {b challenged} (a sealed liveness notice only the genuine
    session-key holder can ack); a successful attestation wipes its
    off-path score, so a framed-but-honest member arrests its own
    escalation while an insider's on-path record is untouched.

    The ladder and what each rung means to the leader:
    - [Rate_limited] — pre-auth token refill cut to a quarter; the
      peer still operates normally once authenticated.
    - [Quarantined] — inbound frames dropped before protocol
      processing, session expelled with an emergency rekey (the
      suspect's key material retired group-wide), delivery queue
      purged instead of salvaged, pre-auth denied.
    - [Expelled] — permanent: survives leader failover via suspicion
      replication ({!export}/{!import} ride a [Repl_suspicion] op).

    Thresholds are calibrated against both the chaos suite and the
    intruder arms (see [enclaves_cli calibrate]): a clean member under
    10% link loss must never reach [Quarantined], and neither may an
    honest victim framed by a wire-level outsider. *)

type level = Clear | Rate_limited | Quarantined | Expelled

val level_rank : level -> int
(** [Clear]=0 … [Expelled]=3; the ladder ratchets toward higher ranks. *)

val level_name : level -> string

type evidence =
  | Mac_failure  (** A seal failed to open under the expected key. *)
  | Replay  (** Stale nonce / already-seen admin sequence. *)
  | Stale_rekey  (** Rekey ack or traffic under a retired epoch. *)
  | Half_open  (** A handshake the leader GC'd without completion. *)
  | Preauth_pressure  (** One unauthenticated handshake attempt. *)
  | Malformed  (** Undecodable or wrong-state frame. *)
  | Contained  (** Traffic from an already-quarantined peer. *)

val evidence_name : evidence -> string

type config = {
  half_life : Netsim.Vtime.t;  (** Quiet time that halves a score. *)
  rate_limit_at : float;
  quarantine_at : float;
  expel_at : float;
  w_mac_failure : float;
  w_replay : float;
  w_stale_rekey : float;
  w_half_open : float;
  w_preauth : float;
  w_malformed : float;
  w_contained : float;
  preauth_rate : float;  (** Token-bucket refill, tokens per second. *)
  preauth_burst : float;  (** Token-bucket capacity. *)
  half_open_cap : int;  (** Max concurrent half-open handshakes. *)
  attribution : bool;
      (** Master switch for path attribution, the corroboration gate
          and challenges. [false] reproduces the pre-attribution
          sentinel exactly (every frame scored at full weight against
          its claimed sender) — the calibration sweep's baseline. *)
  wire_discount : float;
      (** Weight multiplier for off-path evidence against a claimed
          sender, in [0,1]. *)
  corroborate_floor : float;
      (** Decayed on-path class score at or above which that class
          counts as "live" for the two-class corroboration rule. *)
  challenge_cooldown : Netsim.Vtime.t;
      (** Minimum spacing between liveness challenges to one peer. *)
}

val default_config : config

val wire_peer : string
(** The pseudo-peer charged at full weight for every [Via_wire] frame.
    Not a legal member name; once {e it} reaches [Quarantined] the
    driver drops raw wire injections at the leader's door. *)

type counters = {
  mutable observations : int;
  mutable rate_limits : int;
  mutable quarantines : int;
  mutable expulsions : int;
  mutable emergency_rekeys : int;
  mutable quarantined_dropped : int;
  mutable preauth_admitted : int;
  mutable preauth_throttled : int;
  mutable preauth_capped : int;
  mutable preauth_queue_dropped : int;
  mutable queues_purged : int;
  mutable suspicion_shipped : int;
  mutable suspicion_imported : int;
  mutable wire_observations : int;
  mutable off_path_observations : int;
  mutable framing_holds : int;
  mutable challenges_issued : int;
  mutable attestations : int;
}

val fresh_counters : unit -> counters

val to_stats : counters -> Netsim.Stats.sentinel
(** [injections_blocked] is driver-side and reported as 0 here; the
    driver overlays its own count. *)

type t

val create : ?config:config -> ?clock:(unit -> Netsim.Vtime.t) -> unit -> t
(** [clock] feeds decay and token refill; the driver passes the
    simulator clock. The default constant-zero clock makes the
    sentinel a pure accumulator (no decay, no refill) — convenient for
    direct unit tests. *)

val config : t -> config
val counters : t -> counters

val observe : t -> peer:string -> evidence -> level
(** Score one on-path evidence event against [peer] and return the
    peer's (possibly escalated) level. Equivalent to {!observe_via}
    with [~via:(Via_socket peer)] — the caller asserts the frame
    arrived over [peer]'s own connection. Escalations ship a suspicion
    snapshot through the {!set_ship} hook. *)

val observe_via :
  t -> claimed:string -> via:Netsim.Trace.via -> evidence -> level
(** Score one evidence event for a frame claiming [claimed] that
    arrived over [via], splitting the weight per the attribution rules
    above, and return [claimed]'s (possibly escalated) level. With
    [attribution = false] this degrades to full weight against
    [claimed] regardless of path. *)

val score : t -> string -> float
(** The peer's total score (on-path + off-path) decayed to now; 0 for
    unknown peers. *)

val level : t -> string -> level

val peers : t -> string list
(** Every peer the sentinel holds state for (including [Clear] ones
    and {!wire_peer} if charged), sorted by name. *)

val suspects : t -> (string * level) list
(** Every peer above [Clear], sorted by name. *)

val contained : t -> string list
(** Peers at [Quarantined] or above — the set the leader must not
    serve, sorted by name. *)

val challenge_due : t -> string -> bool
(** Whether the leader should issue a liveness challenge to this peer
    now: its raw score sits at [Quarantined] or above but the
    corroboration gate is holding it down, no challenge is
    outstanding, and the per-peer cooldown has passed. Always [false]
    with [attribution = false]. *)

val note_challenged : t -> string -> unit
(** Record that the leader issued a liveness challenge to this peer;
    opens the outstanding-challenge window {!note_attested} closes. *)

val note_attested : t -> string -> bool
(** The peer answered an outstanding challenge under its live session
    key: wipe its off-path score (its own on-path record is kept) and
    return [true]. [false] — and no relief — when no challenge was
    outstanding, so unsolicited acks prove nothing. *)

type verdict = Admit | Throttled | Capped | Denied_quarantined

val verdict_name : verdict -> string

val admit_preauth :
  t ->
  ?via:Netsim.Trace.via ->
  peer:string ->
  known:bool ->
  resuming:bool ->
  half_open:int ->
  unit ->
  verdict
(** Admission check for one unauthenticated handshake frame claiming
    identity [peer]. [known] is whether the name is in the directory —
    known names each get their own token bucket, unknown names share
    one (so a fake-name flood starves itself, not real users).
    [resuming] (the peer already has a half-open handshake in
    progress) bypasses the bucket and cap: retransmissions of a
    legitimate join must not be throttled into that join's own
    failure. [half_open] is the leader's current half-open count for
    the cap. Every call scores [Preauth_pressure] evidence, so a flood
    of individually valid frames still escalates.

    When [via] is given (and attribution is on) the token bucket is
    charged to the {e path principal} — the socket owner, or
    {!wire_peer} for wire injections — so a flood under a victim's
    name drains the flooder's budget, never the victim's; admission is
    denied if either the claimed name or the path principal is
    quarantined. Omitting [via] preserves the claimed-name behavior. *)

val note_quarantined_drop : t -> ?via:Netsim.Trace.via -> string -> unit
(** Record an inbound frame dropped because the named peer is
    quarantined; also scores [Contained] evidence (attributed per
    [via], claimed-sender by default) so a persistent attacker
    escalates to [Expelled]. *)

val note_emergency_rekey : t -> unit
val note_queue_purged : t -> unit

val note_queue_dropped : t -> unit
(** A pre-auth frame lost to the bounded service queue's tail. *)

val set_ship : t -> (string -> unit) -> unit
(** Hook fired with {!export}'s blob on every level escalation; the
    failover plane wires it to [Replication.Source.ship_suspicion]. *)

val export : t -> string
(** Deterministic ["suspicion/2"] snapshot (peers sorted, scores
    bit-exact) of every peer's per-class on-path scores, off-path
    score, level and last-update time. *)

val import : t -> string -> int
(** Merge a snapshot: both sides' score slots are decayed to the later
    timestamp and joined slot-wise by max, and levels ratchet to the
    higher of local and imported — a join-semilattice merge, so
    replicated suspicion converges under any delivery order. v1 lines
    (aggregate-score snapshots from pre-attribution leaders) fold into
    the off-path slot: they ratchet levels and keep scores warm but
    never manufacture corroboration. Malformed lines are ignored.
    Returns the number of peers whose level escalated. Used at
    failover promotion so the successor keeps quarantines. *)

val pp_suspects : Format.formatter -> t -> unit
