(** Online intrusion sentinel: streaming per-peer evidence scores with
    time decay and a containment ladder.

    The paper's audit trail (§7) is offline; the sentinel moves the
    same signals — MAC failures, replays, stale rekeys, half-open
    handshake churn, pre-auth pressure — into the live leader. Each
    evidence event adds a weighted increment to the peer's score, and
    quiet time halves it every [half_life]; crossing a threshold
    ratchets the peer's containment level up (never down — a
    quarantined insider cannot talk its way back in by going quiet,
    only explicit operator re-admission via a fresh directory entry
    would).

    The ladder and what each rung means to the leader:
    - [Rate_limited] — pre-auth token refill cut to a quarter; the
      peer still operates normally once authenticated.
    - [Quarantined] — inbound frames dropped before protocol
      processing, session expelled with an emergency rekey (the
      suspect's key material retired group-wide), delivery queue
      purged instead of salvaged, pre-auth denied.
    - [Expelled] — permanent: survives leader failover via suspicion
      replication ({!export}/{!import} ride a [Repl_suspicion] op).

    Thresholds are calibrated against the chaos suite: a clean member
    under 10% link loss and latency spikes (duplicate handshake legs,
    the occasional stale nonce) must never reach [Quarantined]. *)

type level = Clear | Rate_limited | Quarantined | Expelled

val level_rank : level -> int
(** [Clear]=0 … [Expelled]=3; the ladder ratchets toward higher ranks. *)

val level_name : level -> string

type evidence =
  | Mac_failure  (** A seal failed to open under the expected key. *)
  | Replay  (** Stale nonce / already-seen admin sequence. *)
  | Stale_rekey  (** Rekey ack or traffic under a retired epoch. *)
  | Half_open  (** A handshake the leader GC'd without completion. *)
  | Preauth_pressure  (** One unauthenticated handshake attempt. *)
  | Malformed  (** Undecodable or wrong-state frame. *)
  | Contained  (** Traffic from an already-quarantined peer. *)

val evidence_name : evidence -> string

type config = {
  half_life : Netsim.Vtime.t;  (** Quiet time that halves a score. *)
  rate_limit_at : float;
  quarantine_at : float;
  expel_at : float;
  w_mac_failure : float;
  w_replay : float;
  w_stale_rekey : float;
  w_half_open : float;
  w_preauth : float;
  w_malformed : float;
  w_contained : float;
  preauth_rate : float;  (** Token-bucket refill, tokens per second. *)
  preauth_burst : float;  (** Token-bucket capacity. *)
  half_open_cap : int;  (** Max concurrent half-open handshakes. *)
}

val default_config : config

type counters = {
  mutable observations : int;
  mutable rate_limits : int;
  mutable quarantines : int;
  mutable expulsions : int;
  mutable emergency_rekeys : int;
  mutable quarantined_dropped : int;
  mutable preauth_admitted : int;
  mutable preauth_throttled : int;
  mutable preauth_capped : int;
  mutable preauth_queue_dropped : int;
  mutable queues_purged : int;
  mutable suspicion_shipped : int;
  mutable suspicion_imported : int;
}

val fresh_counters : unit -> counters
val to_stats : counters -> Netsim.Stats.sentinel

type t

val create : ?config:config -> ?clock:(unit -> Netsim.Vtime.t) -> unit -> t
(** [clock] feeds decay and token refill; the driver passes the
    simulator clock. The default constant-zero clock makes the
    sentinel a pure accumulator (no decay, no refill) — convenient for
    direct unit tests. *)

val config : t -> config
val counters : t -> counters

val observe : t -> peer:string -> evidence -> level
(** Score one evidence event against [peer] and return the peer's
    (possibly escalated) level. Escalations ship a suspicion snapshot
    through the {!set_ship} hook. *)

val score : t -> string -> float
(** The peer's score decayed to now; 0 for unknown peers. *)

val level : t -> string -> level

val suspects : t -> (string * level) list
(** Every peer above [Clear], sorted by name. *)

val contained : t -> string list
(** Peers at [Quarantined] or above — the set the leader must not
    serve, sorted by name. *)

type verdict = Admit | Throttled | Capped | Denied_quarantined

val verdict_name : verdict -> string

val admit_preauth :
  t -> peer:string -> known:bool -> resuming:bool -> half_open:int -> verdict
(** Admission check for one unauthenticated handshake frame claiming
    identity [peer]. [known] is whether the name is in the directory —
    known names each get their own token bucket, unknown names share
    one (so a fake-name flood starves itself, not real users).
    [resuming] (the peer already has a half-open handshake in
    progress) bypasses the bucket and cap: retransmissions of a
    legitimate join must not be throttled into that join's own
    failure. [half_open] is the leader's current half-open count for
    the cap. Every call scores [Preauth_pressure] evidence, so a flood
    of individually valid frames still escalates. *)

val note_quarantined_drop : t -> peer:string -> unit
(** Record an inbound frame dropped because [peer] is quarantined;
    also scores [Contained] evidence so a persistent attacker
    escalates to [Expelled]. *)

val note_emergency_rekey : t -> unit
val note_queue_purged : t -> unit

val note_queue_dropped : t -> unit
(** A pre-auth frame lost to the bounded service queue's tail. *)

val set_ship : t -> (string -> unit) -> unit
(** Hook fired with {!export}'s blob on every level escalation; the
    failover plane wires it to [Replication.Source.ship_suspicion]. *)

val export : t -> string
(** Deterministic snapshot (peers sorted, scores bit-exact) of every
    peer's score, level and last-update time. *)

val import : t -> string -> int
(** Merge a snapshot: levels ratchet to the higher of local and
    imported, scores take the larger decayed value, malformed lines
    are ignored. Returns the number of peers whose level escalated.
    Used at failover promotion so the successor keeps quarantines. *)

val pp_suspects : Format.formatter -> t -> unit
