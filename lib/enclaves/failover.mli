(** Multi-manager groups — the paper's §7 future work, implemented.

    "The main limit of the current Enclaves architecture is its
    reliance on a central group leader. In future work, we intend to
    develop a more robust and scalable version of the system where the
    single leader is replaced by a distributed set of group managers."

    This module provides that replacement in the simplest shape that
    preserves the §3.2 security argument: a {e fixed succession} of
    group managers M0, M1, … — every prospective member shares its
    long-term key with all of them (the same assumption the paper
    makes for one leader). At any time exactly one manager is
    {e primary} and runs the ordinary improved-protocol leader; the
    others are passive successors.

    Failure handling is fail-stop (a crashed manager stops sending; it
    is not Byzantine — a malicious {e manager} is outside the paper's
    trust model, which requires the leader to be trustworthy):

    - the primary announces liveness by a periodic [Notice "hb"] over
      each member's nonce-chained admin channel, so heartbeats are
      authenticated and replay-protected like any admin message;
    - each member tracks the virtual time of the last accepted admin
      message; when silence exceeds [failure_timeout] the member first
      treats the manager as merely {e slow}: it re-arms the window up
      to [retry_budget] times, retransmitting its stored [AuthInitReq]
      if the handshake is still pending. Only when the budget is
      exhausted does it declare the manager {e dead}, abandon the
      session locally and re-run the §3.2 handshake with the next
      non-crashed manager after its current target in the succession
      (so a live-but-partitioned primary is skipped, not retried
      forever);
    - managers run the same [check_period] scan on their side:
      outstanding [AuthKeyDist]/[AdminMsg] frames whose nonce survives
      a scan unchanged are re-sent; handshakes half-open for more
      than twice [failure_timeout] are garbage-collected, and a member
      that never acks an [AdminMsg] for that long is presumed dead and
      expelled — freeing its session so a re-handshake after a healed
      partition is accepted;
    - a member connected to a manager other than the current primary
      fails {e back} to the primary after [failback_after] of
      stability, so partitions heal into a single group under the
      preferred manager rather than leaving the group split.

    {2 Warm standby}

    On top of the cold member-driven failover, managers run an
    {e authenticated journal-replication channel} ({!Replication}):
    the primary journals its trust-critical state through its own
    simulated disk and ships every durable change to each backup as a
    sealed, term- and sequence-tagged frame; backups persist the
    replica through their own store backend and watch the channel for
    silence. When the primary dies, the first backup in succession
    promotes itself (thresholds are staggered by succession position,
    so at most one backup promotes per failure): it replays its
    replica exactly like a locally surviving journal and, if the
    recovered prefix holds sessions, runs {!Leader.recover} — every
    member gets a [RecoveryChallenge] under its journalled [K_a],
    answers it, and {e redirects to the successor keeping its session
    key, group key and view} (the warm path; members' cold failover
    never fires because the challenge lands well inside their patience
    budget). Only when the replica is unusable — or a member's
    challenge goes unanswered past the garbage-collection deadline —
    does that member fall back to the cold re-join path above. Each
    manager also persists a durable {e epoch vault}
    ({!Store.Vault}), so a cold promotion (or cold restart) beacons an
    epoch at least as new as any member's even if the journal tail
    lost the last bump.

    {2 Demotion and reconciliation}

    A partition can leave {e two} sources alive: the promoted
    successor at the new term and the old primary still shipping its
    dead term on the far side. The stale stream always loses (backups
    reject stale terms), but without demotion the zombie would source
    forever. Reconciliation is term-based: every replication frame a
    zombie's traffic draws back — a sealed [Repl_stale] notice bound
    to its current term, or the successor's own higher-term stream
    arriving once the partition heals — is {e authentic} evidence that
    a strictly higher term was legitimately minted (only [K_r] holders
    mint frames, and honest managers mint unique terms by
    generation-and-rank encoding, see below). On that evidence the old
    primary stops sourcing, truncates its journal back to the longest
    prefix some backup acknowledged under the common term (discarding
    the divergent suffix of partition-side expulsions and epoch
    bumps), and re-attaches to the live source as an empty
    {e catching-up} backup whose promotion watchdog stays quiet until
    the new term's opening snapshot lands. Members never notice: the
    group follows the highest live term throughout, so the heal costs
    zero member re-handshakes. A forged "you are stale" cannot demote
    a live primary (no [K_r], no seal), and a replayed one is bound to
    a dead [stale_term] and dropped.

    Promotion terms are {e generation-encoded} — [g*n + (n-1-idx)] for
    generation [g] of [n] managers — so two successors promoting
    concurrently across a partition mint distinct terms and the
    earlier-ranked manager wins the generation tie; the naive
    [term + 1] this replaces could collide exactly there.

    Security is inherited rather than re-proven: every (member,
    manager) pair runs exactly the verified two-party protocol; the
    replication channel adds no new member-facing authority because
    managers are inside the paper's trust boundary (the leader is
    trusted), and possession of the replicated [K_a] is exactly the
    warm-restart credential {!Leader.recover} already demands. A
    member accepts a challenge only under its own live session key,
    sealed by the sender bound into the AEAD associated data — forged,
    replayed or stale-term replication traffic is counted and dropped
    without moving any replica (see {!Replication}).

    The whole mechanism lives above {!Member}/{!Leader}: managers are
    ordinary leaders, members are ordinary members plus a timeout
    policy driven by the simulation clock. *)

type t

type config = {
  heartbeat_period : Netsim.Vtime.t;  (** Primary's admin heartbeat. *)
  failure_timeout : Netsim.Vtime.t;
      (** Silence after which a member suspects its manager. Must
          comfortably exceed [heartbeat_period] plus round-trip
          jitter. *)
  check_period : Netsim.Vtime.t;
      (** How often members check, and how often managers scan for
          outstanding frames to retransmit. *)
  retry_budget : int;
      (** Silent windows a member tolerates (probing its stalled
          handshake each time) before declaring the manager dead —
          the "slow vs dead" distinction: total patience is
          [(retry_budget + 1) × failure_timeout]. *)
  failback_after : Netsim.Vtime.t;
      (** How long a member stays connected to a non-preferred manager
          before drifting back to the current primary, so a healed
          partition reconverges to one group instead of staying
          split. *)
  repl_heartbeat_period : Netsim.Vtime.t;
      (** How often the primary ships a replication heartbeat to every
          backup — the backups' liveness signal during journal-quiet
          periods. *)
  warm_failover : bool;
      (** When [false], a promoting backup always takes the cold path
          (fresh group, full re-handshakes) even if its replica is
          usable — the experimental baseline warm failover is measured
          against. *)
}

val default_config : config
(** 300 ms heartbeat, 1 s timeout, 200 ms check period, 2 retries,
    1.5 s fail-back, 300 ms replication heartbeat, warm failover
    on. *)

val create :
  ?seed:int64 ->
  ?config:config ->
  ?delivery:Delivery.policy ->
  ?intrusion:Sentinel.config ->
  managers:Types.agent list ->
  directory:(Types.agent * string) list ->
  unit ->
  t
(** [create ~managers ~directory ()] builds the simulation: every
    manager runs a {!Leader} over the shared [directory]; members are
    created but not joined. With [delivery], the primary runs a
    store-and-forward {!Delivery} layer on its own disk whose durable
    queue mutations are shipped to every backup as [Repl_queue] ops;
    a promoted successor rebuilds the layer from its replicated images
    and keeps draining offline members' backlogs without member
    re-handshakes. With [intrusion], every manager runs its own
    {!Sentinel} on the shared simulation clock: the primary's instance
    feeds on its leader's rejection stream and ships suspicion
    snapshots to the backups as [Repl_suspicion] ops; a promoting
    backup merges the replicated snapshot into its own sentinel before
    serving anyone, so quarantines survive the failover.
    @raise Invalid_argument if [managers] is empty. *)

val sim : t -> Netsim.Sim.t
val net : t -> Netsim.Network.t

val start : t -> unit
(** Join every member to the current primary and start heartbeats and
    failure detection. *)

val join : t -> Types.agent -> unit
(** Join one member to the current primary. *)

val send_app : t -> Types.agent -> string -> unit

val expel : t -> Types.agent -> unit
(** Evict a member as silent on the current primary. With a delivery
    policy installed, its unacknowledged traffic is salvaged into the
    durable store-and-forward queue (and replicated to the backups);
    the member's own failure detector later re-joins it, draining the
    backlog. No-op when no manager is up. *)

val rekey : t -> unit
(** Rotate the group key on the current primary — ages any queued
    store-and-forward records against the epoch-window policy. No-op
    when no manager is up. *)

val crash_primary : t -> unit
(** Fail-stop the current primary: it is detached from the network and
    its heartbeats (admin and replication) cease. The first surviving
    backup's promotion watchdog will fire; members follow it warm via
    recovery challenges, or cold via their own failure detector. No-op
    when every manager is already down. *)

val crash_primary_at : t -> Netsim.Vtime.t -> unit
(** Schedule {!crash_primary} at an absolute virtual time — the chaos
    CLI's [--kill-primary-at] hook. *)

val primary : t -> Types.agent option
(** The manager currently sourcing the replication stream at the
    highest term; during the window between a crash and the
    successor's promotion, the first non-crashed manager in the
    succession; [None] when every manager is down (previously this
    silently reported the first manager's corpse). A partitioned old
    primary still sourcing a dead term loses the term comparison, so
    members fail back to the live group, never to a zombie. *)

type role =
  | Primary of { term : int }  (** Sourcing the stream at [term]. *)
  | Backup of { term : int; catching_up : bool }
      (** Following the stream; [catching_up] while a freshly demoted
          manager awaits the live term's opening snapshot (it is not
          promotable until then). *)
  | Down

val role : t -> Types.agent -> role
(** The replication-plane role of a manager.
    @raise Not_found for an unknown manager name. *)

val demotions : t -> int
(** Sources that received authentic higher-term evidence, stood down,
    truncated their journal to the acked prefix and rejoined as a
    catching-up backup. *)

val replica_bytes : t -> Types.agent -> string option
(** A backup's current replica bytes ([None] for a source/crashed
    manager) — what the heal tests compare against the live source's
    journal. *)

val journal_bytes : t -> Types.agent -> string option
(** A source's current journal bytes ([None] for a backup). *)

val sentinel : t -> Types.agent -> Sentinel.t option
(** A manager's intrusion sentinel, when [intrusion] was given at
    {!create}. One instance per manager, surviving its promotions and
    demotions.
    @raise Not_found for an unknown manager name. *)

val replica_suspicion : t -> Types.agent -> string option
(** The latest suspicion snapshot a backup mirrored from the primary's
    stream ([None] for a source, a crashed manager, or before the
    first escalation) — what a promotion merges via {!Sentinel.import}.
    @raise Not_found for an unknown manager name. *)

val manager_of : t -> Types.agent -> Types.agent option
(** Which manager a member is currently connected to (after its last
    completed handshake), if any. *)

val member : t -> Types.agent -> Member.t
val leader : t -> Types.agent -> Leader.t
(** The leader automaton of a given manager. *)

val run : ?until:Netsim.Vtime.t -> t -> int

val connected_members : t -> Types.agent list
(** Members currently in session with a live manager (sorted). *)

val failovers : t -> int
(** Total member failover events so far. *)

val failbacks : t -> int
(** Members that returned to the preferred primary after riding out a
    partition on a successor. *)

val replication_stats : t -> Netsim.Stats.replication
(** The run's aggregated replication counters: records and snapshots
    shipped, acks, gap fetches, rejected forged/replayed/stale frames,
    and warm vs cold promotions. *)

val delivery_stats : t -> Netsim.Stats.delivery
(** The live primary's store-and-forward counters (each promotion's
    rebuilt layer starts fresh) plus the members' cumulative dedup
    counts, which survive promotions because the delivery floor lives
    at the member. All zeros when no delivery policy was given. *)

val replica_queue_images : t -> Types.agent -> (string * string) list
(** A backup's mirrored delivery-queue images (empty for a source or a
    manager without a replica) — what a promotion would rebuild the
    successor's delivery layer from.
    @raise Not_found for an unknown manager name. *)

val replication_lag : t -> (Types.agent * int) list
(** Per-backup lag in records (current source's frontier minus that
    backup's cumulative ack); empty when no source is live. *)

val replication_silence : t -> (Types.agent * Netsim.Vtime.t) list
(** Per-backup virtual time since the last liveness-proving
    replication frame — the promotion watchdog's view of lag. *)

val stop : t -> unit
(** Cancel all heartbeat, detector and scan timers so the event queue
    can drain; existing sessions keep working, single-shot. *)
