(** Multi-manager groups — the paper's §7 future work, implemented.

    "The main limit of the current Enclaves architecture is its
    reliance on a central group leader. In future work, we intend to
    develop a more robust and scalable version of the system where the
    single leader is replaced by a distributed set of group managers."

    This module provides that replacement in the simplest shape that
    preserves the §3.2 security argument: a {e fixed succession} of
    group managers M0, M1, … — every prospective member shares its
    long-term key with all of them (the same assumption the paper
    makes for one leader). At any time exactly one manager is
    {e primary} and runs the ordinary improved-protocol leader; the
    others are passive successors.

    Failure handling is fail-stop (a crashed manager stops sending; it
    is not Byzantine — a malicious {e manager} is outside the paper's
    trust model, which requires the leader to be trustworthy):

    - the primary announces liveness by a periodic [Notice "hb"] over
      each member's nonce-chained admin channel, so heartbeats are
      authenticated and replay-protected like any admin message;
    - each member tracks the virtual time of the last accepted admin
      message; when it exceeds [failure_timeout], the member abandons
      the session locally and re-runs the §3.2 authentication
      handshake with the next manager in the succession;
    - the new primary builds a fresh group (fresh session keys, fresh
      group-key epoch), so no state of the dead manager is trusted.

    Security is inherited rather than re-proven: every (member,
    manager) pair runs exactly the verified two-party protocol, and a
    failover is indistinguishable from "leave, then join elsewhere" —
    a sequence already covered by the model (§5's guarantees are per
    session). Availability, of course, is only as good as the failure
    detector: a partitioned member rejoins the successor while the old
    primary may still serve others; members of the same partition
    reconverge because the succession order is fixed and deterministic.

    The whole mechanism lives above {!Member}/{!Leader}: managers are
    ordinary leaders, members are ordinary members plus a timeout
    policy driven by the simulation clock. *)

type t

type config = {
  heartbeat_period : Netsim.Vtime.t;  (** Primary's admin heartbeat. *)
  failure_timeout : Netsim.Vtime.t;
      (** Silence after which a member fails over. Must comfortably
          exceed [heartbeat_period] plus round-trip jitter. *)
  check_period : Netsim.Vtime.t;  (** How often members check. *)
}

val default_config : config
(** 300 ms heartbeat, 1 s timeout, 200 ms check period. *)

val create :
  ?seed:int64 ->
  ?config:config ->
  managers:Types.agent list ->
  directory:(Types.agent * string) list ->
  unit ->
  t
(** [create ~managers ~directory ()] builds the simulation: every
    manager runs a {!Leader} over the shared [directory]; members are
    created but not joined.
    @raise Invalid_argument if [managers] is empty. *)

val sim : t -> Netsim.Sim.t
val net : t -> Netsim.Network.t

val start : t -> unit
(** Join every member to the current primary and start heartbeats and
    failure detection. *)

val join : t -> Types.agent -> unit
(** Join one member to the current primary. *)

val send_app : t -> Types.agent -> string -> unit

val crash_primary : t -> unit
(** Fail-stop the current primary: it is detached from the network and
    its heartbeats cease. Members will fail over to the successor. *)

val primary : t -> Types.agent
(** The manager members currently target. *)

val manager_of : t -> Types.agent -> Types.agent option
(** Which manager a member is currently connected to (after its last
    completed handshake), if any. *)

val member : t -> Types.agent -> Member.t
val leader : t -> Types.agent -> Leader.t
(** The leader automaton of a given manager. *)

val run : ?until:Netsim.Vtime.t -> t -> int

val connected_members : t -> Types.agent list
(** Members currently in session with a live manager (sorted). *)

val failovers : t -> int
(** Total member failover events so far. *)
