module F = Wire.Frame

let send_frames net ~src frames =
  List.iter
    (fun (frame : F.t) ->
      Netsim.Network.send net ~src ~dst:frame.F.recipient (F.encode frame))
    frames

module Improved = struct
  type t = {
    sim : Netsim.Sim.t;
    net : Netsim.Network.t;
    leader : Leader.t;
    members : (Types.agent, Member.t) Hashtbl.t;
  }

  let attach_leader t =
    Netsim.Network.register t.net (Leader.self t.leader) (fun bytes ->
        let replies = Leader.receive t.leader bytes in
        send_frames t.net ~src:(Leader.self t.leader) replies)

  let attach_member t m =
    Netsim.Network.register t.net (Member.self m) (fun bytes ->
        let replies = Member.receive m bytes in
        send_frames t.net ~src:(Member.self m) replies)

  let create ?(seed = 42L) ?latency_us ?policy ~leader ~directory () =
    let sim = Netsim.Sim.create ~seed () in
    let net = Netsim.Network.create ~sim ?latency_us () in
    let rng = Netsim.Sim.rng sim in
    let l = Leader.create ~self:leader ~rng ~directory ?policy () in
    let members = Hashtbl.create 8 in
    let t = { sim; net; leader = l; members } in
    attach_leader t;
    List.iter
      (fun (name, password) ->
        let m = Member.create ~self:name ~leader ~password ~rng in
        Hashtbl.replace members name m;
        attach_member t m)
      directory;
    t

  let sim t = t.sim
  let net t = t.net
  let leader t = t.leader

  let member t who =
    match Hashtbl.find_opt t.members who with
    | Some m -> m
    | None -> raise Not_found

  let join t who =
    let m = member t who in
    send_frames t.net ~src:who (Member.join m)

  let leave t who =
    let m = member t who in
    send_frames t.net ~src:who (Member.leave m)

  let send_app t who body =
    let m = member t who in
    send_frames t.net ~src:who (Member.send_app m body)

  let dispatch_leader t frames =
    send_frames t.net ~src:(Leader.self t.leader) frames

  let rekey t = dispatch_leader t (Leader.rekey t.leader)
  let expel t who = dispatch_leader t (Leader.expel t.leader who)

  let start_periodic_rekey t ~period ?until () =
    Netsim.Sim.every t.sim ~period ?until (fun () -> rekey t)

  let run ?until t = Netsim.Sim.run ?until t.sim

  let prefix_ok t who =
    (* §5.4 is a per-session property: [snd_A] is reset when the leader
       closes the session, so the comparison is only meaningful while
       the leader still runs a session for [who]. An expelled member
       keeps its old [rcv_A] but the session it belonged to is gone. *)
    match Leader.session t.leader who with
    | Leader.Not_connected | Leader.Waiting_for_key_ack _ -> true
    | Leader.Connected _ | Leader.Waiting_for_ack _ ->
        let m = member t who in
        let rcv = Member.accepted_admin m in
        let snd = Leader.sent_admin t.leader who in
        let rec is_prefix xs ys =
          match (xs, ys) with
          | [], _ -> true
          | _, [] -> false
          | x :: xs', y :: ys' -> Wire.Admin.equal x y && is_prefix xs' ys'
        in
        is_prefix rcv snd

  let all_prefix_ok t =
    Hashtbl.fold (fun who _ acc -> acc && prefix_ok t who) t.members true
end

module Legacy = struct
  type t = {
    sim : Netsim.Sim.t;
    net : Netsim.Network.t;
    leader : Legacy_leader.t;
    members : (Types.agent, Legacy_member.t) Hashtbl.t;
  }

  let create ?(seed = 42L) ?latency_us ?policy ~leader ~directory () =
    let sim = Netsim.Sim.create ~seed () in
    let net = Netsim.Network.create ~sim ?latency_us () in
    let rng = Netsim.Sim.rng sim in
    let l = Legacy_leader.create ~self:leader ~rng ~directory ?policy () in
    let members = Hashtbl.create 8 in
    Netsim.Network.register net leader (fun bytes ->
        send_frames net ~src:leader (Legacy_leader.receive l bytes));
    List.iter
      (fun (name, password) ->
        let m = Legacy_member.create ~self:name ~leader ~password ~rng in
        Hashtbl.replace members name m;
        Netsim.Network.register net name (fun bytes ->
            send_frames net ~src:name (Legacy_member.receive m bytes)))
      directory;
    { sim; net; leader = l; members }

  let sim t = t.sim
  let net t = t.net
  let leader t = t.leader

  let member t who =
    match Hashtbl.find_opt t.members who with
    | Some m -> m
    | None -> raise Not_found

  let join t who =
    send_frames t.net ~src:who (Legacy_member.join (member t who))

  let leave t who =
    send_frames t.net ~src:who (Legacy_member.leave (member t who))

  let send_app t who body =
    send_frames t.net ~src:who (Legacy_member.send_app (member t who) body)

  let rekey t =
    send_frames t.net ~src:(Legacy_leader.self t.leader)
      (Legacy_leader.rekey t.leader)

  let run ?until t = Netsim.Sim.run ?until t.sim
end
