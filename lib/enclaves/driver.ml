module F = Wire.Frame

let send_frames net ~src frames =
  List.iter
    (fun (frame : F.t) ->
      Netsim.Network.send net ~src ~dst:frame.F.recipient (F.encode frame))
    frames

module Improved = struct
  type retry_config = {
    handshake_initial : Netsim.Vtime.t;
    handshake_max : Netsim.Vtime.t;
    backoff : float;
    jitter : float;
    scan_period : Netsim.Vtime.t;
    half_open_gc : Netsim.Vtime.t;
  }

  let default_retry =
    {
      handshake_initial = Netsim.Vtime.of_ms 250;
      handshake_max = Netsim.Vtime.of_s 4;
      backoff = 2.0;
      jitter = 0.2;
      scan_period = Netsim.Vtime.of_ms 200;
      half_open_gc = Netsim.Vtime.of_s 3;
    }

  type retry_stats = {
    mutable handshake_retransmits : int;
    mutable keydist_retransmits : int;
    mutable admin_retransmits : int;
    mutable half_open_gcs : int;
    mutable session_resets : int;
  }

  let fresh_retry_stats () =
    {
      handshake_retransmits = 0;
      keydist_retransmits = 0;
      admin_retransmits = 0;
      half_open_gcs = 0;
      session_resets = 0;
    }

  (* Leader-side watch entry for one outstanding frame (identified by
     its nonce): when the nonce survives a whole scan interval the
     frame is re-sent, with per-entry exponential backoff. *)
  type lwatch = {
    mutable w_nonce : Wire.Nonce.t;
    mutable first_seen : Netsim.Vtime.t;
    mutable last_rtx : Netsim.Vtime.t;
    mutable interval : Netsim.Vtime.t;
  }

  type t = {
    sim : Netsim.Sim.t;
    net : Netsim.Network.t;
    leader : Leader.t;
    members : (Types.agent, Member.t) Hashtbl.t;
    retry : retry_config option;
    rstats : retry_stats;
    jrng : Prng.Splitmix.t;  (* jitter; split off the root stream *)
    mutable retry_stopped : bool;
    mutable scan_handle : Netsim.Sim.handle option;
    watches : (Types.agent, lwatch) Hashtbl.t;
    pending_close : (Types.agent, Wire.Frame.t list) Hashtbl.t;
        (* Close frames from a session reset, re-sent alongside the
           handshake retransmit until the new session is accepted: if
           the close is lost the leader still holds the old session
           and rejects every AuthInitReq as "in session" — a permanent
           wedge otherwise. *)
  }

  let attach_leader t =
    Netsim.Network.register t.net (Leader.self t.leader) (fun bytes ->
        let replies = Leader.receive t.leader bytes in
        send_frames t.net ~src:(Leader.self t.leader) replies)

  let attach_member t m =
    Netsim.Network.register t.net (Member.self m) (fun bytes ->
        let replies = Member.receive m bytes in
        send_frames t.net ~src:(Member.self m) replies)

  let scale time f = Int64.of_float (Int64.to_float time *. f)

  let jittered t cfg delay =
    if cfg.jitter <= 0.0 then delay
    else
      let factor =
        1.0 -. cfg.jitter
        +. (Prng.Splitmix.next_float t.jrng *. 2.0 *. cfg.jitter)
      in
      scale delay factor

  let next_delay cfg delay =
    let d = scale delay cfg.backoff in
    if Netsim.Vtime.(cfg.handshake_max < d) then cfg.handshake_max else d

  (* One periodic leader-side pass: retransmit outstanding AuthKeyDist
     and AdminMsg frames whose nonce has not moved since the previous
     scan, and garbage-collect handshakes half-open past the GC age. *)
  let leader_scan t cfg () =
    let now = Netsim.Sim.now t.sim in
    let lname = Leader.self t.leader in
    let half_open = Leader.half_open t.leader in
    let awaiting = Leader.awaiting_ack t.leader in
    let live = half_open @ awaiting in
    Hashtbl.iter
      (fun who _ ->
        if not (List.mem who live) then Hashtbl.remove t.watches who)
      (Hashtbl.copy t.watches);
    let nonce_of who =
      match Leader.session t.leader who with
      | Leader.Waiting_for_key_ack (nl, _) | Leader.Waiting_for_ack (nl, _) ->
          Some nl
      | Leader.Not_connected | Leader.Connected _ -> None
    in
    let visit ~is_half_open who =
      match nonce_of who with
      | None -> ()
      | Some nl -> (
          match Hashtbl.find_opt t.watches who with
          | Some w when Wire.Nonce.equal w.w_nonce nl ->
              if
                is_half_open
                && Netsim.Vtime.(cfg.half_open_gc <= Int64.sub now w.first_seen)
              then begin
                if Leader.abort_half_open t.leader who then
                  t.rstats.half_open_gcs <- t.rstats.half_open_gcs + 1;
                Hashtbl.remove t.watches who
              end
              else if Netsim.Vtime.(w.interval <= Int64.sub now w.last_rtx)
              then begin
                send_frames t.net ~src:lname (Leader.retransmit t.leader who);
                if is_half_open then
                  t.rstats.keydist_retransmits <-
                    t.rstats.keydist_retransmits + 1
                else t.rstats.admin_retransmits <- t.rstats.admin_retransmits + 1;
                w.last_rtx <- now;
                w.interval <- next_delay cfg w.interval
              end
          | Some w ->
              (* Progress: a different frame is outstanding now. *)
              w.w_nonce <- nl;
              w.first_seen <- now;
              w.last_rtx <- now;
              w.interval <- cfg.scan_period
          | None ->
              Hashtbl.replace t.watches who
                {
                  w_nonce = nl;
                  first_seen = now;
                  last_rtx = now;
                  interval = cfg.scan_period;
                })
    in
    List.iter (visit ~is_half_open:true) half_open;
    List.iter (visit ~is_half_open:false) awaiting

  let create ?(seed = 42L) ?latency_us ?policy ?retry ~leader ~directory () =
    let sim = Netsim.Sim.create ~seed () in
    let net = Netsim.Network.create ~sim ?latency_us () in
    let rng = Netsim.Sim.rng sim in
    let l = Leader.create ~self:leader ~rng ~directory ?policy () in
    let members = Hashtbl.create 8 in
    let t =
      {
        sim;
        net;
        leader = l;
        members;
        retry;
        rstats = fresh_retry_stats ();
        jrng = Prng.Splitmix.split rng;
        retry_stopped = false;
        scan_handle = None;
        watches = Hashtbl.create 8;
        pending_close = Hashtbl.create 8;
      }
    in
    attach_leader t;
    List.iter
      (fun (name, password) ->
        let m = Member.create ~self:name ~leader ~password ~rng in
        Hashtbl.replace members name m;
        attach_member t m)
      directory;
    (match retry with
    | Some cfg ->
        t.scan_handle <-
          Some
            (Netsim.Sim.every_handle sim ~period:cfg.scan_period
               (leader_scan t cfg))
    | None -> ());
    t

  let sim t = t.sim
  let net t = t.net
  let leader t = t.leader
  let retry_stats t = t.rstats

  let member t who =
    match Hashtbl.find_opt t.members who with
    | Some m -> m
    | None -> raise Not_found

  (* Member-side watchdog: retransmit the handshake with capped
     exponential backoff and jitter while it is outstanding; tear down
     and restart a session that authenticated but never received its
     first admin message (the leader's half of the handshake was lost
     and then GC'd). Stops by itself once this member has the group
     key — from then on liveness is the leader scan's job. *)
  let rec watch_member t cfg who ~delay ~keyless_ticks =
    ignore
      (Netsim.Sim.schedule_handle t.sim ~delay:(jittered t cfg delay)
         (fun () ->
           if not t.retry_stopped then begin
             let m = member t who in
             match Member.state m with
             | Member.Waiting_for_key _ ->
                 (* If a session reset's close never reached the
                    leader, it still holds the old session and rejects
                    our AuthInitReq — re-send the close first. *)
                 (match Hashtbl.find_opt t.pending_close who with
                 | Some close -> send_frames t.net ~src:who close
                 | None -> ());
                 send_frames t.net ~src:who (Member.retransmit_join m);
                 t.rstats.handshake_retransmits <-
                   t.rstats.handshake_retransmits + 1;
                 watch_member t cfg who ~delay:(next_delay cfg delay)
                   ~keyless_ticks:0
             | Member.Connected _ when Member.group_key m = None ->
                 Hashtbl.remove t.pending_close who;
                 if keyless_ticks >= 1 then begin
                   (* Two consecutive keyless observations: the leader
                      no longer runs our session. Close and start
                      over. *)
                   t.rstats.session_resets <- t.rstats.session_resets + 1;
                   let close = Member.leave m in
                   send_frames t.net ~src:who close;
                   Hashtbl.replace t.pending_close who close;
                   send_frames t.net ~src:who (Member.join m);
                   watch_member t cfg who ~delay:cfg.handshake_initial
                     ~keyless_ticks:0
                 end
                 else
                   watch_member t cfg who ~delay:(next_delay cfg delay)
                     ~keyless_ticks:(keyless_ticks + 1)
             | Member.Connected _ | Member.Not_connected ->
                 Hashtbl.remove t.pending_close who
           end))

  let join t who =
    let m = member t who in
    send_frames t.net ~src:who (Member.join m);
    match t.retry with
    | Some cfg ->
        watch_member t cfg who ~delay:cfg.handshake_initial ~keyless_ticks:0
    | None -> ()

  let stop_retry t =
    t.retry_stopped <- true;
    (match t.scan_handle with
    | Some h -> Netsim.Sim.cancel h
    | None -> ());
    t.scan_handle <- None

  let leave t who =
    let m = member t who in
    send_frames t.net ~src:who (Member.leave m)

  let send_app t who body =
    let m = member t who in
    send_frames t.net ~src:who (Member.send_app m body)

  let dispatch_leader t frames =
    send_frames t.net ~src:(Leader.self t.leader) frames

  let rekey t = dispatch_leader t (Leader.rekey t.leader)
  let expel t who = dispatch_leader t (Leader.expel t.leader who)

  let start_periodic_rekey t ~period ?until () =
    Netsim.Sim.every_handle t.sim ~period ?until (fun () -> rekey t)

  let run ?until t = Netsim.Sim.run ?until t.sim

  let prefix_ok t who =
    (* §5.4 is a per-session property: [snd_A] is reset when the leader
       closes the session, so the comparison is only meaningful while
       the leader still runs a session for [who]. An expelled member
       keeps its old [rcv_A] but the session it belonged to is gone. *)
    match Leader.session t.leader who with
    | Leader.Not_connected | Leader.Waiting_for_key_ack _ -> true
    | Leader.Connected _ | Leader.Waiting_for_ack _ ->
        let m = member t who in
        let rcv = Member.accepted_admin m in
        let snd = Leader.sent_admin t.leader who in
        let rec is_prefix xs ys =
          match (xs, ys) with
          | [], _ -> true
          | _, [] -> false
          | x :: xs', y :: ys' -> Wire.Admin.equal x y && is_prefix xs' ys'
        in
        is_prefix rcv snd

  let all_prefix_ok t =
    Hashtbl.fold (fun who _ acc -> acc && prefix_ok t who) t.members true

  (* The chaos suite's convergence predicate: every member is in
     session, everyone (leader included) agrees on the group-key
     epoch, and §5.4 ordering holds for every live session. *)
  let converged t =
    match Leader.group_key t.leader with
    | None -> false
    | Some gk ->
        Hashtbl.fold
          (fun _ m acc ->
            acc
            && Member.is_connected m
            &&
            match Member.group_key m with
            | Some gk' -> gk'.Types.epoch = gk.Types.epoch
            | None -> false)
          t.members true
        && all_prefix_ok t
end

module Legacy = struct
  type t = {
    sim : Netsim.Sim.t;
    net : Netsim.Network.t;
    leader : Legacy_leader.t;
    members : (Types.agent, Legacy_member.t) Hashtbl.t;
  }

  let create ?(seed = 42L) ?latency_us ?policy ~leader ~directory () =
    let sim = Netsim.Sim.create ~seed () in
    let net = Netsim.Network.create ~sim ?latency_us () in
    let rng = Netsim.Sim.rng sim in
    let l = Legacy_leader.create ~self:leader ~rng ~directory ?policy () in
    let members = Hashtbl.create 8 in
    Netsim.Network.register net leader (fun bytes ->
        send_frames net ~src:leader (Legacy_leader.receive l bytes));
    List.iter
      (fun (name, password) ->
        let m = Legacy_member.create ~self:name ~leader ~password ~rng in
        Hashtbl.replace members name m;
        Netsim.Network.register net name (fun bytes ->
            send_frames net ~src:name (Legacy_member.receive m bytes)))
      directory;
    { sim; net; leader = l; members }

  let sim t = t.sim
  let net t = t.net
  let leader t = t.leader

  let member t who =
    match Hashtbl.find_opt t.members who with
    | Some m -> m
    | None -> raise Not_found

  let join t who =
    send_frames t.net ~src:who (Legacy_member.join (member t who))

  let leave t who =
    send_frames t.net ~src:who (Legacy_member.leave (member t who))

  let send_app t who body =
    send_frames t.net ~src:who (Legacy_member.send_app (member t who) body)

  let rekey t =
    send_frames t.net ~src:(Legacy_leader.self t.leader)
      (Legacy_leader.rekey t.leader)

  let run ?until t = Netsim.Sim.run ?until t.sim
end
