module F = Wire.Frame

let send_frames net ~src frames =
  List.iter
    (fun (frame : F.t) ->
      Netsim.Network.send net ~src ~dst:frame.F.recipient (F.encode frame))
    frames

module Improved = struct
  type retry_config = {
    handshake_initial : Netsim.Vtime.t;
    handshake_max : Netsim.Vtime.t;
    backoff : float;
    jitter : float;
    scan_period : Netsim.Vtime.t;
    half_open_gc : Netsim.Vtime.t;
  }

  let default_retry =
    {
      handshake_initial = Netsim.Vtime.of_ms 250;
      handshake_max = Netsim.Vtime.of_s 4;
      backoff = 2.0;
      jitter = 0.2;
      scan_period = Netsim.Vtime.of_ms 200;
      half_open_gc = Netsim.Vtime.of_s 3;
    }

  type retry_stats = {
    mutable handshake_retransmits : int;
    mutable keydist_retransmits : int;
    mutable admin_retransmits : int;
    mutable half_open_gcs : int;
    mutable session_resets : int;
  }

  let fresh_retry_stats () =
    {
      handshake_retransmits = 0;
      keydist_retransmits = 0;
      admin_retransmits = 0;
      half_open_gcs = 0;
      session_resets = 0;
    }

  (* Pre-auth flood control: the unauthenticated handshake path is the
     one surface a peer can hit without any key material, so it gets
     its own bounded service queue. [AuthInitReq] frames are not
     handed to the leader on arrival: they wait in a FIFO of at most
     [capacity] frames (tail drop beyond that) and are served in
     batches of [burst] every jittered [period], so a flood pays in
     queueing delay and overflow instead of leader work — and cannot
     phase-lock onto the service clock. With an intrusion sentinel
     configured, {!Sentinel.admit_preauth} runs at the queue door:
     throttled, capped and quarantined claimants never occupy a
     slot. *)
  type preauth_config = {
    capacity : int;  (** Queue bound; arrivals beyond it tail-drop. *)
    period : Netsim.Vtime.t;  (** Service tick (±25% jitter). *)
    burst : int;  (** Handshakes served per tick. *)
  }

  let default_preauth =
    { capacity = 32; period = Netsim.Vtime.of_ms 50; burst = 4 }

  (* Leader-side watch entry for one outstanding frame (identified by
     its nonce): when the nonce survives a whole scan interval the
     frame is re-sent, with per-entry exponential backoff. *)
  type lwatch = {
    mutable w_nonce : Wire.Nonce.t;
    mutable first_seen : Netsim.Vtime.t;
    mutable last_rtx : Netsim.Vtime.t;
    mutable interval : Netsim.Vtime.t;
  }

  type recovery_config = {
    digest_period : Netsim.Vtime.t;
    challenge_timeout : Netsim.Vtime.t;
    probe_after : Netsim.Vtime.t;
    reset_after : Netsim.Vtime.t;
    beacon_on_cold : bool;
  }

  let default_recovery =
    {
      digest_period = Netsim.Vtime.of_s 1;
      challenge_timeout = Netsim.Vtime.of_s 3;
      probe_after = Netsim.Vtime.of_s 4;
      reset_after = Netsim.Vtime.of_s 10;
      beacon_on_cold = true;
    }

  type recovery_stats = {
    mutable leader_crashes : int;
    mutable warm_restarts : int;
    mutable cold_restarts : int;
    mutable challenges_sent : int;
    mutable challenge_retransmits : int;
    mutable challenges_failed : int;
    mutable digests_broadcast : int;
    mutable probes_sent : int;
    mutable cold_reauths : int;
    mutable cold_beacons_sent : int;
    mutable beacon_reauths : int;
    mutable crash_images : int;
  }

  let fresh_recovery_stats () =
    {
      leader_crashes = 0;
      warm_restarts = 0;
      cold_restarts = 0;
      challenges_sent = 0;
      challenge_retransmits = 0;
      challenges_failed = 0;
      digests_broadcast = 0;
      probes_sent = 0;
      cold_reauths = 0;
      cold_beacons_sent = 0;
      beacon_reauths = 0;
      crash_images = 0;
    }

  type t = {
    sim : Netsim.Sim.t;
    net : Netsim.Network.t;
    mutable leader : Leader.t;  (* replaced on a leader restart *)
    members : (Types.agent, Member.t) Hashtbl.t;
    directory : (Types.agent * string) list;
    policy : Leader.policy option;
    retry : retry_config option;
    rstats : retry_stats;
    recovery : recovery_config option;
    recstats : recovery_stats;
    mutable journal : Journal.t option;  (* write-through to [backend] *)
    mutable vault : Store.Vault.t option;
        (* durable epoch vault, on the same backend as the journal *)
    delivery_policy : Delivery.policy option;
    delivery_budgets : Delivery.budgets option;
        (* Byte bounds handed to every delivery incarnation; [None]
           keeps the queues unbounded (the pre-budget behaviour). *)
    mutable delivery : Delivery.t option;  (* replaced on a leader restart *)
    mutable queue_crash_images : (string * string) list option;
        (* Durable queue-file images captured at the last crash — like
           [crash_bytes], what a restarted process actually finds. *)
    mutable acc_delivery : Netsim.Stats.delivery;
        (* Counters banked from delivery layers of dead leader
           incarnations. *)
    disk : Store.Mem.t option;  (* simulated disk under the journal *)
    fault : Store.Fault.t option;  (* seeded fault layer, if configured *)
    backend : Store.Backend.t option;  (* fault-wrapped handle to [disk] *)
    mutable crash_bytes : string option;
        (* Durable journal image captured at the last crash — what a
           restarted process actually finds, as opposed to the live
           buffer (which includes unsynced bytes the crash lost). *)
    mutable vault_crash_bytes : string option;
        (* Durable epoch-vault image captured at the same crash. *)
    mutable acc_eio : int;  (* EIO retries banked from dead journals *)
    mutable leader_down : bool;
    (* Recoveries/resyncs performed by previous leader incarnations —
       those counters die with the crashed instance. *)
    mutable acc_recoveries : int;
    mutable acc_resyncs : int;
    (* Degraded-ladder activity banked from dead leader incarnations
       (the ladder state itself dies with the instance: a restarted
       leader re-probes storage and re-degrades if pressure holds). *)
    mutable acc_degraded : int;
    mutable acc_rearms : int;
    mutable acc_shed : int;
    jrng : Prng.Splitmix.t;  (* jitter; split off the root stream *)
    preauth : preauth_config option;
    sentinel : Sentinel.t option;
        (* One sentinel across leader incarnations: suspicion must
           survive a restart, so the driver owns it and threads it
           into every rebuilt leader. *)
    preauth_q : (string * Netsim.Trace.via option) Queue.t;
        (* Encoded [AuthInitReq] frames awaiting pre-auth service,
           with the injection path each arrived over — the path is
           only observable during the synchronous delivery, so it is
           captured at enqueue time. *)
    mutable preauth_dropped : int;  (* tail drops at the full queue *)
    mutable injections_blocked : int;
        (* Wire-injected frames dropped at the door after the wire
           pseudo-peer reached quarantine. *)
    mutable pump_scheduled : bool;
    prng_pump : Prng.Splitmix.t;
        (* Service jitter. Seeded independently of the root stream so
           enabling the pump perturbs no other consumer's draws. *)
    mutable retry_stopped : bool;
    mutable scan_handle : Netsim.Sim.handle option;
    mutable recovery_handles : Netsim.Sim.handle list;
    watches : (Types.agent, lwatch) Hashtbl.t;
    pending_close : (Types.agent, Wire.Frame.t list) Hashtbl.t;
        (* Close frames from a session reset, re-sent alongside the
           handshake retransmit until the new session is accepted: if
           the close is lost the leader still holds the old session
           and rejects every AuthInitReq as "in session" — a permanent
           wedge otherwise. *)
  }

  let deliver_to_leader t ?via bytes =
    let replies = Leader.receive t.leader ?via bytes in
    send_frames t.net ~src:(Leader.self t.leader) replies

  (* Serve the pre-auth queue: at most [burst] queued handshakes per
     jittered [period] tick. Demand-driven — a tick is scheduled only
     while frames wait — so the pump never blocks quiescence. Each
     tick ends with a containment sweep: a flood that just pushed its
     author over the quarantine threshold is acted on before the next
     batch is served. *)
  let rec schedule_pump t cfg =
    if not t.pump_scheduled then begin
      t.pump_scheduled <- true;
      let period_f = Int64.to_float cfg.period in
      let displace =
        Int64.of_float
          (period_f *. 0.25
          *. ((Prng.Splitmix.next_float t.prng_pump *. 2.0) -. 1.0))
      in
      let delay = Int64.max 1L (Int64.add cfg.period displace) in
      ignore
        (Netsim.Sim.schedule_handle t.sim ~delay (fun () ->
             t.pump_scheduled <- false;
             if not t.leader_down then begin
               let served = ref 0 in
               while !served < cfg.burst && not (Queue.is_empty t.preauth_q) do
                 incr served;
                 let bytes, via = Queue.pop t.preauth_q in
                 deliver_to_leader t ?via bytes
               done;
               send_frames t.net ~src:(Leader.self t.leader)
                 (Leader.containment_sweep t.leader);
               if not (Queue.is_empty t.preauth_q) then schedule_pump t cfg
             end))
    end

  (* Admission check for one decoded [AuthInitReq]. Without a sentinel
     everything is admitted (the bounded queue alone is the baseline
     flood behaviour — it fills, and joins starve in FIFO order). *)
  let admit_preauth t ?via (frame : F.t) =
    match t.sentinel with
    | None -> true
    | Some sn -> (
        let who = frame.F.sender in
        let known = List.mem_assoc who t.directory in
        let resuming =
          match Leader.session t.leader who with
          | Leader.Waiting_for_key_ack _ -> true
          | Leader.Not_connected | Leader.Connected _ | Leader.Waiting_for_ack _
          | Leader.Recovering _ ->
              false
        in
        let half_open = List.length (Leader.half_open t.leader) in
        match
          Sentinel.admit_preauth sn ?via ~peer:who ~known ~resuming ~half_open ()
        with
        | Sentinel.Admit -> true
        | Sentinel.Throttled | Sentinel.Capped | Sentinel.Denied_quarantined ->
            false)

  (* Storage pressure tightens the unauthenticated door. While the
     leader sits below Healthy on the degraded-mode ladder, claimants
     absent from the directory are refused outright — an unknown peer
     cannot become a member anyway, and every queued handshake costs
     work the degraded leader should spend recovering — and the
     pre-auth queue runs at a quarter of its configured bound, so a
     flood pays in tail drops sooner. Directory members still join:
     their retransmission watchdog covers any tail drop. *)
  let effective_capacity t cfg =
    if Leader.mode t.leader = Leader.Healthy then cfg.capacity
    else max 1 (cfg.capacity / 4)

  let gate_preauth t ?via bytes frame =
    if
      Leader.mode t.leader <> Leader.Healthy
      && not (List.mem_assoc frame.F.sender t.directory)
    then t.preauth_dropped <- t.preauth_dropped + 1
    else if admit_preauth t ?via frame then
      match t.preauth with
      | None -> deliver_to_leader t ?via bytes
      | Some cfg ->
          if Queue.length t.preauth_q >= effective_capacity t cfg then
            t.preauth_dropped <- t.preauth_dropped + 1
          else begin
            Queue.push (bytes, via) t.preauth_q;
            schedule_pump t cfg
          end
    else
      (* The denial itself scored evidence; contain synchronously so a
         flood is cut on the frame that crossed the threshold. *)
      send_frames t.net ~src:(Leader.self t.leader)
        (Leader.containment_sweep t.leader)

  (* The handler reads [t.leader] at delivery time, so re-registering
     after a restart picks up the replacement automaton. The
     unauthenticated handshake path additionally passes the pre-auth
     gate when flood control or a sentinel is configured. *)
  let attach_leader t =
    Netsim.Network.register t.net (Leader.self t.leader) (fun bytes ->
        if not t.leader_down then begin
          let via = Netsim.Network.delivering_via t.net in
          (* Door check for raw wire injections: once the wire
             pseudo-peer itself is quarantined (a sustained pathless
             campaign), further [Via_wire] frames are dropped before
             any protocol or admission processing — the injector is
             contained without any member being blamed. *)
          let wire_blocked =
            match (via, t.sentinel) with
            | Some Netsim.Trace.Via_wire, Some sn ->
                Sentinel.level_rank (Sentinel.level sn Sentinel.wire_peer)
                >= Sentinel.level_rank Sentinel.Quarantined
            | _ -> false
          in
          if wire_blocked then
            t.injections_blocked <- t.injections_blocked + 1
          else
            match (t.preauth, t.sentinel) with
            | None, None -> deliver_to_leader t ?via bytes
            | _ -> (
                match F.decode bytes with
                | Ok ({ F.label = F.Auth_init_req; _ } as frame) ->
                    gate_preauth t ?via bytes frame
                | Ok _ | Error _ -> deliver_to_leader t ?via bytes)
        end)

  let scale time f = Int64.of_float (Int64.to_float time *. f)

  let jittered t cfg delay =
    if cfg.jitter <= 0.0 then delay
    else
      let factor =
        1.0 -. cfg.jitter
        +. (Prng.Splitmix.next_float t.jrng *. 2.0 *. cfg.jitter)
      in
      scale delay factor

  let next_delay cfg delay =
    let d = scale delay cfg.backoff in
    if Netsim.Vtime.(cfg.handshake_max < d) then cfg.handshake_max else d

  (* One periodic leader-side pass: retransmit outstanding AuthKeyDist
     and AdminMsg frames whose nonce has not moved since the previous
     scan, and garbage-collect handshakes half-open past the GC age. *)
  let leader_scan t cfg () =
    if t.leader_down then ()
    else begin
    let now = Netsim.Sim.now t.sim in
    let lname = Leader.self t.leader in
    let half_open = Leader.half_open t.leader in
    let awaiting = Leader.awaiting_ack t.leader in
    let live = half_open @ awaiting in
    Hashtbl.iter
      (fun who _ ->
        if not (List.mem who live) then Hashtbl.remove t.watches who)
      (Hashtbl.copy t.watches);
    let nonce_of who =
      match Leader.session t.leader who with
      | Leader.Waiting_for_key_ack (nl, _) | Leader.Waiting_for_ack (nl, _) ->
          Some nl
      | Leader.Not_connected | Leader.Connected _ | Leader.Recovering _ ->
          (* Recovery challenges have their own retransmission scan. *)
          None
    in
    let visit ~is_half_open who =
      match nonce_of who with
      | None -> ()
      | Some nl -> (
          match Hashtbl.find_opt t.watches who with
          | Some w when Wire.Nonce.equal w.w_nonce nl ->
              if
                is_half_open
                && Netsim.Vtime.(cfg.half_open_gc <= Int64.sub now w.first_seen)
              then begin
                if Leader.abort_half_open t.leader who then
                  t.rstats.half_open_gcs <- t.rstats.half_open_gcs + 1;
                Hashtbl.remove t.watches who
              end
              else if Netsim.Vtime.(w.interval <= Int64.sub now w.last_rtx)
              then begin
                send_frames t.net ~src:lname (Leader.retransmit t.leader who);
                if is_half_open then
                  t.rstats.keydist_retransmits <-
                    t.rstats.keydist_retransmits + 1
                else t.rstats.admin_retransmits <- t.rstats.admin_retransmits + 1;
                w.last_rtx <- now;
                w.interval <- next_delay cfg w.interval
              end
          | Some w ->
              (* Progress: a different frame is outstanding now. *)
              w.w_nonce <- nl;
              w.first_seen <- now;
              w.last_rtx <- now;
              w.interval <- cfg.scan_period
          | None ->
              Hashtbl.replace t.watches who
                {
                  w_nonce = nl;
                  first_seen = now;
                  last_rtx = now;
                  interval = cfg.scan_period;
                })
    in
    List.iter (visit ~is_half_open:true) half_open;
    List.iter (visit ~is_half_open:false) awaiting;
    (* Half-open GC just scored [Half_open] evidence; act on any
       escalation now rather than waiting for the suspect's next
       frame. *)
    send_frames t.net ~src:lname (Leader.containment_sweep t.leader);
    (* Re-arm probe: while the leader sits below Healthy on the
       degraded-mode ladder, each scan tick retries the all-or-nothing
       re-arm — it succeeds exactly when the storage pressure has
       lifted, and fails without side effects while it has not. The
       sweep then flushes any pending mode notice (a rung entered
       outside [Leader.receive], or the "healthy" all-clear the
       re-arm just queued) to the membership. *)
    if Leader.mode t.leader <> Leader.Healthy then
      ignore (Leader.try_rearm t.leader);
    send_frames t.net ~src:lname (Leader.mode_sweep t.leader)
    end

  let member t who =
    match Hashtbl.find_opt t.members who with
    | Some m -> m
    | None -> raise Not_found

  (* Member-side watchdog: retransmit the handshake with capped
     exponential backoff and jitter while it is outstanding; tear down
     and restart a session that authenticated but never received its
     first admin message (the leader's half of the handshake was lost
     and then GC'd). Stops by itself once this member has the group
     key — from then on liveness is the leader scan's job. *)
  let rec watch_member t cfg who ~delay ~keyless_ticks =
    ignore
      (Netsim.Sim.schedule_handle t.sim ~delay:(jittered t cfg delay)
         (fun () ->
           if not t.retry_stopped then begin
             let m = member t who in
             match Member.state m with
             | Member.Waiting_for_key _ ->
                 (* If a session reset's close never reached the
                    leader, it still holds the old session and rejects
                    our AuthInitReq — re-send the close first. *)
                 (match Hashtbl.find_opt t.pending_close who with
                 | Some close -> send_frames t.net ~src:who close
                 | None -> ());
                 send_frames t.net ~src:who (Member.retransmit_join m);
                 t.rstats.handshake_retransmits <-
                   t.rstats.handshake_retransmits + 1;
                 watch_member t cfg who ~delay:(next_delay cfg delay)
                   ~keyless_ticks:0
             | Member.Connected _ when Member.group_key m = None ->
                 Hashtbl.remove t.pending_close who;
                 if keyless_ticks >= 1 then begin
                   (* Two consecutive keyless observations: the leader
                      no longer runs our session. Close and start
                      over. *)
                   t.rstats.session_resets <- t.rstats.session_resets + 1;
                   let close = Member.leave m in
                   send_frames t.net ~src:who close;
                   Hashtbl.replace t.pending_close who close;
                   send_frames t.net ~src:who (Member.join m);
                   watch_member t cfg who ~delay:cfg.handshake_initial
                     ~keyless_ticks:0
                 end
                 else
                   watch_member t cfg who ~delay:(next_delay cfg delay)
                     ~keyless_ticks:(keyless_ticks + 1)
             | Member.Connected _ | Member.Not_connected ->
                 Hashtbl.remove t.pending_close who
           end))

  (* --- view anti-entropy --- *)

  (* Periodic beacon: enqueue the current [View_digest] for every
     member whose admin channel is idle. Members with an outstanding
     AdminMsg are skipped (not queued behind it) — the next beacon
     will catch them, and the queue cannot fill with stale digests. *)
  let broadcast_digests t =
    if not t.leader_down then begin
      let l = t.leader in
      let digest = Leader.view_digest l in
      let epoch =
        match Leader.group_key l with
        | Some gk -> gk.Types.epoch
        | None -> 0
      in
      List.iter
        (fun who ->
          match Leader.session l who with
          | Leader.Connected _ ->
              t.recstats.digests_broadcast <- t.recstats.digests_broadcast + 1;
              send_frames t.net ~src:(Leader.self l)
                (Leader.enqueue_admin l who
                   (Wire.Admin.View_digest { digest; epoch }))
          | Leader.Not_connected | Leader.Waiting_for_key_ack _
          | Leader.Waiting_for_ack _ | Leader.Recovering _ ->
              ())
        (Leader.members l)
    end

  (* Member-side anti-entropy watchdog: a keyed member that stops
     seeing beacons first probes the leader with its own digest
     ([probe_after] of silence), then — if the probe also goes
     unanswered — tears the session down and cold re-authenticates
     ([reset_after]). This is the member's escape hatch when a leader
     restart dropped it (failed challenge, damaged journal): the
     member cannot distinguish that from a dead leader, so it probes,
     then rejoins from scratch. *)
  let rec ae_watch t rc who ~last_seen ~silent_for =
    ignore
      (Netsim.Sim.schedule_handle t.sim ~delay:rc.digest_period (fun () ->
           if not t.retry_stopped then begin
             let m = member t who in
             let seen = Member.digests_seen m in
             if
               (not (Member.is_connected m))
               || Member.group_key m = None
               || seen > last_seen
             then ae_watch t rc who ~last_seen:seen ~silent_for:0L
             else begin
               let silent = Int64.add silent_for rc.digest_period in
               if Netsim.Vtime.(rc.reset_after <= silent) then begin
                 t.recstats.cold_reauths <- t.recstats.cold_reauths + 1;
                 let close = Member.leave m in
                 send_frames t.net ~src:who close;
                 Hashtbl.replace t.pending_close who close;
                 send_frames t.net ~src:who (Member.join m);
                 (match t.retry with
                 | Some cfg ->
                     watch_member t cfg who ~delay:cfg.handshake_initial
                       ~keyless_ticks:0
                 | None -> ());
                 ae_watch t rc who ~last_seen:(Member.digests_seen m)
                   ~silent_for:0L
               end
               else begin
                 if Netsim.Vtime.(rc.probe_after <= silent) then begin
                   t.recstats.probes_sent <- t.recstats.probes_sent + 1;
                   send_frames t.net ~src:who (Member.resync_request m)
                 end;
                 ae_watch t rc who ~last_seen ~silent_for:silent
               end
             end
           end))

  (* The member handler also watches for a completed cold-restart
     beacon handshake: the member has already reset and sent its
     AuthInitReq (inside [Member.receive]); the driver's job is to
     count the shortcut and re-arm the handshake watchdog so a lost
     reply still heals. *)
  let attach_member t m =
    let who = Member.self m in
    Netsim.Network.register t.net who (fun bytes ->
        let replies = Member.receive m bytes in
        send_frames t.net ~src:who replies;
        if Member.consume_beacon_reset m then begin
          t.recstats.beacon_reauths <- t.recstats.beacon_reauths + 1;
          Hashtbl.remove t.pending_close who;
          match t.retry with
          | Some cfg ->
              watch_member t cfg who ~delay:cfg.handshake_initial
                ~keyless_ticks:0
          | None -> ()
        end)

  (* Freeze one delivery layer's counters (the member-side dedup count
     is filled in by [delivery_stats]). *)
  let delivery_snapshot d =
    let c = Delivery.counters d in
    {
      Netsim.Stats.queued = c.Delivery.queued;
      drained = c.Delivery.drained;
      deduped = 0;
      resealed = c.Delivery.resealed;
      rejected_stale = c.Delivery.rejected_stale;
      delivered_stale = c.Delivery.delivered_stale;
      queue_bytes_hwm = c.Delivery.queue_bytes_hwm;
    }

  let add_delivery (a : Netsim.Stats.delivery) (b : Netsim.Stats.delivery) =
    {
      Netsim.Stats.queued = a.Netsim.Stats.queued + b.Netsim.Stats.queued;
      drained = a.Netsim.Stats.drained + b.Netsim.Stats.drained;
      deduped = a.Netsim.Stats.deduped + b.Netsim.Stats.deduped;
      resealed = a.Netsim.Stats.resealed + b.Netsim.Stats.resealed;
      rejected_stale =
        a.Netsim.Stats.rejected_stale + b.Netsim.Stats.rejected_stale;
      delivered_stale =
        a.Netsim.Stats.delivered_stale + b.Netsim.Stats.delivered_stale;
      queue_bytes_hwm =
        max a.Netsim.Stats.queue_bytes_hwm b.Netsim.Stats.queue_bytes_hwm;
    }

  let create ?(seed = 42L) ?latency_us ?policy ?retry ?recovery ?storage_faults
      ?delivery:delivery_policy ?delivery_budgets ?preauth ?intrusion ~leader
      ~directory () =
    let sim = Netsim.Sim.create ~seed () in
    let net = Netsim.Network.create ~sim ?latency_us () in
    let rng = Netsim.Sim.rng sim in
    let sentinel =
      Option.map
        (fun config ->
          Sentinel.create ~config ~clock:(fun () -> Netsim.Sim.now sim) ())
        intrusion
    in
    (* With recovery on, the journal writes through a simulated disk —
       optionally wrapped in the seeded fault layer — so a crash can
       capture the durable image instead of trusting the live buffer. *)
    let disk, fault, backend =
      match recovery with
      | None -> (None, None, None)
      | Some _ ->
          let mem = Store.Mem.create () in
          let inner = Store.Mem.handle mem in
          let fault, handle =
            match storage_faults with
            | Some config ->
                let f =
                  Store.Fault.create ~config ~rng:(Prng.Splitmix.split rng)
                    inner
                in
                (Some f, Store.Fault.handle f)
            | None -> (None, inner)
          in
          (Some mem, fault, Some handle)
    in
    let journal =
      match recovery with
      | Some _ -> Some (Journal.create ?disk:backend ())
      | None -> None
    in
    let vault =
      match recovery with
      | Some _ -> Some (Store.Vault.create ?disk:backend ())
      | None -> None
    in
    let delivery =
      Option.map
        (fun policy ->
          Delivery.create ~policy ?budgets:delivery_budgets ?disk:backend ())
        delivery_policy
    in
    let l =
      Leader.create ~self:leader ~rng ~directory ?policy ?journal ?vault
        ?delivery ?sentinel ()
    in
    let members = Hashtbl.create 8 in
    let t =
      {
        sim;
        net;
        leader = l;
        members;
        directory;
        policy;
        retry;
        rstats = fresh_retry_stats ();
        recovery;
        recstats = fresh_recovery_stats ();
        journal;
        vault;
        delivery_policy;
        delivery_budgets;
        delivery;
        queue_crash_images = None;
        acc_delivery = Netsim.Stats.empty_delivery;
        disk;
        fault;
        backend;
        crash_bytes = None;
        vault_crash_bytes = None;
        acc_eio = 0;
        leader_down = false;
        acc_recoveries = 0;
        acc_resyncs = 0;
        acc_degraded = 0;
        acc_rearms = 0;
        acc_shed = 0;
        jrng = Prng.Splitmix.split rng;
        preauth;
        sentinel;
        preauth_q = Queue.create ();
        preauth_dropped = 0;
        injections_blocked = 0;
        pump_scheduled = false;
        prng_pump = Prng.Splitmix.create (Int64.logxor seed 0x70726561757468L);
        retry_stopped = false;
        scan_handle = None;
        recovery_handles = [];
        watches = Hashtbl.create 8;
        pending_close = Hashtbl.create 8;
      }
    in
    attach_leader t;
    List.iter
      (fun (name, password) ->
        let m = Member.create ~self:name ~leader ~password ~rng in
        Hashtbl.replace members name m;
        attach_member t m)
      directory;
    (match retry with
    | Some cfg ->
        t.scan_handle <-
          Some
            (Netsim.Sim.every_handle sim ~period:cfg.scan_period
               (leader_scan t cfg))
    | None -> ());
    (match recovery with
    | Some rc ->
        t.recovery_handles <-
          [
            Netsim.Sim.every_handle sim ~period:rc.digest_period (fun () ->
                broadcast_digests t);
          ];
        List.iter
          (fun (name, _) -> ae_watch t rc name ~last_seen:0 ~silent_for:0L)
          directory
    | None -> ());
    t

  let sim t = t.sim
  let net t = t.net
  let leader t = t.leader
  let retry_stats t = t.rstats
  let recovery_stats t = t.recstats
  let journal_bytes t = Option.map Journal.contents t.journal
  let epoch_vault t = t.vault

  let sessions_recovered t = t.acc_recoveries + Leader.recoveries t.leader
  let resyncs_served t = t.acc_resyncs + Leader.resyncs_served t.leader

  let divergences_detected t =
    Hashtbl.fold (fun _ m acc -> acc + Member.view_divergences m) t.members 0

  let join t who =
    let m = member t who in
    send_frames t.net ~src:who (Member.join m);
    match t.retry with
    | Some cfg ->
        watch_member t cfg who ~delay:cfg.handshake_initial ~keyless_ticks:0
    | None -> ()

  let stop_retry t =
    t.retry_stopped <- true;
    (match t.scan_handle with
    | Some h -> Netsim.Sim.cancel h
    | None -> ());
    t.scan_handle <- None;
    List.iter Netsim.Sim.cancel t.recovery_handles;
    t.recovery_handles <- []

  let leave t who =
    let m = member t who in
    send_frames t.net ~src:who (Member.leave m)

  let send_app t who body =
    let m = member t who in
    send_frames t.net ~src:who (Member.send_app m body)

  let dispatch_leader t frames =
    send_frames t.net ~src:(Leader.self t.leader) frames

  let rekey t = dispatch_leader t (Leader.rekey t.leader)
  let expel t who = dispatch_leader t (Leader.expel t.leader who)

  (* --- store-and-forward --- *)

  let mark_offline t who = Leader.mark_offline t.leader who
  let mark_online t who = dispatch_leader t (Leader.mark_online t.leader who)
  let offline_members t = Leader.offline_members t.leader
  let delivery t = t.delivery

  let queue_depth t who =
    match t.delivery with Some d -> Delivery.depth d ~member:who | None -> 0

  let total_queue_depth t =
    match t.delivery with Some d -> Delivery.total_depth d | None -> 0

  let delivery_stats t =
    let live =
      match t.delivery with
      | Some d -> delivery_snapshot d
      | None -> Netsim.Stats.empty_delivery
    in
    let deduped =
      Hashtbl.fold
        (fun _ m acc -> acc + Member.deliveries_deduped m)
        t.members 0
    in
    let s = add_delivery t.acc_delivery live in
    { s with Netsim.Stats.deduped }

  let delivery_counters t = Netsim.Stats.delivery_named (delivery_stats t)

  (* --- leader crash and restart --- *)

  let crash_leader t =
    if not t.leader_down then begin
      t.leader_down <- true;
      t.recstats.leader_crashes <- t.recstats.leader_crashes + 1;
      (* These counters die with the crashed instance; bank them. *)
      t.acc_recoveries <- t.acc_recoveries + Leader.recoveries t.leader;
      t.acc_resyncs <- t.acc_resyncs + Leader.resyncs_served t.leader;
      (* What a restarted process will find is the DURABLE image, not
         the live buffer: unsynced bytes (e.g. behind a dropped fsync)
         die here. *)
      (match (t.disk, t.journal) with
      | Some mem, Some j ->
          t.crash_bytes <-
            Some (Option.value ~default:"" (Store.Mem.durable_of mem (Journal.file j)))
      | _ -> ());
      (match t.disk with
      | Some mem ->
          t.vault_crash_bytes <-
            Some
              (Option.value ~default:""
                 (Store.Mem.durable_of mem Store.Vault.default_file))
      | None -> ());
      (* Same rule for the delivery queues: a restarted process finds
         each queue file's durable image, not the live structure. *)
      (match (t.disk, t.delivery) with
      | Some mem, Some d ->
          t.queue_crash_images <-
            Some
              (List.map
                 (fun (file, _) ->
                   ( file,
                     Option.value ~default:"" (Store.Mem.durable_of mem file) ))
                 (Delivery.files d))
      | _ -> ());
      (* The pre-auth queue is process memory; a crash loses it. *)
      Queue.clear t.preauth_q;
      Netsim.Network.unregister t.net (Leader.self t.leader)
    end

  (* Retransmit outstanding recovery challenges every scan until they
     are answered or [challenge_timeout] has passed, then give up on
     the stragglers — the cold path. *)
  let rec recovery_scan t rc ~started ~period =
    ignore
      (Netsim.Sim.schedule_handle t.sim ~delay:period (fun () ->
           if (not t.leader_down) && not t.retry_stopped then begin
             let now = Netsim.Sim.now t.sim in
             let pending = Leader.recovering t.leader in
             if pending <> [] then begin
               let expired =
                 Netsim.Vtime.(rc.challenge_timeout <= Int64.sub now started)
               in
               List.iter
                 (fun who ->
                   if expired then begin
                     if Leader.abort_recovery t.leader who then
                       t.recstats.challenges_failed <-
                         t.recstats.challenges_failed + 1
                   end
                   else begin
                     t.recstats.challenge_retransmits <-
                       t.recstats.challenge_retransmits + 1;
                     send_frames t.net ~src:(Leader.self t.leader)
                       (Leader.retransmit t.leader who)
                   end)
                 pending;
               if not expired then recovery_scan t rc ~started ~period
             end
           end))

  (* Re-broadcast the cold-restart beacons to members that have not
     rejoined yet, every [period], until [challenge_timeout] has
     passed. A member that already challenged re-sends its stored
     challenge on the duplicate (same nonce), and the leader re-acks a
     matching challenge, so every lost frame in the 3-message exchange
     is covered. Stops early if this leader incarnation is replaced. *)
  let rec beacon_scan t rc ~incarnation ~beacons ~started ~period =
    ignore
      (Netsim.Sim.schedule_handle t.sim ~delay:period (fun () ->
           if
             (not t.leader_down) && (not t.retry_stopped)
             && t.leader == incarnation
             && Netsim.Vtime.(
                  Int64.sub (Netsim.Sim.now t.sim) started < rc.challenge_timeout)
           then begin
             let missing =
               List.filter
                 (fun (f : Wire.Frame.t) ->
                   match Leader.session t.leader f.Wire.Frame.recipient with
                   | Leader.Not_connected -> true
                   | _ -> false)
                 beacons
             in
             if missing <> [] then begin
               t.recstats.cold_beacons_sent <-
                 t.recstats.cold_beacons_sent + List.length missing;
               send_frames t.net ~src:(Leader.self t.leader) missing;
               beacon_scan t rc ~incarnation ~beacons ~started ~period
             end
           end))

  (* Bank the dying journal's retry counter before replacing it. *)
  let retire_journal t =
    (match t.journal with
    | Some j -> t.acc_eio <- t.acc_eio + Journal.eio_retries j
    | None -> ());
    t.journal <- None

  let restart_leader ?(warm = true) ?journal_bytes t =
    let lname = Leader.self t.leader in
    let rng = Netsim.Sim.rng t.sim in
    (* Ladder counters die with the replaced automaton; bank them.
       (Banked here rather than in [crash_leader] so a crash-free
       restart keeps them too.) *)
    t.acc_degraded <- t.acc_degraded + Leader.degraded_entries t.leader;
    t.acc_rearms <- t.acc_rearms + Leader.rearms t.leader;
    (* Explicit bytes (tests feeding tampered journals) win; then the
       durable crash image if one was captured; the live buffer is the
       last resort (restart without a crash). *)
    let bytes =
      match (journal_bytes, t.crash_bytes) with
      | (Some _ as b), _ -> b
      | None, Some _ ->
          t.recstats.crash_images <- t.recstats.crash_images + 1;
          t.crash_bytes
      | None, None -> Option.map Journal.contents t.journal
    in
    t.crash_bytes <- None;
    (* The restarted process re-opens the epoch vault from its durable
       image (what the crash left on "disk"), not the live structure —
       a put whose fsync was dropped must not survive. *)
    (match t.recovery with
    | Some _ ->
        let image =
          match t.vault_crash_bytes with
          | Some b -> b
          | None -> (
              match t.vault with Some v -> Store.Vault.contents v | None -> "")
        in
        t.vault <- Some (Store.Vault.of_bytes ?disk:t.backend image)
    | None -> ());
    t.vault_crash_bytes <- None;
    let vault = t.vault in
    (* The delivery queues follow the same discipline: bank the dead
       incarnation's counters, then rebuild the layer from the captured
       durable images (or the live images on a crash-free restart). *)
    (match t.delivery_policy with
    | Some policy ->
        (match t.delivery with
        | Some d ->
            t.acc_delivery <- add_delivery t.acc_delivery (delivery_snapshot d);
            t.acc_shed <- t.acc_shed + (Delivery.counters d).Delivery.records_shed
        | None -> ());
        let images =
          match t.queue_crash_images with
          | Some imgs -> imgs
          | None -> (
              match t.delivery with Some d -> Delivery.files d | None -> [])
        in
        t.delivery <-
          Some
            (Delivery.of_images ~policy ?budgets:t.delivery_budgets
               ?disk:t.backend images)
    | None -> ());
    t.queue_crash_images <- None;
    let delivery = t.delivery in
    match (warm, bytes) with
    | true, Some b ->
        retire_journal t;
        let j, state, status = Journal.recover ?disk:t.backend b in
        let l, challenges =
          Leader.recover ~self:lname ~rng ~directory:t.directory
            ?policy:t.policy ~journal:j ?vault ?delivery ?sentinel:t.sentinel
            ~state ()
        in
        t.leader <- l;
        t.journal <- Some j;
        t.leader_down <- false;
        attach_leader t;
        t.recstats.warm_restarts <- t.recstats.warm_restarts + 1;
        t.recstats.challenges_sent <-
          t.recstats.challenges_sent + List.length challenges;
        send_frames t.net ~src:lname challenges;
        let rc = Option.value t.recovery ~default:default_recovery in
        let period =
          match t.retry with
          | Some cfg -> cfg.scan_period
          | None -> Netsim.Vtime.of_ms 200
        in
        recovery_scan t rc ~started:(Netsim.Sim.now t.sim) ~period;
        status
    | false, Some b ->
        (* Cold restart with a surviving journal: no session is
           trusted, but the journal still pins the epoch floor and
           stamps the cold-restart beacons. *)
        retire_journal t;
        let recs, status = Journal.replay b in
        let state = Journal.state_of_records recs in
        let j = Journal.create ?disk:t.backend () in
        let l, beacons =
          Leader.cold_recover ~self:lname ~rng ~directory:t.directory
            ?policy:t.policy ~journal:j ?vault ?delivery ?sentinel:t.sentinel
            ~state ()
        in
        t.leader <- l;
        t.journal <- Some j;
        t.leader_down <- false;
        attach_leader t;
        t.recstats.cold_restarts <- t.recstats.cold_restarts + 1;
        let rc = Option.value t.recovery ~default:default_recovery in
        if rc.beacon_on_cold then begin
          t.recstats.cold_beacons_sent <-
            t.recstats.cold_beacons_sent + List.length beacons;
          send_frames t.net ~src:lname beacons;
          beacon_scan t rc ~incarnation:l ~beacons
            ~started:(Netsim.Sim.now t.sim) ~period:rc.digest_period
        end;
        status
    | _, None ->
        (* No journal at all (recovery off): the PR-2 baseline — a
           fresh automaton that knows nothing. *)
        let l =
          Leader.create ~self:lname ~rng ~directory:t.directory
            ?policy:t.policy ?delivery ?sentinel:t.sentinel ()
        in
        t.leader <- l;
        t.leader_down <- false;
        attach_leader t;
        t.recstats.cold_restarts <- t.recstats.cold_restarts + 1;
        Journal.Clean

  let schedule_leader_crash ?restart_after ?(warm = true) ?journal_bytes t ~at
      () =
    let delay =
      let now = Netsim.Sim.now t.sim in
      if Netsim.Vtime.(now < at) then Int64.sub at now else 0L
    in
    ignore
      (Netsim.Sim.schedule_handle t.sim ~delay (fun () ->
           crash_leader t;
           match restart_after with
           | Some d ->
               ignore
                 (Netsim.Sim.schedule_handle t.sim ~delay:d (fun () ->
                      ignore (restart_leader ~warm ?journal_bytes t)))
           | None -> ()))

  let leader_down t = t.leader_down

  let start_periodic_rekey t ~period ?until () =
    Netsim.Sim.every_handle t.sim ~period ?until (fun () -> rekey t)

  let run ?until t = Netsim.Sim.run ?until t.sim

  let prefix_ok t who =
    (* §5.4 is a per-session property: [snd_A] is reset when the leader
       closes the session, so the comparison is only meaningful while
       the leader still runs a session for [who]. An expelled member
       keeps its old [rcv_A] but the session it belonged to is gone. *)
    match Leader.session t.leader who with
    | Leader.Not_connected | Leader.Waiting_for_key_ack _
    | Leader.Recovering _ ->
        (* A recovering session's [snd_A] died with the crashed leader;
           the ledger restarts on both sides once the challenge is
           answered. *)
        true
    | Leader.Connected _ | Leader.Waiting_for_ack _ ->
        let m = member t who in
        let rcv = Member.accepted_admin m in
        let snd = Leader.sent_admin t.leader who in
        let rec is_prefix xs ys =
          match (xs, ys) with
          | [], _ -> true
          | _, [] -> false
          | x :: xs', y :: ys' -> Wire.Admin.equal x y && is_prefix xs' ys'
        in
        is_prefix rcv snd

  let all_prefix_ok t =
    Hashtbl.fold (fun who _ acc -> acc && prefix_ok t who) t.members true

  (* The chaos suite's convergence predicate: every member is in
     session, everyone (leader included) agrees on the group-key
     epoch, and §5.4 ordering holds for every live session. *)
  let converged t =
    match Leader.group_key t.leader with
    | None -> false
    | Some gk ->
        Hashtbl.fold
          (fun _ m acc ->
            acc
            && Member.is_connected m
            &&
            match Member.group_key m with
            | Some gk' -> gk'.Types.epoch = gk.Types.epoch
            | None -> false)
          t.members true
        && all_prefix_ok t

  (* Anti-entropy's goal state: converged AND every member's
     membership view equals the leader's. *)
  let view_converged t =
    converged t
    &&
    let lview = Leader.members t.leader in
    Hashtbl.fold
      (fun _ m acc -> acc && Member.group_view m = lview)
      t.members true

  let retry_counters t =
    [
      ("handshake_retransmits", t.rstats.handshake_retransmits);
      ("keydist_retransmits", t.rstats.keydist_retransmits);
      ("admin_retransmits", t.rstats.admin_retransmits);
      ("half_open_gcs", t.rstats.half_open_gcs);
      ("session_resets", t.rstats.session_resets);
    ]

  let recovery_counters t =
    [
      ("leader_crashes", t.recstats.leader_crashes);
      ("warm_restarts", t.recstats.warm_restarts);
      ("cold_restarts", t.recstats.cold_restarts);
      ("challenges_sent", t.recstats.challenges_sent);
      ("challenge_retransmits", t.recstats.challenge_retransmits);
      ("challenges_failed", t.recstats.challenges_failed);
      ("sessions_recovered", sessions_recovered t);
      ("digests_broadcast", t.recstats.digests_broadcast);
      ("divergences_detected", divergences_detected t);
      ("resyncs_served", resyncs_served t);
      ("probes_sent", t.recstats.probes_sent);
      ("cold_reauths", t.recstats.cold_reauths);
      ("cold_beacons_sent", t.recstats.cold_beacons_sent);
      ("beacon_reauths", t.recstats.beacon_reauths);
    ]

  let storage_stats t =
    let faults =
      match t.fault with
      | Some f -> Store.Fault.counters f
      | None -> Store.Fault.empty_counters ()
    in
    let live_retries =
      match t.journal with Some j -> Journal.eio_retries j | None -> 0
    in
    {
      Netsim.Stats.torn_writes = faults.Store.Fault.torn_writes;
      short_writes = faults.Store.Fault.short_writes;
      dropped_fsyncs = faults.Store.Fault.dropped_fsyncs;
      eio_injected = faults.Store.Fault.eio_injected;
      eio_retries = t.acc_eio + live_retries;
      crash_images_replayed = t.recstats.crash_images;
    }

  let storage_counters t = Netsim.Stats.storage_named (storage_stats t)

  (* --- resource pressure and the degraded-mode ladder --- *)

  let fault t = t.fault
  let leader_mode t = Leader.mode t.leader
  let durability_armed t = Leader.durability_armed t.leader

  let degraded_entries t = t.acc_degraded + Leader.degraded_entries t.leader
  let rearms t = t.acc_rearms + Leader.rearms t.leader

  let set_space_budget t b =
    match t.fault with
    | Some f -> Store.Fault.set_space_budget f b
    | None -> ()

  let heal_stall t =
    match t.fault with Some f -> Store.Fault.heal_stall f | None -> ()

  let trigger_stall t =
    match t.fault with Some f -> Store.Fault.trigger_stall f | None -> ()

  let disk_bytes_used t =
    match t.fault with Some f -> Store.Fault.bytes_used f | None -> 0

  let resource_stats ?(repl_snapshots = 0) t =
    let faults =
      match t.fault with
      | Some f -> Store.Fault.counters f
      | None -> Store.Fault.empty_counters ()
    in
    let shed =
      match t.delivery with
      | Some d -> (Delivery.counters d).Delivery.records_shed
      | None -> 0
    in
    {
      Netsim.Stats.degraded_entries = degraded_entries t;
      records_shed = t.acc_shed + shed;
      enospc_hits = faults.Store.Fault.enospc_hits;
      fsync_stall_ms_max = faults.Store.Fault.fsync_stall_ms_max;
      repl_lag_snapshots = repl_snapshots;
    }

  let resource_counters ?repl_snapshots t =
    Netsim.Stats.resource_named (resource_stats ?repl_snapshots t)

  (* --- intrusion containment --- *)

  let sentinel t = t.sentinel
  let preauth_backlog t = Queue.length t.preauth_q

  let sentinel_stats t =
    let base =
      match t.sentinel with
      | Some sn -> Sentinel.to_stats (Sentinel.counters sn)
      | None -> Netsim.Stats.empty_sentinel
    in
    {
      base with
      Netsim.Stats.preauth_queue_dropped = t.preauth_dropped;
      injections_blocked = t.injections_blocked;
    }

  let sentinel_counters t = Netsim.Stats.sentinel_named (sentinel_stats t)
end

module Legacy = struct
  type t = {
    sim : Netsim.Sim.t;
    net : Netsim.Network.t;
    leader : Legacy_leader.t;
    members : (Types.agent, Legacy_member.t) Hashtbl.t;
  }

  let create ?(seed = 42L) ?latency_us ?policy ~leader ~directory () =
    let sim = Netsim.Sim.create ~seed () in
    let net = Netsim.Network.create ~sim ?latency_us () in
    let rng = Netsim.Sim.rng sim in
    let l = Legacy_leader.create ~self:leader ~rng ~directory ?policy () in
    let members = Hashtbl.create 8 in
    Netsim.Network.register net leader (fun bytes ->
        send_frames net ~src:leader (Legacy_leader.receive l bytes));
    List.iter
      (fun (name, password) ->
        let m = Legacy_member.create ~self:name ~leader ~password ~rng in
        Hashtbl.replace members name m;
        Netsim.Network.register net name (fun bytes ->
            send_frames net ~src:name (Legacy_member.receive m bytes)))
      directory;
    { sim; net; leader = l; members }

  let sim t = t.sim
  let net t = t.net
  let leader t = t.leader

  let member t who =
    match Hashtbl.find_opt t.members who with
    | Some m -> m
    | None -> raise Not_found

  let join t who =
    send_frames t.net ~src:who (Legacy_member.join (member t who))

  let leave t who =
    send_frames t.net ~src:who (Legacy_member.leave (member t who))

  let send_app t who body =
    send_frames t.net ~src:who (Legacy_member.send_app (member t who) body)

  let rekey t =
    send_frames t.net ~src:(Legacy_leader.self t.leader)
      (Legacy_leader.rekey t.leader)

  let run ?until t = Netsim.Sim.run ?until t.sim
end
