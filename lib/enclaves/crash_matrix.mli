(** ALICE-style crash-consistency matrix for the durable journal.

    Runs a deterministic journal workload — establishments, closes
    (including a close-then-re-establish), epoch bumps, several
    compactions — against a {!Store.Crashpoint} recorder, enumerates
    {e every} disk image a crash could leave behind (durable/volatile
    views at each operation boundary plus torn-write prefixes), and
    replays each through {!Journal.replay} and {!Leader.recover}.

    Invariants checked on every image:
    - {b totality} — replay and leader recovery never raise;
    - {b non-resurrection} — a session whose last surviving record is
      a close never reappears in the recovered state;
    - {b epoch monotonicity} — the recovered epoch counter dominates
      every journalled epoch, and the durable epoch floor never moves
      backward across boundaries in time order.

    Plus {b durability} at every acknowledged checkpoint: once a
    journal mutation returns, the durable image replays [Clean] to
    exactly the acknowledged state.

    [make crash-matrix] runs this via the CLI and fails CI on any
    violation. *)

type violation = {
  image : string;  (** crash-point label, e.g. ["boundary 12: durable"] *)
  invariant : string;  (** which invariant broke *)
  detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

type report = {
  ops : int;  (** backend operations the workload performed *)
  boundaries : int;  (** crash boundaries enumerated (ops + 1) *)
  images : int;  (** disk images checked *)
  unique_images : int;  (** distinct disk states among them *)
  clean : int;  (** images whose journal replayed [Clean] *)
  damaged : int;  (** images recovered as a valid strict prefix *)
  checkpoints : int;  (** durability checkpoints verified *)
  violations : violation list;  (** empty iff the matrix passed *)
}

val pp_report : Format.formatter -> report -> unit

val run :
  ?members:int ->
  ?appends:int ->
  ?compact_every:int ->
  ?seed:int64 ->
  ?torn:bool ->
  unit ->
  report
(** [run ()] executes the workload and checks every crash image.
    Defaults: 4 members, 24 extra epoch bumps, compaction every 8
    records, seed 11, torn-write variants on. Deterministic for a
    given argument vector. *)

val run_queue :
  ?pushes:int ->
  ?compact_every:int ->
  ?seed:int64 ->
  ?torn:bool ->
  unit ->
  report
(** The same matrix over a store-and-forward delivery queue
    ({!Store.Queue}): pushes across several epochs, a mid-stream
    cumulative ack, a policy drop, and forced compactions past the ack
    floor. Beyond replay/recover totality, asserts the two
    delivery-specific invariants — {b no duplicate-after-replay} (no
    crash image recovers a pending set with a repeated, misordered or
    below-floor delivery seq) and {b no acknowledged-then-lost} (at
    every returned mutation the durable image replays [Clean] to
    exactly the acknowledged state) — plus ack-floor monotonicity
    across boundaries in time order. Defaults: 18 pushes, compaction
    every 6 records, seed 12, torn variants on. *)

val run_degraded :
  ?pushes:int ->
  ?compact_every:int ->
  ?seed:int64 ->
  ?torn:bool ->
  unit ->
  report
(** The queue matrix composed with the resource-fault layer: the
    workload crosses an ENOSPC window mid-stream, so the byte budgets
    shed records, the refused mirror is disarmed, and the re-arm
    {!Delivery.flush} republishes the image once space returns — and
    {e every} crash image of that episode is enumerated and replayed.
    Beyond the {!run_queue} invariants (totality, no
    duplicate-after-replay, floor monotonicity, durability at every
    armed checkpoint), asserts {b no shed-seq resurrection}: once the
    re-arm flush has returned, the durable image replays [Clean] to
    exactly the live state, so no record shed during the episode can
    reappear from any later crash. Defaults: 20 pushes, compaction
    every 64 records, seed 13, torn variants on. *)
