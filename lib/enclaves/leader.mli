(** Improved-protocol group leader — the per-member state machines of
    Figure 3 plus group-level management.

    For each known user the leader runs one session automaton:
    - [NotConnected] — the user is out;
    - [WaitingForKeyAck (Nl, Ka)] — the leader answered an
      [AuthInitReq] with a fresh session key [Ka] and nonce [Nl], and
      waits for the [AuthAckKey] echoing [Nl];
    - [Connected (Na, Ka)] — the user is a member; [Na] is the most
      recent nonce received from the user, to be embedded in the next
      [AdminMsg];
    - [WaitingForAck (Nl, Ka)] — an [AdminMsg] carrying fresh [Nl] is
      outstanding; nothing more is sent to this member until the [Ack]
      echoing [Nl] arrives.

    The nonce chain serialises the admin channel per member, so the
    leader keeps a per-member queue of pending group-management
    payloads and drains it one acknowledgment at a time — this is what
    yields §5.4's "accepted in order, no duplication" property.

    Group-level duties: group-key generation and rekeying (epoch
    counter), membership bookkeeping, join/leave notifications,
    expulsion, and relay of application traffic.

    On session close the leader discards [K_a] and reports it in a
    [Member_closed] event — the paper's [Oops(K_a)]: scenarios hand the
    dead key to the adversary to model compromise of expired session
    keys. *)

type t

type policy = {
  rekey_on_join : bool;  (** Fresh [K_g] whenever a member joins. *)
  rekey_on_leave : bool;  (** Fresh [K_g] whenever a member leaves. *)
  degrade : bool;
      (** Arm the degraded-mode ladder: storage pressure
          ([No_space]/[Stalled] from the backend) triggers compaction,
          then memory-only operation, instead of escaping as an
          exception. Off is the crash-on-pressure baseline the nemesis
          harness measures the ladder against. *)
}

val default_policy : policy
(** Rekey on join and on leave, degraded-mode ladder armed — the
    conservative setting. *)

type mode = Healthy | Durability_degraded | Memory_only | Shedding
(** The degraded-mode ladder, ordered by severity. One-way down inside
    a pressure episode ({!mode} reports the worst rung reached);
    {!try_rearm} recovers to [Healthy] in a single step once the
    store accepts writes again.

    - [Durability_degraded]: a disk mirror was refused; compaction
      freed space (or is about to be retried) and writes are still
      attempted.
    - [Memory_only]: the disk refused even compaction; auth/rekey keep
      being served entirely from memory and nothing touches the
      backend until re-arm.
    - [Shedding]: the delivery byte budgets are actively dropping
      queued records oldest-first (with durable [Drop] markers). *)

val mode : t -> mode
val mode_name : mode -> string
val mode_rank : mode -> int
(** [Healthy] is 0; higher is worse. *)

val degraded_entries : t -> int
(** Ladder transitions taken downward, lifetime. *)

val rearms : t -> int
(** Successful recoveries to [Healthy], lifetime. *)

val durability_armed : t -> bool
(** Whether the journal and delivery mirrors are currently writing
    through ([false] exactly in memory-only operation). *)

val try_rearm : t -> bool
(** Probe the store: re-arm the mirrors and republish journal, queues
    and vault. Any refusal disarms again and returns [false]; success
    returns to [Healthy] and queues the all-clear notice. [true] when
    already healthy. The driver calls this from its periodic scan. *)

val mode_sweep : t -> Wire.Frame.t list
(** The pending "degraded:<mode>" sealed notice, if a ladder
    transition happened since the last sweep. Called at the end of
    {!receive}; exposed for harness-driven transitions (re-arm from a
    scan). *)

type event =
  | Member_authenticated of Types.agent
  | Member_closed of { member : Types.agent; session_key : Sym_crypto.Key.t }
  | Member_expelled of { member : Types.agent; session_key : Sym_crypto.Key.t }
  | Ack_received of Types.agent
  | App_relayed of { author : Types.agent }
  | Member_recovered of Types.agent
      (** A recovery challenge was answered: the journalled session is
          trusted again without a full re-handshake. *)
  | Cold_restart_acked of Types.agent
      (** A member answered this cold incarnation's beacon with a
          liveness challenge and was acked; its rejoin should follow. *)
  | Resync_served of Types.agent
      (** A member reported a divergent view digest and was repaired. *)
  | Rejected of {
      label : Wire.Frame.label option;
      claimed : Types.agent option;
      reason : Types.reject_reason;
    }

val pp_event : Format.formatter -> event -> unit

type session_view =
  | Not_connected
  | Waiting_for_key_ack of Wire.Nonce.t * Sym_crypto.Key.t
  | Connected of Wire.Nonce.t * Sym_crypto.Key.t
  | Waiting_for_ack of Wire.Nonce.t * Sym_crypto.Key.t
  | Recovering of Wire.Nonce.t * Sym_crypto.Key.t
      (** A [RecoveryChallenge] under the journalled [K_a] is
          outstanding; the member is not counted as a member until it
          answers. *)

val create :
  self:Types.agent ->
  rng:Prng.Splitmix.t ->
  directory:(Types.agent * string) list ->
  ?policy:policy ->
  ?journal:Journal.t ->
  ?vault:Store.Vault.t ->
  ?delivery:Delivery.t ->
  ?sentinel:Sentinel.t ->
  unit ->
  t
(** [create ~self ~rng ~directory ()] builds a leader knowing the
    password of every prospective member in [directory]. When
    [journal] is given, session establishments and closes and
    group-key epoch bumps are appended to it as they happen. When
    [vault] is given, every granted epoch is also written to the
    durable epoch vault at grant time — a second, tail-independent
    write path that survives losing the journal's last record. *)

val create_with_keys :
  self:Types.agent ->
  rng:Prng.Splitmix.t ->
  directory:(Types.agent * Sym_crypto.Key.t) list ->
  ?policy:policy ->
  ?journal:Journal.t ->
  ?vault:Store.Vault.t ->
  ?delivery:Delivery.t ->
  ?sentinel:Sentinel.t ->
  unit ->
  t
(** Like {!create} but with explicit long-term keys per member — used
    by {!Pk_auth}.
    @raise Invalid_argument if any key kind is not [Long_term]. *)

val recover :
  self:Types.agent ->
  rng:Prng.Splitmix.t ->
  directory:(Types.agent * string) list ->
  ?policy:policy ->
  journal:Journal.t ->
  ?vault:Store.Vault.t ->
  ?delivery:Delivery.t ->
  ?sentinel:Sentinel.t ->
  state:Journal.state ->
  unit ->
  t * Wire.Frame.t list
(** Warm restart from a journal recovered with {!Journal.recover}: the
    group key and epoch counter are restored (the epoch floor also
    honours [vault] when given), and each journalled
    session enters [Recovering] with a [RecoveryChallenge] sealed
    under its [K_a] (the returned frames). No journalled session is
    trusted until its member echoes the challenge nonce
    ({!event.Member_recovered}); a member that never answers is
    dropped with {!abort_recovery} — the cold path. *)

val cold_recover :
  self:Types.agent ->
  rng:Prng.Splitmix.t ->
  directory:(Types.agent * string) list ->
  ?policy:policy ->
  ?journal:Journal.t ->
  ?vault:Store.Vault.t ->
  ?delivery:Delivery.t ->
  ?sentinel:Sentinel.t ->
  state:Journal.state ->
  unit ->
  t * Wire.Frame.t list
(** Cold restart that still announces itself. No journalled session is
    trusted — every member must re-run the full handshake — but the
    journal's surviving prefix supplies two things: the epoch counter
    floor (so the group-key epoch never regresses across a cold
    restart; the floor is re-journalled immediately) and the group
    epoch to stamp into an authenticated [ColdRestart] beacon per
    directory member (the returned frames), sealed under each member's
    long-term [P_a]. When [vault] is given the beacon epoch (and the
    floor) is the {e maximum} of the journal's belief and the vault's
    — this is what closes E19b's residue: a torn tail that loses the
    final [Epoch_bump] record no longer makes the beacon look stale to
    members who saw that bump, because the vault slot survived. Members that verify the beacon challenge this
    leader's liveness and, on the ack, rejoin immediately instead of
    waiting out their anti-entropy watchdog. Only the incarnation
    created by this call answers those challenges. *)

val cold_beacon_epoch : t -> int option
(** [Some epoch] iff this incarnation was built by {!cold_recover}. *)

val cold_acks : t -> int
(** Beacon challenges answered (members told to rejoin). *)

val self : t -> Types.agent
val receive : t -> ?via:Netsim.Trace.via -> string -> Wire.Frame.t list
(** Dispatch one raw inbound frame. [via] is the transport-vouched
    injection path of the frame, when the caller (the driver) has it:
    every rejection scored during the dispatch attributes its sentinel
    evidence to that path rather than to the frame's claimed sender.
    Omitting it degrades to claimed-sender attribution — the right
    default for direct unit-test calls. *)

val session : t -> Types.agent -> session_view
val members : t -> Types.agent list
(** Users currently in session (sorted). *)

val group_key : t -> Types.group_key option

val enqueue_admin : t -> Types.agent -> Wire.Admin.t -> Wire.Frame.t list
(** Queue a group-management payload for one member; returns the
    [AdminMsg] frame immediately if the member's channel is idle.
    Payloads for users not in session are discarded. *)

val broadcast_admin : t -> Wire.Admin.t -> Wire.Frame.t list
(** {!enqueue_admin} to every current member. *)

val rekey : t -> Wire.Frame.t list
(** Generate a fresh group key (next epoch) and distribute it to all
    members via the admin channel. *)

val expel : t -> Types.agent -> Wire.Frame.t list
(** Eject a member: discard its session key (reported via
    [Member_expelled] — an Oops), notify the remaining members, and
    rekey if the policy says so. With a delivery layer, the expelled
    member is additionally marked offline: its unfired channel backlog
    is salvaged into its durable queue, and subsequent broadcasts are
    journalled for it instead of dropped, to be drained when it
    reconnects warm (recovery challenge) or cold (re-join). *)

(** {2 Store-and-forward} *)

val mark_offline : t -> Types.agent -> unit
(** Flag a directory member as offline/partitioned: broadcast traffic
    addressed to it is journalled in the delivery layer (when present)
    instead of dropped. No-op for users not in the directory. *)

val mark_online : t -> Types.agent -> Wire.Frame.t list
(** The partition healed: clear the offline mark and, if the member is
    in session, drain its durable queue into the admin channel (the
    returned frames start the drain). Out of session the mark is kept
    until an actual reconnect drains the queue. *)

val offline_members : t -> Types.agent list
(** Members currently marked offline, sorted. *)

val is_offline : t -> Types.agent -> bool

val delivery : t -> Delivery.t option
(** The store-and-forward layer this leader journals offline traffic
    through, if any. *)

(** {2 Intrusion containment} *)

val sentinel : t -> Sentinel.t option
(** The online intrusion sentinel feeding on this leader's rejection
    stream, if any. Every {!event.Rejected} scores evidence against
    the claimed sender; half-open GCs ({!abort_half_open}) score
    [Half_open]. *)

val containment_sweep : t -> Wire.Frame.t list
(** Contain every directory member the sentinel holds at [Quarantined]
    or above and not yet acted on: tear down its session {e without}
    store-and-forward salvage, durably purge its delivery queue,
    broadcast a ["quarantined:<who>"] notice, and force an emergency
    rekey retiring every key the suspect held. Idempotent — already
    contained suspects are skipped; claimed names outside the
    directory are left to admission control. Runs automatically at the
    end of every {!receive}; the driver's periodic scan calls it too,
    to catch escalations fed by half-open GC between frames.

    The same pass issues {e liveness challenges}: an in-session
    directory member whose raw score is quarantine-level but
    corroboration-blocked (see {!Sentinel.challenge_due}) is sent a
    sealed ["liveness-challenge"] admin notice; the routine sealed ack
    that comes back attests the member is the genuine key holder and
    wipes its off-path (framed) score. *)

val contained_members : t -> Types.agent list
(** Suspects this leader has contained (sorted). *)

val is_contained : t -> Types.agent -> bool

val retransmit : t -> Types.agent -> Wire.Frame.t list
(** The stored outstanding frame for this member, byte-identical to
    its first transmission: the [AuthKeyDist] when
    [WaitingForKeyAck], the [AdminMsg] when [WaitingForAck]; empty
    otherwise. Re-sending advances no state and re-appends nothing to
    [snd_A]. *)

val half_open : t -> Types.agent list
(** Members with an outstanding handshake ([WaitingForKeyAck]),
    sorted — candidates for timeout-driven retransmission or GC. *)

val awaiting_ack : t -> Types.agent list
(** Members with an outstanding [AdminMsg] ([WaitingForAck]),
    sorted. *)

val recovering : t -> Types.agent list
(** Sessions with an outstanding [RecoveryChallenge], sorted —
    candidates for retransmission or {!abort_recovery}. *)

val abort_recovery : t -> Types.agent -> bool
(** Give up on an unanswered recovery challenge: discard the
    journalled key (reported via [Member_closed] — an Oops) and reset
    the session to [NotConnected]. Returns whether a recovery was
    actually aborted. *)

val view_digest : t -> string
(** {!Wire.Admin.view_digest} of the current member list and key
    epoch. *)

val broadcast_view_digest : t -> Wire.Frame.t list
(** Queue a [View_digest] anti-entropy beacon for every member. *)

val recoveries : t -> int
(** Sessions recovered warm (challenges answered) since creation. *)

val resyncs_served : t -> int
(** Divergent view digests repaired since creation. *)

val abort_half_open : t -> Types.agent -> bool
(** Garbage-collect a half-open handshake: reset the session to
    [NotConnected], discarding the provisional session key. The user
    was never a member, so no notices or rekeys are emitted. Returns
    whether a handshake was actually aborted. *)

val sent_admin : t -> Types.agent -> Wire.Admin.t list
(** The ordered list [snd_A]: admin payloads sent to this member in
    its current session (§5.4). Reset when the session closes. *)

val pending_admin : t -> Types.agent -> Wire.Admin.t list
(** Queued payloads not yet put on the wire. *)

val drain_events : t -> event list
