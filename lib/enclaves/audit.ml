open Sym_crypto
module F = Wire.Frame
module P = Wire.Payload

type anomaly =
  | Replayed_admin of { recipient : Types.agent; occurrences : int }
  | Forged_frame of { recipient : Types.agent; label : F.label }
  | Stale_rekey of { recipient : Types.agent; epoch : int; current : int }
  | Stale_delivery of { recipient : Types.agent; seq : int }
  | Handshake_flood of {
      claimed : Types.agent;
      attempts : int;
      via_socket : int;
          (** Attempts that arrived over the claimed sender's own
              connection. *)
      via_foreign : int;  (** Attempts over some other member's socket. *)
      via_wire : int;  (** Raw wire injections with no socket behind them. *)
    }
  | Framing_suspected of {
      victim : Types.agent;
      off_path : int;
      on_path : int;
    }
  | Quarantine of { suspect : Types.agent }
  | Degraded_mode of { mode : string }

let pp_anomaly fmt = function
  | Replayed_admin { recipient; occurrences } ->
      Format.fprintf fmt "admin frame to %s delivered %d times" recipient
        occurrences
  | Forged_frame { recipient; label } ->
      Format.fprintf fmt "forged %s frame delivered to %s"
        (F.label_to_string label) recipient
  | Stale_rekey { recipient; epoch; current } ->
      Format.fprintf fmt
        "stale rekey to %s: delivered epoch %d does not exceed current %d"
        recipient epoch current
  | Stale_delivery { recipient; seq } ->
      Format.fprintf fmt
        "store-and-forward record seq %d delivered to %s beyond the epoch \
         window (flagged stale)"
        seq recipient
  | Handshake_flood { claimed; attempts; via_socket; via_foreign; via_wire } ->
      Format.fprintf fmt
        "%d AuthInitReq frames delivered to the leader claiming to be %s \
         (pre-auth flood; path: %d own socket, %d foreign socket, %d wire)"
        attempts claimed via_socket via_foreign via_wire
  | Framing_suspected { victim; off_path; on_path } ->
      Format.fprintf fmt
        "leader-bound traffic claiming %s is dominated by frames %s provably \
         never originated (%d off-path vs %d on-path) — framing suspected"
        victim victim off_path on_path
  | Quarantine { suspect } ->
      Format.fprintf fmt "the leader quarantined %s (containment notice)"
        suspect
  | Degraded_mode { mode } ->
      Format.fprintf fmt
        "the leader announced degraded mode %S (storage pressure)" mode

type report = {
  handshakes_completed : int;
  admin_delivered : int;
  closes : int;
  anomalies : anomaly list;
}

let clean r = r.anomalies = []

(* Per-member audit state: the long-term key from the directory, the
   session key currently in force (learned from AuthKeyDist), and the
   highest group-key epoch genuinely delivered to this member. *)
type session = { pa : Key.t; mutable ka : Key.t option; mutable epoch : int }

let quarantine_prefix = "quarantined:"

let quarantined_of note =
  let n = String.length quarantine_prefix in
  if String.length note > n && String.sub note 0 n = quarantine_prefix then
    Some (String.sub note n (String.length note - n))
  else None

let degraded_prefix = "degraded:"

let degraded_of note =
  let n = String.length degraded_prefix in
  if String.length note > n && String.sub note 0 n = degraded_prefix then
    Some (String.sub note n (String.length note - n))
  else None

let run ?(flood_threshold = 10) ~directory ~leader trace =
  let sessions = Hashtbl.create 8 in
  List.iter
    (fun (user, password) ->
      Hashtbl.replace sessions user
        { pa = Key.long_term ~user ~password; ka = None; epoch = 0 })
    directory;
  let handshakes = ref 0 and admin = ref 0 and closes = ref 0 in
  let anomalies = ref [] in
  (* Count deliveries of identical admin frames per recipient. *)
  let admin_seen : (string, int) Hashtbl.t = Hashtbl.create 64 in
  (* Pre-auth handshake pressure per claimed sender — split by the
     injection path the trace vouches for — and quarantine notices
     already surfaced (one anomaly per suspect, not one per notified
     member). *)
  let preauth_seen : (string, int * int * int) Hashtbl.t = Hashtbl.create 16 in
  (* Injection-path split of ALL leader-bound frames per claimed
     sender, pre-auth or not: the replay flavor of framing rides
     sealed session traffic, not handshakes. *)
  let paths_seen : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  let quarantined : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  (* Degraded-mode announcements already surfaced (one anomaly per
     announced rung, however many members heard the broadcast; the
     "healthy" all-clear is operational news, not an anomaly). *)
  let degraded_seen : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let member_of (frame : F.t) ~field =
    Hashtbl.find_opt sessions (field frame)
  in
  let flag a = anomalies := a :: !anomalies in
  (* Is this frame on-path for its claimed sender? The trace's [via]
     is transport truth: [Via_socket claimed] means the claimed sender
     (or a full compromise of its endpoint) really originated it;
     anything else means it provably did not. *)
  let on_path (frame : F.t) via =
    match via with
    | Netsim.Trace.Via_socket owner -> owner = frame.F.sender
    | Netsim.Trace.Via_wire -> false
  in
  let audit_delivery ~via payload =
    match F.decode payload with
    | Error _ -> ()
    | Ok frame ->
        if frame.F.recipient = leader && Hashtbl.mem sessions frame.F.sender
        then begin
          let onp, offp =
            Option.value ~default:(0, 0)
              (Hashtbl.find_opt paths_seen frame.F.sender)
          in
          Hashtbl.replace paths_seen frame.F.sender
            (if on_path frame via then (onp + 1, offp) else (onp, offp + 1))
        end;
        (match frame.F.label with
        | F.Auth_key_dist -> (
            (* Leader -> member: opens under the member's P_a. *)
            match member_of frame ~field:(fun f -> f.F.recipient) with
            | None -> ()
            | Some s -> (
                match Sealed_channel.open_ ~key:s.pa frame with
                | Ok plaintext -> (
                    match P.decode_auth_key_dist plaintext with
                    | Ok { P.ka; _ } when String.length ka = Key.size ->
                        (* Idempotent duplicate replies install the
                           same key; count distinct keys only. *)
                        let key = Key.of_raw Key.Session ka in
                        (match s.ka with
                        | Some k when Key.equal k key -> ()
                        | _ ->
                            s.ka <- Some key;
                            incr handshakes)
                    | Ok _ | Error _ ->
                        flag
                          (Forged_frame
                             { recipient = frame.F.recipient; label = frame.F.label }))
                | Error _ ->
                    (* Sealed under something other than P_a: either a
                       forgery or a frame for a session the directory
                       does not cover. Flag it. *)
                    flag
                      (Forged_frame
                         { recipient = frame.F.recipient; label = frame.F.label })))
        | F.Admin_msg -> (
            match member_of frame ~field:(fun f -> f.F.recipient) with
            | None -> ()
            | Some ({ ka = Some key; _ } as s) -> (
                match Sealed_channel.open_ ~key frame with
                | Ok plaintext ->
                    incr admin;
                    let first = not (Hashtbl.mem admin_seen payload) in
                    let count =
                      1
                      + Option.value ~default:0 (Hashtbl.find_opt admin_seen payload)
                    in
                    Hashtbl.replace admin_seen payload count;
                    (* Epoch regression check on DISTINCT payloads only:
                       a network-duplicated frame is already reported as
                       Replayed_admin, not also as a stale rekey. *)
                    if first then (
                      match P.decode_admin_body plaintext with
                      | Ok { P.x = Wire.Admin.New_group_key { epoch; _ }; _ }
                        ->
                          if epoch <= s.epoch then
                            flag
                              (Stale_rekey
                                 {
                                   recipient = frame.F.recipient;
                                   epoch;
                                   current = s.epoch;
                                 })
                          else s.epoch <- epoch
                      | Ok { P.x = Wire.Admin.Queued { seq; stale; x }; _ } ->
                          (* Drained store-and-forward traffic. A
                             stale-flagged record is the epoch-window
                             policy's deliver-as-stale arm — exactly
                             what the auditor must surface. A fresh
                             drained rekey may legitimately repeat the
                             member's current epoch (the live rekey
                             raced the drain and the leader freshened
                             the wrapper), so only a strict regression
                             is anomalous. *)
                          if stale then
                            flag
                              (Stale_delivery
                                 { recipient = frame.F.recipient; seq })
                          else (
                            match x with
                            | Wire.Admin.New_group_key { epoch; _ } ->
                                if epoch < s.epoch then
                                  flag
                                    (Stale_rekey
                                       {
                                         recipient = frame.F.recipient;
                                         epoch;
                                         current = s.epoch;
                                       })
                                else s.epoch <- max s.epoch epoch
                            | _ -> ())
                      | Ok { P.x = Wire.Admin.Notice note; _ } -> (
                          (* A containment broadcast: the leader
                             quarantined a suspect. One anomaly per
                             suspect, however many members heard it. *)
                          match quarantined_of note with
                          | Some suspect
                            when not (Hashtbl.mem quarantined suspect) ->
                              Hashtbl.replace quarantined suspect ();
                              flag (Quarantine { suspect })
                          | Some _ -> ()
                          | None -> (
                              match degraded_of note with
                              | Some mode
                                when mode <> "healthy"
                                     && not (Hashtbl.mem degraded_seen mode)
                                ->
                                  Hashtbl.replace degraded_seen mode ();
                                  flag (Degraded_mode { mode })
                              | Some _ | None -> ()))
                      | Ok _ | Error _ -> ())
                | Error _ ->
                    flag
                      (Forged_frame
                         { recipient = frame.F.recipient; label = frame.F.label }))
            | Some { ka = None; _ } ->
                flag
                  (Forged_frame
                     { recipient = frame.F.recipient; label = frame.F.label }))
        | F.Req_close -> (
            (* Member -> leader: opens under the member's session key. *)
            match member_of frame ~field:(fun f -> f.F.sender) with
            | Some ({ ka = Some key; _ } as s)
              when frame.F.recipient = leader -> (
                match Sealed_channel.open_ ~key frame with
                | Ok _ ->
                    incr closes;
                    s.ka <- None
                | Error _ ->
                    (* Possibly a replay from an earlier session of the
                       same member: authentic-looking only under a
                       retired key. The live leader rejects it; the
                       auditor reports it as forged for this session. *)
                    flag
                      (Forged_frame
                         { recipient = frame.F.recipient; label = frame.F.label }))
            | _ -> ())
        | F.Auth_init_req ->
            (* Pre-auth pressure per claimed sender, split by injection
               path. The frames need not be valid — the flood signal is
               volume on the unauthenticated surface, which no key
               check filters — but the path tells an operator whether
               the claimed name or the wire is the problem. *)
            if frame.F.recipient = leader then begin
              let socket, foreign, wire =
                Option.value ~default:(0, 0, 0)
                  (Hashtbl.find_opt preauth_seen frame.F.sender)
              in
              let counts =
                match via with
                | Netsim.Trace.Via_wire -> (socket, foreign, wire + 1)
                | Netsim.Trace.Via_socket owner when owner = frame.F.sender ->
                    (socket + 1, foreign, wire)
                | Netsim.Trace.Via_socket _ -> (socket, foreign + 1, wire)
              in
              Hashtbl.replace preauth_seen frame.F.sender counts
            end
        | _ -> ())
  in
  List.iter
    (function
      | Netsim.Trace.Delivered { payload; via; _ } -> audit_delivery ~via payload
      | Netsim.Trace.Sent _ | Netsim.Trace.Dropped _ | Netsim.Trace.Injected _
        ->
          ())
    (Netsim.Trace.entries trace);
  Hashtbl.iter
    (fun payload count ->
      if count > 1 then
        match F.decode payload with
        | Ok frame ->
            flag (Replayed_admin { recipient = frame.F.recipient; occurrences = count })
        | Error _ -> ())
    admin_seen;
  Hashtbl.iter
    (fun claimed (via_socket, via_foreign, via_wire) ->
      let attempts = via_socket + via_foreign + via_wire in
      if attempts > flood_threshold then
        flag
          (Handshake_flood
             { claimed; attempts; via_socket; via_foreign; via_wire }))
    preauth_seen;
  (* Framing detector: a directory member whose leader-bound traffic
     volume is flood-grade AND dominated by frames it provably never
     originated (off-path per the transport's [via]) is being framed —
     whatever evidence that traffic generated belongs to the injector,
     not the member. *)
  Hashtbl.iter
    (fun victim (on_path, off_path) ->
      if off_path > flood_threshold && off_path > on_path then
        flag (Framing_suspected { victim; off_path; on_path }))
    paths_seen;
  {
    handshakes_completed = !handshakes;
    admin_delivered = !admin;
    closes = !closes;
    anomalies = List.rev !anomalies;
  }
