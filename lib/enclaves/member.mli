(** Improved-protocol group member — the user state machine of
    Figure 2.

    A member is in one of three protocol states:
    - [NotConnected] — out of the group;
    - [WaitingForKey N1] — sent [AuthInitReq] carrying fresh nonce
      [N1], awaiting the leader's [AuthKeyDist];
    - [Connected (Na, Ka)] — in session with key [Ka]; [Na] is the last
      nonce this member generated and is the freshness evidence the
      next [AdminMsg] from the leader must present.

    Beyond the Figure 2 skeleton the member tracks the application
    state an Enclaves user needs: the current group key (delivered in
    [New_group_key] admin messages), its view of the membership, the
    ordered log of accepted admin messages ([rcv_A] of §5.4), and
    decrypted application traffic.

    Any frame that fails authentication, parsing, an identity check, a
    nonce check, or arrives in the wrong state is {e rejected}: the
    member's protocol state does not change and a [Rejected] event is
    recorded. This silent-drop discipline is the intrusion tolerance —
    attacker bytes cannot make the automaton move.

    One carve-out makes the automaton retransmission-tolerant without
    weakening that discipline: an authenticated {e duplicate} of the
    last frame this member already answered (an [AuthKeyDist] whose
    [N2] it already acked, or an [AdminMsg] whose nonce it already
    acked) elicits a re-send of the stored answer — a frame that was
    already on the wire — with no state change and no fresh
    randomness. Lost acks therefore heal instead of wedging the peer,
    and a replaying attacker gains nothing. *)

type t

type event =
  | Joined of { session_key : Sym_crypto.Key.t }
  | Admin_accepted of Wire.Admin.t
  | App_received of { author : Types.agent; body : string }
  | Left
  | Recovery_challenged of { from : Types.agent }
      (** [from] proved possession of [K_a]; the admin nonce chain was
          re-seeded and the §5.4 log restarted. [from] is usually the
          leader that restarted, but may be a warm-promoted successor
          manager that recovered the session from the replicated
          journal — in that case this member retargeted its leader to
          [from] (the {e warm handoff}: session key, group key and
          view all survive). *)
  | Cold_beacon_challenged of { epoch : int }
      (** A [ColdRestart] beacon verified under [P_a]; a liveness
          challenge was sent back. The session is untouched. *)
  | Beacon_reset of { epoch : int }
      (** The leader answered the challenge: the dead session was
          dropped and a rejoin started — without waiting for the
          anti-entropy watchdog. *)
  | View_diverged of { leader_epoch : int }
      (** A [View_digest] beacon did not match this member's own view;
          a resync request was sent. *)
  | Rejected of { label : Wire.Frame.label option; reason : Types.reject_reason }

val pp_event : Format.formatter -> event -> unit

type state_view =
  | Not_connected
  | Waiting_for_key of Wire.Nonce.t
  | Connected of Wire.Nonce.t * Sym_crypto.Key.t

val create :
  self:Types.agent -> leader:Types.agent -> password:string ->
  rng:Prng.Splitmix.t -> t
(** [create ~self ~leader ~password ~rng] builds a member holding the
    long-term key [P_a] derived from [password]. *)

val create_with_key :
  self:Types.agent -> leader:Types.agent -> long_term:Sym_crypto.Key.t ->
  rng:Prng.Splitmix.t -> t
(** Like {!create} but with explicit long-term key material — used by
    {!Pk_auth} for the public-key authentication variant.
    @raise Invalid_argument if the key kind is not [Long_term]. *)

val self : t -> Types.agent

val leader : t -> Types.agent
(** The manager this member currently follows — the [leader] it was
    created with until a warm handoff retargets it (see
    [Recovery_challenged]). *)

val state : t -> state_view
val is_connected : t -> bool

val join : t -> Wire.Frame.t list
(** Start the §3.2 handshake: emits [AuthInitReq]. No-op (empty list)
    unless [NotConnected]. *)

val retransmit_join : t -> Wire.Frame.t list
(** The stored [AuthInitReq] of the outstanding handshake, for
    timeout-driven retransmission; empty unless [WaitingForKey]. The
    same frame (same [N1]) is re-sent, so the leader recognises the
    duplicate and answers with its stored [AuthKeyDist]. *)

val leave : t -> Wire.Frame.t list
(** Emit [ReqClose] sealed under [K_a] and drop to [NotConnected].
    No-op unless connected. *)

val receive : t -> string -> Wire.Frame.t list
(** Feed raw network bytes; returns frames to send in response. *)

val send_app : t -> string -> Wire.Frame.t list
(** Encrypt an application message under the current group key and
    address it to the leader for relay. Empty if no group key yet. *)

val group_key : t -> Types.group_key option
val group_view : t -> Types.agent list
(** This member's belief about current membership (sorted). *)

val accepted_admin : t -> Wire.Admin.t list
(** The ordered list [rcv_A]: every admin message accepted so far in
    the current session. Reset on leave. *)

val app_log : t -> (Types.agent * string) list
(** Decrypted application messages, oldest first. *)

val resync_request : t -> Wire.Frame.t list
(** A [ViewResyncReq] carrying this member's own view digest and key
    epoch, sealed under [K_a] — sent spontaneously as a liveness probe
    or automatically when a beacon mismatches. Empty unless
    connected. *)

val digests_seen : t -> int
(** [View_digest] beacons accepted (cumulative). *)

val view_divergences : t -> int
(** Beacons that mismatched this member's own view (cumulative). *)

val delivery_floor : t -> int
(** Store-and-forward dedup floor: every [Queued] wrapper with a seq
    below this has been applied. Cumulative — survives session resets,
    so at-least-once redelivery after a reconnect is absorbed rather
    than applied twice. *)

val deliveries_deduped : t -> int
(** Drained [Queued] records skipped as duplicates (cumulative). *)

val stale_deliveries : t -> int
(** Drained records marked stale by the leader's epoch-window policy —
    recorded but applied with no state effect (cumulative). *)

val queued_applied : t -> int list
(** Delivery seqs applied so far, in application order — the churn
    harness asserts these are duplicate-free. *)

val consume_beacon_reset : t -> bool
(** [true] exactly once after a completed cold-restart beacon
    handshake reset this member's session — the driver's hook for
    counting beacon re-authentications and re-arming watchdogs. *)

val drain_events : t -> event list
(** Events since the last drain, oldest first. *)

val session_key : t -> Sym_crypto.Key.t option
(** [K_a] when connected (exposed for tests and Oops modelling). *)
