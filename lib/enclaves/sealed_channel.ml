open Sym_crypto

let build ~rng ~key ~label ~sender ~recipient ~ad plaintext =
  let iv = Aead.random_iv rng in
  let sealed = Aead.seal ~key ~iv ~ad plaintext in
  Wire.Frame.make ~label ~sender ~recipient ~body:(Aead.encode sealed)

let open_with ~key ~ad (frame : Wire.Frame.t) =
  match Aead.decode frame.Wire.Frame.body with
  | Error e -> Error (Types.Malformed e)
  | Ok sealed -> (
      match Aead.open_ ~key ~ad sealed with
      | Ok plaintext -> Ok plaintext
      | Error `Auth_failure -> Error Types.Auth_failure)

let seal ~rng ~key ~label ~sender ~recipient plaintext =
  let ad = Wire.Frame.header_ad ~label ~sender ~recipient in
  build ~rng ~key ~label ~sender ~recipient ~ad plaintext

let open_ ~key frame = open_with ~key ~ad:(Wire.Frame.ad frame) frame

let legacy_seal ~rng ~key ~label ~sender ~recipient plaintext =
  build ~rng ~key ~label ~sender ~recipient ~ad:"" plaintext

let legacy_open ~key frame = open_with ~key ~ad:"" frame

let group_ad label = "group:" ^ Wire.Frame.label_to_string label

let seal_group ~rng ~key ~label ~sender ~recipient plaintext =
  build ~rng ~key ~label ~sender ~recipient ~ad:(group_ad label) plaintext

let open_group ~key (frame : Wire.Frame.t) =
  open_with ~key ~ad:(group_ad frame.Wire.Frame.label) frame
