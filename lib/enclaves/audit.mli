(** Offline trace auditing — intrusion {e detection} to complement the
    protocol's intrusion {e tolerance}.

    The leader's operator (who legitimately holds every member's
    long-term key) can replay a recorded network trace after the fact
    and re-derive what happened: which handshakes completed, which
    session keys were established, which admin frames were genuine,
    and — the interesting part — which delivered frames were {e
    replays} (byte-identical admin frames delivered more than once) or
    {e forgeries} (frames that fail authentication under the session
    key in force at the time). The §3.2 protocol guarantees members
    reject these; the auditor makes the attack attempts visible
    instead of silent.

    The auditor is a pure function of the trace and the key directory:
    it never touches live protocol state, so it can run on archived
    traces. *)

type anomaly =
  | Replayed_admin of { recipient : Types.agent; occurrences : int }
      (** One admin frame delivered [occurrences] (>1) times. *)
  | Forged_frame of { recipient : Types.agent; label : Wire.Frame.label }
      (** A delivered protocol frame that fails authentication under
          the session key the auditor derived for that member. *)
  | Stale_rekey of { recipient : Types.agent; epoch : int; current : int }
      (** An authentic, first-seen [New_group_key] delivery whose
          epoch does not exceed the highest epoch already delivered to
          that member — a replayed or misordered rekey that a correct
          member must not install. Byte-identical duplicates are
          reported as [Replayed_admin] only. *)
  | Stale_delivery of { recipient : Types.agent; seq : int }
      (** A store-and-forward record drained beyond the epoch-window
          policy's width and delivered flagged stale — legitimate
          protocol behaviour (the member applies no state effect), but
          always surfaced by the auditor so an operator can see which
          queued traffic outlived its epoch. *)
  | Handshake_flood of {
      claimed : Types.agent;
      attempts : int;
      via_socket : int;
      via_foreign : int;
      via_wire : int;
    }
      (** More than [flood_threshold] [AuthInitReq] frames delivered
          to the leader under one claimed sender — pre-auth flood
          pressure on the unauthenticated surface. The frames need not
          be valid; the signal is volume. [attempts] is split by the
          injection path the trace vouches for: the claimed sender's
          own socket, some other member's socket, or the raw wire —
          telling an operator whether the named member or the wire is
          the problem. *)
  | Framing_suspected of {
      victim : Types.agent;
      off_path : int;
      on_path : int;
    }
      (** Flood-grade leader-bound traffic claiming a directory member
          is dominated by frames that member {e provably never
          originated} (delivered over someone else's socket or the raw
          wire). Whatever evidence that traffic generated belongs to
          the injector, not the member — the offline signature of a
          framing campaign. *)
  | Quarantine of { suspect : Types.agent }
      (** The leader broadcast a ["quarantined:<suspect>"] containment
          notice — the online sentinel expelled a suspected insider.
          Reported once per suspect, however many members heard it. *)
  | Degraded_mode of { mode : string }
      (** The leader broadcast a ["degraded:<mode>"] notice — storage
          pressure pushed it down the degraded-mode ladder
          (durability-degraded, memory-only or shedding). Reported
          once per announced rung; the ["healthy"] all-clear after a
          re-arm is not an anomaly. *)

val pp_anomaly : Format.formatter -> anomaly -> unit

type report = {
  handshakes_completed : int;  (** AuthKeyDist frames whose key was derived. *)
  admin_delivered : int;  (** Genuine admin deliveries (incl. repeats). *)
  closes : int;  (** Authentic ReqClose frames observed. *)
  anomalies : anomaly list;
}

val clean : report -> bool
(** No anomalies. *)

val run :
  ?flood_threshold:int ->
  directory:(Types.agent * string) list ->
  leader:Types.agent ->
  Netsim.Trace.t ->
  report
(** [run ~directory ~leader trace] audits every [Delivered] entry of
    the trace in order. Sessions are tracked per member: an
    [AuthKeyDist] opened under the member's [P_a] installs the session
    key the subsequent frames are checked against; an authentic
    [ReqClose] retires it. [flood_threshold] (default 10) is the
    per-claimed-sender [AuthInitReq] delivery count above which a
    {!anomaly.Handshake_flood} is flagged. *)
