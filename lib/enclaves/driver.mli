(** Scenario driver: wires leaders and members onto the {!Netsim}
    network and dispatches the frames the state machines emit.

    The driver is how examples, tests, benches and attacks run whole
    protocols: build a cluster, schedule joins/leaves/messages at
    virtual times, [run] the simulation, then inspect member views,
    leader state, events and the network trace.

    {!Improved} drives the §3.2 protocol; {!Legacy} drives the §2.2
    baseline. Both expose {!Improved.prefix_ok}-style checks used to
    validate §5.4's ordering property at runtime. *)

module Improved : sig
  type t

  (** Tuning for the timeout/retry/backoff layer. All delays are
      virtual time; the jittered backoff draws from a PRNG split off
      the simulation seed, so retry schedules replay
      deterministically. *)
  type retry_config = {
    handshake_initial : Netsim.Vtime.t;
        (** First member-side retransmission delay. *)
    handshake_max : Netsim.Vtime.t;  (** Backoff cap. *)
    backoff : float;  (** Delay multiplier per attempt (e.g. [2.0]). *)
    jitter : float;
        (** Each delay is scaled by a uniform factor in
            [1-jitter, 1+jitter]. *)
    scan_period : Netsim.Vtime.t;
        (** Leader-side scan period for outstanding
            [AuthKeyDist]/[AdminMsg] frames. *)
    half_open_gc : Netsim.Vtime.t;
        (** Age after which a stalled half-open handshake is
            garbage-collected on the leader. *)
  }

  val default_retry : retry_config
  (** 250 ms initial, 4 s cap, ×2 backoff, ±20% jitter, 200 ms scans,
      3 s half-open GC. *)

  (** Counters for the recovery layer, for chaos reports. *)
  type retry_stats = {
    mutable handshake_retransmits : int;  (** Member re-sent [AuthInitReq]. *)
    mutable keydist_retransmits : int;  (** Leader re-sent [AuthKeyDist]. *)
    mutable admin_retransmits : int;  (** Leader re-sent an [AdminMsg]. *)
    mutable half_open_gcs : int;  (** Stalled handshakes collected. *)
    mutable session_resets : int;
        (** Member sessions torn down and restarted after
            authenticating without ever receiving the group key. *)
  }

  (** Tuning for the durability/anti-entropy layer. All delays are
      virtual time. *)
  type recovery_config = {
    digest_period : Netsim.Vtime.t;
        (** Period of the leader's [View_digest] beacon broadcast, and
            the tick of the member-side anti-entropy watchdog. *)
    challenge_timeout : Netsim.Vtime.t;
        (** How long a restarted leader retransmits an unanswered
            [RecoveryChallenge] before dropping the journalled session
            (cold fallback). *)
    probe_after : Netsim.Vtime.t;
        (** Beacon silence after which a keyed member probes the
            leader with its own digest ([ViewResyncReq]). *)
    reset_after : Netsim.Vtime.t;
        (** Beacon silence after which the member gives up on the
            session entirely and cold re-authenticates. Must exceed
            [probe_after]. *)
    beacon_on_cold : bool;
        (** Broadcast authenticated [ColdRestart] beacons on a cold
            restart ({!Leader.cold_recover}), letting members rejoin
            immediately instead of waiting out [reset_after]. Disable
            to measure the watchdog-only baseline. *)
  }

  val default_recovery : recovery_config
  (** 1 s beacons, 3 s challenge timeout, probe at 4 s of silence,
      cold reset at 10 s, beacons on cold restart enabled. *)

  (** Counters for the crash-recovery and anti-entropy layer. *)
  type recovery_stats = {
    mutable leader_crashes : int;
    mutable warm_restarts : int;
    mutable cold_restarts : int;
    mutable challenges_sent : int;  (** Initial challenges at restart. *)
    mutable challenge_retransmits : int;
    mutable challenges_failed : int;
        (** Journalled sessions dropped after [challenge_timeout]. *)
    mutable digests_broadcast : int;  (** Beacons enqueued (per member). *)
    mutable probes_sent : int;  (** Member-initiated resync probes. *)
    mutable cold_reauths : int;
        (** Members that gave up on a silent session and rejoined from
            scratch. *)
    mutable cold_beacons_sent : int;
        (** [ColdRestart] beacons broadcast by cold-restarted leaders. *)
    mutable beacon_reauths : int;
        (** Members that rejoined via the beacon shortcut instead of
            waiting out the [reset_after] watchdog. *)
    mutable crash_images : int;
        (** Restarts recovered from a captured durable crash image. *)
  }

  (** Tuning for pre-auth flood control: a bounded FIFO in front of
      the leader's unauthenticated handshake path, served in jittered
      batches. *)
  type preauth_config = {
    capacity : int;  (** Queue bound; arrivals beyond it tail-drop. *)
    period : Netsim.Vtime.t;  (** Service tick (±25% jitter). *)
    burst : int;  (** Handshakes served per tick. *)
  }

  val default_preauth : preauth_config
  (** 32-slot queue, 4 handshakes per 50 ms tick. *)

  val create :
    ?seed:int64 ->
    ?latency_us:int * int ->
    ?policy:Leader.policy ->
    ?retry:retry_config ->
    ?recovery:recovery_config ->
    ?storage_faults:Store.Fault.config ->
    ?delivery:Delivery.policy ->
    ?delivery_budgets:Delivery.budgets ->
    ?preauth:preauth_config ->
    ?intrusion:Sentinel.config ->
    leader:Types.agent ->
    directory:(Types.agent * string) list ->
    unit ->
    t
  (** Build a cluster: one leader plus a member automaton for every
      directory entry, all attached to a fresh simulated network.

      With [retry] set, the driver also runs the recovery layer:
      member handshakes are retransmitted with capped exponential
      backoff and jitter, the leader periodically re-sends outstanding
      [AuthKeyDist]/[AdminMsg] frames and garbage-collects half-open
      handshakes, and authenticated-but-keyless sessions are reset.
      The leader scan is an [until]-less periodic task, so runs with
      [retry] should bound execution via {!run}[ ~until] or call
      {!stop_retry} to let the queue drain. Without [retry] the driver
      behaves exactly as before (single-shot sends).

      With [recovery] set, the driver additionally journals the
      leader's trust-critical state, broadcasts periodic [View_digest]
      beacons, runs a member-side anti-entropy watchdog
      (probe-then-cold-reset on beacon silence), and supports
      {!crash_leader}/{!restart_leader}. Like the leader scan, these
      are periodic tasks: bound runs with {!run}[ ~until] or
      {!stop_retry}.

      With [recovery] set the journal also writes through a simulated
      disk ({!Store.Mem}); [storage_faults] additionally wraps the
      disk in the seeded fault layer ({!Store.Fault}), injecting torn
      writes, short writes, dropped fsyncs and transient EIO into the
      journal's write path. A subsequent {!crash_leader} captures the
      {e durable} disk image, and {!restart_leader} recovers from that
      image — so unsynced bytes really die in the crash.

      With [delivery] set, the leader additionally runs a
      store-and-forward {!Delivery} layer under the given epoch-window
      policy, on the same (possibly fault-wrapped) backend as the
      journal when recovery is on: traffic for members marked offline
      ({!mark_offline}, or expelled-as-silent) is durably queued and
      drained at reconnect. {!crash_leader} captures each queue file's
      durable image and {!restart_leader} rebuilds the layer from
      those images, so acknowledged deliveries survive the crash and
      unacknowledged ones re-drain (the member's delivery floor
      absorbs the duplicates). [delivery_budgets] additionally bounds
      the queues' memory: once a per-member or global byte budget is
      crossed, the layer sheds oldest-first with durable [Drop]
      markers, and the leader notes the pressure on its degraded-mode
      ladder.

      With [preauth] set, [AuthInitReq] frames wait in a bounded FIFO
      and are served in jittered batches instead of reaching the
      leader on arrival — a pre-auth flood pays in queueing delay and
      tail drops, not leader work. With [intrusion] set, the driver
      runs one {!Sentinel} on the simulator clock, threads it into
      every leader incarnation (suspicion and quarantines survive
      restarts), applies {!Sentinel.admit_preauth} at the queue door,
      and dispatches {!Leader.containment_sweep} from its periodic
      scan and after every service tick. *)

  val sim : t -> Netsim.Sim.t
  val net : t -> Netsim.Network.t
  val leader : t -> Leader.t

  val member : t -> Types.agent -> Member.t
  (** @raise Not_found for agents outside the directory. *)

  val join : t -> Types.agent -> unit
  (** Emit the member's [AuthInitReq] now (at the current virtual
      time). With [retry] enabled, also start the member's handshake
      retransmission watchdog. *)

  val retry_stats : t -> retry_stats
  val recovery_stats : t -> recovery_stats

  val retry_counters : t -> (string * int) list
  (** {!retry_stats} as labelled counters for
      {!Netsim.Stats.pp_named}. *)

  val recovery_counters : t -> (string * int) list
  (** {!recovery_stats} plus the derived totals
      ([sessions_recovered], [divergences_detected], [resyncs_served])
      as labelled counters. *)

  val storage_stats : t -> Netsim.Stats.storage
  (** What the storage-fault layer did to the journal so far:
      injection counters from {!Store.Fault}, EIO retries absorbed by
      the journal (summed across leader incarnations), and crash
      images replayed. All zero when [storage_faults] was not given. *)

  val storage_counters : t -> (string * int) list
  (** {!storage_stats} as labelled counters for
      {!Netsim.Stats.pp_named}. *)

  (** {2 Resource pressure and the degraded-mode ladder} *)

  val fault : t -> Store.Fault.t option
  (** The seeded fault layer under the leader's storage, when
      [storage_faults] was given — the harness's handle for turning
      disk pressure on and off mid-run ({!Store.Fault.set_space_budget},
      {!Store.Fault.heal_stall}). One instance outlives every leader
      incarnation. *)

  val leader_mode : t -> Leader.mode
  (** The current leader incarnation's degraded-mode rung. A restarted
      leader starts back at [Healthy] and re-degrades if storage
      pressure persists. *)

  val durability_armed : t -> bool
  (** {!Leader.durability_armed} of the current incarnation. *)

  val degraded_entries : t -> int
  (** Ladder rung entries, summed across leader incarnations. *)

  val rearms : t -> int
  (** Successful re-arms back to [Healthy], summed across leader
      incarnations. *)

  val set_space_budget : t -> int option -> unit
  (** Adjust the simulated disk's byte budget mid-run (no-op without
      [storage_faults]). [None] lifts the pressure; the leader's next
      scan tick then re-arms durability. *)

  val heal_stall : t -> unit
  (** Clear a persistent write stall (no-op without
      [storage_faults]). *)

  val trigger_stall : t -> unit
  (** Trip the persistent write stall now (no-op without
      [storage_faults]). *)

  val disk_bytes_used : t -> int
  (** Bytes the fault layer currently accounts to the simulated disk
      (0 without [storage_faults]). *)

  val resource_stats : ?repl_snapshots:int -> t -> Netsim.Stats.resource
  (** Resource-pressure counters summed across leader incarnations:
      ladder entries, records shed under byte budgets, ENOSPC refusals
      and the worst fsync stall from the fault layer. The driver does
      not own a replication source, so [repl_snapshots] (default 0)
      lets the harness fill in {!Replication.Source.lag_snapshots}. *)

  val resource_counters : ?repl_snapshots:int -> t -> (string * int) list
  (** {!resource_stats} as labelled counters for
      {!Netsim.Stats.pp_named}. *)

  val sessions_recovered : t -> int
  (** Sessions restored warm (challenge answered), summed across all
      leader incarnations. *)

  val resyncs_served : t -> int
  (** Divergent views repaired by the leader, summed across
      incarnations. *)

  val divergences_detected : t -> int
  (** Beacon mismatches observed by members (cumulative). *)

  val crash_leader : t -> unit
  (** Kill the leader: detach it from the network and drop every frame
      addressed to it. In-memory automaton state is lost; only the
      journal bytes survive. Idempotent while down. *)

  val restart_leader : ?warm:bool -> ?journal_bytes:string -> t -> Journal.status
  (** Bring the leader back. With [warm] (default) and a journal, the
      surviving bytes ([journal_bytes] overrides what the driver
      holds; after a {!crash_leader} the captured durable image is
      used, not the live buffer) are {!Journal.recover}ed, the
      automaton is rebuilt via {!Leader.recover}, and a
      [RecoveryChallenge] goes to every journalled session, with
      retransmission until [challenge_timeout]. Returns the journal
      damage report.

      [~warm:false] is a cold restart: no session is trusted and every
      member re-authenticates from scratch — but the surviving journal
      bytes still pin the epoch floor, and (unless
      [recovery_config.beacon_on_cold] is off) the new incarnation
      broadcasts authenticated [ColdRestart] beacons so members rejoin
      without waiting out their watchdog. With no journal at all the
      cold restart is the PR-2 baseline: a fresh automaton that knows
      nothing. *)

  val schedule_leader_crash :
    ?restart_after:Netsim.Vtime.t ->
    ?warm:bool ->
    ?journal_bytes:string ->
    t ->
    at:Netsim.Vtime.t ->
    unit ->
    unit
  (** Schedule {!crash_leader} at virtual time [at] and, if
      [restart_after] is given, {!restart_leader} that much later. *)

  val leader_down : t -> bool

  val journal_bytes : t -> string option
  (** The leader journal's current on-"disk" bytes, when journalling
      is enabled. *)

  val epoch_vault : t -> Store.Vault.t option
  (** The durable epoch vault, when recovery is enabled. Rebuilt from
      its durable image on every {!restart_leader}; the leader floors
      its epoch counter (and stamps its cold-restart beacons) at the
      vault's value, so losing the journal's last [Epoch_bump] record
      no longer yields a stale beacon. *)

  val stop_retry : t -> unit
  (** Cancel the leader scan, the digest broadcast, and all member
      watchdogs so the event queue can drain; the protocol keeps
      working, single-shot. *)

  val leave : t -> Types.agent -> unit
  val send_app : t -> Types.agent -> string -> unit

  val dispatch_leader : t -> Wire.Frame.t list -> unit
  (** Put frames produced by direct {!Leader} API calls (e.g.
      {!Leader.rekey}) on the wire. *)

  val rekey : t -> unit
  val expel : t -> Types.agent -> unit

  (** {2 Store-and-forward} *)

  val mark_offline : t -> Types.agent -> unit
  (** {!Leader.mark_offline} on the current leader incarnation. *)

  val mark_online : t -> Types.agent -> unit
  (** {!Leader.mark_online}, putting the drain frames on the wire. *)

  val offline_members : t -> Types.agent list

  val delivery : t -> Delivery.t option
  (** The current incarnation's delivery layer, when [delivery] was
      given at {!create}. *)

  val queue_depth : t -> Types.agent -> int
  (** Pending (unacknowledged) deliveries queued for one member. *)

  val total_queue_depth : t -> int

  val delivery_stats : t -> Netsim.Stats.delivery
  (** Store-and-forward counters summed across leader incarnations
      (the high-water mark is a max), with the members' cumulative
      dedup counts filled in. All zeros when [delivery] was not
      given. *)

  val delivery_counters : t -> (string * int) list
  (** {!delivery_stats} as labelled counters for
      {!Netsim.Stats.pp_named}. *)

  (** {2 Intrusion containment} *)

  val sentinel : t -> Sentinel.t option
  (** The cluster's intrusion sentinel, when [intrusion] was given at
      {!create}. One instance outlives every leader incarnation. *)

  val preauth_backlog : t -> int
  (** Pre-auth handshake frames currently queued for service. *)

  val sentinel_stats : t -> Netsim.Stats.sentinel
  (** Sentinel counters with the driver's pre-auth queue tail-drop
      count filled in. All zeros (except possibly queue drops) when
      [intrusion] was not given. *)

  val sentinel_counters : t -> (string * int) list
  (** {!sentinel_stats} as labelled counters for
      {!Netsim.Stats.pp_named}. *)

  val start_periodic_rekey :
    t -> period:Netsim.Vtime.t -> ?until:Netsim.Vtime.t -> unit ->
    Netsim.Sim.handle
  (** Schedule leader rekeys every [period] of virtual time — the
      paper's "on a periodic basis" policy. Without [until] the
      schedule runs until the returned handle is
      {!Netsim.Sim.cancel}led (previously it could never be torn down
      and prevented quiescence forever). *)

  val run : ?until:Netsim.Vtime.t -> t -> int
  (** Run the simulation to quiescence (or [until]); returns events
      executed. *)

  val prefix_ok : t -> Types.agent -> bool
  (** §5.4 check: the member's accepted-admin list is a prefix of the
      leader's sent list for that member. Meaningful while the session
      is live. *)

  val all_prefix_ok : t -> bool

  val converged : t -> bool
  (** The chaos suite's goal state: every directory member is
      [Connected], all members and the leader agree on the group-key
      epoch, and {!all_prefix_ok} holds. *)

  val view_converged : t -> bool
  (** {!converged} plus view agreement: every member's membership view
      equals the leader's member list — what the anti-entropy layer
      drives the system back to. *)
end

module Legacy : sig
  type t

  val create :
    ?seed:int64 ->
    ?latency_us:int * int ->
    ?policy:Legacy_leader.policy ->
    leader:Types.agent ->
    directory:(Types.agent * string) list ->
    unit ->
    t

  val sim : t -> Netsim.Sim.t
  val net : t -> Netsim.Network.t
  val leader : t -> Legacy_leader.t
  val member : t -> Types.agent -> Legacy_member.t
  val join : t -> Types.agent -> unit
  val leave : t -> Types.agent -> unit
  val send_app : t -> Types.agent -> string -> unit
  val rekey : t -> unit
  val run : ?until:Netsim.Vtime.t -> t -> int
end
