(** Scenario driver: wires leaders and members onto the {!Netsim}
    network and dispatches the frames the state machines emit.

    The driver is how examples, tests, benches and attacks run whole
    protocols: build a cluster, schedule joins/leaves/messages at
    virtual times, [run] the simulation, then inspect member views,
    leader state, events and the network trace.

    {!Improved} drives the §3.2 protocol; {!Legacy} drives the §2.2
    baseline. Both expose {!Improved.prefix_ok}-style checks used to
    validate §5.4's ordering property at runtime. *)

module Improved : sig
  type t

  (** Tuning for the timeout/retry/backoff layer. All delays are
      virtual time; the jittered backoff draws from a PRNG split off
      the simulation seed, so retry schedules replay
      deterministically. *)
  type retry_config = {
    handshake_initial : Netsim.Vtime.t;
        (** First member-side retransmission delay. *)
    handshake_max : Netsim.Vtime.t;  (** Backoff cap. *)
    backoff : float;  (** Delay multiplier per attempt (e.g. [2.0]). *)
    jitter : float;
        (** Each delay is scaled by a uniform factor in
            [1-jitter, 1+jitter]. *)
    scan_period : Netsim.Vtime.t;
        (** Leader-side scan period for outstanding
            [AuthKeyDist]/[AdminMsg] frames. *)
    half_open_gc : Netsim.Vtime.t;
        (** Age after which a stalled half-open handshake is
            garbage-collected on the leader. *)
  }

  val default_retry : retry_config
  (** 250 ms initial, 4 s cap, ×2 backoff, ±20% jitter, 200 ms scans,
      3 s half-open GC. *)

  (** Counters for the recovery layer, for chaos reports. *)
  type retry_stats = {
    mutable handshake_retransmits : int;  (** Member re-sent [AuthInitReq]. *)
    mutable keydist_retransmits : int;  (** Leader re-sent [AuthKeyDist]. *)
    mutable admin_retransmits : int;  (** Leader re-sent an [AdminMsg]. *)
    mutable half_open_gcs : int;  (** Stalled handshakes collected. *)
    mutable session_resets : int;
        (** Member sessions torn down and restarted after
            authenticating without ever receiving the group key. *)
  }

  val create :
    ?seed:int64 ->
    ?latency_us:int * int ->
    ?policy:Leader.policy ->
    ?retry:retry_config ->
    leader:Types.agent ->
    directory:(Types.agent * string) list ->
    unit ->
    t
  (** Build a cluster: one leader plus a member automaton for every
      directory entry, all attached to a fresh simulated network.

      With [retry] set, the driver also runs the recovery layer:
      member handshakes are retransmitted with capped exponential
      backoff and jitter, the leader periodically re-sends outstanding
      [AuthKeyDist]/[AdminMsg] frames and garbage-collects half-open
      handshakes, and authenticated-but-keyless sessions are reset.
      The leader scan is an [until]-less periodic task, so runs with
      [retry] should bound execution via {!run}[ ~until] or call
      {!stop_retry} to let the queue drain. Without [retry] the driver
      behaves exactly as before (single-shot sends). *)

  val sim : t -> Netsim.Sim.t
  val net : t -> Netsim.Network.t
  val leader : t -> Leader.t

  val member : t -> Types.agent -> Member.t
  (** @raise Not_found for agents outside the directory. *)

  val join : t -> Types.agent -> unit
  (** Emit the member's [AuthInitReq] now (at the current virtual
      time). With [retry] enabled, also start the member's handshake
      retransmission watchdog. *)

  val retry_stats : t -> retry_stats

  val stop_retry : t -> unit
  (** Cancel the leader scan and all member watchdogs so the event
      queue can drain; the protocol keeps working, single-shot. *)

  val leave : t -> Types.agent -> unit
  val send_app : t -> Types.agent -> string -> unit

  val dispatch_leader : t -> Wire.Frame.t list -> unit
  (** Put frames produced by direct {!Leader} API calls (e.g.
      {!Leader.rekey}) on the wire. *)

  val rekey : t -> unit
  val expel : t -> Types.agent -> unit

  val start_periodic_rekey :
    t -> period:Netsim.Vtime.t -> ?until:Netsim.Vtime.t -> unit ->
    Netsim.Sim.handle
  (** Schedule leader rekeys every [period] of virtual time — the
      paper's "on a periodic basis" policy. Without [until] the
      schedule runs until the returned handle is
      {!Netsim.Sim.cancel}led (previously it could never be torn down
      and prevented quiescence forever). *)

  val run : ?until:Netsim.Vtime.t -> t -> int
  (** Run the simulation to quiescence (or [until]); returns events
      executed. *)

  val prefix_ok : t -> Types.agent -> bool
  (** §5.4 check: the member's accepted-admin list is a prefix of the
      leader's sent list for that member. Meaningful while the session
      is live. *)

  val all_prefix_ok : t -> bool

  val converged : t -> bool
  (** The chaos suite's goal state: every directory member is
      [Connected], all members and the leader agree on the group-key
      epoch, and {!all_prefix_ok} holds. *)
end

module Legacy : sig
  type t

  val create :
    ?seed:int64 ->
    ?latency_us:int * int ->
    ?policy:Legacy_leader.policy ->
    leader:Types.agent ->
    directory:(Types.agent * string) list ->
    unit ->
    t

  val sim : t -> Netsim.Sim.t
  val net : t -> Netsim.Network.t
  val leader : t -> Legacy_leader.t
  val member : t -> Types.agent -> Legacy_member.t
  val join : t -> Types.agent -> unit
  val leave : t -> Types.agent -> unit
  val send_app : t -> Types.agent -> string -> unit
  val rekey : t -> unit
  val run : ?until:Netsim.Vtime.t -> t -> int
end
