(** Scenario driver: wires leaders and members onto the {!Netsim}
    network and dispatches the frames the state machines emit.

    The driver is how examples, tests, benches and attacks run whole
    protocols: build a cluster, schedule joins/leaves/messages at
    virtual times, [run] the simulation, then inspect member views,
    leader state, events and the network trace.

    {!Improved} drives the §3.2 protocol; {!Legacy} drives the §2.2
    baseline. Both expose {!Improved.prefix_ok}-style checks used to
    validate §5.4's ordering property at runtime. *)

module Improved : sig
  type t

  val create :
    ?seed:int64 ->
    ?latency_us:int * int ->
    ?policy:Leader.policy ->
    leader:Types.agent ->
    directory:(Types.agent * string) list ->
    unit ->
    t
  (** Build a cluster: one leader plus a member automaton for every
      directory entry, all attached to a fresh simulated network. *)

  val sim : t -> Netsim.Sim.t
  val net : t -> Netsim.Network.t
  val leader : t -> Leader.t

  val member : t -> Types.agent -> Member.t
  (** @raise Not_found for agents outside the directory. *)

  val join : t -> Types.agent -> unit
  (** Emit the member's [AuthInitReq] now (at the current virtual
      time). *)

  val leave : t -> Types.agent -> unit
  val send_app : t -> Types.agent -> string -> unit

  val dispatch_leader : t -> Wire.Frame.t list -> unit
  (** Put frames produced by direct {!Leader} API calls (e.g.
      {!Leader.rekey}) on the wire. *)

  val rekey : t -> unit
  val expel : t -> Types.agent -> unit

  val start_periodic_rekey :
    t -> period:Netsim.Vtime.t -> ?until:Netsim.Vtime.t -> unit -> unit
  (** Schedule leader rekeys every [period] of virtual time — the
      paper's "on a periodic basis" policy. Without [until] the
      schedule runs for the lifetime of the simulation (use
      [run ~until] to bound execution). *)

  val run : ?until:Netsim.Vtime.t -> t -> int
  (** Run the simulation to quiescence (or [until]); returns events
      executed. *)

  val prefix_ok : t -> Types.agent -> bool
  (** §5.4 check: the member's accepted-admin list is a prefix of the
      leader's sent list for that member. Meaningful while the session
      is live. *)

  val all_prefix_ok : t -> bool
end

module Legacy : sig
  type t

  val create :
    ?seed:int64 ->
    ?latency_us:int * int ->
    ?policy:Legacy_leader.policy ->
    leader:Types.agent ->
    directory:(Types.agent * string) list ->
    unit ->
    t

  val sim : t -> Netsim.Sim.t
  val net : t -> Netsim.Network.t
  val leader : t -> Legacy_leader.t
  val member : t -> Types.agent -> Legacy_member.t
  val join : t -> Types.agent -> unit
  val leave : t -> Types.agent -> unit
  val send_app : t -> Types.agent -> string -> unit
  val rekey : t -> unit
  val run : ?until:Netsim.Vtime.t -> t -> int
end
