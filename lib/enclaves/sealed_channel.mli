(** Helpers joining {!Wire.Frame} and {!Sym_crypto.Aead}.

    The improved protocol binds the frame header (label, sender,
    recipient) into the AEAD associated data, so a sealed body replayed
    under a different header fails authentication. The legacy protocol
    of §2.2 binds nothing — [legacy_seal]/[legacy_open] use empty
    associated data, faithfully preserving the splice- and
    replay-friendliness the paper attacks. *)

val seal :
  rng:Prng.Splitmix.t ->
  key:Sym_crypto.Key.t ->
  label:Wire.Frame.label ->
  sender:Types.agent ->
  recipient:Types.agent ->
  string ->
  Wire.Frame.t
(** [seal ~rng ~key ~label ~sender ~recipient plaintext] builds a
    complete frame whose body is the sealed plaintext, bound to the
    header. *)

val open_ :
  key:Sym_crypto.Key.t -> Wire.Frame.t -> (string, Types.reject_reason) result
(** [open_ ~key frame] recovers the plaintext of a header-bound frame. *)

val legacy_seal :
  rng:Prng.Splitmix.t ->
  key:Sym_crypto.Key.t ->
  label:Wire.Frame.label ->
  sender:Types.agent ->
  recipient:Types.agent ->
  string ->
  Wire.Frame.t
(** Like {!seal} but with no header binding (legacy §2.2 behaviour). *)

val legacy_open :
  key:Sym_crypto.Key.t -> Wire.Frame.t -> (string, Types.reject_reason) result

val seal_group :
  rng:Prng.Splitmix.t ->
  key:Sym_crypto.Key.t ->
  label:Wire.Frame.label ->
  sender:Types.agent ->
  recipient:Types.agent ->
  string ->
  Wire.Frame.t
(** Group-traffic sealing: the associated data binds only the label,
    not sender/recipient, because frames under the group key are
    relayed by the leader to many recipients; authorship lives inside
    the payload. *)

val open_group :
  key:Sym_crypto.Key.t -> Wire.Frame.t -> (string, Types.reject_reason) result
