open Sym_crypto
module F = Wire.Frame
module P = Wire.Payload

type state =
  | S_not_connected
  | S_waiting_for_key of { n1 : Wire.Nonce.t }
  | S_connected of { na : Wire.Nonce.t; ka : Key.t }

type event =
  | Joined of { session_key : Key.t }
  | Admin_accepted of Wire.Admin.t
  | App_received of { author : Types.agent; body : string }
  | Left
  | Recovery_challenged of { from : Types.agent }
  | Cold_beacon_challenged of { epoch : int }
  | Beacon_reset of { epoch : int }
  | View_diverged of { leader_epoch : int }
  | Rejected of { label : F.label option; reason : Types.reject_reason }

let pp_event fmt = function
  | Joined { session_key } ->
      Format.fprintf fmt "Joined(ka=%s)" (Key.fingerprint session_key)
  | Admin_accepted x -> Format.fprintf fmt "AdminAccepted(%a)" Wire.Admin.pp x
  | App_received { author; body } ->
      Format.fprintf fmt "AppReceived(%s: %s)" author body
  | Left -> Format.pp_print_string fmt "Left"
  | Recovery_challenged { from } ->
      Format.fprintf fmt "RecoveryChallenged(from=%s)" from
  | Cold_beacon_challenged { epoch } ->
      Format.fprintf fmt "ColdBeaconChallenged(epoch=%d)" epoch
  | Beacon_reset { epoch } -> Format.fprintf fmt "BeaconReset(epoch=%d)" epoch
  | View_diverged { leader_epoch } ->
      Format.fprintf fmt "ViewDiverged(leader_epoch=%d)" leader_epoch
  | Rejected { label; reason } ->
      Format.fprintf fmt "Rejected(%s, %a)"
        (match label with Some l -> F.label_to_string l | None -> "?")
        Types.pp_reject_reason reason

type state_view =
  | Not_connected
  | Waiting_for_key of Wire.Nonce.t
  | Connected of Wire.Nonce.t * Key.t

type t = {
  self : Types.agent;
  mutable leader : Types.agent;
  pa : Key.t;
  rng : Prng.Splitmix.t;
  mutable state : state;
  mutable group_key : Types.group_key option;
  mutable view : Types.agent list;  (* sorted membership belief *)
  mutable accepted_rev : Wire.Admin.t list;
  mutable app_rev : (Types.agent * string) list;
  mutable events_rev : event list;
  (* Retransmission state. Each field stores a frame already emitted
     once, so re-sending it never advances the automaton and never
     hands an attacker anything the first transmission did not. *)
  mutable last_init : F.t option;  (* outstanding AuthInitReq *)
  mutable last_key_ack : (Wire.Nonce.t * F.t) option;
      (* (N2 answered, AuthAckKey frame) of the current session *)
  mutable last_admin_ack : (Wire.Nonce.t * F.t) option;
      (* (leader nonce answered, AdminAck frame) of the latest accepted
         AdminMsg *)
  mutable last_recovery : (Wire.Nonce.t * F.t) option;
      (* (challenge nonce answered, RecoveryResponse frame) — re-sent
         on a duplicated challenge, like the other carve-outs *)
  (* Cold-restart beacon handshake in flight: (Nm we challenged with,
     Nb of the beacon we answered, beacon epoch, stored challenge
     frame). The session is NOT reset until the leader echoes Nm. *)
  mutable pending_cold : (Wire.Nonce.t * Wire.Nonce.t * int * F.t) option;
  mutable beacon_reset_pending : bool;
  (* Anti-entropy counters (cumulative across sessions). *)
  mutable digests_seen : int;
  mutable divergences : int;
  (* Store-and-forward delivery state (cumulative across sessions —
     the floor MUST survive a session reset, or a redelivery after a
     reconnect would apply twice). *)
  mutable delivery_floor : int;
  mutable deliveries_deduped : int;
  mutable stale_deliveries : int;
  mutable queued_applied_rev : int list;
}

let create_with_key ~self ~leader ~long_term ~rng =
  if Key.kind long_term <> Key.Long_term then
    invalid_arg "Member.create_with_key: key must be long-term";
  {
    self;
    leader;
    pa = long_term;
    rng = Prng.Splitmix.split rng;
    state = S_not_connected;
    group_key = None;
    view = [];
    accepted_rev = [];
    app_rev = [];
    events_rev = [];
    last_init = None;
    last_key_ack = None;
    last_admin_ack = None;
    last_recovery = None;
    pending_cold = None;
    beacon_reset_pending = false;
    digests_seen = 0;
    divergences = 0;
    delivery_floor = 0;
    deliveries_deduped = 0;
    stale_deliveries = 0;
    queued_applied_rev = [];
  }

let create ~self ~leader ~password ~rng =
  create_with_key ~self ~leader ~long_term:(Key.long_term ~user:self ~password)
    ~rng

let self t = t.self
let leader t = t.leader

let state t =
  match t.state with
  | S_not_connected -> Not_connected
  | S_waiting_for_key { n1 } -> Waiting_for_key n1
  | S_connected { na; ka } -> Connected (na, ka)

let is_connected t = match t.state with S_connected _ -> true | _ -> false
let group_key t = t.group_key
let group_view t = t.view
let accepted_admin t = List.rev t.accepted_rev
let app_log t = List.rev t.app_rev

let session_key t =
  match t.state with S_connected { ka; _ } -> Some ka | _ -> None

let drain_events t =
  let es = List.rev t.events_rev in
  t.events_rev <- [];
  es

let emit t e = t.events_rev <- e :: t.events_rev

let reject t ?label reason =
  emit t (Rejected { label; reason });
  []

let join t =
  match t.state with
  | S_not_connected ->
      let n1 = Wire.Nonce.fresh t.rng in
      t.state <- S_waiting_for_key { n1 };
      let plaintext =
        P.encode_auth_init { P.a = t.self; l = t.leader; n1 }
      in
      let frame =
        Sealed_channel.seal ~rng:t.rng ~key:t.pa ~label:F.Auth_init_req
          ~sender:t.self ~recipient:t.leader plaintext
      in
      t.last_init <- Some frame;
      [ frame ]
  | S_waiting_for_key _ | S_connected _ -> []

let retransmit_join t =
  match (t.state, t.last_init) with
  | S_waiting_for_key _, Some frame -> [ frame ]
  | _ -> []

let reset_session t =
  t.state <- S_not_connected;
  t.group_key <- None;
  t.view <- [];
  t.accepted_rev <- [];
  t.last_init <- None;
  t.last_key_ack <- None;
  t.last_admin_ack <- None;
  t.last_recovery <- None;
  t.pending_cold <- None;
  emit t Left

let leave t =
  match t.state with
  | S_connected { ka; _ } ->
      let plaintext = P.encode_req_close { P.a = t.self; l = t.leader } in
      let frame =
        Sealed_channel.seal ~rng:t.rng ~key:ka ~label:F.Req_close
          ~sender:t.self ~recipient:t.leader plaintext
      in
      reset_session t;
      [ frame ]
  | S_not_connected | S_waiting_for_key _ -> []

let own_epoch t =
  match t.group_key with Some { Types.epoch; _ } -> epoch | None -> 0

let own_digest t = Wire.Admin.view_digest ~members:t.view ~epoch:(own_epoch t)
let digests_seen t = t.digests_seen
let view_divergences t = t.divergences
let delivery_floor t = t.delivery_floor
let deliveries_deduped t = t.deliveries_deduped
let stale_deliveries t = t.stale_deliveries
let queued_applied t = List.rev t.queued_applied_rev

(* Report our own (digest, epoch) to the leader under [K_a]; the
   leader answers with a repair (key + snapshot + digest) on mismatch,
   or just a digest on agreement. Also the anti-entropy liveness
   probe. *)
let resync_request t =
  match t.state with
  | S_connected { ka; _ } ->
      let plaintext =
        P.encode_view_resync
          {
            P.a = t.self;
            l = t.leader;
            digest = own_digest t;
            epoch = own_epoch t;
          }
      in
      [
        Sealed_channel.seal ~rng:t.rng ~key:ka ~label:F.View_resync_req
          ~sender:t.self ~recipient:t.leader plaintext;
      ]
  | S_not_connected | S_waiting_for_key _ -> []

(* Membership view updates triggered by accepted admin messages.
   Returns follow-up frames (a resync request when a [View_digest]
   beacon reveals divergence).

   A [Queued] wrapper is the store-and-forward drain path: the nonce
   chain already deduplicates frame retransmissions, but at-least-once
   delivery can legitimately re-present an already-applied record
   (leader crash between the member's ack and the durable queue ack),
   so the member additionally keeps a cumulative [delivery_floor] over
   the wrapper's seq — below the floor the record's effect is skipped
   while the AdminMsg is still acked, which is exactly what lets the
   leader's ack floor catch up. Stale-marked records are recorded but
   apply no state effect, and even a fresh drained [New_group_key] is
   dropped if it would regress our epoch: queued key material can
   never roll the group key back. *)
let rec apply_effect t (x : Wire.Admin.t) =
  match x with
    | Wire.Admin.New_group_key { key; epoch } ->
        if String.length key = Key.size then
          t.group_key <- Some { Types.key = Key.of_raw Key.Group key; epoch };
        []
    | Wire.Admin.Member_joined who ->
        if not (List.mem who t.view) then
          t.view <- List.sort String.compare (who :: t.view);
        []
    | Wire.Admin.Member_left who | Wire.Admin.Member_expelled who ->
        t.view <- List.filter (fun m -> m <> who) t.view;
        []
    | Wire.Admin.Membership_snapshot members ->
        t.view <- List.sort_uniq String.compare members;
        []
    | Wire.Admin.Notice _ -> []
    | Wire.Admin.View_digest { digest; epoch } ->
        t.digests_seen <- t.digests_seen + 1;
        if String.equal digest (own_digest t) && epoch = own_epoch t then []
        else begin
          t.divergences <- t.divergences + 1;
          emit t (View_diverged { leader_epoch = epoch });
          resync_request t
        end
    | Wire.Admin.Queued { seq; stale; x = inner } ->
        if seq < t.delivery_floor then begin
          t.deliveries_deduped <- t.deliveries_deduped + 1;
          []
        end
        else begin
          t.delivery_floor <- seq + 1;
          t.queued_applied_rev <- seq :: t.queued_applied_rev;
          if stale then begin
            t.stale_deliveries <- t.stale_deliveries + 1;
            []
          end
          else
            match inner with
            | Wire.Admin.New_group_key { epoch; _ } when epoch < own_epoch t ->
                []
            | _ -> apply_effect t inner
        end

let apply_admin t (x : Wire.Admin.t) =
  let followups = apply_effect t x in
  t.accepted_rev <- x :: t.accepted_rev;
  emit t (Admin_accepted x);
  followups

let handle_auth_key_dist t (frame : F.t) =
  match t.state with
  | S_waiting_for_key { n1 } -> (
      match Sealed_channel.open_ ~key:t.pa frame with
      | Error reason -> reject t ~label:frame.F.label reason
      | Ok plaintext -> (
          match P.decode_auth_key_dist plaintext with
          | Error e -> reject t ~label:frame.F.label (Types.Malformed e)
          | Ok { P.l; a; n1 = n1'; n2; ka } ->
              if l <> t.leader || a <> t.self then
                reject t ~label:frame.F.label Types.Identity_mismatch
              else if not (Wire.Nonce.equal n1 n1') then
                reject t ~label:frame.F.label Types.Stale_nonce
              else if String.length ka <> Key.size then
                reject t ~label:frame.F.label
                  (Types.Malformed "bad session key length")
              else begin
                let ka = Key.of_raw Key.Session ka in
                let n3 = Wire.Nonce.fresh t.rng in
                t.state <- S_connected { na = n3; ka };
                t.last_init <- None;
                emit t (Joined { session_key = ka });
                let plaintext = P.encode_auth_ack_key { P.n2; n3 } in
                let ack =
                  Sealed_channel.seal ~rng:t.rng ~key:ka ~label:F.Auth_ack_key
                    ~sender:t.self ~recipient:t.leader plaintext
                in
                t.last_key_ack <- Some (n2, ack);
                [ ack ]
              end))
  | S_connected _ -> (
      (* Already connected: a retransmitted AuthKeyDist for the
         handshake we just completed means our AuthAckKey was lost.
         Re-send the stored ack — no state change, so a replaying
         attacker learns nothing and moves nothing. *)
      match Sealed_channel.open_ ~key:t.pa frame with
      | Error reason -> reject t ~label:frame.F.label reason
      | Ok plaintext -> (
          match P.decode_auth_key_dist plaintext with
          | Error e -> reject t ~label:frame.F.label (Types.Malformed e)
          | Ok { P.l; a; n2; _ } -> (
              match t.last_key_ack with
              | Some (n2', ack)
                when l = t.leader && a = t.self && Wire.Nonce.equal n2 n2' ->
                  [ ack ]
              | _ ->
                  reject t ~label:frame.F.label
                    (Types.Wrong_state "not waiting for key"))))
  | S_not_connected ->
      reject t ~label:frame.F.label (Types.Wrong_state "not waiting for key")

let handle_admin_msg t (frame : F.t) =
  match t.state with
  | S_connected { na; ka } -> (
      match Sealed_channel.open_ ~key:ka frame with
      | Error reason -> reject t ~label:frame.F.label reason
      | Ok plaintext -> (
          match P.decode_admin_body plaintext with
          | Error e -> reject t ~label:frame.F.label (Types.Malformed e)
          | Ok { P.l; a; expected; next; x } ->
              if l <> t.leader || a <> t.self then
                reject t ~label:frame.F.label Types.Identity_mismatch
              else if not (Wire.Nonce.equal expected na) then (
                (* The freshness evidence N_{2i+1} does not match. If
                   this is a retransmission of the admin message we
                   accepted last (its AdminAck was lost), re-send the
                   stored ack so the leader's channel unblocks;
                   anything else is a replay or out-of-order message
                   and is silently rejected. *)
                match t.last_admin_ack with
                | Some (nl_prev, ack) when Wire.Nonce.equal next nl_prev ->
                    [ ack ]
                | _ -> reject t ~label:frame.F.label Types.Stale_nonce)
              else begin
                let followups = apply_admin t x in
                let n_next = Wire.Nonce.fresh t.rng in
                t.state <- S_connected { na = n_next; ka };
                let plaintext =
                  P.encode_admin_ack
                    { P.a = t.self; l = t.leader; echo = next; next = n_next }
                in
                let ack =
                  Sealed_channel.seal ~rng:t.rng ~key:ka ~label:F.Admin_ack
                    ~sender:t.self ~recipient:t.leader plaintext
                in
                t.last_admin_ack <- Some (next, ack);
                ack :: followups
              end))
  | S_not_connected | S_waiting_for_key _ ->
      reject t ~label:frame.F.label (Types.Wrong_state "not connected")

let handle_app_data t (frame : F.t) =
  match t.group_key with
  | None -> reject t ~label:frame.F.label (Types.Wrong_state "no group key")
  | Some { Types.key; _ } -> (
      match Sealed_channel.open_group ~key frame with
      | Error reason -> reject t ~label:frame.F.label reason
      | Ok plaintext -> (
          match P.decode_app_data plaintext with
          | Error e -> reject t ~label:frame.F.label (Types.Malformed e)
          | Ok { P.author; body } ->
              t.app_rev <- (author, body) :: t.app_rev;
              emit t (App_received { author; body });
              []))

(* A restarted leader proves it still holds our [K_a] by sealing a
   fresh challenge nonce under it. Answering re-seeds the admin nonce
   chain from our fresh nonce AND forgets the old session's §5.4 log
   ([rcv_A]) and stored admin ack: the leader's [snd_A] died in the
   crash, so both sides restart the ordered-prefix ledger together.
   Group key and membership view survive — that is what makes the
   recovery warm. A replayed challenge (same nonce) elicits the stored
   response; a forged one fails the seal.

   The challenger need not be the leader we joined: a warm-promoted
   successor manager recovers [K_a] from the replicated journal and
   challenges under it. Possession of [K_a] is the proof of
   legitimacy — only the leader (and, via the authenticated
   replication channel, the trusted manager set) ever holds it — so a
   challenge whose sealed [l] matches the frame's sender (bound into
   the AEAD associated data) is accepted, and the member follows the
   handoff by retargeting its [leader] to the challenger. *)
let handle_recovery_challenge t (frame : F.t) =
  match t.state with
  | S_connected { ka; _ } -> (
      match Sealed_channel.open_ ~key:ka frame with
      | Error reason -> reject t ~label:frame.F.label reason
      | Ok plaintext -> (
          match P.decode_recovery_challenge plaintext with
          | Error e -> reject t ~label:frame.F.label (Types.Malformed e)
          | Ok { P.l; a; nc } ->
              if l <> frame.F.sender || a <> t.self then
                reject t ~label:frame.F.label Types.Identity_mismatch
              else begin
                match t.last_recovery with
                | Some (nc', resp) when Wire.Nonce.equal nc nc' ->
                    (* Duplicate of the challenge we already answered:
                       the response was lost. Re-send it unchanged. *)
                    [ resp ]
                | _ ->
                    t.leader <- l;
                    let next = Wire.Nonce.fresh t.rng in
                    t.state <- S_connected { na = next; ka };
                    t.accepted_rev <- [];
                    t.last_admin_ack <- None;
                    emit t (Recovery_challenged { from = l });
                    let plaintext =
                      P.encode_recovery_response
                        { P.a = t.self; l = t.leader; echo = nc; next }
                    in
                    let resp =
                      Sealed_channel.seal ~rng:t.rng ~key:ka
                        ~label:F.Recovery_response ~sender:t.self
                        ~recipient:t.leader plaintext
                    in
                    t.last_recovery <- Some (nc, resp);
                    [ resp ]
              end))
  | S_not_connected | S_waiting_for_key _ ->
      reject t ~label:frame.F.label (Types.Wrong_state "not connected")

(* A cold-restarted leader announces itself with a beacon sealed under
   our long-term [P_a], carrying its journalled group-key epoch. The
   beacon alone resets NOTHING: we answer with a challenge carrying a
   fresh nonce [Nm], and only a live leader that echoes [Nm] back
   (also under [P_a]) convinces us to drop the dead session and
   rejoin. A replayed beacon therefore costs one challenge frame — the
   live leader rejects the challenge because we are still in session —
   and a beacon from an older incarnation is rejected outright by the
   epoch check. *)
let handle_cold_restart t (frame : F.t) =
  match t.state with
  | S_connected _ -> (
      match Sealed_channel.open_ ~key:t.pa frame with
      | Error reason -> reject t ~label:frame.F.label reason
      | Ok plaintext -> (
          match P.decode_cold_restart plaintext with
          | Error e -> reject t ~label:frame.F.label (Types.Malformed e)
          | Ok { P.l; a; epoch; nb } ->
              if l <> t.leader || a <> t.self then
                reject t ~label:frame.F.label Types.Identity_mismatch
              else if epoch < own_epoch t then
                reject t ~label:frame.F.label
                  (Types.Stale_epoch { got = epoch; have = own_epoch t })
              else begin
                match t.pending_cold with
                | Some (_, nb', _, chal) when Wire.Nonce.equal nb nb' ->
                    (* Duplicate beacon: our challenge was lost.
                       Re-send it unchanged. *)
                    [ chal ]
                | _ ->
                    let nm = Wire.Nonce.fresh t.rng in
                    let plaintext =
                      P.encode_cold_restart_challenge
                        { P.a = t.self; l = t.leader; echo = nb; nm }
                    in
                    let chal =
                      Sealed_channel.seal ~rng:t.rng ~key:t.pa
                        ~label:F.Cold_restart_challenge ~sender:t.self
                        ~recipient:t.leader plaintext
                    in
                    t.pending_cold <- Some (nm, nb, epoch, chal);
                    emit t (Cold_beacon_challenged { epoch });
                    [ chal ]
              end))
  | S_not_connected | S_waiting_for_key _ ->
      (* Out of session there is nothing to shortcut: the normal join
         path already applies. *)
      reject t ~label:frame.F.label (Types.Wrong_state "not connected")

let handle_cold_restart_ack t (frame : F.t) =
  match t.pending_cold with
  | None ->
      (* No challenge outstanding — a stray or replayed ack moves
         nothing. *)
      reject t ~label:frame.F.label (Types.Wrong_state "no cold challenge outstanding")
  | Some (nm, _, epoch, _) -> (
      match Sealed_channel.open_ ~key:t.pa frame with
      | Error reason -> reject t ~label:frame.F.label reason
      | Ok plaintext -> (
          match P.decode_cold_restart_ack plaintext with
          | Error e -> reject t ~label:frame.F.label (Types.Malformed e)
          | Ok { P.l; a; echo } ->
              if l <> t.leader || a <> t.self then
                reject t ~label:frame.F.label Types.Identity_mismatch
              else if not (Wire.Nonce.equal echo nm) then
                reject t ~label:frame.F.label Types.Stale_nonce
              else begin
                (* The restarted leader is live and answered our fresh
                   nonce: drop the dead session and rejoin now instead
                   of waiting out the watchdog. *)
                reset_session t;
                t.beacon_reset_pending <- true;
                emit t (Beacon_reset { epoch });
                join t
              end))

let consume_beacon_reset t =
  let v = t.beacon_reset_pending in
  t.beacon_reset_pending <- false;
  v

let send_app t body =
  match (t.state, t.group_key) with
  | S_connected _, Some { Types.key; _ } ->
      let plaintext = P.encode_app_data { P.author = t.self; body } in
      [
        Sealed_channel.seal_group ~rng:t.rng ~key ~label:F.App_data
          ~sender:t.self ~recipient:t.leader plaintext;
      ]
  | _ -> []

let receive t bytes =
  match F.decode bytes with
  | Error e -> reject t (Types.Malformed e)
  | Ok frame -> (
      match frame.F.label with
      | F.Auth_key_dist -> handle_auth_key_dist t frame
      | F.Admin_msg -> handle_admin_msg t frame
      | F.App_data -> handle_app_data t frame
      | F.Recovery_challenge -> handle_recovery_challenge t frame
      | F.Cold_restart -> handle_cold_restart t frame
      | F.Cold_restart_ack -> handle_cold_restart_ack t frame
      | F.Req_open | F.Ack_open | F.Connection_denied | F.Legacy_auth1
      | F.Legacy_auth2 | F.Legacy_auth3 | F.New_key | F.New_key_ack
      | F.Legacy_req_close | F.Close_connection | F.Mem_joined | F.Mem_removed
      | F.Auth_init_req | F.Auth_ack_key | F.Admin_ack | F.Req_close
      | F.Recovery_response | F.View_resync_req | F.Cold_restart_challenge
      | F.Repl_record | F.Repl_ack | F.Repl_fetch | F.Repl_stale ->
          (* The improved member consumes only the three labels above;
             everything else — legacy traffic, leader-bound messages,
             forged denials — is ignored. The absence of any reaction
             to Connection_denied is what closes attack A1. *)
          reject t ~label:frame.F.label (Types.Unexpected_label frame.F.label))
