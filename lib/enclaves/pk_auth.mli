(** Public-key authentication — the paper's footnote 1, implemented.

    Instead of a shared password, each participant holds a static
    Diffie-Hellman key pair and the leader knows every prospective
    member's {e public} value (and vice versa). The pairwise long-term
    key [P_a] is derived from the static-static shared secret, and the
    §3.2 protocol runs unchanged on top — demonstrating that the
    improved protocol is agnostic to how [P_a] is established.

    Compared to passwords this removes the shared-secret database at
    the leader: compromise of the leader's directory reveals only
    public values. (The derived [P_a] still exists in memory on both
    ends during operation, as in any static-DH scheme.) *)

type identity = { name : Types.agent; keys : Sym_crypto.Dh.key_pair }

val generate : Types.agent -> Prng.Splitmix.t -> identity
val pub : identity -> int64

val pairwise :
  self:identity -> peer:Types.agent -> peer_pub:int64 -> Sym_crypto.Key.t
(** [pairwise ~self ~peer ~peer_pub] derives the long-term key shared
    between [self] and [peer]. Symmetric:
    [pairwise a b (pub b) = pairwise b a (pub a)]. *)

val member :
  identity -> leader:Types.agent -> leader_pub:int64 ->
  rng:Prng.Splitmix.t -> Member.t
(** A §3.2 member whose [P_a] comes from DH instead of a password. *)

val leader :
  identity ->
  directory:(Types.agent * int64) list ->
  ?policy:Leader.policy ->
  rng:Prng.Splitmix.t ->
  unit ->
  Leader.t
(** A leader knowing only the members' public values. *)
