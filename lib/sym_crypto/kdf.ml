let key_size = 16
let pbkdf_iterations = 64

let fixed_key label =
  (* A fixed, public PRF key for the password KDF: secrecy comes from
     the password input, not this constant. *)
  { Siphash.k0 = 0x656e636c61766573L (* "enclaves" *);
    k1 = Siphash.hash { Siphash.k0 = 0L; k1 = 0L } label }

let of_password ~user ~password =
  let k = fixed_key "pa-kdf" in
  let state = ref (user ^ "\x00" ^ password) in
  for i = 1 to pbkdf_iterations do
    let block j =
      Siphash.hash_to_bytes k (Printf.sprintf "%d:%d:" i j ^ !state)
    in
    state := block 0 ^ block 1
  done;
  !state

let derive ~key ~label =
  if String.length key <> key_size then
    invalid_arg "Kdf.derive: key must be 16 bytes";
  let master = Siphash.key_of_string key in
  Siphash.hash_to_bytes master ("kdf:0:" ^ label)
  ^ Siphash.hash_to_bytes master ("kdf:1:" ^ label)
