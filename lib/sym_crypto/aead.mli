(** Authenticated encryption with associated data: CTR +
    encrypt-then-MAC.

    [seal] derives independent encryption and MAC subkeys from the
    given key, encrypts with {!Ctr} under a caller-supplied fresh IV,
    and appends a {!Mac} tag over [iv || associated data || ciphertext].
    [open_] rejects any frame whose tag does not verify — this is what
    makes forged or tampered protocol messages indistinguishable from
    network garbage, the property the improved Enclaves protocol leans
    on.

    The associated data binds a frame to its protocol context (label,
    sender, recipient) without encrypting it, so a frame cut from one
    context cannot be replayed into another. *)

type sealed = { iv : string; ciphertext : string; tag : string }

val seal : key:Key.t -> iv:string -> ad:string -> string -> sealed
(** [seal ~key ~iv ~ad plaintext] encrypts and authenticates.
    @raise Invalid_argument if [String.length iv <> Ctr.iv_size]. *)

val open_ : key:Key.t -> ad:string -> sealed -> (string, [ `Auth_failure ]) result
(** [open_ ~key ~ad s] verifies the tag and decrypts. Any mismatch —
    wrong key, tampered ciphertext, wrong associated data, truncated
    tag — yields [`Auth_failure] with no plaintext. *)

val random_iv : Prng.Splitmix.t -> string
(** A fresh random IV. *)

val encode : sealed -> string
(** Serialize to bytes (for embedding in wire messages). *)

val decode : string -> (sealed, string) result
(** Inverse of {!encode}; [Error] on malformed input. *)
