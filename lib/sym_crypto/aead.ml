open Byteskit

type sealed = { iv : string; ciphertext : string; tag : string }

let enc_key key = Kdf.derive ~key:(Key.raw key) ~label:"aead-encrypt"
let mac_key key = Kdf.derive ~key:(Key.raw key) ~label:"aead-mac"

let mac_input ~iv ~ad ~ciphertext =
  let w = Cursor.Writer.create () in
  Cursor.Writer.bytes w iv;
  Cursor.Writer.bytes w ad;
  Cursor.Writer.bytes w ciphertext;
  Cursor.Writer.contents w

let seal ~key ~iv ~ad plaintext =
  let cipher = Feistel.of_key (enc_key key) in
  let ciphertext = Ctr.transform cipher ~iv plaintext in
  let tag = Mac.tag ~key:(mac_key key) (mac_input ~iv ~ad ~ciphertext) in
  { iv; ciphertext; tag }

let open_ ~key ~ad { iv; ciphertext; tag } =
  if
    String.length iv = Ctr.iv_size
    && Mac.verify ~key:(mac_key key) (mac_input ~iv ~ad ~ciphertext) ~tag
  then
    let cipher = Feistel.of_key (enc_key key) in
    Ok (Ctr.transform cipher ~iv ciphertext)
  else Error `Auth_failure

let random_iv rng =
  Bytes.unsafe_to_string (Prng.Splitmix.next_bytes rng Ctr.iv_size)

let encode { iv; ciphertext; tag } =
  let w = Cursor.Writer.create () in
  Cursor.Writer.bytes w iv;
  Cursor.Writer.bytes w ciphertext;
  Cursor.Writer.bytes w tag;
  Cursor.Writer.contents w

let decode s =
  let open Cursor in
  let r = Reader.of_string s in
  let result =
    let* iv = Reader.bytes r in
    let* ciphertext = Reader.bytes r in
    let* tag = Reader.bytes r in
    let* () = Reader.expect_end r in
    Ok { iv; ciphertext; tag }
  in
  Result.map_error (Format.asprintf "%a" Reader.pp_error) result
