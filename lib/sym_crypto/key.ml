type kind = Long_term | Session | Group
type t = { kind : kind; material : string }

let size = 16

let pp_kind fmt = function
  | Long_term -> Format.pp_print_string fmt "long-term"
  | Session -> Format.pp_print_string fmt "session"
  | Group -> Format.pp_print_string fmt "group"

let kind t = t.kind

let of_raw kind material =
  if String.length material <> size then
    invalid_arg "Key.of_raw: key must be 16 bytes";
  { kind; material }

let raw t = t.material
let long_term ~user ~password = of_raw Long_term (Kdf.of_password ~user ~password)

let fresh kind rng =
  of_raw kind (Bytes.unsafe_to_string (Prng.Splitmix.next_bytes rng size))

let equal a b =
  a.kind = b.kind && Byteskit.Bytes_ops.ct_equal a.material b.material

let fingerprint t =
  let k = { Siphash.k0 = 0x66696e6765727072L; k1 = 0x696e742121212121L } in
  Byteskit.Hex.encode (String.sub (Siphash.hash_to_bytes k t.material) 0 4)
