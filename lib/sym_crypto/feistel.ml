let block_size = 16
let rounds = 8

type t = { subkeys : Siphash.key array }

let of_key k =
  if String.length k <> 16 then invalid_arg "Feistel.of_key: key must be 16 bytes";
  let master = Siphash.key_of_string k in
  (* Subkey i = (PRF(master, "feistel-subkey" i 0), PRF(master, ... 1)). *)
  let subkey i =
    let label half = Printf.sprintf "feistel-subkey:%d:%d" i half in
    { Siphash.k0 = Siphash.hash master (label 0); k1 = Siphash.hash master (label 1) }
  in
  { subkeys = Array.init rounds subkey }

let round_f subkey r right =
  let b = Bytes.create 9 in
  Bytes.set b 0 (Char.chr r);
  Byteskit.Bytes_ops.set_u64_le b 1 right;
  Siphash.hash subkey (Bytes.unsafe_to_string b)

let check_block b =
  if String.length b <> block_size then
    invalid_arg "Feistel: block must be 16 bytes"

let halves b =
  (Byteskit.Bytes_ops.get_u64_le b 0, Byteskit.Bytes_ops.get_u64_le b 8)

let join l r =
  let b = Bytes.create block_size in
  Byteskit.Bytes_ops.set_u64_le b 0 l;
  Byteskit.Bytes_ops.set_u64_le b 8 r;
  Bytes.unsafe_to_string b

let encrypt_block t b =
  check_block b;
  let l = ref (fst (halves b)) and r = ref (snd (halves b)) in
  for i = 0 to rounds - 1 do
    let l' = !r in
    let r' = Int64.logxor !l (round_f t.subkeys.(i) i !r) in
    l := l';
    r := r'
  done;
  join !l !r

let decrypt_block t b =
  check_block b;
  let l = ref (fst (halves b)) and r = ref (snd (halves b)) in
  for i = rounds - 1 downto 0 do
    let r' = !l in
    let l' = Int64.logxor !r (round_f t.subkeys.(i) i r') in
    l := l';
    r := r'
  done;
  join !l !r
