(** A 128-bit block cipher built as an 8-round Feistel network whose
    round function is SipHash-2-4.

    The block is split into two 64-bit halves; each round replaces the
    right half with [left XOR F(round, right)] where [F] is SipHash
    keyed by a per-round subkey derived from the cipher key. A Feistel
    network is a permutation regardless of the round function, so
    decryption is exact inversion. Eight rounds of a strong PRF give a
    strong pseudo-random permutation (Luby–Rackoff needs only four).

    Used by {!Ctr} to build the keystream generator. *)

type t
(** An expanded cipher key (the per-round subkeys). *)

val block_size : int
(** Block size in bytes (16). *)

val of_key : string -> t
(** [of_key k] expands a 16-byte key.
    @raise Invalid_argument if [String.length k <> 16]. *)

val encrypt_block : t -> string -> string
(** [encrypt_block t b] encrypts one 16-byte block.
    @raise Invalid_argument if [String.length b <> 16]. *)

val decrypt_block : t -> string -> string
(** Inverse of {!encrypt_block}. *)
