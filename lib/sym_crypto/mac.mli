(** 128-bit message authentication code built from two independently
    keyed SipHash instances.

    [tag key msg] concatenates [SipHash(k_left, msg)] and
    [SipHash(k_right, msg)] where the two subkeys are derived from
    [key] by domain-separated PRF calls. SipHash is itself a MAC for
    64-bit tags; doubling the instance widens the forgery bound for the
    simulation. *)

val tag_size : int
(** Tag size in bytes (16). *)

val tag : key:string -> string -> string
(** [tag ~key msg] computes the MAC of [msg] under the 16-byte [key].
    @raise Invalid_argument if [String.length key <> 16]. *)

val verify : key:string -> string -> tag:string -> bool
(** [verify ~key msg ~tag] recomputes and compares in constant time. *)
