type key = { k0 : int64; k1 : int64 }

let key_of_string s =
  if String.length s <> 16 then
    invalid_arg "Siphash.key_of_string: key must be 16 bytes";
  { k0 = Byteskit.Bytes_ops.get_u64_le s 0; k1 = Byteskit.Bytes_ops.get_u64_le s 8 }

let key_to_string { k0; k1 } =
  let b = Bytes.create 16 in
  Byteskit.Bytes_ops.set_u64_le b 0 k0;
  Byteskit.Bytes_ops.set_u64_le b 8 k1;
  Bytes.unsafe_to_string b

let rotl x b =
  Int64.logor (Int64.shift_left x b) (Int64.shift_right_logical x (64 - b))

(* State is threaded through explicitly; the compiler unboxes these
   int64 tuples poorly, but clarity wins at this scale. *)
let sip_round (v0, v1, v2, v3) =
  let v0 = Int64.add v0 v1 in
  let v1 = rotl v1 13 in
  let v1 = Int64.logxor v1 v0 in
  let v0 = rotl v0 32 in
  let v2 = Int64.add v2 v3 in
  let v3 = rotl v3 16 in
  let v3 = Int64.logxor v3 v2 in
  let v0 = Int64.add v0 v3 in
  let v3 = rotl v3 21 in
  let v3 = Int64.logxor v3 v0 in
  let v2 = Int64.add v2 v1 in
  let v1 = rotl v1 17 in
  let v1 = Int64.logxor v1 v2 in
  let v2 = rotl v2 32 in
  (v0, v1, v2, v3)

let hash { k0; k1 } msg =
  let v0 = Int64.logxor k0 0x736f6d6570736575L in
  let v1 = Int64.logxor k1 0x646f72616e646f6dL in
  let v2 = Int64.logxor k0 0x6c7967656e657261L in
  let v3 = Int64.logxor k1 0x7465646279746573L in
  let len = String.length msg in
  let n_full = len / 8 in
  let compress st m =
    let v0, v1, v2, v3 = st in
    let st = (v0, v1, v2, Int64.logxor v3 m) in
    let st = sip_round (sip_round st) in
    let v0, v1, v2, v3 = st in
    (Int64.logxor v0 m, v1, v2, v3)
  in
  let st = ref (v0, v1, v2, v3) in
  for i = 0 to n_full - 1 do
    st := compress !st (Byteskit.Bytes_ops.get_u64_le msg (8 * i))
  done;
  (* Final block: remaining bytes, zero padding, length in the top byte. *)
  let last = ref (Int64.shift_left (Int64.of_int (len land 0xFF)) 56) in
  for i = 8 * n_full to len - 1 do
    let shift = (i mod 8) * 8 in
    last := Int64.logor !last (Int64.shift_left (Int64.of_int (Char.code msg.[i])) shift)
  done;
  let st = compress !st !last in
  let v0, v1, v2, v3 = st in
  let st = (v0, v1, Int64.logxor v2 0xFFL, v3) in
  let v0, v1, v2, v3 = sip_round (sip_round (sip_round (sip_round st))) in
  Int64.logxor (Int64.logxor v0 v1) (Int64.logxor v2 v3)

let hash_to_bytes key msg =
  let b = Bytes.create 8 in
  Byteskit.Bytes_ops.set_u64_le b 0 (hash key msg);
  Bytes.unsafe_to_string b
