let p = Int64.sub (Int64.shift_left 1L 61) 1L
let g = 7L

(* Multiplication mod p without overflow: Russian-peasant
   double-and-add. Operands are < p < 2^61, so doubling stays within
   the int64 range (< 2^62). *)
let mul_mod a b =
  let a = Int64.rem a p and b = Int64.rem b p in
  let rec go acc a b =
    if Int64.equal b 0L then acc
    else
      let acc =
        if Int64.logand b 1L = 1L then Int64.rem (Int64.add acc a) p else acc
      in
      go acc (Int64.rem (Int64.add a a) p) (Int64.shift_right_logical b 1)
  in
  go 0L a b

let pow_mod b e =
  let rec go acc b e =
    if Int64.equal e 0L then acc
    else
      let acc = if Int64.logand e 1L = 1L then mul_mod acc b else acc in
      go acc (mul_mod b b) (Int64.shift_right_logical e 1)
  in
  go 1L (Int64.rem b p) e

type key_pair = { priv : int64; pub : int64 }

let generate rng =
  (* Uniform in [2, p-2] by rejection. *)
  let bound = Int64.sub p 3L in
  let rec draw () =
    let r = Int64.logand (Prng.Splitmix.next rng) (Int64.sub (Int64.shift_left 1L 61) 1L) in
    if Int64.unsigned_compare r bound < 0 then Int64.add r 2L else draw ()
  in
  let priv = draw () in
  { priv; pub = pow_mod g priv }

let shared_secret ~priv ~pub =
  if
    Int64.compare pub 2L < 0
    || Int64.compare pub (Int64.sub p 2L) > 0
  then invalid_arg "Dh.shared_secret: public value out of range";
  pow_mod pub priv
