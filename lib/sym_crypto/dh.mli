(** Toy finite-field Diffie-Hellman.

    Supports the paper's footnote 1 — "Authentication using public-key
    cryptography is also possible, but is not currently implemented":
    instead of deriving the long-term key [P_a] from a password, a user
    and the leader each hold a static DH key pair and derive the same
    pairwise key from the static-static shared secret.

    The group is Z_p* with p = 2^61 - 1 (a Mersenne prime) and g = 7 —
    a 61-bit group, wildly insecure in the real world and exactly as
    honest as the rest of this repository's simulation crypto: it
    exercises the real code paths (key pairs, public-value exchange,
    shared-secret derivation) at toy strength. *)

val p : int64
(** The group modulus, 2^61 - 1. *)

val g : int64
(** The generator, 7. *)

type key_pair = { priv : int64; pub : int64 }

val generate : Prng.Splitmix.t -> key_pair
(** A fresh key pair: uniform private exponent in [\[2, p-2\]],
    public value [g^priv mod p]. *)

val shared_secret : priv:int64 -> pub:int64 -> int64
(** [shared_secret ~priv ~pub] is [pub^priv mod p].
    @raise Invalid_argument if [pub] is not in [\[2, p-2\]] (rejects
    the degenerate subgroup elements 0, 1 and p-1). *)

val mul_mod : int64 -> int64 -> int64
(** [mul_mod a b] = [a * b mod p], overflow-free (exposed for tests). *)

val pow_mod : int64 -> int64 -> int64
(** [pow_mod b e] = [b^e mod p] (exposed for tests). *)
