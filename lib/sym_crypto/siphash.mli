(** SipHash-2-4 keyed pseudo-random function (Aumasson & Bernstein).

    SipHash maps a 128-bit key and an arbitrary byte string to a 64-bit
    output. It is the single cryptographic primitive of this repository:
    the block cipher, MAC and KDF are all built from it. The
    implementation follows the reference specification and is validated
    against the published test vectors.

    The paper treats cryptography as an ideal black box (Dolev-Yao
    model); this concrete instantiation exists so that the runtime
    protocol stack manipulates real bytes — real IVs, real tags, real
    replayable ciphertexts — rather than symbolic terms. It is a
    simulation substrate, not production cryptography. *)

type key = { k0 : int64; k1 : int64 }
(** A 128-bit key as two little-endian 64-bit halves. *)

val key_of_string : string -> key
(** [key_of_string s] reads a 16-byte key.
    @raise Invalid_argument if [String.length s <> 16]. *)

val key_to_string : key -> string
(** Inverse of {!key_of_string}. *)

val hash : key -> string -> int64
(** [hash key msg] is the SipHash-2-4 output. *)

val hash_to_bytes : key -> string -> string
(** [hash_to_bytes key msg] is {!hash} rendered as 8 little-endian
    bytes (the format used by the reference test vectors). *)
