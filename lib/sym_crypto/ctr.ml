let iv_size = 8

let keystream cipher ~iv n =
  if String.length iv <> iv_size then
    invalid_arg "Ctr: iv must be 8 bytes";
  if n < 0 then invalid_arg "Ctr.keystream: negative length";
  let out = Buffer.create (n + Feistel.block_size) in
  let counter = ref 0L in
  while Buffer.length out < n do
    let blk = Bytes.create Feistel.block_size in
    Bytes.blit_string iv 0 blk 0 8;
    Byteskit.Bytes_ops.set_u64_le blk 8 !counter;
    Buffer.add_string out (Feistel.encrypt_block cipher (Bytes.unsafe_to_string blk));
    counter := Int64.add !counter 1L
  done;
  String.sub (Buffer.contents out) 0 n

let transform cipher ~iv data =
  let ks = keystream cipher ~iv (String.length data) in
  Byteskit.Bytes_ops.xor data ks
