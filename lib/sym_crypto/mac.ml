let tag_size = 16

let subkeys key =
  if String.length key <> 16 then invalid_arg "Mac: key must be 16 bytes";
  let master = Siphash.key_of_string key in
  let derive label =
    { Siphash.k0 = Siphash.hash master ("mac-subkey:" ^ label ^ ":0");
      k1 = Siphash.hash master ("mac-subkey:" ^ label ^ ":1") }
  in
  (derive "left", derive "right")

let tag ~key msg =
  let left, right = subkeys key in
  Siphash.hash_to_bytes left msg ^ Siphash.hash_to_bytes right msg

let verify ~key msg ~tag:t =
  String.length t = tag_size && Byteskit.Bytes_ops.ct_equal (tag ~key msg) t
