(** Key derivation.

    [of_password] models the Enclaves long-term key [P_a]: the paper
    assumes each prospective member shares a password-derived key with
    the leader. We derive it by iterating the PRF over the password and
    a salt (the user identity), like a toy PBKDF.

    [derive] provides domain-separated subkey derivation used for key
    separation inside {!Aead} and by the protocol layer ("one key, one
    purpose"). *)

val key_size : int
(** Derived key size in bytes (16). *)

val of_password : user:string -> password:string -> string
(** [of_password ~user ~password] is the long-term key [P_a] shared by
    user [user] and the leader. Deterministic; same inputs, same key. *)

val derive : key:string -> label:string -> string
(** [derive ~key ~label] is a 16-byte subkey of [key] for purpose
    [label]. Distinct labels give independent keys.
    @raise Invalid_argument if [String.length key <> 16]. *)
