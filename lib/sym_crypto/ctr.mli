(** Counter-mode keystream over the {!Feistel} block cipher.

    [transform] encrypts or decrypts (the operation is its own
    inverse): byte [i] of the output is byte [i] of the input XORed
    with byte [i] of the keystream [E(key, iv || counter)]. The IV is 8
    bytes and must be unique per (key, message); the Enclaves protocol
    layer generates a fresh IV per encryption. *)

val iv_size : int
(** IV size in bytes (8). *)

val transform : Feistel.t -> iv:string -> string -> string
(** [transform cipher ~iv data] XORs [data] with the keystream.
    @raise Invalid_argument if [String.length iv <> iv_size]. *)

val keystream : Feistel.t -> iv:string -> int -> string
(** [keystream cipher ~iv n] is the first [n] keystream bytes;
    exposed for testing. *)
