(** Virtual time for the discrete-event simulator, in microseconds.

    The paper's network is asynchronous: no bound on delivery delay is
    assumed by the protocols, and all verified properties are safety
    properties. Virtual time exists only to order events and to express
    latency models and rekey periods in scenarios. *)

type t = int64

val zero : t
val of_us : int -> t
val of_ms : int -> t
val of_s : int -> t
val add : t -> t -> t
val compare : t -> t -> int
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val to_float_ms : t -> float
val pp : Format.formatter -> t -> unit
