type t = int64

let zero = 0L
let of_us us = Int64.of_int us
let of_ms ms = Int64.mul (Int64.of_int ms) 1_000L
let of_s s = Int64.mul (Int64.of_int s) 1_000_000L
let add = Int64.add
let compare = Int64.compare
let ( <= ) a b = Int64.compare a b <= 0
let ( < ) a b = Int64.compare a b < 0
let to_float_ms t = Int64.to_float t /. 1_000.0
let pp fmt t = Format.fprintf fmt "%.3fms" (to_float_ms t)
