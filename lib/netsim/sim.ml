type t = {
  mutable clock : Vtime.t;
  queue : (unit -> unit) Heap.t;
  root_rng : Prng.Splitmix.t;
}

let create ?(seed = 1L) () =
  { clock = Vtime.zero; queue = Heap.create (); root_rng = Prng.Splitmix.create seed }

let now t = t.clock
let rng t = t.root_rng

type handle = { mutable cancelled : bool }

let cancel h = h.cancelled <- true
let is_cancelled h = h.cancelled

let schedule_at t ~time f =
  let time = if Vtime.(time < t.clock) then t.clock else time in
  Heap.push t.queue ~time f

let schedule t ~delay f =
  if Vtime.(delay < Vtime.zero) then invalid_arg "Sim.schedule: negative delay";
  schedule_at t ~time:(Vtime.add t.clock delay) f

let schedule_handle t ~delay f =
  let h = { cancelled = false } in
  schedule t ~delay (fun () -> if not h.cancelled then f ());
  h

let every_handle t ~period ?until f =
  if Vtime.(period <= Vtime.zero) then invalid_arg "Sim.every: period must be positive";
  let h = { cancelled = false } in
  let rec tick () =
    if not h.cancelled then begin
      f ();
      match until with
      | Some stop when Vtime.(Vtime.add t.clock period < stop) = false -> ()
      | _ -> schedule t ~delay:period tick
    end
  in
  schedule t ~delay:period tick;
  h

let every t ~period ?until f = ignore (every_handle t ~period ?until f)

let run ?until ?(max_events = max_int) t =
  let executed = ref 0 in
  let continue () =
    !executed < max_events
    &&
    match Heap.peek_time t.queue with
    | None -> false
    | Some time -> (
        match until with None -> true | Some stop -> Vtime.(time <= stop))
  in
  while continue () do
    match Heap.pop t.queue with
    | None -> ()
    | Some (time, f) ->
        t.clock <- time;
        incr executed;
        f ()
  done;
  (match until with
  | Some stop when Vtime.(t.clock < stop) && Heap.is_empty t.queue ->
      t.clock <- stop
  | _ -> ());
  !executed

let pending t = Heap.size t.queue
