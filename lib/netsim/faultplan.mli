(** Deterministic fault injection for the simulated network.

    A fault plan describes {e misfortune} — loss, corruption,
    duplication, latency spikes, timed bidirectional partitions, and
    node outages — as opposed to the {!Network.adversary} tap, which
    describes {e malice}. The two compose: the adversary inspects each
    frame first, then the fault plan is applied to whatever the
    adversary lets through.

    All random choices are drawn from a {!Prng.Splitmix} stream split
    off the network's seeded generator, so a chaos run is a pure
    function of (seed, plan): every replay is bit-for-bit identical.
    The plan itself is immutable, pure data; the mutable pieces
    (generator, {!counters}) are threaded in by {!Network}. *)

type link = {
  loss : float;  (** P(frame silently dropped). *)
  corrupt : float;  (** P(one random bit flipped). *)
  duplicate : float;  (** P(a second copy is delivered). *)
  spike_prob : float;  (** P(latency spike). *)
  spike : Vtime.t;  (** Extra latency when a spike hits. *)
}

val perfect_link : link
(** No faults. *)

val lossy_link :
  ?corrupt:float ->
  ?duplicate:float ->
  ?spike_prob:float ->
  ?spike:Vtime.t ->
  float ->
  link
(** [lossy_link p] drops each frame with probability [p]; optional
    corruption/duplication/spike knobs (spike defaults to 50 ms).
    @raise Invalid_argument if any probability is outside [0, 1]. *)

type partition = {
  west : string list;
  east : string list;
  from_ : Vtime.t;
  heal : Vtime.t;
}
(** A bidirectional cut: while [from_ <= now < heal] no frame crosses
    between a [west] node and an [east] node (either direction).
    Traffic within each side is unaffected. *)

type outage = { node : string; down : Vtime.t; up : Vtime.t option }
(** A crash/restart schedule: while down, the node neither sends nor
    receives ([up = None] means it never restarts). The node's
    automaton state is untouched — an outage models the {e network
    presence} of a fail-stopped process; protocol-level amnesia is the
    scenario's business. *)

type t = {
  default_link : link;
  links : ((string * string) * link) list;
      (** Directed per-(src, dst) overrides. *)
  partitions : partition list;
  outages : outage list;
}

val none : t

val make :
  ?default_link:link ->
  ?links:((string * string) * link) list ->
  ?partitions:partition list ->
  ?outages:outage list ->
  unit ->
  t

val uniform_loss : float -> t
(** Every link drops with the given probability. *)

val link_for : t -> src:string -> dst:string -> link
val partitioned : t -> now:Vtime.t -> src:string -> dst:string -> bool
val node_down : t -> now:Vtime.t -> string -> bool

(** Mutable tally of injected faults, one per network. *)
type counters = {
  mutable lost : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable spiked : int;
  mutable cut : int;  (** Dropped by an active partition. *)
  mutable down : int;  (** Dropped because an endpoint was down. *)
}

val fresh_counters : unit -> counters
val total_dropped : counters -> int
val pp_counters : Format.formatter -> counters -> unit

type verdict =
  | Fault_drop of [ `Loss | `Partition | `Outage ]
  | Fault_pass of { payload : string; extra : Vtime.t; copies : int }

val apply :
  t ->
  rng:Prng.Splitmix.t ->
  counters:counters ->
  now:Vtime.t ->
  src:string ->
  dst:string ->
  payload:string ->
  verdict
(** Decide one frame's fate and update [counters]. Partition and
    outage checks are deterministic in [now]; loss, corruption,
    duplication and spikes draw from [rng]. *)
