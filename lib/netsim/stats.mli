(** Summary statistics over a network {!Trace}.

    Scenario reports (examples, EXPERIMENTS.md) use these to describe
    a run quantitatively: how many frames of each kind flowed, how many
    bytes, what latencies deliveries experienced, and what the
    adversary did. *)

type t = {
  sent : int;
  delivered : int;
  dropped : int;
  injected : int;
  bytes_on_wire : int;  (** Total payload bytes of sent + injected frames. *)
  latency_min_ms : float;  (** Over delivered frames; 0 if none. *)
  latency_mean_ms : float;
  latency_max_ms : float;
}

val compute : Trace.t -> t
(** Latency is matched per (src, dst, payload) pair: the delay between
    a [Sent] record and the first subsequent [Delivered] with the same
    key. Unmatched deliveries (injections) are excluded from latency
    but counted. *)

val by_label : decode_label:(string -> string option) -> Trace.t -> (string * int) list
(** Count sent+injected frames by decoded label; [decode_label] maps
    payload bytes to a label name (e.g. via [Wire.Frame.decode]).
    Undecodable payloads count under ["<garbage>"]. Sorted by label. *)

val pp : Format.formatter -> t -> unit
