(** Summary statistics over a network {!Trace}.

    Scenario reports (examples, EXPERIMENTS.md) use these to describe
    a run quantitatively: how many frames of each kind flowed, how many
    bytes, what latencies deliveries experienced, and what the
    adversary did. *)

type t = {
  sent : int;
  delivered : int;
  dropped : int;  (** Aggregate of the three cause-split fields below. *)
  dropped_by_adversary : int;  (** Adversary tap returned [Drop]. *)
  dropped_unregistered : int;  (** Destination had no handler. *)
  dropped_by_fault : int;  (** Fault plan: loss, partition or outage. *)
  injected : int;
  unmatched_deliveries : int;
      (** Deliveries with no matching [Sent] record: injected or
          adversary-rewritten frames that reached a destination. *)
  bytes_on_wire : int;  (** Total payload bytes of sent + injected frames. *)
  latency_min_ms : float;  (** Over delivered frames; 0 if none. *)
  latency_mean_ms : float;
  latency_max_ms : float;
}

val compute : Trace.t -> t
(** Latency is matched per (src, dst, payload) pair: the delay between
    a [Sent] record and the first subsequent [Delivered] with the same
    key. Deliveries without a matching [Sent] (injections, rewrites)
    are excluded from latency and counted in
    [unmatched_deliveries]. *)

val by_label : decode_label:(string -> string option) -> Trace.t -> (string * int) list
(** Count sent+injected frames by decoded label; [decode_label] maps
    payload bytes to a label name (e.g. via [Wire.Frame.decode]).
    Undecodable payloads count under ["<garbage>"]. Sorted by label. *)

val pp : Format.formatter -> t -> unit

type storage = {
  torn_writes : int;  (** Writes where only a prefix silently landed. *)
  short_writes : int;  (** Prefix landed and the write raised EIO. *)
  dropped_fsyncs : int;  (** fsyncs silently skipped by injection. *)
  eio_injected : int;  (** Transient EIOs raised with no effect. *)
  eio_retries : int;  (** EIOs absorbed by the journal's retry loop. *)
  crash_images_replayed : int;
      (** Restarts that recovered from a captured durable crash image
          rather than the live in-memory journal. *)
}
(** Storage-fault counters — what the seeded disk-fault layer did to
    the leader's journal during a run. Computed by the driver (the
    trace does not see disk operations), rendered with {!pp_named}
    via {!storage_named}. *)

val empty_storage : storage

val storage_named : storage -> (string * int) list
(** Labelled counters for {!pp_named}, in declaration order. *)

type replication = {
  records_shipped : int;  (** Append frames the primary put on the wire. *)
  records_acked : int;  (** Ack frames the primary accepted. *)
  snapshots_shipped : int;  (** Full-image frames (creation, compaction, catch-up). *)
  heartbeats_shipped : int;
  gap_fetches : int;  (** Backup-detected gaps that triggered a re-send request. *)
  rejected_forged : int;  (** Replication frames whose seal failed to open. *)
  rejected_replayed : int;  (** Duplicate or out-of-window sequence numbers. *)
  rejected_stale : int;  (** Frames from a superseded primary term. *)
  stale_notices : int;
      (** [Repl_stale] demotion signals sent back at a superseded
          source's traffic. *)
  stale_sourcing_stopped : int;
      (** Times a source stopped shipping because an authentic frame
          proved a strictly higher term exists. *)
  demotions : int;
      (** Sources that stood down and re-attached to the live source
          as a catching-up replica. *)
  warm_promotions : int;  (** Backups promoted from a usable replica. *)
  cold_promotions : int;  (** Promotions that fell back to cold restart. *)
}
(** Journal-replication counters — what the warm-standby channel did
    during a run. Computed by the failover harness, rendered with
    {!pp_named} via {!replication_named}. *)

val empty_replication : replication

val replication_named : replication -> (string * int) list
(** Labelled counters for {!pp_named}, in declaration order. *)

type delivery = {
  queued : int;  (** Records pushed into offline members' durable queues. *)
  drained : int;  (** Records handed to a reconnected member's channel. *)
  deduped : int;
      (** Redeliveries absorbed by members' delivery floors (summed
          over members). *)
  resealed : int;
      (** Drained records whose queued epoch was behind the current
          one but inside the policy window — delivered under the live
          session key. *)
  rejected_stale : int;  (** Records durably dropped beyond the window. *)
  delivered_stale : int;  (** Records delivered flagged stale. *)
  queue_bytes_hwm : int;  (** High-water mark of summed queue bytes. *)
}
(** Store-and-forward delivery counters — what the offline-member
    queues did during a run. Computed by the driver / churn harness,
    rendered with {!pp_named} via {!delivery_named}. *)

val empty_delivery : delivery

val delivery_named : delivery -> (string * int) list
(** Labelled counters for {!pp_named}, in declaration order. *)

type sentinel = {
  observations : int;  (** Evidence events scored, all peers summed. *)
  rate_limits : int;  (** Escalations into [Rate_limited]. *)
  quarantines : int;  (** Escalations into [Quarantined]. *)
  expulsions : int;  (** Escalations into [Expelled]. *)
  emergency_rekeys : int;
      (** Group rekeys forced by containment, retiring the suspect's
          key material group-wide. *)
  quarantined_dropped : int;
      (** Inbound frames from quarantined peers dropped before
          protocol processing. *)
  preauth_admitted : int;  (** Pre-auth frames passed to the handshake. *)
  preauth_throttled : int;  (** Pre-auth frames denied by token bucket. *)
  preauth_capped : int;  (** Pre-auth frames denied by the half-open cap. *)
  preauth_queue_dropped : int;
      (** Pre-auth frames lost to the bounded service queue's tail —
          the overload signal when admission control is off. *)
  queues_purged : int;
      (** Quarantined members' delivery queues durably purged instead
          of salvaged. *)
  suspicion_shipped : int;  (** Suspicion snapshots shipped to backups. *)
  suspicion_imported : int;
      (** Suspicion snapshots adopted by a promoted successor. *)
  wire_observations : int;
      (** Evidence events whose frame arrived [Via_wire] — charged at
          full weight to the wire pseudo-peer, not the claimed name. *)
  off_path_observations : int;
      (** Evidence events charged to a claimed sender at the discounted
          weight because the frame did not arrive over its socket. *)
  framing_holds : int;
      (** Times the corroboration gate clamped a raw quarantine-level
          score back to [Rate_limited] because the evidence lacked an
          on-path or two-class basis. *)
  challenges_issued : int;
      (** Liveness challenges the leader sent to corroboration-blocked
          peers ("prove liveness under your session key"). *)
  attestations : int;
      (** Challenges answered by a live session-key ack, relieving the
          answering peer's off-path score. *)
  injections_blocked : int;
      (** Wire-injected frames dropped at the leader's door after the
          wire pseudo-peer itself reached quarantine. *)
}
(** Intrusion-containment counters — what the leader's sentinel did
    during a run. Computed by the driver / intrude harness, rendered
    with {!pp_named} via {!sentinel_named}. *)

val empty_sentinel : sentinel

val sentinel_named : sentinel -> (string * int) list
(** Labelled counters for {!pp_named}, in declaration order. *)

type resource = {
  degraded_entries : int;
      (** Times the leader stepped down a rung of the degraded-mode
          ladder (any rung, counted per entry). *)
  records_shed : int;
      (** Delivery records dropped oldest-first by the byte budgets,
          each covered by a durable [Drop] marker. *)
  enospc_hits : int;  (** Writes refused by the seeded byte budget. *)
  fsync_stall_ms_max : int;
      (** Largest injected fsync-latency spike observed, ms. *)
  repl_lag_snapshots : int;
      (** Snapshot escalations forced by a backup exceeding its lag
          budget, re-bounding the source's in-memory op buffer. *)
}
(** Resource-exhaustion counters — what the degraded-mode machinery
    did during a run. Computed by the driver, rendered with
    {!pp_named} via {!resource_named}. *)

val empty_resource : resource

val resource_named : resource -> (string * int) list
(** Labelled counters for {!pp_named}, in declaration order. *)

val pp_named : Format.formatter -> (string * int) list -> unit
(** Render labelled counters as ["name=value name=value ..."] — used
    by the chaos CLI for retry and recovery counter summaries. *)
