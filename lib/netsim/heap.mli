(** Binary min-heap keyed by [(Vtime.t, sequence)].

    The sequence number breaks ties so that events scheduled for the
    same instant fire in insertion order — determinism the whole test
    suite relies on. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:Vtime.t -> 'a -> unit
(** Insert with the next sequence number. *)

val pop : 'a t -> (Vtime.t * 'a) option
(** Remove and return the earliest element. *)

val peek_time : 'a t -> Vtime.t option
