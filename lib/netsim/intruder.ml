type arm =
  | Preauth_flood
  | Handshake_storm
  | Forge_burst
  | Replay_burst
  | Frame_replay
  | Frame_flood

let arm_name = function
  | Preauth_flood -> "preauth-flood"
  | Handshake_storm -> "handshake-storm"
  | Forge_burst -> "forge-burst"
  | Replay_burst -> "replay-burst"
  | Frame_replay -> "frame-replay"
  | Frame_flood -> "frame-flood"

let arm_of_name = function
  | "preauth-flood" -> Some Preauth_flood
  | "handshake-storm" -> Some Handshake_storm
  | "forge-burst" -> Some Forge_burst
  | "replay-burst" -> Some Replay_burst
  | "frame-replay" -> Some Frame_replay
  | "frame-flood" -> Some Frame_flood
  | _ -> None

type campaign = {
  arm : arm;
  start : Vtime.t;
  stop : Vtime.t;
  period : Vtime.t;
  burst : int;
  jitter : float;
}

let campaign ?(jitter = 0.25) ~arm ~start ~stop ~period ~burst () =
  if Vtime.(stop < start) then invalid_arg "Intruder.campaign: stop < start";
  if Vtime.(period <= Vtime.zero) then
    invalid_arg "Intruder.campaign: period must be positive";
  if burst <= 0 then invalid_arg "Intruder.campaign: burst must be positive";
  if jitter < 0.0 || jitter >= 1.0 then
    invalid_arg "Intruder.campaign: jitter must be in [0,1)";
  { arm; start; stop; period; burst; jitter }

let pp_campaign fmt c =
  Format.fprintf fmt "%s[%a..%a period=%a burst=%d]" (arm_name c.arm) Vtime.pp
    c.start Vtime.pp c.stop Vtime.pp c.period c.burst

type counters = {
  mutable flood_frames : int;
  mutable storm_frames : int;
  mutable forged_frames : int;
  mutable replayed_frames : int;
  mutable framed_replays : int;
  mutable framed_floods : int;
}

let fresh_counters () =
  {
    flood_frames = 0;
    storm_frames = 0;
    forged_frames = 0;
    replayed_frames = 0;
    framed_replays = 0;
    framed_floods = 0;
  }

let counters_named c =
  [
    ("flood_frames", c.flood_frames);
    ("storm_frames", c.storm_frames);
    ("forged_frames", c.forged_frames);
    ("replayed_frames", c.replayed_frames);
    ("framed_replays", c.framed_replays);
    ("framed_floods", c.framed_floods);
  ]

let record c arm n =
  match arm with
  | Preauth_flood -> c.flood_frames <- c.flood_frames + n
  | Handshake_storm -> c.storm_frames <- c.storm_frames + n
  | Forge_burst -> c.forged_frames <- c.forged_frames + n
  | Replay_burst -> c.replayed_frames <- c.replayed_frames + n
  | Frame_replay -> c.framed_replays <- c.framed_replays + n
  | Frame_flood -> c.framed_floods <- c.framed_floods + n

type t = { rng : Prng.Splitmix.t; counters : counters }

let create ~rng () =
  { rng = Prng.Splitmix.split rng; counters = fresh_counters () }

let counters t = t.counters

(* The campaign's firing plan, materialised up front: one (time, burst)
   pair per period tick between [start] and [stop], each tick displaced
   by a seeded jitter fraction of the period. Consuming the plan
   mutates only this intruder's private split stream, so two intruders
   built from the same root seed produce identical plans — the property
   the replay tests pin. *)
let plan t c =
  let period_f = Int64.to_float c.period in
  let rec ticks acc at =
    if Vtime.(c.stop < at) then List.rev acc
    else
      let displaced =
        if c.jitter = 0.0 then at
        else
          let f = (Prng.Splitmix.next_float t.rng *. 2.0) -. 1.0 in
          Int64.add at (Int64.of_float (period_f *. c.jitter *. f))
      in
      let displaced = if Vtime.(displaced < c.start) then c.start else displaced in
      ticks ((displaced, c.burst) :: acc) (Vtime.add at c.period)
  in
  ticks [] c.start
