type link = {
  loss : float;
  corrupt : float;
  duplicate : float;
  spike_prob : float;
  spike : Vtime.t;
}

let perfect_link =
  { loss = 0.0; corrupt = 0.0; duplicate = 0.0; spike_prob = 0.0; spike = Vtime.zero }

let check_prob name p =
  if p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Faultplan: %s probability %g outside [0,1]" name p)

let lossy_link ?(corrupt = 0.0) ?(duplicate = 0.0) ?(spike_prob = 0.0)
    ?(spike = Vtime.of_ms 50) loss =
  check_prob "loss" loss;
  check_prob "corrupt" corrupt;
  check_prob "duplicate" duplicate;
  check_prob "spike" spike_prob;
  { loss; corrupt; duplicate; spike_prob; spike }

type partition = {
  west : string list;
  east : string list;
  from_ : Vtime.t;
  heal : Vtime.t;
}

type outage = { node : string; down : Vtime.t; up : Vtime.t option }

type t = {
  default_link : link;
  links : ((string * string) * link) list;
  partitions : partition list;
  outages : outage list;
}

let none =
  { default_link = perfect_link; links = []; partitions = []; outages = [] }

let make ?(default_link = perfect_link) ?(links = []) ?(partitions = [])
    ?(outages = []) () =
  { default_link; links; partitions; outages }

let uniform_loss p = { none with default_link = lossy_link p }

let link_for t ~src ~dst =
  match List.assoc_opt (src, dst) t.links with
  | Some l -> l
  | None -> t.default_link

let active_interval ~now ~from_ ~until_ =
  Vtime.(from_ <= now) && Vtime.(now < until_)

let separates p ~src ~dst =
  (List.mem src p.west && List.mem dst p.east)
  || (List.mem src p.east && List.mem dst p.west)

let partitioned t ~now ~src ~dst =
  List.exists
    (fun p ->
      active_interval ~now ~from_:p.from_ ~until_:p.heal && separates p ~src ~dst)
    t.partitions

let node_down t ~now node =
  List.exists
    (fun o ->
      o.node = node
      && Vtime.(o.down <= now)
      && match o.up with None -> true | Some up -> Vtime.(now < up))
    t.outages

type counters = {
  mutable lost : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable spiked : int;
  mutable cut : int;
  mutable down : int;
}

let fresh_counters () =
  { lost = 0; corrupted = 0; duplicated = 0; spiked = 0; cut = 0; down = 0 }

let total_dropped c = c.lost + c.cut + c.down

let pp_counters fmt c =
  Format.fprintf fmt
    "lost=%d corrupted=%d duplicated=%d spiked=%d cut=%d down=%d" c.lost
    c.corrupted c.duplicated c.spiked c.cut c.down

type verdict =
  | Fault_drop of [ `Loss | `Partition | `Outage ]
  | Fault_pass of { payload : string; extra : Vtime.t; copies : int }

let hit rng p = p > 0.0 && Prng.Splitmix.next_float rng < p

let flip_one_bit rng payload =
  if String.length payload = 0 then payload
  else begin
    let b = Bytes.of_string payload in
    let i = Prng.Splitmix.next_int rng (Bytes.length b) in
    let bit = 1 lsl Prng.Splitmix.next_int rng 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit));
    Bytes.to_string b
  end

let apply t ~rng ~counters ~now ~src ~dst ~payload =
  if node_down t ~now src || node_down t ~now dst then begin
    counters.down <- counters.down + 1;
    Fault_drop `Outage
  end
  else if partitioned t ~now ~src ~dst then begin
    counters.cut <- counters.cut + 1;
    Fault_drop `Partition
  end
  else begin
    let link = link_for t ~src ~dst in
    if hit rng link.loss then begin
      counters.lost <- counters.lost + 1;
      Fault_drop `Loss
    end
    else begin
      let payload =
        if hit rng link.corrupt then begin
          counters.corrupted <- counters.corrupted + 1;
          flip_one_bit rng payload
        end
        else payload
      in
      let extra =
        if hit rng link.spike_prob then begin
          counters.spiked <- counters.spiked + 1;
          link.spike
        end
        else Vtime.zero
      in
      let copies =
        if hit rng link.duplicate then begin
          counters.duplicated <- counters.duplicated + 1;
          2
        end
        else 1
      in
      Fault_pass { payload; extra; copies }
    end
  end
