(** Seeded compromised-insider campaign plans.

    A sibling of {!Faultplan} for the {e insider} threat model: where
    the fault plan perturbs honest traffic (loss, corruption,
    partitions), an intruder plan schedules {e hostile} traffic — the
    A1/A2/A3 campaigns a compromised member can run with real key
    material. This module owns only the deterministic scheduling and
    the per-arm accounting; crafting the actual frames requires key
    material and protocol knowledge, so the actor lives above the
    network layer (see [Adversary.Insider]) and injects at the times
    this plan dictates.

    Like every other fault in the simulator, a campaign is a pure
    function of the seed: the plan is drawn from a private split of the
    root PRNG stream, so replaying a seed replays the attack
    tick-for-tick. *)

type arm =
  | Preauth_flood
      (** A1: flood the unauthenticated handshake surface — junk
          AuthInitReq frames under fake names, valid ones under the
          insider's own identity, forged ConnectionDenied at joining
          victims. *)
  | Handshake_storm
      (** Valid fresh-nonce AuthInitReq spam under the insider's own
          identity: every frame restarts the handshake, churning the
          leader's half-open table. *)
  | Forge_burst
      (** A2: frames sealed under expired or mismatched key material
          (retired session keys, the group key where a session key is
          required), failing MAC checks at the receiver. *)
  | Replay_burst
      (** A3: verbatim re-injection of frames captured off the wire —
          stale-nonce admin traffic, old handshake legs. *)
  | Frame_replay
      (** Framing, replay flavor: a {e wire-level outsider} (no keys,
          no endpoint) re-injects a chosen victim's own captured
          frames verbatim, trying to pin the resulting replay evidence
          on the victim and get an honest member quarantined. *)
  | Frame_flood
      (** Framing, flood flavor: the outsider floods the
          unauthenticated handshake surface with junk frames that
          {e claim} the victim as sender, trying to spend the victim's
          admission budget and pin pre-auth pressure on it. *)

val arm_name : arm -> string
val arm_of_name : string -> arm option

type campaign = {
  arm : arm;
  start : Vtime.t;
  stop : Vtime.t;  (** inclusive: ticks at exactly [stop] still fire *)
  period : Vtime.t;  (** nominal spacing between bursts *)
  burst : int;  (** frames injected per tick *)
  jitter : float;  (** fraction of [period] each tick is displaced by *)
}

val campaign :
  ?jitter:float ->
  arm:arm ->
  start:Vtime.t ->
  stop:Vtime.t ->
  period:Vtime.t ->
  burst:int ->
  unit ->
  campaign
(** @raise Invalid_argument on an empty window, non-positive period or
    burst, or jitter outside [0,1). Default jitter 0.25. *)

val pp_campaign : Format.formatter -> campaign -> unit

type counters = {
  mutable flood_frames : int;
  mutable storm_frames : int;
  mutable forged_frames : int;
  mutable replayed_frames : int;
  mutable framed_replays : int;
  mutable framed_floods : int;
}
(** Frames the actor actually injected, per arm — bumped by the actor
    through {!record}, so the run report attributes hostile traffic
    the same way {!Faultplan} attributes drops. *)

val fresh_counters : unit -> counters
val counters_named : counters -> (string * int) list
val record : counters -> arm -> int -> unit

type t

val create : rng:Prng.Splitmix.t -> unit -> t
(** Splits a private stream off [rng]: the plans this intruder draws
    depend only on the seed and the order of {!plan} calls. *)

val counters : t -> counters

val plan : t -> campaign -> (Vtime.t * int) list
(** The campaign's firing schedule, oldest first: one [(time, burst)]
    pair per period tick in [\[start, stop\]], each displaced by a
    seeded jitter of at most [jitter * period] (clamped to [start]).
    Deterministic per seed. *)
