(** The insecure asynchronous network of the paper.

    Nodes register a byte-level frame handler under an agent name.
    Every frame an honest node sends passes through the adversary tap
    (if installed), which may deliver, drop, delay, or replace it; the
    adversary can also inject arbitrary bytes toward any node at any
    time. Nothing authenticates the physical source — the apparent
    sender lives inside the (forgeable) frame.

    Delivery on each (src, dst) pair is FIFO by default (latencies are
    non-decreasing per pair), matching Enclaves' use of point-to-point
    stream connections; the adversary is free to break any ordering by
    drop-and-reinject. *)

type t

type verdict =
  | Deliver  (** Pass the frame through unchanged. *)
  | Drop  (** Suppress it. *)
  | Replace of string  (** Substitute different bytes. *)
  | Delay of Vtime.t  (** Deliver after an extra delay. *)

type adversary = src:string -> dst:string -> payload:string -> verdict

val create :
  sim:Sim.t -> ?latency_us:int * int -> ?trace:Trace.t -> unit -> t
(** [create ~sim ()] builds a network on [sim]'s scheduler.
    [latency_us = (lo, hi)] draws per-frame latency uniformly from
    [lo..hi] microseconds (default [(500, 1500)]). *)

val trace : t -> Trace.t

val register : t -> string -> (string -> unit) -> unit
(** [register t name handler] attaches a node. Re-registering replaces
    the handler (used for node restart scenarios). *)

val unregister : t -> string -> unit
(** Detach a node; frames to it are silently lost (recorded as
    delivered to nobody — dropped). *)

val send : t -> src:string -> dst:string -> string -> unit
(** Hand a frame to the network for asynchronous delivery. *)

val set_adversary : t -> adversary option -> unit
(** Install or remove the man-in-the-middle tap. *)

val set_faultplan : t -> Faultplan.t option -> unit
(** Install or remove a deterministic {!Faultplan}. The plan applies
    after the adversary tap, to every honest frame the adversary lets
    through (adversary injections bypass it). Faults draw from a
    dedicated PRNG split off the network's stream the first time a
    plan is installed, so runs without a plan are unaffected and runs
    with one replay bit-for-bit from the simulation seed. *)

val faultplan : t -> Faultplan.t option
val fault_counters : t -> Faultplan.counters
(** Running tally of faults injected so far on this network. *)

val inject : t -> ?origin:string -> dst:string -> string -> unit
(** Adversary primitive: deliver arbitrary bytes to [dst] after normal
    latency, recorded as an injection. [origin] is the endpoint the
    bytes were pushed through: a compromised insider using its own
    connection passes [~origin:insider] and the frame arrives tagged
    [Via_socket insider]; omitting it models a raw wire write and the
    frame arrives [Via_wire]. *)

val delivering_via : t -> Trace.via option
(** The injection path of the frame whose handler is executing right
    now — [Some _] only for the duration of the synchronous handler
    call, [None] outside one. Receivers use it to attribute evidence
    to the transport path instead of the claimed sender. *)
