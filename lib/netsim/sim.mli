(** Discrete-event simulation engine.

    A single-threaded scheduler: callbacks are scheduled at virtual
    times and executed in time order (insertion order within one
    instant). All randomness flows from the engine's seeded PRNG, so a
    whole scenario — protocol runs, latencies, attacker choices — is a
    pure function of the seed. *)

type t

val create : ?seed:int64 -> unit -> t
(** [create ~seed ()] makes an engine; default seed 1. *)

val now : t -> Vtime.t
val rng : t -> Prng.Splitmix.t
(** The engine's root PRNG; components should {!Prng.Splitmix.split}
    it rather than share one stream. *)

type handle
(** A cancellation handle for a scheduled or periodic callback. A
    cancelled callback's queue entry still pops (the heap does not
    support removal) but the callback body is skipped and, for
    periodic tasks, no further occurrence is scheduled — so cancelling
    every periodic task lets the event queue drain and [run] reach
    quiescence. *)

val cancel : handle -> unit
(** Idempotent; takes effect from the next firing. *)

val is_cancelled : handle -> bool

val schedule : t -> delay:Vtime.t -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t + delay].
    @raise Invalid_argument if [delay < 0]. *)

val schedule_handle : t -> delay:Vtime.t -> (unit -> unit) -> handle
(** Like {!schedule} but cancellable. *)

val schedule_at : t -> time:Vtime.t -> (unit -> unit) -> unit
(** Absolute-time variant; times in the past fire at the current
    instant. *)

val every : t -> period:Vtime.t -> ?until:Vtime.t -> (unit -> unit) -> unit
(** [every t ~period f] runs [f] each [period], first firing after one
    period, stopping after [until] when given. *)

val every_handle :
  t -> period:Vtime.t -> ?until:Vtime.t -> (unit -> unit) -> handle
(** Like {!every} but returns a handle; {!cancel} tears the schedule
    down, which is the only way to stop an [until]-less periodic task
    (e.g. a heartbeat or periodic rekey) before the simulation ends. *)

val run : ?until:Vtime.t -> ?max_events:int -> t -> int
(** [run t] executes events until the queue empties, [until] is
    passed, or [max_events] have fired. Returns the number of events
    executed. *)

val pending : t -> int
