type t = {
  sent : int;
  delivered : int;
  dropped : int;
  dropped_by_adversary : int;
  dropped_unregistered : int;
  dropped_by_fault : int;
  injected : int;
  unmatched_deliveries : int;
  bytes_on_wire : int;
  latency_min_ms : float;
  latency_mean_ms : float;
  latency_max_ms : float;
}

let compute trace =
  let sent = ref 0
  and delivered = ref 0
  and dropped = ref 0
  and dropped_adv = ref 0
  and dropped_unreg = ref 0
  and dropped_fault = ref 0
  and injected = ref 0
  and unmatched = ref 0
  and bytes = ref 0 in
  (* Pending send times keyed by (src, dst, payload); FIFO per key. *)
  let pending : (string * string * string, Vtime.t Queue.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let latencies = ref [] in
  List.iter
    (fun entry ->
      match entry with
      | Trace.Sent { time; src; dst; payload } ->
          incr sent;
          bytes := !bytes + String.length payload;
          let key = (src, dst, payload) in
          let q =
            match Hashtbl.find_opt pending key with
            | Some q -> q
            | None ->
                let q = Queue.create () in
                Hashtbl.replace pending key q;
                q
          in
          Queue.add time q
      | Trace.Delivered { time; src; dst; payload; _ } -> (
          incr delivered;
          match Hashtbl.find_opt pending (src, dst, payload) with
          | Some q when not (Queue.is_empty q) ->
              let t0 = Queue.pop q in
              latencies := Vtime.to_float_ms (Int64.sub time t0) :: !latencies
          | _ ->
              (* No matching Sent: an injected or adversary-rewritten
                 frame reached its destination. *)
              incr unmatched)
      | Trace.Dropped { cause; _ } -> (
          incr dropped;
          match cause with
          | Trace.By_adversary -> incr dropped_adv
          | Trace.Unregistered -> incr dropped_unreg
          | Trace.By_fault -> incr dropped_fault)
      | Trace.Injected { payload; _ } ->
          incr injected;
          bytes := !bytes + String.length payload)
    (Trace.entries trace);
  let lats = !latencies in
  let n = List.length lats in
  let mean = if n = 0 then 0.0 else List.fold_left ( +. ) 0.0 lats /. float_of_int n in
  let min_ = List.fold_left min infinity lats in
  let max_ = List.fold_left max neg_infinity lats in
  {
    sent = !sent;
    delivered = !delivered;
    dropped = !dropped;
    dropped_by_adversary = !dropped_adv;
    dropped_unregistered = !dropped_unreg;
    dropped_by_fault = !dropped_fault;
    injected = !injected;
    unmatched_deliveries = !unmatched;
    bytes_on_wire = !bytes;
    latency_min_ms = (if n = 0 then 0.0 else min_);
    latency_mean_ms = mean;
    latency_max_ms = (if n = 0 then 0.0 else max_);
  }

let by_label ~decode_label trace =
  let counts = Hashtbl.create 16 in
  let bump name =
    Hashtbl.replace counts name (1 + Option.value ~default:0 (Hashtbl.find_opt counts name))
  in
  List.iter
    (fun entry ->
      match entry with
      | Trace.Sent { payload; _ } | Trace.Injected { payload; _ } ->
          bump (Option.value ~default:"<garbage>" (decode_label payload))
      | Trace.Delivered _ | Trace.Dropped _ -> ())
    (Trace.entries trace);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort compare

let pp fmt t =
  Format.fprintf fmt
    "sent=%d delivered=%d dropped=%d (adv=%d unreg=%d fault=%d) injected=%d \
     unmatched=%d bytes=%d latency(ms) min/mean/max=%.2f/%.2f/%.2f"
    t.sent t.delivered t.dropped t.dropped_by_adversary
    t.dropped_unregistered t.dropped_by_fault t.injected
    t.unmatched_deliveries t.bytes_on_wire t.latency_min_ms t.latency_mean_ms
    t.latency_max_ms

type storage = {
  torn_writes : int;
  short_writes : int;
  dropped_fsyncs : int;
  eio_injected : int;
  eio_retries : int;
  crash_images_replayed : int;
}

let empty_storage =
  {
    torn_writes = 0;
    short_writes = 0;
    dropped_fsyncs = 0;
    eio_injected = 0;
    eio_retries = 0;
    crash_images_replayed = 0;
  }

let storage_named s =
  [
    ("torn_writes", s.torn_writes);
    ("short_writes", s.short_writes);
    ("dropped_fsyncs", s.dropped_fsyncs);
    ("eio_injected", s.eio_injected);
    ("eio_retries", s.eio_retries);
    ("crash_images_replayed", s.crash_images_replayed);
  ]

type replication = {
  records_shipped : int;
  records_acked : int;
  snapshots_shipped : int;
  heartbeats_shipped : int;
  gap_fetches : int;
  rejected_forged : int;
  rejected_replayed : int;
  rejected_stale : int;
  stale_notices : int;
  stale_sourcing_stopped : int;
  demotions : int;
  warm_promotions : int;
  cold_promotions : int;
}

let empty_replication =
  {
    records_shipped = 0;
    records_acked = 0;
    snapshots_shipped = 0;
    heartbeats_shipped = 0;
    gap_fetches = 0;
    rejected_forged = 0;
    rejected_replayed = 0;
    rejected_stale = 0;
    stale_notices = 0;
    stale_sourcing_stopped = 0;
    demotions = 0;
    warm_promotions = 0;
    cold_promotions = 0;
  }

let replication_named r =
  [
    ("records_shipped", r.records_shipped);
    ("records_acked", r.records_acked);
    ("snapshots_shipped", r.snapshots_shipped);
    ("heartbeats_shipped", r.heartbeats_shipped);
    ("gap_fetches", r.gap_fetches);
    ("rejected_forged", r.rejected_forged);
    ("rejected_replayed", r.rejected_replayed);
    ("rejected_stale", r.rejected_stale);
    ("stale_notices", r.stale_notices);
    ("stale_sourcing_stopped", r.stale_sourcing_stopped);
    ("demotions", r.demotions);
    ("warm_promotions", r.warm_promotions);
    ("cold_promotions", r.cold_promotions);
  ]

type delivery = {
  queued : int;
  drained : int;
  deduped : int;
  resealed : int;
  rejected_stale : int;
  delivered_stale : int;
  queue_bytes_hwm : int;
}

let empty_delivery =
  {
    queued = 0;
    drained = 0;
    deduped = 0;
    resealed = 0;
    rejected_stale = 0;
    delivered_stale = 0;
    queue_bytes_hwm = 0;
  }

let delivery_named d =
  [
    ("queued", d.queued);
    ("drained", d.drained);
    ("deduped", d.deduped);
    ("resealed", d.resealed);
    ("rejected_stale", d.rejected_stale);
    ("delivered_stale", d.delivered_stale);
    ("queue_bytes_hwm", d.queue_bytes_hwm);
  ]

type sentinel = {
  observations : int;
  rate_limits : int;
  quarantines : int;
  expulsions : int;
  emergency_rekeys : int;
  quarantined_dropped : int;
  preauth_admitted : int;
  preauth_throttled : int;
  preauth_capped : int;
  preauth_queue_dropped : int;
  queues_purged : int;
  suspicion_shipped : int;
  suspicion_imported : int;
  wire_observations : int;
  off_path_observations : int;
  framing_holds : int;
  challenges_issued : int;
  attestations : int;
  injections_blocked : int;
}

let empty_sentinel =
  {
    observations = 0;
    rate_limits = 0;
    quarantines = 0;
    expulsions = 0;
    emergency_rekeys = 0;
    quarantined_dropped = 0;
    preauth_admitted = 0;
    preauth_throttled = 0;
    preauth_capped = 0;
    preauth_queue_dropped = 0;
    queues_purged = 0;
    suspicion_shipped = 0;
    suspicion_imported = 0;
    wire_observations = 0;
    off_path_observations = 0;
    framing_holds = 0;
    challenges_issued = 0;
    attestations = 0;
    injections_blocked = 0;
  }

let sentinel_named s =
  [
    ("observations", s.observations);
    ("rate_limits", s.rate_limits);
    ("quarantines", s.quarantines);
    ("expulsions", s.expulsions);
    ("emergency_rekeys", s.emergency_rekeys);
    ("quarantined_dropped", s.quarantined_dropped);
    ("preauth_admitted", s.preauth_admitted);
    ("preauth_throttled", s.preauth_throttled);
    ("preauth_capped", s.preauth_capped);
    ("preauth_queue_dropped", s.preauth_queue_dropped);
    ("queues_purged", s.queues_purged);
    ("suspicion_shipped", s.suspicion_shipped);
    ("suspicion_imported", s.suspicion_imported);
    ("wire_observations", s.wire_observations);
    ("off_path_observations", s.off_path_observations);
    ("framing_holds", s.framing_holds);
    ("challenges_issued", s.challenges_issued);
    ("attestations", s.attestations);
    ("injections_blocked", s.injections_blocked);
  ]

type resource = {
  degraded_entries : int;
  records_shed : int;
  enospc_hits : int;
  fsync_stall_ms_max : int;
  repl_lag_snapshots : int;
}

let empty_resource =
  {
    degraded_entries = 0;
    records_shed = 0;
    enospc_hits = 0;
    fsync_stall_ms_max = 0;
    repl_lag_snapshots = 0;
  }

let resource_named r =
  [
    ("degraded_entries", r.degraded_entries);
    ("records_shed", r.records_shed);
    ("enospc_hits", r.enospc_hits);
    ("fsync_stall_ms_max", r.fsync_stall_ms_max);
    ("repl_lag_snapshots", r.repl_lag_snapshots);
  ]

let pp_named fmt counters =
  let pp_one fmt (name, v) = Format.fprintf fmt "%s=%d" name v in
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
    pp_one fmt counters
