type drop_cause = By_adversary | Unregistered | By_fault

let drop_cause_to_string = function
  | By_adversary -> "adversary"
  | Unregistered -> "unregistered"
  | By_fault -> "fault"

type via = Via_socket of string | Via_wire

let via_to_string = function
  | Via_socket owner -> "socket:" ^ owner
  | Via_wire -> "wire"

type entry =
  | Sent of { time : Vtime.t; src : string; dst : string; payload : string }
  | Delivered of {
      time : Vtime.t;
      src : string;
      dst : string;
      payload : string;
      via : via;
    }
  | Dropped of {
      time : Vtime.t;
      src : string;
      dst : string;
      payload : string;
      cause : drop_cause;
    }
  | Injected of {
      time : Vtime.t;
      dst : string;
      payload : string;
      origin : string option;
    }

type t = { mutable rev_entries : entry list; mutable length : int }

let create () = { rev_entries = []; length = 0 }

let record t e =
  t.rev_entries <- e :: t.rev_entries;
  t.length <- t.length + 1

let entries t = List.rev t.rev_entries
let length t = t.length

let payloads t =
  List.filter_map
    (function
      | Sent { payload; _ } | Injected { payload; _ } -> Some payload
      | Delivered _ | Dropped _ -> None)
    (entries t)

let pp_entry fmt = function
  | Sent { time; src; dst; payload } ->
      Format.fprintf fmt "[%a] SENT %s->%s (%d bytes)" Vtime.pp time src dst
        (String.length payload)
  | Delivered { time; src; dst; payload; via } ->
      Format.fprintf fmt "[%a] DLVR %s->%s (%d bytes, via %s)" Vtime.pp time
        src dst (String.length payload) (via_to_string via)
  | Dropped { time; src; dst; payload; cause } ->
      Format.fprintf fmt "[%a] DROP %s->%s (%d bytes, %s)" Vtime.pp time src
        dst (String.length payload)
        (drop_cause_to_string cause)
  | Injected { time; dst; payload; origin } ->
      Format.fprintf fmt "[%a] INJT %s->%s (%d bytes)" Vtime.pp time
        (match origin with Some o -> o ^ "!" | None -> "<wire>")
        dst (String.length payload)
