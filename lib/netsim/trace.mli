(** Network event trace.

    Mirrors the paper's [trace(q)]: the record of everything that has
    happened on the network, visible to every agent (the attacker
    reads it; tests and the runtime property checkers assert over it).
    Payloads are raw frame bytes — the trace is below the crypto
    boundary, so recording them leaks nothing the network would not. *)

type drop_cause =
  | By_adversary  (** The adversary tap returned [Drop]. *)
  | Unregistered  (** No handler registered for the destination. *)
  | By_fault  (** Suppressed by the {!Faultplan} (loss/partition/outage). *)

val drop_cause_to_string : drop_cause -> string

type entry =
  | Sent of { time : Vtime.t; src : string; dst : string; payload : string }
      (** An honest node handed a frame to the network. *)
  | Delivered of { time : Vtime.t; src : string; dst : string; payload : string }
      (** The network invoked [dst]'s handler. *)
  | Dropped of {
      time : Vtime.t;
      src : string;
      dst : string;
      payload : string;
      cause : drop_cause;
    }
      (** The frame was suppressed; [cause] attributes the loss. *)
  | Injected of { time : Vtime.t; dst : string; payload : string }
      (** The adversary placed a frame of its own making. *)

type t

val create : unit -> t
val record : t -> entry -> unit
val entries : t -> entry list
(** Oldest first. *)

val length : t -> int
val payloads : t -> string list
(** Every payload that appeared on the wire, oldest first — the
    attacker's raw observation set. *)

val pp_entry : Format.formatter -> entry -> unit
