(** Network event trace.

    Mirrors the paper's [trace(q)]: the record of everything that has
    happened on the network, visible to every agent (the attacker
    reads it; tests and the runtime property checkers assert over it).
    Payloads are raw frame bytes — the trace is below the crypto
    boundary, so recording them leaks nothing the network would not. *)

type drop_cause =
  | By_adversary  (** The adversary tap returned [Drop]. *)
  | Unregistered  (** No handler registered for the destination. *)
  | By_fault  (** Suppressed by the {!Faultplan} (loss/partition/outage). *)

val drop_cause_to_string : drop_cause -> string

(** The injection path a delivered frame arrived over — the transport
    provenance the simulated network can vouch for, as opposed to the
    sender name the frame {e claims}. A frame a registered node handed
    to its own network endpoint arrives [Via_socket node]; a frame the
    adversary injected straight onto the wire (no endpoint) arrives
    [Via_wire]. A compromised member's own injections still arrive
    [Via_socket member] — it owns that endpoint — which is exactly the
    distinction the sentinel's evidence attribution keys on. *)
type via = Via_socket of string | Via_wire

val via_to_string : via -> string

type entry =
  | Sent of { time : Vtime.t; src : string; dst : string; payload : string }
      (** An honest node handed a frame to the network. *)
  | Delivered of {
      time : Vtime.t;
      src : string;
      dst : string;
      payload : string;
      via : via;
    }
      (** The network invoked [dst]'s handler; [via] is the transport
          path the frame genuinely arrived over. *)
  | Dropped of {
      time : Vtime.t;
      src : string;
      dst : string;
      payload : string;
      cause : drop_cause;
    }
      (** The frame was suppressed; [cause] attributes the loss. *)
  | Injected of {
      time : Vtime.t;
      dst : string;
      payload : string;
      origin : string option;
    }
      (** The adversary placed a frame of its own making. [origin] is
          the endpoint it was pushed through ([Some member] for a
          compromised insider using its own connection, [None] for a
          raw wire write). *)

type t

val create : unit -> t
val record : t -> entry -> unit
val entries : t -> entry list
(** Oldest first. *)

val length : t -> int
val payloads : t -> string list
(** Every payload that appeared on the wire, oldest first — the
    attacker's raw observation set. *)

val pp_entry : Format.formatter -> entry -> unit
