type verdict = Deliver | Drop | Replace of string | Delay of Vtime.t
type adversary = src:string -> dst:string -> payload:string -> verdict

type t = {
  sim : Sim.t;
  latency_lo : int;
  latency_hi : int;
  trace : Trace.t;
  nodes : (string, string -> unit) Hashtbl.t;
  rng : Prng.Splitmix.t;
  mutable adversary : adversary option;
  mutable faultplan : Faultplan.t option;
  (* Split lazily on the first [set_faultplan] so fault-free runs draw
     exactly the same random stream as before the fault layer existed. *)
  mutable fault_rng : Prng.Splitmix.t option;
  fault_counters : Faultplan.counters;
  (* Last scheduled delivery time per (src,dst), to keep per-pair FIFO. *)
  last_delivery : (string * string, Vtime.t) Hashtbl.t;
  (* Injection path of the frame whose handler is running right now —
     valid only for the duration of the synchronous handler call. *)
  mutable delivering : Trace.via option;
}

let create ~sim ?(latency_us = (500, 1500)) ?(trace = Trace.create ()) () =
  let lo, hi = latency_us in
  if lo < 0 || hi < lo then invalid_arg "Network.create: bad latency range";
  {
    sim;
    latency_lo = lo;
    latency_hi = hi;
    trace;
    nodes = Hashtbl.create 16;
    rng = Prng.Splitmix.split (Sim.rng sim);
    adversary = None;
    faultplan = None;
    fault_rng = None;
    fault_counters = Faultplan.fresh_counters ();
    last_delivery = Hashtbl.create 16;
    delivering = None;
  }

let trace t = t.trace
let register t name handler = Hashtbl.replace t.nodes name handler
let unregister t name = Hashtbl.remove t.nodes name
let set_adversary t adv = t.adversary <- adv

let set_faultplan t plan =
  (match (plan, t.fault_rng) with
  | Some _, None -> t.fault_rng <- Some (Prng.Splitmix.split t.rng)
  | _ -> ());
  t.faultplan <- plan

let faultplan t = t.faultplan
let fault_counters t = t.fault_counters

let draw_latency t =
  let span = t.latency_hi - t.latency_lo in
  let us =
    if span = 0 then t.latency_lo
    else t.latency_lo + Prng.Splitmix.next_int t.rng (span + 1)
  in
  Vtime.of_us us

(* FIFO per (src,dst): never schedule a delivery earlier than the last
   one already scheduled for the same pair. *)
let fifo_time t ~src ~dst ~extra =
  let base = Vtime.add (Sim.now t.sim) (Vtime.add (draw_latency t) extra) in
  let key = (src, dst) in
  let time =
    match Hashtbl.find_opt t.last_delivery key with
    | Some last when Vtime.(base < last) -> last
    | _ -> base
  in
  Hashtbl.replace t.last_delivery key time;
  time

let record_drop t ~src ~dst ~payload ~cause =
  Trace.record t.trace
    (Trace.Dropped { time = Sim.now t.sim; src; dst; payload; cause })

let delivering_via t = t.delivering

let deliver t ~src ~dst ~payload ~via ~extra =
  let time = fifo_time t ~src ~dst ~extra in
  Sim.schedule_at t.sim ~time (fun () ->
      (* An outage is re-checked at delivery time: frames in flight
         toward a node that has since crashed are lost with it. *)
      let dst_down =
        match t.faultplan with
        | Some plan when Faultplan.node_down plan ~now:(Sim.now t.sim) dst ->
            t.fault_counters.Faultplan.down <-
              t.fault_counters.Faultplan.down + 1;
            true
        | _ -> false
      in
      if dst_down then record_drop t ~src ~dst ~payload ~cause:Trace.By_fault
      else
        match Hashtbl.find_opt t.nodes dst with
        | Some handler ->
            Trace.record t.trace
              (Trace.Delivered
                 { time = Sim.now t.sim; src; dst; payload; via });
            let saved = t.delivering in
            t.delivering <- Some via;
            Fun.protect
              ~finally:(fun () -> t.delivering <- saved)
              (fun () -> handler payload)
        | None -> record_drop t ~src ~dst ~payload ~cause:Trace.Unregistered)

(* The fault layer sits after the adversary tap: whatever the
   adversary lets through (possibly rewritten or delayed) is then
   subject to loss, corruption, duplication, spikes, partitions and
   outages from the installed plan. *)
let faulted_deliver t ~src ~dst ~payload ~via ~extra =
  match (t.faultplan, t.fault_rng) with
  | Some plan, Some rng -> (
      match
        Faultplan.apply plan ~rng ~counters:t.fault_counters
          ~now:(Sim.now t.sim) ~src ~dst ~payload
      with
      | Faultplan.Fault_drop _ ->
          record_drop t ~src ~dst ~payload ~cause:Trace.By_fault
      | Faultplan.Fault_pass { payload; extra = fault_extra; copies } ->
          let extra = Vtime.add extra fault_extra in
          for _ = 1 to copies do
            deliver t ~src ~dst ~payload ~via ~extra
          done)
  | _ -> deliver t ~src ~dst ~payload ~via ~extra

let send t ~src ~dst payload =
  Trace.record t.trace (Trace.Sent { time = Sim.now t.sim; src; dst; payload });
  (* An honest send arrives over the sender's own registered endpoint:
     the network itself vouches for the [via] tag, frame contents
     cannot override it. *)
  let via = Trace.Via_socket src in
  match t.adversary with
  | None -> faulted_deliver t ~src ~dst ~payload ~via ~extra:Vtime.zero
  | Some adv -> (
      match adv ~src ~dst ~payload with
      | Deliver -> faulted_deliver t ~src ~dst ~payload ~via ~extra:Vtime.zero
      | Drop -> record_drop t ~src ~dst ~payload ~cause:Trace.By_adversary
      | Replace payload' ->
          faulted_deliver t ~src ~dst ~payload:payload' ~via ~extra:Vtime.zero
      | Delay extra -> faulted_deliver t ~src ~dst ~payload ~via ~extra)

let inject t ?origin ~dst payload =
  Trace.record t.trace
    (Trace.Injected { time = Sim.now t.sim; dst; payload; origin });
  (* Injection bypasses the fault plan: the adversary's own frames are
     placed on the last hop directly. A compromised insider pushing
     frames through its own connection arrives [Via_socket insider];
     a raw wire write (no endpoint) arrives [Via_wire]. *)
  let src, via =
    match origin with
    | Some o -> (o, Trace.Via_socket o)
    | None -> ("<adversary>", Trace.Via_wire)
  in
  deliver t ~src ~dst ~payload ~via ~extra:Vtime.zero
