type verdict = Deliver | Drop | Replace of string | Delay of Vtime.t
type adversary = src:string -> dst:string -> payload:string -> verdict

type t = {
  sim : Sim.t;
  latency_lo : int;
  latency_hi : int;
  trace : Trace.t;
  nodes : (string, string -> unit) Hashtbl.t;
  rng : Prng.Splitmix.t;
  mutable adversary : adversary option;
  (* Last scheduled delivery time per (src,dst), to keep per-pair FIFO. *)
  last_delivery : (string * string, Vtime.t) Hashtbl.t;
}

let create ~sim ?(latency_us = (500, 1500)) ?(trace = Trace.create ()) () =
  let lo, hi = latency_us in
  if lo < 0 || hi < lo then invalid_arg "Network.create: bad latency range";
  {
    sim;
    latency_lo = lo;
    latency_hi = hi;
    trace;
    nodes = Hashtbl.create 16;
    rng = Prng.Splitmix.split (Sim.rng sim);
    adversary = None;
    last_delivery = Hashtbl.create 16;
  }

let trace t = t.trace
let register t name handler = Hashtbl.replace t.nodes name handler
let unregister t name = Hashtbl.remove t.nodes name
let set_adversary t adv = t.adversary <- adv

let draw_latency t =
  let span = t.latency_hi - t.latency_lo in
  let us =
    if span = 0 then t.latency_lo
    else t.latency_lo + Prng.Splitmix.next_int t.rng (span + 1)
  in
  Vtime.of_us us

(* FIFO per (src,dst): never schedule a delivery earlier than the last
   one already scheduled for the same pair. *)
let fifo_time t ~src ~dst ~extra =
  let base = Vtime.add (Sim.now t.sim) (Vtime.add (draw_latency t) extra) in
  let key = (src, dst) in
  let time =
    match Hashtbl.find_opt t.last_delivery key with
    | Some last when Vtime.(base < last) -> last
    | _ -> base
  in
  Hashtbl.replace t.last_delivery key time;
  time

let deliver t ~src ~dst ~payload ~extra =
  let time = fifo_time t ~src ~dst ~extra in
  Sim.schedule_at t.sim ~time (fun () ->
      match Hashtbl.find_opt t.nodes dst with
      | Some handler ->
          Trace.record t.trace
            (Trace.Delivered { time = Sim.now t.sim; src; dst; payload });
          handler payload
      | None ->
          Trace.record t.trace
            (Trace.Dropped { time = Sim.now t.sim; src; dst; payload }))

let send t ~src ~dst payload =
  Trace.record t.trace (Trace.Sent { time = Sim.now t.sim; src; dst; payload });
  match t.adversary with
  | None -> deliver t ~src ~dst ~payload ~extra:Vtime.zero
  | Some adv -> (
      match adv ~src ~dst ~payload with
      | Deliver -> deliver t ~src ~dst ~payload ~extra:Vtime.zero
      | Drop ->
          Trace.record t.trace
            (Trace.Dropped { time = Sim.now t.sim; src; dst; payload })
      | Replace payload' -> deliver t ~src ~dst ~payload:payload' ~extra:Vtime.zero
      | Delay extra -> deliver t ~src ~dst ~payload ~extra)

let inject t ~dst payload =
  Trace.record t.trace (Trace.Injected { time = Sim.now t.sim; dst; payload });
  deliver t ~src:"<adversary>" ~dst ~payload ~extra:Vtime.zero
