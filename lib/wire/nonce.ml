type t = string

let size = 16

let fresh rng = Bytes.unsafe_to_string (Prng.Splitmix.next_bytes rng size)

let of_raw s =
  if String.length s <> size then invalid_arg "Nonce.of_raw: nonce must be 16 bytes";
  s

let raw t = t
let equal = String.equal
let compare = String.compare
let pp fmt t = Format.pp_print_string fmt (Byteskit.Hex.encode (String.sub t 0 4))
