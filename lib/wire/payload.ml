open Byteskit

let ( let* ) = Cursor.( let* )

type agent = string

type auth_init = { a : agent; l : agent; n1 : Nonce.t }
type auth_key_dist = { l : agent; a : agent; n1 : Nonce.t; n2 : Nonce.t; ka : string }
type auth_ack_key = { n2 : Nonce.t; n3 : Nonce.t }

type admin_body = {
  l : agent;
  a : agent;
  expected : Nonce.t;
  next : Nonce.t;
  x : Admin.t;
}

type admin_ack = { a : agent; l : agent; echo : Nonce.t; next : Nonce.t }
type req_close = { a : agent; l : agent }

type legacy_auth2 = {
  l : agent;
  a : agent;
  n1 : Nonce.t;
  n2 : Nonce.t;
  ka : string;
  kg : string;
  epoch : int;
}

type legacy_auth3 = { n2 : Nonce.t }
type legacy_new_key = { kg : string; epoch : int }
type legacy_key_ack = { kg : string }
type member_event = { who : agent }

(* Every payload is framed with a one-byte type tag so that a ciphertext
   sealed as one payload kind can never decode as another, even under
   the same key. *)

let with_tag tag fill =
  let w = Cursor.Writer.create () in
  Cursor.Writer.u8 w tag;
  fill w;
  Cursor.Writer.contents w

let decoded tag s parse =
  let open Cursor in
  let r = Reader.of_string s in
  let result =
    let* t = Reader.u8 r in
    if t <> tag then Error (`Malformed (Printf.sprintf "payload tag %d, expected %d" t tag))
    else
      let* v = parse r in
      let* () = Reader.expect_end r in
      Ok v
  in
  Result.map_error (Format.asprintf "%a" Reader.pp_error) result

let nonce w n = Cursor.Writer.raw w (Nonce.raw n)

let read_nonce r =
  let open Cursor in
  let* s = Reader.raw r Nonce.size in
  Ok (Nonce.of_raw s)

let encode_auth_init ({ a; l; n1 } : auth_init) =
  with_tag 1 (fun w ->
      Cursor.Writer.bytes w a;
      Cursor.Writer.bytes w l;
      nonce w n1)

let decode_auth_init s =
  decoded 1 s (fun r ->
      let open Cursor in
      let* a = Reader.bytes r in
      let* l = Reader.bytes r in
      let* n1 = read_nonce r in
      Ok ({ a; l; n1 } : auth_init))

let encode_auth_key_dist ({ l; a; n1; n2; ka } : auth_key_dist) =
  with_tag 2 (fun w ->
      Cursor.Writer.bytes w l;
      Cursor.Writer.bytes w a;
      nonce w n1;
      nonce w n2;
      Cursor.Writer.bytes w ka)

let decode_auth_key_dist s =
  decoded 2 s (fun r ->
      let open Cursor in
      let* l = Reader.bytes r in
      let* a = Reader.bytes r in
      let* n1 = read_nonce r in
      let* n2 = read_nonce r in
      let* ka = Reader.bytes r in
      Ok ({ l; a; n1; n2; ka } : auth_key_dist))

let encode_auth_ack_key ({ n2; n3 } : auth_ack_key) =
  with_tag 3 (fun w ->
      nonce w n2;
      nonce w n3)

let decode_auth_ack_key s =
  decoded 3 s (fun r ->
      let* n2 = read_nonce r in
      let* n3 = read_nonce r in
      Ok ({ n2; n3 } : auth_ack_key))

let encode_admin_body ({ l; a; expected; next; x } : admin_body) =
  with_tag 4 (fun w ->
      Cursor.Writer.bytes w l;
      Cursor.Writer.bytes w a;
      nonce w expected;
      nonce w next;
      Cursor.Writer.bytes w (Admin.encode x))

let decode_admin_body s =
  decoded 4 s (fun r ->
      let open Cursor in
      let* l = Reader.bytes r in
      let* a = Reader.bytes r in
      let* expected = read_nonce r in
      let* next = read_nonce r in
      let* xs = Reader.bytes r in
      match Admin.decode xs with
      | Ok x -> Ok ({ l; a; expected; next; x } : admin_body)
      | Error e -> Error (`Malformed ("admin payload: " ^ e)))

let encode_admin_ack ({ a; l; echo; next } : admin_ack) =
  with_tag 5 (fun w ->
      Cursor.Writer.bytes w a;
      Cursor.Writer.bytes w l;
      nonce w echo;
      nonce w next)

let decode_admin_ack s =
  decoded 5 s (fun r ->
      let open Cursor in
      let* a = Reader.bytes r in
      let* l = Reader.bytes r in
      let* echo = read_nonce r in
      let* next = read_nonce r in
      Ok ({ a; l; echo; next } : admin_ack))

let encode_req_close ({ a; l } : req_close) =
  with_tag 6 (fun w ->
      Cursor.Writer.bytes w a;
      Cursor.Writer.bytes w l)

let decode_req_close s =
  decoded 6 s (fun r ->
      let open Cursor in
      let* a = Reader.bytes r in
      let* l = Reader.bytes r in
      Ok ({ a; l } : req_close))

let encode_legacy_auth2 ({ l; a; n1; n2; ka; kg; epoch } : legacy_auth2) =
  with_tag 7 (fun w ->
      Cursor.Writer.bytes w l;
      Cursor.Writer.bytes w a;
      nonce w n1;
      nonce w n2;
      Cursor.Writer.bytes w ka;
      Cursor.Writer.bytes w kg;
      Cursor.Writer.u32 w epoch)

let decode_legacy_auth2 s =
  decoded 7 s (fun r ->
      let open Cursor in
      let* l = Reader.bytes r in
      let* a = Reader.bytes r in
      let* n1 = read_nonce r in
      let* n2 = read_nonce r in
      let* ka = Reader.bytes r in
      let* kg = Reader.bytes r in
      let* epoch = Reader.u32 r in
      Ok ({ l; a; n1; n2; ka; kg; epoch } : legacy_auth2))

let encode_legacy_auth3 ({ n2 } : legacy_auth3) = with_tag 8 (fun w -> nonce w n2)

let decode_legacy_auth3 s =
  decoded 8 s (fun r ->
      let* n2 = read_nonce r in
      Ok ({ n2 } : legacy_auth3))

let encode_legacy_new_key ({ kg; epoch } : legacy_new_key) =
  with_tag 9 (fun w ->
      Cursor.Writer.bytes w kg;
      Cursor.Writer.u32 w epoch)

let decode_legacy_new_key s =
  decoded 9 s (fun r ->
      let open Cursor in
      let* kg = Reader.bytes r in
      let* epoch = Reader.u32 r in
      Ok ({ kg; epoch } : legacy_new_key))

let encode_legacy_key_ack ({ kg } : legacy_key_ack) = with_tag 10 (fun w -> Cursor.Writer.bytes w kg)

let decode_legacy_key_ack s =
  decoded 10 s (fun r ->
      let open Cursor in
      let* kg = Reader.bytes r in
      Ok ({ kg } : legacy_key_ack))

let encode_member_event ({ who } : member_event) = with_tag 11 (fun w -> Cursor.Writer.bytes w who)

let decode_member_event s =
  decoded 11 s (fun r ->
      let open Cursor in
      let* who = Reader.bytes r in
      Ok ({ who } : member_event))

type app_data = { author : agent; body : string }

let encode_app_data ({ author; body } : app_data) =
  with_tag 12 (fun w ->
      Cursor.Writer.bytes w author;
      Cursor.Writer.bytes w body)

let decode_app_data s =
  decoded 12 s (fun r ->
      let open Cursor in
      let* author = Reader.bytes r in
      let* body = Reader.bytes r in
      Ok ({ author; body } : app_data))

type recovery_challenge = { l : agent; a : agent; nc : Nonce.t }

let encode_recovery_challenge ({ l; a; nc } : recovery_challenge) =
  with_tag 13 (fun w ->
      Cursor.Writer.bytes w l;
      Cursor.Writer.bytes w a;
      nonce w nc)

let decode_recovery_challenge s =
  decoded 13 s (fun r ->
      let open Cursor in
      let* l = Reader.bytes r in
      let* a = Reader.bytes r in
      let* nc = read_nonce r in
      Ok ({ l; a; nc } : recovery_challenge))

type recovery_response = { a : agent; l : agent; echo : Nonce.t; next : Nonce.t }

let encode_recovery_response ({ a; l; echo; next } : recovery_response) =
  with_tag 14 (fun w ->
      Cursor.Writer.bytes w a;
      Cursor.Writer.bytes w l;
      nonce w echo;
      nonce w next)

let decode_recovery_response s =
  decoded 14 s (fun r ->
      let open Cursor in
      let* a = Reader.bytes r in
      let* l = Reader.bytes r in
      let* echo = read_nonce r in
      let* next = read_nonce r in
      Ok ({ a; l; echo; next } : recovery_response))

type view_resync = { a : agent; l : agent; digest : string; epoch : int }

let encode_view_resync ({ a; l; digest; epoch } : view_resync) =
  with_tag 15 (fun w ->
      Cursor.Writer.bytes w a;
      Cursor.Writer.bytes w l;
      Cursor.Writer.bytes w digest;
      Cursor.Writer.u32 w epoch)

let decode_view_resync s =
  decoded 15 s (fun r ->
      let open Cursor in
      let* a = Reader.bytes r in
      let* l = Reader.bytes r in
      let* digest = Reader.bytes r in
      let* epoch = Reader.u32 r in
      Ok ({ a; l; digest; epoch } : view_resync))

type cold_restart = { l : agent; a : agent; epoch : int; nb : Nonce.t }

let encode_cold_restart ({ l; a; epoch; nb } : cold_restart) =
  with_tag 16 (fun w ->
      Cursor.Writer.bytes w l;
      Cursor.Writer.bytes w a;
      Cursor.Writer.u32 w epoch;
      nonce w nb)

let decode_cold_restart s =
  decoded 16 s (fun r ->
      let open Cursor in
      let* l = Reader.bytes r in
      let* a = Reader.bytes r in
      let* epoch = Reader.u32 r in
      let* nb = read_nonce r in
      Ok ({ l; a; epoch; nb } : cold_restart))

type cold_restart_challenge = { a : agent; l : agent; echo : Nonce.t; nm : Nonce.t }

let encode_cold_restart_challenge
    ({ a; l; echo; nm } : cold_restart_challenge) =
  with_tag 17 (fun w ->
      Cursor.Writer.bytes w a;
      Cursor.Writer.bytes w l;
      nonce w echo;
      nonce w nm)

let decode_cold_restart_challenge s =
  decoded 17 s (fun r ->
      let open Cursor in
      let* a = Reader.bytes r in
      let* l = Reader.bytes r in
      let* echo = read_nonce r in
      let* nm = read_nonce r in
      Ok ({ a; l; echo; nm } : cold_restart_challenge))

type cold_restart_ack = { l : agent; a : agent; echo : Nonce.t }

let encode_cold_restart_ack ({ l; a; echo } : cold_restart_ack) =
  with_tag 18 (fun w ->
      Cursor.Writer.bytes w l;
      Cursor.Writer.bytes w a;
      nonce w echo)

let decode_cold_restart_ack s =
  decoded 18 s (fun r ->
      let open Cursor in
      let* l = Reader.bytes r in
      let* a = Reader.bytes r in
      let* echo = read_nonce r in
      Ok ({ l; a; echo } : cold_restart_ack))

(* --- warm-standby journal replication (manager to manager) --- *)

type repl_op =
  | Repl_append
  | Repl_snapshot
  | Repl_heartbeat
  | Repl_queue
  | Repl_suspicion

let repl_op_tag = function
  | Repl_append -> 1
  | Repl_snapshot -> 2
  | Repl_heartbeat -> 3
  | Repl_queue -> 4
  | Repl_suspicion -> 5

let repl_op_of_tag = function
  | 1 -> Ok Repl_append
  | 2 -> Ok Repl_snapshot
  | 3 -> Ok Repl_heartbeat
  | 4 -> Ok Repl_queue
  | 5 -> Ok Repl_suspicion
  | n -> Error (`Malformed (Printf.sprintf "unknown repl op %d" n))

type repl_record = {
  l : agent;
  b : agent;
  term : int;
  seq : int;
  op : repl_op;
  data : string;
}

let encode_repl_record ({ l; b; term; seq; op; data } : repl_record) =
  with_tag 19 (fun w ->
      Cursor.Writer.bytes w l;
      Cursor.Writer.bytes w b;
      Cursor.Writer.u32 w term;
      Cursor.Writer.u32 w seq;
      Cursor.Writer.u8 w (repl_op_tag op);
      Cursor.Writer.bytes w data)

let decode_repl_record s =
  decoded 19 s (fun r ->
      let open Cursor in
      let* l = Reader.bytes r in
      let* b = Reader.bytes r in
      let* term = Reader.u32 r in
      let* seq = Reader.u32 r in
      let* op_tag = Reader.u8 r in
      let* op = repl_op_of_tag op_tag in
      let* data = Reader.bytes r in
      Ok ({ l; b; term; seq; op; data } : repl_record))

type repl_ack = { b : agent; l : agent; term : int; upto : int }

let encode_repl_ack ({ b; l; term; upto } : repl_ack) =
  with_tag 20 (fun w ->
      Cursor.Writer.bytes w b;
      Cursor.Writer.bytes w l;
      Cursor.Writer.u32 w term;
      Cursor.Writer.u32 w upto)

let decode_repl_ack s =
  decoded 20 s (fun r ->
      let open Cursor in
      let* b = Reader.bytes r in
      let* l = Reader.bytes r in
      let* term = Reader.u32 r in
      let* upto = Reader.u32 r in
      Ok ({ b; l; term; upto } : repl_ack))

type repl_fetch = { b : agent; l : agent; term : int; from_ : int }

let encode_repl_fetch ({ b; l; term; from_ } : repl_fetch) =
  with_tag 21 (fun w ->
      Cursor.Writer.bytes w b;
      Cursor.Writer.bytes w l;
      Cursor.Writer.u32 w term;
      Cursor.Writer.u32 w from_)

let decode_repl_fetch s =
  decoded 21 s (fun r ->
      let open Cursor in
      let* b = Reader.bytes r in
      let* l = Reader.bytes r in
      let* term = Reader.u32 r in
      let* from_ = Reader.u32 r in
      Ok ({ b; l; term; from_ } : repl_fetch))

type repl_stale = {
  b : agent;
  l : agent;
  stale_term : int;
  term : int;
  primary : agent;
}

let encode_repl_stale ({ b; l; stale_term; term; primary } : repl_stale) =
  with_tag 22 (fun w ->
      Cursor.Writer.bytes w b;
      Cursor.Writer.bytes w l;
      Cursor.Writer.u32 w stale_term;
      Cursor.Writer.u32 w term;
      Cursor.Writer.bytes w primary)

let decode_repl_stale s =
  decoded 22 s (fun r ->
      let open Cursor in
      let* b = Reader.bytes r in
      let* l = Reader.bytes r in
      let* stale_term = Reader.u32 r in
      let* term = Reader.u32 r in
      let* primary = Reader.bytes r in
      Ok ({ b; l; stale_term; term; primary } : repl_stale))
