(** Plaintext payload structures — the contents that the protocol
    seals with {!Sym_crypto.Aead} before placing them in a frame body.

    One record type per encrypted message content of the paper:

    Improved protocol (§3.2):
    - [auth_init]      — [{A, L, N1}] sealed under [P_a]
    - [auth_key_dist]  — [{L, A, N1, N2, K_a}] sealed under [P_a]
    - [auth_ack_key]   — [{N2, N3}] sealed under [K_a]
    - [admin_body]     — [{L, A, N_{2i+1}, N_{2i+2}, X}] sealed under [K_a]
    - [admin_ack]      — [{A, L, N_{2i+2}, N_{2i+3}}] sealed under [K_a]
    - [req_close]      — [{A, L}] sealed under [K_a]

    Legacy protocol (§2.2):
    - [legacy_auth2]   — [{L, A, N1, N2, K_a, I.V., K_g}] sealed under [P_a]
      (the legacy handshake delivers the group key directly; this is
      one of the differences the improved protocol removes)
    - [legacy_auth3]   — [{N2}] sealed under [K_a]
    - [legacy_new_key] — [{K_g', I.V.}] sealed under [K_a]
    - [legacy_key_ack] — [{K_g'}] sealed under [K_g'] itself
    - [member_event]   — [{A}] sealed under [K_g] (mem_joined /
      mem_removed; forgeable by any member — attack A2)

    Identity fields inside the sealed payloads are what lets an honest
    receiver detect cross-context splices; their absence in some legacy
    payloads is deliberate fidelity to the paper. *)

type agent = string

type auth_init = { a : agent; l : agent; n1 : Nonce.t }
type auth_key_dist = { l : agent; a : agent; n1 : Nonce.t; n2 : Nonce.t; ka : string }
type auth_ack_key = { n2 : Nonce.t; n3 : Nonce.t }

type admin_body = {
  l : agent;
  a : agent;
  expected : Nonce.t;  (** [N_{2i+1}]: the member's most recent nonce. *)
  next : Nonce.t;  (** [N_{2i+2}]: leader's fresh nonce, echoed in the ack. *)
  x : Admin.t;
}

type admin_ack = {
  a : agent;
  l : agent;
  echo : Nonce.t;  (** [N_{2i+2}] from the admin message. *)
  next : Nonce.t;  (** [N_{2i+3}]: member's fresh nonce for the next round. *)
}

type req_close = { a : agent; l : agent }

type legacy_auth2 = {
  l : agent;
  a : agent;
  n1 : Nonce.t;
  n2 : Nonce.t;
  ka : string;
  kg : string;
  epoch : int;
}

type legacy_auth3 = { n2 : Nonce.t }
type legacy_new_key = { kg : string; epoch : int }
type legacy_key_ack = { kg : string }
type member_event = { who : agent }

val encode_auth_init : auth_init -> string
val decode_auth_init : string -> (auth_init, string) result
val encode_auth_key_dist : auth_key_dist -> string
val decode_auth_key_dist : string -> (auth_key_dist, string) result
val encode_auth_ack_key : auth_ack_key -> string
val decode_auth_ack_key : string -> (auth_ack_key, string) result
val encode_admin_body : admin_body -> string
val decode_admin_body : string -> (admin_body, string) result
val encode_admin_ack : admin_ack -> string
val decode_admin_ack : string -> (admin_ack, string) result
val encode_req_close : req_close -> string
val decode_req_close : string -> (req_close, string) result
val encode_legacy_auth2 : legacy_auth2 -> string
val decode_legacy_auth2 : string -> (legacy_auth2, string) result
val encode_legacy_auth3 : legacy_auth3 -> string
val decode_legacy_auth3 : string -> (legacy_auth3, string) result
val encode_legacy_new_key : legacy_new_key -> string
val decode_legacy_new_key : string -> (legacy_new_key, string) result
val encode_legacy_key_ack : legacy_key_ack -> string
val decode_legacy_key_ack : string -> (legacy_key_ack, string) result
val encode_member_event : member_event -> string
val decode_member_event : string -> (member_event, string) result

type app_data = { author : agent; body : string }
(** Application traffic relayed through the leader, sealed under the
    group key [K_g]; [author] names the originating member. *)

val encode_app_data : app_data -> string
val decode_app_data : string -> (app_data, string) result

type recovery_challenge = { l : agent; a : agent; nc : Nonce.t }
(** Warm-recovery challenge: [{L, A, Nc}] sealed under the journalled
    [K_a]. Proves the restarted leader still holds the session key;
    the member's response re-seeds the admin nonce chain. *)

type recovery_response = { a : agent; l : agent; echo : Nonce.t; next : Nonce.t }
(** [{A, L, Nc, N'}] sealed under [K_a]: echoes the challenge nonce and
    supplies the fresh nonce that becomes the chain's new [N_a]. *)

type view_resync = { a : agent; l : agent; digest : string; epoch : int }
(** Anti-entropy repair request: the member's own view digest and key
    epoch, sealed under [K_a], asking the leader to re-send the
    membership snapshot and current group key if they differ. *)

val encode_recovery_challenge : recovery_challenge -> string
val decode_recovery_challenge : string -> (recovery_challenge, string) result
val encode_recovery_response : recovery_response -> string
val decode_recovery_response : string -> (recovery_response, string) result
val encode_view_resync : view_resync -> string
val decode_view_resync : string -> (view_resync, string) result

type cold_restart = { l : agent; a : agent; epoch : int; nb : Nonce.t }
(** Cold-restart beacon: [{L, A, epoch, Nb}] sealed under the member's
    long-term [P_a]. [epoch] is the journalled group-key epoch — a
    member whose own epoch is newer rejects the beacon as stale, so a
    replayed beacon from an older incarnation cannot win. *)

type cold_restart_challenge = { a : agent; l : agent; echo : Nonce.t; nm : Nonce.t }
(** [{A, L, Nb, Nm}] sealed under [P_a]: echo proves the member saw
    {e this} beacon; [nm] is the liveness challenge the leader must
    echo before the member resets anything. *)

type cold_restart_ack = { l : agent; a : agent; echo : Nonce.t }
(** [{L, A, Nm}] sealed under [P_a]: the restarted leader is live and
    answered the member's fresh nonce — only now does the member reset
    its session and rejoin. *)

val encode_cold_restart : cold_restart -> string
val decode_cold_restart : string -> (cold_restart, string) result
val encode_cold_restart_challenge : cold_restart_challenge -> string
val decode_cold_restart_challenge : string -> (cold_restart_challenge, string) result
val encode_cold_restart_ack : cold_restart_ack -> string
val decode_cold_restart_ack : string -> (cold_restart_ack, string) result

type repl_op =
  | Repl_append  (** [data] is a record chunk appended to the journal tail. *)
  | Repl_snapshot
      (** [data] is a full journal image replacing the replica
          (creation, compaction, or gap catch-up). *)
  | Repl_heartbeat
      (** Empty [data]; proves the primary is alive and carries the
          current sequence frontier for gap detection. *)
  | Repl_queue
      (** [data] is a store-and-forward delivery-queue image:
          the queue file name, a NUL byte, then the full durable
          image. Replicated so a promoted successor keeps draining
          offline members' backlogs without member re-handshakes. *)
  | Repl_suspicion
      (** [data] is a sentinel suspicion snapshot ([Sentinel.export]):
          per-peer evidence scores and containment levels. Replicated
          so a promoted successor keeps quarantines — a suspect cannot
          launder its record by crashing the leader. *)

type repl_record = {
  l : agent;  (** The shipping primary. *)
  b : agent;  (** The backup this frame is bound to. *)
  term : int;  (** Primary incarnation; backups reject stale terms. *)
  seq : int;  (** Position in the primary's replication stream. *)
  op : repl_op;
  data : string;
}
(** One replication frame, sealed under the shared manager key [K_r].
    The AEAD associated data additionally binds (label, sender,
    recipient), so a frame shipped to one backup cannot be spliced to
    another; [term] and [seq] inside the sealed payload are what make
    replays and stale-incarnation records detectable. *)

type repl_ack = { b : agent; l : agent; term : int; upto : int }
(** Cumulative ack: the backup holds every op with [seq < upto] of
    [term]. *)

type repl_fetch = { b : agent; l : agent; term : int; from_ : int }
(** Gap repair: re-send ops from [from_] (the backup's next expected
    sequence number) onward. *)

type repl_stale = {
  b : agent;  (** The notifier (a replica, or the live source itself). *)
  l : agent;  (** The superseded source being told to stand down. *)
  stale_term : int;
      (** The dead term this notice answers. A source acts on a notice
          only when [stale_term] equals its {e current} term, so a
          replayed notice from an earlier demotion is inert. *)
  term : int;  (** The live term that supersedes [stale_term]. *)
  primary : agent;  (** Who sources [term] — the demotee's new primary. *)
}
(** Demotion signal, sealed under [K_r] like every replication frame.
    Only a holder of [K_r] can mint one, and an authentic notice
    carrying [term] proves term [term] was genuinely claimed by an
    honest promotion — which is exactly the evidence that makes
    standing down safe. *)

val encode_repl_record : repl_record -> string
val decode_repl_record : string -> (repl_record, string) result
val encode_repl_ack : repl_ack -> string
val decode_repl_ack : string -> (repl_ack, string) result
val encode_repl_fetch : repl_fetch -> string
val decode_repl_fetch : string -> (repl_fetch, string) result
val encode_repl_stale : repl_stale -> string
val decode_repl_stale : string -> (repl_stale, string) result
