open Byteskit

type agent = string

type label =
  | Req_open
  | Ack_open
  | Connection_denied
  | Legacy_auth1
  | Legacy_auth2
  | Legacy_auth3
  | New_key
  | New_key_ack
  | Legacy_req_close
  | Close_connection
  | Mem_joined
  | Mem_removed
  | Auth_init_req
  | Auth_key_dist
  | Auth_ack_key
  | Admin_msg
  | Admin_ack
  | Req_close
  | App_data
  | Recovery_challenge
  | Recovery_response
  | View_resync_req
  | Cold_restart
  | Cold_restart_challenge
  | Cold_restart_ack
  | Repl_record
  | Repl_ack
  | Repl_fetch
  | Repl_stale

type t = { label : label; sender : agent; recipient : agent; body : string }

let all_labels =
  [
    Req_open; Ack_open; Connection_denied; Legacy_auth1; Legacy_auth2;
    Legacy_auth3; New_key; New_key_ack; Legacy_req_close; Close_connection;
    Mem_joined; Mem_removed; Auth_init_req; Auth_key_dist; Auth_ack_key;
    Admin_msg; Admin_ack; Req_close; App_data; Recovery_challenge;
    Recovery_response; View_resync_req; Cold_restart; Cold_restart_challenge;
    Cold_restart_ack; Repl_record; Repl_ack; Repl_fetch; Repl_stale;
  ]

let label_tag = function
  | Req_open -> 1
  | Ack_open -> 2
  | Connection_denied -> 3
  | Legacy_auth1 -> 4
  | Legacy_auth2 -> 5
  | Legacy_auth3 -> 6
  | New_key -> 7
  | New_key_ack -> 8
  | Legacy_req_close -> 9
  | Close_connection -> 10
  | Mem_joined -> 11
  | Mem_removed -> 12
  | Auth_init_req -> 13
  | Auth_key_dist -> 14
  | Auth_ack_key -> 15
  | Admin_msg -> 16
  | Admin_ack -> 17
  | Req_close -> 18
  | App_data -> 19
  | Recovery_challenge -> 20
  | Recovery_response -> 21
  | View_resync_req -> 22
  | Cold_restart -> 23
  | Cold_restart_challenge -> 24
  | Cold_restart_ack -> 25
  | Repl_record -> 26
  | Repl_ack -> 27
  | Repl_fetch -> 28
  | Repl_stale -> 29

let label_of_tag = function
  | 1 -> Some Req_open
  | 2 -> Some Ack_open
  | 3 -> Some Connection_denied
  | 4 -> Some Legacy_auth1
  | 5 -> Some Legacy_auth2
  | 6 -> Some Legacy_auth3
  | 7 -> Some New_key
  | 8 -> Some New_key_ack
  | 9 -> Some Legacy_req_close
  | 10 -> Some Close_connection
  | 11 -> Some Mem_joined
  | 12 -> Some Mem_removed
  | 13 -> Some Auth_init_req
  | 14 -> Some Auth_key_dist
  | 15 -> Some Auth_ack_key
  | 16 -> Some Admin_msg
  | 17 -> Some Admin_ack
  | 18 -> Some Req_close
  | 19 -> Some App_data
  | 20 -> Some Recovery_challenge
  | 21 -> Some Recovery_response
  | 22 -> Some View_resync_req
  | 23 -> Some Cold_restart
  | 24 -> Some Cold_restart_challenge
  | 25 -> Some Cold_restart_ack
  | 26 -> Some Repl_record
  | 27 -> Some Repl_ack
  | 28 -> Some Repl_fetch
  | 29 -> Some Repl_stale
  | _ -> None

let label_to_string = function
  | Req_open -> "ReqOpen"
  | Ack_open -> "AckOpen"
  | Connection_denied -> "ConnectionDenied"
  | Legacy_auth1 -> "LegacyAuth1"
  | Legacy_auth2 -> "LegacyAuth2"
  | Legacy_auth3 -> "LegacyAuth3"
  | New_key -> "NewKey"
  | New_key_ack -> "NewKeyAck"
  | Legacy_req_close -> "LegacyReqClose"
  | Close_connection -> "CloseConnection"
  | Mem_joined -> "MemJoined"
  | Mem_removed -> "MemRemoved"
  | Auth_init_req -> "AuthInitReq"
  | Auth_key_dist -> "AuthKeyDist"
  | Auth_ack_key -> "AuthAckKey"
  | Admin_msg -> "AdminMsg"
  | Admin_ack -> "Ack"
  | Req_close -> "ReqClose"
  | App_data -> "AppData"
  | Recovery_challenge -> "RecoveryChallenge"
  | Recovery_response -> "RecoveryResponse"
  | View_resync_req -> "ViewResyncReq"
  | Cold_restart -> "ColdRestart"
  | Cold_restart_challenge -> "ColdRestartChallenge"
  | Cold_restart_ack -> "ColdRestartAck"
  | Repl_record -> "ReplRecord"
  | Repl_ack -> "ReplAck"
  | Repl_fetch -> "ReplFetch"
  | Repl_stale -> "ReplStale"

let pp_label fmt l = Format.pp_print_string fmt (label_to_string l)

let pp fmt { label; sender; recipient; body } =
  Format.fprintf fmt "%a %s->%s (%d bytes)" pp_label label sender recipient
    (String.length body)

let equal a b =
  a.label = b.label && a.sender = b.sender && a.recipient = b.recipient
  && a.body = b.body

let make ~label ~sender ~recipient ~body = { label; sender; recipient; body }

let encode { label; sender; recipient; body } =
  let w = Cursor.Writer.create () in
  Cursor.Writer.u8 w (label_tag label);
  Cursor.Writer.bytes w sender;
  Cursor.Writer.bytes w recipient;
  Cursor.Writer.bytes w body;
  Cursor.Writer.contents w

let decode s =
  let open Cursor in
  let r = Reader.of_string s in
  let result =
    let* tag = Reader.u8 r in
    match label_of_tag tag with
    | None -> Error (`Malformed (Printf.sprintf "unknown frame label %d" tag))
    | Some label ->
        let* sender = Reader.bytes r in
        let* recipient = Reader.bytes r in
        let* body = Reader.bytes r in
        let* () = Reader.expect_end r in
        Ok { label; sender; recipient; body }
  in
  Result.map_error (Format.asprintf "%a" Reader.pp_error) result

let header_ad ~label ~sender ~recipient =
  let w = Cursor.Writer.create () in
  Cursor.Writer.u8 w (label_tag label);
  Cursor.Writer.bytes w sender;
  Cursor.Writer.bytes w recipient;
  Cursor.Writer.contents w

let ad { label; sender; recipient; body = _ } = header_ad ~label ~sender ~recipient
