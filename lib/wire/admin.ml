open Byteskit

type t =
  | New_group_key of { key : string; epoch : int }
  | Member_joined of string
  | Member_left of string
  | Member_expelled of string
  | Membership_snapshot of string list
  | Notice of string
  | View_digest of { digest : string; epoch : int }
  | Queued of { seq : int; stale : bool; x : t }

let tag_of = function
  | New_group_key _ -> 1
  | Member_joined _ -> 2
  | Member_left _ -> 3
  | Member_expelled _ -> 4
  | Membership_snapshot _ -> 5
  | Notice _ -> 6
  | View_digest _ -> 7
  | Queued _ -> 8

let rec encode t =
  let w = Cursor.Writer.create () in
  Cursor.Writer.u8 w (tag_of t);
  (match t with
  | New_group_key { key; epoch } ->
      Cursor.Writer.bytes w key;
      Cursor.Writer.u32 w epoch
  | Member_joined who | Member_left who | Member_expelled who ->
      Cursor.Writer.bytes w who
  | Membership_snapshot members ->
      Cursor.Writer.u32 w (List.length members);
      List.iter (Cursor.Writer.bytes w) members
  | Notice text -> Cursor.Writer.bytes w text
  | View_digest { digest; epoch } ->
      Cursor.Writer.bytes w digest;
      Cursor.Writer.u32 w epoch
  | Queued { seq; stale; x } ->
      Cursor.Writer.u32 w seq;
      Cursor.Writer.u8 w (if stale then 1 else 0);
      Cursor.Writer.bytes w (encode x));
  Cursor.Writer.contents w

(* [Queued] may wrap any plain payload but never another [Queued]:
   one level of nesting is all the drain path produces, and rejecting
   deeper towers keeps decode depth (and redelivery ambiguity)
   bounded on adversarial input. *)
let rec decode_at ~depth s =
  let open Cursor in
  let r = Reader.of_string s in
  let result =
    let* tag = Reader.u8 r in
    let* payload =
      match tag with
      | 1 ->
          let* key = Reader.bytes r in
          let* epoch = Reader.u32 r in
          Ok (New_group_key { key; epoch })
      | 2 ->
          let* who = Reader.bytes r in
          Ok (Member_joined who)
      | 3 ->
          let* who = Reader.bytes r in
          Ok (Member_left who)
      | 4 ->
          let* who = Reader.bytes r in
          Ok (Member_expelled who)
      | 5 ->
          let* n = Reader.u32 r in
          if n > 100_000 then Error (`Malformed "snapshot too large")
          else
            let rec loop acc k =
              if k = 0 then Ok (List.rev acc)
              else
                let* m = Reader.bytes r in
                loop (m :: acc) (k - 1)
            in
            let* members = loop [] n in
            Ok (Membership_snapshot members)
      | 6 ->
          let* text = Reader.bytes r in
          Ok (Notice text)
      | 7 ->
          let* digest = Reader.bytes r in
          let* epoch = Reader.u32 r in
          Ok (View_digest { digest; epoch })
      | 8 ->
          if depth > 0 then Error (`Malformed "nested queued payload")
          else
            let* seq = Reader.u32 r in
            let* stale_flag = Reader.u8 r in
            let* stale =
              match stale_flag with
              | 0 -> Ok false
              | 1 -> Ok true
              | _ -> Error (`Malformed "bad stale flag")
            in
            let* inner = Reader.bytes r in
            let* x =
              Result.map_error
                (fun e -> `Malformed e)
                (decode_at ~depth:(depth + 1) inner)
            in
            Ok (Queued { seq; stale; x })
      | n -> Error (`Malformed (Printf.sprintf "unknown admin tag %d" n))
    in
    let* () = Reader.expect_end r in
    Ok payload
  in
  Result.map_error (Format.asprintf "%a" Reader.pp_error) result

let decode s = decode_at ~depth:0 s

let equal a b = encode a = encode b

let rec pp fmt = function
  | New_group_key { epoch; _ } -> Format.fprintf fmt "NewGroupKey(epoch=%d)" epoch
  | Member_joined who -> Format.fprintf fmt "MemberJoined(%s)" who
  | Member_left who -> Format.fprintf fmt "MemberLeft(%s)" who
  | Member_expelled who -> Format.fprintf fmt "MemberExpelled(%s)" who
  | Membership_snapshot ms ->
      Format.fprintf fmt "MembershipSnapshot(%s)" (String.concat "," ms)
  | Notice text -> Format.fprintf fmt "Notice(%s)" text
  | View_digest { digest; epoch } ->
      Format.fprintf fmt "ViewDigest(epoch=%d,%s)" epoch
        (Byteskit.Hex.encode (String.sub digest 0 (min 4 (String.length digest))))
  | Queued { seq; stale; x } ->
      Format.fprintf fmt "Queued(seq=%d%s,%a)" seq
        (if stale then ",stale" else "")
        pp x

(* The digest key is public and fixed: a view digest is not a secret —
   its authenticity comes from the [K_a] seal of the AdminMsg or
   ViewResyncReq that carries it. SipHash just compresses (members,
   epoch) into 8 comparable bytes. *)
let digest_key = Sym_crypto.Siphash.key_of_string "enclaves-viewdig"

let view_digest ~members ~epoch =
  let w = Cursor.Writer.create () in
  Cursor.Writer.u32 w epoch;
  List.iter (Cursor.Writer.bytes w) (List.sort_uniq String.compare members);
  Sym_crypto.Siphash.hash_to_bytes digest_key (Cursor.Writer.contents w)
