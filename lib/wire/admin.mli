(** Group-management payloads — the field [X] carried inside an
    improved-protocol [AdminMsg] (and, for the legacy protocol, the
    contents of [NewKey] / [MemJoined] / [MemRemoved] messages).

    The paper leaves [X] abstract ("For example, X may specify a new
    group key and initialization vector, or indicate that a member has
    joined or left the session"); this module enumerates the payloads
    the Enclaves implementation actually needs. *)

type t =
  | New_group_key of { key : string; epoch : int }
      (** Distribute group key material for key epoch [epoch]. *)
  | Member_joined of string  (** A new member entered the session. *)
  | Member_left of string  (** A member left the session. *)
  | Member_expelled of string  (** The leader ejected a member. *)
  | Membership_snapshot of string list
      (** Full current membership, sent to a newly joined member. *)
  | Notice of string  (** Free-form leader-to-member administrative text. *)
  | View_digest of { digest : string; epoch : int }
      (** Anti-entropy beacon: {!view_digest} of the leader's current
          member list and key epoch. A member whose own digest differs
          answers with a [View_resync_req] repair request. *)
  | Queued of { seq : int; stale : bool; x : t }
      (** Store-and-forward delivery: payload [x] was queued while the
          member was offline and is being drained with delivery
          sequence number [seq] (the member deduplicates by [seq] — a
          cumulative floor that survives session resets, giving
          exactly-once application over at-least-once delivery).
          [stale] marks a message sealed under an epoch outside the
          delivery policy's window, delivered for the record but not
          trusted for key material. [decode] rejects nested [Queued]
          payloads. *)

val encode : t -> string
val decode : string -> (t, string) result
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val view_digest : members:string list -> epoch:int -> string
(** [view_digest ~members ~epoch] is an 8-byte SipHash digest of the
    sorted, deduplicated member list and the group-key epoch. The
    digest key is fixed and public: authenticity comes from the [K_a]
    seal of whatever frame carries the digest, not from the digest
    itself. *)
