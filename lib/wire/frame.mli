(** Wire frames.

    A frame is what travels on a link: a label (message type), an
    {e apparent} sender, an intended recipient, and an opaque body
    (usually an encoded {!Sym_crypto.Aead.sealed}, sometimes plaintext
    for the legacy protocol's unprotected messages).

    Nothing about the outer frame is authenticated — the network is
    insecure, so sender and label are attacker-writable. Protocols
    authenticate by binding the header into the AEAD associated data
    ({!ad}) of the sealed body; the legacy protocol frequently fails to
    do so, which is precisely the weakness class of §2.3. *)

type agent = string

type label =
  (* Legacy protocol (§2.2). *)
  | Req_open
  | Ack_open
  | Connection_denied
  | Legacy_auth1
  | Legacy_auth2
  | Legacy_auth3
  | New_key
  | New_key_ack
  | Legacy_req_close
  | Close_connection
  | Mem_joined
  | Mem_removed
  (* Improved protocol (§3.2). *)
  | Auth_init_req
  | Auth_key_dist
  | Auth_ack_key
  | Admin_msg
  | Admin_ack
  | Req_close
  (* Application traffic under the group key (both protocols). *)
  | App_data
  (* Crash-recovery and view anti-entropy (improved protocol only). *)
  | Recovery_challenge
      (** Leader → member after a warm restart: proves the leader still
          holds [K_a] and asks the member to re-seed the nonce chain. *)
  | Recovery_response
      (** Member → leader: echoes the challenge nonce and supplies a
          fresh one, restoring the admin channel. *)
  | View_resync_req
      (** Member → leader: the member's view digest diverged (or it
          heard no digest for too long) and asks for repair. *)
  | Cold_restart
      (** Leader → member after a {e cold} restart: an authenticated
          beacon (sealed under the member's long-term [P_a]) carrying
          the journalled group-key epoch, so members can skip the
          watchdog wait and re-authenticate immediately. *)
  | Cold_restart_challenge
      (** Member → leader: echoes the beacon nonce and adds a fresh one
          — the member does not trust the beacon until the leader
          proves liveness by echoing it back. *)
  | Cold_restart_ack
      (** Leader → member: echoes the member's challenge nonce; only
          now does the member reset its session and rejoin. *)
  (* Warm-standby journal replication (manager ↔ manager only). *)
  | Repl_record
      (** Primary → backup: one sealed, term- and sequence-tagged
          journal operation (an appended record chunk, a full-image
          snapshot, or a liveness heartbeat). *)
  | Repl_ack
      (** Backup → primary: cumulative acknowledgement of the
          contiguous replicated prefix. *)
  | Repl_fetch
      (** Backup → primary: a gap was detected; re-send from the given
          sequence number (or a snapshot if it fell off the log). *)
  | Repl_stale
      (** Replica or source → a superseded source: "your term is dead;
          term [t'] > yours is live under [primary]". Sealed under
          [K_r] and bound to the receiver's current term, so a forged
          or replayed notice can never demote a live primary. *)

type t = { label : label; sender : agent; recipient : agent; body : string }

val label_to_string : label -> string
val pp_label : Format.formatter -> label -> unit
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val make : label:label -> sender:agent -> recipient:agent -> body:string -> t

val encode : t -> string
(** Serialize for the network. *)

val decode : string -> (t, string) result
(** Parse a frame; [Error] on malformed input (attacker bytes). *)

val ad : t -> string
(** [ad frame] is the associated-data string binding the frame header
    (label, sender, recipient): protocols pass this to
    {!Sym_crypto.Aead.seal} so a sealed body cannot be replayed under a
    different header. *)

val header_ad : label:label -> sender:agent -> recipient:agent -> string
(** {!ad} computed before the frame exists. *)

val all_labels : label list
(** Every label, for exhaustive tests. *)
