(** Protocol nonces.

    Nonces are 16-byte random values. The improved Enclaves protocol
    threads them through every authenticated exchange: each side proves
    freshness by echoing the nonce the other side most recently
    generated ([N_{2i+1}], [N_{2i+2}], ...). *)

type t

val size : int
(** Nonce length in bytes (16). *)

val fresh : Prng.Splitmix.t -> t
(** Draw a new random nonce. *)

val of_raw : string -> t
(** Wrap existing bytes. @raise Invalid_argument on wrong length. *)

val raw : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
(** Prints a short hex prefix, enough for traces. *)
