(* Tests for the discrete-event simulator and the insecure network. *)

open Netsim

let test_vtime () =
  Alcotest.(check int64) "ms" 5_000L (Vtime.of_ms 5);
  Alcotest.(check int64) "s" 2_000_000L (Vtime.of_s 2);
  Alcotest.(check bool) "lt" true Vtime.(of_ms 1 < of_ms 2);
  Alcotest.(check bool) "le refl" true Vtime.(of_ms 1 <= of_ms 1);
  Alcotest.(check int64) "add" (Vtime.of_ms 3) (Vtime.add (Vtime.of_ms 1) (Vtime.of_ms 2))

let test_heap_order () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.push h ~time:(Vtime.of_ms 3) "c";
  Heap.push h ~time:(Vtime.of_ms 1) "a";
  Heap.push h ~time:(Vtime.of_ms 2) "b";
  let pop () = match Heap.pop h with Some (_, v) -> v | None -> "?" in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ());
  Alcotest.(check bool) "drained" true (Heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.push h ~time:Vtime.zero (string_of_int i)
  done;
  let order = List.init 10 (fun _ ->
      match Heap.pop h with Some (_, v) -> v | None -> "?")
  in
  Alcotest.(check (list string)) "insertion order on ties"
    (List.init 10 string_of_int) order

let test_heap_random_sorted () =
  let h = Heap.create () in
  let g = Prng.Splitmix.create 4L in
  for _ = 1 to 500 do
    Heap.push h ~time:(Vtime.of_us (Prng.Splitmix.next_int g 10_000)) ()
  done;
  let rec drain last n =
    match Heap.pop h with
    | None -> n
    | Some (time, ()) ->
        Alcotest.(check bool) "non-decreasing" true Vtime.(last <= time);
        drain time (n + 1)
  in
  Alcotest.(check int) "all popped" 500 (drain Vtime.zero 0)

(* qcheck: pops come out sorted by time whatever the push order, and
   equal timestamps preserve insertion order (FIFO stability), also
   across the internal array-growth boundary (capacity starts at 16). *)

let qcheck_heap_sorted =
  QCheck.Test.make ~count:200 ~name:"heap pops time-sorted"
    QCheck.(list_of_size Gen.(int_range 0 100) (int_bound 10_000))
    (fun times ->
      let h = Heap.create () in
      List.iter (fun t -> Heap.push h ~time:(Vtime.of_us t) ()) times;
      let rec drain last n =
        match Heap.pop h with
        | None -> n = List.length times
        | Some (time, ()) -> Vtime.(last <= time) && drain time (n + 1)
      in
      drain Vtime.zero 0)

let qcheck_heap_fifo_stable =
  (* Few distinct timestamps over many entries forces long runs of
     ties; 20-80 entries straddles the initial capacity of 16. *)
  QCheck.Test.make ~count:200 ~name:"heap FIFO-stable on equal times"
    QCheck.(list_of_size Gen.(int_range 20 80) (int_bound 3))
    (fun times ->
      let h = Heap.create () in
      List.iteri (fun i t -> Heap.push h ~time:(Vtime.of_ms t) i) times;
      let rec drain acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some (time, i) -> drain ((time, i) :: acc)
      in
      let popped = drain [] in
      (* Expected: stable sort of the pushes by time keeps insertion
         order among ties. *)
      let expected =
        List.stable_sort
          (fun (t1, _) (t2, _) -> Int64.compare t1 t2)
          (List.mapi (fun i t -> (Vtime.of_ms t, i)) times)
      in
      popped = expected)

let test_sim_order_and_clock () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:(Vtime.of_ms 10) (fun () ->
      log := ("b", Sim.now sim) :: !log);
  Sim.schedule sim ~delay:(Vtime.of_ms 5) (fun () ->
      log := ("a", Sim.now sim) :: !log);
  let n = Sim.run sim in
  Alcotest.(check int) "two events" 2 n;
  match List.rev !log with
  | [ ("a", ta); ("b", tb) ] ->
      Alcotest.(check int64) "a at 5ms" (Vtime.of_ms 5) ta;
      Alcotest.(check int64) "b at 10ms" (Vtime.of_ms 10) tb
  | _ -> Alcotest.fail "wrong order"

let test_sim_nested_scheduling () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec chain n =
    if n > 0 then begin
      incr count;
      Sim.schedule sim ~delay:(Vtime.of_ms 1) (fun () -> chain (n - 1))
    end
  in
  Sim.schedule sim ~delay:Vtime.zero (fun () -> chain 10);
  let _ = Sim.run sim in
  Alcotest.(check int) "chain ran" 10 !count

let test_sim_until () =
  let sim = Sim.create () in
  let fired = ref 0 in
  for i = 1 to 10 do
    Sim.schedule sim ~delay:(Vtime.of_ms i) (fun () -> incr fired)
  done;
  let _ = Sim.run ~until:(Vtime.of_ms 5) sim in
  Alcotest.(check int) "only first five" 5 !fired;
  Alcotest.(check int) "rest pending" 5 (Sim.pending sim)

let test_sim_max_events () =
  let sim = Sim.create () in
  for i = 1 to 10 do
    Sim.schedule sim ~delay:(Vtime.of_ms i) (fun () -> ())
  done;
  let n = Sim.run ~max_events:3 sim in
  Alcotest.(check int) "stopped at 3" 3 n

let test_sim_every () =
  let sim = Sim.create () in
  let ticks = ref 0 in
  Sim.every sim ~period:(Vtime.of_ms 10) ~until:(Vtime.of_ms 55) (fun () ->
      incr ticks);
  let _ = Sim.run ~until:(Vtime.of_ms 100) sim in
  Alcotest.(check int) "five ticks in 55ms" 5 !ticks

let test_network_delivery () =
  let sim = Sim.create () in
  let net = Network.create ~sim () in
  let inbox = ref [] in
  Network.register net "bob" (fun bytes -> inbox := bytes :: !inbox);
  Network.send net ~src:"alice" ~dst:"bob" "hello";
  Network.send net ~src:"alice" ~dst:"bob" "world";
  let _ = Sim.run sim in
  Alcotest.(check (list string)) "fifo delivery" [ "hello"; "world" ]
    (List.rev !inbox)

let test_network_fifo_pairwise () =
  (* Many frames between one pair must arrive in send order despite
     randomized latencies. *)
  let sim = Sim.create ~seed:9L () in
  let net = Network.create ~sim ~latency_us:(100, 5000) () in
  let inbox = ref [] in
  Network.register net "dst" (fun b -> inbox := b :: !inbox);
  for i = 0 to 49 do
    Network.send net ~src:"src" ~dst:"dst" (string_of_int i)
  done;
  let _ = Sim.run sim in
  Alcotest.(check (list string)) "in order"
    (List.init 50 string_of_int)
    (List.rev !inbox)

let test_network_unregistered_dropped () =
  let sim = Sim.create () in
  let net = Network.create ~sim () in
  Network.send net ~src:"a" ~dst:"ghost" "x";
  let _ = Sim.run sim in
  let dropped =
    List.exists
      (function Trace.Dropped _ -> true | _ -> false)
      (Trace.entries (Network.trace net))
  in
  Alcotest.(check bool) "recorded as dropped" true dropped

let test_network_adversary_drop_replace () =
  let sim = Sim.create () in
  let net = Network.create ~sim () in
  let inbox = ref [] in
  Network.register net "bob" (fun b -> inbox := b :: !inbox);
  Network.set_adversary net
    (Some
       (fun ~src:_ ~dst:_ ~payload ->
         match payload with
         | "drop-me" -> Network.Drop
         | "mangle-me" -> Network.Replace "mangled"
         | _ -> Network.Deliver));
  Network.send net ~src:"alice" ~dst:"bob" "drop-me";
  Network.send net ~src:"alice" ~dst:"bob" "mangle-me";
  Network.send net ~src:"alice" ~dst:"bob" "fine";
  let _ = Sim.run sim in
  Alcotest.(check (list string)) "adversary applied" [ "mangled"; "fine" ]
    (List.rev !inbox)

let test_network_adversary_inject () =
  let sim = Sim.create () in
  let net = Network.create ~sim () in
  let inbox = ref [] in
  Network.register net "bob" (fun b -> inbox := b :: !inbox);
  Network.inject net ~dst:"bob" "evil";
  let _ = Sim.run sim in
  Alcotest.(check (list string)) "injected frame arrives" [ "evil" ] !inbox;
  let injected =
    List.exists
      (function Trace.Injected _ -> true | _ -> false)
      (Trace.entries (Network.trace net))
  in
  Alcotest.(check bool) "recorded" true injected

let test_network_trace_payloads () =
  let sim = Sim.create () in
  let net = Network.create ~sim () in
  Network.register net "bob" (fun _ -> ());
  Network.send net ~src:"alice" ~dst:"bob" "one";
  Network.inject net ~dst:"bob" "two";
  let _ = Sim.run sim in
  Alcotest.(check (list string)) "observation set" [ "one"; "two" ]
    (Trace.payloads (Network.trace net))

let test_network_deterministic () =
  let run seed =
    let sim = Sim.create ~seed () in
    let net = Network.create ~sim ~latency_us:(10, 1000) () in
    let log = ref [] in
    Network.register net "bob" (fun b ->
        log := (b, Sim.now sim) :: !log);
    for i = 0 to 9 do
      Network.send net ~src:"alice" ~dst:"bob" (string_of_int i)
    done;
    let _ = Sim.run sim in
    !log
  in
  Alcotest.(check bool) "same seed, same trace" true (run 5L = run 5L);
  Alcotest.(check bool) "different seed, different timing" true
    (run 5L <> run 6L)

let test_stats_basic () =
  let sim = Sim.create () in
  let net = Network.create ~sim ~latency_us:(1000, 1000) () in
  Network.register net "bob" (fun _ -> ());
  Network.send net ~src:"alice" ~dst:"bob" "hello";
  Network.send net ~src:"alice" ~dst:"bob" "world";
  Network.inject net ~dst:"bob" "evil";
  let _ = Sim.run sim in
  let st = Stats.compute (Network.trace net) in
  Alcotest.(check int) "sent" 2 st.Stats.sent;
  Alcotest.(check int) "delivered" 3 st.Stats.delivered;
  Alcotest.(check int) "injected" 1 st.Stats.injected;
  (* the injected frame has no matching Sent *)
  Alcotest.(check int) "unmatched" 1 st.Stats.unmatched_deliveries;
  Alcotest.(check int) "bytes" 14 st.Stats.bytes_on_wire;
  (* fixed 1ms latency *)
  Alcotest.(check (float 0.001)) "latency min" 1.0 st.Stats.latency_min_ms;
  Alcotest.(check (float 0.001)) "latency max" 1.0 st.Stats.latency_max_ms

let test_stats_unmatched_rewrite () =
  (* An adversary Replace delivers a payload that was never Sent: it
     must show up in unmatched_deliveries, not vanish silently. *)
  let sim = Sim.create () in
  let net = Network.create ~sim () in
  Network.register net "bob" (fun _ -> ());
  Network.set_adversary net
    (Some
       (fun ~src:_ ~dst:_ ~payload ->
         if payload = "orig" then Network.Replace "evil" else Network.Deliver));
  Network.send net ~src:"alice" ~dst:"bob" "orig";
  Network.send net ~src:"alice" ~dst:"bob" "fine";
  let _ = Sim.run sim in
  let st = Stats.compute (Network.trace net) in
  Alcotest.(check int) "sent" 2 st.Stats.sent;
  Alcotest.(check int) "delivered" 2 st.Stats.delivered;
  Alcotest.(check int) "injected" 0 st.Stats.injected;
  Alcotest.(check int) "unmatched" 1 st.Stats.unmatched_deliveries

let test_stats_dropped () =
  let sim = Sim.create () in
  let net = Network.create ~sim () in
  Network.register net "bob" (fun _ -> ());
  Network.set_adversary net (Some (fun ~src:_ ~dst:_ ~payload:_ -> Network.Drop));
  Network.send net ~src:"a" ~dst:"bob" "x";
  let _ = Sim.run sim in
  let st = Stats.compute (Network.trace net) in
  Alcotest.(check int) "dropped" 1 st.Stats.dropped;
  Alcotest.(check int) "delivered" 0 st.Stats.delivered

let test_stats_by_label () =
  let sim = Sim.create () in
  let net = Network.create ~sim () in
  Network.register net "bob" (fun _ -> ());
  Network.send net ~src:"a" ~dst:"bob" "not-a-frame";
  Network.send net ~src:"a" ~dst:"bob"
    (Wire.Frame.encode
       (Wire.Frame.make ~label:Wire.Frame.App_data ~sender:"a" ~recipient:"bob"
          ~body:""));
  let _ = Sim.run sim in
  let labels =
    Stats.by_label
      ~decode_label:(fun payload ->
        match Wire.Frame.decode payload with
        | Ok f -> Some (Wire.Frame.label_to_string f.Wire.Frame.label)
        | Error _ -> None)
      (Network.trace net)
  in
  Alcotest.(check (list (pair string int))) "labels"
    [ ("<garbage>", 1); ("AppData", 1) ]
    labels

(* --- cancellation handles --- *)

let test_handle_cancel_schedule () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule_handle sim ~delay:(Vtime.of_ms 10) (fun () -> fired := true) in
  Sim.schedule sim ~delay:(Vtime.of_ms 5) (fun () -> Sim.cancel h);
  let _ = Sim.run sim in
  Alcotest.(check bool) "cancelled callback never fires" false !fired;
  Alcotest.(check bool) "reports cancelled" true (Sim.is_cancelled h)

let test_handle_cancel_every () =
  let sim = Sim.create () in
  let ticks = ref 0 in
  let h = Sim.every_handle sim ~period:(Vtime.of_ms 10) (fun () -> incr ticks) in
  Sim.schedule sim ~delay:(Vtime.of_ms 35) (fun () -> Sim.cancel h);
  (* An until-less periodic task would never quiesce; cancellation
     must end it. *)
  let _ = Sim.run ~until:(Vtime.of_ms 500) sim in
  Alcotest.(check int) "three ticks then silence" 3 !ticks

(* --- fault plan --- *)

let test_faultplan_total_loss () =
  let sim = Sim.create () in
  let net = Network.create ~sim () in
  Network.register net "bob" (fun _ -> ());
  Network.set_faultplan net (Some (Faultplan.uniform_loss 1.0));
  Network.send net ~src:"a" ~dst:"bob" "x";
  Network.send net ~src:"a" ~dst:"bob" "y";
  let _ = Sim.run sim in
  let c = Network.fault_counters net in
  Alcotest.(check int) "both lost" 2 c.Faultplan.lost;
  let st = Stats.compute (Network.trace net) in
  Alcotest.(check int) "attributed to the fault plan" 2 st.Stats.dropped_by_fault;
  Alcotest.(check int) "aggregate matches" 2 st.Stats.dropped;
  Alcotest.(check int) "nothing delivered" 0 st.Stats.delivered

let test_faultplan_duplication () =
  let sim = Sim.create () in
  let net = Network.create ~sim () in
  let inbox = ref 0 in
  Network.register net "bob" (fun _ -> incr inbox);
  Network.set_faultplan net
    (Some
       (Faultplan.make
          ~default_link:(Faultplan.lossy_link ~duplicate:1.0 0.0)
          ()));
  Network.send net ~src:"a" ~dst:"bob" "x";
  let _ = Sim.run sim in
  Alcotest.(check int) "two copies" 2 !inbox;
  Alcotest.(check int) "counted" 1 (Network.fault_counters net).Faultplan.duplicated

let test_faultplan_partition_window () =
  let sim = Sim.create () in
  let net = Network.create ~sim ~latency_us:(10, 10) () in
  let inbox = ref [] in
  Network.register net "bob" (fun b -> inbox := b :: !inbox);
  Network.set_faultplan net
    (Some
       (Faultplan.make
          ~partitions:
            [
              {
                Faultplan.west = [ "a" ];
                east = [ "bob" ];
                from_ = Vtime.of_ms 10;
                heal = Vtime.of_ms 20;
              };
            ]
          ()));
  (* Send at t=0 (before), t=15ms (inside), t=25ms (after). The cut is
     evaluated at delivery time. *)
  Network.send net ~src:"a" ~dst:"bob" "before";
  Sim.schedule sim ~delay:(Vtime.of_ms 15) (fun () ->
      Network.send net ~src:"a" ~dst:"bob" "inside");
  Sim.schedule sim ~delay:(Vtime.of_ms 25) (fun () ->
      Network.send net ~src:"a" ~dst:"bob" "after");
  let _ = Sim.run sim in
  Alcotest.(check (list string)) "only the cut frame is lost"
    [ "before"; "after" ] (List.rev !inbox);
  Alcotest.(check int) "cut counted" 1 (Network.fault_counters net).Faultplan.cut

let test_faultplan_outage () =
  let sim = Sim.create () in
  let net = Network.create ~sim ~latency_us:(10, 10) () in
  let inbox = ref [] in
  Network.register net "bob" (fun b -> inbox := b :: !inbox);
  Network.set_faultplan net
    (Some
       (Faultplan.make
          ~outages:
            [
              {
                Faultplan.node = "bob";
                down = Vtime.of_ms 10;
                up = Some (Vtime.of_ms 20);
              };
            ]
          ()));
  Network.send net ~src:"a" ~dst:"bob" "before";
  Sim.schedule sim ~delay:(Vtime.of_ms 12) (fun () ->
      Network.send net ~src:"a" ~dst:"bob" "while-down");
  Sim.schedule sim ~delay:(Vtime.of_ms 22) (fun () ->
      Network.send net ~src:"a" ~dst:"bob" "restarted");
  let _ = Sim.run sim in
  Alcotest.(check (list string)) "down window swallows the frame"
    [ "before"; "restarted" ] (List.rev !inbox);
  Alcotest.(check int) "down counted" 1 (Network.fault_counters net).Faultplan.down

let test_faultplan_deterministic_replay () =
  let run () =
    let sim = Sim.create ~seed:123L () in
    let net = Network.create ~sim ~latency_us:(100, 5000) () in
    Network.register net "bob" (fun _ -> ());
    Network.set_faultplan net
      (Some
         (Faultplan.make
            ~default_link:
              (Faultplan.lossy_link ~corrupt:0.2 ~duplicate:0.2 ~spike_prob:0.2
                 0.2)
            ()));
    for i = 1 to 50 do
      Network.send net ~src:"a" ~dst:"bob" (string_of_int i)
    done;
    let _ = Sim.run sim in
    let c = Network.fault_counters net in
    ( Trace.length (Network.trace net),
      (c.Faultplan.lost, c.Faultplan.corrupted, c.Faultplan.duplicated,
       c.Faultplan.spiked) )
  in
  let (len1, c1) = run () and (len2, c2) = run () in
  Alcotest.(check int) "same trace length" len1 len2;
  Alcotest.(check bool) "same fault counters" true (c1 = c2);
  (* And the plan did something on every axis. *)
  let lost, corrupted, duplicated, spiked = c1 in
  Alcotest.(check bool) "all four fault kinds fired" true
    (lost > 0 && corrupted > 0 && duplicated > 0 && spiked > 0)

let test_faultplan_injection_bypasses () =
  (* Adversary injections model the attacker's own transmissions —
     the fault plan must not eat them. *)
  let sim = Sim.create () in
  let net = Network.create ~sim () in
  let inbox = ref 0 in
  Network.register net "bob" (fun _ -> incr inbox);
  Network.set_faultplan net (Some (Faultplan.uniform_loss 1.0));
  Network.inject net ~dst:"bob" "evil";
  let _ = Sim.run sim in
  Alcotest.(check int) "injected frame delivered" 1 !inbox

let suite =
  [
    ( "netsim",
      [
        Alcotest.test_case "vtime" `Quick test_vtime;
        Alcotest.test_case "heap order" `Quick test_heap_order;
        Alcotest.test_case "heap fifo ties" `Quick test_heap_fifo_ties;
        Alcotest.test_case "heap random sorted" `Quick test_heap_random_sorted;
        QCheck_alcotest.to_alcotest qcheck_heap_sorted;
        QCheck_alcotest.to_alcotest qcheck_heap_fifo_stable;
        Alcotest.test_case "sim order and clock" `Quick test_sim_order_and_clock;
        Alcotest.test_case "sim nested scheduling" `Quick
          test_sim_nested_scheduling;
        Alcotest.test_case "sim until" `Quick test_sim_until;
        Alcotest.test_case "sim max events" `Quick test_sim_max_events;
        Alcotest.test_case "sim every" `Quick test_sim_every;
        Alcotest.test_case "network delivery" `Quick test_network_delivery;
        Alcotest.test_case "network pairwise fifo" `Quick
          test_network_fifo_pairwise;
        Alcotest.test_case "network unregistered dropped" `Quick
          test_network_unregistered_dropped;
        Alcotest.test_case "network adversary drop/replace" `Quick
          test_network_adversary_drop_replace;
        Alcotest.test_case "network adversary inject" `Quick
          test_network_adversary_inject;
        Alcotest.test_case "network trace payloads" `Quick
          test_network_trace_payloads;
        Alcotest.test_case "network deterministic" `Quick
          test_network_deterministic;
        Alcotest.test_case "stats basic" `Quick test_stats_basic;
        Alcotest.test_case "stats unmatched rewrite" `Quick
          test_stats_unmatched_rewrite;
        Alcotest.test_case "stats dropped" `Quick test_stats_dropped;
        Alcotest.test_case "stats by label" `Quick test_stats_by_label;
        Alcotest.test_case "handle cancels schedule" `Quick
          test_handle_cancel_schedule;
        Alcotest.test_case "handle cancels every" `Quick
          test_handle_cancel_every;
        Alcotest.test_case "faultplan total loss" `Quick
          test_faultplan_total_loss;
        Alcotest.test_case "faultplan duplication" `Quick
          test_faultplan_duplication;
        Alcotest.test_case "faultplan partition window" `Quick
          test_faultplan_partition_window;
        Alcotest.test_case "faultplan outage" `Quick test_faultplan_outage;
        Alcotest.test_case "faultplan deterministic replay" `Quick
          test_faultplan_deterministic_replay;
        Alcotest.test_case "faultplan injection bypasses" `Quick
          test_faultplan_injection_bypasses;
      ] );
  ]
