(* Asynchronous integration tests: whole protocol runs over the
   discrete-event network with randomized latencies, loss, and an
   in-path adversary — complementing the synchronous-router
   conformance tests. Also covers Sealed_channel directly. *)

open Enclaves
module D = Driver.Improved
module F = Wire.Frame

let directory = [ ("alice", "pw-a"); ("bob", "pw-b"); ("carol", "pw-c") ]

let test_async_join_all () =
  let d = D.create ~seed:9L ~latency_us:(100, 9000) ~leader:"leader" ~directory () in
  List.iter (fun (n, _) -> D.join d n) directory;
  let _ = D.run d in
  Alcotest.(check (list string)) "all joined" [ "alice"; "bob"; "carol" ]
    (Leader.members (D.leader d));
  Alcotest.(check bool) "prefix ok" true (D.all_prefix_ok d)

let test_async_concurrent_churn () =
  let d = D.create ~seed:10L ~leader:"leader" ~directory () in
  let sim = D.sim d in
  (* Overlapping joins, leaves and rekeys at staggered virtual times. *)
  List.iteri
    (fun i (n, _) ->
      Netsim.Sim.schedule sim ~delay:(Netsim.Vtime.of_ms (i * 3)) (fun () ->
          D.join d n))
    directory;
  Netsim.Sim.schedule sim ~delay:(Netsim.Vtime.of_ms 20) (fun () ->
      D.leave d "bob");
  Netsim.Sim.schedule sim ~delay:(Netsim.Vtime.of_ms 21) (fun () -> D.rekey d);
  Netsim.Sim.schedule sim ~delay:(Netsim.Vtime.of_ms 40) (fun () ->
      D.join d "bob");
  let _ = D.run d in
  Alcotest.(check (list string)) "all present after churn"
    [ "alice"; "bob"; "carol" ]
    (Leader.members (D.leader d));
  Alcotest.(check bool) "prefix ok" true (D.all_prefix_ok d);
  (* All connected members agree on the group key. *)
  let keys =
    List.filter_map
      (fun (n, _) ->
        Option.map (fun gk -> gk.Types.epoch) (Member.group_key (D.member d n)))
      directory
  in
  match keys with
  | e :: rest ->
      List.iter (fun e' -> Alcotest.(check int) "epoch agreement" e e') rest
  | [] -> Alcotest.fail "no keys"

let test_adversary_dropping_handshake () =
  (* Drop the first AuthKeyDist: alice's join stalls (no retransmit by
     design), but a later fresh join attempt succeeds and the stale
     half-session at the leader is restarted. *)
  let d = D.create ~seed:11L ~leader:"leader" ~directory () in
  let net = D.net d in
  let dropped = ref false in
  Netsim.Network.set_adversary net
    (Some
       (fun ~src:_ ~dst:_ ~payload ->
         match F.decode payload with
         | Ok { F.label = F.Auth_key_dist; _ } when not !dropped ->
             dropped := true;
             Netsim.Network.Drop
         | Ok _ | Error _ -> Netsim.Network.Deliver));
  D.join d "alice";
  let _ = D.run d in
  Alcotest.(check bool) "first attempt stalled" false
    (Member.is_connected (D.member d "alice"));
  (* Fresh member automaton retries (application-level retry). *)
  Netsim.Network.set_adversary net None;
  let rng = Prng.Splitmix.create 3L in
  let alice2 = Member.create ~self:"alice" ~leader:"leader" ~password:"pw-a" ~rng in
  Netsim.Network.register net "alice" (fun bytes ->
      List.iter
        (fun (f : F.t) ->
          Netsim.Network.send net ~src:"alice" ~dst:f.F.recipient (F.encode f))
        (Member.receive alice2 bytes));
  List.iter
    (fun (f : F.t) ->
      Netsim.Network.send net ~src:"alice" ~dst:f.F.recipient (F.encode f))
    (Member.join alice2);
  let _ = D.run d in
  Alcotest.(check bool) "retry succeeds" true (Member.is_connected alice2)

let test_adversary_duplicating_everything () =
  (* Duplicate every frame: the nonce chain must absorb it with no
     duplicated admin deliveries. *)
  let d = D.create ~seed:12L ~leader:"leader" ~directory () in
  let net = D.net d in
  Netsim.Network.set_adversary net
    (Some
       (fun ~src:_ ~dst ~payload ->
         Netsim.Network.inject net ~dst payload;
         Netsim.Network.Deliver));
  List.iter
    (fun (n, _) ->
      D.join d n;
      ignore (D.run d))
    directory;
  D.rekey d;
  let _ = D.run d in
  Alcotest.(check (list string)) "all joined despite duplication"
    [ "alice"; "bob"; "carol" ]
    (Leader.members (D.leader d));
  Alcotest.(check bool) "prefix ok under duplication" true (D.all_prefix_ok d);
  List.iter
    (fun (n, _) ->
      let m = D.member d n in
      let accepted = Member.accepted_admin m in
      Alcotest.(check int)
        (n ^ ": no duplicates accepted")
        (List.length accepted)
        (List.length (List.sort_uniq compare (List.map Wire.Admin.encode accepted))))
    directory

let test_determinism_across_runs () =
  let run () =
    let d = D.create ~seed:77L ~leader:"leader" ~directory () in
    List.iter (fun (n, _) -> D.join d n) directory;
    D.rekey d;
    let _ = D.run d in
    Netsim.Trace.length (Netsim.Network.trace (D.net d))
  in
  Alcotest.(check int) "identical traces" (run ()) (run ())

let test_periodic_rekey () =
  let d = D.create ~seed:13L ~leader:"leader" ~directory () in
  List.iter
    (fun (n, _) ->
      D.join d n;
      ignore (D.run d))
    directory;
  let epoch_now () =
    match Leader.group_key (D.leader d) with
    | Some gk -> gk.Types.epoch
    | None -> -1
  in
  let e0 = epoch_now () in
  let _handle =
    D.start_periodic_rekey d ~period:(Netsim.Vtime.of_ms 100)
      ~until:(Netsim.Vtime.of_ms 550) ()
  in
  let _ = D.run ~until:(Netsim.Vtime.of_s 2) d in
  Alcotest.(check int) "five periodic rekeys" (e0 + 5) (epoch_now ());
  (* Members follow. *)
  List.iter
    (fun (n, _) ->
      match Member.group_key (D.member d n) with
      | Some gk -> Alcotest.(check int) (n ^ " current") (e0 + 5) gk.Types.epoch
      | None -> Alcotest.fail "no key")
    directory

(* --- Sealed_channel unit tests --- *)

let key_of seed kind =
  Sym_crypto.Key.fresh kind (Prng.Splitmix.create seed)

let test_sealed_channel_roundtrip () =
  let rng = Prng.Splitmix.create 1L in
  let key = key_of 2L Sym_crypto.Key.Session in
  let frame =
    Sealed_channel.seal ~rng ~key ~label:F.Admin_msg ~sender:"l" ~recipient:"a"
      "payload"
  in
  Alcotest.(check string) "label survives" "AdminMsg"
    (F.label_to_string frame.F.label);
  (match Sealed_channel.open_ ~key frame with
  | Ok p -> Alcotest.(check string) "roundtrip" "payload" p
  | Error _ -> Alcotest.fail "open failed")

let test_sealed_channel_header_binding () =
  let rng = Prng.Splitmix.create 1L in
  let key = key_of 2L Sym_crypto.Key.Session in
  let frame =
    Sealed_channel.seal ~rng ~key ~label:F.Admin_msg ~sender:"l" ~recipient:"a"
      "payload"
  in
  (* Any header change invalidates the seal. *)
  List.iter
    (fun frame' ->
      match Sealed_channel.open_ ~key frame' with
      | Error Types.Auth_failure -> ()
      | Error e ->
          Alcotest.fail
            (Format.asprintf "wrong error: %a" Types.pp_reject_reason e)
      | Ok _ -> Alcotest.fail "tampered header accepted")
    [
      { frame with F.label = F.Admin_ack };
      { frame with F.sender = "x" };
      { frame with F.recipient = "b" };
    ]

let test_sealed_channel_legacy_no_binding () =
  (* The legacy sealing deliberately does NOT bind the header: a body
     can be spliced under another header — the §2.2 weakness. *)
  let rng = Prng.Splitmix.create 1L in
  let key = key_of 2L Sym_crypto.Key.Group in
  let frame =
    Sealed_channel.legacy_seal ~rng ~key ~label:F.Mem_removed ~sender:"l"
      ~recipient:"a" "body"
  in
  let spliced = { frame with F.sender = "someone-else"; F.recipient = "b" } in
  match Sealed_channel.legacy_open ~key spliced with
  | Ok p -> Alcotest.(check string) "splice accepted (by design)" "body" p
  | Error _ -> Alcotest.fail "legacy should not bind headers"

let test_sealed_channel_group_vs_pairwise () =
  (* Group-sealed frames open with open_group regardless of header
     endpoints, but never with the pairwise opener. *)
  let rng = Prng.Splitmix.create 1L in
  let key = key_of 2L Sym_crypto.Key.Group in
  let frame =
    Sealed_channel.seal_group ~rng ~key ~label:F.App_data ~sender:"a"
      ~recipient:"l" "data"
  in
  let relayed = { frame with F.sender = "a"; F.recipient = "b" } in
  (match Sealed_channel.open_group ~key relayed with
  | Ok p -> Alcotest.(check string) "relay opens" "data" p
  | Error _ -> Alcotest.fail "group open failed");
  (match Sealed_channel.open_ ~key frame with
  | Error Types.Auth_failure -> ()
  | _ -> Alcotest.fail "pairwise opener accepted group frame");
  (* A group frame under a different label fails (label is bound). *)
  match Sealed_channel.open_group ~key { frame with F.label = F.Mem_joined } with
  | Error Types.Auth_failure -> ()
  | _ -> Alcotest.fail "label splice accepted"

let test_sealed_channel_garbage_body () =
  let key = key_of 2L Sym_crypto.Key.Session in
  let frame = F.make ~label:F.Admin_msg ~sender:"l" ~recipient:"a" ~body:"junk" in
  match Sealed_channel.open_ ~key frame with
  | Error (Types.Malformed _) -> ()
  | _ -> Alcotest.fail "garbage body not reported as malformed"

let suite =
  [
    ( "driver (async integration)",
      [
        Alcotest.test_case "async join all" `Quick test_async_join_all;
        Alcotest.test_case "concurrent churn" `Quick test_async_concurrent_churn;
        Alcotest.test_case "dropped handshake + retry" `Quick
          test_adversary_dropping_handshake;
        Alcotest.test_case "universal duplication absorbed" `Quick
          test_adversary_duplicating_everything;
        Alcotest.test_case "deterministic runs" `Quick
          test_determinism_across_runs;
        Alcotest.test_case "periodic rekey" `Quick test_periodic_rekey;
      ] );
    ( "sealed-channel",
      [
        Alcotest.test_case "roundtrip" `Quick test_sealed_channel_roundtrip;
        Alcotest.test_case "header binding" `Quick
          test_sealed_channel_header_binding;
        Alcotest.test_case "legacy splice (by design)" `Quick
          test_sealed_channel_legacy_no_binding;
        Alcotest.test_case "group vs pairwise" `Quick
          test_sealed_channel_group_vs_pairwise;
        Alcotest.test_case "garbage body" `Quick test_sealed_channel_garbage_body;
      ] );
  ]
